//! Seeded crash campaign: hundreds of randomized fault schedules, each
//! driven through checkpoint → crash → recover → restore, asserting
//! after every crash that (1) the recovered store scrubs clean and
//! (2) every surviving checkpoint restores to exactly the state
//! captured at its barrier.
//!
//! The campaign size defaults to 200 schedules per profile and scales
//! through `AURORA_CRASH_ITERS` (CI nightly runs set it much higher).

use aurora::core::campaign::{
    run_campaign, run_compact_power_cut_sweep, run_delta_power_cut_sweep,
    run_fleet_power_cut_sweep, schedules_from_env, CampaignConfig,
};
use aurora::hw::FaultRates;

#[test]
fn campaign_flaky_device() {
    let cfg = CampaignConfig {
        seed: 0xa070_5175,
        schedules: schedules_from_env(200),
        rounds: 6,
        rates: FaultRates::flaky(),
    };
    let report = run_campaign(&cfg);
    assert!(
        report.passed(),
        "campaign violations:\n{}",
        report.violations.join("\n")
    );
    assert_eq!(report.schedules, cfg.schedules);
    // The schedule rates must actually exercise the pipeline: some
    // checkpoints abort, some crashes land mid-flush, retries absorb
    // transient errors, and every surviving checkpoint is re-verified.
    assert!(report.committed > report.schedules, "baselines + survivors");
    assert!(report.aborted > 0, "no checkpoint ever aborted");
    assert!(report.crashes > report.schedules, "no mid-schedule crash");
    assert!(report.transient_absorbed > 0, "retries never exercised");
    assert!(report.restores_verified > report.schedules);
}

#[test]
fn campaign_hostile_device() {
    // Adds silent bit corruption on top of the flaky profile; the CRC
    // journal and scrub must keep every surviving state bit-exact.
    let cfg = CampaignConfig {
        seed: 0x5c2b_0b5e,
        schedules: schedules_from_env(200),
        rounds: 6,
        rates: FaultRates::hostile(),
    };
    let report = run_campaign(&cfg);
    assert!(
        report.passed(),
        "campaign violations:\n{}",
        report.violations.join("\n")
    );
    assert!(report.aborted > 0);
    assert!(report.restores_verified > 0);
}

#[test]
fn campaign_delta_append_power_cut_sweep() {
    // Walks a power cut through every device-write ordinal of a delta
    // flush: each survivor must scrub clean and restore to the same
    // memory digest as a fault-free twin run.
    let report = run_delta_power_cut_sweep(18, 4);
    assert!(
        report.passed(),
        "delta sweep violations:\n{}",
        report.violations.join("\n")
    );
    assert_eq!(report.crashes, 18);
    assert!(report.aborted > 0, "no cut landed inside the delta flush");
    assert!(report.restores_verified > 0);
}

#[test]
fn campaign_chain_compaction_power_cut_sweep() {
    // Same walk through the checkpoint that commits the capping delta
    // and auto-folds every chain back into base images.
    let report = run_compact_power_cut_sweep(14, 4);
    assert!(
        report.passed(),
        "compaction sweep violations:\n{}",
        report.violations.join("\n")
    );
    assert_eq!(report.crashes, 14);
    assert!(report.aborted > 0, "no cut landed inside the fold");
    assert!(report.restores_verified > 0);
}

#[test]
fn campaign_fleet_interleave_power_cut_sweep() {
    // Walks a power cut through every device-write ordinal of a round
    // where two tenants' checkpoint cycles pipeline through the fleet
    // scheduler — the cut lands while tenant A flushes and tenant B's
    // cycle queues behind A's commit. Both tenants must recover scrub-
    // clean, and every survivor must digest-match a fault-free twin of
    // the same interleaving.
    let report = run_fleet_power_cut_sweep(16, 4);
    assert!(
        report.passed(),
        "fleet sweep violations:\n{}",
        report.violations.join("\n")
    );
    assert_eq!(report.crashes, 16);
    assert!(
        report.aborted > 0,
        "no cut landed inside the interleaved cycles"
    );
    assert!(report.restores_verified > 0);
}

#[test]
fn campaign_is_reproducible_from_its_seed() {
    let cfg = CampaignConfig {
        seed: 7,
        schedules: 16,
        rounds: 6,
        rates: FaultRates::flaky(),
    };
    let a = run_campaign(&cfg);
    let b = run_campaign(&cfg);
    assert_eq!(a.committed, b.committed);
    assert_eq!(a.degraded, b.degraded);
    assert_eq!(a.aborted, b.aborted);
    assert_eq!(a.crashes, b.crashes);
    assert_eq!(a.restores_verified, b.restores_verified);
    assert_eq!(a.transient_absorbed, b.transient_absorbed);
}
