//! Full-stack property test: random interleavings of memory writes,
//! forks, checkpoints and crash-restores must always restore exactly
//! the state captured at the checkpoint — for every process in the
//! tree, under fork-COW sharing, across arbitrarily many crashes.

use std::collections::HashMap;

use aurora::core::restore::RestoreMode;
use aurora::core::{GroupId, Host};
use aurora::hw::ModelDev;
use aurora::objstore::StoreConfig;
use aurora::posix::Pid;
use aurora::sim::SimClock;
use proptest::prelude::*;

const SLOTS: u64 = 8;
const REGION: u64 = SLOTS * 4096;

#[derive(Debug, Clone)]
enum Op {
    /// Write `val` into `slot` of process `proc` (mod live count).
    Write { proc: u8, slot: u8, val: u64 },
    /// Fork process `proc` (caps at 4 processes).
    Fork { proc: u8 },
    /// Take an incremental checkpoint of the whole tree.
    Checkpoint,
    /// Crash the machine and restore the latest checkpoint.
    CrashRestore,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        6 => (any::<u8>(), 0u8..(SLOTS as u8), any::<u64>())
            .prop_map(|(proc, slot, val)| Op::Write { proc, slot, val }),
        1 => any::<u8>().prop_map(|proc| Op::Fork { proc }),
        2 => Just(Op::Checkpoint),
        1 => Just(Op::CrashRestore),
    ]
}

/// The model: per-process slot values, plus the snapshot taken at the
/// last checkpoint.
#[derive(Debug, Clone, Default)]
struct Model {
    /// Original pid -> slot values. (Original pids index the model; the
    /// simulator's pids are remapped on restore and tracked separately.)
    procs: Vec<HashMap<u64, u64>>,
    checkpointed: Option<Vec<HashMap<u64, u64>>>,
}

fn boot() -> Host {
    let clock = SimClock::new();
    let dev = Box::new(ModelDev::nvme(clock, "nvme0", 128 * 1024));
    Host::boot(
        "prop",
        dev,
        StoreConfig {
            journal_blocks: 2048,
            ..StoreConfig::default()
        },
    )
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn checkpoint_restore_is_exact_under_random_interleavings(
        ops in proptest::collection::vec(op_strategy(), 1..50)
    ) {
        let mut host = boot();
        let root = host.kernel.spawn("root");
        let base = host.kernel.mmap_anon(root, REGION, false).unwrap();
        let mut gid: GroupId = host.persist("tree", root).unwrap();
        // Live simulator pids, index-aligned with `model.procs`.
        let mut pids: Vec<Pid> = vec![root];
        let mut model = Model {
            procs: vec![HashMap::new()],
            checkpointed: None,
        };
        // Everything starts checkpointed so CrashRestore always has an
        // image to return to.
        host.checkpoint(gid, true, None).unwrap();
        let mut bd = host.wait_durable(gid);
        prop_assert!(bd.is_ok());
        model.checkpointed = Some(model.procs.clone());

        for op in ops {
            match op {
                Op::Write { proc, slot, val } => {
                    let i = (proc as usize) % pids.len();
                    let addr = base + (slot as u64) * 4096;
                    host.kernel
                        .mem_write(pids[i], addr, &val.to_le_bytes())
                        .unwrap();
                    model.procs[i].insert(slot as u64, val);
                }
                Op::Fork { proc } => {
                    if pids.len() >= 4 {
                        continue;
                    }
                    let i = (proc as usize) % pids.len();
                    let child = host.kernel.fork(pids[i]).unwrap();
                    pids.push(child);
                    let snapshot = model.procs[i].clone();
                    model.procs.push(snapshot);
                }
                Op::Checkpoint => {
                    host.checkpoint(gid, false, None).unwrap();
                    bd = host.wait_durable(gid);
                    prop_assert!(bd.is_ok());
                    model.checkpointed = Some(model.procs.clone());
                }
                Op::CrashRestore => {
                    host = host.crash_and_reboot().unwrap();
                    let store = host.sls.primary.clone();
                    let head = store.borrow().head().unwrap();
                    let r = host.restore(&store, head, RestoreMode::Eager).unwrap();
                    // Remap pids: originals in ascending order map to the
                    // restored ones in `pid_map` order.
                    let mut new_pids = Vec::new();
                    for (old, _) in pids.iter().enumerate() {
                        let _ = old;
                    }
                    for &(orig, new) in &r.pid_map {
                        let _ = orig;
                        new_pids.push(Pid(new));
                    }
                    prop_assert_eq!(
                        new_pids.len(),
                        model
                            .checkpointed
                            .as_ref()
                            .expect("checkpoint exists")
                            .len(),
                        "restored process count"
                    );
                    pids = new_pids;
                    model.procs = model.checkpointed.clone().expect("checkpoint exists");
                    gid = host.persist("tree", pids[0]).unwrap();
                    // Fresh group: next checkpoint will be full.
                }
            }

            // Invariant: every live process's slots match the model.
            for (i, pid) in pids.iter().enumerate() {
                for (&slot, &val) in &model.procs[i] {
                    let mut buf = [0u8; 8];
                    host.kernel
                        .mem_read(*pid, base + slot * 4096, &mut buf)
                        .unwrap();
                    prop_assert_eq!(
                        u64::from_le_bytes(buf),
                        val,
                        "proc {} slot {} after {:?}",
                        i,
                        slot,
                        op
                    );
                }
            }
        }
    }
}
