//! Table 1 conformance: every `sls` CLI command, driven through the CLI
//! library against a real on-disk world.

use std::path::PathBuf;

fn world() -> (tempdir::TempDir, Vec<String>) {
    let dir = tempdir::TempDir::new("sls-cli-test");
    let args = vec!["--world".to_string(), dir.path().to_string_lossy().into_owned()];
    (dir, args)
}

/// Minimal tempdir (no external crate): a unique directory under the
/// system temp dir, removed on drop.
mod tempdir {
    use std::path::{Path, PathBuf};
    use std::sync::atomic::{AtomicU64, Ordering};

    pub struct TempDir(PathBuf);

    impl TempDir {
        pub fn new(prefix: &str) -> TempDir {
            static N: AtomicU64 = AtomicU64::new(0);
            let n = N.fetch_add(1, Ordering::Relaxed);
            let path = std::env::temp_dir().join(format!(
                "{prefix}-{}-{n}",
                std::process::id()
            ));
            std::fs::create_dir_all(&path).expect("temp dir");
            TempDir(path)
        }

        pub fn path(&self) -> &Path {
            &self.0
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }
}

fn sls(base: &[String], extra: &[&str]) -> Result<String, String> {
    let mut args: Vec<&str> = base.iter().map(String::as_str).collect();
    args.extend_from_slice(extra);
    aurora::cli::run(&args).map_err(|e| e.to_string())
}

#[test]
fn full_cli_lifecycle() {
    let (_dir, base) = world();

    // help + init
    let help = sls(&base, &["--help"]).unwrap();
    for cmd in ["persist", "attach", "detach", "checkpoint", "restore", "ps", "send", "recv"] {
        assert!(help.contains(cmd), "help mentions {cmd}");
    }
    let out = sls(&base, &["init"]).unwrap();
    assert!(out.contains("initialized world"));
    assert!(sls(&base, &["init"]).is_err(), "double init refused");

    // persist
    let out = sls(&base, &["persist", "counter", "--app", "hello"]).unwrap();
    assert!(out.contains("persisted counter"));
    assert!(
        sls(&base, &["persist", "counter", "--app", "hello"]).is_err(),
        "duplicate name refused"
    );

    // run advances across invocations (true persistence).
    let out = sls(&base, &["run", "counter", "--steps", "5"]).unwrap();
    assert!(out.contains("hello, world #5"), "{out}");
    let out = sls(&base, &["run", "counter", "--steps", "3"]).unwrap();
    assert!(out.contains("hello, world #8"), "state persisted: {out}");

    // checkpoint with a tag; restore by tag and by latest.
    let out = sls(&base, &["checkpoint", "counter", "--tag", "golden"]).unwrap();
    assert!(out.contains("tag golden"));
    let out = sls(&base, &["run", "counter", "--steps", "4"]).unwrap();
    assert!(out.contains("hello, world #12"));
    let out = sls(&base, &["restore", "counter"]).unwrap();
    assert!(out.contains("hello, world #12"));
    let out = sls(&base, &["restore", "counter", "--tag", "golden"]).unwrap();
    assert!(out.contains("hello, world #8"), "tagged restore: {out}");

    // ps lists the application and its history.
    let out = sls(&base, &["ps"]).unwrap();
    assert!(out.contains("counter"));
    assert!(out.contains("golden"));

    // attach / detach backends.
    let out = sls(&base, &["attach", "counter"]).unwrap();
    assert!(out.contains("attached backend"));
    sls(&base, &["run", "counter", "--steps", "1"]).unwrap();
    let out = sls(&base, &["detach", "counter", "--index", "1"]).unwrap();
    assert!(out.contains("detached backend"));
    assert!(sls(&base, &["detach", "counter", "--index", "5"]).is_err());

    // info: health plus the flush-pipeline telemetry (worker count and
    // per-stage timing from the global counters).
    let out = sls(&base, &["info"]).unwrap();
    assert!(out.contains("checkpoints:"));
    assert!(out.contains("flush pipeline:"), "info flush stage: {out}");
    assert!(out.contains("workers configured"), "info workers: {out}");
    assert!(out.contains("fleet:"), "info fleet telemetry: {out}");
}

#[test]
fn send_recv_between_worlds() {
    let (_dir_a, a) = world();
    let (dir_b, b) = world();
    sls(&a, &["init"]).unwrap();
    sls(&b, &["init"]).unwrap();
    sls(&a, &["persist", "app", "--app", "kv"]).unwrap();
    sls(&a, &["run", "app", "--steps", "25"]).unwrap();

    let stream: PathBuf = dir_b.path().join("app.sls");
    let stream_s = stream.to_string_lossy().into_owned();
    let out = sls(&a, &["send", "app", "--out", &stream_s]).unwrap();
    assert!(out.contains("sent app"));

    let out = sls(&b, &["recv", "--in", &stream_s]).unwrap();
    assert!(out.contains("received checkpoint"));
    let out = sls(&b, &["restore", "app"]).unwrap();
    assert!(out.contains("keys: 25"), "migrated state intact: {out}");
}

#[test]
fn errors_are_reported_not_panicked() {
    let (_dir, base) = world();
    assert!(sls(&base, &["ps"]).is_err(), "no world yet");
    sls(&base, &["init"]).unwrap();
    assert!(sls(&base, &["restore", "ghost"]).is_err());
    assert!(sls(&base, &["bogus-command"]).is_err());
    assert!(sls(&base, &["persist"]).is_err(), "missing name");
    assert!(sls(&base, &["persist", "x", "--app", "nope"]).is_err());
}

#[test]
fn scrub_and_info_report_health() {
    let (_dir, base) = world();
    sls(&base, &["init"]).unwrap();
    sls(&base, &["persist", "app", "--app", "kv"]).unwrap();
    sls(&base, &["run", "app", "--steps", "10"]).unwrap();

    let out = sls(&base, &["scrub"]).unwrap();
    assert!(out.contains("device healthy"), "scrub health: {out}");
    assert!(out.contains("clean"), "scrub verdict: {out}");

    let out = sls(&base, &["info"]).unwrap();
    assert!(out.contains("device: healthy"), "info health: {out}");
    assert!(out.contains("degraded"), "info counters: {out}");

    let help = sls(&base, &["--help"]).unwrap();
    assert!(help.contains("scrub"), "help mentions scrub");
}
