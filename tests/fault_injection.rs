//! Crash-consistency sweep: cut device power at every interesting write
//! during checkpoint flushes and verify that recovery always lands on a
//! consistent committed state — never a torn or mixed one.

use aurora::core::restore::RestoreMode;
use aurora::core::Host;
use aurora::hw::{FaultPlan, ModelDev};
use aurora::objstore::StoreConfig;
use aurora::sim::SimClock;

fn boot() -> Host {
    let clock = SimClock::new();
    let dev = Box::new(ModelDev::nvme(clock, "nvme0", 64 * 1024));
    Host::boot(
        "fault",
        dev,
        StoreConfig {
            journal_blocks: 512,
            ..StoreConfig::default()
        },
    )
    .unwrap()
}

/// Runs the scenario with power cut at metadata write `cut_at` of the
/// second checkpoint; returns the value recovered after reboot.
fn run_with_cut(cut_at: u64, torn: usize) -> Vec<u8> {
    let mut host = boot();
    let pid = host.kernel.spawn("app");
    let addr = host.kernel.mmap_anon(pid, 4 * 4096, false).unwrap();
    host.kernel.mem_write(pid, addr, b"state-v1").unwrap();
    let gid = host.persist("app", pid).unwrap();
    let bd = host.checkpoint(gid, true, Some("v1")).unwrap();
    host.clock.advance_to(bd.durable_at);

    // Second checkpoint, with the device set to die mid-flush.
    host.kernel.mem_write(pid, addr, b"state-v2").unwrap();
    host.sls
        .primary
        .borrow_mut()
        .device_mut()
        .install_fault_plan(if torn > 0 {
            FaultPlan::torn_write(cut_at, torn)
        } else {
            FaultPlan::power_cut(cut_at)
        });
    // The cut may land before, inside, or after the commit record; the
    // call's success says nothing about what survived on the platter.
    let _ = host.checkpoint(gid, false, Some("v2"));

    // Reboot and restore whatever survived.
    let mut host = host.crash_and_reboot().unwrap();
    let store = host.sls.primary.clone();
    let head = store.borrow().head().expect("v1 at minimum");
    let r = host.restore(&store, head, RestoreMode::Eager).unwrap();
    let np = r.root_pid().unwrap();
    let mut buf = [0u8; 8];
    host.kernel.mem_read(np, addr, &mut buf).unwrap();

    // Whichever checkpoint recovery chose, it must be one of the two
    // committed states — never a mixture.
    assert!(
        &buf == b"state-v1" || &buf == b"state-v2",
        "recovered garbage {buf:?} (cut at {cut_at})"
    );
    buf.to_vec()
}

#[test]
fn power_cut_sweep_over_checkpoint_writes() {
    let mut recovered_v1 = 0;
    let mut recovered_v2 = 0;
    // The second checkpoint issues a handful of metadata writes
    // (journal record, superblock) — cut at each of the first eight.
    for cut_at in 1..=8 {
        let v = run_with_cut(cut_at, 0);
        if v == b"state-v1" {
            recovered_v1 += 1;
        } else {
            recovered_v2 += 1;
        }
    }
    // Early cuts must lose v2; late cuts may keep it. Both classes must
    // appear across the sweep for it to be meaningful.
    assert!(recovered_v1 > 0, "some cut should drop the torn checkpoint");
    assert!(
        recovered_v2 > 0,
        "some cut should land after the commit point"
    );
}

#[test]
fn torn_writes_are_detected_by_crcs() {
    for cut_at in 1..=4 {
        // Tear the interrupted write halfway: CRCs must reject the torn
        // record and recovery must fall back cleanly.
        let v = run_with_cut(cut_at, 2048);
        assert!(v == b"state-v1" || v == b"state-v2");
    }
}

#[test]
fn repeated_crashes_never_lose_committed_history() {
    let mut host = boot();
    let mut pid = host.kernel.spawn("app");
    let addr = host.kernel.mmap_anon(pid, 4096, false).unwrap();
    let mut gid = host.persist("app", pid).unwrap();

    let mut committed = Vec::new();
    for round in 0..5u32 {
        host.kernel
            .mem_write(pid, addr, format!("round-{round}").as_bytes())
            .unwrap();
        let bd = host
            .checkpoint(gid, round == 0, Some(&format!("r{round}")))
            .unwrap();
        host.clock.advance_to(bd.durable_at);
        committed.push((round, bd.ckpt.unwrap()));

        // Crash, reboot, verify EVERY committed checkpoint.
        host = host.crash_and_reboot().unwrap();
        let store = host.sls.primary.clone();
        for &(r_no, ckpt) in &committed {
            let r = host.restore(&store, ckpt, RestoreMode::Eager).unwrap();
            let np = r.root_pid().unwrap();
            let mut buf = [0u8; 7];
            host.kernel.mem_read(np, addr, &mut buf).unwrap();
            assert_eq!(&buf, format!("round-{r_no}").as_bytes());
            let _ = host.kernel.exit(np, 0);
            host.kernel.procs.remove(&np);
        }
        // Resume the app from the newest state for the next round.
        let r = host
            .restore(&store, committed.last().unwrap().1, RestoreMode::Eager)
            .unwrap();
        pid = r.root_pid().unwrap();
        gid = host.persist("app", pid).unwrap();
    }

    // Silent-corruption detection: flip a bit in the next journal write;
    // the CRC rejects the record at recovery and the prior state stands.
    host.sls
        .primary
        .borrow_mut()
        .device_mut()
        .install_fault_plan(FaultPlan::corrupt(1, 100, 3));
    let _ = host.checkpoint(gid, false, Some("corrupted"));
    let host = host.crash_and_reboot().unwrap();
    assert!(host.sls.primary.borrow().head().is_some());
}

/// A permanent run of transient faults exhausts the retry budget: the
/// checkpoint must abort WITHOUT touching the previous durable snapshot,
/// and the pipeline must recover with a full checkpoint once the device
/// heals.
#[test]
fn aborted_checkpoint_leaves_previous_snapshot_restorable() {
    use aurora::core::CheckpointOutcome;
    use aurora::hw::DevHealth;

    let mut host = boot();
    let pid = host.kernel.spawn("app");
    let addr = host.kernel.mmap_anon(pid, 4 * 4096, false).unwrap();
    host.kernel.mem_write(pid, addr, b"state-v1").unwrap();
    let gid = host.persist("app", pid).unwrap();
    let bd = host.checkpoint(gid, true, Some("v1")).unwrap();
    host.clock.advance_to(bd.durable_at);
    let v1 = bd.ckpt.unwrap();

    // Every write fails with a transient error for longer than the retry
    // budget: a permanent fault as far as the pipeline can tell.
    host.kernel.mem_write(pid, addr, b"state-v2").unwrap();
    host.sls
        .primary
        .borrow_mut()
        .device_mut()
        .install_fault_plan(FaultPlan::transient(1, 10_000));
    let bd = host.checkpoint(gid, false, Some("v2")).unwrap();
    assert_eq!(bd.outcome, CheckpointOutcome::Aborted);
    assert!(bd.fault.is_some(), "abort reports its cause");
    assert!(bd.ckpt.is_none(), "no checkpoint id for an aborted attempt");
    assert_eq!(host.sls.stats.checkpoints_aborted, 1);

    // Each aborted flush surfaces one exhausted retry; after three in a
    // row with no intervening success the device is marked degraded.
    for _ in 0..2 {
        let bd = host.checkpoint(gid, true, None).unwrap();
        assert_eq!(bd.outcome, CheckpointOutcome::Aborted);
    }
    assert_eq!(host.sls.stats.checkpoints_aborted, 3);
    assert_eq!(
        host.sls.primary.borrow().device().health(),
        DevHealth::Degraded,
        "repeated failures degrade the device"
    );

    // The previous snapshot is untouched and restorable right now.
    let store = host.sls.primary.clone();
    assert_eq!(store.borrow().head(), Some(v1), "head still the old snapshot");
    assert!(store.borrow().fsck().is_empty(), "store consistent after abort");
    let r = host.restore(&store, v1, RestoreMode::Eager).unwrap();
    let np = r.root_pid().unwrap();
    let mut buf = [0u8; 8];
    host.kernel.mem_read(np, addr, &mut buf).unwrap();
    assert_eq!(&buf, b"state-v1");
    let _ = host.kernel.exit(np, 0);
    host.kernel.procs.remove(&np);

    // Device heals; the next checkpoint degrades to full and commits.
    host.sls
        .primary
        .borrow_mut()
        .device_mut()
        .install_fault_plan(FaultPlan::default());
    host.kernel.mem_write(pid, addr, b"state-v3").unwrap();
    let bd = host.checkpoint(gid, false, Some("v3")).unwrap();
    assert_eq!(bd.outcome, CheckpointOutcome::DegradedToFull);
    assert!(bd.full, "abort forces the next checkpoint full");
    assert_eq!(host.sls.stats.checkpoints_degraded, 1);
    host.clock.advance_to(bd.durable_at);
    assert_eq!(
        host.sls.primary.borrow().device().health(),
        DevHealth::Healthy,
        "a successful write heals the device"
    );

    // And the committed chain survives a crash.
    drop(store);
    let mut host = host.crash_and_reboot().unwrap();
    let store = host.sls.primary.clone();
    assert!(store.borrow_mut().scrub().is_empty());
    let head = store.borrow().head().unwrap();
    let r = host.restore(&store, head, RestoreMode::Eager).unwrap();
    let np = r.root_pid().unwrap();
    host.kernel.mem_read(np, addr, &mut buf).unwrap();
    assert_eq!(&buf, b"state-v3");
}

/// Power-cut sweep during journal garbage collection: compaction writes
/// its snapshot into the idle journal half, so a cut at ANY write during
/// GC must leave a durable superblock pointing at an intact journal.
#[test]
fn power_cut_sweep_during_journal_gc() {
    use aurora::objstore::{ObjId, ObjectStore};
    use aurora::vm::PageData;

    fn small_store() -> ObjectStore {
        let clock = SimClock::new();
        let dev = Box::new(aurora::hw::ModelDev::nvme(clock, "nvme0", 64 * 1024));
        ObjectStore::format(
            dev,
            StoreConfig {
                journal_blocks: 8, // tiny: half = 16 KiB, compacts quickly
                dedup: true,
                materialize_data: false,
                ..StoreConfig::default()
            },
        )
        .unwrap()
    }

    // Probe: find the commit that triggers the first compaction.
    let trigger = {
        let mut s = small_store();
        s.create_object(ObjId(1), 4).unwrap();
        let mut n = 0u64;
        loop {
            s.write_page(ObjId(1), n % 4, &PageData::Seeded(n)).unwrap();
            s.commit(Some(&format!("c{n}"))).unwrap();
            n += 1;
            if s.stats.compactions > 0 {
                break n;
            }
            assert!(n < 10_000, "compaction never triggered");
        }
    };

    // Sweep: cut power at each of the writes the compacting commit
    // issues (snapshot, guard block, journal record, superblock).
    for cut_at in 1..=6u64 {
        let mut s = small_store();
        s.create_object(ObjId(1), 4).unwrap();
        for n in 0..trigger - 1 {
            s.write_page(ObjId(1), n % 4, &PageData::Seeded(n)).unwrap();
            s.commit(Some(&format!("c{n}"))).unwrap();
        }
        s.device_mut().install_fault_plan(FaultPlan::power_cut(cut_at));
        s.write_page(ObjId(1), (trigger - 1) % 4, &PageData::Seeded(trigger - 1))
            .unwrap();
        let _ = s.commit(Some(&format!("c{}", trigger - 1)));

        let s = s.recover().unwrap();
        let problems = s.scrub();
        assert!(
            problems.is_empty(),
            "cut at {cut_at} during GC left damage: {problems:?}"
        );
        let head = s.head().expect("committed history survives GC cut");
        // The head must be a complete committed state: its page readable
        // and matching the round that committed it.
        let name = s.checkpoint(head).unwrap().name.clone().unwrap();
        let round: u64 = name[1..].parse().unwrap();
        assert!(
            s.read_page(ObjId(1), round % 4)
                .unwrap()
                .unwrap()
                .content_eq(&PageData::Seeded(round)),
            "cut at {cut_at}: head {name} torn"
        );
    }
}

/// Power-cut sweep while SLSFS file writes are being checkpointed: after
/// reboot the file must hold the old or the new contents, never a mix,
/// and the store must scrub clean.
#[test]
fn power_cut_sweep_during_slsfs_file_writes() {
    for cut_at in 1..=8u64 {
        let mut host = boot();
        let pid = host.kernel.spawn("app");
        let fd = host.kernel.open(pid, "/sls/data.txt", true).unwrap();
        host.kernel.write(pid, fd, b"file-v1").unwrap();
        let gid = host.persist("app", pid).unwrap();
        let bd = host.checkpoint(gid, true, Some("v1")).unwrap();
        host.clock.advance_to(bd.durable_at);

        // Append more file data, then cut power mid-checkpoint.
        host.kernel.write(pid, fd, b"file-v2").unwrap();
        host.sls
            .primary
            .borrow_mut()
            .device_mut()
            .install_fault_plan(FaultPlan::power_cut(cut_at));
        let _ = host.checkpoint(gid, false, Some("v2"));

        let mut host = host.crash_and_reboot().unwrap();
        assert!(
            host.sls.primary.borrow_mut().scrub().is_empty(),
            "cut at {cut_at}: store damaged"
        );
        let reader = host.kernel.spawn("reader");
        let fd = host.kernel.open(reader, "/sls/data.txt", false).unwrap();
        let content = host.kernel.read(reader, fd, 64).unwrap();
        assert!(
            content == b"file-v1" || content == b"file-v1file-v2",
            "cut at {cut_at}: torn file contents {:?}",
            String::from_utf8_lossy(&content)
        );
    }
}

/// A corrupted superblock slot must not take the store down: recovery
/// falls back to the other (older but valid) slot and lands on a
/// committed state.
#[test]
fn corrupted_superblock_falls_back_to_the_other_slot() {
    let mut host = boot();
    let pid = host.kernel.spawn("app");
    let addr = host.kernel.mmap_anon(pid, 4096, false).unwrap();
    let gid = host.persist("app", pid).unwrap();

    let mut committed = Vec::new();
    for round in 0..3u64 {
        host.kernel
            .mem_write(pid, addr, format!("round-{round}").as_bytes())
            .unwrap();
        let bd = host
            .checkpoint(gid, round == 0, Some(&format!("r{round}")))
            .unwrap();
        host.clock.advance_to(bd.durable_at);
        committed.push(format!("round-{round}"));
    }

    // From now on every write to superblock slot 0 (LBA 0) is silently
    // corrupted on the platter; slot 1 stays good.
    host.sls
        .primary
        .borrow_mut()
        .device_mut()
        .install_fault_plan(FaultPlan::corrupt_blocks(0, 1, 100, 2));
    for round in 3..5u64 {
        host.kernel
            .mem_write(pid, addr, format!("round-{round}").as_bytes())
            .unwrap();
        let bd = host
            .checkpoint(gid, false, Some(&format!("r{round}")))
            .unwrap();
        host.clock.advance_to(bd.durable_at);
        committed.push(format!("round-{round}"));
    }

    // Recovery must reject the corrupt slot (CRC) and pick the other.
    let mut host = host.crash_and_reboot().unwrap();
    let store = host.sls.primary.clone();
    assert!(store.borrow_mut().scrub().is_empty());
    let head = store.borrow().head().expect("fallback slot recovers history");
    let r = host.restore(&store, head, RestoreMode::Eager).unwrap();
    let np = r.root_pid().unwrap();
    let mut buf = [0u8; 7];
    host.kernel.mem_read(np, addr, &mut buf).unwrap();
    assert!(
        committed.iter().any(|c| c.as_bytes() == buf),
        "recovered state {:?} is not a committed round",
        String::from_utf8_lossy(&buf)
    );
}

/// Boots a host on a materialized store (page bytes really live on the
/// device) with a wide workload committed, ready for restore-path fault
/// injection. Returns (host, addr, ckpt).
fn boot_materialized_with_baseline() -> (Host, u64, aurora::objstore::CkptId) {
    let clock = SimClock::new();
    let dev = Box::new(ModelDev::nvme(clock, "nvme0", 64 * 1024));
    let mut host = Host::boot(
        "read-fault",
        dev,
        StoreConfig {
            journal_blocks: 512,
            materialize_data: true,
            ..StoreConfig::default()
        },
    )
    .unwrap();
    let pid = host.kernel.spawn("app");
    let pages = 96u64;
    let addr = host.kernel.mmap_anon(pid, pages * 4096, false).unwrap();
    for p in 0..pages {
        let body = format!("read-fault-p{p:04}");
        host.kernel
            .mem_write(pid, addr + p * 4096, body.as_bytes())
            .unwrap();
    }
    let gid = host.persist("app", pid).unwrap();
    let bd = host.checkpoint(gid, true, Some("base")).unwrap();
    host.clock.advance_to(bd.durable_at);
    let ckpt = bd.ckpt.unwrap();
    // Cold store: the restore must read the device.
    host.sls.primary.borrow_mut().drop_caches().unwrap();
    (host, addr, ckpt)
}

/// Transient read errors during a batched restore are absorbed by the
/// resilient device's bounded retries: the restore succeeds, the
/// restored memory is exact, and the retry counters prove the faults
/// actually fired.
#[test]
fn transient_read_errors_absorbed_during_batched_restore() {
    let (mut host, addr, ckpt) = boot_materialized_with_baseline();
    host.sls.restore_workers = 4;
    host.sls
        .primary
        .borrow_mut()
        .device_mut()
        .install_fault_plan(FaultPlan::transient_reads(3, 2));

    let store = host.sls.primary.clone();
    let r = host.restore(&store, ckpt, RestoreMode::Eager).unwrap();
    let np = r.root_pid().unwrap();
    let mut buf = [0u8; 15];
    host.kernel.mem_read(np, addr + 17 * 4096, &mut buf).unwrap();
    assert_eq!(&buf, b"read-fault-p001".as_slice().get(0..15).unwrap());
    let mut buf = [0u8; 15];
    host.kernel.mem_read(np, addr, &mut buf).unwrap();
    assert_eq!(&buf[..14], b"read-fault-p00");

    let rs = host.sls.primary.borrow().device().retry_stats();
    assert!(
        rs.reads_retried > 0,
        "the transient window must force read retries"
    );
    assert!(rs.transient_absorbed > 0);
}

// ---------------------------------------------------------------------------
// Mirrored store: read-repair, failover, resilver.

use aurora::core::CheckpointOutcome;
use aurora::hw::{BlockDev, MirrorDev, ReplicaState};

/// Boots a host whose primary store sits on a `width`-way mirror of
/// simulated NVMe devices, with page bytes materialized on the platter.
fn boot_mirrored(width: usize) -> Host {
    let clock = SimClock::new();
    let members: Vec<Box<dyn BlockDev>> = (0..width)
        .map(|i| {
            Box::new(ModelDev::nvme(clock.clone(), &format!("nvme{i}"), 64 * 1024))
                as Box<dyn BlockDev>
        })
        .collect();
    Host::boot_mirrored(
        "fault-mirror",
        members,
        StoreConfig {
            journal_blocks: 512,
            materialize_data: true,
            ..StoreConfig::default()
        },
    )
    .unwrap()
}

/// Runs `f` on the primary store's mirror.
fn mirror<T>(host: &Host, f: impl FnOnce(&mut MirrorDev) -> T) -> T {
    let mut store = host.sls.primary.borrow_mut();
    f(store.device_mut().as_mirror_mut().expect("mirrored host"))
}

const MPAGES: u64 = 96;

/// Checkpoints a `MPAGES`-page workload while replica 0's platter
/// silently corrupts every data-region write, so replica 0 holds damaged
/// bytes at rest and replica 1 holds the truth. Returns (host, addr).
fn boot_with_rotten_replica0() -> (Host, u64) {
    let mut host = boot_mirrored(2);
    let pid = host.kernel.spawn("app");
    let addr = host.kernel.mmap_anon(pid, MPAGES * 4096, false).unwrap();
    for p in 0..MPAGES {
        let body = format!("mirror-page-{p:04}");
        host.kernel
            .mem_write(pid, addr + p * 4096, body.as_bytes())
            .unwrap();
    }
    let gid = host.persist("app", pid).unwrap();
    let ds = host.sls.primary.borrow().data_start();
    mirror(&host, |m| {
        m.install_replica_fault_plan(0, FaultPlan::corrupt_blocks(ds, u64::MAX, 100, 3))
    })
    .unwrap();
    let bd = host.checkpoint(gid, true, Some("base")).unwrap();
    host.clock.advance_to(bd.durable_at);
    // Electronics healthy again — but the damage is already at rest.
    mirror(&host, |m| m.install_replica_fault_plan(0, FaultPlan::default())).unwrap();
    host.sls.primary.borrow_mut().drop_caches().unwrap();
    (host, addr)
}

/// Restores every page of the named baseline and checks its contents.
fn verify_baseline(host: &mut Host, addr: u64) {
    let store = host.sls.primary.clone();
    let head = store.borrow().head().unwrap();
    let r = host.restore(&store, head, RestoreMode::Eager).unwrap();
    let np = r.root_pid().unwrap();
    for p in 0..MPAGES {
        let want = format!("mirror-page-{p:04}");
        let mut buf = vec![0u8; want.len()];
        host.kernel.mem_read(np, addr + p * 4096, &mut buf).unwrap();
        assert_eq!(buf, want.into_bytes(), "page {p} damaged");
    }
    let _ = host.kernel.exit(np, 0);
    host.kernel.procs.remove(&np);
}

/// At-rest corruption on the preferred replica is healed transparently
/// by the restore's read path: every damaged block is rewritten from
/// the twin, the restore sees only verified bytes, and afterwards the
/// once-rotten replica alone can serve the whole store.
#[test]
fn at_rest_corruption_is_read_repaired_from_the_twin() {
    let (mut host, addr) = boot_with_rotten_replica0();
    verify_baseline(&mut host, addr);

    let repairs = host.sls.primary.borrow().stats.read_repairs;
    assert!(repairs > 0, "the restore must have repaired damaged blocks");
    let ms = mirror(&host, |m| m.mirror_stats());
    assert!(ms.read_repairs > 0, "repairs go through the mirror twin");

    // The platter itself was healed, not just the returned bytes:
    // detach the good twin and serve everything from replica 0.
    mirror(&host, |m| m.kill_replica(1)).unwrap();
    host.sls.primary.borrow_mut().drop_caches().unwrap();
    assert!(
        host.sls.primary.borrow_mut().scrub().is_empty(),
        "healed replica must scrub clean on its own"
    );
    verify_baseline(&mut host, addr);
}

/// `scrub` performs the same read-repair: walking the checkpoints heals
/// every damaged at-rest block from the twin instead of reporting it.
#[test]
fn scrub_heals_at_rest_corruption_via_the_mirror() {
    let (mut host, addr) = boot_with_rotten_replica0();
    let problems = host.sls.primary.borrow_mut().scrub();
    assert!(
        problems.is_empty(),
        "scrub repairs from the twin instead of reporting: {problems:?}"
    );
    let ms = mirror(&host, |m| m.mirror_stats());
    assert!(ms.read_repairs > 0, "scrub healed blocks through the mirror");

    mirror(&host, |m| m.kill_replica(1)).unwrap();
    host.sls.primary.borrow_mut().drop_caches().unwrap();
    assert!(host.sls.primary.borrow_mut().scrub().is_empty());
    verify_baseline(&mut host, addr);
}

/// Power cut in the middle of a read-repair rewrite: the half-repaired
/// replica is detached, never read, and stays untrusted across a
/// reboot; only a completed resilver readmits it.
#[test]
fn power_cut_during_read_repair_rewrite_never_trusts_the_torn_copy() {
    let (mut host, addr) = boot_with_rotten_replica0();
    // Replica 0 dies at its first write — which is the first repair
    // rewrite, since restores issue no other writes.
    mirror(&host, |m| m.install_replica_fault_plan(0, FaultPlan::power_cut(1))).unwrap();
    verify_baseline(&mut host, addr);
    assert_eq!(
        mirror(&host, |m| m.replica_state(0)),
        Some(ReplicaState::Detached),
        "the replica that died mid-rewrite must be detached"
    );

    // The detachment survives the machine crashing and rebooting: the
    // rotten, half-repaired copy is never authoritative.
    mirror(&host, |m| m.install_replica_fault_plan(0, FaultPlan::default())).unwrap();
    let mut host = host.crash_and_reboot().unwrap();
    assert_eq!(
        mirror(&host, |m| m.replica_state(0)),
        Some(ReplicaState::Detached)
    );
    assert!(host.sls.primary.borrow_mut().scrub().is_empty());
    verify_baseline(&mut host, addr);

    // Readmission is only through a full resilver — after which the
    // once-rotten replica alone serves the whole store.
    mirror(&host, |m| m.revive_replica(0)).unwrap();
    let report = host.resilver().unwrap();
    assert_eq!(report.replicas_promoted, 1);
    assert!(report.blocks > 0);
    mirror(&host, |m| m.kill_replica(1)).unwrap();
    host.sls.primary.borrow_mut().drop_caches().unwrap();
    assert!(host.sls.primary.borrow_mut().scrub().is_empty());
    verify_baseline(&mut host, addr);
}

/// Degraded-mode checkpoints keep flowing and say so: with a replica
/// dead the outcome is `DegradedMirror` (still durable), the global
/// counter ticks, and a completed resilver restores `Committed`.
#[test]
fn degraded_mirror_checkpoints_commit_and_report() {
    let mut host = boot_mirrored(2);
    let pid = host.kernel.spawn("app");
    let addr = host.kernel.mmap_anon(pid, 4 * 4096, false).unwrap();
    host.kernel.mem_write(pid, addr, b"state-v1").unwrap();
    let gid = host.persist("app", pid).unwrap();
    let bd = host.checkpoint(gid, true, Some("v1")).unwrap();
    assert_eq!(bd.outcome, CheckpointOutcome::Committed);
    host.clock.advance_to(bd.durable_at);

    mirror(&host, |m| m.kill_replica(1)).unwrap();
    let before = aurora::core::metrics::global_counters().checkpoints_degraded_mirror;
    host.kernel.mem_write(pid, addr, b"state-v2").unwrap();
    let bd = host.checkpoint(gid, false, Some("v2")).unwrap();
    assert_eq!(bd.outcome, CheckpointOutcome::DegradedMirror);
    assert!(bd.outcome.committed(), "a degraded-mirror checkpoint is durable");
    assert!(
        bd.fault.as_deref().unwrap_or_default().contains("mirror degraded"),
        "fault names the cause: {:?}",
        bd.fault
    );
    assert_eq!(
        aurora::core::metrics::global_counters().checkpoints_degraded_mirror,
        before + 1
    );
    host.clock.advance_to(bd.durable_at);

    mirror(&host, |m| m.revive_replica(1)).unwrap();
    host.resilver().unwrap();
    host.kernel.mem_write(pid, addr, b"state-v3").unwrap();
    let bd = host.checkpoint(gid, false, Some("v3")).unwrap();
    assert_eq!(bd.outcome, CheckpointOutcome::Committed, "healed mirror commits clean");
}

/// Damaged media during a batched restore: every read in the data
/// region returns a flipped bit. The restore must refuse the data
/// (content-hash mismatch) instead of wiring garbage — and because
/// reads mutate nothing, disarming the fault leaves a fully intact
/// store behind.
#[test]
fn read_corruption_aborts_restore_and_store_survives() {
    let (mut host, addr, ckpt) = boot_materialized_with_baseline();
    host.sls.restore_workers = 4;
    host.sls
        .primary
        .borrow_mut()
        .device_mut()
        .install_fault_plan(FaultPlan::corrupt_read_blocks(0, u64::MAX, 100, 3));

    let store = host.sls.primary.clone();
    let err = host.restore(&store, ckpt, RestoreMode::Eager).unwrap_err();
    assert!(
        err.to_string().contains("content hash mismatch"),
        "restore must surface the corruption, got: {err}"
    );

    // Healthy electronics again: the store is untouched and the same
    // checkpoint restores exactly.
    host.sls
        .primary
        .borrow_mut()
        .device_mut()
        .install_fault_plan(FaultPlan::default());
    assert!(store.borrow_mut().scrub().is_empty(), "platter never damaged");
    let r = host.restore(&store, ckpt, RestoreMode::Eager).unwrap();
    let np = r.root_pid().unwrap();
    let mut buf = [0u8; 14];
    host.kernel.mem_read(np, addr, &mut buf).unwrap();
    assert_eq!(&buf, b"read-fault-p00");
}
