//! Crash-consistency sweep: cut device power at every interesting write
//! during checkpoint flushes and verify that recovery always lands on a
//! consistent committed state — never a torn or mixed one.

use aurora::core::restore::RestoreMode;
use aurora::core::Host;
use aurora::hw::{FaultPlan, ModelDev};
use aurora::objstore::StoreConfig;
use aurora::sim::SimClock;

fn boot() -> Host {
    let clock = SimClock::new();
    let dev = Box::new(ModelDev::nvme(clock, "nvme0", 64 * 1024));
    Host::boot(
        "fault",
        dev,
        StoreConfig {
            journal_blocks: 512,
            ..StoreConfig::default()
        },
    )
    .unwrap()
}

/// Runs the scenario with power cut at metadata write `cut_at` of the
/// second checkpoint; returns the value recovered after reboot.
fn run_with_cut(cut_at: u64, torn: usize) -> Vec<u8> {
    let mut host = boot();
    let pid = host.kernel.spawn("app");
    let addr = host.kernel.mmap_anon(pid, 4 * 4096, false).unwrap();
    host.kernel.mem_write(pid, addr, b"state-v1").unwrap();
    let gid = host.persist("app", pid).unwrap();
    let bd = host.checkpoint(gid, true, Some("v1")).unwrap();
    host.clock.advance_to(bd.durable_at);

    // Second checkpoint, with the device set to die mid-flush.
    host.kernel.mem_write(pid, addr, b"state-v2").unwrap();
    host.sls
        .primary
        .borrow_mut()
        .device_mut()
        .install_fault_plan(if torn > 0 {
            FaultPlan::torn_write(cut_at, torn)
        } else {
            FaultPlan::power_cut(cut_at)
        });
    // The cut may land before, inside, or after the commit record; the
    // call's success says nothing about what survived on the platter.
    let _ = host.checkpoint(gid, false, Some("v2"));

    // Reboot and restore whatever survived.
    let mut host = host.crash_and_reboot().unwrap();
    let store = host.sls.primary.clone();
    let head = store.borrow().head().expect("v1 at minimum");
    let r = host.restore(&store, head, RestoreMode::Eager).unwrap();
    let np = r.root_pid().unwrap();
    let mut buf = [0u8; 8];
    host.kernel.mem_read(np, addr, &mut buf).unwrap();

    // Whichever checkpoint recovery chose, it must be one of the two
    // committed states — never a mixture.
    assert!(
        &buf == b"state-v1" || &buf == b"state-v2",
        "recovered garbage {buf:?} (cut at {cut_at})"
    );
    buf.to_vec()
}

#[test]
fn power_cut_sweep_over_checkpoint_writes() {
    let mut recovered_v1 = 0;
    let mut recovered_v2 = 0;
    // The second checkpoint issues a handful of metadata writes
    // (journal record, superblock) — cut at each of the first eight.
    for cut_at in 1..=8 {
        let v = run_with_cut(cut_at, 0);
        if v == b"state-v1" {
            recovered_v1 += 1;
        } else {
            recovered_v2 += 1;
        }
    }
    // Early cuts must lose v2; late cuts may keep it. Both classes must
    // appear across the sweep for it to be meaningful.
    assert!(recovered_v1 > 0, "some cut should drop the torn checkpoint");
    assert!(
        recovered_v2 > 0,
        "some cut should land after the commit point"
    );
}

#[test]
fn torn_writes_are_detected_by_crcs() {
    for cut_at in 1..=4 {
        // Tear the interrupted write halfway: CRCs must reject the torn
        // record and recovery must fall back cleanly.
        let v = run_with_cut(cut_at, 2048);
        assert!(v == b"state-v1" || v == b"state-v2");
    }
}

#[test]
fn repeated_crashes_never_lose_committed_history() {
    let mut host = boot();
    let mut pid = host.kernel.spawn("app");
    let addr = host.kernel.mmap_anon(pid, 4096, false).unwrap();
    let mut gid = host.persist("app", pid).unwrap();

    let mut committed = Vec::new();
    for round in 0..5u32 {
        host.kernel
            .mem_write(pid, addr, format!("round-{round}").as_bytes())
            .unwrap();
        let bd = host
            .checkpoint(gid, round == 0, Some(&format!("r{round}")))
            .unwrap();
        host.clock.advance_to(bd.durable_at);
        committed.push((round, bd.ckpt.unwrap()));

        // Crash, reboot, verify EVERY committed checkpoint.
        host = host.crash_and_reboot().unwrap();
        let store = host.sls.primary.clone();
        for &(r_no, ckpt) in &committed {
            let r = host.restore(&store, ckpt, RestoreMode::Eager).unwrap();
            let np = r.root_pid().unwrap();
            let mut buf = [0u8; 7];
            host.kernel.mem_read(np, addr, &mut buf).unwrap();
            assert_eq!(&buf, format!("round-{r_no}").as_bytes());
            let _ = host.kernel.exit(np, 0);
            host.kernel.procs.remove(&np);
        }
        // Resume the app from the newest state for the next round.
        let r = host
            .restore(&store, committed.last().unwrap().1, RestoreMode::Eager)
            .unwrap();
        pid = r.root_pid().unwrap();
        gid = host.persist("app", pid).unwrap();
    }

    // Silent-corruption detection: flip a bit in the next journal write;
    // the CRC rejects the record at recovery and the prior state stands.
    host.sls
        .primary
        .borrow_mut()
        .device_mut()
        .install_fault_plan(FaultPlan::corrupt(1, 100, 3));
    let _ = host.checkpoint(gid, false, Some("corrupted"));
    let host = host.crash_and_reboot().unwrap();
    assert!(host.sls.primary.borrow().head().is_some());
}
