//! Table 2 conformance: every `libsls` API function, exercised
//! end-to-end.

use aurora::core::restore::RestoreMode;
use aurora::core::Host;
use aurora::hw::ModelDev;
use aurora::objstore::StoreConfig;
use aurora::sim::SimClock;
use aurora::vm::{map::RestoreHint, SlsPolicy};

fn boot() -> Host {
    let clock = SimClock::new();
    let dev = Box::new(ModelDev::nvme(clock, "nvme0", 128 * 1024));
    Host::boot("t", dev, StoreConfig::default()).unwrap()
}

#[test]
fn sls_checkpoint_creates_an_image() {
    let mut host = boot();
    let pid = host.kernel.spawn("app");
    host.kernel.mmap_anon(pid, 4096, false).unwrap();
    let gid = host.persist("app", pid).unwrap();
    let bd = host.sls_checkpoint(gid, Some("image-1")).unwrap();
    assert!(bd.ckpt.is_some());
    assert!(host
        .sls
        .primary
        .borrow()
        .checkpoint_by_name("image-1")
        .is_some());
}

#[test]
fn sls_restore_restores_a_checkpoint() {
    let mut host = boot();
    let pid = host.kernel.spawn("app");
    let addr = host.kernel.mmap_anon(pid, 4096, false).unwrap();
    host.kernel.mem_write(pid, addr, b"api test").unwrap();
    let gid = host.persist("app", pid).unwrap();
    let bd = host.sls_checkpoint(gid, None).unwrap();
    let store = host.sls.primary.clone();
    let r = host
        .sls_restore(&store, bd.ckpt.unwrap(), RestoreMode::Eager)
        .unwrap();
    let np = r.root_pid().unwrap();
    let mut buf = [0u8; 8];
    host.kernel.mem_read(np, addr, &mut buf).unwrap();
    assert_eq!(&buf, b"api test");
}

#[test]
fn sls_rollback_rolls_back_to_last_checkpoint() {
    let mut host = boot();
    let pid = host.kernel.spawn("app");
    let addr = host.kernel.mmap_anon(pid, 4096, false).unwrap();
    host.kernel.mem_write(pid, addr, b"keep").unwrap();
    let gid = host.persist("app", pid).unwrap();
    host.sls_checkpoint(gid, None).unwrap();
    host.kernel.mem_write(pid, addr, b"lose").unwrap();
    let r = host.sls_rollback(gid, None).unwrap();
    let np = r.root_pid().unwrap();
    let mut buf = [0u8; 4];
    host.kernel.mem_read(np, addr, &mut buf).unwrap();
    assert_eq!(&buf, b"keep");
}

#[test]
fn sls_ntflush_is_a_durable_log_outside_checkpoints() {
    let mut host = boot();
    let pid = host.kernel.spawn("db");
    let gid = host.persist("db", pid).unwrap();
    host.sls_checkpoint(gid, None).unwrap();
    let (fd, _id) = host.ntlog_create(gid, pid).unwrap();
    host.sls_ntflush(gid, pid, fd, b"append-only record").unwrap();
    // Durable immediately — no further checkpoint taken. After reboot
    // the log is addressed by its OWNING group's id (logs live in the
    // group's namespace; reboots allocate fresh ids for new groups).
    let mut host = host.crash_and_reboot().unwrap();
    let pid2 = host.kernel.spawn("db");
    let _gid2 = host.persist("db", pid2).unwrap();
    let fd2 = host.install_ntlog_fd(pid2, 1).unwrap();
    assert_eq!(
        host.ntlog_read(gid, pid2, fd2).unwrap(),
        b"append-only record"
    );
}

#[test]
fn sls_barrier_waits_for_durability() {
    let mut host = boot();
    let pid = host.kernel.spawn("app");
    let addr = host.kernel.mmap_anon(pid, 64 * 4096, false).unwrap();
    host.kernel
        .mem_write(pid, addr, &vec![7u8; 64 * 4096])
        .unwrap();
    let gid = host.persist("app", pid).unwrap();
    let bd = host.sls_checkpoint(gid, None).unwrap();
    assert!(bd.durable_at > host.clock.now(), "flush is asynchronous");
    host.sls_barrier(gid).unwrap();
    assert!(host.clock.now() >= bd.durable_at, "barrier waited");
}

#[test]
fn sls_mctl_excludes_regions_and_hints_restore() {
    let mut host = boot();
    let pid = host.kernel.spawn("app");
    let keep = host.kernel.mmap_anon(pid, 4096, false).unwrap();
    let scratch = host.kernel.mmap_anon(pid, 4096, false).unwrap();
    host.kernel.mem_write(pid, keep, b"k").unwrap();
    host.kernel.mem_write(pid, scratch, b"s").unwrap();
    host.sls_mctl(
        pid,
        scratch,
        SlsPolicy {
            exclude: true,
            restore: RestoreHint::Lazy,
        },
    )
    .unwrap();
    let gid = host.persist("app", pid).unwrap();
    let bd = host.sls_checkpoint(gid, None).unwrap();
    assert_eq!(bd.pages, 1, "excluded region not captured");
    // Bad address errors.
    assert!(host.sls_mctl(pid, 0xdead_0000, SlsPolicy::default()).is_err());
}

#[test]
fn sls_fdctl_controls_external_consistency() {
    let mut host = boot();
    let server = host.kernel.spawn("server");
    let client = host.kernel.spawn("client");
    let lfd = host.kernel.tcp_listen(server, 80).unwrap();
    let cfd = host.kernel.tcp_connect(client, 80).unwrap();
    let sfd = host.kernel.tcp_accept(server, lfd).unwrap();
    let gid = host.persist("server", server).unwrap();

    // Enabled (default): the reply is held until durability.
    host.kernel.write(server, sfd, b"held").unwrap();
    assert!(host.kernel.read(client, cfd, 16).is_err());
    host.sls_checkpoint(gid, None).unwrap();
    host.sls_barrier(gid).unwrap();
    assert_eq!(host.kernel.read(client, cfd, 16).unwrap(), b"held");

    // Disabled: replies flow immediately.
    host.sls_fdctl(server, sfd, false).unwrap();
    host.kernel.write(server, sfd, b"fast").unwrap();
    assert_eq!(host.kernel.read(client, cfd, 16).unwrap(), b"fast");
}

#[test]
fn speculation_uses_rollback_with_notification() {
    let mut host = boot();
    let pid = host.kernel.spawn("spec");
    let addr = host.kernel.mmap_anon(pid, 4096, false).unwrap();
    host.kernel.mem_write(pid, addr, b"base").unwrap();
    let gid = host.persist("spec", pid).unwrap();

    // Commit path: state survives.
    let token = host.speculate_begin(gid).unwrap();
    host.kernel.mem_write(pid, addr, b"win!").unwrap();
    host.speculate_commit(token).unwrap();
    let mut buf = [0u8; 4];
    host.kernel.mem_read(pid, addr, &mut buf).unwrap();
    assert_eq!(&buf, b"win!");

    // Abort path: state reverts and the app is notified.
    let token = host.speculate_begin(gid).unwrap();
    host.kernel.mem_write(pid, addr, b"lose").unwrap();
    let r = host.speculate_abort(token).unwrap();
    let np = r.root_pid().unwrap();
    host.kernel.mem_read(np, addr, &mut buf).unwrap();
    assert_eq!(&buf, b"win!");
    assert!(host.sls_rollback_pending(np));
}
