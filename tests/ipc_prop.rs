//! Full-stack property test over IPC state: random interleavings of
//! pipe writes/reads, Unix-socket messages, checkpoints and
//! crash-restores. In-flight bytes are application state; every byte
//! buffered at checkpoint time must come back exactly once, in order,
//! after a crash — and reads after a rollback must reflect the
//! checkpointed queue, not the lost tail.

use std::collections::VecDeque;

use aurora::core::restore::RestoreMode;
use aurora::core::{GroupId, Host};
use aurora::hw::ModelDev;
use aurora::objstore::StoreConfig;
use aurora::posix::{Fd, Pid};
use aurora::sim::SimClock;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    /// Write `len` fresh pipe bytes (content comes from a counter).
    PipeWrite { len: u16 },
    /// Read up to `max` pipe bytes.
    PipeRead { max: u16 },
    /// Send one socket message of `len` bytes.
    SockSend { len: u8 },
    /// Receive one socket message.
    SockRecv,
    /// Incremental checkpoint of the group.
    Checkpoint,
    /// Power failure, reboot, eager restore of the latest checkpoint.
    CrashRestore,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (1u16..300).prop_map(|len| Op::PipeWrite { len }),
        4 => (1u16..300).prop_map(|max| Op::PipeRead { max }),
        3 => (1u8..40).prop_map(|len| Op::SockSend { len }),
        3 => Just(Op::SockRecv),
        2 => Just(Op::Checkpoint),
        1 => Just(Op::CrashRestore),
    ]
}

/// Reference state for one run: the pipe as a byte sequence counter
/// pair, the socket as a message queue.
#[derive(Debug, Clone, Default)]
struct Model {
    /// Total pipe bytes ever accepted (write cursor).
    wrote: u64,
    /// Total pipe bytes ever read (read cursor).
    read: u64,
    /// Socket messages in flight.
    msgs: VecDeque<Vec<u8>>,
    /// Next socket message sequence number.
    msg_seq: u64,
}

/// Deterministic pipe payload: byte `k` of the stream is `k % 251`.
fn stream_bytes(from: u64, len: usize) -> Vec<u8> {
    (0..len as u64).map(|i| ((from + i) % 251) as u8).collect()
}

/// Deterministic socket message `seq` of `len` bytes.
fn msg_bytes(seq: u64, len: usize) -> Vec<u8> {
    (0..len as u64).map(|i| ((seq * 131 + i) % 251) as u8).collect()
}

fn boot() -> Host {
    let clock = SimClock::new();
    let dev = Box::new(ModelDev::nvme(clock, "nvme0", 128 * 1024));
    Host::boot(
        "ipc",
        dev,
        StoreConfig {
            journal_blocks: 2048,
            ..StoreConfig::default()
        },
    )
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn ipc_state_is_exact_across_crashes(
        ops in proptest::collection::vec(op_strategy(), 1..60)
    ) {
        let mut host = boot();
        let pid = host.kernel.spawn("ipc");
        let (rfd, wfd): (Fd, Fd) = host.kernel.pipe(pid).unwrap();
        let (sa, sb) = host.kernel.socketpair(pid).unwrap();
        let mut gid: GroupId = host.persist("ipc", pid).unwrap();
        let mut live: Pid = pid;

        let mut model = Model::default();
        host.checkpoint(gid, true, None).unwrap();
        host.wait_durable(gid).unwrap();
        let mut snapshot = model.clone();
        // The pid recorded in the latest checkpoint image (restore maps
        // checkpoint-time pids, not birth pids).
        let mut snap_pid: Pid = pid;

        for op in ops {
            match op {
                Op::PipeWrite { len } => {
                    let data = stream_bytes(model.wrote, len as usize);
                    match host.kernel.write(live, wfd, &data) {
                        Ok(n) => model.wrote += n as u64,
                        Err(e) => {
                            // Only backpressure is acceptable.
                            prop_assert_eq!(
                                e.kind(),
                                aurora::sim::error::ErrorKind::WouldBlock
                            );
                            prop_assert_eq!(model.wrote - model.read, 64 * 1024);
                        }
                    }
                }
                Op::PipeRead { max } => {
                    match host.kernel.read(live, rfd, max as usize) {
                        Ok(data) => {
                            let expect = stream_bytes(
                                model.read,
                                (max as u64).min(model.wrote - model.read) as usize,
                            );
                            prop_assert_eq!(&data, &expect, "pipe bytes in order");
                            model.read += data.len() as u64;
                        }
                        Err(e) => {
                            prop_assert_eq!(
                                e.kind(),
                                aurora::sim::error::ErrorKind::WouldBlock
                            );
                            prop_assert_eq!(model.wrote, model.read, "only empty blocks");
                        }
                    }
                }
                Op::SockSend { len } => {
                    let data = msg_bytes(model.msg_seq, len as usize);
                    host.kernel.write(live, sa, &data).unwrap();
                    model.msgs.push_back(data);
                    model.msg_seq += 1;
                }
                Op::SockRecv => {
                    match host.kernel.read(live, sb, usize::MAX) {
                        Ok(data) => {
                            let expect = model.msgs.pop_front();
                            prop_assert_eq!(
                                Some(data),
                                expect,
                                "socket messages FIFO with boundaries"
                            );
                        }
                        Err(_) => {
                            prop_assert!(model.msgs.is_empty(), "only empty blocks");
                        }
                    }
                }
                Op::Checkpoint => {
                    host.checkpoint(gid, false, None).unwrap();
                    host.wait_durable(gid).unwrap();
                    snapshot = model.clone();
                    snap_pid = live;
                }
                Op::CrashRestore => {
                    host = host.crash_and_reboot().unwrap();
                    let store = host.sls.primary.clone();
                    let head = store.borrow().head().unwrap();
                    let r = host.restore(&store, head, RestoreMode::Eager).unwrap();
                    live = r.restored_pid(snap_pid.0).expect("root restored");
                    model = snapshot.clone();
                    gid = host.persist("ipc", live).unwrap();
                }
            }
        }

        // Drain both channels and confirm the tails.
        let left = model.wrote - model.read;
        if left > 0 {
            let data = host.kernel.read(live, rfd, left as usize).unwrap();
            prop_assert_eq!(&data, &stream_bytes(model.read, left as usize));
        }
        while let Some(expect) = model.msgs.pop_front() {
            prop_assert_eq!(host.kernel.read(live, sb, usize::MAX).unwrap(), expect);
        }
    }
}
