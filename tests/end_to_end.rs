//! Workspace-spanning scenario: a multi-process container with shared
//! memory, pipes, Unix sockets with a parked descriptor, files (one
//! unlinked-but-open), and TCP clients outside the group — checkpointed
//! under load, crashed, restored, and verified piece by piece.

use aurora::core::restore::RestoreMode;
use aurora::core::Host;
use aurora::hw::ModelDev;
use aurora::objstore::StoreConfig;
use aurora::sim::SimClock;

fn boot() -> Host {
    let clock = SimClock::new();
    let dev = Box::new(ModelDev::nvme(clock, "nvme0", 128 * 1024));
    Host::boot("e2e", dev, StoreConfig::default()).unwrap()
}

#[test]
fn container_with_every_primitive_survives_a_crash() {
    let mut host = boot();

    // --- Build the application: a 3-process container. -----------------
    let leader = host.kernel.spawn("leader");
    let ct = host.kernel.container_create("app-ct", "/ct/app");
    host.kernel.container_add(ct, leader).unwrap();

    // Shared SysV memory between leader and worker.
    host.kernel.shmget(7, 4096).unwrap();
    let shm = host.kernel.shmat(leader, 7).unwrap();
    host.kernel.mem_write(leader, shm, b"shared-state").unwrap();

    // Fork a worker (inherits container and shm mapping).
    let worker = host.kernel.fork(leader).unwrap();

    // A pipe with unread bytes between them.
    let (rfd, wfd) = host.kernel.pipe(leader).unwrap();
    host.kernel.write(leader, wfd, b"queued work item").unwrap();

    // A Unix socketpair with an in-flight descriptor: the leader passes
    // the worker an open file.
    let (ua, ub) = host.kernel.socketpair(leader).unwrap();
    let passed = host.kernel.open(leader, "/sls/passed.txt", true).unwrap();
    host.kernel.write(leader, passed, b"you got mail").unwrap();
    host.kernel.sendmsg(leader, ua, b"fd inside", &[passed]).unwrap();
    host.kernel.close(leader, passed).unwrap();

    // An unlinked-but-open scratch file.
    let scratch = host.kernel.open(leader, "/sls/scratch", true).unwrap();
    host.kernel.write(leader, scratch, b"anonymous bytes").unwrap();
    host.kernel.unlink_path(leader, "/sls/scratch").unwrap();

    // A third process: the grandchild.
    let grandchild = host.kernel.fork(worker).unwrap();
    host.kernel.set_reg(grandchild, 0, 0x6C0).unwrap();

    // An external TCP client (outside the group).
    let client = host.kernel.spawn("external");
    let lfd = host.kernel.tcp_listen(leader, 443).unwrap();
    let cfd = host.kernel.tcp_connect(client, 443).unwrap();
    let sfd = host.kernel.tcp_accept(leader, lfd).unwrap();

    // --- Persist the container and run under load. ----------------------
    let gid = host.persist_container("app-ct", ct).unwrap();
    host.checkpoint(gid, true, None).unwrap();

    // The leader replies to the external client (held by external
    // consistency), writes memory, and we checkpoint incrementally.
    host.kernel.write(leader, sfd, b"response-1").unwrap();
    host.kernel.mem_write(leader, shm, b"updated-state").unwrap();
    let bd = host.checkpoint(gid, false, Some("final")).unwrap();
    host.clock.advance_to(bd.durable_at);
    host.poll_durability();
    assert_eq!(
        host.kernel.read(client, cfd, 64).unwrap(),
        b"response-1",
        "reply released once durable"
    );

    // --- Crash and restore. ----------------------------------------------
    let mut host = host.crash_and_reboot().unwrap();
    let store = host.sls.primary.clone();
    let ckpt = store.borrow().checkpoint_by_name("final").unwrap().id;
    let r = host.restore(&store, ckpt, RestoreMode::Eager).unwrap();

    let nl = r.restored_pid(leader.0).unwrap();
    let nw = r.restored_pid(worker.0).unwrap();
    let ng = r.restored_pid(grandchild.0).unwrap();

    // Process tree.
    assert_eq!(host.kernel.proc_ref(nw).unwrap().ppid, nl);
    assert_eq!(host.kernel.proc_ref(ng).unwrap().ppid, nw);
    // Registers.
    assert_eq!(host.kernel.get_reg(ng, 0).unwrap(), 0x6C0);
    // Shared memory: updated value, still shared.
    let mut buf = [0u8; 13];
    host.kernel.mem_read(nw, shm, &mut buf).unwrap();
    assert_eq!(&buf, b"updated-state");
    host.kernel.mem_write(ng, shm, b"grandchild!!!").unwrap();
    host.kernel.mem_read(nl, shm, &mut buf).unwrap();
    assert_eq!(&buf, b"grandchild!!!");
    // Pipe contents.
    assert_eq!(host.kernel.read(nl, rfd, 64).unwrap(), b"queued work item");
    // In-flight descriptor arrives and works.
    let (bytes, fds) = host.kernel.recvmsg(nl, ub).unwrap();
    assert_eq!(bytes, b"fd inside");
    host.kernel.lseek(nl, fds[0], 0).unwrap();
    assert_eq!(host.kernel.read(nl, fds[0], 64).unwrap(), b"you got mail");
    // Unlinked-but-open file data intact.
    host.kernel.lseek(nl, scratch, 0).unwrap();
    assert_eq!(host.kernel.read(nl, scratch, 64).unwrap(), b"anonymous bytes");
    // The external TCP connection restores disconnected (peer was
    // outside the group) — reads report EOF rather than stale data.
    assert_eq!(host.kernel.read(nl, sfd, 64).unwrap(), b"");
    // The container came back.
    let ps = host.ps();
    assert!(ps.is_empty() || ps.iter().all(|e| !e.members.contains(&nl)));
    let restored_ct = host
        .kernel
        .proc_ref(nl)
        .unwrap()
        .container
        .expect("container restored");
    let members = host.kernel.container_procs(restored_ct).unwrap();
    assert!(members.contains(&nl) && members.contains(&nw) && members.contains(&ng));
}

#[test]
fn two_groups_are_independent() {
    let mut host = boot();
    let a = host.kernel.spawn("a");
    let b = host.kernel.spawn("b");
    let addr_a = host.kernel.mmap_anon(a, 4096, false).unwrap();
    let addr_b = host.kernel.mmap_anon(b, 4096, false).unwrap();
    host.kernel.mem_write(a, addr_a, b"AAAA").unwrap();
    host.kernel.mem_write(b, addr_b, b"BBBB").unwrap();
    let ga = host.persist("a", a).unwrap();
    let gb = host.persist("b", b).unwrap();
    let bda = host.checkpoint(ga, true, Some("a1")).unwrap();
    host.kernel.mem_write(b, addr_b, b"B2B2").unwrap();
    let bdb = host.checkpoint(gb, true, Some("b1")).unwrap();

    // Rolling back A does not disturb B.
    host.rollback(ga, bda.ckpt).unwrap();
    let mut buf = [0u8; 4];
    host.kernel.mem_read(b, addr_b, &mut buf).unwrap();
    assert_eq!(&buf, b"B2B2");
    // B's checkpoint restores B only.
    let store = host.sls.primary.clone();
    let r = host.restore(&store, bdb.ckpt.unwrap(), RestoreMode::Eager).unwrap();
    assert_eq!(r.pid_map.len(), 1);
}
