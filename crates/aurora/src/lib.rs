//! # Aurora — a single level store, in simulation
//!
//! A from-scratch Rust reproduction of *"The Aurora Operating System:
//! Revisiting the Single Level Store"* (HotOS '21): an operating system
//! that transparently and continuously persists entire applications —
//! CPU state, kernel objects, and memory — up to 100 times per second.
//!
//! The paper's prototype is ~19k SLOC of FreeBSD kernel changes on real
//! Optane hardware; this reproduction rebuilds the whole architecture as
//! a deterministic user-space simulator with a virtual clock and
//! calibrated device models, so every published experiment can be re-run
//! and extended on a laptop. See `DESIGN.md` for the substitution map
//! and `EXPERIMENTS.md` for paper-vs-measured results.
//!
//! ## Crate map
//!
//! | Crate | Role |
//! |---|---|
//! | [`sim`] | virtual clock, cost model, codec, deterministic RNG |
//! | [`hw`] | NVMe/NVDIMM/ramdisk/network device models + fault injection |
//! | [`vm`] | Mach-style VM: shadow chains, Aurora's checkpoint COW, clock pageout |
//! | [`posix`] | processes, descriptors, pipes, sockets, SysV/POSIX IPC, VFS |
//! | [`objstore`] | COW object store: commits, dedup, in-place GC, recovery |
//! | [`slsfs`] | the Aurora file system over the object store |
//! | [`core`] | **the SLS**: orchestrator, libsls API, restore, migration |
//! | [`apps`] | in-simulator Redis/RocksDB-like stores, serverless runtime |
//! | [`cli`] | the `sls` command-line tool |
//!
//! ## Quickstart
//!
//! ```
//! use aurora::core::{Host, restore::RestoreMode};
//! use aurora::hw::ModelDev;
//! use aurora::objstore::StoreConfig;
//! use aurora::sim::SimClock;
//!
//! // Boot a machine with an NVMe-backed store.
//! let clock = SimClock::new();
//! let dev = Box::new(ModelDev::nvme(clock, "nvme0", 64 * 1024));
//! let mut host = Host::boot("demo", dev, StoreConfig::default()).unwrap();
//!
//! // An application: all state in simulated memory + registers.
//! let pid = host.kernel.spawn("app");
//! let addr = host.kernel.mmap_anon(pid, 4096, false).unwrap();
//! host.kernel.mem_write(pid, addr, b"survives crashes").unwrap();
//!
//! // Transparent persistence: one call, no application code.
//! let gid = host.persist("app", pid).unwrap();
//! let bd = host.checkpoint(gid, true, Some("snap")).unwrap();
//! host.clock.advance_to(bd.durable_at);
//!
//! // The machine dies; the store recovers; the app comes back.
//! let mut host = host.crash_and_reboot().unwrap();
//! let store = host.sls.primary.clone();
//! let head = store.borrow().head().unwrap();
//! let r = host.restore(&store, head, RestoreMode::Eager).unwrap();
//! let pid = r.root_pid().unwrap();
//! let mut buf = [0u8; 16];
//! host.kernel.mem_read(pid, addr, &mut buf).unwrap();
//! assert_eq!(&buf, b"survives crashes");
//! ```

pub use aurora_apps as apps;
pub use aurora_cli as cli;
pub use aurora_core as core;
pub use aurora_hw as hw;
pub use aurora_objstore as objstore;
pub use aurora_posix as posix;
pub use aurora_sim as sim;
pub use aurora_slsfs as slsfs;
pub use aurora_vm as vm;
