//! Application-level integration tests: every KV persistence strategy
//! survives a machine crash; the LSM tree recovers through both log
//! strategies; transparent persistence needs zero application code.

use aurora_apps::kv::{KvOp, KvServer, PersistMode};
use aurora_apps::lsm::{LsmLog, LsmTree};
use aurora_apps::workload::{KeyDist, Workload};
use aurora_core::restore::RestoreMode;
use aurora_core::{GroupId, Host};
use aurora_hw::ModelDev;
use aurora_objstore::StoreConfig;
use aurora_sim::SimClock;

fn new_host() -> Host {
    let clock = SimClock::new();
    let dev = Box::new(ModelDev::nvme(clock, "nvme0", 256 * 1024));
    Host::boot(
        "h",
        dev,
        StoreConfig {
            journal_blocks: 2048,
            ..StoreConfig::default()
        },
    )
    .unwrap()
}

fn seed_data(host: &mut Host, server: &mut KvServer, n: u32) {
    for i in 0..n {
        server
            .exec(
                host,
                &KvOp::Set(
                    format!("user:{i}").into_bytes(),
                    format!("value-{i}").into_bytes(),
                ),
            )
            .unwrap();
    }
}

fn check_data(host: &mut Host, server: &mut KvServer, n: u32) {
    for i in 0..n {
        let v = server
            .exec(host, &KvOp::Get(format!("user:{i}").into_bytes()))
            .unwrap();
        assert_eq!(
            v.as_deref(),
            Some(format!("value-{i}").as_bytes()),
            "key user:{i}"
        );
    }
}

#[test]
fn wal_mode_survives_crash() {
    let mut host = new_host();
    let mut server = KvServer::start(&mut host, PersistMode::WalFsync, 8 << 20, 256).unwrap();
    seed_data(&mut host, &mut server, 50);
    server
        .exec(&mut host, &KvOp::Del(b"user:7".to_vec()))
        .unwrap();

    let mut host = host.crash_and_reboot().unwrap();
    let mut server = KvServer::recover_wal(&mut host, 8 << 20, 256).unwrap();
    assert_eq!(server.len(&mut host).unwrap(), 49);
    assert_eq!(
        server
            .exec(&mut host, &KvOp::Get(b"user:7".to_vec()))
            .unwrap(),
        None
    );
    check_data(&mut host, &mut server, 7);
    // Recovered server keeps serving and persisting.
    server
        .exec(&mut host, &KvOp::Set(b"post".to_vec(), b"crash".to_vec()))
        .unwrap();
}

#[test]
fn fork_snapshot_mode_survives_crash_to_last_snapshot() {
    let mut host = new_host();
    let mut server = KvServer::start(
        &mut host,
        PersistMode::ForkSnapshot { every: 20 },
        8 << 20,
        256,
    )
    .unwrap();
    // 45 sets: snapshots after op 20 and 40; ops 41-45 will be lost.
    seed_data(&mut host, &mut server, 45);
    assert!(server.snapshot_stalls.as_nanos() > 0, "fork pauses counted");

    let mut host = host.crash_and_reboot().unwrap();
    let mut server = KvServer::recover_rdb(&mut host, 8 << 20, 256, 20).unwrap();
    let len = server.len(&mut host).unwrap();
    assert_eq!(len, 40, "recovered to the last snapshot boundary");
    check_data(&mut host, &mut server, 40);
}

#[test]
fn aurora_transparent_mode_needs_no_code() {
    let mut host = new_host();
    let mut server =
        KvServer::start(&mut host, PersistMode::AuroraTransparent, 8 << 20, 256).unwrap();
    let gid = server.gid.unwrap();
    seed_data(&mut host, &mut server, 30);
    // The SLS checkpoints transparently (here: explicit tick).
    let bd = host.checkpoint(gid, false, None).unwrap();
    host.clock.advance_to(bd.durable_at);
    // Data written after the checkpoint is lost on crash — transparent
    // persistence gives the last-checkpoint cut.
    seed_data(&mut host, &mut server, 35);

    let mut host = host.crash_and_reboot().unwrap();
    let store = host.sls.primary.clone();
    let head = store.borrow().head().unwrap();
    let r = host.restore(&store, head, RestoreMode::Eager).unwrap();
    let pid = r.root_pid().unwrap();
    let mut server = KvServer::attach(&mut host, pid, PersistMode::AuroraTransparent).unwrap();
    assert_eq!(server.len(&mut host).unwrap(), 30);
    // The op counter register also resumed (before the Gets below
    // bump it further).
    assert_eq!(server.ops_executed(&host), 30);
    check_data(&mut host, &mut server, 30);
}

#[test]
fn aurora_port_replays_ntlog_tail() {
    let mut host = new_host();
    let mut server = KvServer::start(&mut host, PersistMode::AuroraPort, 8 << 20, 256).unwrap();
    let gid = server.gid.unwrap();
    seed_data(&mut host, &mut server, 20);
    // Application checkpoint: image holds 20 keys, log truncates.
    server.aurora_checkpoint(&mut host).unwrap();
    // 10 more mutations land in the persistent log only.
    seed_data(&mut host, &mut server, 30);

    let mut host = host.crash_and_reboot().unwrap();
    let store = host.sls.primary.clone();
    // Restoring at the head resolves the application manifest through
    // the chain (the head itself is an ntflush mini-commit).
    let head = store.borrow().head().unwrap();
    let r = host.restore(&store, head, RestoreMode::Eager).unwrap();
    let pid = r.root_pid().unwrap();
    // ...then replay the log tail (ops 21-30).
    let mut server = KvServer::recover_aurora_port(&mut host, pid, GroupId(gid.0)).unwrap();
    assert_eq!(server.len(&mut host).unwrap(), 30);
    check_data(&mut host, &mut server, 30);
}

#[test]
fn aurora_port_faster_than_wal_per_op() {
    // The §4 claim, measured: the ntflush path costs less virtual time
    // per durable mutation than WAL + fsync.
    let mut wal_host = new_host();
    let mut wal = KvServer::start(&mut wal_host, PersistMode::WalFsync, 8 << 20, 512).unwrap();
    let mut w = Workload::new(1, 100, 64, 0.0, KeyDist::Uniform);
    let t0 = wal_host.clock.now();
    for _ in 0..100 {
        wal.exec(&mut wal_host, &w.next_op()).unwrap();
    }
    let wal_time = wal_host.clock.now().since(t0);

    let mut a_host = new_host();
    let mut aurora = KvServer::start(&mut a_host, PersistMode::AuroraPort, 8 << 20, 512).unwrap();
    let mut w = Workload::new(1, 100, 64, 0.0, KeyDist::Uniform);
    let t0 = a_host.clock.now();
    for _ in 0..100 {
        aurora.exec(&mut a_host, &w.next_op()).unwrap();
    }
    let aurora_time = a_host.clock.now().since(t0);

    assert!(
        aurora_time < wal_time,
        "aurora port {aurora_time} should beat WAL {wal_time}"
    );
}

#[test]
fn lsm_wal_mode_recovers() {
    let mut host = new_host();
    let mut tree = LsmTree::create(&mut host, LsmLog::WalFsync, 128).unwrap();
    for i in 0..30u32 {
        tree.put(&mut host, format!("k{i:03}").as_bytes(), format!("v{i}").as_bytes())
            .unwrap();
    }
    tree.delete(&mut host, b"k005").unwrap();
    assert!(tree.flushes > 0, "memtable flushed at least once");
    assert_eq!(tree.get(&mut host, b"k010").unwrap().unwrap(), b"v10");
    assert_eq!(tree.get(&mut host, b"k005").unwrap(), None);

    let mut host = host.crash_and_reboot().unwrap();
    let mut tree = LsmTree::recover(&mut host, LsmLog::WalFsync, 256).unwrap();
    assert_eq!(tree.get(&mut host, b"k010").unwrap().unwrap(), b"v10");
    assert_eq!(tree.get(&mut host, b"k029").unwrap().unwrap(), b"v29");
    assert_eq!(tree.get(&mut host, b"k005").unwrap(), None);
}

#[test]
fn lsm_aurora_mode_recovers_and_compacts() {
    let mut host = new_host();
    let mut tree = LsmTree::create(&mut host, LsmLog::Aurora, 200).unwrap();
    for i in 0..40u32 {
        tree.put(&mut host, format!("k{i:03}").as_bytes(), format!("v{i}").as_bytes())
            .unwrap();
    }
    // Overwrite some keys so compaction has duplicates to squash.
    for i in 0..10u32 {
        tree.put(&mut host, format!("k{i:03}").as_bytes(), b"rewritten")
            .unwrap();
    }
    assert!(tree.run_count() >= 2);
    tree.compact(&mut host).unwrap();
    assert_eq!(tree.run_count(), 1);
    assert_eq!(tree.get(&mut host, b"k003").unwrap().unwrap(), b"rewritten");
    assert_eq!(tree.get(&mut host, b"k030").unwrap().unwrap(), b"v30");

    let mut host = host.crash_and_reboot().unwrap();
    let mut tree = LsmTree::recover(&mut host, LsmLog::Aurora, 200).unwrap();
    assert_eq!(tree.get(&mut host, b"k003").unwrap().unwrap(), b"rewritten");
    assert_eq!(tree.get(&mut host, b"k039").unwrap().unwrap(), b"v39");
}

#[test]
fn zipfian_workload_dirty_set_shrinks_incrementals() {
    // Skewed writes concentrate on few pages, so incremental checkpoints
    // stay small — the mechanism behind sustained 100 Hz checkpointing.
    let mut host = new_host();
    let mut server =
        KvServer::start(&mut host, PersistMode::AuroraTransparent, 64 << 20, 8192).unwrap();
    let gid = server.gid.unwrap();
    let mut w = Workload::new(5, 8000, 128, 0.0, KeyDist::Uniform);
    for op in w.load_ops() {
        server.exec(&mut host, &op).unwrap();
    }
    let full = host.checkpoint(gid, true, None).unwrap();

    let mut zipf = Workload::new(6, 8000, 128, 0.5, KeyDist::Zipfian { theta: 0.99 });
    for _ in 0..100 {
        let op = zipf.next_op();
        server.exec(&mut host, &op).unwrap();
    }
    let incr = host.checkpoint(gid, false, None).unwrap();
    assert!(
        incr.pages * 3 < full.pages,
        "incremental {} vs full {}",
        incr.pages,
        full.pages
    );
}

#[test]
fn lsm_survives_power_cuts_at_any_point() {
    // Sweep power cuts across the device-write stream while an LSM tree
    // (WAL mode) ingests; after every cut, recovery must yield a tree
    // that contains exactly the acknowledged (fsync'd) writes.
    use aurora_hw::FaultPlan;

    for cut_at in [3u64, 7, 15, 31, 63] {
        let mut host = new_host();
        let mut tree = LsmTree::create(&mut host, LsmLog::WalFsync, 200).unwrap();
        host.sls
            .primary
            .borrow_mut()
            .device_mut()
            .install_fault_plan(FaultPlan::power_cut(cut_at));

        // Ingest until the power dies; remember what was acknowledged.
        let mut acked = Vec::new();
        for i in 0..200u32 {
            let key = format!("k{i:03}");
            match tree.put(&mut host, key.as_bytes(), b"v") {
                Ok(()) => acked.push(key),
                Err(_) => break,
            }
        }
        assert!(
            acked.len() < 200,
            "cut {cut_at}: the fault plan should have fired"
        );

        let mut host = host.crash_and_reboot().unwrap();
        let mut tree = match LsmTree::recover(&mut host, LsmLog::WalFsync, 200) {
            Ok(t) => t,
            Err(_) => {
                // Nothing ever became durable (cut before the first
                // manifest commit): acceptable only if nothing was acked.
                assert!(acked.is_empty(), "cut {cut_at}: acked writes lost");
                continue;
            }
        };
        // Every acknowledged write must be present...
        for key in &acked {
            assert_eq!(
                tree.get(&mut host, key.as_bytes()).unwrap().as_deref(),
                Some(b"v".as_ref()),
                "cut {cut_at}: acked key {key} lost"
            );
        }
    }
}
