//! Differential test for the fleet scheduler's pipelined checkpoints.
//!
//! For random fleets — tenant count, activity waves, ops per wake, and
//! the master seed all drawn by proptest — N tenants interleaved on one
//! host through [`Host::checkpoint_pipelined`] must restore to exactly
//! the KV state of N isolated hosts, each running a single tenant
//! through the same op stream with the cycles fully serialized. The
//! scheduler only reorders *when* flushes complete in virtual time; any
//! divergence in restored state is a correctness bug in the barrier
//! narrowing, the per-store commit locks, or the capture itself.

// Test code asserts invariants; the workspace unwrap/expect denial is
// for production paths.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use aurora_apps::pool::TenantFleet;
use aurora_core::fleet::TenantHealth;
use aurora_core::Host;
use aurora_hw::ModelDev;
use aurora_objstore::StoreConfig;
use aurora_sim::SimClock;
use proptest::prelude::*;

/// Keys per tenant (small: the point is many tenants, not big stores).
const KEYS: u64 = 16;
/// Value bytes — sub-page, so incremental cycles ride the delta path.
const VALUE_LEN: usize = 48;
/// Heap bytes per tenant server.
const HEAP: u64 = 256 * 1024;

fn new_host() -> Host {
    let clock = SimClock::new();
    let dev = Box::new(ModelDev::nvme(clock, "nvme0", 256 * 1024));
    Host::boot("fleet-diff", dev, StoreConfig::default()).unwrap()
}

/// Runs the interleaved fleet: waves of zipfian-active tenants touch
/// their streams, each wave checkpoints through the pipelined
/// scheduler, and cycles from consecutive waves overlap in virtual
/// time. Returns each tenant's post-crash restored digest plus the
/// touch schedule (which rounds woke which tenant) for the isolated
/// replay.
fn run_interleaved(
    seed: u64,
    tenants: usize,
    rounds: u32,
    wave_k: usize,
    ops: usize,
) -> (Vec<u64>, Vec<Vec<u32>>) {
    let mut host = new_host();
    let mut fleet = TenantFleet::start(&mut host, tenants, seed, HEAP, KEYS, VALUE_LEN).unwrap();
    let mut schedule: Vec<Vec<u32>> = vec![Vec::new(); tenants];
    for round in 0..rounds {
        let wave = fleet.wave(wave_k);
        for &t in &wave {
            fleet.touch(&mut host, t, ops).unwrap();
            schedule[t].push(round);
        }
        fleet.checkpoint_wave(&mut host, &wave, round).unwrap();
    }
    host.fleet_drain();
    let mut host = host.crash_and_reboot().unwrap();
    let digests = (0..tenants)
        .map(|t| fleet.restore_tenant(&mut host, t).unwrap())
        .collect();
    (digests, schedule)
}

/// Replays one tenant alone on a fresh host: same global index, same
/// seed, so `start_subset` hands it the identical op stream; the
/// recorded schedule drives the same touches and checkpoint names, but
/// every cycle is serialized — nothing else runs on the host.
fn run_isolated(seed: u64, index: usize, schedule: &[u32], ops: usize) -> u64 {
    let mut host = new_host();
    let mut fleet =
        TenantFleet::start_subset(&mut host, seed, &[index], HEAP, KEYS, VALUE_LEN).unwrap();
    for &round in schedule {
        fleet.touch(&mut host, 0, ops).unwrap();
        fleet.checkpoint_wave(&mut host, &[0], round).unwrap();
        host.fleet_drain();
    }
    let mut host = host.crash_and_reboot().unwrap();
    fleet.restore_tenant(&mut host, 0).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Interleaved fleet state == isolated per-tenant state, for every
    /// tenant, across random fleet shapes and seeds.
    #[test]
    fn interleaved_fleet_matches_isolated_tenants(
        seed in any::<u64>(),
        tenants in 2usize..6,
        rounds in 1u32..4,
        wave_k in 1usize..5,
        ops in 1usize..10,
    ) {
        let (interleaved, schedule) = run_interleaved(seed, tenants, rounds, wave_k, ops);
        for (t, digest) in interleaved.iter().enumerate() {
            let isolated = run_isolated(seed, t, &schedule[t], ops);
            prop_assert_eq!(
                *digest, isolated,
                "tenant {} diverged between interleaved and isolated runs", t
            );
        }
    }
}

/// Rounds in the quarantine scenario: two healthy, two skipped under
/// quarantine, a re-admission probe, one healthy tail round.
const Q_ROUNDS: u32 = 6;

/// Runs a full-width fleet where tenant 0 is operator-quarantined
/// before round 2 and re-admitted at round 4 (the clock is advanced to
/// its probe window; the shared store is healthy, so the probe commits
/// on time). Touches land every round for every tenant — the
/// quarantined rounds' writes simply ride along in the re-admission
/// checkpoint. Returns the post-crash restored digests plus each
/// tenant's committed-checkpoint rounds for the isolated replay.
fn run_quarantined_interleaved(
    seed: u64,
    tenants: usize,
    ops: usize,
) -> (Vec<u64>, Vec<Vec<u32>>) {
    let mut host = new_host();
    let mut fleet = TenantFleet::start(&mut host, tenants, seed, HEAP, KEYS, VALUE_LEN).unwrap();
    let gid0 = fleet.tenants[0].gid;
    let mut committed: Vec<Vec<u32>> = vec![Vec::new(); tenants];
    let mut skips = 0u32;
    for round in 0..Q_ROUNDS {
        if round == 2 {
            let now = host.clock.now();
            host.sls.fleet.quarantine(gid0.0, now, "fleet-diff round-trip");
        }
        if round == 4 {
            let probe_at = host.tenant_domain(gid0).next_probe;
            host.clock.advance_to(probe_at);
        }
        let wave: Vec<usize> = (0..tenants).collect();
        for &t in &wave {
            fleet.touch(&mut host, t, ops).unwrap();
        }
        let cycles = fleet.checkpoint_wave(&mut host, &wave, round).unwrap();
        for (i, cycle) in cycles.iter().enumerate() {
            match &cycle.result {
                Ok(bd) if bd.outcome.committed() => committed[wave[i]].push(round),
                Ok(_) => skips += 1,
                Err(e) => panic!("healthy-store cycle failed: {e}"),
            }
        }
    }
    assert!(skips >= 1, "quarantine never skipped a cycle");
    let d = host.tenant_domain(gid0);
    assert_eq!(
        d.health,
        TenantHealth::Healthy,
        "tenant 0 was not re-admitted"
    );
    assert!(d.readmissions >= 1);
    host.fleet_drain();
    let mut host = host.crash_and_reboot().unwrap();
    let digests = (0..tenants)
        .map(|t| fleet.restore_tenant(&mut host, t).unwrap())
        .collect();
    (digests, committed)
}

/// Replays one tenant alone, touching every round but checkpointing
/// only at the rounds where the interleaved run committed — exactly
/// the schedule a quarantined tenant experiences.
fn run_isolated_sparse(seed: u64, index: usize, ckpts: &[u32], ops: usize) -> u64 {
    let mut host = new_host();
    let mut fleet =
        TenantFleet::start_subset(&mut host, seed, &[index], HEAP, KEYS, VALUE_LEN).unwrap();
    for round in 0..Q_ROUNDS {
        fleet.touch(&mut host, 0, ops).unwrap();
        if ckpts.contains(&round) {
            fleet.checkpoint_wave(&mut host, &[0], round).unwrap();
            host.fleet_drain();
        }
    }
    let mut host = host.crash_and_reboot().unwrap();
    fleet.restore_tenant(&mut host, 0).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Quarantine → re-admission round-trips keep digest equality: a
    /// tenant that lost cycles to quarantine restores to exactly the
    /// state of an isolated run that only checkpointed at the committed
    /// rounds, and the healthy tenants never lose a round.
    #[test]
    fn quarantine_roundtrip_keeps_digest_equality(
        seed in any::<u64>(),
        tenants in 2usize..5,
        ops in 1usize..8,
    ) {
        let (digests, committed) = run_quarantined_interleaved(seed, tenants, ops);
        prop_assert!(
            committed[0].len() < Q_ROUNDS as usize,
            "tenant 0 never lost a round to quarantine"
        );
        for t in 1..tenants {
            prop_assert_eq!(committed[t].len(), Q_ROUNDS as usize);
        }
        for t in 0..tenants {
            let isolated = run_isolated_sparse(seed, t, &committed[t], ops);
            prop_assert_eq!(
                digests[t], isolated,
                "tenant {} diverged across the quarantine round-trip", t
            );
        }
    }
}

/// Deterministic anchor: a full-width fleet really does overlap cycles
/// (the proptest can't assert engagement per case — a one-tenant wave
/// with long gaps may drain between admissions).
#[test]
fn interleaved_run_engages_the_scheduler() {
    let mut host = new_host();
    let mut fleet = TenantFleet::start(&mut host, 4, 0xd1ff, HEAP, KEYS, VALUE_LEN).unwrap();
    for round in 0..2u32 {
        let wave = fleet.wave(4);
        for &t in &wave {
            fleet.touch(&mut host, t, 4).unwrap();
        }
        fleet.checkpoint_wave(&mut host, &wave, round).unwrap();
    }
    assert!(
        host.sls.fleet.stats.overlapped > 0,
        "full-width waves must overlap cycles"
    );
    assert!(host.sls.fleet.stats.admitted >= 8);
    host.fleet_drain();
}
