//! A malloc living inside simulated memory.
//!
//! The allocator's bookkeeping (free list, block headers) is stored in
//! the simulated address space itself and manipulated through kernel
//! memory accesses — so heap structure survives checkpoint/restore with
//! no help from the driver code, exactly like a real process's heap.
//!
//! Layout:
//!
//! ```text
//! region+0   magic (u64)
//! region+8   free-list head (u64 sim address; 0 = empty)
//! region+16  first block
//! block:     size (u64, includes the 16-byte header)
//!            next-free (u64) when free / USED marker when allocated
//!            payload...
//! ```
//!
//! First-fit with block splitting; no coalescing (deliberately simple —
//! fragmentation is not under test here).

use aurora_posix::{Kernel, Pid};
use aurora_sim::error::{Error, Result};

const HEAP_MAGIC: u64 = 0x4155_5248_4541_5031; // "AURHEAP1"
const USED: u64 = 0xA110_CA7E_D000_0000;
const HDR: u64 = 16;
/// Minimum payload worth splitting a block for.
const MIN_SPLIT: u64 = 32;

/// Driver handle for a heap region in a process's address space.
///
/// The handle holds only the region address — everything else lives in
/// simulated memory, so a handle can be re-derived after restore from a
/// register (see [`SimHeap::attach`]).
#[derive(Debug, Clone, Copy)]
pub struct SimHeap {
    /// Owning process.
    pub pid: Pid,
    /// Region base address.
    pub base: u64,
}

fn read_u64(k: &mut Kernel, pid: Pid, addr: u64) -> Result<u64> {
    let mut buf = [0u8; 8];
    k.mem_read(pid, addr, &mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

fn write_u64(k: &mut Kernel, pid: Pid, addr: u64, v: u64) -> Result<()> {
    k.mem_write(pid, addr, &v.to_le_bytes())
}

impl SimHeap {
    /// Creates a heap inside a fresh anonymous mapping of `bytes`.
    pub fn create(k: &mut Kernel, pid: Pid, bytes: u64) -> Result<SimHeap> {
        let base = k.mmap_anon(pid, bytes, false)?;
        write_u64(k, pid, base, HEAP_MAGIC)?;
        // One big free block spanning the rest of the region.
        let first = base + HDR;
        write_u64(k, pid, base + 8, first)?;
        write_u64(k, pid, first, bytes - HDR)?;
        write_u64(k, pid, first + 8, 0)?;
        Ok(SimHeap { pid, base })
    }

    /// Formats a heap inside an *existing* region (e.g. System V shared
    /// memory attached with `shmat`), so several processes can share one
    /// allocator.
    pub fn init_at(k: &mut Kernel, pid: Pid, base: u64, bytes: u64) -> Result<SimHeap> {
        write_u64(k, pid, base, HEAP_MAGIC)?;
        let first = base + HDR;
        write_u64(k, pid, base + 8, first)?;
        write_u64(k, pid, first, bytes - HDR)?;
        write_u64(k, pid, first + 8, 0)?;
        Ok(SimHeap { pid, base })
    }

    /// Re-attaches to an existing heap (e.g. after restore, with the
    /// base address recovered from a register).
    pub fn attach(k: &mut Kernel, pid: Pid, base: u64) -> Result<SimHeap> {
        if read_u64(k, pid, base)? != HEAP_MAGIC {
            return Err(Error::corrupt(format!("no heap at {base:#x}")));
        }
        Ok(SimHeap { pid, base })
    }

    /// Allocates `size` bytes; returns the simulated address.
    pub fn alloc(&self, k: &mut Kernel, size: u64) -> Result<u64> {
        let need = size.max(8) + HDR;
        let mut prev = self.base + 8; // Address holding the link to cur.
        let mut cur = read_u64(k, self.pid, prev)?;
        while cur != 0 {
            let block_size = read_u64(k, self.pid, cur)?;
            let next = read_u64(k, self.pid, cur + 8)?;
            if block_size >= need {
                if block_size >= need + HDR + MIN_SPLIT {
                    // Split: the tail remains free.
                    let rest = cur + need;
                    write_u64(k, self.pid, rest, block_size - need)?;
                    write_u64(k, self.pid, rest + 8, next)?;
                    write_u64(k, self.pid, prev, rest)?;
                    write_u64(k, self.pid, cur, need)?;
                } else {
                    write_u64(k, self.pid, prev, next)?;
                }
                write_u64(k, self.pid, cur + 8, USED)?;
                return Ok(cur + HDR);
            }
            prev = cur + 8;
            cur = next;
        }
        Err(Error::no_memory(format!("sim heap exhausted for {size}B")))
    }

    /// Frees an allocation returned by [`SimHeap::alloc`].
    pub fn free(&self, k: &mut Kernel, ptr: u64) -> Result<()> {
        let block = ptr - HDR;
        if read_u64(k, self.pid, block + 8)? != USED {
            return Err(Error::corrupt(format!("double free at {ptr:#x}")));
        }
        let head = read_u64(k, self.pid, self.base + 8)?;
        write_u64(k, self.pid, block + 8, head)?;
        write_u64(k, self.pid, self.base + 8, block)?;
        Ok(())
    }

    /// Copies bytes into an allocation.
    pub fn store(&self, k: &mut Kernel, ptr: u64, data: &[u8]) -> Result<()> {
        k.mem_write(self.pid, ptr, data)
    }

    /// Reads bytes from an allocation.
    pub fn load(&self, k: &mut Kernel, ptr: u64, len: usize) -> Result<Vec<u8>> {
        let mut buf = vec![0u8; len];
        k.mem_read(self.pid, ptr, &mut buf)?;
        Ok(buf)
    }

    /// Total free bytes (walks the free list; for tests).
    pub fn free_bytes(&self, k: &mut Kernel) -> Result<u64> {
        let mut total = 0;
        let mut cur = read_u64(k, self.pid, self.base + 8)?;
        while cur != 0 {
            total += read_u64(k, self.pid, cur)?;
            cur = read_u64(k, self.pid, cur + 8)?;
        }
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aurora_sim::SimClock;

    fn setup() -> (Kernel, Pid, SimHeap) {
        let mut k = Kernel::boot(SimClock::new(), "t");
        let pid = k.spawn("heapuser");
        let heap = SimHeap::create(&mut k, pid, 1 << 20).unwrap();
        (k, pid, heap)
    }

    #[test]
    fn alloc_store_load() {
        let (mut k, _pid, heap) = setup();
        let a = heap.alloc(&mut k, 100).unwrap();
        let b = heap.alloc(&mut k, 200).unwrap();
        assert_ne!(a, b);
        heap.store(&mut k, a, b"hello heap").unwrap();
        heap.store(&mut k, b, &[7u8; 200]).unwrap();
        assert_eq!(heap.load(&mut k, a, 10).unwrap(), b"hello heap");
        assert_eq!(heap.load(&mut k, b, 200).unwrap(), vec![7u8; 200]);
    }

    #[test]
    fn free_and_reuse() {
        let (mut k, _pid, heap) = setup();
        let before = heap.free_bytes(&mut k).unwrap();
        let ptrs: Vec<u64> = (0..10).map(|_| heap.alloc(&mut k, 64).unwrap()).collect();
        assert!(heap.free_bytes(&mut k).unwrap() < before);
        for p in &ptrs {
            heap.free(&mut k, *p).unwrap();
        }
        assert_eq!(heap.free_bytes(&mut k).unwrap(), before);
        // Double free detected.
        assert!(heap.free(&mut k, ptrs[0]).is_err());
    }

    #[test]
    fn exhaustion() {
        let mut k = Kernel::boot(SimClock::new(), "t");
        let pid = k.spawn("small");
        let heap = SimHeap::create(&mut k, pid, 4096).unwrap();
        assert!(heap.alloc(&mut k, 2048).is_ok());
        assert!(heap.alloc(&mut k, 4096).is_err());
    }

    #[test]
    fn attach_rejects_garbage() {
        let (mut k, pid, heap) = setup();
        assert!(SimHeap::attach(&mut k, pid, heap.base).is_ok());
        let other = k.mmap_anon(pid, 4096, false).unwrap();
        assert!(SimHeap::attach(&mut k, pid, other).is_err());
    }

    #[test]
    fn many_allocations_have_disjoint_ranges() {
        let (mut k, _pid, heap) = setup();
        let mut ranges: Vec<(u64, u64)> = Vec::new();
        for i in 0..200u64 {
            let size = 16 + (i % 64);
            let p = heap.alloc(&mut k, size).unwrap();
            for &(s, e) in &ranges {
                assert!(p + size <= s || p >= e, "overlap at {p:#x}");
            }
            ranges.push((p, p + size));
        }
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use aurora_sim::SimClock;
    use proptest::prelude::*;
    use std::collections::HashMap;

    #[derive(Debug, Clone)]
    enum HeapOp {
        Alloc { size: u16, fill: u8 },
        Free { slot: u8 },
        Check { slot: u8 },
    }

    fn op() -> impl Strategy<Value = HeapOp> {
        prop_oneof![
            3 => (8u16..512, any::<u8>()).prop_map(|(size, fill)| HeapOp::Alloc { size, fill }),
            2 => any::<u8>().prop_map(|slot| HeapOp::Free { slot }),
            2 => any::<u8>().prop_map(|slot| HeapOp::Check { slot }),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Random alloc/free/check sequences: live allocations always
        /// hold exactly their bytes; freeing returns space; the free
        /// list never loses bytes permanently.
        #[test]
        fn allocator_never_corrupts_live_data(ops in proptest::collection::vec(op(), 1..120)) {
            let mut k = Kernel::boot(SimClock::new(), "t");
            let pid = k.spawn("heap");
            let heap = SimHeap::create(&mut k, pid, 1 << 20).unwrap();
            let budget = heap.free_bytes(&mut k).unwrap();

            let mut live: HashMap<u8, (u64, u16, u8)> = HashMap::new();
            let mut next_slot = 0u8;
            for op in ops {
                match op {
                    HeapOp::Alloc { size, fill } => {
                        if let Ok(ptr) = heap.alloc(&mut k, size as u64) {
                            heap.store(&mut k, ptr, &vec![fill; size as usize]).unwrap();
                            live.insert(next_slot, (ptr, size, fill));
                            next_slot = next_slot.wrapping_add(1);
                        }
                    }
                    HeapOp::Free { slot } => {
                        if let Some((ptr, _, _)) = live.remove(&(slot % next_slot.max(1))) {
                            heap.free(&mut k, ptr).unwrap();
                        }
                    }
                    HeapOp::Check { slot } => {
                        if let Some(&(ptr, size, fill)) = live.get(&(slot % next_slot.max(1))) {
                            let data = heap.load(&mut k, ptr, size as usize).unwrap();
                            prop_assert!(data.iter().all(|&b| b == fill),
                                "allocation at {ptr:#x} corrupted");
                        }
                    }
                }
            }
            // Verify every surviving allocation, then free everything.
            for (_, &(ptr, size, fill)) in live.iter() {
                let data = heap.load(&mut k, ptr, size as usize).unwrap();
                prop_assert!(data.iter().all(|&b| b == fill));
            }
            for (_, (ptr, _, _)) in live.drain() {
                heap.free(&mut k, ptr).unwrap();
            }
            prop_assert_eq!(heap.free_bytes(&mut k).unwrap(), budget, "bytes leaked");
        }
    }
}
