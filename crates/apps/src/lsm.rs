//! A RocksDB-flavoured LSM tree over SLSFS.
//!
//! Writes land in a memtable and a durability log; full memtables flush
//! to sorted-run files; reads check the memtable then runs newest-first;
//! compaction merges runs. Two log strategies, mirroring §4's RocksDB
//! port:
//!
//! * [`LsmLog::WalFsync`] — a write-ahead log file fsync'd per batch
//!   (the stock design).
//! * [`LsmLog::Aurora`] — `sls_ntflush` replaces the WAL: cheaper
//!   synchronous durability and none of the fsync-ordering subtleties
//!   the paper's bug citations are about.
//!
//! The driver-side memtable is an explicit simplification: unlike the
//! KV server, the LSM is exercised through its *API-port* persistence
//! only (recovery = manifest + runs + log replay), not through
//! transparent memory checkpointing.

use aurora_core::{GroupId, Host};
use aurora_posix::{Fd, Pid};
use aurora_sim::codec::{Decoder, Encoder};
use aurora_sim::error::{Error, Result};
use std::collections::BTreeMap;

use crate::kv::KvOp;

/// Durability-log strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LsmLog {
    /// Stock WAL + fsync.
    WalFsync,
    /// Aurora persistent log (`sls_ntflush`).
    Aurora,
}

/// Directory holding the tree's files.
pub const LSM_DIR: &str = "/sls/lsm";

/// The LSM tree.
pub struct LsmTree {
    /// Owning process.
    pub pid: Pid,
    /// Persistence group (Aurora log mode).
    pub gid: Option<GroupId>,
    log: LsmLog,
    memtable: BTreeMap<Vec<u8>, Option<Vec<u8>>>,
    memtable_bytes: usize,
    /// Flush threshold in bytes.
    pub memtable_limit: usize,
    /// Sorted-run file names, oldest first.
    runs: Vec<String>,
    next_run: u64,
    wal_fd: Option<Fd>,
    ntlog_fd: Option<Fd>,
    /// Sorted runs written over the tree's lifetime.
    pub flushes: u64,
    /// Compactions performed.
    pub compactions: u64,
}

fn manifest_path() -> String {
    format!("{LSM_DIR}/MANIFEST")
}

impl LsmTree {
    /// Creates a fresh tree.
    pub fn create(host: &mut Host, log: LsmLog, memtable_limit: usize) -> Result<LsmTree> {
        let pid = host.kernel.spawn("lsm");
        // mkdir -p /sls/lsm
        let (parent, name) = host.kernel.vfs.resolve_parent(LSM_DIR)?;
        let _ = host.kernel.vfs.fs(parent.mount).mkdir(parent.node, &name);
        let mut tree = LsmTree {
            pid,
            gid: None,
            log,
            memtable: BTreeMap::new(),
            memtable_bytes: 0,
            memtable_limit,
            runs: Vec::new(),
            next_run: 1,
            wal_fd: None,
            ntlog_fd: None,
            flushes: 0,
            compactions: 0,
        };
        match log {
            LsmLog::WalFsync => {
                let fd = host.kernel.open(pid, &format!("{LSM_DIR}/wal"), true)?;
                host.kernel.set_append(pid, fd)?;
                tree.wal_fd = Some(fd);
            }
            LsmLog::Aurora => {
                let gid = host.persist("lsm", pid)?;
                let (fd, _) = host.ntlog_create(gid, pid)?;
                tree.gid = Some(gid);
                tree.ntlog_fd = Some(fd);
            }
        }
        tree.write_manifest(host)?;
        Ok(tree)
    }

    fn write_manifest(&self, host: &mut Host) -> Result<()> {
        let mut e = Encoder::new();
        e.u64(self.next_run);
        e.seq(&self.runs, |e, r| e.str(r));
        let fd = host.kernel.open(self.pid, &manifest_path(), true)?;
        host.kernel.lseek(self.pid, fd, 0)?;
        host.kernel.write(self.pid, fd, &e.into_vec())?;
        host.kernel.close(self.pid, fd)?;
        // Stage the filesystem metadata so the next durability commit
        // (ntflush mini-commit or WAL fsync) carries it.
        let mount = host.sls.slsfs_mount;
        host.kernel.vfs.fs(mount).sync()?;
        Ok(())
    }

    fn log_record(&mut self, host: &mut Host, op: &KvOp) -> Result<()> {
        match self.log {
            LsmLog::WalFsync => {
                let fd = self.wal_fd.ok_or_else(|| Error::internal("no wal"))?;
                host.kernel.write(self.pid, fd, &op.encode())?;
                // fsync: ordered data barrier, then metadata commit.
                let mount = host.sls.slsfs_mount;
                host.kernel.vfs.fs(mount).sync()?;
                host.sls.primary.borrow_mut().barrier_flush()?;
                let (_, durable) = host.sls.primary.borrow_mut().commit(None)?;
                host.clock.advance_to(durable);
            }
            LsmLog::Aurora => {
                let gid = self.gid.ok_or_else(|| Error::internal("no group"))?;
                let fd = self.ntlog_fd.ok_or_else(|| Error::internal("no ntlog"))?;
                host.sls_ntflush(gid, self.pid, fd, &op.encode())?;
            }
        }
        Ok(())
    }

    /// Inserts or replaces a key.
    pub fn put(&mut self, host: &mut Host, key: &[u8], value: &[u8]) -> Result<()> {
        self.log_record(host, &KvOp::Set(key.to_vec(), value.to_vec()))?;
        self.memtable_bytes += key.len() + value.len();
        self.memtable.insert(key.to_vec(), Some(value.to_vec()));
        if self.memtable_bytes >= self.memtable_limit {
            self.flush(host)?;
        }
        Ok(())
    }

    /// Deletes a key (tombstone).
    pub fn delete(&mut self, host: &mut Host, key: &[u8]) -> Result<()> {
        self.log_record(host, &KvOp::Del(key.to_vec()))?;
        self.memtable_bytes += key.len();
        self.memtable.insert(key.to_vec(), None);
        if self.memtable_bytes >= self.memtable_limit {
            self.flush(host)?;
        }
        Ok(())
    }

    /// Looks a key up: memtable, then runs newest-first.
    pub fn get(&mut self, host: &mut Host, key: &[u8]) -> Result<Option<Vec<u8>>> {
        if let Some(v) = self.memtable.get(key) {
            return Ok(v.clone());
        }
        for run in self.runs.iter().rev() {
            let entries = read_run(host, self.pid, run)?;
            if let Some((_, v)) = entries.iter().find(|(k, _)| k == key) {
                return Ok(v.clone());
            }
        }
        Ok(None)
    }

    /// Flushes the memtable into a new sorted run and truncates the log.
    pub fn flush(&mut self, host: &mut Host) -> Result<()> {
        if self.memtable.is_empty() {
            return Ok(());
        }
        let run_name = format!("{LSM_DIR}/run-{:06}", self.next_run);
        self.next_run += 1;
        write_run(host, self.pid, &run_name, self.memtable.iter())?;
        self.runs.push(run_name);
        self.memtable.clear();
        self.memtable_bytes = 0;
        self.flushes += 1;
        self.write_manifest(host)?;
        // The run + manifest now carry the data: truncate the log.
        match self.log {
            LsmLog::WalFsync => {
                let fd = self.wal_fd.ok_or_else(|| Error::internal("no wal"))?;
                host.kernel.close(self.pid, fd)?;
                host.kernel.unlink_path(self.pid, &format!("{LSM_DIR}/wal"))?;
                let fd = host.kernel.open(self.pid, &format!("{LSM_DIR}/wal"), true)?;
                host.kernel.set_append(self.pid, fd)?;
                self.wal_fd = Some(fd);
                let mount = host.sls.slsfs_mount;
                host.kernel.vfs.fs(mount).sync()?;
                let (_, durable) = host.sls.primary.borrow_mut().commit(None)?;
                host.clock.advance_to(durable);
            }
            LsmLog::Aurora => {
                let gid = self.gid.ok_or_else(|| Error::internal("no group"))?;
                let fd = self.ntlog_fd.ok_or_else(|| Error::internal("no ntlog"))?;
                host.ntlog_truncate(gid, self.pid, fd)?;
            }
        }
        Ok(())
    }

    /// Merges every run into one (full compaction).
    pub fn compact(&mut self, host: &mut Host) -> Result<()> {
        if self.runs.len() < 2 {
            return Ok(());
        }
        let mut merged: BTreeMap<Vec<u8>, Option<Vec<u8>>> = BTreeMap::new();
        for run in &self.runs {
            for (k, v) in read_run(host, self.pid, run)? {
                merged.insert(k, v); // Newer runs overwrite older.
            }
        }
        // Tombstones drop out at the bottom level.
        merged.retain(|_, v| v.is_some());
        let run_name = format!("{LSM_DIR}/run-{:06}", self.next_run);
        self.next_run += 1;
        write_run(host, self.pid, &run_name, merged.iter())?;
        for old in self.runs.drain(..) {
            let _ = host.kernel.unlink_path(self.pid, &old);
        }
        self.runs.push(run_name);
        self.compactions += 1;
        self.write_manifest(host)
    }

    /// Recovers after a crash: manifest + runs + durability-log replay.
    pub fn recover(host: &mut Host, log: LsmLog, memtable_limit: usize) -> Result<LsmTree> {
        let pid = host.kernel.spawn("lsm");
        let fd = host.kernel.open(pid, &manifest_path(), false)?;
        let size = host.kernel.fstat(pid, fd)?.size as usize;
        let bytes = host.kernel.read(pid, fd, size)?;
        host.kernel.close(pid, fd)?;
        let mut d = Decoder::new(&bytes);
        let next_run = d.u64()?;
        let runs = d.seq(|d| d.str().map(str::to_string))?;

        let mut tree = LsmTree {
            pid,
            gid: None,
            log,
            memtable: BTreeMap::new(),
            memtable_bytes: 0,
            memtable_limit,
            runs,
            next_run,
            wal_fd: None,
            ntlog_fd: None,
            flushes: 0,
            compactions: 0,
        };
        // Replay the durability log into the memtable.
        let log_bytes = match log {
            LsmLog::WalFsync => {
                let fd = host.kernel.open(pid, &format!("{LSM_DIR}/wal"), true)?;
                let size = host.kernel.fstat(pid, fd)?.size as usize;
                host.kernel.lseek(pid, fd, 0)?;
                let bytes = host.kernel.read(pid, fd, size)?;
                host.kernel.set_append(pid, fd)?;
                tree.wal_fd = Some(fd);
                bytes
            }
            LsmLog::Aurora => {
                let gid = host.persist("lsm", pid)?;
                tree.gid = Some(gid);
                // Log id 1 is the tree's log; reopen a descriptor.
                let fd = host.install_ntlog_fd(pid, 1)?;
                tree.ntlog_fd = Some(fd);
                host.ntlog_read(gid, pid, fd)?
            }
        };
        let mut off = 0;
        while off < log_bytes.len() {
            let (op, used) = KvOp::decode(&log_bytes[off..])?;
            match op {
                KvOp::Set(k, v) => {
                    tree.memtable_bytes += k.len() + v.len();
                    tree.memtable.insert(k, Some(v));
                }
                KvOp::Del(k) => {
                    tree.memtable_bytes += k.len();
                    tree.memtable.insert(k, None);
                }
                KvOp::Get(_) => {}
            }
            off += used;
        }
        Ok(tree)
    }

    /// Live sorted runs (tests).
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }
}

fn write_run<'a>(
    host: &mut Host,
    pid: Pid,
    path: &str,
    entries: impl Iterator<Item = (&'a Vec<u8>, &'a Option<Vec<u8>>)>,
) -> Result<()> {
    let mut e = Encoder::new();
    let list: Vec<_> = entries.collect();
    e.varint(list.len() as u64);
    for (k, v) in list {
        e.bytes(k);
        e.option(v.as_ref(), |e, v| e.bytes(v));
    }
    let fd = host.kernel.open(pid, path, true)?;
    host.kernel.write(pid, fd, &e.into_vec())?;
    host.kernel.close(pid, fd)?;
    Ok(())
}

#[allow(clippy::type_complexity)]
fn read_run(host: &mut Host, pid: Pid, path: &str) -> Result<Vec<(Vec<u8>, Option<Vec<u8>>)>> {
    let fd = host.kernel.open(pid, path, false)?;
    let size = host.kernel.fstat(pid, fd)?.size as usize;
    let bytes = host.kernel.read(pid, fd, size)?;
    host.kernel.close(pid, fd)?;
    let mut d = Decoder::new(&bytes);
    let n = d.varint()? as usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let k = d.bytes()?.to_vec();
        let v = d.option(|d| d.bytes().map(<[u8]>::to_vec))?;
        out.push((k, v));
    }
    Ok(out)
}
