//! Deterministic workload generators.
//!
//! Key popularity follows either a uniform or a Zipfian distribution
//! (the standard skewed-access model for KV benchmarks); both are
//! seeded, so every experiment replays identically.

use aurora_sim::rng::Xoshiro256;

use crate::kv::KvOp;

/// Key-popularity distributions.
#[derive(Debug, Clone, Copy)]
pub enum KeyDist {
    /// Every key equally likely.
    Uniform,
    /// Zipfian with exponent `theta` (0.99 is the YCSB default).
    Zipfian {
        /// Skew exponent.
        theta: f64,
    },
}

/// A deterministic op-stream generator.
pub struct Workload {
    rng: Xoshiro256,
    keys: u64,
    value_len: usize,
    /// Probability that an op is a read.
    read_fraction: f64,
    dist: KeyDist,
    /// Precomputed Zipf normalization constant.
    zeta: f64,
    theta: f64,
}

impl Workload {
    /// Creates a generator over `keys` keys with `value_len`-byte values.
    pub fn new(seed: u64, keys: u64, value_len: usize, read_fraction: f64, dist: KeyDist) -> Self {
        let theta = match dist {
            KeyDist::Zipfian { theta } => theta,
            KeyDist::Uniform => 0.0,
        };
        let zeta = match dist {
            KeyDist::Zipfian { theta } => (1..=keys).map(|i| 1.0 / (i as f64).powf(theta)).sum(),
            KeyDist::Uniform => 0.0,
        };
        Workload {
            rng: Xoshiro256::seed_from(seed),
            keys,
            value_len,
            read_fraction,
            dist,
            zeta,
            theta,
        }
    }

    /// Draws the next key index.
    pub fn next_key(&mut self) -> u64 {
        match self.dist {
            KeyDist::Uniform => self.rng.next_below(self.keys),
            KeyDist::Zipfian { .. } => {
                // Inverse-CDF walk; fine for the key counts used here.
                let target = self.rng.next_f64() * self.zeta;
                let mut acc = 0.0;
                for i in 1..=self.keys {
                    acc += 1.0 / (i as f64).powf(self.theta);
                    if acc >= target {
                        return i - 1;
                    }
                }
                self.keys - 1
            }
        }
    }

    /// Key bytes for an index.
    pub fn key_bytes(&self, idx: u64) -> Vec<u8> {
        format!("key{idx:012}").into_bytes()
    }

    /// A deterministic value for `(key, version)`.
    pub fn value_bytes(&mut self) -> Vec<u8> {
        let mut v = vec![0u8; self.value_len];
        self.rng.fill_bytes(&mut v);
        v
    }

    /// Draws the next operation.
    pub fn next_op(&mut self) -> KvOp {
        let idx = self.next_key();
        let key = self.key_bytes(idx);
        if self.rng.chance(self.read_fraction) {
            KvOp::Get(key)
        } else {
            let v = self.value_bytes();
            KvOp::Set(key, v)
        }
    }

    /// Preload ops covering every key once (bulk load phase).
    pub fn load_ops(&mut self) -> Vec<KvOp> {
        (0..self.keys)
            .map(|i| {
                let k = self.key_bytes(i);
                let v = self.value_bytes();
                KvOp::Set(k, v)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = Workload::new(7, 100, 16, 0.5, KeyDist::Uniform);
        let mut b = Workload::new(7, 100, 16, 0.5, KeyDist::Uniform);
        for _ in 0..50 {
            assert_eq!(a.next_op(), b.next_op());
        }
    }

    #[test]
    fn zipfian_is_skewed() {
        let mut w = Workload::new(3, 1000, 8, 1.0, KeyDist::Zipfian { theta: 0.99 });
        let mut counts = vec![0u32; 1000];
        for _ in 0..5000 {
            counts[w.next_key() as usize] += 1;
        }
        let head: u32 = counts[..10].iter().sum();
        let tail: u32 = counts[500..510].iter().sum();
        assert!(
            head > tail * 5,
            "hot keys should dominate: head {head} tail {tail}"
        );
    }

    #[test]
    fn uniform_covers_the_space() {
        let mut w = Workload::new(9, 64, 8, 0.0, KeyDist::Uniform);
        let mut seen = [false; 64];
        for _ in 0..2000 {
            seen[w.next_key() as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn read_fraction_respected() {
        let mut w = Workload::new(11, 10, 8, 0.9, KeyDist::Uniform);
        let reads = (0..1000)
            .filter(|_| matches!(w.next_op(), KvOp::Get(_)))
            .count();
        assert!((800..=980).contains(&reads), "got {reads} reads");
    }
}
