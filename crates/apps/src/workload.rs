//! Deterministic workload generators.
//!
//! Key popularity follows either a uniform or a Zipfian distribution
//! (the standard skewed-access model for KV benchmarks); both are
//! seeded, so every experiment replays identically.

use aurora_sim::rng::Xoshiro256;

use crate::kv::KvOp;

/// Key-popularity distributions.
#[derive(Debug, Clone, Copy)]
pub enum KeyDist {
    /// Every key equally likely.
    Uniform,
    /// Zipfian with exponent `theta` (0.99 is the YCSB default).
    Zipfian {
        /// Skew exponent.
        theta: f64,
    },
}

/// A deterministic op-stream generator.
pub struct Workload {
    rng: Xoshiro256,
    keys: u64,
    value_len: usize,
    /// Probability that an op is a read.
    read_fraction: f64,
    dist: KeyDist,
    /// Precomputed Zipf normalization constant.
    zeta: f64,
    theta: f64,
}

impl Workload {
    /// Creates a generator over `keys` keys with `value_len`-byte values.
    pub fn new(seed: u64, keys: u64, value_len: usize, read_fraction: f64, dist: KeyDist) -> Self {
        let theta = match dist {
            KeyDist::Zipfian { theta } => theta,
            KeyDist::Uniform => 0.0,
        };
        let zeta = match dist {
            KeyDist::Zipfian { theta } => (1..=keys).map(|i| 1.0 / (i as f64).powf(theta)).sum(),
            KeyDist::Uniform => 0.0,
        };
        Workload {
            rng: Xoshiro256::seed_from(seed),
            keys,
            value_len,
            read_fraction,
            dist,
            zeta,
            theta,
        }
    }

    /// Draws the next key index.
    pub fn next_key(&mut self) -> u64 {
        match self.dist {
            KeyDist::Uniform => self.rng.next_below(self.keys),
            KeyDist::Zipfian { .. } => {
                // Inverse-CDF walk; fine for the key counts used here.
                let target = self.rng.next_f64() * self.zeta;
                let mut acc = 0.0;
                for i in 1..=self.keys {
                    acc += 1.0 / (i as f64).powf(self.theta);
                    if acc >= target {
                        return i - 1;
                    }
                }
                self.keys - 1
            }
        }
    }

    /// Key bytes for an index.
    pub fn key_bytes(&self, idx: u64) -> Vec<u8> {
        format!("key{idx:012}").into_bytes()
    }

    /// A deterministic value for `(key, version)`.
    pub fn value_bytes(&mut self) -> Vec<u8> {
        let mut v = vec![0u8; self.value_len];
        self.rng.fill_bytes(&mut v);
        v
    }

    /// Draws the next operation.
    pub fn next_op(&mut self) -> KvOp {
        let idx = self.next_key();
        let key = self.key_bytes(idx);
        if self.rng.chance(self.read_fraction) {
            KvOp::Get(key)
        } else {
            let v = self.value_bytes();
            KvOp::Set(key, v)
        }
    }

    /// Preload ops covering every key once (bulk load phase).
    pub fn load_ops(&mut self) -> Vec<KvOp> {
        (0..self.keys)
            .map(|i| {
                let k = self.key_bytes(i);
                let v = self.value_bytes();
                KvOp::Set(k, v)
            })
            .collect()
    }
}

/// Which tenants of a fleet are active in each scheduling wave.
///
/// Tenant popularity is Zipfian over the fleet — a few tenants are hot,
/// the long tail wakes rarely — which is the activity shape the
/// serverless warm-start story assumes. Seeded and deterministic, so
/// the fleet bench and the interleaved-vs-isolated proptest replay the
/// same activity from the same seed.
pub struct TenantActivity {
    rng: Xoshiro256,
    tenants: usize,
    /// Precomputed Zipf normalization constant over the tenant ranks.
    zeta: f64,
    theta: f64,
}

impl TenantActivity {
    /// Creates a generator over `tenants` tenants with skew `theta`
    /// (0.99 is the YCSB default; 0 degrades to uniform).
    pub fn new(seed: u64, tenants: usize, theta: f64) -> Self {
        let zeta = (1..=tenants as u64)
            .map(|i| 1.0 / (i as f64).powf(theta))
            .sum();
        TenantActivity {
            rng: Xoshiro256::seed_from(seed),
            tenants: tenants.max(1),
            zeta,
            theta,
        }
    }

    /// Draws one active tenant index.
    pub fn next_tenant(&mut self) -> usize {
        // Inverse-CDF walk, same as `Workload::next_key`; fleet sizes
        // here are small enough that the linear walk is fine.
        let target = self.rng.next_f64() * self.zeta;
        let mut acc = 0.0;
        for i in 1..=self.tenants as u64 {
            acc += 1.0 / (i as f64).powf(self.theta);
            if acc >= target {
                return (i - 1) as usize;
            }
        }
        self.tenants - 1
    }

    /// Draws a wave of `k` *distinct* active tenants (at most the fleet
    /// size), hot tenants first in draw order. This is the set the
    /// scheduler checkpoints in one pipelined pass.
    pub fn wave(&mut self, k: usize) -> Vec<usize> {
        let k = k.min(self.tenants);
        let mut out = Vec::with_capacity(k);
        // Bounded rejection loop: after too many repeats of already-
        // drawn hot tenants, sweep the remainder in rank order so the
        // wave always fills deterministically.
        let mut budget = 64 * self.tenants.max(k);
        while out.len() < k && budget > 0 {
            budget -= 1;
            let t = self.next_tenant();
            if !out.contains(&t) {
                out.push(t);
            }
        }
        let mut next = 0;
        while out.len() < k {
            if !out.contains(&next) {
                out.push(next);
            }
            next += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = Workload::new(7, 100, 16, 0.5, KeyDist::Uniform);
        let mut b = Workload::new(7, 100, 16, 0.5, KeyDist::Uniform);
        for _ in 0..50 {
            assert_eq!(a.next_op(), b.next_op());
        }
    }

    #[test]
    fn zipfian_is_skewed() {
        let mut w = Workload::new(3, 1000, 8, 1.0, KeyDist::Zipfian { theta: 0.99 });
        let mut counts = vec![0u32; 1000];
        for _ in 0..5000 {
            counts[w.next_key() as usize] += 1;
        }
        let head: u32 = counts[..10].iter().sum();
        let tail: u32 = counts[500..510].iter().sum();
        assert!(
            head > tail * 5,
            "hot keys should dominate: head {head} tail {tail}"
        );
    }

    #[test]
    fn uniform_covers_the_space() {
        let mut w = Workload::new(9, 64, 8, 0.0, KeyDist::Uniform);
        let mut seen = [false; 64];
        for _ in 0..2000 {
            seen[w.next_key() as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn read_fraction_respected() {
        let mut w = Workload::new(11, 10, 8, 0.9, KeyDist::Uniform);
        let reads = (0..1000)
            .filter(|_| matches!(w.next_op(), KvOp::Get(_)))
            .count();
        assert!((800..=980).contains(&reads), "got {reads} reads");
    }

    #[test]
    fn tenant_activity_is_deterministic() {
        let mut a = TenantActivity::new(42, 64, 0.99);
        let mut b = TenantActivity::new(42, 64, 0.99);
        for _ in 0..20 {
            assert_eq!(a.wave(8), b.wave(8));
        }
    }

    #[test]
    fn tenant_activity_is_skewed() {
        let mut t = TenantActivity::new(5, 256, 0.99);
        let mut counts = vec![0u32; 256];
        for _ in 0..5000 {
            counts[t.next_tenant()] += 1;
        }
        let head: u32 = counts[..8].iter().sum();
        let tail: u32 = counts[128..136].iter().sum();
        assert!(
            head > tail * 5,
            "hot tenants should dominate: head {head} tail {tail}"
        );
    }

    #[test]
    fn waves_are_distinct_and_fill() {
        let mut t = TenantActivity::new(9, 16, 0.99);
        for _ in 0..50 {
            let w = t.wave(16);
            let mut sorted = w.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 16, "wave must cover distinct tenants: {w:?}");
        }
        // k larger than the fleet clamps.
        assert_eq!(t.wave(99).len(), 16);
    }
}
