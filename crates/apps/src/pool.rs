//! A multi-process worker-pool KV store on shared memory.
//!
//! The paper's breadth claim — "Aurora \[handles\] applications composed
//! of processes that share memory or files in arbitrary ways" (the
//! Firefox case) — needs a real multi-process workload to test against.
//! [`KvPool`] is one: a leader process creates a System V shared-memory
//! segment holding a [`crate::SimHeap`] + [`crate::SimMap`], then forks
//! N workers. Every process maps the same segment at the same address;
//! any worker can serve any operation; all of them observe each other's
//! writes immediately.
//!
//! The interesting property under checkpoint/restore: the shared segment
//! must be captured exactly once, restored as one object, and re-attached
//! to every restored process — not duplicated per process.

use std::cell::RefCell;
use std::rc::Rc;

use aurora_core::fleet::TenantCycle;
use aurora_core::{GroupId, Host};
use aurora_hw::{BlockDev, ModelDev, ResilientDev};
use aurora_objstore::{ObjectStore, StoreConfig};
use aurora_posix::Pid;
use aurora_sim::error::{Error, Result};
use aurora_slsfs::StoreHandle;

use crate::heap::SimHeap;
use crate::kv::{KvOp, KvServer, PersistMode};
use crate::shmap::SimMap;
use crate::workload::{KeyDist, TenantActivity, Workload};

/// Register holding the shared segment's attach address.
const REG_SHM: usize = 0;
/// Register holding the map base.
const REG_MAP: usize = 1;
/// Register holding ops served by *this* process.
const REG_SERVED: usize = 2;

/// The worker-pool KV store.
#[derive(Debug)]
pub struct KvPool {
    /// The leader (owns the segment, first to map it).
    pub leader: Pid,
    /// Worker processes (forked from the leader).
    pub workers: Vec<Pid>,
    /// SysV key of the shared segment.
    pub shm_key: i32,
    shm_addr: u64,
    map_base: u64,
    next_worker: usize,
}

impl KvPool {
    /// Builds a pool: leader + `workers` forked children, all sharing
    /// one `shm_bytes` segment that holds the data structures.
    pub fn start(host: &mut Host, workers: usize, shm_key: i32, shm_bytes: u64) -> Result<KvPool> {
        let leader = host.kernel.spawn("kv-pool-leader");
        host.kernel.shmget(shm_key, shm_bytes)?;
        let shm_addr = host.kernel.shmat(leader, shm_key)?;
        let heap = SimHeap::init_at(&mut host.kernel, leader, shm_addr, shm_bytes)?;
        let map = SimMap::create(&mut host.kernel, heap, 1024)?;
        host.kernel.set_reg(leader, REG_SHM, shm_addr)?;
        host.kernel.set_reg(leader, REG_MAP, map.base)?;
        host.kernel.set_reg(leader, REG_SERVED, 0)?;

        // Fork the workers AFTER the segment is mapped: they inherit the
        // shared mapping at the same address.
        let mut pids = Vec::new();
        for _ in 0..workers {
            pids.push(host.kernel.fork(leader)?);
        }
        Ok(KvPool {
            leader,
            workers: pids,
            shm_key,
            shm_addr,
            map_base: map.base,
            next_worker: 0,
        })
    }

    /// Re-attaches to a restored pool given the new pids (leader first).
    pub fn attach(host: &mut Host, leader: Pid, workers: Vec<Pid>, shm_key: i32) -> Result<KvPool> {
        let shm_addr = host.kernel.get_reg(leader, REG_SHM)?;
        let map_base = host.kernel.get_reg(leader, REG_MAP)?;
        // Validate through the leader's view.
        let heap = SimHeap::attach(&mut host.kernel, leader, shm_addr)?;
        SimMap::attach(&mut host.kernel, heap, map_base)?;
        Ok(KvPool {
            leader,
            workers,
            shm_key,
            shm_addr,
            map_base,
            next_worker: 0,
        })
    }

    /// Every member process, leader first.
    pub fn members(&self) -> Vec<Pid> {
        let mut m = vec![self.leader];
        m.extend(&self.workers);
        m
    }

    /// Executes one op on a specific member (all views are equivalent).
    pub fn exec_on(&self, host: &mut Host, member: Pid, op: &KvOp) -> Result<Option<Vec<u8>>> {
        let heap = SimHeap::attach(&mut host.kernel, member, self.shm_addr)?;
        let map = SimMap::attach(&mut host.kernel, heap, self.map_base)?;
        let served = host.kernel.get_reg(member, REG_SERVED)? + 1;
        host.kernel.set_reg(member, REG_SERVED, served)?;
        match op {
            KvOp::Set(k, v) => {
                map.put(&mut host.kernel, k, v)?;
                Ok(None)
            }
            KvOp::Get(k) => map.get(&mut host.kernel, k),
            KvOp::Del(k) => {
                map.del(&mut host.kernel, k)?;
                Ok(None)
            }
        }
    }

    /// Executes one op on the next worker (round-robin dispatch).
    pub fn exec(&mut self, host: &mut Host, op: &KvOp) -> Result<Option<Vec<u8>>> {
        let member = if self.workers.is_empty() {
            self.leader
        } else {
            let w = self.workers[self.next_worker % self.workers.len()];
            self.next_worker += 1;
            w
        };
        self.exec_on(host, member, op)
    }

    /// Keys stored (read through the leader).
    pub fn len(&self, host: &mut Host) -> Result<u64> {
        let heap = SimHeap::attach(&mut host.kernel, self.leader, self.shm_addr)?;
        let map = SimMap::attach(&mut host.kernel, heap, self.map_base)?;
        map.len(&mut host.kernel)
    }

    /// Ops served by each member (from their restored registers).
    pub fn served_counts(&self, host: &Host) -> Result<Vec<u64>> {
        self.members()
            .iter()
            .map(|&pid| {
                host.kernel
                    .proc_ref(pid)
                    .map(|p| p.main_thread().cpu.regs[REG_SERVED])
            })
            .collect::<core::result::Result<Vec<_>, _>>()
            .map_err(|_| Error::not_found("pool member vanished"))
    }
}

/// Per-tenant seed: mixes the fleet seed with the tenant's *global*
/// index, so tenant `i`'s op stream is identical whether it runs in an
/// interleaved fleet or alone on an isolated host (the differential
/// proptest depends on exactly this).
pub fn tenant_seed(seed: u64, index: usize) -> u64 {
    aurora_sim::rng::mix64(seed ^ 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(index as u64 + 1))
}

/// FNV-1a over a byte slice (cheap content digest for comparisons).
fn fnv1a(h: u64, bytes: &[u8]) -> u64 {
    let mut h = h;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Digest of a KV server's visible state over key indices `0..keys`.
fn kv_digest(host: &mut Host, server: &mut KvServer, keys: u64) -> Result<u64> {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for idx in 0..keys {
        let key = format!("key{idx:012}").into_bytes();
        h = fnv1a(h, &key);
        match server.exec(host, &KvOp::Get(key))? {
            Some(v) => h = fnv1a(h, &v),
            None => h = fnv1a(h, b"<absent>"),
        }
    }
    Ok(h)
}

/// One tenant of a [`TenantFleet`].
pub struct FleetTenant {
    /// Global tenant index (stable across subset construction).
    pub index: usize,
    /// The tenant's server, transparently persisted in its own group.
    pub server: KvServer,
    /// The tenant's private seeded op stream.
    pub workload: Workload,
    /// The tenant's persistence group.
    pub gid: GroupId,
    /// Name of this tenant's most recent checkpoint.
    pub last_ckpt: String,
    /// The tenant's private store when the fleet is isolated
    /// ([`TenantFleet::isolate`]); `None` means the host's shared
    /// primary.
    pub store: Option<StoreHandle>,
}

/// A fleet of independent KV tenants, one persistence group each —
/// the serverless density scenario the fleet scheduler exists for.
///
/// Tenant activity follows [`TenantActivity`] (zipfian over the fleet);
/// each tenant's key popularity and values follow its own seeded
/// [`Workload`]. `checkpoint_wave` drives the pipelined scheduler, so
/// one tenant's flush overlaps the next tenant's capture.
pub struct TenantFleet {
    /// The tenants, in construction order.
    pub tenants: Vec<FleetTenant>,
    activity: TenantActivity,
    keys: u64,
}

impl TenantFleet {
    /// Starts `n` tenants (global indices `0..n`).
    pub fn start(
        host: &mut Host,
        n: usize,
        seed: u64,
        heap_bytes: u64,
        keys: u64,
        value_len: usize,
    ) -> Result<TenantFleet> {
        let indices: Vec<usize> = (0..n).collect();
        TenantFleet::start_subset(host, seed, &indices, heap_bytes, keys, value_len)
    }

    /// Starts only the tenants with the given *global* indices — an
    /// isolated single-tenant host for the differential proptest uses a
    /// one-element subset and gets the identical op stream the tenant
    /// would see inside the full interleaved fleet.
    pub fn start_subset(
        host: &mut Host,
        seed: u64,
        indices: &[usize],
        heap_bytes: u64,
        keys: u64,
        value_len: usize,
    ) -> Result<TenantFleet> {
        // Open-addressing map: leave headroom so the workload never
        // fills the table.
        let buckets = (keys * 2).next_power_of_two().max(64);
        let mut tenants = Vec::with_capacity(indices.len());
        for &index in indices {
            let mut server =
                KvServer::start(host, PersistMode::AuroraTransparent, heap_bytes, buckets)?;
            let gid = server
                .gid
                .ok_or_else(|| Error::internal("transparent tenant has no group"))?;
            let mut workload = Workload::new(
                tenant_seed(seed, index),
                keys,
                value_len,
                0.0,
                KeyDist::Zipfian { theta: 0.99 },
            );
            for op in workload.load_ops() {
                server.exec(host, &op)?;
            }
            // Cover the loaded state so an untouched tenant still
            // restores to what its digest reports.
            let name = format!("t{index}-base");
            let bd = host.checkpoint(gid, false, Some(&name))?;
            host.clock.advance_to(bd.durable_at);
            tenants.push(FleetTenant {
                index,
                server,
                workload,
                gid,
                last_ckpt: name,
                store: None,
            });
        }
        Ok(TenantFleet {
            tenants,
            activity: TenantActivity::new(seed, indices.len(), 0.99),
            keys,
        })
    }

    /// Rehomes every tenant onto its own freshly formatted store, so
    /// each tenant is its own fault domain: a device fault (or the
    /// quarantine it triggers) is confined to one tenant while the rest
    /// of the fleet keeps checkpointing. Each tenant takes a fresh full
    /// base on its new store so an untouched tenant still restores.
    pub fn isolate(&mut self, host: &mut Host) -> Result<()> {
        for tenant in &mut self.tenants {
            let dev = Box::new(ModelDev::nvme(
                host.clock.clone(),
                &format!("tenant{}", tenant.index),
                64 * 1024,
            ));
            let dev: Box<dyn BlockDev> = Box::new(ResilientDev::with_defaults(dev));
            let store: StoreHandle = Rc::new(RefCell::new(ObjectStore::format(
                dev,
                StoreConfig {
                    journal_blocks: 512,
                    materialize_data: true,
                    ..StoreConfig::default()
                },
            )?));
            host.rehome_group(tenant.gid, store.clone())?;
            let name = format!("t{}-isolated-base", tenant.index);
            let bd = host.checkpoint(tenant.gid, true, Some(&name))?;
            host.clock.advance_to(bd.durable_at);
            tenant.last_ckpt = name;
            tenant.store = Some(store);
        }
        Ok(())
    }

    /// Draws a wave of `k` distinct active tenant positions.
    pub fn wave(&mut self, k: usize) -> Vec<usize> {
        self.activity.wave(k)
    }

    /// Runs `ops` operations from tenant position `t`'s own stream.
    pub fn touch(&mut self, host: &mut Host, t: usize, ops: usize) -> Result<()> {
        let tenant = self
            .tenants
            .get_mut(t)
            .ok_or_else(|| Error::not_found(format!("tenant {t}")))?;
        for _ in 0..ops {
            let op = tenant.workload.next_op();
            tenant.server.exec(host, &op)?;
        }
        Ok(())
    }

    /// Pipelined incremental checkpoints of a wave, named
    /// `t<index>-r<round>` so survivors are identifiable after a crash.
    ///
    /// One tenant's failure never aborts the wave: each entry carries
    /// that tenant's own outcome (committed breakdown, quarantine skip,
    /// or hard error), mirroring [`Host::checkpoint_all`]. The outer
    /// `Result` only reports harness errors (an unknown tenant
    /// position).
    pub fn checkpoint_wave(
        &mut self,
        host: &mut Host,
        wave: &[usize],
        round: u32,
    ) -> Result<Vec<TenantCycle>> {
        let mut out = Vec::with_capacity(wave.len());
        for &t in wave {
            let tenant = self
                .tenants
                .get_mut(t)
                .ok_or_else(|| Error::not_found(format!("tenant {t}")))?;
            let name = format!("t{}-r{round}", tenant.index);
            let result = host.checkpoint_pipelined(tenant.gid, false, Some(&name));
            if let Ok(bd) = &result {
                if bd.outcome.committed() {
                    tenant.last_ckpt = name;
                }
            }
            out.push(TenantCycle {
                gid: tenant.gid,
                result,
            });
        }
        Ok(out)
    }

    /// Digest of tenant position `t`'s live KV state.
    pub fn digest(&mut self, host: &mut Host, t: usize) -> Result<u64> {
        let tenant = self
            .tenants
            .get_mut(t)
            .ok_or_else(|| Error::not_found(format!("tenant {t}")))?;
        kv_digest(host, &mut tenant.server, self.keys)
    }

    /// Restores tenant position `t`'s most recent checkpoint on a
    /// (typically rebooted) host, digests the restored KV state, and
    /// tears the restored process back down.
    pub fn restore_tenant(&self, host: &mut Host, t: usize) -> Result<u64> {
        let tenant = self
            .tenants
            .get(t)
            .ok_or_else(|| Error::not_found(format!("tenant {t}")))?;
        let store = tenant
            .store
            .clone()
            .unwrap_or_else(|| host.sls.primary.clone());
        let ckpt = store
            .borrow()
            .checkpoints()
            .iter()
            .find(|c| c.name.as_deref() == Some(tenant.last_ckpt.as_str()))
            .map(|c| c.id)
            .ok_or_else(|| Error::not_found(format!("checkpoint {}", tenant.last_ckpt)))?;
        let r = host.restore(&store, ckpt, aurora_core::restore::RestoreMode::Eager)?;
        let pid = r
            .root_pid()
            .ok_or_else(|| Error::internal("restore returned no root pid"))?;
        let mut server = KvServer::attach(host, pid, PersistMode::AuroraTransparent)?;
        let digest = kv_digest(host, &mut server, self.keys);
        let _ = host.kernel.exit(pid, 0);
        host.kernel.procs.remove(&pid);
        digest
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aurora_core::restore::RestoreMode;
    use aurora_hw::ModelDev;
    use aurora_objstore::StoreConfig;
    use aurora_sim::SimClock;

    fn boot() -> Host {
        let clock = SimClock::new();
        let dev = Box::new(ModelDev::nvme(clock, "nvme0", 128 * 1024));
        Host::boot("pool", dev, StoreConfig::default()).unwrap()
    }

    #[test]
    fn workers_share_one_store() {
        let mut host = boot();
        let mut pool = KvPool::start(&mut host, 3, 77, 4 << 20).unwrap();
        // Ops scatter across workers; every view is coherent.
        for i in 0..30u32 {
            pool.exec(
                &mut host,
                &KvOp::Set(format!("k{i}").into_bytes(), format!("v{i}").into_bytes()),
            )
            .unwrap();
        }
        assert_eq!(pool.len(&mut host).unwrap(), 30);
        // A value written by one worker is visible through another.
        let via_leader = pool
            .exec_on(&mut host, pool.leader, &KvOp::Get(b"k7".to_vec()))
            .unwrap();
        assert_eq!(via_leader.unwrap(), b"v7");
        // Work actually spread over the workers.
        let served = pool.served_counts(&host).unwrap();
        assert!(served[1..].iter().all(|&s| s >= 10));
    }

    #[test]
    fn whole_pool_checkpoint_restores_shared_segment_once() {
        let mut host = boot();
        let mut pool = KvPool::start(&mut host, 3, 77, 4 << 20).unwrap();
        for i in 0..20u32 {
            pool.exec(
                &mut host,
                &KvOp::Set(format!("k{i}").into_bytes(), b"before".to_vec()),
            )
            .unwrap();
        }
        let gid = host.persist("kv-pool", pool.leader).unwrap();
        let bd = host.checkpoint(gid, true, None).unwrap();
        host.clock.advance_to(bd.durable_at);

        // Post-checkpoint writes will be lost in the crash.
        pool.exec(&mut host, &KvOp::Set(b"k5".to_vec(), b"after!".to_vec()))
            .unwrap();

        let mut host = host.crash_and_reboot().unwrap();
        let store = host.sls.primary.clone();
        let head = store.borrow().head().unwrap();
        let r = host.restore(&store, head, RestoreMode::Eager).unwrap();
        let new_leader = r.restored_pid(pool.leader.0).unwrap();
        let new_workers: Vec<Pid> = pool
            .workers
            .iter()
            .map(|w| r.restored_pid(w.0).unwrap())
            .collect();
        let restored = KvPool::attach(&mut host, new_leader, new_workers, 77).unwrap();

        // Per-worker served counters came back through the registers
        // (checked before the verification ops below bump them again).
        let served = restored.served_counts(&host).unwrap();
        assert_eq!(served.iter().sum::<u64>(), 20);
        assert_eq!(restored.len(&mut host).unwrap(), 20);
        let v = restored
            .exec_on(&mut host, restored.workers[2], &KvOp::Get(b"k5".to_vec()))
            .unwrap();
        assert_eq!(v.unwrap(), b"before", "post-checkpoint write rolled back");

        // Coherence still holds after restore: worker writes, leader sees.
        restored
            .exec_on(
                &mut host,
                restored.workers[0],
                &KvOp::Set(b"post".to_vec(), b"restore".to_vec()),
            )
            .unwrap();
        let v = restored
            .exec_on(&mut host, restored.leader, &KvOp::Get(b"post".to_vec()))
            .unwrap();
        assert_eq!(v.unwrap(), b"restore");
    }

    #[test]
    fn isolated_fleet_confines_a_dead_tenant_device() {
        use aurora_core::fleet::{TenantHealth, QUARANTINE_AFTER};
        use aurora_core::CheckpointOutcome;
        use aurora_hw::FaultPlan;

        let mut host = boot();
        let mut fleet = TenantFleet::start(&mut host, 4, 0xdead, 256 * 1024, 24, 48).unwrap();
        fleet.isolate(&mut host).unwrap();

        // Kill tenant 0's private device on its next write.
        fleet
            .tenants
            .first()
            .and_then(|t| t.store.clone())
            .expect("isolated tenant has a store")
            .borrow_mut()
            .device_mut()
            .install_fault_plan(FaultPlan::power_cut(1));
        let gid0 = fleet.tenants.first().unwrap().gid;

        // Enough all-tenant waves to walk tenant 0 into quarantine.
        let all: Vec<usize> = (0..4).collect();
        for round in 0..(QUARANTINE_AFTER + 1) {
            for &t in &all {
                fleet.touch(&mut host, t, 4).unwrap();
            }
            let cycles = fleet.checkpoint_wave(&mut host, &all, round).unwrap();
            // Healthy tenants commit every round, poisoned or not.
            for (t, cycle) in all.iter().zip(&cycles).skip(1) {
                match &cycle.result {
                    Ok(bd) if bd.outcome.committed() => {}
                    other => panic!("healthy tenant {t} failed round {round}: {other:?}"),
                }
            }
            host.fleet_drain();
        }
        assert_eq!(
            host.tenant_domain(gid0).health,
            TenantHealth::Quarantined,
            "poisoned tenant never quarantined"
        );
        // A quarantined tenant's wave entry is a skip, not an error.
        let cycles = fleet
            .checkpoint_wave(&mut host, &all, QUARANTINE_AFTER + 1)
            .unwrap();
        let first = cycles.first().expect("wave has tenant 0");
        assert!(
            matches!(&first.result, Ok(bd) if bd.outcome == CheckpointOutcome::Quarantined),
            "expected a quarantine skip, got {:?}",
            first.result
        );
        host.fleet_drain();

        // The healthy tenants' checkpoints restore from their own
        // stores, unharmed by the dead neighbor.
        let want: Vec<u64> = (1..4)
            .map(|t| fleet.digest(&mut host, t).unwrap())
            .collect();
        for (i, t) in (1..4usize).enumerate() {
            let got = fleet.restore_tenant(&mut host, t).unwrap();
            assert_eq!(got, want[i], "tenant {t} restored differently");
        }
    }

    #[test]
    fn fleet_waves_interleave_and_survive_a_crash() {
        let mut host = boot();
        let mut fleet = TenantFleet::start(&mut host, 6, 0xf1ee7, 256 * 1024, 24, 48).unwrap();
        // A few zipfian waves of activity + pipelined checkpoints.
        for round in 0..3u32 {
            let wave = fleet.wave(4);
            for &t in &wave {
                fleet.touch(&mut host, t, 8).unwrap();
            }
            fleet.checkpoint_wave(&mut host, &wave, round).unwrap();
        }
        host.fleet_drain();
        assert!(host.sls.fleet.stats.overlapped > 0, "waves never overlapped");
        let want: Vec<u64> = (0..6)
            .map(|t| fleet.digest(&mut host, t).unwrap())
            .collect();
        let mut host = host.crash_and_reboot().unwrap();
        for t in 0..6usize {
            let got = fleet.restore_tenant(&mut host, t).unwrap();
            assert_eq!(
                got, want[t],
                "tenant {t} restored to a different KV digest"
            );
        }
    }
}
