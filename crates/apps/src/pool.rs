//! A multi-process worker-pool KV store on shared memory.
//!
//! The paper's breadth claim — "Aurora \[handles\] applications composed
//! of processes that share memory or files in arbitrary ways" (the
//! Firefox case) — needs a real multi-process workload to test against.
//! [`KvPool`] is one: a leader process creates a System V shared-memory
//! segment holding a [`crate::SimHeap`] + [`crate::SimMap`], then forks
//! N workers. Every process maps the same segment at the same address;
//! any worker can serve any operation; all of them observe each other's
//! writes immediately.
//!
//! The interesting property under checkpoint/restore: the shared segment
//! must be captured exactly once, restored as one object, and re-attached
//! to every restored process — not duplicated per process.

use aurora_core::Host;
use aurora_posix::Pid;
use aurora_sim::error::{Error, Result};

use crate::heap::SimHeap;
use crate::kv::KvOp;
use crate::shmap::SimMap;

/// Register holding the shared segment's attach address.
const REG_SHM: usize = 0;
/// Register holding the map base.
const REG_MAP: usize = 1;
/// Register holding ops served by *this* process.
const REG_SERVED: usize = 2;

/// The worker-pool KV store.
#[derive(Debug)]
pub struct KvPool {
    /// The leader (owns the segment, first to map it).
    pub leader: Pid,
    /// Worker processes (forked from the leader).
    pub workers: Vec<Pid>,
    /// SysV key of the shared segment.
    pub shm_key: i32,
    shm_addr: u64,
    map_base: u64,
    next_worker: usize,
}

impl KvPool {
    /// Builds a pool: leader + `workers` forked children, all sharing
    /// one `shm_bytes` segment that holds the data structures.
    pub fn start(host: &mut Host, workers: usize, shm_key: i32, shm_bytes: u64) -> Result<KvPool> {
        let leader = host.kernel.spawn("kv-pool-leader");
        host.kernel.shmget(shm_key, shm_bytes)?;
        let shm_addr = host.kernel.shmat(leader, shm_key)?;
        let heap = SimHeap::init_at(&mut host.kernel, leader, shm_addr, shm_bytes)?;
        let map = SimMap::create(&mut host.kernel, heap, 1024)?;
        host.kernel.set_reg(leader, REG_SHM, shm_addr)?;
        host.kernel.set_reg(leader, REG_MAP, map.base)?;
        host.kernel.set_reg(leader, REG_SERVED, 0)?;

        // Fork the workers AFTER the segment is mapped: they inherit the
        // shared mapping at the same address.
        let mut pids = Vec::new();
        for _ in 0..workers {
            pids.push(host.kernel.fork(leader)?);
        }
        Ok(KvPool {
            leader,
            workers: pids,
            shm_key,
            shm_addr,
            map_base: map.base,
            next_worker: 0,
        })
    }

    /// Re-attaches to a restored pool given the new pids (leader first).
    pub fn attach(host: &mut Host, leader: Pid, workers: Vec<Pid>, shm_key: i32) -> Result<KvPool> {
        let shm_addr = host.kernel.get_reg(leader, REG_SHM)?;
        let map_base = host.kernel.get_reg(leader, REG_MAP)?;
        // Validate through the leader's view.
        let heap = SimHeap::attach(&mut host.kernel, leader, shm_addr)?;
        SimMap::attach(&mut host.kernel, heap, map_base)?;
        Ok(KvPool {
            leader,
            workers,
            shm_key,
            shm_addr,
            map_base,
            next_worker: 0,
        })
    }

    /// Every member process, leader first.
    pub fn members(&self) -> Vec<Pid> {
        let mut m = vec![self.leader];
        m.extend(&self.workers);
        m
    }

    /// Executes one op on a specific member (all views are equivalent).
    pub fn exec_on(&self, host: &mut Host, member: Pid, op: &KvOp) -> Result<Option<Vec<u8>>> {
        let heap = SimHeap::attach(&mut host.kernel, member, self.shm_addr)?;
        let map = SimMap::attach(&mut host.kernel, heap, self.map_base)?;
        let served = host.kernel.get_reg(member, REG_SERVED)? + 1;
        host.kernel.set_reg(member, REG_SERVED, served)?;
        match op {
            KvOp::Set(k, v) => {
                map.put(&mut host.kernel, k, v)?;
                Ok(None)
            }
            KvOp::Get(k) => map.get(&mut host.kernel, k),
            KvOp::Del(k) => {
                map.del(&mut host.kernel, k)?;
                Ok(None)
            }
        }
    }

    /// Executes one op on the next worker (round-robin dispatch).
    pub fn exec(&mut self, host: &mut Host, op: &KvOp) -> Result<Option<Vec<u8>>> {
        let member = if self.workers.is_empty() {
            self.leader
        } else {
            let w = self.workers[self.next_worker % self.workers.len()];
            self.next_worker += 1;
            w
        };
        self.exec_on(host, member, op)
    }

    /// Keys stored (read through the leader).
    pub fn len(&self, host: &mut Host) -> Result<u64> {
        let heap = SimHeap::attach(&mut host.kernel, self.leader, self.shm_addr)?;
        let map = SimMap::attach(&mut host.kernel, heap, self.map_base)?;
        map.len(&mut host.kernel)
    }

    /// Ops served by each member (from their restored registers).
    pub fn served_counts(&self, host: &Host) -> Result<Vec<u64>> {
        self.members()
            .iter()
            .map(|&pid| {
                host.kernel
                    .proc_ref(pid)
                    .map(|p| p.main_thread().cpu.regs[REG_SERVED])
            })
            .collect::<core::result::Result<Vec<_>, _>>()
            .map_err(|_| Error::not_found("pool member vanished"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aurora_core::restore::RestoreMode;
    use aurora_hw::ModelDev;
    use aurora_objstore::StoreConfig;
    use aurora_sim::SimClock;

    fn boot() -> Host {
        let clock = SimClock::new();
        let dev = Box::new(ModelDev::nvme(clock, "nvme0", 128 * 1024));
        Host::boot("pool", dev, StoreConfig::default()).unwrap()
    }

    #[test]
    fn workers_share_one_store() {
        let mut host = boot();
        let mut pool = KvPool::start(&mut host, 3, 77, 4 << 20).unwrap();
        // Ops scatter across workers; every view is coherent.
        for i in 0..30u32 {
            pool.exec(
                &mut host,
                &KvOp::Set(format!("k{i}").into_bytes(), format!("v{i}").into_bytes()),
            )
            .unwrap();
        }
        assert_eq!(pool.len(&mut host).unwrap(), 30);
        // A value written by one worker is visible through another.
        let via_leader = pool
            .exec_on(&mut host, pool.leader, &KvOp::Get(b"k7".to_vec()))
            .unwrap();
        assert_eq!(via_leader.unwrap(), b"v7");
        // Work actually spread over the workers.
        let served = pool.served_counts(&host).unwrap();
        assert!(served[1..].iter().all(|&s| s >= 10));
    }

    #[test]
    fn whole_pool_checkpoint_restores_shared_segment_once() {
        let mut host = boot();
        let mut pool = KvPool::start(&mut host, 3, 77, 4 << 20).unwrap();
        for i in 0..20u32 {
            pool.exec(
                &mut host,
                &KvOp::Set(format!("k{i}").into_bytes(), b"before".to_vec()),
            )
            .unwrap();
        }
        let gid = host.persist("kv-pool", pool.leader).unwrap();
        let bd = host.checkpoint(gid, true, None).unwrap();
        host.clock.advance_to(bd.durable_at);

        // Post-checkpoint writes will be lost in the crash.
        pool.exec(&mut host, &KvOp::Set(b"k5".to_vec(), b"after!".to_vec()))
            .unwrap();

        let mut host = host.crash_and_reboot().unwrap();
        let store = host.sls.primary.clone();
        let head = store.borrow().head().unwrap();
        let r = host.restore(&store, head, RestoreMode::Eager).unwrap();
        let new_leader = r.restored_pid(pool.leader.0).unwrap();
        let new_workers: Vec<Pid> = pool
            .workers
            .iter()
            .map(|w| r.restored_pid(w.0).unwrap())
            .collect();
        let restored = KvPool::attach(&mut host, new_leader, new_workers, 77).unwrap();

        // Per-worker served counters came back through the registers
        // (checked before the verification ops below bump them again).
        let served = restored.served_counts(&host).unwrap();
        assert_eq!(served.iter().sum::<u64>(), 20);
        assert_eq!(restored.len(&mut host).unwrap(), 20);
        let v = restored
            .exec_on(&mut host, restored.workers[2], &KvOp::Get(b"k5".to_vec()))
            .unwrap();
        assert_eq!(v.unwrap(), b"before", "post-checkpoint write rolled back");

        // Coherence still holds after restore: worker writes, leader sees.
        restored
            .exec_on(
                &mut host,
                restored.workers[0],
                &KvOp::Set(b"post".to_vec(), b"restore".to_vec()),
            )
            .unwrap();
        let v = restored
            .exec_on(&mut host, restored.leader, &KvOp::Get(b"post".to_vec()))
            .unwrap();
        assert_eq!(v.unwrap(), b"restore");
    }
}
