//! Serverless function runtime on Aurora.
//!
//! §4's serverless story: a *function image* is a checkpoint of an
//! initialized runtime container. Warm starts restore the image lazily;
//! scale-out is "repeatedly restoring an already checkpointed
//! application"; density comes from the object store deduplicating the
//! shared runtime pages between function images; and instances warm each
//! other up by sharing faulted-in frames.

use aurora_core::restore::RestoreMode;
use aurora_core::{GroupId, Host, RestoreBreakdown};
use aurora_objstore::CkptId;
use aurora_posix::Pid;
use aurora_sim::error::{Error, Result};
use aurora_sim::time::SimDuration;
use aurora_slsfs::StoreHandle;

/// Seed shared by every function's runtime region — identical bytes, so
/// the store deduplicates them across images.
pub const RUNTIME_SEED: u64 = 0x5255_4E54;

/// A checkpointed, initialized function runtime.
#[derive(Debug, Clone)]
pub struct FunctionImage {
    /// The image checkpoint.
    pub ckpt: CkptId,
    /// Store holding the image.
    pub store: StoreHandle,
    /// Function name.
    pub name: String,
    /// Runtime (shared) region size in pages.
    pub runtime_pages: u64,
    /// Function-specific region size in pages.
    pub fn_pages: u64,
    /// Address of the runtime region.
    pub runtime_addr: u64,
    /// Address of the function region.
    pub fn_addr: u64,
}

/// One running function instance.
#[derive(Debug, Clone, Copy)]
pub struct Instance {
    /// Instance process.
    pub pid: Pid,
    /// Its persistence group, when re-persisted.
    pub gid: Option<GroupId>,
}

/// Builds and checkpoints an initialized function runtime, then retires
/// the build process (only the image remains — the serverless "deploy").
pub fn build_image(
    host: &mut Host,
    name: &str,
    runtime_pages: u64,
    fn_pages: u64,
    fn_seed: u64,
) -> Result<FunctionImage> {
    let pid = host.kernel.spawn(name);
    let ct = host.kernel.container_create(name, &format!("/ct/{name}"));
    host.kernel.container_add(ct, pid)?;

    // Shared runtime: identical across every function (same seed).
    let runtime_addr = host.kernel.mmap_anon(pid, runtime_pages * 4096, false)?;
    host.kernel
        .mem_touch_seeded(pid, runtime_addr, runtime_pages * 4096, RUNTIME_SEED)?;
    // Function-specific code/state.
    let fn_addr = host.kernel.mmap_anon(pid, fn_pages * 4096, false)?;
    host.kernel
        .mem_touch_seeded(pid, fn_addr, fn_pages * 4096, fn_seed)?;
    host.kernel.set_reg(pid, 0, runtime_addr)?;
    host.kernel.set_reg(pid, 1, fn_addr)?;
    host.kernel.set_reg(pid, 2, 0)?; // Invocation counter.

    let gid = host.persist(name, pid)?;
    let bd = host.checkpoint(gid, true, Some(name))?;
    let ckpt = bd.ckpt.ok_or_else(|| Error::internal("no ckpt id"))?;
    host.clock.advance_to(bd.durable_at);

    // Retire the build process; the image is the artifact.
    host.kernel.exit(pid, 0)?;
    host.kernel.procs.remove(&pid);
    Ok(FunctionImage {
        ckpt,
        store: host.sls.primary.clone(),
        name: name.to_string(),
        runtime_pages,
        fn_pages,
        runtime_addr,
        fn_addr,
    })
}

/// Cold/warm-starts an instance from an image; returns the instance and
/// the restore breakdown (the paper's startup latency).
pub fn instantiate(
    host: &mut Host,
    image: &FunctionImage,
    mode: RestoreMode,
) -> Result<(Instance, RestoreBreakdown)> {
    let breakdown = host.restore(&image.store, image.ckpt, mode)?;
    let pid = breakdown
        .root_pid()
        .ok_or_else(|| Error::bad_image("image restored no process"))?;
    Ok((Instance { pid, gid: None }, breakdown))
}

/// Invokes the function: touches `hot_pages` of runtime + the function
/// region head, does a little compute, bumps the invocation counter.
/// Returns the invocation's virtual latency.
pub fn invoke(host: &mut Host, image: &FunctionImage, inst: Instance, hot_pages: u64) -> Result<SimDuration> {
    let t0 = host.clock.now();
    let mut buf = [0u8; 64];
    for i in 0..hot_pages.min(image.runtime_pages) {
        host.kernel
            .mem_read(inst.pid, image.runtime_addr + i * 4096, &mut buf)?;
    }
    for i in 0..4u64.min(image.fn_pages) {
        host.kernel
            .mem_read(inst.pid, image.fn_addr + i * 4096, &mut buf)?;
    }
    // The function's own compute (fixed 50 µs of work).
    host.clock.charge(SimDuration::from_micros(50));
    let n = host.kernel.get_reg(inst.pid, 2)? + 1;
    host.kernel.set_reg(inst.pid, 2, n)?;
    Ok(host.clock.now().since(t0))
}

/// Tears an instance down (scale-in).
pub fn retire(host: &mut Host, inst: Instance) -> Result<()> {
    host.kernel.exit(inst.pid, 0)?;
    host.kernel.procs.remove(&inst.pid);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use aurora_hw::ModelDev;
    use aurora_objstore::StoreConfig;
    use aurora_sim::SimClock;

    fn host() -> Host {
        let clock = SimClock::new();
        let dev = Box::new(ModelDev::nvme(clock, "nvme0", 512 * 1024));
        Host::boot("h", dev, StoreConfig::default()).unwrap()
    }

    #[test]
    fn image_lifecycle_and_invocation() {
        let mut h = host();
        let image = build_image(&mut h, "fn-a", 64, 8, 0xA).unwrap();
        let (inst, bd) = instantiate(&mut h, &image, RestoreMode::LazyPrefetch).unwrap();
        assert!(bd.total.as_micros() > 0);
        let lat1 = invoke(&mut h, &image, inst, 16).unwrap();
        let lat2 = invoke(&mut h, &image, inst, 16).unwrap();
        assert!(lat2 <= lat1, "second invocation warmer: {lat2} vs {lat1}");
        assert_eq!(h.kernel.get_reg(inst.pid, 2).unwrap(), 2);
        retire(&mut h, inst).unwrap();
    }

    #[test]
    fn images_dedup_shared_runtime() {
        let mut h = host();
        let before = h.sls.primary.borrow().blocks_in_use();
        let _a = build_image(&mut h, "fn-a", 128, 4, 0xA).unwrap();
        let after_a = h.sls.primary.borrow().blocks_in_use();
        let _b = build_image(&mut h, "fn-b", 128, 4, 0xB).unwrap();
        let after_b = h.sls.primary.borrow().blocks_in_use();
        let image_a_blocks = after_a - before;
        let image_b_marginal = after_b - after_a;
        assert!(
            image_b_marginal * 4 < image_a_blocks,
            "second function is a small delta: {image_b_marginal} vs {image_a_blocks}"
        );
    }

    #[test]
    fn scale_out_instances_are_independent() {
        let mut h = host();
        let image = build_image(&mut h, "fn-a", 32, 4, 0xA).unwrap();
        let (i1, _) = instantiate(&mut h, &image, RestoreMode::Lazy).unwrap();
        let (i2, _) = instantiate(&mut h, &image, RestoreMode::Lazy).unwrap();
        invoke(&mut h, &image, i1, 8).unwrap();
        invoke(&mut h, &image, i1, 8).unwrap();
        invoke(&mut h, &image, i2, 8).unwrap();
        assert_eq!(h.kernel.get_reg(i1.pid, 2).unwrap(), 2);
        assert_eq!(h.kernel.get_reg(i2.pid, 2).unwrap(), 1);
    }
}
