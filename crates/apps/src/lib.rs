//! Simulated applications for the Aurora evaluation.
//!
//! These programs are the crucial honesty check of the reproduction:
//! their *entire* state — data structures, cursors, configuration — lives
//! in simulated memory, simulated registers and SLSFS files, so a
//! checkpoint/restore round trip provably resumes the application from
//! its data rather than re-running it.
//!
//! * [`heap`] — a free-list allocator that manages simulated memory
//!   through kernel `copyin`/`copyout`, like a libc malloc.
//! * [`shmap`] — an open-addressing hash table stored entirely inside
//!   simulated memory (keys and values allocated from [`heap`]).
//! * [`kv`] — the Redis-like key-value server used throughout §5, with
//!   four interchangeable persistence strategies: none,
//!   fork-based snapshots (Redis RDB), a write-ahead log with fsync
//!   (Redis AOF), and the Aurora port built on `sls_ntflush` +
//!   checkpoints + barriers.
//! * [`lsm`] — a RocksDB-flavoured LSM tree over SLSFS (memtable,
//!   sorted-run files, compaction), with WAL vs. Aurora-log persistence.
//! * [`pool`] — a multi-process worker-pool KV store on System V shared
//!   memory (the Firefox-class "processes sharing memory in arbitrary
//!   ways" case).
//! * [`serverless`] — function runtime images and invocation (warm/cold
//!   starts, instance density).
//! * [`hello`] — the paper's hello-world serverless stand-in.
//! * [`workload`] — deterministic uniform and Zipfian key generators.
//! * [`profiles`] — synthetic address-space/descriptor profiles matching
//!   the paper's workloads (Redis-class and serverless-class processes)
//!   for the Table 3/4 benchmarks.

pub mod heap;
pub mod hello;
pub mod kv;
pub mod lsm;
pub mod pool;
pub mod profiles;
pub mod serverless;
pub mod shmap;
pub mod workload;

pub use heap::SimHeap;
pub use kv::{KvOp, KvServer, PersistMode};
pub use shmap::SimMap;
