//! An open-addressing hash table stored in simulated memory.
//!
//! The KV server's entire dataset lives here: the bucket array and every
//! key/value payload are allocations in a [`crate::SimHeap`]. After a
//! checkpoint/restore the table is byte-identical, so a restored server
//! answers queries from the persisted bytes — the single-level-store
//! promise made concrete.
//!
//! Layout (all little-endian u64 unless noted):
//!
//! ```text
//! header: magic, capacity, count
//! bucket: state (0 empty / 1 used / 2 tombstone),
//!         key ptr, key len, val ptr, val len      (40 bytes)
//! ```

use aurora_posix::{Kernel, Pid};
use aurora_sim::error::{Error, Result};
use aurora_sim::hash::fnv64;

use crate::heap::SimHeap;

const MAP_MAGIC: u64 = 0x4155_524D_4150_5631; // "AURMAPV1"
const HDR: u64 = 24;
const BUCKET: u64 = 40;
const EMPTY: u64 = 0;
const USED: u64 = 1;
const TOMB: u64 = 2;

/// Driver handle for a hash table in simulated memory.
#[derive(Debug, Clone, Copy)]
pub struct SimMap {
    /// Owning process.
    pub pid: Pid,
    /// Table header address.
    pub base: u64,
    heap: SimHeap,
    capacity: u64,
}

fn read_u64(k: &mut Kernel, pid: Pid, addr: u64) -> Result<u64> {
    let mut buf = [0u8; 8];
    k.mem_read(pid, addr, &mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

fn write_u64(k: &mut Kernel, pid: Pid, addr: u64, v: u64) -> Result<()> {
    k.mem_write(pid, addr, &v.to_le_bytes())
}

impl SimMap {
    /// Creates a table with `capacity` buckets (rounded up to a power of
    /// two) inside `heap`.
    pub fn create(k: &mut Kernel, heap: SimHeap, capacity: u64) -> Result<SimMap> {
        let capacity = capacity.next_power_of_two().max(8);
        let base = heap.alloc(k, HDR + capacity * BUCKET)?;
        write_u64(k, heap.pid, base, MAP_MAGIC)?;
        write_u64(k, heap.pid, base + 8, capacity)?;
        write_u64(k, heap.pid, base + 16, 0)?;
        // Zero the bucket states.
        let zeros = vec![0u8; (capacity * BUCKET) as usize];
        k.mem_write(heap.pid, base + HDR, &zeros)?;
        Ok(SimMap {
            pid: heap.pid,
            base,
            heap,
            capacity,
        })
    }

    /// Re-attaches to an existing table after restore.
    pub fn attach(k: &mut Kernel, heap: SimHeap, base: u64) -> Result<SimMap> {
        if read_u64(k, heap.pid, base)? != MAP_MAGIC {
            return Err(Error::corrupt(format!("no map at {base:#x}")));
        }
        let capacity = read_u64(k, heap.pid, base + 8)?;
        Ok(SimMap {
            pid: heap.pid,
            base,
            heap,
            capacity,
        })
    }

    fn bucket_addr(&self, i: u64) -> u64 {
        self.base + HDR + (i & (self.capacity - 1)) * BUCKET
    }

    /// Number of live entries.
    pub fn len(&self, k: &mut Kernel) -> Result<u64> {
        read_u64(k, self.pid, self.base + 16)
    }

    /// True when no entries exist.
    pub fn is_empty(&self, k: &mut Kernel) -> Result<bool> {
        Ok(self.len(k)? == 0)
    }

    fn bucket_key(&self, k: &mut Kernel, b: u64) -> Result<Vec<u8>> {
        let kptr = read_u64(k, self.pid, b + 8)?;
        let klen = read_u64(k, self.pid, b + 16)?;
        self.heap.load(k, kptr, klen as usize)
    }

    /// Inserts or replaces a key.
    pub fn put(&self, k: &mut Kernel, key: &[u8], value: &[u8]) -> Result<()> {
        let h = fnv64(key);
        let mut first_tomb: Option<u64> = None;
        for probe in 0..self.capacity {
            let b = self.bucket_addr(h.wrapping_add(probe));
            match read_u64(k, self.pid, b)? {
                EMPTY => {
                    let slot = first_tomb.unwrap_or(b);
                    return self.fill_bucket(k, slot, key, value, true);
                }
                TOMB => {
                    if first_tomb.is_none() {
                        first_tomb = Some(b);
                    }
                }
                _ => {
                    if self.bucket_key(k, b)? == key {
                        // Replace the value in place.
                        let old_vptr = read_u64(k, self.pid, b + 24)?;
                        self.heap.free(k, old_vptr)?;
                        let vptr = self.heap.alloc(k, value.len().max(1) as u64)?;
                        self.heap.store(k, vptr, value)?;
                        write_u64(k, self.pid, b + 24, vptr)?;
                        write_u64(k, self.pid, b + 32, value.len() as u64)?;
                        return Ok(());
                    }
                }
            }
        }
        if let Some(slot) = first_tomb {
            return self.fill_bucket(k, slot, key, value, true);
        }
        Err(Error::no_space("hash table full"))
    }

    fn fill_bucket(
        &self,
        k: &mut Kernel,
        b: u64,
        key: &[u8],
        value: &[u8],
        bump_count: bool,
    ) -> Result<()> {
        let kptr = self.heap.alloc(k, key.len().max(1) as u64)?;
        self.heap.store(k, kptr, key)?;
        let vptr = self.heap.alloc(k, value.len().max(1) as u64)?;
        self.heap.store(k, vptr, value)?;
        write_u64(k, self.pid, b, USED)?;
        write_u64(k, self.pid, b + 8, kptr)?;
        write_u64(k, self.pid, b + 16, key.len() as u64)?;
        write_u64(k, self.pid, b + 24, vptr)?;
        write_u64(k, self.pid, b + 32, value.len() as u64)?;
        if bump_count {
            let count = read_u64(k, self.pid, self.base + 16)?;
            write_u64(k, self.pid, self.base + 16, count + 1)?;
        }
        Ok(())
    }

    /// Looks a key up.
    pub fn get(&self, k: &mut Kernel, key: &[u8]) -> Result<Option<Vec<u8>>> {
        let h = fnv64(key);
        for probe in 0..self.capacity {
            let b = self.bucket_addr(h.wrapping_add(probe));
            match read_u64(k, self.pid, b)? {
                EMPTY => return Ok(None),
                TOMB => continue,
                _ => {
                    if self.bucket_key(k, b)? == key {
                        let vptr = read_u64(k, self.pid, b + 24)?;
                        let vlen = read_u64(k, self.pid, b + 32)?;
                        return Ok(Some(self.heap.load(k, vptr, vlen as usize)?));
                    }
                }
            }
        }
        Ok(None)
    }

    /// Deletes a key; returns whether it existed.
    pub fn del(&self, k: &mut Kernel, key: &[u8]) -> Result<bool> {
        let h = fnv64(key);
        for probe in 0..self.capacity {
            let b = self.bucket_addr(h.wrapping_add(probe));
            match read_u64(k, self.pid, b)? {
                EMPTY => return Ok(false),
                TOMB => continue,
                _ => {
                    if self.bucket_key(k, b)? == key {
                        let kptr = read_u64(k, self.pid, b + 8)?;
                        let vptr = read_u64(k, self.pid, b + 24)?;
                        self.heap.free(k, kptr)?;
                        self.heap.free(k, vptr)?;
                        write_u64(k, self.pid, b, TOMB)?;
                        let count = read_u64(k, self.pid, self.base + 16)?;
                        write_u64(k, self.pid, self.base + 16, count - 1)?;
                        return Ok(true);
                    }
                }
            }
        }
        Ok(false)
    }

    /// Dumps every entry (snapshot serialization path).
    pub fn entries(&self, k: &mut Kernel) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        let mut out = Vec::new();
        for i in 0..self.capacity {
            let b = self.bucket_addr(i);
            if read_u64(k, self.pid, b)? == USED {
                let key = self.bucket_key(k, b)?;
                let vptr = read_u64(k, self.pid, b + 24)?;
                let vlen = read_u64(k, self.pid, b + 32)?;
                out.push((key, self.heap.load(k, vptr, vlen as usize)?));
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aurora_sim::SimClock;
    use proptest::prelude::*;
    use std::collections::HashMap;

    fn setup() -> (Kernel, SimMap) {
        let mut k = Kernel::boot(SimClock::new(), "t");
        let pid = k.spawn("mapuser");
        let heap = SimHeap::create(&mut k, pid, 4 << 20).unwrap();
        let map = SimMap::create(&mut k, heap, 256).unwrap();
        (k, map)
    }

    #[test]
    fn put_get_del() {
        let (mut k, map) = setup();
        map.put(&mut k, b"alpha", b"1").unwrap();
        map.put(&mut k, b"beta", b"2").unwrap();
        assert_eq!(map.get(&mut k, b"alpha").unwrap().unwrap(), b"1");
        assert_eq!(map.get(&mut k, b"beta").unwrap().unwrap(), b"2");
        assert_eq!(map.get(&mut k, b"gamma").unwrap(), None);
        assert_eq!(map.len(&mut k).unwrap(), 2);

        map.put(&mut k, b"alpha", b"replaced").unwrap();
        assert_eq!(map.get(&mut k, b"alpha").unwrap().unwrap(), b"replaced");
        assert_eq!(map.len(&mut k).unwrap(), 2);

        assert!(map.del(&mut k, b"alpha").unwrap());
        assert!(!map.del(&mut k, b"alpha").unwrap());
        assert_eq!(map.get(&mut k, b"alpha").unwrap(), None);
        assert_eq!(map.len(&mut k).unwrap(), 1);
    }

    #[test]
    fn tombstone_probing_keeps_collisions_reachable() {
        let (mut k, map) = setup();
        // Insert enough keys to force probe chains, delete every other,
        // then verify the rest.
        for i in 0..100u32 {
            map.put(&mut k, format!("key{i}").as_bytes(), &i.to_le_bytes())
                .unwrap();
        }
        for i in (0..100u32).step_by(2) {
            assert!(map.del(&mut k, format!("key{i}").as_bytes()).unwrap());
        }
        for i in (1..100u32).step_by(2) {
            let v = map.get(&mut k, format!("key{i}").as_bytes()).unwrap();
            assert_eq!(v.unwrap(), i.to_le_bytes());
        }
        // Tombstones are reused by new inserts.
        for i in 0..50u32 {
            map.put(&mut k, format!("new{i}").as_bytes(), b"x").unwrap();
        }
        assert_eq!(map.len(&mut k).unwrap(), 100);
    }

    #[test]
    fn entries_dump_matches() {
        let (mut k, map) = setup();
        map.put(&mut k, b"a", b"1").unwrap();
        map.put(&mut k, b"b", b"22").unwrap();
        let mut entries = map.entries(&mut k).unwrap();
        entries.sort();
        assert_eq!(
            entries,
            vec![(b"a".to_vec(), b"1".to_vec()), (b"b".to_vec(), b"22".to_vec())]
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// SimMap behaves exactly like std HashMap on random workloads.
        #[test]
        fn matches_std_hashmap(ops in proptest::collection::vec(
            (0u8..3, 0u16..40, proptest::collection::vec(any::<u8>(), 0..24)), 1..120)
        ) {
            let (mut k, map) = setup();
            let mut reference: HashMap<Vec<u8>, Vec<u8>> = HashMap::new();
            for (op, keyn, value) in ops {
                let key = format!("k{keyn}").into_bytes();
                match op {
                    0 => {
                        map.put(&mut k, &key, &value).unwrap();
                        reference.insert(key, value);
                    }
                    1 => {
                        let got = map.get(&mut k, &key).unwrap();
                        prop_assert_eq!(got.as_ref(), reference.get(&key));
                    }
                    _ => {
                        let got = map.del(&mut k, &key).unwrap();
                        prop_assert_eq!(got, reference.remove(&key).is_some());
                    }
                }
            }
            prop_assert_eq!(map.len(&mut k).unwrap() as usize, reference.len());
        }
    }
}
