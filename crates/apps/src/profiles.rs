//! Synthetic process profiles matching the paper's workloads.
//!
//! Tables 3 and 4 measure a Redis instance with a 2 GiB working set and
//! a hello-world serverless function. The *shape* of those numbers is
//! set by each process's composition — how many address-space entries,
//! kernel objects and resident pages it has — so these builders recreate
//! processes with realistic inventories:
//!
//! * [`redis_profile`] — one large data heap plus the dozens of mappings a
//!   dynamically linked server carries (text/data/bss per library,
//!   stacks, guard pages), a listening socket with a fleet of client
//!   connections, and a handful of open files.
//! * [`serverless_profile`] — a small function runtime: fewer, smaller
//!   mappings and a moderate descriptor table.

use aurora_core::Host;
use aurora_posix::Pid;
use aurora_sim::error::Result;

/// Composition of a synthetic process.
#[derive(Debug, Clone)]
pub struct Profile {
    /// Name of the process.
    pub name: &'static str,
    /// Main data region (bytes, seeded pages, fully resident).
    pub data_bytes: u64,
    /// Number of library-like auxiliary mappings.
    pub aux_mappings: u32,
    /// Pages per auxiliary mapping.
    pub aux_pages: u64,
    /// Resident (touched) pages per auxiliary mapping.
    pub aux_resident: u64,
    /// Client TCP connections to the server.
    pub connections: u32,
    /// Open SLSFS files.
    pub files: u32,
}

/// The paper's Redis-with-2-GiB-working-set profile.
pub fn redis_profile(data_bytes: u64) -> Profile {
    Profile {
        name: "redis-sim",
        data_bytes,
        aux_mappings: 59,
        aux_pages: 16,
        aux_resident: 3,
        connections: 16,
        files: 6,
    }
}

/// The hello-world serverless-function profile.
pub fn serverless_profile() -> Profile {
    Profile {
        name: "hello-fn",
        data_bytes: 1 << 20, // 1 MiB of function state
        aux_mappings: 17,
        aux_pages: 8,
        aux_resident: 2,
        connections: 2,
        files: 8,
    }
}

/// Builds a process matching `profile`; returns `(server pid, client pid)`.
///
/// The client process owns the far ends of the server's connections and
/// stays *outside* any persistence group (so replies to it exercise
/// external consistency).
pub fn build(host: &mut Host, profile: &Profile, port: u16) -> Result<(Pid, Pid)> {
    let pid = host.kernel.spawn(profile.name);

    // Main data region, fully resident with deterministic contents.
    let data = host.kernel.mmap_anon(pid, profile.data_bytes, false)?;
    host.kernel
        .mem_touch_seeded(pid, data, profile.data_bytes, 0xDA7A ^ profile.data_bytes)?;
    host.kernel.set_reg(pid, 0, data)?;

    // Library-like mappings with a few resident pages each.
    for i in 0..profile.aux_mappings {
        let len = profile.aux_pages * 4096;
        let addr = host.kernel.mmap_anon(pid, len, false)?;
        let touched = profile.aux_resident.min(profile.aux_pages) * 4096;
        if touched > 0 {
            host.kernel
                .mem_touch_seeded(pid, addr, touched, 0x11B0 + i as u64)?;
        }
    }

    // Open files on SLSFS.
    for i in 0..profile.files {
        let fd = host
            .kernel
            .open(pid, &format!("/sls/{}-{i}.dat", profile.name), true)?;
        host.kernel
            .write(pid, fd, format!("data file {i}").as_bytes())?;
    }

    // Listening socket + client connections from an external process.
    let client = host.kernel.spawn("external-client");
    let lfd = host.kernel.tcp_listen(pid, port)?;
    for _ in 0..profile.connections {
        let _cfd = host.kernel.tcp_connect(client, port)?;
        host.kernel.tcp_accept(pid, lfd)?;
    }
    Ok((pid, client))
}

/// Dirties `fraction` of the main data region (steady-state write load
/// between incremental checkpoints).
pub fn dirty_data(host: &mut Host, pid: Pid, profile: &Profile, fraction: f64) -> Result<u64> {
    let data = host.kernel.get_reg(pid, 0)?;
    let total_pages = profile.data_bytes / 4096;
    let dirty = ((total_pages as f64 * fraction) as u64).max(1);
    // Touch an evenly spaced subset, rewriting contents (new seeds).
    let stride = (total_pages / dirty).max(1);
    let mut touched = 0;
    let mut page = 0;
    while touched < dirty && page < total_pages {
        host.kernel
            .mem_touch_seeded(pid, data + page * 4096, 4096, 0xD1127 + page)?;
        touched += 1;
        page += stride;
    }
    Ok(touched)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aurora_hw::ModelDev;
    use aurora_objstore::StoreConfig;
    use aurora_sim::SimClock;

    fn host() -> Host {
        let clock = SimClock::new();
        let dev = Box::new(ModelDev::nvme(clock, "nvme0", 512 * 1024));
        Host::boot("h", dev, StoreConfig::default()).unwrap()
    }

    #[test]
    fn redis_profile_builds_with_expected_inventory() {
        let mut h = host();
        let profile = redis_profile(8 << 20); // 8 MiB for the test
        let (pid, _client) = build(&mut h, &profile, 6379).unwrap();
        let proc = h.kernel.proc_ref(pid).unwrap();
        assert_eq!(proc.map.len() as u32, 1 + profile.aux_mappings);
        assert_eq!(
            proc.fds.len() as u32,
            profile.files + 1 + profile.connections
        );
        // The data region is fully resident.
        let entry_pages: u64 = proc.map.total_pages();
        assert!(entry_pages >= (8 << 20) / 4096);
    }

    #[test]
    fn dirty_data_touches_requested_fraction() {
        let mut h = host();
        let profile = redis_profile(4 << 20);
        let (pid, _) = build(&mut h, &profile, 6379).unwrap();
        let gid = h.persist("p", pid).unwrap();
        h.checkpoint(gid, true, None).unwrap();
        let touched = dirty_data(&mut h, pid, &profile, 0.25).unwrap();
        let bd = h.checkpoint(gid, false, None).unwrap();
        assert_eq!(bd.pages, touched);
        let total_pages = (4 << 20) / 4096;
        assert!((touched as f64) < total_pages as f64 * 0.3);
    }
}
