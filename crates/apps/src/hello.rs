//! The hello-world application.
//!
//! The paper's second workload: "a smaller hello world application \[that\]
//! represents serverless functions". It computes a greeting into
//! simulated memory and keeps its progress in a register, so a restored
//! instance demonstrably resumes mid-run instead of restarting.

use aurora_core::Host;
use aurora_posix::Pid;
use aurora_sim::error::Result;

/// Register holding the loop counter.
const REG_COUNT: usize = 0;
/// Register holding the buffer address.
const REG_BUF: usize = 1;

/// A hello-world process.
#[derive(Debug, Clone, Copy)]
pub struct HelloApp {
    /// The process.
    pub pid: Pid,
    /// Greeting buffer address.
    pub buf: u64,
}

impl HelloApp {
    /// Spawns the app with one page of state.
    pub fn start(host: &mut Host) -> Result<HelloApp> {
        let pid = host.kernel.spawn("hello");
        let buf = host.kernel.mmap_anon(pid, 4096, false)?;
        host.kernel.mem_write(pid, buf, b"hello, world #0")?;
        host.kernel.set_reg(pid, REG_COUNT, 0)?;
        host.kernel.set_reg(pid, REG_BUF, buf)?;
        Ok(HelloApp { pid, buf })
    }

    /// Re-attaches after a restore, reading the buffer address from the
    /// restored register file.
    pub fn attach(host: &Host, pid: Pid) -> Result<HelloApp> {
        let buf = host.kernel.get_reg(pid, REG_BUF)?;
        Ok(HelloApp { pid, buf })
    }

    /// One iteration: increments the counter and rewrites the greeting.
    pub fn step(&self, host: &mut Host) -> Result<u64> {
        let n = host.kernel.get_reg(self.pid, REG_COUNT)? + 1;
        host.kernel.set_reg(self.pid, REG_COUNT, n)?;
        host.kernel
            .mem_write(self.pid, self.buf, format!("hello, world #{n}").as_bytes())?;
        Ok(n)
    }

    /// Reads the current greeting.
    pub fn greeting(&self, host: &mut Host) -> Result<String> {
        let mut buf = [0u8; 32];
        host.kernel.mem_read(self.pid, self.buf, &mut buf)?;
        let end = buf.iter().position(|&b| b == 0).unwrap_or(buf.len());
        Ok(String::from_utf8_lossy(&buf[..end]).into_owned())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aurora_core::restore::RestoreMode;
    use aurora_hw::ModelDev;
    use aurora_objstore::StoreConfig;
    use aurora_sim::SimClock;

    #[test]
    fn resumes_mid_run_after_restore() {
        let clock = SimClock::new();
        let dev = Box::new(ModelDev::nvme(clock, "nvme0", 64 * 1024));
        let mut host = Host::boot("h", dev, StoreConfig::default()).unwrap();
        let app = HelloApp::start(&mut host).unwrap();
        for _ in 0..7 {
            app.step(&mut host).unwrap();
        }
        let gid = host.persist("hello", app.pid).unwrap();
        let bd = host.checkpoint(gid, true, None).unwrap();
        for _ in 0..3 {
            app.step(&mut host).unwrap();
        }
        assert_eq!(app.greeting(&mut host).unwrap(), "hello, world #10");

        // The restored incarnation continues from 7, not from 0.
        let store = host.sls.primary.clone();
        let r = host
            .restore(&store, bd.ckpt.unwrap(), RestoreMode::Eager)
            .unwrap();
        let restored = HelloApp::attach(&host, r.root_pid().unwrap()).unwrap();
        assert_eq!(restored.greeting(&mut host).unwrap(), "hello, world #7");
        assert_eq!(restored.step(&mut host).unwrap(), 8);
    }
}
