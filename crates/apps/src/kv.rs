//! The Redis-like key-value server with pluggable persistence.
//!
//! Four strategies, matching §4's database discussion:
//!
//! * [`PersistMode::None`] — pure in-memory baseline.
//! * [`PersistMode::ForkSnapshot`] — Redis RDB style: every N mutations,
//!   `fork()` and let the (COW) child serialize the whole table to a
//!   file. The fork itself stalls the server proportionally to the
//!   resident set.
//! * [`PersistMode::WalFsync`] — Redis AOF style: append every mutation
//!   to a log file and fsync before acknowledging.
//! * [`PersistMode::AuroraPort`] — the paper's port: mutations go to an
//!   `sls_ntflush` persistent log; periodically the application takes an
//!   `sls_checkpoint` and truncates the log. Less code than either
//!   baseline and no fsync semantics to get wrong.
//! * [`PersistMode::AuroraTransparent`] — no persistence code at all:
//!   the SLS checkpoints the process periodically.
//!
//! The server's dataset lives in simulated memory ([`crate::SimMap`]);
//! the driver's handles are parked in simulated registers so a restored
//! incarnation re-derives everything from machine state
//! ([`KvServer::attach`]).

use aurora_core::{GroupId, Host};
use aurora_objstore::CkptId;
use aurora_posix::{Fd, Pid};
use aurora_sim::codec::{Decoder, Encoder};
use aurora_sim::error::{Error, Result};
use aurora_sim::time::SimDuration;

use crate::heap::SimHeap;
use crate::shmap::SimMap;

/// Register conventions for the KV server.
const REG_HEAP: usize = 0;
const REG_MAP: usize = 1;
const REG_OPS: usize = 2;
const REG_MAGIC: usize = 3;
const KV_MAGIC: u64 = 0x4B56_5352_5631;

/// A mutation or query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvOp {
    /// Insert/replace.
    Set(Vec<u8>, Vec<u8>),
    /// Lookup.
    Get(Vec<u8>),
    /// Delete.
    Del(Vec<u8>),
}

impl KvOp {
    /// Encodes the op (WAL / ntlog / wire format).
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        match self {
            KvOp::Set(k, v) => {
                e.u8(0);
                e.bytes(k);
                e.bytes(v);
            }
            KvOp::Get(k) => {
                e.u8(1);
                e.bytes(k);
            }
            KvOp::Del(k) => {
                e.u8(2);
                e.bytes(k);
            }
        }
        // Length-prefixed so logs can be replayed record by record.
        let body = e.into_vec();
        let mut framed = Encoder::new();
        framed.bytes(&body);
        framed.into_vec()
    }

    /// Decodes one framed op, returning it and the bytes consumed.
    pub fn decode(bytes: &[u8]) -> Result<(KvOp, usize)> {
        let mut d = Decoder::new(bytes);
        let body = d.bytes()?.to_vec();
        let consumed = d.position();
        let mut b = Decoder::new(&body);
        let op = match b.u8()? {
            0 => KvOp::Set(b.bytes()?.to_vec(), b.bytes()?.to_vec()),
            1 => KvOp::Get(b.bytes()?.to_vec()),
            2 => KvOp::Del(b.bytes()?.to_vec()),
            t => return Err(Error::corrupt(format!("bad kv op tag {t}"))),
        };
        Ok((op, consumed))
    }
}

/// Persistence strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PersistMode {
    /// No persistence.
    None,
    /// Fork + serialize every `every` mutations (Redis RDB).
    ForkSnapshot {
        /// Mutations between snapshots.
        every: u64,
    },
    /// Write-ahead log with fsync per mutation (Redis AOF).
    WalFsync,
    /// Aurora port: `sls_ntflush` log + application checkpoints.
    AuroraPort,
    /// Aurora transparent persistence (no application code).
    AuroraTransparent,
}

/// Paths used by the baselines.
pub const WAL_PATH: &str = "/sls/kv.aof";
/// Snapshot file path.
pub const RDB_PATH: &str = "/sls/kv.rdb";

/// The server driver.
#[derive(Debug)]
pub struct KvServer {
    /// Server process.
    pub pid: Pid,
    /// Persistence group (Aurora modes).
    pub gid: Option<GroupId>,
    /// Strategy in use.
    pub mode: PersistMode,
    heap: SimHeap,
    map: SimMap,
    wal_fd: Option<Fd>,
    /// Aurora persistent log descriptor.
    pub ntlog_fd: Option<Fd>,
    ops_since_snapshot: u64,
    last_fsync_ckpt: Option<CkptId>,
    /// Cumulative virtual time the server was stalled by snapshots.
    pub snapshot_stalls: SimDuration,
}

impl KvServer {
    /// Starts a server with `heap_bytes` of data heap and `buckets`
    /// hash buckets.
    pub fn start(
        host: &mut Host,
        mode: PersistMode,
        heap_bytes: u64,
        buckets: u64,
    ) -> Result<KvServer> {
        let pid = host.kernel.spawn("kv-server");
        let heap = SimHeap::create(&mut host.kernel, pid, heap_bytes)?;
        let map = SimMap::create(&mut host.kernel, heap, buckets)?;
        host.kernel.set_reg(pid, REG_HEAP, heap.base)?;
        host.kernel.set_reg(pid, REG_MAP, map.base)?;
        host.kernel.set_reg(pid, REG_OPS, 0)?;
        host.kernel.set_reg(pid, REG_MAGIC, KV_MAGIC)?;

        let mut server = KvServer {
            pid,
            gid: None,
            mode,
            heap,
            map,
            wal_fd: None,
            ntlog_fd: None,
            ops_since_snapshot: 0,
            last_fsync_ckpt: None,
            snapshot_stalls: SimDuration::ZERO,
        };
        match mode {
            PersistMode::WalFsync => {
                let fd = host.kernel.open(pid, WAL_PATH, true)?;
                host.kernel.set_append(pid, fd)?;
                server.wal_fd = Some(fd);
            }
            PersistMode::AuroraPort => {
                let gid = host.persist("kv-server", pid)?;
                let (fd, _) = host.ntlog_create(gid, pid)?;
                server.gid = Some(gid);
                server.ntlog_fd = Some(fd);
                host.checkpoint(gid, true, Some("kv-init"))?;
            }
            PersistMode::AuroraTransparent => {
                let gid = host.persist("kv-server", pid)?;
                server.gid = Some(gid);
                host.checkpoint(gid, true, Some("kv-init"))?;
            }
            PersistMode::None | PersistMode::ForkSnapshot { .. } => {}
        }
        Ok(server)
    }

    /// Re-attaches a driver to a (restored) server process, deriving the
    /// heap/map handles from its registers.
    pub fn attach(host: &mut Host, pid: Pid, mode: PersistMode) -> Result<KvServer> {
        if host.kernel.get_reg(pid, REG_MAGIC)? != KV_MAGIC {
            return Err(Error::corrupt("process is not a kv server"));
        }
        let heap_base = host.kernel.get_reg(pid, REG_HEAP)?;
        let map_base = host.kernel.get_reg(pid, REG_MAP)?;
        let heap = SimHeap::attach(&mut host.kernel, pid, heap_base)?;
        let map = SimMap::attach(&mut host.kernel, heap, map_base)?;
        Ok(KvServer {
            pid,
            gid: host.kernel.proc_ref(pid)?.persist_group.map(GroupId),
            mode,
            heap,
            map,
            wal_fd: None,
            ntlog_fd: None,
            ops_since_snapshot: 0,
            last_fsync_ckpt: None,
            snapshot_stalls: SimDuration::ZERO,
        })
    }

    /// Base address of the server's data heap. External verifiers (the
    /// delta-log bench) digest the whole arena through this.
    pub fn heap_base(&self) -> u64 {
        self.heap.base
    }

    /// Number of keys stored.
    pub fn len(&self, host: &mut Host) -> Result<u64> {
        self.map.len(&mut host.kernel)
    }

    /// True when the store is empty.
    pub fn is_empty(&self, host: &mut Host) -> Result<bool> {
        Ok(self.len(host)? == 0)
    }

    /// Total operations executed (lives in a simulated register, so it
    /// round-trips through checkpoints).
    pub fn ops_executed(&self, host: &Host) -> u64 {
        host.kernel.get_reg(self.pid, REG_OPS).unwrap_or(0)
    }

    /// Executes one operation with the configured persistence.
    pub fn exec(&mut self, host: &mut Host, op: &KvOp) -> Result<Option<Vec<u8>>> {
        let result = self.apply(host, op)?;
        let ops = host.kernel.get_reg(self.pid, REG_OPS)? + 1;
        host.kernel.set_reg(self.pid, REG_OPS, ops)?;
        if matches!(op, KvOp::Get(_)) {
            return Ok(result);
        }
        match self.mode {
            PersistMode::None | PersistMode::AuroraTransparent => {}
            PersistMode::WalFsync => {
                let fd = self.wal_fd.ok_or_else(|| Error::internal("no wal fd"))?;
                host.kernel.write(self.pid, fd, &op.encode())?;
                self.fsync(host)?;
            }
            PersistMode::AuroraPort => {
                let gid = self.gid.ok_or_else(|| Error::internal("no group"))?;
                let fd = self.ntlog_fd.ok_or_else(|| Error::internal("no ntlog"))?;
                host.sls_ntflush(gid, self.pid, fd, &op.encode())?;
            }
            PersistMode::ForkSnapshot { every } => {
                self.ops_since_snapshot += 1;
                if self.ops_since_snapshot >= every {
                    self.ops_since_snapshot = 0;
                    self.snapshot(host)?;
                }
            }
        }
        Ok(result)
    }

    /// Applies an op to the in-memory table only.
    fn apply(&mut self, host: &mut Host, op: &KvOp) -> Result<Option<Vec<u8>>> {
        match op {
            KvOp::Set(k, v) => {
                self.map.put(&mut host.kernel, k, v)?;
                Ok(None)
            }
            KvOp::Get(k) => self.map.get(&mut host.kernel, k),
            KvOp::Del(k) => {
                self.map.del(&mut host.kernel, k)?;
                Ok(None)
            }
        }
    }

    /// An fsync against SLSFS: file-system metadata plus data commit,
    /// synchronously durable (the cost WAL mode pays per mutation).
    fn fsync(&mut self, host: &mut Host) -> Result<()> {
        let mount = host.sls.slsfs_mount;
        host.kernel.vfs.fs(mount).sync()?;
        // Filesystem fsync ordering: data barrier first, then the
        // metadata/journal commit. (This ordering discipline is exactly
        // where the paper's cited fsync bugs live.)
        host.sls.primary.borrow_mut().barrier_flush()?;
        let (ckpt, durable) = host.sls.primary.borrow_mut().commit(None)?;
        host.clock.advance_to(durable);
        // GC the previous fsync commit so the store's table stays small.
        if let Some(prev) = self.last_fsync_ckpt.replace(ckpt) {
            if Some(prev) != host.sls.primary.borrow().head() {
                let _ = host.sls.primary.borrow_mut().delete_checkpoint(prev);
            }
        }
        Ok(())
    }

    /// Fork-snapshot (Redis BGSAVE): the parent stalls for the fork;
    /// the COW child serializes and exits.
    ///
    /// The simulator is single-core, so the child's work also consumes
    /// timeline — but only the fork window is attributed to
    /// [`KvServer::snapshot_stalls`], matching what a Redis client
    /// observes.
    pub fn snapshot(&mut self, host: &mut Host) -> Result<()> {
        let t0 = host.clock.now();
        let child = host.kernel.fork(self.pid)?;
        self.snapshot_stalls += host.clock.now().since(t0);

        // Child: serialize every entry to the RDB file, fsync, exit.
        let entries = {
            let child_heap = SimHeap::attach(&mut host.kernel, child, self.heap.base)?;
            let child_map = SimMap::attach(&mut host.kernel, child_heap, self.map.base)?;
            child_map.entries(&mut host.kernel)?
        };
        let mut e = Encoder::new();
        e.varint(entries.len() as u64);
        for (k, v) in &entries {
            e.bytes(k);
            e.bytes(v);
        }
        let bytes = e.into_vec();
        // Replace the snapshot atomically: write to a temp name, rename.
        let tmp = "/sls/kv.rdb.tmp";
        let _ = host.kernel.unlink_path(child, tmp);
        let fd = host.kernel.open(child, tmp, true)?;
        host.kernel.write(child, fd, &bytes)?;
        host.kernel.close(child, fd)?;
        {
            let mount = host.sls.slsfs_mount;
            let (parent, name) = host.kernel.vfs.resolve_parent(RDB_PATH)?;
            let (_, tmp_name) = host.kernel.vfs.resolve_parent(tmp)?;
            let _ = mount;
            host.kernel
                .vfs
                .fs(parent.mount)
                .rename(parent.node, &tmp_name, parent.node, &name)?;
        }
        self.fsync(host)?;
        host.kernel.exit(child, 0)?;
        host.kernel.procs.remove(&child);
        Ok(())
    }

    /// Recovers a WAL-mode server after a crash: replays the log.
    pub fn recover_wal(host: &mut Host, heap_bytes: u64, buckets: u64) -> Result<KvServer> {
        let mut server = KvServer::start(host, PersistMode::None, heap_bytes, buckets)?;
        let pid = server.pid;
        let fd = host.kernel.open(pid, WAL_PATH, false)?;
        let size = host.kernel.fstat(pid, fd)?.size as usize;
        let mut log = Vec::with_capacity(size);
        while log.len() < size {
            let chunk = host.kernel.read(pid, fd, 64 * 1024)?;
            if chunk.is_empty() {
                break;
            }
            log.extend_from_slice(&chunk);
        }
        let mut off = 0;
        let mut replayed = 0u64;
        while off < log.len() {
            let (op, used) = KvOp::decode(&log[off..])?;
            server.apply(host, &op)?;
            off += used;
            replayed += 1;
        }
        host.kernel.set_reg(pid, REG_OPS, replayed)?;
        host.kernel.set_append(pid, fd)?;
        server.wal_fd = Some(fd);
        server.mode = PersistMode::WalFsync;
        Ok(server)
    }

    /// Recovers a fork-snapshot server after a crash: loads the RDB.
    pub fn recover_rdb(
        host: &mut Host,
        heap_bytes: u64,
        buckets: u64,
        every: u64,
    ) -> Result<KvServer> {
        let mut server = KvServer::start(host, PersistMode::None, heap_bytes, buckets)?;
        let pid = server.pid;
        let fd = host.kernel.open(pid, RDB_PATH, false)?;
        let size = host.kernel.fstat(pid, fd)?.size as usize;
        let mut bytes = Vec::with_capacity(size);
        while bytes.len() < size {
            let chunk = host.kernel.read(pid, fd, 64 * 1024)?;
            if chunk.is_empty() {
                break;
            }
            bytes.extend_from_slice(&chunk);
        }
        host.kernel.close(pid, fd)?;
        let mut d = Decoder::new(&bytes);
        let n = d.varint()? as usize;
        for _ in 0..n {
            let k = d.bytes()?.to_vec();
            let v = d.bytes()?.to_vec();
            server.apply(host, &KvOp::Set(k, v))?;
        }
        server.mode = PersistMode::ForkSnapshot { every };
        Ok(server)
    }

    /// Aurora-port recovery after restore: replays the persistent log
    /// tail over the restored image (idempotent SET/DEL replay).
    pub fn recover_aurora_port(host: &mut Host, pid: Pid, gid: GroupId) -> Result<KvServer> {
        let mut server = KvServer::attach(host, pid, PersistMode::AuroraPort)?;
        server.gid = Some(gid);
        // The restored descriptor table still holds the ntlog fd; find it.
        let fds: Vec<(Fd, aurora_posix::FileId)> =
            host.kernel.proc_ref(pid)?.fds.iter().collect();
        let ntlog_fd = fds
            .into_iter()
            .find(|(_, fid)| {
                matches!(
                    host.kernel.files.get(fid.0).map(|f| &f.kind),
                    Some(aurora_posix::FileKind::NtLog(_))
                )
            })
            .map(|(fd, _)| fd)
            .ok_or_else(|| Error::bad_image("restored kv server has no ntlog fd"))?;
        server.ntlog_fd = Some(ntlog_fd);
        let log = host.ntlog_read(gid, pid, ntlog_fd)?;
        let mut off = 0;
        while off < log.len() {
            let (op, used) = KvOp::decode(&log[off..])?;
            server.apply(host, &op)?;
            off += used;
        }
        Ok(server)
    }

    /// Binds the server to a TCP port (the deployment shape the paper
    /// measures: clients talk to Redis over sockets).
    pub fn listen(&mut self, host: &mut Host, port: u16) -> Result<Fd> {
        host.kernel.tcp_listen(self.pid, port)
    }

    /// Accepts one pending client connection.
    pub fn accept(&mut self, host: &mut Host, listen_fd: Fd) -> Result<Fd> {
        host.kernel.tcp_accept(self.pid, listen_fd)
    }

    /// Serves every complete framed request buffered on `conn`; replies
    /// with a framed response per op. Replies to clients outside the
    /// persistence group are held by external consistency until the
    /// covering checkpoint is durable — the server never needs to know.
    pub fn serve_conn(&mut self, host: &mut Host, conn: Fd) -> Result<u64> {
        let mut served = 0;
        loop {
            if !host.kernel.can_read(self.pid, conn)? {
                break;
            }
            let chunk = match host.kernel.read(self.pid, conn, 64 * 1024) {
                Ok(c) if c.is_empty() => break, // Peer closed.
                Ok(c) => c,
                Err(_) => break,
            };
            let mut off = 0;
            while off < chunk.len() {
                let (op, used) = KvOp::decode(&chunk[off..])?;
                off += used;
                let result = self.exec(host, &op)?;
                let reply = match result {
                    Some(v) => {
                        let mut e = Encoder::new();
                        e.u8(1);
                        e.bytes(&v);
                        e.into_vec()
                    }
                    None => vec![0u8],
                };
                let mut framed = Encoder::new();
                framed.bytes(&reply);
                host.kernel.write(self.pid, conn, &framed.into_vec())?;
                served += 1;
            }
        }
        Ok(served)
    }

    /// Application-level checkpoint for the Aurora port: `sls_checkpoint`
    /// then truncate the log (replay of any straggler ops is idempotent).
    pub fn aurora_checkpoint(&mut self, host: &mut Host) -> Result<()> {
        let gid = self.gid.ok_or_else(|| Error::internal("no group"))?;
        let fd = self.ntlog_fd.ok_or_else(|| Error::internal("no ntlog"))?;
        host.sls_checkpoint(gid, None)?;
        host.ntlog_truncate(gid, self.pid, fd)?;
        Ok(())
    }
}

/// A KV client on the other side of a TCP connection.
#[derive(Debug)]
pub struct KvClient {
    /// Client process.
    pub pid: Pid,
    /// Connected socket descriptor.
    pub fd: Fd,
    /// Reassembly buffer (stream reads can carry several frames).
    buf: Vec<u8>,
}

impl KvClient {
    /// Connects a fresh client process to the server's port.
    pub fn connect(host: &mut Host, port: u16) -> Result<KvClient> {
        let pid = host.kernel.spawn("kv-client");
        let fd = host.kernel.tcp_connect(pid, port)?;
        Ok(KvClient {
            pid,
            fd,
            buf: Vec::new(),
        })
    }

    /// Sends one framed request.
    pub fn send(&self, host: &mut Host, op: &KvOp) -> Result<()> {
        host.kernel.write(self.pid, self.fd, &op.encode())?;
        Ok(())
    }

    /// Receives one framed reply: `Ok(Some(value))` for a hit, `Ok(None)`
    /// for an ack/miss, `WouldBlock` if nothing arrived (held by external
    /// consistency or not yet served).
    pub fn recv(&mut self, host: &mut Host) -> Result<Option<Vec<u8>>> {
        if self.buf.is_empty() {
            let chunk = host.kernel.read(self.pid, self.fd, 64 * 1024)?;
            if chunk.is_empty() {
                return Err(Error::broken_pipe("server closed"));
            }
            self.buf.extend_from_slice(&chunk);
        }
        let (reply, used) = {
            let mut d = Decoder::new(&self.buf);
            let reply = d.bytes()?.to_vec();
            (reply, d.position())
        };
        self.buf.drain(..used);
        let mut r = Decoder::new(&reply);
        Ok(match r.u8()? {
            1 => Some(r.bytes()?.to_vec()),
            _ => None,
        })
    }
}

#[cfg(test)]
mod codec_tests {
    use super::*;

    #[test]
    fn kv_op_roundtrip() {
        for op in [
            KvOp::Set(b"key".to_vec(), b"value".to_vec()),
            KvOp::Set(Vec::new(), Vec::new()),
            KvOp::Get(b"key".to_vec()),
            KvOp::Del(vec![0u8; 300]),
        ] {
            let bytes = op.encode();
            let (out, consumed) = KvOp::decode(&bytes).unwrap();
            assert_eq!(out, op);
            assert_eq!(consumed, bytes.len());
        }
    }

    #[test]
    fn kv_ops_replay_record_by_record() {
        // The framing contract the WAL and ntlog replay paths rely on:
        // concatenated records decode back in order via `consumed`.
        let ops = [
            KvOp::Set(b"a".to_vec(), b"1".to_vec()),
            KvOp::Del(b"a".to_vec()),
            KvOp::Get(b"a".to_vec()),
        ];
        let mut log = Vec::new();
        for op in &ops {
            log.extend_from_slice(&op.encode());
        }
        let mut at = 0;
        let mut replayed = Vec::new();
        while at < log.len() {
            let (op, n) = KvOp::decode(&log[at..]).unwrap();
            replayed.push(op);
            at += n;
        }
        assert_eq!(replayed, ops);
    }

    #[test]
    fn kv_op_bad_input_rejected() {
        // Unknown tag.
        let mut e = aurora_sim::codec::Encoder::new();
        e.bytes(&[9u8]);
        assert!(KvOp::decode(&e.into_vec()).is_err());
        // Truncated frame.
        let bytes = KvOp::Set(b"k".to_vec(), b"v".to_vec()).encode();
        assert!(KvOp::decode(&bytes[..bytes.len() - 1]).is_err());
    }
}

#[cfg(test)]
mod socket_tests {
    use super::*;
    use aurora_hw::ModelDev;
    use aurora_objstore::StoreConfig;
    use aurora_sim::SimClock;

    fn boot() -> Host {
        let clock = SimClock::new();
        let dev = Box::new(ModelDev::nvme(clock, "nvme0", 128 * 1024));
        Host::boot("kv-sock", dev, StoreConfig::default()).unwrap()
    }

    #[test]
    fn socket_service_roundtrip() {
        let mut host = boot();
        let mut server = KvServer::start(&mut host, PersistMode::None, 8 << 20, 256).unwrap();
        let lfd = server.listen(&mut host, 6379).unwrap();
        let mut client = KvClient::connect(&mut host, 6379).unwrap();
        let conn = server.accept(&mut host, lfd).unwrap();

        client
            .send(&mut host, &KvOp::Set(b"k".to_vec(), b"v".to_vec()))
            .unwrap();
        client.send(&mut host, &KvOp::Get(b"k".to_vec())).unwrap();
        assert_eq!(server.serve_conn(&mut host, conn).unwrap(), 2);
        assert_eq!(client.recv(&mut host).unwrap(), None); // SET ack
        assert_eq!(client.recv(&mut host).unwrap().unwrap(), b"v");
    }

    #[test]
    fn replies_to_outside_clients_wait_for_durability() {
        // The externally visible contract of §3.2: a persisted server's
        // reply is invisible until the checkpoint covering it is durable.
        let mut host = boot();
        let mut server =
            KvServer::start(&mut host, PersistMode::AuroraTransparent, 8 << 20, 256).unwrap();
        let gid = server.gid.unwrap();
        let lfd = server.listen(&mut host, 6379).unwrap();
        let mut client = KvClient::connect(&mut host, 6379).unwrap();
        let conn = server.accept(&mut host, lfd).unwrap();

        client
            .send(&mut host, &KvOp::Set(b"key".to_vec(), b"value".to_vec()))
            .unwrap();
        server.serve_conn(&mut host, conn).unwrap();
        // Reply exists but is held: the client cannot read it yet.
        assert!(client.recv(&mut host).is_err(), "held until durable");

        // A durable checkpoint releases it; now the client may also rely
        // on the server never "forgetting" the acknowledged write.
        let bd = host.checkpoint(gid, false, None).unwrap();
        host.clock.advance_to(bd.durable_at);
        host.poll_durability();
        assert_eq!(client.recv(&mut host).unwrap(), None);

        // And indeed: crash + restore still has the key.
        let mut host = host.crash_and_reboot().unwrap();
        let store = host.sls.primary.clone();
        let head = store.borrow().head().unwrap();
        let r = host
            .restore(&store, head, aurora_core::restore::RestoreMode::Eager)
            .unwrap();
        let mut server =
            KvServer::attach(&mut host, r.root_pid().unwrap(), PersistMode::AuroraTransparent)
                .unwrap();
        assert_eq!(
            server
                .exec(&mut host, &KvOp::Get(b"key".to_vec()))
                .unwrap()
                .unwrap(),
            b"value"
        );
    }
}
