//! In-tree stand-in for the `bytes` crate.
//!
//! The workspace builds in environments with no access to a crates.io
//! mirror, so the few `bytes` APIs the codec uses are reimplemented here
//! over plain `Vec<u8>`. Semantics match the real crate for this subset;
//! the zero-copy refcounting of the original is intentionally not
//! reproduced (the simulator copies these buffers anyway).

use core::ops::Deref;

/// An immutable byte buffer (here: an owned `Vec<u8>`).
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    inner: Vec<u8>,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes { inner: Vec::new() }
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            inner: data.to_vec(),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Copies the contents into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.inner.clone()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { inner: v }
    }
}

impl From<Bytes> for Vec<u8> {
    fn from(b: Bytes) -> Self {
        b.inner
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.inner == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.inner == *other
    }
}

/// A growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut { inner: Vec::new() }
    }

    /// Creates an empty buffer with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            inner: Vec::with_capacity(cap),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Freezes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { inner: self.inner }
    }

    /// Copies the contents into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.inner.clone()
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

/// Read-cursor operations over a byte source (implemented for `&[u8]`,
/// which advances the slice as it reads — matching the real crate).
pub trait Buf {
    /// Bytes remaining.
    fn remaining(&self) -> usize;
    /// Reads `N` bytes and advances.
    fn take_array<const N: usize>(&mut self) -> [u8; N];

    /// Reads a `u8`.
    fn get_u8(&mut self) -> u8 {
        self.take_array::<1>()[0]
    }
    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        u16::from_le_bytes(self.take_array())
    }
    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take_array())
    }
    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take_array())
    }
    /// Reads a little-endian `i64`.
    fn get_i64_le(&mut self) -> i64 {
        i64::from_le_bytes(self.take_array())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn take_array<const N: usize>(&mut self) -> [u8; N] {
        assert!(self.len() >= N, "buffer underflow: {} < {N}", self.len());
        let mut out = [0u8; N];
        out.copy_from_slice(&self[..N]);
        *self = &self[N..];
        out
    }
}

/// Write operations over a growable byte sink.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends a `u8`.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian `i64`.
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let mut b = BytesMut::new();
        b.put_u8(0xAB);
        b.put_u16_le(0x1234);
        b.put_u32_le(0xDEADBEEF);
        b.put_u64_le(u64::MAX - 5);
        b.put_i64_le(-42);
        b.put_slice(b"tail");
        let frozen = b.freeze();
        let mut s: &[u8] = &frozen;
        assert_eq!(s.get_u8(), 0xAB);
        assert_eq!(s.get_u16_le(), 0x1234);
        assert_eq!(s.get_u32_le(), 0xDEADBEEF);
        assert_eq!(s.get_u64_le(), u64::MAX - 5);
        assert_eq!(s.get_i64_le(), -42);
        assert_eq!(s, b"tail");
    }

    #[test]
    fn freeze_and_to_vec() {
        let mut b = BytesMut::with_capacity(8);
        b.put_slice(&[1, 2, 3]);
        assert_eq!(b.len(), 3);
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
        let f = b.freeze();
        assert_eq!(&f[..], &[1, 2, 3]);
        assert_eq!(f.to_vec(), vec![1, 2, 3]);
    }
}
