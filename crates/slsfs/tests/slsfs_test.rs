//! SLSFS integration tests: persistence across crashes, open-unlinked
//! survival, zero-copy clones, and behavioural equivalence with tmpfs.

// Test code asserts invariants; the workspace unwrap/expect denial is
// for production flush paths.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use aurora_hw::ModelDev;
use aurora_objstore::{ObjectStore, StoreConfig};
use aurora_posix::tmpfs::Tmpfs;
use aurora_posix::vfs::{Filesystem, VnodeType};
use aurora_sim::SimClock;
use aurora_slsfs::{SlsFs, StoreHandle};
use proptest::prelude::*;

const NS: u64 = 1 << 48;

fn new_store() -> StoreHandle {
    let clock = SimClock::new();
    let dev = Box::new(ModelDev::nvme(clock, "nvme0", 32 * 1024));
    Rc::new(RefCell::new(
        ObjectStore::format(
            dev,
            StoreConfig {
                journal_blocks: 512,
                ..StoreConfig::default()
            },
        )
        .unwrap(),
    ))
}

fn commit(store: &StoreHandle) {
    store.borrow_mut().commit(None).unwrap();
}

fn recover(store: StoreHandle) -> StoreHandle {
    let inner = Rc::try_unwrap(store)
        .unwrap_or_else(|_| panic!("store still shared"))
        .into_inner();
    Rc::new(RefCell::new(inner.recover().unwrap()))
}

#[test]
fn basic_file_operations() {
    let store = new_store();
    let mut fs = SlsFs::format(store.clone(), NS);
    let root = fs.root();
    let f = fs.create(root, "hello.txt").unwrap();
    fs.write(f, 0, b"hello slsfs").unwrap();
    assert_eq!(fs.read(f, 0, 64).unwrap(), b"hello slsfs");
    assert_eq!(fs.read(f, 6, 5).unwrap(), b"slsfs");
    assert_eq!(fs.getattr(f).unwrap().size, 11);
    assert_eq!(fs.getattr(f).unwrap().kind, VnodeType::Regular);

    // Cross-page write.
    let big: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
    fs.write(f, 100, &big).unwrap();
    assert_eq!(fs.read(f, 100, 10_000).unwrap(), big);
}

#[test]
fn metadata_and_data_survive_crash() {
    let store = new_store();
    let mut fs = SlsFs::format(store.clone(), NS);
    let root = fs.root();
    let d = fs.mkdir(root, "db").unwrap();
    let f = fs.create(d, "records").unwrap();
    fs.write(f, 0, b"committed data").unwrap();
    fs.flush_meta();
    commit(&store);

    // More writes, NOT committed.
    fs.write(f, 0, b"uncommitted!!!").unwrap();
    fs.flush_meta();

    drop(fs);
    let store = recover(store);
    let mut fs = SlsFs::load(store.clone(), NS).unwrap();
    let root = fs.root();
    let d = fs.lookup(root, "db").unwrap();
    let f = fs.lookup(d, "records").unwrap();
    assert_eq!(fs.read(f, 0, 64).unwrap(), b"committed data");
}

#[test]
fn unlinked_but_open_file_survives_crash() {
    // The paper's SLSFS edge case: "In POSIX file systems, these files
    // would be reclaimed after a crash, preventing application
    // restoration."
    let store = new_store();
    let mut fs = SlsFs::format(store.clone(), NS);
    let root = fs.root();
    let f = fs.create(root, "scratch").unwrap();
    fs.write(f, 0, b"anonymous but precious").unwrap();
    fs.open_ref(f, 1).unwrap(); // a persistent vnode holds it open
    fs.unlink(root, "scratch").unwrap();
    fs.flush_meta();
    commit(&store);

    drop(fs);
    let store = recover(store);
    let mut fs = SlsFs::load(store.clone(), NS).unwrap();
    // The name is gone but the inode (and data) survived the crash
    // thanks to the on-disk open reference count.
    assert!(fs.lookup(fs.root(), "scratch").is_err());
    assert_eq!(fs.read(f, 0, 64).unwrap(), b"anonymous but precious");

    // A restored process still references it: reap keeps it.
    let mut live = BTreeMap::new();
    live.insert(f, 1u32);
    fs.reap_orphans(&live);
    assert_eq!(fs.read(f, 0, 64).unwrap(), b"anonymous but precious");

    // Nothing references it anymore: reap reclaims.
    fs.reap_orphans(&BTreeMap::new());
    assert!(fs.read(f, 0, 64).is_err());
}

#[test]
fn zero_copy_clone_shares_blocks() {
    let store = new_store();
    let mut fs = SlsFs::format(store.clone(), NS);
    let root = fs.root();
    let f = fs.create(root, "image").unwrap();
    let payload = vec![7u8; 64 * 1024]; // 16 pages
    fs.write(f, 0, &payload).unwrap();
    let before = store.borrow().blocks_in_use();

    let c = fs.clone_path(root, "image", root, "image-clone").unwrap();
    assert_eq!(
        store.borrow().blocks_in_use(),
        before,
        "clone allocates zero data blocks"
    );
    assert_eq!(fs.read(c, 0, 70_000).unwrap(), payload);

    // Writing to the clone diverges without touching the original.
    fs.write(c, 0, b"diverged").unwrap();
    assert_eq!(&fs.read(f, 0, 8).unwrap(), &vec![7u8; 8]);
    assert_eq!(fs.read(c, 0, 8).unwrap(), b"diverged");
    assert!(store.borrow().blocks_in_use() > before);
}

#[test]
fn subtree_clone() {
    let store = new_store();
    let mut fs = SlsFs::format(store.clone(), NS);
    let root = fs.root();
    let d = fs.mkdir(root, "container").unwrap();
    let sub = fs.mkdir(d, "etc").unwrap();
    let f1 = fs.create(d, "app").unwrap();
    fs.write(f1, 0, b"binary").unwrap();
    let f2 = fs.create(sub, "conf").unwrap();
    fs.write(f2, 0, b"config").unwrap();

    let cloned = fs.clone_path(root, "container", root, "container-2").unwrap();
    let capp = fs.lookup(cloned, "app").unwrap();
    let cetc = fs.lookup(cloned, "etc").unwrap();
    let cconf = fs.lookup(cetc, "conf").unwrap();
    assert_eq!(fs.read(capp, 0, 16).unwrap(), b"binary");
    assert_eq!(fs.read(cconf, 0, 16).unwrap(), b"config");
    // Divergence is isolated.
    fs.write(capp, 0, b"patched").unwrap();
    assert_eq!(fs.read(f1, 0, 16).unwrap(), b"binary");
}

#[test]
fn time_travel_loads_old_filesystem() {
    let store = new_store();
    let mut fs = SlsFs::format(store.clone(), NS);
    let root = fs.root();
    let f = fs.create(root, "versioned").unwrap();
    fs.write(f, 0, b"v1").unwrap();
    fs.flush_meta();
    let (c1, _) = store.borrow_mut().commit(Some("v1")).unwrap();
    fs.write(f, 0, b"v2").unwrap();
    fs.flush_meta();
    store.borrow_mut().commit(Some("v2")).unwrap();

    // Current view sees v2; the v1 checkpoint view sees v1.
    assert_eq!(fs.read(f, 0, 2).unwrap(), b"v2");
    let mut old = SlsFs::load_at(store.clone(), NS, c1).unwrap();
    let of = old.lookup(old.root(), "versioned").unwrap();
    // NOTE: load_at reads through checkpoint-resolved pages only for
    // metadata; file reads go through the live map, so read the page via
    // the store directly.
    let oid_page = store
        .borrow_mut()
        .read_page_at(c1, aurora_objstore::ObjId(NS | of), 0)
        .unwrap()
        .unwrap();
    let mut buf = [0u8; 2];
    oid_page.read(0, &mut buf);
    assert_eq!(&buf, b"v1");
}

// --- Equivalence with tmpfs ----------------------------------------------

#[derive(Debug, Clone)]
enum FsOp {
    Create(u8),
    Mkdir(u8),
    Write { name: u8, off: u16, len: u16, fill: u8 },
    Read { name: u8, off: u16, len: u16 },
    Unlink(u8),
    Rename { from: u8, to: u8 },
    Link { from: u8, to: u8 },
    Getattr(u8),
}

fn fsop() -> impl Strategy<Value = FsOp> {
    prop_oneof![
        (0u8..6).prop_map(FsOp::Create),
        (0u8..6).prop_map(FsOp::Mkdir),
        (0u8..6, 0u16..9000, 0u16..5000, any::<u8>())
            .prop_map(|(name, off, len, fill)| FsOp::Write { name, off, len, fill }),
        (0u8..6, 0u16..12000, 0u16..6000).prop_map(|(name, off, len)| FsOp::Read { name, off, len }),
        (0u8..6).prop_map(FsOp::Unlink),
        (0u8..6, 0u8..6).prop_map(|(from, to)| FsOp::Rename { from, to }),
        (0u8..6, 0u8..6).prop_map(|(from, to)| FsOp::Link { from, to }),
        (0u8..6).prop_map(FsOp::Getattr),
    ]
}

fn apply<F: Filesystem>(fs: &mut F, op: &FsOp) -> String {
    let root = fs.root();
    let name = |n: u8| format!("f{n}");
    match op {
        FsOp::Create(n) => format!("{:?}", fs.create(root, &name(*n)).map(|_| ()).map_err(|e| e.kind())),
        FsOp::Mkdir(n) => format!("{:?}", fs.mkdir(root, &name(*n)).map(|_| ()).map_err(|e| e.kind())),
        FsOp::Write { name: n, off, len, fill } => {
            let data = vec![*fill; *len as usize];
            match fs.lookup(root, &name(*n)) {
                Ok(ino) => format!("{:?}", fs.write(ino, *off as u64, &data).map_err(|e| e.kind())),
                Err(e) => format!("lookup-{:?}", e.kind()),
            }
        }
        FsOp::Read { name: n, off, len } => match fs.lookup(root, &name(*n)) {
            Ok(ino) => format!("{:?}", fs.read(ino, *off as u64, *len as usize).map_err(|e| e.kind())),
            Err(e) => format!("lookup-{:?}", e.kind()),
        },
        FsOp::Unlink(n) => format!("{:?}", fs.unlink(root, &name(*n)).map_err(|e| e.kind())),
        FsOp::Rename { from, to } => {
            format!("{:?}", fs.rename(root, &name(*from), root, &name(*to)).map_err(|e| e.kind()))
        }
        FsOp::Link { from, to } => match fs.lookup(root, &name(*from)) {
            Ok(node) => format!("{:?}", fs.link(root, &name(*to), node).map_err(|e| e.kind())),
            Err(e) => format!("lookup-{:?}", e.kind()),
        },
        FsOp::Getattr(n) => match fs.lookup(root, &name(*n)) {
            Ok(ino) => match fs.getattr(ino) {
                Ok(a) => format!("{:?}-{}-{}", a.kind, a.size, a.nlink),
                Err(e) => format!("{:?}", e.kind()),
            },
            Err(e) => format!("lookup-{:?}", e.kind()),
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// SLSFS observable behaviour matches tmpfs on random op sequences.
    #[test]
    fn slsfs_equivalent_to_tmpfs(ops in proptest::collection::vec(fsop(), 1..40)) {
        let store = new_store();
        let mut sls = SlsFs::format(store, NS);
        let mut tmp = Tmpfs::new();
        for op in &ops {
            let a = apply(&mut sls, op);
            let b = apply(&mut tmp, op);
            prop_assert_eq!(&a, &b, "divergence on {:?}", op);
        }
    }

    /// Random committed state always survives crash + reload.
    #[test]
    fn slsfs_random_state_survives_crash(ops in proptest::collection::vec(fsop(), 1..25)) {
        let store = new_store();
        let mut sls = SlsFs::format(store.clone(), NS);
        for op in &ops {
            let _ = apply(&mut sls, op);
        }
        // Snapshot the observable state: every file's full contents.
        let root = sls.root();
        let mut expect = Vec::new();
        for (name, ino) in sls.readdir(root).unwrap() {
            if sls.getattr(ino).unwrap().kind == VnodeType::Regular {
                expect.push((name, sls.read(ino, 0, 1 << 16).unwrap()));
            }
        }
        sls.flush_meta();
        commit(&store);
        drop(sls);
        let store = recover(store);
        let mut sls = SlsFs::load(store, NS).unwrap();
        let root = sls.root();
        for (name, data) in expect {
            let ino = sls.lookup(root, &name).unwrap();
            prop_assert_eq!(sls.read(ino, 0, 1 << 16).unwrap(), data, "file {}", name);
        }
    }
}

#[test]
fn hard_links_persist_across_crash() {
    let store = new_store();
    let mut fs = SlsFs::format(store.clone(), NS);
    let root = fs.root();
    let f = fs.create(root, "primary").unwrap();
    fs.write(f, 0, b"two names, one file").unwrap();
    fs.link(root, "secondary", f).unwrap();
    assert_eq!(fs.getattr(f).unwrap().nlink, 2);
    fs.unlink(root, "primary").unwrap();
    fs.flush_meta();
    commit(&store);

    drop(fs);
    let store = recover(store);
    let mut fs = SlsFs::load(store, NS).unwrap();
    let root = fs.root();
    assert!(fs.lookup(root, "primary").is_err());
    let f = fs.lookup(root, "secondary").unwrap();
    assert_eq!(fs.read(f, 0, 64).unwrap(), b"two names, one file");
    assert_eq!(fs.getattr(f).unwrap().nlink, 1);
    // Last unlink reclaims.
    fs.unlink(root, "secondary").unwrap();
    assert!(fs.read(f, 0, 1).is_err());
}
