//! SLSFS — the Aurora file system.
//!
//! A POSIX file API over the object store (the paper's third component).
//! Each regular file's data lives in a store object; directories and
//! inode attributes are serialized into a metadata blob committed with
//! every checkpoint, so file-system state and process state land in the
//! *same* atomic checkpoint — the property that lets Aurora snapshot "a
//! container including process and file system state" with zero copies.
//!
//! Two Aurora-specific behaviours distinguish SLSFS from a typical POSIX
//! file system:
//!
//! * **Open-but-unlinked files persist.** POSIX reclaims anonymous files
//!   at crash time, which would leave a restored application holding dead
//!   descriptors. SLSFS keeps an *on-disk open reference count* per
//!   inode; after a crash the data is still there for the restored
//!   process, and [`SlsFs::reap_orphans`] reclaims it only once no
//!   persistent vnode references remain.
//! * **Zero-copy clones.** [`SlsFs::clone_path`] clones a file or a whole
//!   subtree by sharing reference-counted store blocks.
//!
//! The filesystem implements [`aurora_posix::vfs::Filesystem`], so the
//! simulated kernel mounts it exactly like tmpfs.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use aurora_objstore::{CkptId, ObjId, ObjectStore};
use aurora_posix::vfs::{Filesystem, VnodeAttr, VnodeType};
use aurora_sim::codec::{Decoder, Encoder};
use aurora_sim::error::{Error, ErrorKind, Result};
use aurora_vm::{PageData, PAGE_SIZE};

/// Shared handle to the object store (single-threaded simulator).
pub type StoreHandle = Rc<RefCell<ObjectStore>>;

/// Root inode number.
const ROOT: u64 = 1;

/// Blob key prefix for SLSFS metadata.
fn meta_key(ns: u64) -> String {
    format!("slsfs/{ns}/meta")
}

#[derive(Debug, Clone)]
enum Node {
    File {
        /// Backing store object.
        oid: ObjId,
        size: u64,
        nlink: u32,
        /// The on-disk open reference count.
        open_refs: u32,
    },
    Dir {
        entries: BTreeMap<String, u64>,
        nlink: u32,
    },
}

/// The Aurora file system.
pub struct SlsFs {
    store: StoreHandle,
    /// Namespace base for this filesystem's store objects.
    ns: u64,
    nodes: BTreeMap<u64, Node>,
    next_ino: u64,
}

impl SlsFs {
    /// Creates a fresh filesystem with namespace `ns`.
    ///
    /// `ns` partitions store object ids: file inode `i` maps to store
    /// object `ns | i`, so several filesystems (and the SLS's own memory
    /// objects) share one store without collisions.
    pub fn format(store: StoreHandle, ns: u64) -> SlsFs {
        let mut nodes = BTreeMap::new();
        nodes.insert(
            ROOT,
            Node::Dir {
                entries: BTreeMap::new(),
                nlink: 2,
            },
        );
        SlsFs {
            store,
            ns,
            nodes,
            next_ino: 2,
        }
    }

    /// Loads the filesystem from the store's newest checkpoint.
    pub fn load(store: StoreHandle, ns: u64) -> Result<SlsFs> {
        let (head, blob) = {
            let st = store.borrow_mut();
            let head = st
                .head()
                .ok_or_else(|| Error::not_found("store has no checkpoints"))?;
            let blob = st.get_blob(head, &meta_key(ns))?;
            (head, blob)
        };
        let blob = blob.ok_or_else(|| {
            Error::not_found(format!("no slsfs metadata in checkpoint {}", head.0))
        })?;
        Self::load_from_bytes(store, ns, &blob)
    }

    /// Loads the filesystem as of a specific checkpoint (time travel).
    pub fn load_at(store: StoreHandle, ns: u64, ckpt: CkptId) -> Result<SlsFs> {
        let blob = store
            .borrow_mut()
            .get_blob(ckpt, &meta_key(ns))?
            .ok_or_else(|| {
                Error::not_found(format!("no slsfs metadata in checkpoint {}", ckpt.0))
            })?;
        Self::load_from_bytes(store, ns, &blob)
    }

    fn load_from_bytes(store: StoreHandle, ns: u64, blob: &[u8]) -> Result<SlsFs> {
        let mut d = Decoder::new(blob);
        let next_ino = d.u64()?;
        let count = d.varint()? as usize;
        let mut nodes = BTreeMap::new();
        for _ in 0..count {
            let ino = d.u64()?;
            let node = match d.u8()? {
                0 => Node::File {
                    oid: ObjId(d.u64()?),
                    size: d.u64()?,
                    nlink: d.u32()?,
                    open_refs: d.u32()?,
                },
                1 => {
                    let nlink = d.u32()?;
                    let n = d.varint()? as usize;
                    let mut entries = BTreeMap::new();
                    for _ in 0..n {
                        let name = d.str()?.to_string();
                        let child = d.u64()?;
                        entries.insert(name, child);
                    }
                    Node::Dir { entries, nlink }
                }
                t => return Err(Error::corrupt(format!("bad slsfs node tag {t}"))),
            };
            nodes.insert(ino, node);
        }
        Ok(SlsFs {
            store,
            ns,
            nodes,
            next_ino,
        })
    }

    /// Serializes the inode table into the store's pending checkpoint.
    ///
    /// The SLS orchestrator calls this inside every serialization barrier
    /// so filesystem metadata commits atomically with process state.
    pub fn flush_meta(&self) {
        let mut e = Encoder::new();
        e.u64(self.next_ino);
        e.varint(self.nodes.len() as u64);
        for (ino, node) in &self.nodes {
            e.u64(*ino);
            match node {
                Node::File {
                    oid,
                    size,
                    nlink,
                    open_refs,
                } => {
                    e.u8(0);
                    e.u64(oid.0);
                    e.u64(*size);
                    e.u32(*nlink);
                    e.u32(*open_refs);
                }
                Node::Dir { entries, nlink } => {
                    e.u8(1);
                    e.u32(*nlink);
                    e.varint(entries.len() as u64);
                    for (name, child) in entries {
                        e.str(name);
                        e.u64(*child);
                    }
                }
            }
        }
        self.store
            .borrow_mut()
            .put_blob(&meta_key(self.ns), e.into_vec());
    }

    fn oid_for(&self, ino: u64) -> ObjId {
        ObjId(self.ns | ino)
    }

    fn node(&self, ino: u64) -> Result<&Node> {
        self.nodes
            .get(&ino)
            .ok_or_else(|| Error::not_found(format!("slsfs inode {ino}")))
    }

    fn node_mut(&mut self, ino: u64) -> Result<&mut Node> {
        self.nodes
            .get_mut(&ino)
            .ok_or_else(|| Error::not_found(format!("slsfs inode {ino}")))
    }

    fn dir_entries(&mut self, ino: u64) -> Result<&mut BTreeMap<String, u64>> {
        match self.node_mut(ino)? {
            Node::Dir { entries, .. } => Ok(entries),
            Node::File { .. } => Err(Error::new(
                ErrorKind::NotDirectory,
                format!("slsfs inode {ino}"),
            )),
        }
    }

    /// Reclaims the inode if it has neither links nor open references,
    /// deleting its store object.
    fn maybe_reclaim(&mut self, ino: u64) {
        let reclaim = matches!(
            self.nodes.get(&ino),
            Some(Node::File {
                nlink: 0,
                open_refs: 0,
                ..
            })
        );
        if reclaim {
            self.nodes.remove(&ino);
            let _ = self.store.borrow_mut().delete_object(self.oid_for(ino));
        }
    }

    /// After a crash without a process restore, unlinked-but-open files
    /// have positive on-disk open counts but no live owners. The
    /// orchestrator calls this with the open counts of the processes it
    /// actually restored; anything beyond them is reclaimed.
    ///
    /// `live_refs` maps inode number to the number of restored vnode
    /// references.
    pub fn reap_orphans(&mut self, live_refs: &BTreeMap<u64, u32>) {
        let inos: Vec<u64> = self.nodes.keys().copied().collect();
        for ino in inos {
            if let Some(Node::File {
                nlink, open_refs, ..
            }) = self.nodes.get_mut(&ino)
            {
                if *nlink == 0 {
                    *open_refs = live_refs.get(&ino).copied().unwrap_or(0);
                    self.maybe_reclaim(ino);
                }
            }
        }
    }

    /// Zero-copy clone of a file or subtree.
    ///
    /// `src` and `dst` are `(dir inode, name)` pairs within this
    /// filesystem. File payloads are shared copy-on-write through the
    /// object store; nothing is copied.
    pub fn clone_path(&mut self, src_dir: u64, src_name: &str, dst_dir: u64, dst_name: &str) -> Result<u64> {
        let src_ino = self.lookup(src_dir, src_name)?;
        let cloned = self.clone_node(src_ino)?;
        let entries = self.dir_entries(dst_dir)?;
        if entries.contains_key(dst_name) {
            return Err(Error::already_exists(dst_name));
        }
        entries.insert(dst_name.to_string(), cloned);
        Ok(cloned)
    }

    fn clone_node(&mut self, ino: u64) -> Result<u64> {
        match self.node(ino)?.clone() {
            Node::File { oid, size, .. } => {
                let new_ino = self.next_ino;
                self.next_ino += 1;
                let new_oid = self.oid_for(new_ino);
                self.store.borrow_mut().clone_object(oid, new_oid)?;
                self.nodes.insert(
                    new_ino,
                    Node::File {
                        oid: new_oid,
                        size,
                        nlink: 1,
                        open_refs: 0,
                    },
                );
                Ok(new_ino)
            }
            Node::Dir { entries, .. } => {
                let new_ino = self.next_ino;
                self.next_ino += 1;
                let mut new_entries = BTreeMap::new();
                for (name, child) in entries {
                    new_entries.insert(name, self.clone_node(child)?);
                }
                self.nodes.insert(
                    new_ino,
                    Node::Dir {
                        entries: new_entries,
                        nlink: 2,
                    },
                );
                Ok(new_ino)
            }
        }
    }

    /// Number of live inodes (tests).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }
}

impl Filesystem for SlsFs {
    fn fs_name(&self) -> &'static str {
        "slsfs"
    }

    fn root(&self) -> u64 {
        ROOT
    }

    fn lookup(&mut self, dir: u64, name: &str) -> Result<u64> {
        self.dir_entries(dir)?
            .get(name)
            .copied()
            .ok_or_else(|| Error::not_found(name))
    }

    fn create(&mut self, dir: u64, name: &str) -> Result<u64> {
        let ino = self.next_ino;
        {
            let entries = self.dir_entries(dir)?;
            if entries.contains_key(name) {
                return Err(Error::already_exists(name));
            }
            entries.insert(name.to_string(), ino);
        }
        self.next_ino += 1;
        let oid = self.oid_for(ino);
        self.store.borrow_mut().create_object(oid, 1 << 40)?;
        self.nodes.insert(
            ino,
            Node::File {
                oid,
                size: 0,
                nlink: 1,
                open_refs: 0,
            },
        );
        Ok(ino)
    }

    fn mkdir(&mut self, dir: u64, name: &str) -> Result<u64> {
        let ino = self.next_ino;
        {
            let entries = self.dir_entries(dir)?;
            if entries.contains_key(name) {
                return Err(Error::already_exists(name));
            }
            entries.insert(name.to_string(), ino);
        }
        self.next_ino += 1;
        self.nodes.insert(
            ino,
            Node::Dir {
                entries: BTreeMap::new(),
                nlink: 2,
            },
        );
        Ok(ino)
    }

    fn link(&mut self, dir: u64, name: &str, node: u64) -> Result<()> {
        match self.node_mut(node)? {
            Node::File { nlink, .. } => *nlink += 1,
            Node::Dir { .. } => {
                return Err(Error::new(
                    ErrorKind::IsDirectory,
                    "cannot hard-link directories",
                ))
            }
        }
        let entries = self.dir_entries(dir)?;
        if entries.contains_key(name) {
            if let Ok(Node::File { nlink, .. }) = self.node_mut(node) {
                *nlink -= 1;
            }
            return Err(Error::already_exists(name));
        }
        self.dir_entries(dir)?.insert(name.to_string(), node);
        Ok(())
    }

    fn unlink(&mut self, dir: u64, name: &str) -> Result<()> {
        let ino = {
            let entries = self.dir_entries(dir)?;
            let ino = *entries.get(name).ok_or_else(|| Error::not_found(name))?;
            if matches!(self.node(ino)?, Node::Dir { .. }) {
                return Err(Error::new(ErrorKind::IsDirectory, name));
            }
            self.dir_entries(dir)?.remove(name);
            ino
        };
        if let Node::File { nlink, .. } = self.node_mut(ino)? {
            *nlink = nlink.saturating_sub(1);
        }
        self.maybe_reclaim(ino);
        Ok(())
    }

    fn rmdir(&mut self, dir: u64, name: &str) -> Result<()> {
        let ino = {
            let entries = self.dir_entries(dir)?;
            *entries.get(name).ok_or_else(|| Error::not_found(name))?
        };
        match self.node(ino)? {
            Node::Dir { entries, .. } if !entries.is_empty() => {
                return Err(Error::new(ErrorKind::NotEmpty, name));
            }
            Node::File { .. } => {
                return Err(Error::new(ErrorKind::NotDirectory, name));
            }
            _ => {}
        }
        self.dir_entries(dir)?.remove(name);
        self.nodes.remove(&ino);
        Ok(())
    }

    fn rename(&mut self, sdir: u64, sname: &str, ddir: u64, dname: &str) -> Result<()> {
        let ino = {
            let entries = self.dir_entries(sdir)?;
            *entries.get(sname).ok_or_else(|| Error::not_found(sname))?
        };
        let replaced = self.dir_entries(ddir)?.get(dname).copied();
        // Renaming a file onto itself is a POSIX no-op.
        if replaced == Some(ino) {
            return Ok(());
        }
        if let Some(old) = replaced {
            if matches!(self.node(old)?, Node::Dir { .. }) {
                return Err(Error::new(ErrorKind::IsDirectory, dname));
            }
        }
        self.dir_entries(sdir)?.remove(sname);
        self.dir_entries(ddir)?.insert(dname.to_string(), ino);
        if let Some(old) = replaced {
            if let Node::File { nlink, .. } = self.node_mut(old)? {
                *nlink = nlink.saturating_sub(1);
            }
            self.maybe_reclaim(old);
        }
        Ok(())
    }

    fn readdir(&mut self, dir: u64) -> Result<Vec<(String, u64)>> {
        Ok(self
            .dir_entries(dir)?
            .iter()
            .map(|(n, i)| (n.clone(), *i))
            .collect())
    }

    fn read(&mut self, ino: u64, off: u64, len: usize) -> Result<Vec<u8>> {
        let (oid, size) = match self.node(ino)? {
            Node::File { oid, size, .. } => (*oid, *size),
            Node::Dir { .. } => {
                return Err(Error::new(ErrorKind::IsDirectory, format!("inode {ino}")))
            }
        };
        if off >= size {
            return Ok(Vec::new());
        }
        let end = (off + len as u64).min(size);
        let mut out = Vec::with_capacity((end - off) as usize);
        let mut pos = off;
        let store = self.store.borrow_mut();
        while pos < end {
            let page_idx = pos / PAGE_SIZE as u64;
            let page_off = (pos % PAGE_SIZE as u64) as usize;
            let n = ((PAGE_SIZE - page_off) as u64).min(end - pos) as usize;
            let page = store
                .read_page(oid, page_idx)?
                .unwrap_or(PageData::Zero);
            let mut buf = vec![0u8; n];
            page.read(page_off, &mut buf);
            out.extend_from_slice(&buf);
            pos += n as u64;
        }
        Ok(out)
    }

    fn write(&mut self, ino: u64, off: u64, data: &[u8]) -> Result<usize> {
        let (oid, size) = match self.node(ino)? {
            Node::File { oid, size, .. } => (*oid, *size),
            Node::Dir { .. } => {
                return Err(Error::new(ErrorKind::IsDirectory, format!("inode {ino}")))
            }
        };
        {
            let mut store = self.store.borrow_mut();
            let mut pos = off;
            let end = off + data.len() as u64;
            while pos < end {
                let page_idx = pos / PAGE_SIZE as u64;
                let page_off = (pos % PAGE_SIZE as u64) as usize;
                let n = ((PAGE_SIZE - page_off) as u64).min(end - pos) as usize;
                let src = &data[(pos - off) as usize..(pos - off) as usize + n];
                let new_page = if page_off == 0 && n == PAGE_SIZE {
                    PageData::from_bytes(src)
                } else {
                    let existing = store.read_page(oid, page_idx)?.unwrap_or(PageData::Zero);
                    existing.write(page_off, src)
                };
                store.write_page(oid, page_idx, &new_page)?;
                pos += n as u64;
            }
        }
        let new_size = size.max(off + data.len() as u64);
        if let Node::File { size, .. } = self.node_mut(ino)? {
            *size = new_size;
        }
        Ok(data.len())
    }

    fn truncate(&mut self, ino: u64, len: u64) -> Result<()> {
        let (oid, old_size) = match self.node(ino)? {
            Node::File { oid, size, .. } => (*oid, *size),
            Node::Dir { .. } => {
                return Err(Error::new(ErrorKind::IsDirectory, format!("inode {ino}")))
            }
        };
        if len < old_size {
            let mut store = self.store.borrow_mut();
            // Zero the partial tail page so re-extension reads zeroes.
            if !len.is_multiple_of(PAGE_SIZE as u64) {
                let page_idx = len / PAGE_SIZE as u64;
                let page_off = (len % PAGE_SIZE as u64) as usize;
                if let Some(page) = store.read_page(oid, page_idx)? {
                    let zeros = vec![0u8; PAGE_SIZE - page_off];
                    store.write_page(oid, page_idx, &page.write(page_off, &zeros))?;
                }
            }
        }
        if let Node::File { size, .. } = self.node_mut(ino)? {
            *size = len;
        }
        Ok(())
    }

    fn getattr(&self, ino: u64) -> Result<VnodeAttr> {
        Ok(match self.node(ino)? {
            Node::File { size, nlink, .. } => VnodeAttr {
                kind: VnodeType::Regular,
                size: *size,
                nlink: *nlink,
            },
            Node::Dir { entries, nlink } => VnodeAttr {
                kind: VnodeType::Directory,
                size: entries.len() as u64,
                nlink: *nlink,
            },
        })
    }

    fn open_ref(&mut self, ino: u64, delta: i32) -> Result<()> {
        if let Node::File { open_refs, .. } = self.node_mut(ino)? {
            *open_refs = (*open_refs as i64 + delta as i64).max(0) as u32;
        }
        self.maybe_reclaim(ino);
        Ok(())
    }

    fn sync(&mut self) -> Result<()> {
        // Metadata is staged; the SLS (or the caller) commits the store.
        self.flush_meta();
        Ok(())
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

impl core::fmt::Debug for SlsFs {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("SlsFs")
            .field("ns", &self.ns)
            .field("inodes", &self.nodes.len())
            .finish()
    }
}
