//! The object store proper: live maps, dedup, commits, recovery, GC.
//!
//! See the crate docs for the design overview. The durability contract:
//! [`ObjectStore::commit`] appends the delta to the journal, flushes,
//! updates the alternating superblock and flushes again, returning the
//! virtual instant at which the checkpoint is power-loss-safe — without
//! advancing the caller's clock, so the SLS overlaps flushing with
//! application execution. Anything not yet committed is discarded by
//! [`ObjectStore::recover`], exactly like a real crash.

use std::cell::{Cell, Ref, RefCell};
use std::collections::{BTreeMap, HashMap, HashSet};

use aurora_hw::{BlockDev, BLOCK_SIZE};
use aurora_sim::cost::RESTORE_CACHE_HIT_NS;
use aurora_sim::error::{Error, Result};
use aurora_sim::lockdep::{OrderedMutex, RANK_PAGE_CACHE};
use aurora_sim::time::{SimDuration, SimTime};
use aurora_vm::PageData;

use crate::alloc::BlockAlloc;
use crate::checkpoint::{self, Checkpoint, CkptId, PageRef};
use crate::deltalog::{DeltaLog, DeltaRecord, Lsn};
use crate::journal::{self, JournalRecord};
use crate::layout::{Superblock, JOURNAL_START};
use crate::{BlockPtr, ObjId};

/// Store configuration.
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Journal region size in blocks.
    pub journal_blocks: u64,
    /// Enable content-hash page deduplication.
    pub dedup: bool,
    /// Write real page bytes through the device (needed when the store
    /// must be reopened from the medium alone, e.g. the CLI's file-backed
    /// worlds). Off for simulation-scale benchmarks.
    pub materialize_data: bool,
    /// Capacity of the bounded read cache in pages (0 disables it).
    pub read_cache_pages: usize,
    /// Largest dirty footprint (bytes per page) the flush pipeline may
    /// record as a sub-page delta instead of a full image. 0 disables
    /// the delta path entirely.
    pub delta_max_bytes: u32,
    /// Longest redo chain before a page must take the full-image path
    /// (which truncates its chain).
    pub delta_max_chain: u32,
}

/// Default bounded read-cache capacity: 4096 pages = 16 MiB of DRAM.
pub const DEFAULT_READ_CACHE_PAGES: usize = 4096;

/// Default delta-vs-full threshold: a quarter page. Above this, the
/// record overhead stops paying for itself against a 4 KiB image.
pub const DEFAULT_DELTA_MAX_BYTES: u32 = 1024;

/// Default chain-length bound before full-image truncation.
pub const DEFAULT_DELTA_MAX_CHAIN: u32 = 8;

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            journal_blocks: 16 * 1024, // 64 MiB of metadata journal
            dedup: true,
            materialize_data: false,
            read_cache_pages: DEFAULT_READ_CACHE_PAGES,
            delta_max_bytes: DEFAULT_DELTA_MAX_BYTES,
            delta_max_chain: DEFAULT_DELTA_MAX_CHAIN,
        }
    }
}

/// Store activity counters.
#[derive(Debug, Default, Clone)]
pub struct StoreStats {
    /// Pages accepted by `write_page`.
    pub pages_written: u64,
    /// Writes satisfied by dedup (no device I/O).
    pub dedup_hits: u64,
    /// Commits performed.
    pub commits: u64,
    /// Journal compactions.
    pub compactions: u64,
    /// Checkpoints garbage collected.
    pub gc_runs: u64,
    /// Journal bytes written.
    pub bytes_journaled: u64,
    /// Vectored extent writes issued by the batch flush path.
    pub extents_coalesced: u64,
    /// Blocks carried by those extents.
    pub blocks_coalesced: u64,
    /// Vectored extent reads issued by the batched restore path.
    pub read_extents_coalesced: u64,
    /// Blocks carried by those extent reads.
    pub read_blocks_coalesced: u64,
    /// Batched-read probes served by the bounded read cache.
    pub read_cache_hits: u64,
    /// Batched-read probes that charged device time.
    pub read_cache_misses: u64,
    /// Hits served through the content index: the probed block's bytes
    /// were already resident under a different block id.
    pub read_cache_content_hits: u64,
    /// Blocks healed by read-repair: a copy failed content-hash
    /// verification and was rewritten from a good mirror twin.
    pub read_repairs: u64,
    /// Commit-protocol phase transitions: `DirtyTxn → JournalSealed`
    /// (journal records submitted).
    pub journal_seals: u64,
    /// Phase transitions `JournalSealed → ExtentsDurable` (flush
    /// barriers covering the record and all prior data extents).
    pub extent_barriers: u64,
    /// Phase transitions `ExtentsDurable → Committed` (durable
    /// alternating-superblock flips).
    pub superblock_flips: u64,
    /// Sub-page delta records committed to the journal.
    pub delta_records: u64,
    /// Encoded journal bytes of those records (the flush-byte savings
    /// baseline: each record stands in for a 4 KiB image).
    pub delta_bytes: u64,
    /// Redo chains folded back into full base images by the compactor.
    pub chains_compacted: u64,
    /// Longest redo chain ever committed (high-water mark).
    pub chain_len_max: u64,
    /// Entries into the device-redundancy repair path (read-repair and
    /// scrub healing). A `Cell` because scrub-path repair runs under
    /// `&self`.
    pub repair_path_entries: Cell<u64>,
}

/// Outcome of one [`ObjectStore::resilver`] pass.
#[derive(Debug, Default, Clone, Copy)]
pub struct ResilverReport {
    /// Extent batches copied to rebuilding replicas.
    pub extents: u64,
    /// Blocks carried by those extents (metadata region + live data).
    pub blocks: u64,
    /// Replicas promoted from `Rebuilding` to `Active` at the end.
    pub replicas_promoted: usize,
}

/// One live object.
#[derive(Debug, Default, Clone)]
struct LiveObject {
    map: BTreeMap<u64, BlockPtr>,
    /// Delta overlay: pages whose live contents are a redo chain over
    /// the base image still held in `map`. A head here outranks the
    /// `map` entry; a full write clears it (chain truncation). Entries
    /// hold no block refs — the base's ref lives in `map`.
    deltas: BTreeMap<u64, Lsn>,
    size_pages: u64,
}

/// Folds the committed chain ending at `head` into live object maps —
/// the authoritative reconstruction used by recovery and by
/// [`ObjectStore::rollback_pending`].
fn fold_live(
    ckpts: &BTreeMap<u64, Checkpoint>,
    head: Option<CkptId>,
) -> Result<HashMap<ObjId, LiveObject>> {
    let mut live: HashMap<ObjId, LiveObject> = HashMap::new();
    let Some(h) = head else {
        return Ok(live);
    };
    let mut chain = Vec::new();
    let mut cur = Some(h);
    while let Some(c) = cur {
        let ck = ckpts
            .get(&c.0)
            .ok_or_else(|| Error::corrupt(format!("dangling parent {}", c.0)))?;
        chain.push(c.0);
        cur = ck.parent;
    }
    for id in chain.iter().rev() {
        let ck = ckpts
            .get(id)
            .ok_or_else(|| Error::corrupt(format!("checkpoint {id} vanished mid-fold")))?;
        for (oid, size) in &ck.new_objects {
            live.insert(
                *oid,
                LiveObject {
                    map: BTreeMap::new(),
                    deltas: BTreeMap::new(),
                    size_pages: *size,
                },
            );
        }
        // Pages before delta heads: a full image truncates the chain,
        // and a checkpoint carrying both for one key (post-GC-merge) has
        // the chain's base in `pages` with the newer head in `deltas`.
        for ((oid, idx), ptr) in &ck.pages {
            if let Some(obj) = live.get_mut(oid) {
                obj.map.insert(*idx, *ptr);
                obj.deltas.remove(idx);
            }
        }
        for ((oid, idx), lsn) in &ck.deltas {
            if let Some(obj) = live.get_mut(oid) {
                obj.deltas.insert(*idx, *lsn);
            }
        }
        for oid in &ck.deleted_objects {
            live.remove(oid);
        }
    }
    Ok(live)
}

/// Expected block refcounts for committed state: one per
/// checkpoint-delta pointer plus one per live-map pointer.
fn committed_refs(
    ckpts: &BTreeMap<u64, Checkpoint>,
    live: &HashMap<ObjId, LiveObject>,
) -> HashMap<u64, u32> {
    let mut refs: HashMap<u64, u32> = HashMap::new();
    for ck in ckpts.values() {
        for ptr in ck.pages.values() {
            *refs.entry(ptr.0).or_insert(0) += 1;
        }
    }
    for obj in live.values() {
        for ptr in obj.map.values() {
            *refs.entry(ptr.0).or_insert(0) += 1;
        }
    }
    refs
}

/// Number of shards in the dedup index — a power of two so a shard is
/// selected by masking the content hash.
pub const DEDUP_SHARDS: usize = 16;

/// Longest run of adjacent blocks submitted as one vectored device
/// write by [`ObjectStore::write_pages_coalesced`].
pub const EXTENT_BLOCKS: usize = 64;

/// The content-hash dedup index, partitioned into fixed shards by hash.
///
/// Sharding mirrors the parallel hash stage's partitioning of a flush
/// plan, so a shard's candidate lists are only ever touched for hashes
/// it owns. All mutation still happens on the store's owning thread;
/// determinism across worker counts comes from rebuilds walking blocks
/// in ascending id order, which fixes candidate-list order regardless
/// of who computed the hashes.
struct DedupIndex {
    shards: Vec<HashMap<u64, Vec<BlockPtr>>>,
}

impl DedupIndex {
    fn new() -> Self {
        DedupIndex {
            shards: (0..DEDUP_SHARDS).map(|_| HashMap::new()).collect(),
        }
    }

    /// The shard owning hash `h` (mask — always in range).
    fn shard_of(h: u64) -> usize {
        (h as usize) & (DEDUP_SHARDS - 1)
    }

    /// Candidate blocks for hash `h`, in insertion order.
    fn candidates(&self, h: u64) -> Option<&[BlockPtr]> {
        self.shards
            .get(Self::shard_of(h))
            .and_then(|s| s.get(&h))
            .map(Vec::as_slice)
    }

    fn insert(&mut self, h: u64, ptr: BlockPtr) {
        if let Some(s) = self.shards.get_mut(Self::shard_of(h)) {
            s.entry(h).or_default().push(ptr);
        }
    }

    fn remove(&mut self, h: u64, ptr: BlockPtr) {
        if let Some(s) = self.shards.get_mut(Self::shard_of(h)) {
            if let Some(cands) = s.get_mut(&h) {
                cands.retain(|&c| c != ptr);
                if cands.is_empty() {
                    s.remove(&h);
                }
            }
        }
    }

    fn clear(&mut self) {
        for s in &mut self.shards {
            s.clear();
        }
    }
}

/// The bounded LRU read cache with a content-hash index.
///
/// This models the DRAM the paged-in working set occupies: a probe for a
/// recently read block — or, through the content index, for a block whose
/// *bytes* are already resident under a different block id — is an index
/// lookup plus a frame adoption, not a device access. Page contents stay
/// in the unbounded authoritative table ([`PageCache::data`]); the bound
/// governs what the cost model treats as resident, never what the
/// simulation can recall.
///
/// Eviction order is a deterministic LRU: a monotonic stamp counter
/// replaces wall-clock recency, so runs are reproducible byte-for-byte.
struct ReadCache {
    /// Capacity in pages; 0 disables the cache.
    capacity: usize,
    /// block -> LRU stamp (higher = touched more recently).
    stamps: HashMap<u64, u64>,
    /// stamp -> block: oldest-first iteration drives eviction.
    by_stamp: BTreeMap<u64, u64>,
    /// block -> content hash of the resident bytes.
    hashes: HashMap<u64, u64>,
    /// content hash -> resident blocks holding those bytes.
    by_hash: HashMap<u64, Vec<u64>>,
    next_stamp: u64,
    /// Lifetime evictions (capacity pressure, not explicit removal).
    evictions: u64,
}

impl ReadCache {
    fn new(capacity: usize) -> Self {
        ReadCache {
            capacity,
            stamps: HashMap::new(),
            by_stamp: BTreeMap::new(),
            hashes: HashMap::new(),
            by_hash: HashMap::new(),
            next_stamp: 0,
            evictions: 0,
        }
    }

    /// Refreshes a resident block's LRU position.
    fn touch(&mut self, block: u64) {
        if let Some(stamp) = self.stamps.get(&block).copied() {
            self.by_stamp.remove(&stamp);
            self.next_stamp += 1;
            self.stamps.insert(block, self.next_stamp);
            self.by_stamp.insert(self.next_stamp, block);
        }
    }

    /// Whether `block` is resident; refreshes its LRU position if so.
    fn probe(&mut self, block: u64) -> bool {
        if self.stamps.contains_key(&block) {
            self.touch(block);
            true
        } else {
            false
        }
    }

    /// Admits `block` (with its content hash when known), evicting the
    /// least recently used entries past capacity.
    fn admit(&mut self, block: u64, hash: Option<u64>) {
        if self.capacity == 0 {
            return;
        }
        if self.stamps.contains_key(&block) {
            self.touch(block);
        } else {
            self.next_stamp += 1;
            self.stamps.insert(block, self.next_stamp);
            self.by_stamp.insert(self.next_stamp, block);
        }
        if let Some(h) = hash {
            self.set_hash(block, h);
        }
        self.evict_overflow();
    }

    /// Records or updates the content hash of a resident block.
    fn set_hash(&mut self, block: u64, h: u64) {
        if !self.stamps.contains_key(&block) {
            return;
        }
        if self.hashes.get(&block) == Some(&h) {
            return;
        }
        self.drop_hash(block);
        self.hashes.insert(block, h);
        self.by_hash.entry(h).or_default().push(block);
    }

    /// A resident block holding bytes with content hash `h`, if any.
    fn resident_with_hash(&self, h: u64) -> Option<u64> {
        self.by_hash.get(&h).and_then(|l| l.first()).copied()
    }

    /// Unlinks a block from the content index.
    fn drop_hash(&mut self, block: u64) {
        if let Some(h) = self.hashes.remove(&block) {
            if let Some(list) = self.by_hash.get_mut(&h) {
                list.retain(|&b| b != block);
                if list.is_empty() {
                    self.by_hash.remove(&h);
                }
            }
        }
    }

    /// Removes a block entirely (freed block, stale entry).
    fn forget(&mut self, block: u64) {
        if let Some(stamp) = self.stamps.remove(&block) {
            self.by_stamp.remove(&stamp);
        }
        self.drop_hash(block);
    }

    fn evict_overflow(&mut self) {
        while self.stamps.len() > self.capacity {
            let Some((&stamp, &block)) = self.by_stamp.iter().next() else {
                break;
            };
            self.by_stamp.remove(&stamp);
            self.stamps.remove(&block);
            self.drop_hash(block);
            self.evictions += 1;
        }
    }

    /// Drops every entry; the eviction counter is cumulative and stays.
    fn clear(&mut self) {
        self.stamps.clear();
        self.by_stamp.clear();
        self.hashes.clear();
        self.by_hash.clear();
    }

    fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity;
        if capacity == 0 {
            self.clear();
        } else {
            self.evict_overflow();
        }
    }

    fn len(&self) -> usize {
        self.stamps.len()
    }
}

/// One probe against the read cache, resolved under a single lock hold.
enum ReadProbe {
    /// The block itself is resident; its contents ride along.
    Hit(PageData),
    /// A different resident block holds identical bytes.
    ContentHit(PageData),
    /// Device read required.
    Miss,
}

/// Page contents plus the dedup index and the bounded read cache,
/// behind one lock so the read paths can stay `&self`: a cache fill is
/// not a logical mutation. The lock carries lockdep rank `page_cache`
/// because batched restores touch it from inside the checkpoint
/// barrier while flush workers run.
struct PageCache {
    /// Authoritative page contents by block (compact representation).
    data: HashMap<u64, PageData>,
    /// Content-hash index: hash -> candidate blocks, sharded by hash.
    dedup: DedupIndex,
    /// Block -> content hash (reverse index for release).
    block_hash: HashMap<u64, u64>,
    /// Bounded LRU over recently read blocks.
    read: ReadCache,
}

impl PageCache {
    fn new(data: HashMap<u64, PageData>, read_cache_pages: usize) -> Self {
        PageCache {
            data,
            dedup: DedupIndex::new(),
            block_hash: HashMap::new(),
            read: ReadCache::new(read_cache_pages),
        }
    }

    /// Probes the read cache for `block`: identity hit, content hit, or
    /// miss. Hits hand back the resident bytes; a content hit also
    /// adopts them under the probed block id so later probes hit
    /// directly.
    fn probe_read(&mut self, block: u64) -> ReadProbe {
        if self.read.probe(block) {
            if let Some(page) = self.data.get(&block).cloned() {
                return ReadProbe::Hit(page);
            }
            // Contents vanished without eviction bookkeeping (e.g. a
            // rollback rebuilt the table): drop the stale entry.
            self.read.forget(block);
        }
        if let Some(&h) = self.block_hash.get(&block) {
            if let Some(twin) = self.read.resident_with_hash(h) {
                if let Some(page) = self.data.get(&twin).cloned() {
                    // Guard against hash collisions when the probed
                    // block's own bytes are recallable.
                    let collision = self
                        .data
                        .get(&block)
                        .is_some_and(|own| !own.content_eq(&page));
                    if !collision {
                        self.data.insert(block, page.clone());
                        self.read.admit(block, Some(h));
                        return ReadProbe::ContentHit(page);
                    }
                }
            }
        }
        ReadProbe::Miss
    }

    /// Rebuilds the dedup index over the current contents, walking
    /// blocks in ascending id order: candidate lists come out identical
    /// no matter the `HashMap` iteration order or how many flush
    /// workers produced the hashes.
    fn rebuild_dedup(&mut self) {
        self.dedup.clear();
        self.block_hash.clear();
        let mut blocks: Vec<u64> = self.data.keys().copied().collect();
        blocks.sort_unstable();
        for b in blocks {
            if let Some(page) = self.data.get(&b) {
                let h = page.content_hash();
                self.dedup.insert(h, BlockPtr(b));
                self.block_hash.insert(b, h);
            }
        }
    }

    /// Caches freshly written contents and indexes them for dedup.
    fn install(&mut self, ptr: BlockPtr, page: &PageData, hash: Option<u64>) {
        self.data.insert(ptr.0, page.clone());
        if let Some(h) = hash {
            self.dedup.insert(h, ptr);
            self.block_hash.insert(ptr.0, h);
        }
    }

    /// Drops a freed block's contents and index entries.
    fn evict(&mut self, ptr: BlockPtr) {
        self.data.remove(&ptr.0);
        if let Some(h) = self.block_hash.remove(&ptr.0) {
            self.dedup.remove(h, ptr);
        }
        self.read.forget(ptr.0);
    }
}

/// One page of a flush plan with its content hash already computed (by
/// the parallel hash stage) — the unit of
/// [`ObjectStore::write_pages_coalesced`].
#[derive(Debug, Clone)]
pub struct PageWrite {
    /// Destination object.
    pub oid: ObjId,
    /// Page index within the object.
    pub idx: u64,
    /// Page contents.
    pub page: PageData,
    /// FNV-1a content hash of `page`.
    pub hash: u64,
}

/// A batched read plan: per-target block resolutions plus an extent
/// schedule over the unique blocks. Built by
/// [`ObjectStore::plan_reads_at`], executed by
/// [`ObjectStore::execute_read_plan`].
#[derive(Debug, Clone, Default)]
pub struct ReadPlan {
    /// Per-target resolved block, aligned with the target slice handed
    /// to the planner; `None` is a hole (the page restores as zeros).
    /// A target under a redo chain resolves to its chain's *base*
    /// block — the batched device read fetches bases, and the entry in
    /// [`ReadPlan::chains`] says which chain to replay on top.
    pub resolved: Vec<Option<BlockPtr>>,
    /// Per-target delta-chain head, aligned with `resolved`; `None`
    /// means the resolved block is the page's full image.
    pub chains: Vec<Option<Lsn>>,
    /// Unique referenced blocks, ascending. Dedup-shared blocks appear
    /// once no matter how many targets they serve — they are read once
    /// and fanned out.
    pub blocks: Vec<u64>,
    /// Extent schedule: `(offset, len)` runs into `blocks`, each a run
    /// of adjacent block ids at most [`EXTENT_BLOCKS`] long.
    pub extents: Vec<(usize, usize)>,
}

/// What executing a [`ReadPlan`] produced.
#[derive(Debug, Default)]
pub struct ReadOutcome {
    /// Contents for every planned block.
    pub pages: HashMap<u64, PageData>,
    /// Blocks whose contents came off the device (or the timing-mode
    /// page table) rather than the read cache — the ones the restore
    /// pipeline still owes a content-hash pass.
    pub fetched: Vec<u64>,
    /// Probes served by the bounded read cache (identity or content).
    pub cache_hits: u64,
    /// Probes that charged device time.
    pub cache_misses: u64,
    /// The subset of hits served through the content index.
    pub content_hits: u64,
    /// Vectored extent reads issued.
    pub extents_read: u64,
}

/// The object store.
pub struct ObjectStore {
    /// `pub(crate)` for `txn.rs`, the commit protocol's only licensed
    /// journal/superblock writer.
    pub(crate) dev: RefCell<Box<dyn BlockDev>>,
    config: StoreConfig,
    pub(crate) sb: Superblock,
    alloc: BlockAlloc,
    /// Committed checkpoints by id.
    ckpts: BTreeMap<u64, Checkpoint>,
    head: Option<CkptId>,
    /// Live object state (committed head + pending writes).
    live: HashMap<ObjId, LiveObject>,
    /// Pending delta since the last commit.
    pending_pages: HashMap<(ObjId, u64), BlockPtr>,
    pending_blobs: BTreeMap<String, Vec<u8>>,
    pending_new_objects: Vec<(ObjId, u64)>,
    pending_deleted: Vec<ObjId>,
    /// Sub-page delta records staged this epoch, keyed by page. LSNs
    /// are assigned at commit in key order; the records enter `delta`
    /// only after the superblock flip succeeds.
    pending_deltas: BTreeMap<(ObjId, u64), DeltaRecord>,
    /// Committed delta records (rebuilt from the journal on recovery).
    delta: DeltaLog,
    /// Page contents, the dedup index and the bounded read cache.
    cache: OrderedMutex<PageCache>,
    /// Counters.
    pub stats: StoreStats,
}

impl ObjectStore {
    /// Formats a device and returns an empty store.
    pub fn format(mut dev: Box<dyn BlockDev>, config: StoreConfig) -> Result<Self> {
        let total_blocks = dev.info().blocks;
        let min = JOURNAL_START + config.journal_blocks + 16;
        if total_blocks < min {
            return Err(Error::invalid(format!(
                "device too small: {total_blocks} blocks < {min}"
            )));
        }
        let sb = Superblock {
            epoch: 1,
            journal_blocks: config.journal_blocks,
            journal_used: 0,
            journal_base: JOURNAL_START,
            total_blocks,
            next_ckpt: 1,
            next_obj: 1,
        };
        dev.submit_write(0, &sb.to_block())?;
        dev.submit_write(1, &sb.to_block())?;
        let done = dev.flush()?;
        dev.clock().advance_to(done);
        let data_blocks = sb.data_blocks();
        let cache = PageCache::new(HashMap::new(), config.read_cache_pages);
        Ok(ObjectStore {
            dev: RefCell::new(dev),
            config,
            sb,
            alloc: BlockAlloc::new(data_blocks),
            ckpts: BTreeMap::new(),
            head: None,
            live: HashMap::new(),
            pending_pages: HashMap::new(),
            pending_blobs: BTreeMap::new(),
            pending_new_objects: Vec::new(),
            pending_deleted: Vec::new(),
            pending_deltas: BTreeMap::new(),
            delta: DeltaLog::default(),
            cache: OrderedMutex::new(RANK_PAGE_CACHE, "page_cache", cache),
            stats: StoreStats::default(),
        })
    }

    /// Opens an existing store from the device (full recovery).
    ///
    /// Page contents are only recoverable when the store was written with
    /// `materialize_data` (or via [`ObjectStore::recover`], which keeps
    /// the in-memory page table across the simulated crash).
    pub fn open(dev: Box<dyn BlockDev>, config: StoreConfig) -> Result<Self> {
        Self::open_with_data(dev, config, HashMap::new())
    }

    /// Simulates a reboot: power-cycles the device and rebuilds all
    /// metadata from the medium. Uncommitted state is lost; committed
    /// page contents are retained (they stand for what is on disk).
    pub fn recover(self) -> Result<Self> {
        let mut dev = self.dev.into_inner();
        dev.power_on();
        Self::open_with_data(dev, self.config, self.cache.into_inner().data)
    }

    fn open_with_data(
        mut dev: Box<dyn BlockDev>,
        config: StoreConfig,
        data: HashMap<u64, PageData>,
    ) -> Result<Self> {
        // Pick the valid superblock with the highest epoch.
        let mut block = vec![0u8; BLOCK_SIZE];
        let mut best: Option<Superblock> = None;
        for slot in 0..2u64 {
            dev.read(slot, &mut block)?;
            if let Ok(sb) = Superblock::from_block(&block) {
                if best.as_ref().is_none_or(|b| sb.epoch > b.epoch) {
                    best = Some(sb);
                }
            }
        }
        let sb = best.ok_or_else(|| Error::corrupt("no valid superblock"))?;

        // Replay the journal.
        let used = sb.journal_used as usize;
        let mut journal_bytes = vec![0u8; used.div_ceil(BLOCK_SIZE) * BLOCK_SIZE];
        if !journal_bytes.is_empty() {
            dev.read(sb.journal_base, &mut journal_bytes)?;
        }
        let records = journal::decode_records(&journal_bytes, sb.journal_used);
        let (ckpts, mut delta) = journal::replay_lossy(records);
        // Drop chain segments no committed checkpoint can reach (stale
        // tails from GC merges folded into the replayed table).
        let heads: Vec<Lsn> = ckpts
            .values()
            .flat_map(|c| c.deltas.values().copied())
            .collect();
        delta.prune(heads);

        // Rebuild live state by folding the chain from the head (the
        // newest checkpoint).
        let head = ckpts.keys().next_back().map(|&id| CkptId(id));
        let live = fold_live(&ckpts, head)?;

        // Rebuild refcounts: one per checkpoint-delta pointer plus one per
        // live-map pointer.
        let refs = committed_refs(&ckpts, &live);
        let mut alloc = BlockAlloc::new(sb.data_blocks());
        for (&b, &r) in &refs {
            alloc.set_refs(BlockPtr(b), r);
        }

        // Retain contents only for referenced blocks; rebuild dedup in
        // ascending block order (deterministic candidate lists).
        let mut cache = PageCache::new(data, config.read_cache_pages);
        cache.data.retain(|b, _| refs.contains_key(b));
        if config.dedup {
            cache.rebuild_dedup();
        }

        Ok(ObjectStore {
            dev: RefCell::new(dev),
            config,
            sb,
            alloc,
            ckpts,
            head,
            live,
            pending_pages: HashMap::new(),
            pending_blobs: BTreeMap::new(),
            pending_new_objects: Vec::new(),
            pending_deleted: Vec::new(),
            pending_deltas: BTreeMap::new(),
            delta,
            cache: OrderedMutex::new(RANK_PAGE_CACHE, "page_cache", cache),
            stats: StoreStats::default(),
        })
    }

    /// The device (stats, fault injection in tests).
    pub fn device(&self) -> Ref<'_, dyn BlockDev> {
        Ref::map(self.dev.borrow(), |d| d.as_ref())
    }

    /// Mutable device access (fault injection in tests).
    pub fn device_mut(&mut self) -> &mut dyn BlockDev {
        self.dev.get_mut().as_mut()
    }

    /// First LBA of the data region (page extents live at and above
    /// this; everything below is superblocks, allocator and journal).
    pub fn data_start(&self) -> u64 {
        self.sb.data_start()
    }

    /// Data blocks currently referenced.
    pub fn blocks_in_use(&self) -> u64 {
        self.alloc.in_use()
    }

    /// Creates an object under a caller-chosen id (the SLS assigns ids so
    /// that checkpoint metadata can reference objects stably across
    /// machines).
    pub fn create_object(&mut self, oid: ObjId, size_pages: u64) -> Result<()> {
        if self.live.contains_key(&oid) {
            return Err(Error::already_exists(format!("object {}", oid.0)));
        }
        self.live.insert(
            oid,
            LiveObject {
                map: BTreeMap::new(),
                deltas: BTreeMap::new(),
                size_pages,
            },
        );
        self.pending_new_objects.push((oid, size_pages));
        Ok(())
    }

    /// True if the object exists in the live state.
    pub fn object_exists(&self, oid: ObjId) -> bool {
        self.live.contains_key(&oid)
    }

    /// Declared size (in pages) of a live object.
    pub fn object_size(&self, oid: ObjId) -> Result<u64> {
        Ok(self
            .live
            .get(&oid)
            .ok_or_else(|| Error::not_found(format!("object {}", oid.0)))?
            .size_pages)
    }

    /// Live object ids (optionally filtered to a namespace via the
    /// caller). Used by the SLS to prune superseded incarnations.
    pub fn live_object_ids(&self) -> Vec<ObjId> {
        let mut ids: Vec<ObjId> = self.live.keys().copied().collect();
        ids.sort();
        ids
    }

    /// Deletes an object from the live state (history stays readable
    /// through older checkpoints).
    pub fn delete_object(&mut self, oid: ObjId) -> Result<()> {
        let obj = self
            .live
            .remove(&oid)
            .ok_or_else(|| Error::not_found(format!("object {}", oid.0)))?;
        for (_, ptr) in obj.map {
            self.release_block(ptr);
        }
        // Pages written this epoch can never be read: drop their pending
        // delta entries. If the object was also born this epoch, it never
        // existed as far as the next checkpoint is concerned.
        self.pending_pages.retain(|(o, _), _| *o != oid);
        self.pending_deltas.retain(|(o, _), _| *o != oid);
        if let Some(pos) = self.pending_new_objects.iter().position(|(o, _)| *o == oid) {
            self.pending_new_objects.remove(pos);
        } else {
            self.pending_deleted.push(oid);
        }
        Ok(())
    }

    /// Clones `src` into a new object `dst` without copying any data:
    /// every page pointer is shared and reference counted — the substrate
    /// for SLSFS's zero-copy file/subtree clones and for `sls restore`
    /// images branching off a running application.
    pub fn clone_object(&mut self, src: ObjId, dst: ObjId) -> Result<()> {
        if self.live.contains_key(&dst) {
            return Err(Error::already_exists(format!("object {}", dst.0)));
        }
        let src_obj = self
            .live
            .get(&src)
            .ok_or_else(|| Error::not_found(format!("object {}", src.0)))?
            .clone();
        // Pages under a redo chain (committed overlay or staged this
        // epoch) can't be pointer-shared — the share would lose the
        // chain. Materialize those few into full pages for `dst`.
        let mut chained: std::collections::BTreeSet<u64> =
            src_obj.deltas.keys().copied().collect();
        chained.extend(
            self.pending_deltas
                .keys()
                .filter(|(o, _)| *o == src)
                .map(|(_, i)| *i),
        );
        let mut shared = src_obj.clone();
        shared.deltas.clear();
        shared.map.retain(|i, _| !chained.contains(i));
        for ptr in shared.map.values() {
            self.alloc.incref(*ptr);
        }
        for (idx, ptr) in shared.map.iter().map(|(i, p)| (*i, *p)) {
            self.pending_pages.insert((dst, idx), ptr);
        }
        self.pending_new_objects.push((dst, src_obj.size_pages));
        self.live.insert(dst, shared);
        for idx in chained {
            let page = self.read_page(src, idx)?.ok_or_else(|| {
                Error::internal(format!("chained page {}/{idx} vanished during clone", src.0))
            })?;
            self.write_page(dst, idx, &page)?;
        }
        Ok(())
    }

    fn release_block(&mut self, ptr: BlockPtr) {
        if self.alloc.decref(ptr) {
            self.cache.get_mut().evict(ptr);
        }
    }

    /// Writes one page of an object.
    ///
    /// Dedup hit: refcount bump, no device traffic. Miss: allocates a
    /// block and submits the 4 KiB payload asynchronously (the commit's
    /// flush barrier covers it).
    pub fn write_page(&mut self, oid: ObjId, idx: u64, page: &PageData) -> Result<()> {
        self.write_page_hashed(oid, idx, page, None)
    }

    /// Like [`ObjectStore::write_page`] with the content hash already
    /// computed — the parallel flush pipeline hashes pages off-thread
    /// before touching the store. `hash` is ignored when dedup is off
    /// and computed here when dedup is on but `None` was passed, so the
    /// resulting state never depends on which variant the caller used.
    pub fn write_page_hashed(
        &mut self,
        oid: ObjId,
        idx: u64,
        page: &PageData,
        hash: Option<u64>,
    ) -> Result<()> {
        if !self.live.contains_key(&oid) {
            return Err(Error::not_found(format!("object {}", oid.0)));
        }
        self.stats.pages_written += 1;
        let hash = if self.config.dedup {
            hash.or_else(|| Some(page.content_hash()))
        } else {
            None
        };
        let ptr = match self.find_dedup(page, hash) {
            Some(existing) => {
                self.alloc.incref(existing);
                self.stats.dedup_hits += 1;
                existing
            }
            None => {
                let ptr = self.alloc.alloc()?;
                if self.config.materialize_data {
                    let lba = self.sb.data_start() + ptr.0;
                    self.dev.get_mut().submit_write(lba, &page.materialize())?;
                } else {
                    self.dev.get_mut().submit_write_timing(BLOCK_SIZE as u64)?;
                }
                self.cache.get_mut().install(ptr, page, hash);
                ptr
            }
        };
        let obj = self
            .live
            .get_mut(&oid)
            .ok_or_else(|| Error::internal(format!("object {} vanished during write", oid.0)))?;
        let old = obj.map.insert(idx, ptr);
        // A full image truncates the page's redo chain.
        obj.deltas.remove(&idx);
        self.pending_deltas.remove(&(oid, idx));
        if let Some(old) = old {
            self.release_block(old);
        }
        self.pending_pages.insert((oid, idx), ptr);
        Ok(())
    }

    /// Writes a batch of pages, coalescing adjacent fresh blocks into
    /// extent-sized vectored device writes.
    ///
    /// Dedup decisions, allocations and live-map updates happen in plan
    /// order — exactly the sequence a `write_page` loop produces — so
    /// the resulting store state (and, for materialized stores, the
    /// device image) is identical to the serial path; only the shape of
    /// the device traffic changes. Fresh blocks then sort into runs of
    /// adjacent lbas, each submitted with one
    /// [`BlockDev::write_blocks`] extent of at most [`EXTENT_BLOCKS`].
    ///
    /// If an extent write fails, contents that never reached the
    /// platter are dropped from the page cache before the error
    /// surfaces, so no later dedup hit or cache read can serve bytes
    /// the medium does not hold. The checkpoint pipeline then aborts
    /// without committing and forces the next checkpoint full.
    pub fn write_pages_coalesced(&mut self, writes: &[PageWrite]) -> Result<()> {
        // Plan-order pass: dedup, allocation, live-map publication.
        let mut fresh: BTreeMap<u64, PageData> = BTreeMap::new();
        for w in writes {
            if !self.live.contains_key(&w.oid) {
                return Err(Error::not_found(format!("object {}", w.oid.0)));
            }
            self.stats.pages_written += 1;
            let hash = self.config.dedup.then_some(w.hash);
            let ptr = match self.find_dedup(&w.page, hash) {
                Some(existing) => {
                    self.alloc.incref(existing);
                    self.stats.dedup_hits += 1;
                    existing
                }
                None => {
                    let ptr = self.alloc.alloc()?;
                    self.cache.get_mut().install(ptr, &w.page, hash);
                    fresh.insert(ptr.0, w.page.clone());
                    ptr
                }
            };
            let obj = self
                .live
                .get_mut(&w.oid)
                .ok_or_else(|| {
                    Error::internal(format!("object {} vanished during write", w.oid.0))
                })?;
            let old = obj.map.insert(w.idx, ptr);
            // A full image truncates the page's redo chain.
            obj.deltas.remove(&w.idx);
            self.pending_deltas.remove(&(w.oid, w.idx));
            if let Some(old) = old {
                self.release_block(old);
            }
            self.pending_pages.insert((w.oid, w.idx), ptr);
        }
        // A block allocated for an early write can be released (and
        // even reallocated) by a later write in the same batch; only
        // blocks still referenced go to the device.
        fresh.retain(|&b, _| self.alloc.refs(BlockPtr(b)) > 0);

        // Extent pass: each run of adjacent blocks becomes one
        // vectored write.
        let blocks: Vec<u64> = fresh.keys().copied().collect();
        let mut i = 0usize;
        while let Some(&start) = blocks.get(i) {
            let mut len = 1usize;
            while len < EXTENT_BLOCKS
                && blocks.get(i + len).copied() == Some(start + len as u64)
            {
                len += 1;
            }
            if let Err(e) = self.write_extent(&fresh, start, len) {
                // Nothing from this run onward reached the platter:
                // drop the unbacked contents so the cache never claims
                // bytes the medium does not hold.
                for &b in blocks.iter().skip(i) {
                    self.cache.get_mut().evict(BlockPtr(b));
                }
                return Err(e);
            }
            self.stats.extents_coalesced += 1;
            self.stats.blocks_coalesced += len as u64;
            i += len;
        }
        Ok(())
    }

    /// Submits one run of adjacent fresh blocks as a vectored write.
    fn write_extent(
        &mut self,
        fresh: &BTreeMap<u64, PageData>,
        start: u64,
        len: usize,
    ) -> Result<()> {
        if self.config.materialize_data {
            let bufs: Vec<Vec<u8>> = (start..start + len as u64)
                .map(|b| {
                    fresh
                        .get(&b)
                        .map(PageData::materialize)
                        .ok_or_else(|| Error::internal(format!("extent block {b} missing")))
                })
                .collect::<Result<_>>()?;
            let refs: Vec<&[u8]> = bufs.iter().map(Vec::as_slice).collect();
            let lba = self.sb.data_start() + start;
            self.dev.get_mut().write_blocks(lba, &refs)?;
        } else {
            self.dev
                .get_mut()
                .submit_write_timing((len * BLOCK_SIZE) as u64)?;
        }
        Ok(())
    }

    fn find_dedup(&self, page: &PageData, hash: Option<u64>) -> Option<BlockPtr> {
        let h = hash?;
        let cache = self.cache.lock();
        for &cand in cache.dedup.candidates(h)? {
            if let Some(existing) = cache.data.get(&cand.0) {
                if existing.content_eq(page) {
                    return Some(cand);
                }
            }
        }
        None
    }

    /// The store's delta-vs-full policy: `(max dirty bytes, max chain
    /// length)`. `max_bytes == 0` means the delta path is disabled.
    pub fn delta_policy(&self) -> (u32, u32) {
        (self.config.delta_max_bytes, self.config.delta_max_chain)
    }

    /// Committed delta records currently live in the journal.
    pub fn delta_log_len(&self) -> usize {
        self.delta.len()
    }

    /// Encoded journal bytes of the live delta records.
    pub fn delta_log_bytes(&self) -> u64 {
        self.delta.bytes()
    }

    /// Whether a delta record may be staged for `(oid, idx)`: requires
    /// the delta path enabled and a live base image to chain onto.
    /// Returns the page's current chain length (0 = no chain yet) so
    /// the caller can apply the `delta_max_chain` bound.
    pub fn can_delta(&self, oid: ObjId, idx: u64) -> Option<u32> {
        if self.config.delta_max_bytes == 0 {
            return None;
        }
        let obj = self.live.get(&oid)?;
        if let Some(rec) = self.pending_deltas.get(&(oid, idx)) {
            return Some(rec.chain_len);
        }
        if let Some(&head) = obj.deltas.get(&idx) {
            return self.delta.chain_len(head).ok();
        }
        obj.map.get(&idx).map(|_| 0)
    }

    /// Stages a sub-page delta for the next commit: `runs` are the dirty
    /// `(offset, len)` byte ranges of `page` (the page's complete new
    /// contents). The record chains onto the page's current state —
    /// caller must have checked [`ObjectStore::can_delta`].
    ///
    /// No device write happens here: the record rides in the commit's
    /// journal payload, so its durability ordering is the sealed
    /// journal's (the same typestate-checked path as the checkpoint
    /// metadata itself).
    pub fn stage_delta(
        &mut self,
        oid: ObjId,
        idx: u64,
        page: &PageData,
        runs: &[(u32, u32)],
    ) -> Result<()> {
        let mut extents = Vec::with_capacity(runs.len());
        for &(off, len) in runs {
            if off as usize + len as usize > BLOCK_SIZE || len == 0 {
                return Err(Error::invalid(format!(
                    "dirty run {off}+{len} outside the page"
                )));
            }
            let mut buf = vec![0u8; len as usize];
            page.read(off as usize, &mut buf);
            extents.push((off, buf));
        }
        self.stats.pages_written += 1;
        // Fold into an already-staged record for this page: extents
        // apply in order, so appending preserves last-writer-wins.
        if let Some(rec) = self.pending_deltas.get_mut(&(oid, idx)) {
            rec.extents.extend(extents);
            return Ok(());
        }
        let obj = self
            .live
            .get(&oid)
            .ok_or_else(|| Error::not_found(format!("object {}", oid.0)))?;
        let (base, prev, chain_len) = if let Some(&head) = obj.deltas.get(&idx) {
            let head_rec = self.delta.get(head).ok_or_else(|| {
                Error::corrupt(format!("delta head {head} missing from log"))
            })?;
            (head_rec.base, Some(head), head_rec.chain_len + 1)
        } else if let Some(&ptr) = obj.map.get(&idx) {
            (ptr, None, 1)
        } else {
            return Err(Error::invalid(format!(
                "delta for {}/{idx} without a base image",
                oid.0
            )));
        };
        self.pending_deltas.insert(
            (oid, idx),
            DeltaRecord {
                oid,
                idx,
                epoch: self.sb.next_ckpt,
                base,
                prev,
                chain_len,
                extents,
            },
        );
        Ok(())
    }

    /// Materializes a page by replaying the chain ending at `head` over
    /// its base image. Charges one base-block read.
    pub fn apply_chain(&self, base: &PageData, head: Lsn) -> Result<PageData> {
        self.delta.materialize(base, head)
    }

    /// Materializes one resolved page reference.
    pub(crate) fn materialize_ref(&self, r: PageRef) -> Result<PageData> {
        match r {
            PageRef::Full(ptr) => self.fetch_block(ptr),
            PageRef::Delta(lsn) => {
                let base = self
                    .delta
                    .get(lsn)
                    .ok_or_else(|| {
                        Error::corrupt(format!("delta head {lsn} missing from log"))
                    })?
                    .base;
                let base_page = self.fetch_block(base)?;
                self.delta.materialize(&base_page, lsn)
            }
        }
    }

    /// Reads a page from the live state, charging device time.
    pub fn read_page(&self, oid: ObjId, idx: u64) -> Result<Option<PageData>> {
        let obj = self
            .live
            .get(&oid)
            .ok_or_else(|| Error::not_found(format!("object {}", oid.0)))?;
        // A record staged this epoch is the newest state: its chain (if
        // any) replays first, then its own extents.
        if let Some(rec) = self.pending_deltas.get(&(oid, idx)) {
            let base_page = self.fetch_block(rec.base)?;
            let chained = match rec.prev {
                Some(prev) => self.delta.materialize(&base_page, prev)?,
                None => base_page,
            };
            return Ok(Some(rec.apply(&chained)));
        }
        if let Some(&head) = obj.deltas.get(&idx) {
            return self.materialize_ref(PageRef::Delta(head)).map(Some);
        }
        match obj.map.get(&idx) {
            Some(&p) => self.fetch_block(p).map(Some),
            None => Ok(None),
        }
    }

    /// Reads a page as of a checkpoint, charging device time. Pages
    /// under a redo chain are materialized (base image + chain replay).
    pub fn read_page_at(&self, ckpt: CkptId, oid: ObjId, idx: u64) -> Result<Option<PageData>> {
        match checkpoint::resolve_ref(&self.ckpts, ckpt, oid, idx) {
            Some(r) => self.materialize_ref(r).map(Some),
            None => Ok(None),
        }
    }

    /// True if the live state holds a page at `(oid, idx)` (no charge).
    pub fn has_page(&self, oid: ObjId, idx: u64) -> bool {
        self.pending_deltas.contains_key(&(oid, idx))
            || self.live.get(&oid).is_some_and(|obj| {
                obj.map.contains_key(&idx) || obj.deltas.contains_key(&idx)
            })
    }

    /// True if checkpoint `ckpt` resolves a page at `(oid, idx)`.
    pub fn has_page_at(&self, ckpt: CkptId, oid: ObjId, idx: u64) -> bool {
        checkpoint::resolve_ref(&self.ckpts, ckpt, oid, idx).is_some()
    }

    fn fetch_block(&self, ptr: BlockPtr) -> Result<PageData> {
        // One lock hold covers lookup, the medium fill-in, and the
        // read-cache touch, so a concurrent batched restore can never
        // observe a half-installed block.
        let mut cache = self.cache.lock();
        if let Some(page) = cache.data.get(&ptr.0).cloned() {
            let hash = cache.block_hash.get(&ptr.0).copied();
            cache.read.admit(ptr.0, hash);
            drop(cache);
            self.dev.borrow_mut().charge_read_timing(BLOCK_SIZE as u64)?;
            return Ok(page);
        }
        if self.config.materialize_data {
            let lba = self.sb.data_start() + ptr.0;
            let mut buf = vec![0u8; BLOCK_SIZE];
            self.dev.borrow_mut().read(lba, &mut buf)?;
            let page = PageData::from_bytes(&buf);
            let hash = if self.config.dedup {
                Some(page.content_hash())
            } else {
                None
            };
            cache.install(ptr, &page, hash);
            cache.read.admit(ptr.0, hash);
            return Ok(page);
        }
        Err(Error::corrupt(format!(
            "block {} has no recoverable contents",
            ptr.0
        )))
    }

    /// Resolves a set of `(object, page)` targets as of a checkpoint
    /// into a batched read plan: per-target block pointers, the unique
    /// block set (dedup-shared blocks once), and runs of adjacent
    /// blocks coalesced into extents of at most [`EXTENT_BLOCKS`].
    pub fn plan_reads_at(&self, ckpt: CkptId, targets: &[(ObjId, u64)]) -> ReadPlan {
        let mut resolved = Vec::with_capacity(targets.len());
        let mut chains = Vec::with_capacity(targets.len());
        let mut uniq = std::collections::BTreeSet::new();
        for &(oid, idx) in targets {
            // A chained page plans a read of its *base* block — chain
            // replay happens after the batched fetch, and twin bases
            // are still read once and fanned out.
            let (ptr, head) = match checkpoint::resolve_ref(&self.ckpts, ckpt, oid, idx) {
                Some(PageRef::Full(p)) => (Some(p), None),
                Some(PageRef::Delta(lsn)) => (
                    self.delta.get(lsn).map(|rec| rec.base),
                    Some(lsn),
                ),
                None => (None, None),
            };
            if let Some(p) = ptr {
                uniq.insert(p.0);
            }
            resolved.push(ptr);
            chains.push(head);
        }
        let blocks: Vec<u64> = uniq.into_iter().collect();
        let mut extents = Vec::new();
        let mut i = 0usize;
        while let Some(&start) = blocks.get(i) {
            let mut len = 1usize;
            while len < EXTENT_BLOCKS
                && blocks.get(i + len).copied() == Some(start + len as u64)
            {
                len += 1;
            }
            extents.push((i, len));
            i += len;
        }
        ReadPlan {
            resolved,
            chains,
            blocks,
            extents,
        }
    }

    /// Executes a read plan: probes the bounded read cache per block,
    /// issues one vectored device read per extent that missed, and
    /// returns contents for every planned block.
    ///
    /// Charging: an all-hit extent costs [`RESTORE_CACHE_HIT_NS`] per
    /// block (index probe + frame adoption); an extent with any miss
    /// charges one vectored read — a single access latency amortized
    /// over the run. Materialized reads are verified against the
    /// recorded content hashes; damaged bytes get exactly one re-read
    /// (transient electronics) before the plan aborts with
    /// `ErrorKind::Corrupt`, leaving the store intact.
    pub fn execute_read_plan(&mut self, plan: &ReadPlan) -> Result<ReadOutcome> {
        let mut out = ReadOutcome::default();
        for &(off, len) in &plan.extents {
            let Some(run) = plan.blocks.get(off..off + len) else {
                return Err(Error::invalid("read plan extent out of range"));
            };
            let run = run.to_vec();
            self.read_extent(&run, &mut out)?;
        }
        self.stats.read_cache_hits += out.cache_hits;
        self.stats.read_cache_misses += out.cache_misses;
        self.stats.read_cache_content_hits += out.content_hits;
        Ok(out)
    }

    /// Reads one extent run (adjacent ascending blocks) for
    /// [`ObjectStore::execute_read_plan`].
    fn read_extent(&mut self, run: &[u64], out: &mut ReadOutcome) -> Result<()> {
        let Some(&start) = run.first() else {
            return Ok(());
        };
        let mut missed = false;
        {
            let mut cache = self.cache.lock();
            for &b in run {
                match cache.probe_read(b) {
                    ReadProbe::Hit(page) => {
                        out.cache_hits += 1;
                        out.pages.insert(b, page);
                    }
                    ReadProbe::ContentHit(page) => {
                        out.cache_hits += 1;
                        out.content_hits += 1;
                        out.pages.insert(b, page);
                    }
                    ReadProbe::Miss => {
                        out.cache_misses += 1;
                        missed = true;
                    }
                }
            }
        }
        if !missed {
            let dur = SimDuration::from_nanos(RESTORE_CACHE_HIT_NS * run.len() as u64);
            self.dev.borrow().clock().charge(dur);
            return Ok(());
        }
        // Any miss reads the whole run: the vectored request covers the
        // extent either way, and hits in it ride along for free.
        out.extents_read += 1;
        self.stats.read_extents_coalesced += 1;
        self.stats.read_blocks_coalesced += run.len() as u64;
        if self.config.materialize_data {
            let lba = self.sb.data_start() + start;
            let mut bufs = vec![vec![0u8; BLOCK_SIZE]; run.len()];
            self.dev.get_mut().read_blocks(lba, &mut bufs)?;
            if self.extent_hash_mismatch(run, &bufs) {
                // Damaged bytes came back. One re-read gives transient
                // electronics the benefit of the doubt; damaged media
                // re-reads identically, and then a mirror twin gets a
                // chance to heal the damaged copy (read-repair) before
                // the restore aborts with the committed store untouched.
                let mut again = vec![vec![0u8; BLOCK_SIZE]; run.len()];
                self.dev.get_mut().read_blocks(lba, &mut again)?;
                if self.extent_hash_mismatch(run, &again)
                    && !self.repair_extent(run, &mut again)?
                {
                    return Err(Error::corrupt(format!(
                        "extent at block {start}: content hash mismatch on read"
                    )));
                }
                bufs = again;
            }
            let mut cache = self.cache.lock();
            for (&b, buf) in run.iter().zip(&bufs) {
                if out.pages.contains_key(&b) {
                    continue; // probe already served it
                }
                let page = PageData::from_bytes(buf);
                cache.data.insert(b, page.clone());
                let hash = cache.block_hash.get(&b).copied();
                cache.read.admit(b, hash);
                out.fetched.push(b);
                out.pages.insert(b, page);
            }
        } else {
            {
                let mut cache = self.cache.lock();
                for &b in run {
                    if out.pages.contains_key(&b) {
                        continue;
                    }
                    let Some(page) = cache.data.get(&b).cloned() else {
                        return Err(Error::corrupt(format!(
                            "block {b} has no recoverable contents"
                        )));
                    };
                    let hash = cache.block_hash.get(&b).copied();
                    cache.read.admit(b, hash);
                    out.fetched.push(b);
                    out.pages.insert(b, page);
                }
            }
            self.dev
                .get_mut()
                .charge_read_timing((run.len() * BLOCK_SIZE) as u64)?;
        }
        Ok(())
    }

    /// Read-repair: asks the device layer to heal every block in `run`
    /// whose bytes in `bufs` fail content-hash verification, patching
    /// the healed bytes back into `bufs`. Returns `true` only if every
    /// damaged block was repaired from a verified twin copy (a device
    /// without redundancy repairs nothing and returns `false`).
    fn repair_extent(&mut self, run: &[u64], bufs: &mut [Vec<u8>]) -> Result<bool> {
        // (position in run, block id, expected hash) of damaged blocks.
        let damaged: Vec<(usize, u64, u64)> = {
            let cache = self.cache.lock();
            run.iter()
                .zip(bufs.iter())
                .enumerate()
                .filter_map(|(i, (&b, buf))| {
                    cache.block_hash.get(&b).and_then(|&h| {
                        (PageData::from_bytes(buf).content_hash() != h).then_some((i, b, h))
                    })
                })
                .collect()
        };
        for (i, b, expect) in damaged {
            let lba = self.sb.data_start() + b;
            self.stats
                .repair_path_entries
                .set(self.stats.repair_path_entries.get() + 1);
            let golden = self
                .dev
                .get_mut()
                .repair_block(lba, &mut |bytes: &[u8]| {
                    PageData::from_bytes(bytes).content_hash() == expect
                })?;
            let Some(golden) = golden else {
                return Ok(false);
            };
            if let Some(slot) = bufs.get_mut(i) {
                *slot = golden;
            }
            self.stats.read_repairs += 1;
        }
        Ok(true)
    }

    /// True if any block in `run` whose content hash is recorded came
    /// back from the medium with different bytes.
    fn extent_hash_mismatch(&self, run: &[u64], bufs: &[Vec<u8>]) -> bool {
        let cache = self.cache.lock();
        run.iter().zip(bufs).any(|(&b, buf)| {
            cache
                .block_hash
                .get(&b)
                .is_some_and(|&h| PageData::from_bytes(buf).content_hash() != h)
        })
    }

    /// Records content hashes computed by the restore pipeline's
    /// parallel hash stage for blocks a read plan fetched: they feed
    /// the read cache's content index (and, for stores without a
    /// write-time hash record, the per-block reverse index the
    /// corruption check and content probes rely on).
    pub fn note_read_hashes(&mut self, pairs: &[(u64, u64)]) {
        let cache = self.cache.get_mut();
        for &(block, h) in pairs {
            cache.block_hash.entry(block).or_insert(h);
            cache.read.set_hash(block, h);
        }
    }

    /// Sets the bounded read cache's capacity in pages (0 disables it),
    /// evicting down if needed.
    pub fn set_read_cache_capacity(&mut self, pages: usize) {
        self.config.read_cache_pages = pages;
        self.cache.get_mut().read.set_capacity(pages);
    }

    /// The bounded read cache's capacity in pages.
    pub fn read_cache_capacity(&self) -> usize {
        self.config.read_cache_pages
    }

    /// Current read-cache occupancy in pages.
    pub fn read_cache_len(&self) -> usize {
        self.cache.lock().read.len()
    }

    /// Lifetime read-cache evictions (capacity pressure).
    pub fn read_cache_evictions(&self) -> u64 {
        self.cache.lock().read.evictions
    }

    /// Drops the read cache alone — the cold-start state for a
    /// measurement run. Contents and indices are untouched.
    pub fn clear_read_cache(&mut self) {
        self.cache.get_mut().read.clear();
    }

    /// Drops every cached page body and the read cache, forcing
    /// subsequent reads back to the medium — the state after an image
    /// lands on a machine that has never run it. Only materialized
    /// stores can re-read contents; for timing-only stores the page
    /// table *is* the medium, so dropping it would destroy data.
    ///
    /// Recorded content hashes and the dedup index survive: the hashes
    /// are the read path's corruption check, and the index entries go
    /// inert until their blocks are re-read.
    pub fn drop_caches(&mut self) -> Result<()> {
        if !self.config.materialize_data {
            return Err(Error::unsupported(
                "drop_caches requires materialized data; the page table is the only copy",
            ));
        }
        let cache = self.cache.get_mut();
        cache.data.clear();
        cache.read.clear();
        Ok(())
    }

    /// The live page map of an object (restore / export walks).
    pub fn object_map(&self, oid: ObjId) -> Result<Vec<(u64, BlockPtr)>> {
        Ok(self
            .live
            .get(&oid)
            .ok_or_else(|| Error::not_found(format!("object {}", oid.0)))?
            .map
            .iter()
            .map(|(i, p)| (*i, *p))
            .collect())
    }

    /// The effective page map of an object at a checkpoint, each page a
    /// full image or a delta-chain head (materialize the latter with
    /// [`ObjectStore::read_page_at`] or [`ObjectStore::apply_chain`]).
    pub fn object_refs_at(&self, ckpt: CkptId, oid: ObjId) -> Vec<(u64, PageRef)> {
        checkpoint::effective_refs(&self.ckpts, ckpt, oid)
            .into_iter()
            .collect()
    }

    /// Stages a metadata blob for the next checkpoint.
    pub fn put_blob(&mut self, key: &str, bytes: Vec<u8>) {
        self.pending_blobs.insert(key.to_string(), bytes);
    }

    /// Reads a blob as of a checkpoint, charging device time for its
    /// size (blobs live in journal blocks).
    pub fn get_blob(&self, ckpt: CkptId, key: &str) -> Result<Option<Vec<u8>>> {
        let found = checkpoint::resolve_blob(&self.ckpts, ckpt, key).map(<[u8]>::to_vec);
        if let Some(v) = &found {
            self.dev
                .borrow_mut()
                .charge_read_timing(v.len().div_ceil(BLOCK_SIZE) as u64 * BLOCK_SIZE as u64)?;
        }
        Ok(found)
    }

    /// Finds the blob key with `suffix` written *nearest* to `ckpt` in
    /// its chain (the checkpoint's own delta first, then ancestors).
    ///
    /// This is how a restore locates the manifest of the group that
    /// committed a checkpoint when several groups share one store: each
    /// group's checkpoint carries its own manifest in its delta, while
    /// chain-visible blobs of *other* groups sit in unrelated ancestors.
    pub fn nearest_blob_key(&self, ckpt: CkptId, suffix: &str) -> Option<String> {
        let mut cur = Some(ckpt);
        while let Some(c) = cur {
            let ck = self.ckpts.get(&c.0)?;
            let mut hits: Vec<&String> =
                ck.blobs.keys().filter(|k| k.ends_with(suffix)).collect();
            hits.sort();
            if let Some(k) = hits.first() {
                return Some((*k).clone());
            }
            cur = ck.parent;
        }
        None
    }

    /// Blob keys visible at a checkpoint with a given prefix.
    pub fn blob_keys_at(&self, ckpt: CkptId, prefix: &str) -> Vec<String> {
        let mut keys = std::collections::BTreeSet::new();
        let mut cur = Some(ckpt);
        while let Some(c) = cur {
            let Some(ck) = self.ckpts.get(&c.0) else { break };
            for k in ck.blobs.keys() {
                if k.starts_with(prefix) {
                    keys.insert(k.clone());
                }
            }
            cur = ck.parent;
        }
        keys.into_iter().collect()
    }

    /// Commits the pending delta as a checkpoint.
    ///
    /// Returns the checkpoint id and the virtual instant at which it is
    /// durable. The caller's clock is *not* advanced to that instant.
    ///
    /// Failure atomicity: the pending delta, refcounts and checkpoint
    /// table are only mutated after every device write has succeeded. A
    /// commit that fails mid-flush (transient fault, dead device) leaves
    /// the store exactly as it was — still consistent, still holding the
    /// staged delta — so the caller can retry or abandon it.
    pub fn commit(&mut self, name: Option<&str>) -> Result<(CkptId, SimTime)> {
        let txn = self.begin_txn();
        self.commit_txn(txn, name)
    }

    /// [`ObjectStore::commit`] with a caller-minted [`DirtyTxn`] — the
    /// entry point for paths (stream import, replication apply) that
    /// open the transaction before staging their writes, so the token
    /// witnesses the whole mutation, not just its tail.
    pub fn commit_txn(
        &mut self,
        txn: crate::txn::DirtyTxn,
        name: Option<&str>,
    ) -> Result<(CkptId, SimTime)> {
        let id = CkptId(self.sb.next_ckpt);
        // Assign LSNs to the staged delta records in key order (the
        // staging map is a BTreeMap, so the order — and therefore the
        // journal image — is deterministic across worker counts).
        let mut new_records: Vec<(Lsn, DeltaRecord)> = Vec::new();
        let mut delta_heads: HashMap<(ObjId, u64), Lsn> = HashMap::new();
        let mut lsn = self.delta.next_lsn();
        for (&key, rec) in &self.pending_deltas {
            delta_heads.insert(key, lsn);
            new_records.push((lsn, rec.clone()));
            lsn += 1;
        }
        let ck = Checkpoint {
            id,
            parent: self.head,
            name: name.map(str::to_string),
            new_objects: self.pending_new_objects.clone(),
            deleted_objects: self.pending_deleted.clone(),
            pages: self.pending_pages.clone(),
            deltas: delta_heads,
            blobs: self.pending_blobs.clone(),
            durable_at: SimTime::ZERO,
        };

        let bytes = journal::encode_record(&JournalRecord::Commit(ck.clone(), new_records.clone()));
        let journal_capacity = self.sb.journal_half_blocks() * BLOCK_SIZE as u64;
        if self.sb.journal_used + bytes.len() as u64 > journal_capacity {
            self.compact()?;
            if self.sb.journal_used + bytes.len() as u64 > journal_capacity {
                return Err(Error::no_space("journal cannot hold this checkpoint"));
            }
        }
        let lba = self.sb.journal_base + self.sb.journal_used / BLOCK_SIZE as u64;
        let sealed = self.seal_journal(txn, &[(lba, &bytes)])?;
        let barrier = self.extent_barrier(sealed)?;
        // The record is on the platter; account for it only now so a
        // failed attempt rewrites the same journal offset on retry.
        self.stats.bytes_journaled += bytes.len() as u64;
        self.sb.journal_used += bytes.len() as u64;
        self.sb.next_ckpt += 1;

        let (_committed, durable) = match self.flip_superblock(barrier) {
            Ok(done) => done,
            Err(flip) => {
                if !flip.submitted {
                    // The record sits in the journal but no durable
                    // superblock covers it; roll the in-memory geometry
                    // back so a retried commit overwrites it.
                    self.stats.bytes_journaled -= bytes.len() as u64;
                    self.sb.journal_used -= bytes.len() as u64;
                    self.sb.next_ckpt -= 1;
                }
                return Err(flip.error);
            }
        };

        // Every write landed: consume the pending delta and publish.
        self.pending_new_objects.clear();
        self.pending_deleted.clear();
        self.pending_pages.clear();
        self.pending_blobs.clear();
        self.pending_deltas.clear();
        // Checkpoint references on every delta block.
        for ptr in ck.pages.values() {
            self.alloc.incref(*ptr);
        }
        // The sealed journal record is durable: the delta records are
        // committed, and the live overlay now reads through them.
        for (l, rec) in new_records {
            self.stats.delta_records += 1;
            self.stats.delta_bytes += rec.encoded_len() as u64;
            self.stats.chain_len_max = self.stats.chain_len_max.max(rec.chain_len as u64);
            let key_idx = (rec.oid, rec.idx);
            self.delta.insert(l, rec)?;
            if let Some(obj) = self.live.get_mut(&key_idx.0) {
                obj.deltas.insert(key_idx.1, l);
            }
        }
        let mut ck = ck;
        ck.durable_at = durable;
        self.ckpts.insert(id.0, ck);
        self.head = Some(id);
        self.stats.commits += 1;
        Ok((id, durable))
    }

    /// Rewrites the checkpoint table as one snapshot record, resetting
    /// the journal.
    ///
    /// Crash safety: the snapshot lands in the *idle* journal half and
    /// only the subsequent superblock write switches halves. A power cut
    /// at any point leaves a durable superblock pointing at an intact
    /// journal — either the old records or the complete snapshot, never
    /// a half-overwritten mix.
    fn compact(&mut self) -> Result<()> {
        let txn = self.begin_txn();
        let list: Vec<Checkpoint> = self.ckpts.values().cloned().collect();
        // The snapshot carries every still-reachable delta record: "the
        // log is the checkpoint", so compaction must not orphan chains
        // that committed checkpoints still replay through.
        let records: Vec<(Lsn, DeltaRecord)> =
            self.delta.iter().map(|(l, r)| (l, r.clone())).collect();
        let bytes = journal::encode_record(&JournalRecord::Snapshot(list, records));
        let capacity = self.sb.journal_half_blocks() * BLOCK_SIZE as u64;
        // Snapshot + one guard block + room to grow.
        if bytes.len() as u64 + BLOCK_SIZE as u64 > capacity {
            return Err(Error::no_space("journal too small for metadata snapshot"));
        }
        let base = self.sb.journal_other_half();
        // A zero guard block stops recovery from replaying stale records
        // that happen to align after the snapshot.
        let guard_lba = base + (bytes.len() / BLOCK_SIZE) as u64;
        let guard = vec![0u8; BLOCK_SIZE];
        let sealed = self.seal_journal(txn, &[(base, &bytes), (guard_lba, &guard)])?;
        let barrier = self.extent_barrier(sealed)?;
        let (old_base, old_used) = (self.sb.journal_base, self.sb.journal_used);
        self.sb.journal_base = base;
        self.sb.journal_used = bytes.len() as u64;
        let (_committed, done) = match self.flip_superblock(barrier) {
            Ok(done) => done,
            Err(flip) => {
                if !flip.submitted {
                    // The snapshot sits in the idle half but no durable
                    // superblock points at it; keep describing the old
                    // half so a retry rewrites the snapshot.
                    self.sb.journal_base = old_base;
                    self.sb.journal_used = old_used;
                }
                return Err(flip.error);
            }
        };
        self.dev.get_mut().clock().advance_to(done);
        self.stats.compactions += 1;
        Ok(())
    }

    /// Garbage-collects a checkpoint in place: still-needed pointers move
    /// to its sole child (metadata only), the rest are released.
    pub fn delete_checkpoint(&mut self, id: CkptId) -> Result<()> {
        if self.head == Some(id) {
            return Err(Error::invalid("cannot GC the head checkpoint"));
        }
        let dropped = journal::apply_delete(&mut self.ckpts, id)?;
        for ptr in dropped {
            self.release_block(ptr);
        }
        // The merge may have dropped delta heads; chain segments no
        // surviving head reaches are dead. Prune before any compaction
        // below snapshots the log.
        let mut heads: Vec<Lsn> = self
            .ckpts
            .values()
            .flat_map(|c| c.deltas.values().copied())
            .collect();
        // Live overlay heads are always covered by a committed
        // checkpoint's heads, but root the walk on them too so a
        // bookkeeping slip can only leak, never dangle.
        heads.extend(self.live.values().flat_map(|o| o.deltas.values().copied()));
        heads.extend(self.pending_deltas.values().filter_map(|r| r.prev));
        self.delta.prune(heads);
        let bytes = journal::encode_record(&JournalRecord::Delete(id));
        let capacity = self.sb.journal_half_blocks() * BLOCK_SIZE as u64;
        if self.sb.journal_used + bytes.len() as u64 > capacity {
            self.compact()?;
            // The compacted snapshot already reflects the deletion.
            self.stats.gc_runs += 1;
            return Ok(());
        }
        let txn = self.begin_txn();
        let lba = self.sb.journal_base + self.sb.journal_used / BLOCK_SIZE as u64;
        let sealed = self.seal_journal(txn, &[(lba, &bytes)])?;
        let barrier = self.extent_barrier(sealed)?;
        self.sb.journal_used += bytes.len() as u64;
        let (_committed, done) = match self.flip_superblock(barrier) {
            Ok(done) => done,
            Err(flip) => {
                if !flip.submitted {
                    self.sb.journal_used -= bytes.len() as u64;
                }
                return Err(flip.error);
            }
        };
        self.dev.get_mut().clock().advance_to(done);
        self.stats.gc_runs += 1;
        Ok(())
    }

    /// Issues an ordered flush barrier against the device and waits for
    /// it — the extra data/metadata ordering point a filesystem fsync
    /// pays that Aurora's log flush does not.
    pub fn barrier_flush(&mut self) -> Result<()> {
        let dev = self.dev.get_mut();
        let done = dev.flush()?;
        dev.clock().advance_to(done);
        Ok(())
    }

    /// All committed checkpoints, oldest first.
    pub fn checkpoints(&self) -> Vec<&Checkpoint> {
        self.ckpts.values().collect()
    }

    /// Looks up one checkpoint.
    pub fn checkpoint(&self, id: CkptId) -> Result<&Checkpoint> {
        self.ckpts
            .get(&id.0)
            .ok_or_else(|| Error::not_found(format!("checkpoint {}", id.0)))
    }

    /// Finds a checkpoint by name (newest match).
    pub fn checkpoint_by_name(&self, name: &str) -> Option<&Checkpoint> {
        self.ckpts
            .values()
            .rev()
            .find(|c| c.name.as_deref() == Some(name))
    }

    /// The most recent checkpoint.
    pub fn head(&self) -> Option<CkptId> {
        self.head
    }

    /// Objects visible at a checkpoint (born in its chain, not deleted
    /// by a newer chain entry).
    fn objects_at(&self, ckpt: CkptId) -> Result<Vec<ObjId>> {
        let mut objects: Vec<ObjId> = Vec::new();
        let mut dead: Vec<ObjId> = Vec::new();
        let mut chain = Vec::new();
        let mut cur = Some(ckpt);
        while let Some(c) = cur {
            let ck = self.checkpoint(c)?;
            chain.push(c);
            cur = ck.parent;
        }
        for c in chain.iter().rev() {
            let ck = self.checkpoint(*c)?;
            for oid in &ck.deleted_objects {
                dead.push(*oid);
            }
            for (oid, _) in &ck.new_objects {
                if !dead.contains(oid) {
                    objects.push(*oid);
                }
            }
        }
        Ok(objects)
    }

    /// Logical (uncompressed) size of a checkpoint's chain-merged state:
    /// what actually crosses a wire when the image moves, regardless of
    /// how compactly pages encode. Pages count 4 KiB each.
    pub fn logical_size(&self, ckpt: CkptId) -> Result<u64> {
        let mut total = 0u64;
        for oid in self.objects_at(ckpt)? {
            total += self.object_refs_at(ckpt, oid).len() as u64 * BLOCK_SIZE as u64;
        }
        for key in self.blob_keys_at(ckpt, "") {
            if let Some(v) = checkpoint::resolve_blob(&self.ckpts, ckpt, &key) {
                total += v.len() as u64;
            }
        }
        Ok(total)
    }

    /// Logical size of one checkpoint's *delta* alone. A delta-chained
    /// page counts a full 4 KiB: materialized, that is what crosses a
    /// wire (a key in both maps — post-GC-merge — counts once).
    pub fn delta_logical_size(&self, ckpt: CkptId) -> Result<u64> {
        let ck = self.checkpoint(ckpt)?;
        let chained_only = ck
            .deltas
            .keys()
            .filter(|k| !ck.pages.contains_key(k))
            .count() as u64;
        Ok((ck.pages.len() as u64 + chained_only) * BLOCK_SIZE as u64
            + ck.blobs.values().map(|v| v.len() as u64).sum::<u64>())
    }

    /// Audits the store's invariants (an online `fsck`):
    ///
    /// * every block referenced by a checkpoint delta or a live map is
    ///   allocated, and its refcount equals the number of referents;
    /// * no allocated block is unreachable (a space leak);
    /// * every reachable block has recoverable contents;
    /// * every checkpoint's parent link resolves.
    ///
    /// Returns the list of violations (empty = healthy). Used by tests
    /// after crash-recovery sweeps and exposed through `sls info`.
    pub fn fsck(&self) -> Vec<String> {
        let mut problems = Vec::new();
        let mut expected: HashMap<u64, u32> = HashMap::new();
        for ck in self.ckpts.values() {
            for ptr in ck.pages.values() {
                *expected.entry(ptr.0).or_insert(0) += 1;
            }
            if let Some(parent) = ck.parent {
                if !self.ckpts.contains_key(&parent.0) {
                    problems.push(format!(
                        "checkpoint {} has dangling parent {}",
                        ck.id.0, parent.0
                    ));
                }
            }
        }
        for obj in self.live.values() {
            for ptr in obj.map.values() {
                *expected.entry(ptr.0).or_insert(0) += 1;
            }
        }
        // Pending (uncommitted) deltas will incref at commit; they do not
        // add to the current expected counts.
        for (&block, &refs) in &expected {
            let actual = self.alloc.refs(BlockPtr(block));
            if actual != refs {
                problems.push(format!(
                    "block {block}: refcount {actual}, {refs} referents"
                ));
            }
            if !self.cache.lock().data.contains_key(&block) && !self.config.materialize_data {
                problems.push(format!("block {block}: contents unrecoverable"));
            }
        }
        if self.alloc.in_use() != expected.len() as u64 {
            problems.push(format!(
                "space leak: {} blocks allocated, {} reachable",
                self.alloc.in_use(),
                expected.len()
            ));
        }
        // Delta-log invariants: every head a checkpoint or live overlay
        // names must walk to its base without a dangling prev link, each
        // chain's base block must itself be reachable, and no record may
        // survive in the log without a head rooting it (a log leak).
        let mut reachable: HashSet<Lsn> = HashSet::new();
        let heads = self
            .ckpts
            .values()
            .flat_map(|c| c.deltas.iter().map(|(k, l)| (*k, *l)))
            .chain(self.live.iter().flat_map(|(&oid, o)| {
                o.deltas.iter().map(move |(&idx, &l)| ((oid, idx), l))
            }));
        for ((oid, idx), head) in heads {
            match self.delta.chain(head) {
                Ok(chain) => {
                    for rec in &chain {
                        if rec.oid != oid || rec.idx != idx {
                            problems.push(format!(
                                "delta lsn {head}: chain record keyed ({}, {}), \
                                 head keyed ({}, {idx})",
                                rec.oid.0, rec.idx, oid.0
                            ));
                        }
                    }
                    if let Some(base) = chain.first() {
                        if !expected.contains_key(&base.base.0) {
                            problems.push(format!(
                                "object {} page {idx}: delta chain base block {} \
                                 not referenced by any checkpoint or live map",
                                oid.0, base.base.0
                            ));
                        }
                    }
                    let mut cur = Some(head);
                    while let Some(l) = cur {
                        reachable.insert(l);
                        cur = self.delta.get(l).and_then(|r| r.prev);
                    }
                }
                Err(e) => problems.push(format!(
                    "object {} page {idx}: delta chain at lsn {head} broken: {e}",
                    oid.0
                )),
            }
        }
        for (lsn, _) in self.delta.iter() {
            if !reachable.contains(&lsn) {
                problems.push(format!("delta log leak: lsn {lsn} unreachable"));
            }
        }
        problems
    }

    /// True if an uncommitted delta is staged (pages, blobs, object
    /// births or deletions since the last commit).
    pub fn has_pending(&self) -> bool {
        !self.pending_pages.is_empty()
            || !self.pending_blobs.is_empty()
            || !self.pending_new_objects.is_empty()
            || !self.pending_deleted.is_empty()
            || !self.pending_deltas.is_empty()
    }

    /// Discards the staged (uncommitted) delta and rebuilds live maps,
    /// refcounts and dedup state from the committed chain — the
    /// store-side half of aborting a failed checkpoint.
    ///
    /// Afterwards the store is indistinguishable from one freshly
    /// recovered at the current head: [`ObjectStore::fsck`] is clean and
    /// every committed checkpoint restores. Callers that share the store
    /// with live clients holding uncommitted state (SLSFS file writes on
    /// the primary store) must resynchronize those clients; the SLS
    /// checkpoint pipeline therefore aborts by forcing the next
    /// checkpoint full instead of rolling the primary store back.
    pub fn rollback_pending(&mut self) -> Result<()> {
        self.pending_pages.clear();
        self.pending_blobs.clear();
        self.pending_new_objects.clear();
        self.pending_deleted.clear();
        self.pending_deltas.clear();
        let live = fold_live(&self.ckpts, self.head)?;
        let refs = committed_refs(&self.ckpts, &live);
        let mut alloc = BlockAlloc::new(self.sb.data_blocks());
        for (&b, &r) in &refs {
            alloc.set_refs(BlockPtr(b), r);
        }
        self.alloc = alloc;
        let cache = self.cache.get_mut();
        cache.data.retain(|b, _| refs.contains_key(b));
        if self.config.dedup {
            cache.rebuild_dedup();
        } else {
            cache.dedup.clear();
            cache.block_hash.clear();
        }
        self.live = live;
        Ok(())
    }

    /// Background chain compactor: folds every live delta chain of at
    /// least `min_len` records back into a full base image, committed
    /// through the typestate protocol as its own checkpoint
    /// (`chain-compact`). The full write truncates the chain — later
    /// incremental flushes start a fresh chain from the new base — while
    /// older checkpoints keep reading the folded records until GC drops
    /// them.
    ///
    /// Returns the number of chains folded (0 = nothing to do, no
    /// checkpoint committed). Refuses to run with a staged delta
    /// pending: the compaction commit must not smuggle unrelated
    /// uncommitted work into its checkpoint.
    pub fn compact_chains(&mut self, min_len: u32) -> Result<usize> {
        if self.has_pending() {
            return Err(Error::invalid(
                "cannot compact chains with a staged delta pending",
            ));
        }
        let min_len = min_len.max(1);
        let mut victims: Vec<(ObjId, u64, Lsn)> = Vec::new();
        for (&oid, obj) in &self.live {
            for (&idx, &head) in &obj.deltas {
                if self.delta.chain_len(head)? >= min_len {
                    victims.push((oid, idx, head));
                }
            }
        }
        if victims.is_empty() {
            return Ok(0);
        }
        let folded = victims.len();
        for (oid, idx, head) in victims {
            let page = self.materialize_ref(PageRef::Delta(head))?;
            // A full write truncates the chain: write_page drops the
            // live overlay entry for the key.
            self.write_page(oid, idx, &page)?;
        }
        self.commit(Some("chain-compact"))?;
        self.stats.chains_compacted += folded as u64;
        Ok(folded)
    }

    /// Verifies that one committed checkpoint is fully restorable:
    ///
    /// * its parent chain resolves;
    /// * every block its effective object maps reference has recoverable
    ///   contents (in the page table, or readable from the medium with a
    ///   matching content hash when data is materialized).
    ///
    /// Returns the violations (empty = restorable). The checkpoint
    /// pipeline runs this on the incremental base and degrades to a full
    /// checkpoint when the base is damaged.
    pub fn verify_checkpoint(&self, ckpt: CkptId) -> Vec<String> {
        let mut problems = Vec::new();
        // Chain resolution first: a broken chain makes the maps moot.
        let mut cur = Some(ckpt);
        while let Some(c) = cur {
            match self.ckpts.get(&c.0) {
                Some(ck) => cur = ck.parent,
                None => {
                    problems.push(format!("checkpoint {} missing from the table", c.0));
                    return problems;
                }
            }
        }
        let objects = match self.objects_at(ckpt) {
            Ok(o) => o,
            Err(e) => {
                problems.push(format!("object walk failed: {e}"));
                return problems;
            }
        };
        for oid in objects {
            for (idx, page_ref) in self.object_refs_at(ckpt, oid) {
                // A delta-backed page is restorable when every record in
                // its chain is present and the chain's base block passes
                // the same recoverability checks as a full image.
                let ptr = match page_ref {
                    PageRef::Full(ptr) => ptr,
                    PageRef::Delta(lsn) => match self
                        .delta
                        .chain(lsn)
                        .and_then(|chain| {
                            chain.first().map(|r| r.base).ok_or_else(|| {
                                Error::corrupt(format!("delta chain at lsn {lsn} is empty"))
                            })
                        }) {
                        Ok(base) => base,
                        Err(e) => {
                            problems.push(format!(
                                "object {} page {idx}: delta chain at lsn {lsn} \
                                 broken: {e}",
                                oid.0
                            ));
                            continue;
                        }
                    },
                };
                // Materialized stores verify the platter copy even when a
                // clean copy is cached in memory: a write-time corruption
                // would otherwise hide until the cache is dropped. One
                // lock hold answers both questions for this block.
                let (recallable, expect) = {
                    let cache = self.cache.lock();
                    (
                        cache.data.contains_key(&ptr.0),
                        cache.block_hash.get(&ptr.0).copied(),
                    )
                };
                if recallable && !self.config.materialize_data {
                    continue;
                }
                if !self.config.materialize_data {
                    problems.push(format!(
                        "object {} page {idx}: block {} unrecoverable",
                        oid.0, ptr.0
                    ));
                    continue;
                }
                let lba = self.sb.data_start() + ptr.0;
                let mut buf = vec![0u8; BLOCK_SIZE];
                // Bound the device borrow to the read itself: the repair
                // arms below need to borrow the device again.
                let read_result = self.dev.borrow_mut().read(lba, &mut buf);
                match read_result {
                    Ok(()) => {
                        if let Some(expect) = expect {
                            let page = PageData::from_bytes(&buf);
                            if page.content_hash() != expect
                                && !self.try_repair(lba, expect)
                            {
                                problems.push(format!(
                                    "object {} page {idx}: block {} content hash mismatch",
                                    oid.0, ptr.0
                                ));
                            }
                        }
                    }
                    Err(e) => {
                        // A dead preferred copy may still have a healthy
                        // twin: repair before declaring the block lost.
                        if expect.is_none_or(|h| !self.try_repair(lba, h)) {
                            problems.push(format!(
                                "object {} page {idx}: block {} unreadable: {e}",
                                oid.0, ptr.0
                            ));
                        }
                    }
                }
            }
        }
        problems
    }

    /// Background resilver: rebuilds every `Rebuilding` mirror replica
    /// from the live allocation maps, in extent-sized batches charged to
    /// the virtual clock, then promotes the rebuilt replicas to active
    /// behind a flush barrier.
    ///
    /// The walk covers the whole metadata region (superblocks plus both
    /// journal halves — always real bytes on the medium) and every
    /// allocated data block. Data extents move real bytes on
    /// materialized stores and timing-only charges otherwise (the
    /// authoritative contents live above the device). A crash at any
    /// point is safe: the replica stays `Rebuilding` across the reboot
    /// and a rerun repeats the idempotent copies.
    ///
    /// No-op (an empty report) on a device without a rebuilding mirror.
    pub fn resilver(&mut self) -> Result<ResilverReport> {
        let mut report = ResilverReport::default();
        if !self
            .dev
            .get_mut()
            .as_mirror()
            .is_some_and(|m| m.needs_resilver())
        {
            return Ok(report);
        }
        // Metadata region: blocks 0..data_start, extent-sized batches.
        let meta_end = self.sb.data_start();
        let mut runs: Vec<(u64, usize, bool)> = Vec::new(); // (lba, count, real bytes)
        let mut lba = 0u64;
        while lba < meta_end {
            let count = (meta_end - lba).min(EXTENT_BLOCKS as u64) as usize;
            runs.push((lba, count, true));
            lba += count as u64;
        }
        // Live data blocks, adjacent ids coalesced into extents.
        let data_start = self.sb.data_start();
        let materialized = self.config.materialize_data;
        let mut pending: Option<(u64, usize)> = None;
        for b in self.alloc.allocated() {
            match pending {
                Some((start, count))
                    if b == start + count as u64 && count < EXTENT_BLOCKS =>
                {
                    pending = Some((start, count + 1));
                }
                Some((start, count)) => {
                    runs.push((data_start + start, count, materialized));
                    pending = Some((b, 1));
                }
                None => pending = Some((b, 1)),
            }
        }
        if let Some((start, count)) = pending {
            runs.push((data_start + start, count, materialized));
        }
        for (lba, count, real) in runs {
            let dev = self.dev.get_mut();
            let m = dev.as_mirror_mut().ok_or_else(|| {
                Error::internal("resilver target vanished mid-walk")
            })?;
            let copied = if real {
                m.resilver_extent(lba, count)?
            } else {
                m.resilver_extent_timing(count)?
            };
            report.blocks += copied;
            report.extents += 1;
        }
        let dev = self.dev.get_mut();
        let m = dev
            .as_mirror_mut()
            .ok_or_else(|| Error::internal("resilver target vanished mid-walk"))?;
        // The barrier token is the only license to promote: rustc
        // rejects a promotion that skipped the durability flush.
        let barrier = m.resilver_barrier()?;
        report.replicas_promoted = m.promote_rebuilt(barrier)?;
        Ok(report)
    }

    /// Scrub-path read-repair: asks the device layer to heal `lba` from
    /// redundancy, accepting a copy whose content hash is `expect`.
    /// Returns `true` if a verified copy now backs the block.
    fn try_repair(&self, lba: u64, expect: u64) -> bool {
        self.stats
            .repair_path_entries
            .set(self.stats.repair_path_entries.get() + 1);
        self.dev
            .borrow_mut()
            .repair_block(lba, &mut |bytes: &[u8]| {
                PageData::from_bytes(bytes).content_hash() == expect
            })
            .ok()
            .flatten()
            .is_some()
    }

    /// Full offline-quality audit: [`ObjectStore::fsck`] invariants plus
    /// a restorability check of every committed checkpoint. Backs the
    /// `sls scrub` CLI command and the crash campaign's per-iteration
    /// invariant.
    pub fn scrub(&self) -> Vec<String> {
        let mut problems = self.fsck();
        let ids: Vec<CkptId> = self.ckpts.keys().map(|&i| CkptId(i)).collect();
        for id in ids {
            for p in self.verify_checkpoint(id) {
                problems.push(format!("ckpt {}: {p}", id.0));
            }
        }
        problems.sort();
        problems.dedup();
        problems
    }

    /// Internal: the checkpoint table (export path).
    pub(crate) fn table(&self) -> &BTreeMap<u64, Checkpoint> {
        &self.ckpts
    }
}

impl core::fmt::Debug for ObjectStore {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ObjectStore")
            .field("objects", &self.live.len())
            .field("checkpoints", &self.ckpts.len())
            .field("blocks_in_use", &self.alloc.in_use())
            .finish()
    }
}
