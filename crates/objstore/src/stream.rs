//! Checkpoint export/import streams (`sls send` / `sls recv`).
//!
//! An exported checkpoint is **self-contained**: the chain-merged page
//! maps with their page contents plus the chain-merged blob set — enough
//! to rebuild the application on any machine. Page contents use the
//! compact page codec (zero pages cost one byte; deterministic seeded
//! pages cost nine), so streams of benchmark-scale images stay small
//! while real data round-trips verbatim.

use aurora_sim::codec::{Decoder, Encoder};
use aurora_sim::error::{Error, Result};
use aurora_sim::time::SimTime;
use aurora_vm::PageData;

use crate::checkpoint::{self, CkptId, PageRef};
use crate::store::ObjectStore;
use crate::ObjId;

/// Stream format magic ("SLSSEND1").
const STREAM_MAGIC: u64 = 0x534C_5353_454E_4431;

/// Encodes one page payload.
pub fn encode_page(e: &mut Encoder, page: &PageData) {
    match page {
        PageData::Zero => e.u8(0),
        PageData::Seeded(seed) => {
            e.u8(1);
            e.u64(*seed);
        }
        PageData::Bytes(b) => {
            e.u8(2);
            e.bytes(b);
        }
    }
}

/// Decodes one page payload.
pub fn decode_page(d: &mut Decoder<'_>) -> Result<PageData> {
    match d.u8()? {
        0 => Ok(PageData::Zero),
        1 => Ok(PageData::Seeded(d.u64()?)),
        2 => {
            let raw = d.bytes()?;
            if raw.len() != aurora_vm::PAGE_SIZE {
                return Err(Error::corrupt("page payload wrong size"));
            }
            Ok(PageData::from_bytes(raw))
        }
        t => Err(Error::corrupt(format!("bad page tag {t}"))),
    }
}

impl ObjectStore {
    /// Exports checkpoint `ckpt` as a self-contained byte stream.
    ///
    /// Charges device reads for every exported page.
    pub fn export_checkpoint(&self, ckpt: CkptId) -> Result<Vec<u8>> {
        self.export_checkpoint_filtered(ckpt, |_| true, |_| true)
    }

    /// Exports a checkpoint restricted to the objects and blobs the
    /// filters accept — how the SLS ships *one application* (its group's
    /// namespace) rather than the whole machine's history.
    pub fn export_checkpoint_filtered(
        &self,
        ckpt: CkptId,
        keep_oid: impl Fn(u64) -> bool,
        keep_blob: impl Fn(&str) -> bool,
    ) -> Result<Vec<u8>> {
        // Collect the set of objects alive at this checkpoint.
        let mut objects: Vec<(ObjId, u64)> = Vec::new();
        {
            let mut chain = Vec::new();
            let mut cur = Some(ckpt);
            while let Some(c) = cur {
                let ck = self.checkpoint(c)?;
                chain.push(c);
                cur = ck.parent;
            }
            let mut dead: Vec<ObjId> = Vec::new();
            for c in &chain {
                let ck = self.checkpoint(*c)?;
                // Births before deaths: a checkpoint carrying both for
                // one id recorded a delete-then-recreate, and the new
                // incarnation is alive. Its delete entry only kills the
                // older incarnation in parent checkpoints.
                for (oid, size) in &ck.new_objects {
                    if !dead.contains(oid) && keep_oid(oid.0) {
                        objects.push((*oid, *size));
                        dead.push(*oid);
                    }
                }
                for oid in &ck.deleted_objects {
                    dead.push(*oid);
                }
            }
            objects.sort();
        }

        let table_name = self.checkpoint(ckpt)?.name.clone();
        let mut e = Encoder::new();
        e.u64(STREAM_MAGIC);
        e.option(table_name.as_ref(), |e, n| e.str(n));
        e.varint(objects.len() as u64);
        for (oid, size) in &objects {
            e.u64(oid.0);
            e.varint(*size);
            let map = self.object_refs_at(ckpt, *oid);
            e.varint(map.len() as u64);
            for (idx, r) in map {
                // Delta-backed pages ship materialized: the stream stays
                // self-contained and the receiver never needs our log.
                let page = self.materialize_ref(r)?;
                e.varint(idx);
                encode_page(&mut e, &page);
            }
        }
        // Chain-merged blobs, filtered.
        let keys: Vec<String> = self
            .blob_keys_at(ckpt, "")
            .into_iter()
            .filter(|k| keep_blob(k))
            .collect();
        e.varint(keys.len() as u64);
        for key in keys {
            let v = checkpoint::resolve_blob(self.table(), ckpt, &key)
                .ok_or_else(|| {
                    Error::internal(format!("blob `{key}` vanished while streaming"))
                })?
                .to_vec();
            e.str(&key);
            e.bytes(&v);
        }
        Ok(e.into_vec())
    }

    /// Exports only checkpoint `ckpt`'s *delta* (its own pages, blobs and
    /// object births/deaths) — the unit of live-migration rounds, where
    /// the receiver already holds the parent chain.
    pub fn export_delta(&self, ckpt: CkptId) -> Result<Vec<u8>> {
        let (new_objects, deleted, pages, blobs, name) = {
            let ck = self.checkpoint(ckpt)?;
            // A key present in both maps is a delta head over an
            // inherited base (GC merge): the delta entry is the page's
            // content at this checkpoint, so the base image must not
            // shadow it in the stream.
            let mut pages: Vec<((ObjId, u64), PageRef)> = ck
                .pages
                .iter()
                .filter(|(k, _)| !ck.deltas.contains_key(k))
                .map(|(k, v)| (*k, PageRef::Full(*v)))
                .chain(ck.deltas.iter().map(|(k, l)| (*k, PageRef::Delta(*l))))
                .collect();
            pages.sort_by_key(|(k, _)| *k);
            (
                ck.new_objects.clone(),
                ck.deleted_objects.clone(),
                pages,
                ck.blobs.clone(),
                ck.name.clone(),
            )
        };
        let mut e = Encoder::new();
        e.u64(STREAM_MAGIC ^ 1); // Delta stream marker.
        e.option(name.as_ref(), |e, n| e.str(n));
        e.seq(&new_objects, |e, (oid, size)| {
            e.u64(oid.0);
            e.varint(*size);
        });
        e.seq(&deleted, |e, oid| e.u64(oid.0));
        e.varint(pages.len() as u64);
        for ((oid, idx), r) in pages {
            let page = self.materialize_ref(r)?;
            e.u64(oid.0);
            e.varint(idx);
            encode_page(&mut e, &page);
        }
        e.varint(blobs.len() as u64);
        for (k, v) in &blobs {
            e.str(k);
            e.bytes(v);
        }
        Ok(e.into_vec())
    }

    /// Applies a delta stream on top of the receiver's current state and
    /// commits it.
    pub fn import_delta(&mut self, bytes: &[u8]) -> Result<(CkptId, SimTime)> {
        let mut d = Decoder::new(bytes);
        if d.u64()? != STREAM_MAGIC ^ 1 {
            return Err(Error::bad_image("not an sls delta stream"));
        }
        // Open the commit transaction before staging: the typestate
        // token witnesses every write the apply makes.
        let txn = self.begin_txn();
        let name = d.option(|d| d.str().map(str::to_string))?;
        let new_objects = d.seq(|d| {
            let oid = ObjId(d.u64()?);
            let size = d.varint()?;
            Ok((oid, size))
        })?;
        let deleted = d.seq(|d| d.u64().map(ObjId))?;
        // Deaths before births: a delta carrying both for one id is a
        // delete-then-recreate, and applying the birth first would let
        // the delete clobber the new incarnation.
        for oid in deleted {
            if self.object_exists(oid) {
                self.delete_object(oid)?;
            }
        }
        for (oid, size) in new_objects {
            if !self.object_exists(oid) {
                self.create_object(oid, size)?;
            }
        }
        let npages = d.varint()? as usize;
        for _ in 0..npages {
            let oid = ObjId(d.u64()?);
            let idx = d.varint()?;
            let page = decode_page(&mut d)?;
            if !self.object_exists(oid) {
                // A page for an object created in an earlier delta that
                // was deleted since: recreate permissively.
                self.create_object(oid, idx + 1)?;
            }
            self.write_page(oid, idx, &page)?;
        }
        let nblobs = d.varint()? as usize;
        for _ in 0..nblobs {
            let key = d.str()?.to_string();
            let v = d.bytes()?.to_vec();
            self.put_blob(&key, v);
        }
        self.commit_txn(txn, name.as_deref())
    }

    /// Imports a stream, creating its objects and committing a checkpoint.
    ///
    /// Object ids must not collide with live objects in this store (the
    /// SLS namespaces ids per persistence group). Returns the new
    /// checkpoint id and its durable instant.
    pub fn import_stream(&mut self, bytes: &[u8]) -> Result<(CkptId, SimTime)> {
        let mut d = Decoder::new(bytes);
        if d.u64()? != STREAM_MAGIC {
            return Err(Error::bad_image("not an sls stream"));
        }
        // As in `import_delta`: the token spans the whole staged apply.
        let txn = self.begin_txn();
        let name = d.option(|d| d.str().map(str::to_string))?;
        let nobjects = d.varint()? as usize;
        for _ in 0..nobjects {
            let oid = ObjId(d.u64()?);
            let size = d.varint()?;
            self.create_object(oid, size)?;
            let npages = d.varint()? as usize;
            for _ in 0..npages {
                let idx = d.varint()?;
                let page = decode_page(&mut d)?;
                self.write_page(oid, idx, &page)?;
            }
        }
        let nblobs = d.varint()? as usize;
        for _ in 0..nblobs {
            let key = d.str()?.to_string();
            let v = d.bytes()?.to_vec();
            self.put_blob(&key, v);
        }
        self.commit_txn(txn, name.as_deref())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_codec_roundtrip() {
        for page in [
            PageData::Zero,
            PageData::Seeded(0xABCD),
            PageData::from_bytes(&{
                let mut b = vec![0u8; aurora_vm::PAGE_SIZE];
                b[17] = 3;
                b
            }),
        ] {
            let mut e = Encoder::new();
            encode_page(&mut e, &page);
            let bytes = e.finish();
            let out = decode_page(&mut Decoder::new(&bytes)).unwrap();
            assert!(out.content_eq(&page));
        }
    }

    #[test]
    fn bad_page_tag_rejected() {
        assert!(decode_page(&mut Decoder::new(&[9])).is_err());
        // Wrong-size byte payload.
        let mut e = Encoder::new();
        e.u8(2);
        e.bytes(b"short");
        let b = e.finish();
        assert!(decode_page(&mut Decoder::new(&b)).is_err());
    }
}
