//! On-disk layout: superblocks and region geometry.
//!
//! ```text
//! block 0      superblock slot A \  alternating commits; recovery picks
//! block 1      superblock slot B /  the valid slot with the higher epoch
//! block 2..J   metadata journal (two ping-pong halves; records append
//!              into the active half, compaction writes its snapshot to
//!              the idle half and the superblock flip switches halves,
//!              so a power cut mid-compaction never destroys the journal
//!              the durable superblock points at)
//! block J..    data region (refcounted 4 KiB blocks)
//! ```

use aurora_sim::codec::{Decoder, Encoder};
use aurora_sim::error::{Error, Result};
use aurora_sim::hash::crc32c;

use aurora_hw::BLOCK_SIZE;

/// Magic number identifying an Aurora store ("AURORSLS").
pub const MAGIC: u64 = 0x4155_524F_5253_4C53;

/// On-disk format version. v3: journal record format v2 (checkpoints
/// carry sub-page delta heads; commit/snapshot records carry delta-log
/// sections). The superblock body is unchanged.
pub const VERSION: u16 = 3;

/// First journal block.
pub const JOURNAL_START: u64 = 2;

/// The superblock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Superblock {
    /// Commit epoch (monotonic across the store's life).
    pub epoch: u64,
    /// Journal length in blocks (both halves).
    pub journal_blocks: u64,
    /// Bytes of valid journal content in the active half.
    pub journal_used: u64,
    /// First block of the active journal half.
    pub journal_base: u64,
    /// Total device blocks.
    pub total_blocks: u64,
    /// Next checkpoint id to assign.
    pub next_ckpt: u64,
    /// Next object id to assign.
    pub next_obj: u64,
}

impl Superblock {
    /// First data-region block for this geometry.
    pub fn data_start(&self) -> u64 {
        JOURNAL_START + self.journal_blocks
    }

    /// Blocks in one journal half (records must fit in a half).
    pub fn journal_half_blocks(&self) -> u64 {
        self.journal_blocks / 2
    }

    /// First block of the idle journal half (compaction's target).
    pub fn journal_other_half(&self) -> u64 {
        if self.journal_base == JOURNAL_START {
            JOURNAL_START + self.journal_half_blocks()
        } else {
            JOURNAL_START
        }
    }

    /// Number of data blocks.
    pub fn data_blocks(&self) -> u64 {
        self.total_blocks - self.data_start()
    }

    /// Serializes into one device block with a trailing CRC.
    pub fn to_block(&self) -> Vec<u8> {
        let mut e = Encoder::with_capacity(64);
        e.u64(MAGIC);
        e.u16(VERSION);
        e.u64(self.epoch);
        e.u64(self.journal_blocks);
        e.u64(self.journal_used);
        e.u64(self.journal_base);
        e.u64(self.total_blocks);
        e.u64(self.next_ckpt);
        e.u64(self.next_obj);
        let mut body = e.into_vec();
        let crc = crc32c(&body);
        body.extend_from_slice(&crc.to_le_bytes());
        body.resize(BLOCK_SIZE, 0);
        body
    }

    /// Parses and validates a superblock from a device block.
    pub fn from_block(block: &[u8]) -> Result<Superblock> {
        // Body length: 8 + 2 + 7*8 = 66 bytes, then 4 bytes CRC.
        const BODY: usize = 66;
        if block.len() < BODY + 4 {
            return Err(Error::corrupt("superblock too short"));
        }
        let crc_stored = block[BODY..BODY + 4]
            .try_into()
            .map(u32::from_le_bytes)
            .map_err(|_| Error::corrupt("superblock CRC field truncated"))?;
        if crc32c(&block[..BODY]) != crc_stored {
            return Err(Error::corrupt("superblock CRC mismatch"));
        }
        let mut d = Decoder::new(&block[..BODY]);
        if d.u64()? != MAGIC {
            return Err(Error::corrupt("bad store magic"));
        }
        let version = d.u16()?;
        if version != VERSION {
            // Name both sides so a store written by a newer build reads as
            // "upgrade me", not as damage.
            return Err(Error::unsupported(format!(
                "store version {version} (this build reads version {VERSION})"
            )));
        }
        Ok(Superblock {
            epoch: d.u64()?,
            journal_blocks: d.u64()?,
            journal_used: d.u64()?,
            journal_base: d.u64()?,
            total_blocks: d.u64()?,
            next_ckpt: d.u64()?,
            next_obj: d.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sb() -> Superblock {
        Superblock {
            epoch: 42,
            journal_blocks: 1024,
            journal_used: 12345,
            journal_base: JOURNAL_START,
            total_blocks: 1 << 20,
            next_ckpt: 7,
            next_obj: 99,
        }
    }

    #[test]
    fn roundtrip() {
        let block = sb().to_block();
        assert_eq!(block.len(), BLOCK_SIZE);
        assert_eq!(Superblock::from_block(&block).unwrap(), sb());
    }

    #[test]
    fn corruption_detected() {
        let mut block = sb().to_block();
        block[10] ^= 1;
        assert!(Superblock::from_block(&block).is_err());
        // All-zero block (never written) is invalid too.
        assert!(Superblock::from_block(&[0u8; BLOCK_SIZE]).is_err());
    }

    #[test]
    fn future_version_names_both_versions() {
        // A structurally valid superblock from a "newer" build: bump the
        // version field (offset 8, after the u64 magic) and re-seal the CRC
        // so only the version check can object.
        let mut block = sb().to_block();
        let future = VERSION + 9;
        block[8..10].copy_from_slice(&future.to_le_bytes());
        let crc = crc32c(&block[..66]);
        block[66..70].copy_from_slice(&crc.to_le_bytes());
        let err = Superblock::from_block(&block).unwrap_err();
        assert_eq!(err.kind(), aurora_sim::error::ErrorKind::Unsupported);
        let msg = err.to_string();
        assert!(
            msg.contains(&format!("version {future}"))
                && msg.contains(&format!("version {VERSION}")),
            "error must name the found and supported versions: {msg}"
        );
    }

    #[test]
    fn geometry() {
        let s = sb();
        assert_eq!(s.data_start(), 2 + 1024);
        assert_eq!(s.data_blocks(), (1 << 20) - 1026);
    }
}
