//! Sub-page delta records and the per-store delta log.
//!
//! "The log *is* the checkpoint": when an incremental flush finds a page
//! whose dirty footprint is far below 4 KiB, it appends a [`DeltaRecord`]
//! — the dirty byte extents plus a `prev` back-pointer into the page's
//! redo chain — to the journal instead of writing a full page image.
//! Restore materializes such a page lazily: read the chain's base image
//! (a real, refcounted data block) and replay the chain in LSN order.
//!
//! Chain invariants (enforced by [`DeltaLog`] and checked by fsck/scrub):
//!
//! * `prev < lsn` — back-pointers are strictly monotonic, so chains are
//!   acyclic and replay order is simply ascending LSN.
//! * Every record in a chain shares the chain's `base` block pointer; the
//!   block ref is owned by whichever checkpoint's page map carries it,
//!   never by the records themselves.
//! * `chain_len` counts records from the base (head record holds the
//!   chain's length); a full-image write truncates the chain.
//! * Records unreachable from any committed checkpoint's delta heads are
//!   dead and pruned ([`DeltaLog::prune`]); the journal bytes they
//!   occupied are reclaimed at the next compaction snapshot.

use std::collections::BTreeMap;

use aurora_sim::codec::{Decoder, Encoder};
use aurora_sim::error::{Error, Result};
use aurora_vm::PageData;

use crate::{BlockPtr, ObjId};

/// Log sequence number of a delta record (store-wide, monotonic).
pub type Lsn = u64;

/// One sub-page delta: the dirty byte extents a flush captured for a
/// page, chained onto the page's previous delta (or its base image).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaRecord {
    /// Object the page belongs to.
    pub oid: ObjId,
    /// Page index within the object.
    pub idx: u64,
    /// Checkpoint epoch that produced this record (informational).
    pub epoch: u64,
    /// The chain's base image: a live, refcounted data block.
    pub base: BlockPtr,
    /// Previous record in this page's redo chain (`None` = first after
    /// the base image). Invariant: `prev < lsn`.
    pub prev: Option<Lsn>,
    /// Records from the base up to and including this one.
    pub chain_len: u32,
    /// Dirty extents: `(byte offset, new bytes)`, applied in order.
    pub extents: Vec<(u32, Vec<u8>)>,
}

impl DeltaRecord {
    /// Encodes the record (journal payload format).
    pub fn encode(&self, e: &mut Encoder) {
        e.u64(self.oid.0);
        e.varint(self.idx);
        e.varint(self.epoch);
        e.varint(self.base.0);
        e.option(self.prev.as_ref(), |e, p| e.varint(*p));
        e.varint(self.chain_len as u64);
        e.varint(self.extents.len() as u64);
        for (off, bytes) in &self.extents {
            e.varint(*off as u64);
            e.bytes(bytes);
        }
    }

    /// Decodes a record from a journal payload.
    pub fn decode(d: &mut Decoder<'_>) -> Result<DeltaRecord> {
        let oid = ObjId(d.u64()?);
        let idx = d.varint()?;
        let epoch = d.varint()?;
        let base = BlockPtr(d.varint()?);
        let prev = d.option(|d| d.varint())?;
        let chain_len = d.varint()? as u32;
        let nextents = d.varint()? as usize;
        let mut extents = Vec::with_capacity(nextents.min(64));
        for _ in 0..nextents {
            let off = d.varint()? as u32;
            let bytes = d.bytes()?.to_vec();
            if off as usize + bytes.len() > aurora_vm::PAGE_SIZE {
                return Err(Error::corrupt("delta extent past page end"));
            }
            extents.push((off, bytes));
        }
        Ok(DeltaRecord { oid, idx, epoch, base, prev, chain_len, extents })
    }

    /// Encoded size in bytes (what the record costs in the journal).
    pub fn encoded_len(&self) -> usize {
        let mut e = Encoder::new();
        self.encode(&mut e);
        e.finish().len()
    }

    /// Total dirty payload bytes across the record's extents.
    pub fn payload_bytes(&self) -> usize {
        self.extents.iter().map(|(_, b)| b.len()).sum()
    }

    /// Applies the record's extents on top of `page`.
    pub fn apply(&self, page: &PageData) -> PageData {
        let mut out = page.clone();
        for (off, bytes) in &self.extents {
            out = out.write(*off as usize, bytes);
        }
        out
    }
}

/// The in-memory delta-record table, rebuilt from the journal on
/// recovery. Records are committed only by a sealed journal write (the
/// same typestate path as checkpoint metadata), so a torn commit drops a
/// checkpoint and its delta records together.
#[derive(Debug, Default)]
pub struct DeltaLog {
    records: BTreeMap<Lsn, DeltaRecord>,
    next_lsn: Lsn,
    /// Encoded bytes of all live records (journal footprint accounting).
    bytes: u64,
}

impl DeltaLog {
    /// Next LSN to be assigned.
    pub fn next_lsn(&self) -> Lsn {
        self.next_lsn
    }

    /// Number of live records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no records are live.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Encoded bytes of all live records.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Looks up a record.
    pub fn get(&self, lsn: Lsn) -> Option<&DeltaRecord> {
        self.records.get(&lsn)
    }

    /// Inserts a committed record at an explicit LSN (commit apply and
    /// journal replay). Enforces `prev < lsn` monotonicity.
    pub fn insert(&mut self, lsn: Lsn, rec: DeltaRecord) -> Result<()> {
        if let Some(p) = rec.prev {
            if p >= lsn {
                return Err(Error::corrupt(format!(
                    "delta chain back-pointer not monotonic: prev {p} >= lsn {lsn}"
                )));
            }
        }
        self.bytes += rec.encoded_len() as u64;
        self.records.insert(lsn, rec);
        self.next_lsn = self.next_lsn.max(lsn + 1);
        Ok(())
    }

    /// The records of the chain ending at `head`, base-first (ascending
    /// LSN). Errors on a dangling back-pointer or when the walk does not
    /// match the head's `chain_len` exactly — either direction means the
    /// log lost or fabricated records.
    pub fn chain(&self, head: Lsn) -> Result<Vec<&DeltaRecord>> {
        let expected = self
            .records
            .get(&head)
            .ok_or_else(|| Error::corrupt(format!("delta head {head} missing from log")))?
            .chain_len as usize;
        if expected == 0 {
            return Err(Error::corrupt(format!("delta head {head} has chain_len 0")));
        }
        let mut out = Vec::with_capacity(expected);
        let mut cur = Some(head);
        while let Some(lsn) = cur {
            let rec = self.records.get(&lsn).ok_or_else(|| {
                Error::corrupt(format!("delta chain references missing lsn {lsn}"))
            })?;
            if out.len() >= expected {
                return Err(Error::corrupt("delta chain longer than its chain_len"));
            }
            out.push(rec);
            cur = rec.prev;
        }
        if out.len() != expected {
            return Err(Error::corrupt(format!(
                "delta chain at {head} has {} records, chain_len says {expected}",
                out.len()
            )));
        }
        out.reverse();
        Ok(out)
    }

    /// Length of the chain ending at `head` per its head record.
    pub fn chain_len(&self, head: Lsn) -> Result<u32> {
        self.records
            .get(&head)
            .map(|r| r.chain_len)
            .ok_or_else(|| Error::corrupt(format!("delta head {head} missing from log")))
    }

    /// Materializes a page: applies the chain ending at `head` (base
    /// image first, then ascending LSN) on top of `base`.
    pub fn materialize(&self, base: &PageData, head: Lsn) -> Result<PageData> {
        let mut page = base.clone();
        for rec in self.chain(head)? {
            page = rec.apply(&page);
        }
        Ok(page)
    }

    /// Drops every record unreachable from `heads` (walking `prev`
    /// chains). Returns `(records, bytes)` reclaimed.
    pub fn prune(&mut self, heads: impl IntoIterator<Item = Lsn>) -> (usize, u64) {
        let mut live = std::collections::HashSet::new();
        let mut stack: Vec<Lsn> = heads.into_iter().collect();
        while let Some(lsn) = stack.pop() {
            if !live.insert(lsn) {
                continue;
            }
            if let Some(rec) = self.records.get(&lsn) {
                if let Some(p) = rec.prev {
                    stack.push(p);
                }
            }
        }
        // Dead chain segments: their journal bytes are reclaimed at the
        // next compaction snapshot.
        let dead: Vec<Lsn> =
            self.records.keys().copied().filter(|l| !live.contains(l)).collect();
        let mut freed = 0u64;
        for lsn in &dead {
            if let Some(rec) = self.records.remove(lsn) {
                freed += rec.encoded_len() as u64;
            }
        }
        self.bytes -= freed;
        (dead.len(), freed)
    }

    /// All live records, ascending LSN (compaction snapshots carry them).
    pub fn iter(&self) -> impl Iterator<Item = (Lsn, &DeltaRecord)> {
        self.records.iter().map(|(l, r)| (*l, r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(prev: Option<Lsn>, chain_len: u32, extents: Vec<(u32, Vec<u8>)>) -> DeltaRecord {
        DeltaRecord {
            oid: ObjId(7),
            idx: 3,
            epoch: 11,
            base: BlockPtr(42),
            prev,
            chain_len,
            extents,
        }
    }

    #[test]
    fn record_roundtrip() {
        let r = rec(Some(5), 2, vec![(0, vec![1, 2, 3]), (4090, vec![9; 6])]);
        let mut e = Encoder::new();
        r.encode(&mut e);
        let bytes = e.finish();
        let out = DeltaRecord::decode(&mut Decoder::new(&bytes)).unwrap();
        assert_eq!(out, r);
        assert_eq!(r.encoded_len(), bytes.len());
        assert_eq!(r.payload_bytes(), 9);
    }

    #[test]
    fn extent_past_page_end_rejected() {
        let r = rec(None, 1, vec![(4094, vec![0; 8])]);
        let mut e = Encoder::new();
        // Encode bypasses validation; decode must reject.
        e.u64(r.oid.0);
        e.varint(r.idx);
        e.varint(r.epoch);
        e.varint(r.base.0);
        e.option(r.prev.as_ref(), |e, p| e.varint(*p));
        e.varint(r.chain_len as u64);
        e.varint(1);
        e.varint(4094);
        e.bytes(&[0; 8]);
        let bytes = e.finish();
        assert!(DeltaRecord::decode(&mut Decoder::new(&bytes)).is_err());
    }

    #[test]
    fn chain_materializes_in_lsn_order() {
        let mut log = DeltaLog::default();
        // Two records writing the same offset: the later one must win.
        log.insert(1, rec(None, 1, vec![(0, vec![1, 1])])).unwrap();
        log.insert(4, rec(Some(1), 2, vec![(1, vec![7]), (100, vec![3])])).unwrap();
        let base = PageData::Zero;
        let page = log.materialize(&base, 4).unwrap();
        let mut buf = [0u8; 4];
        page.read(0, &mut buf);
        assert_eq!(buf, [1, 7, 0, 0]);
        let mut b1 = [0u8; 1];
        page.read(100, &mut b1);
        assert_eq!(b1, [3]);
        assert_eq!(log.chain_len(4).unwrap(), 2);
        assert_eq!(log.next_lsn(), 5);
    }

    #[test]
    fn monotonicity_enforced() {
        let mut log = DeltaLog::default();
        assert!(log.insert(3, rec(Some(3), 2, vec![])).is_err());
        assert!(log.insert(3, rec(Some(9), 2, vec![])).is_err());
        assert!(log.insert(3, rec(Some(2), 2, vec![])).is_ok());
    }

    #[test]
    fn dangling_chain_detected() {
        let mut log = DeltaLog::default();
        log.insert(2, rec(Some(1), 2, vec![])).unwrap();
        assert!(log.materialize(&PageData::Zero, 2).is_err());
    }

    #[test]
    fn long_chains_walk_cleanly() {
        // Regression: the walk bound must compare against the *head's*
        // chain_len, not each record's own (which shrinks toward the
        // base) — the old check rejected every chain of length >= 4.
        let mut log = DeltaLog::default();
        log.insert(1, rec(None, 1, vec![(0, vec![1])])).unwrap();
        for i in 2..=8u64 {
            log.insert(i, rec(Some(i - 1), i as u32, vec![(i as u32, vec![i as u8])]))
                .unwrap();
        }
        assert_eq!(log.chain(8).unwrap().len(), 8);
        assert!(log.materialize(&PageData::Zero, 8).is_ok());
        // A head whose chain_len undercounts the walk is corrupt.
        log.insert(20, rec(Some(8), 2, vec![])).unwrap();
        assert!(log.chain(20).is_err());
    }

    #[test]
    fn prune_keeps_reachable_chains() {
        let mut log = DeltaLog::default();
        log.insert(1, rec(None, 1, vec![(0, vec![1])])).unwrap();
        log.insert(2, rec(Some(1), 2, vec![(1, vec![2])])).unwrap();
        log.insert(3, rec(None, 1, vec![(2, vec![3])])).unwrap();
        let total = log.bytes();
        assert!(total > 0);
        let (dropped, freed) = log.prune([2]);
        assert_eq!(dropped, 1);
        assert!(freed > 0);
        assert_eq!(log.len(), 2);
        assert!(log.get(1).is_some() && log.get(2).is_some() && log.get(3).is_none());
        // next_lsn is not rewound by pruning.
        assert_eq!(log.next_lsn(), 4);
    }
}
