//! Checkpoint deltas and the chain-walk read path.

use std::collections::{BTreeMap, HashMap};

use aurora_sim::codec::{Decoder, Encoder};
use aurora_sim::error::Result;
use aurora_sim::time::SimTime;

use crate::deltalog::Lsn;
use crate::{BlockPtr, ObjId};

/// How a checkpoint resolves one page: a full image block, or the head
/// of a delta chain in the store's delta log (materialized by replaying
/// the chain over its base image).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageRef {
    /// A full page image (refcounted data block).
    Full(BlockPtr),
    /// Head of a sub-page delta chain.
    Delta(Lsn),
}

/// Identifier of a committed checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CkptId(pub u64);

/// A committed checkpoint: the delta since its parent.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// Checkpoint id (monotonic).
    pub id: CkptId,
    /// Parent checkpoint, if any.
    pub parent: Option<CkptId>,
    /// User-assigned name (`sls checkpoint <name>`).
    pub name: Option<String>,
    /// Objects created in this delta, with their sizes in pages.
    pub new_objects: Vec<(ObjId, u64)>,
    /// Objects deleted in this delta.
    pub deleted_objects: Vec<ObjId>,
    /// Page-map changes: `(object, page) -> data block`.
    pub pages: HashMap<(ObjId, u64), BlockPtr>,
    /// Sub-page delta heads: `(object, page) -> delta-chain head LSN`.
    /// A fresh commit records a page in `pages` *or* `deltas`; after a
    /// GC merge a checkpoint may carry both (the inherited chain base in
    /// `pages`, the newer chain head in `deltas`) — `deltas` wins.
    pub deltas: HashMap<(ObjId, u64), Lsn>,
    /// Metadata blobs written in this delta (kernel-object records).
    pub blobs: BTreeMap<String, Vec<u8>>,
    /// Virtual instant at which this checkpoint became power-loss-safe
    /// (in-memory bookkeeping; not part of the on-disk format).
    pub durable_at: SimTime,
}

impl Checkpoint {
    /// Serialized size estimate (drives journal space accounting).
    pub fn encoded_len_estimate(&self) -> usize {
        64 + self.new_objects.len() * 12
            + self.deleted_objects.len() * 9
            + self.pages.len() * 20
            + self.deltas.len() * 24
            + self
                .blobs
                .iter()
                .map(|(k, v)| k.len() + v.len() + 12)
                .sum::<usize>()
    }

    /// Encodes the delta into `e` (the journal payload format).
    pub fn encode(&self, e: &mut Encoder) {
        e.u64(self.id.0);
        e.option(self.parent.as_ref(), |e, p| e.u64(p.0));
        e.option(self.name.as_ref(), |e, n| e.str(n));
        e.seq(&self.new_objects, |e, (oid, size)| {
            e.u64(oid.0);
            e.varint(*size);
        });
        e.seq(&self.deleted_objects, |e, oid| e.u64(oid.0));
        // Pages sorted for deterministic images.
        let mut pages: Vec<(&(ObjId, u64), &BlockPtr)> = self.pages.iter().collect();
        pages.sort();
        e.varint(pages.len() as u64);
        for ((oid, idx), ptr) in pages {
            e.u64(oid.0);
            e.varint(*idx);
            e.varint(ptr.0);
        }
        e.varint(self.blobs.len() as u64);
        for (k, v) in &self.blobs {
            e.str(k);
            e.bytes(v);
        }
        // Delta heads, sorted for deterministic images.
        let mut deltas: Vec<(&(ObjId, u64), &Lsn)> = self.deltas.iter().collect();
        deltas.sort();
        e.varint(deltas.len() as u64);
        for ((oid, idx), lsn) in deltas {
            e.u64(oid.0);
            e.varint(*idx);
            e.varint(*lsn);
        }
    }

    /// Decodes a delta from a journal payload.
    pub fn decode(d: &mut Decoder<'_>) -> Result<Checkpoint> {
        let id = CkptId(d.u64()?);
        let parent = d.option(|d| d.u64().map(CkptId))?;
        let name = d.option(|d| d.str().map(str::to_string))?;
        let new_objects = d.seq(|d| {
            let oid = ObjId(d.u64()?);
            let size = d.varint()?;
            Ok((oid, size))
        })?;
        let deleted_objects = d.seq(|d| d.u64().map(ObjId))?;
        let npages = d.varint()? as usize;
        let mut pages = HashMap::with_capacity(npages);
        for _ in 0..npages {
            let oid = ObjId(d.u64()?);
            let idx = d.varint()?;
            let ptr = BlockPtr(d.varint()?);
            pages.insert((oid, idx), ptr);
        }
        let nblobs = d.varint()? as usize;
        let mut blobs = BTreeMap::new();
        for _ in 0..nblobs {
            let k = d.str()?.to_string();
            let v = d.bytes()?.to_vec();
            blobs.insert(k, v);
        }
        let ndeltas = d.varint()? as usize;
        let mut deltas = HashMap::with_capacity(ndeltas);
        for _ in 0..ndeltas {
            let oid = ObjId(d.u64()?);
            let idx = d.varint()?;
            let lsn = d.varint()?;
            deltas.insert((oid, idx), lsn);
        }
        Ok(Checkpoint {
            id,
            parent,
            name,
            new_objects,
            deleted_objects,
            pages,
            deltas,
            blobs,
            durable_at: SimTime::ZERO,
        })
    }
}

/// Resolves a page through the checkpoint chain: the nearest delta at or
/// above `from` that covers `(oid, idx)` wins; a deletion of the object
/// masks older data. Within one checkpoint a delta head outranks a page
/// entry (the entry is then the chain's inherited base image).
pub fn resolve_ref(
    ckpts: &BTreeMap<u64, Checkpoint>,
    from: CkptId,
    oid: ObjId,
    idx: u64,
) -> Option<PageRef> {
    let mut cur = Some(from);
    while let Some(c) = cur {
        let ck = ckpts.get(&c.0)?;
        if let Some(lsn) = ck.deltas.get(&(oid, idx)) {
            return Some(PageRef::Delta(*lsn));
        }
        if let Some(ptr) = ck.pages.get(&(oid, idx)) {
            return Some(PageRef::Full(*ptr));
        }
        if ck.deleted_objects.contains(&oid) {
            return None;
        }
        if ck.new_objects.iter().any(|(o, _)| *o == oid) {
            // The object was born here and the page was never written.
            return None;
        }
        cur = ck.parent;
    }
    None
}

/// Full-image-only page resolution. Returns `None` when the page is
/// covered by a delta chain — delta-aware callers use [`resolve_ref`].
pub fn resolve_page(
    ckpts: &BTreeMap<u64, Checkpoint>,
    from: CkptId,
    oid: ObjId,
    idx: u64,
) -> Option<BlockPtr> {
    match resolve_ref(ckpts, from, oid, idx) {
        Some(PageRef::Full(ptr)) => Some(ptr),
        _ => None,
    }
}

/// Resolves a blob through the chain (latest write at or above `from`).
pub fn resolve_blob<'a>(
    ckpts: &'a BTreeMap<u64, Checkpoint>,
    from: CkptId,
    key: &str,
) -> Option<&'a [u8]> {
    let mut cur = Some(from);
    while let Some(c) = cur {
        let ck = ckpts.get(&c.0)?;
        if let Some(v) = ck.blobs.get(key) {
            return Some(v);
        }
        cur = ck.parent;
    }
    None
}

/// The effective page map of one object at a checkpoint (chain-merged),
/// each page resolved to its full image or its delta-chain head.
pub fn effective_refs(
    ckpts: &BTreeMap<u64, Checkpoint>,
    from: CkptId,
    oid: ObjId,
) -> BTreeMap<u64, PageRef> {
    // Walk root-ward collecting deltas, then apply oldest-first.
    let mut chain = Vec::new();
    let mut cur = Some(from);
    while let Some(c) = cur {
        let Some(ck) = ckpts.get(&c.0) else { break };
        chain.push(ck);
        if ck.deleted_objects.contains(&oid) || ck.new_objects.iter().any(|(o, _)| *o == oid) {
            break;
        }
        cur = ck.parent;
    }
    let mut map = BTreeMap::new();
    for ck in chain.iter().rev() {
        if ck.deleted_objects.contains(&oid) {
            // The old incarnation dies here. Do NOT skip this
            // checkpoint's pages: a delete-then-recreate in one epoch
            // records the death plus the new incarnation's pages, and
            // the pending-page bookkeeping guarantees every page under
            // this id belongs to the new incarnation.
            map.clear();
        }
        // Pages first, then delta heads: within one checkpoint a delta
        // outranks a page entry (the page entry is then the chain's
        // inherited base image, kept only for its block ref).
        for ((o, idx), ptr) in &ck.pages {
            if *o == oid {
                map.insert(*idx, PageRef::Full(*ptr));
            }
        }
        for ((o, idx), lsn) in &ck.deltas {
            if *o == oid {
                map.insert(*idx, PageRef::Delta(*lsn));
            }
        }
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ck(id: u64, parent: Option<u64>) -> Checkpoint {
        Checkpoint {
            id: CkptId(id),
            parent: parent.map(CkptId),
            name: None,
            new_objects: Vec::new(),
            deleted_objects: Vec::new(),
            pages: HashMap::new(),
            deltas: HashMap::new(),
            blobs: BTreeMap::new(),
            durable_at: SimTime::ZERO,
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let mut c = ck(3, Some(2));
        c.name = Some("named".into());
        c.new_objects.push((ObjId(7), 16));
        c.deleted_objects.push(ObjId(5));
        c.pages.insert((ObjId(7), 0), BlockPtr(100));
        c.pages.insert((ObjId(7), 3), BlockPtr(101));
        c.deltas.insert((ObjId(7), 4), 17);
        c.blobs.insert("proc/1".into(), vec![1, 2, 3]);
        let mut e = Encoder::new();
        c.encode(&mut e);
        let bytes = e.finish();
        let d = Checkpoint::decode(&mut Decoder::new(&bytes)).unwrap();
        assert_eq!(d.id, c.id);
        assert_eq!(d.parent, c.parent);
        assert_eq!(d.name, c.name);
        assert_eq!(d.pages, c.pages);
        assert_eq!(d.deltas, c.deltas);
        assert_eq!(d.blobs, c.blobs);
        assert_eq!(d.new_objects, c.new_objects);
        assert_eq!(d.deleted_objects, c.deleted_objects);
    }

    #[test]
    fn chain_resolution() {
        let mut ckpts = BTreeMap::new();
        let mut c1 = ck(1, None);
        c1.new_objects.push((ObjId(1), 8));
        c1.pages.insert((ObjId(1), 0), BlockPtr(10));
        c1.pages.insert((ObjId(1), 1), BlockPtr(11));
        c1.blobs.insert("m".into(), vec![1]);
        let mut c2 = ck(2, Some(1));
        c2.pages.insert((ObjId(1), 1), BlockPtr(21));
        ckpts.insert(1, c1);
        ckpts.insert(2, c2);

        // Page 0 comes from the parent, page 1 from the child.
        assert_eq!(resolve_page(&ckpts, CkptId(2), ObjId(1), 0), Some(BlockPtr(10)));
        assert_eq!(resolve_page(&ckpts, CkptId(2), ObjId(1), 1), Some(BlockPtr(21)));
        assert_eq!(resolve_page(&ckpts, CkptId(1), ObjId(1), 1), Some(BlockPtr(11)));
        assert_eq!(resolve_page(&ckpts, CkptId(2), ObjId(1), 5), None);
        assert_eq!(resolve_blob(&ckpts, CkptId(2), "m").unwrap(), &[1]);
        assert_eq!(resolve_blob(&ckpts, CkptId(2), "nope"), None);

        let eff = effective_refs(&ckpts, CkptId(2), ObjId(1));
        assert_eq!(eff.get(&0), Some(&PageRef::Full(BlockPtr(10))));
        assert_eq!(eff.get(&1), Some(&PageRef::Full(BlockPtr(21))));
    }

    #[test]
    fn delta_head_outranks_page_entry() {
        let mut ckpts = BTreeMap::new();
        let mut c1 = ck(1, None);
        c1.new_objects.push((ObjId(1), 8));
        c1.pages.insert((ObjId(1), 0), BlockPtr(10));
        let mut c2 = ck(2, Some(1));
        c2.deltas.insert((ObjId(1), 0), 5);
        ckpts.insert(1, c1);
        ckpts.insert(2, c2);
        assert_eq!(
            resolve_ref(&ckpts, CkptId(2), ObjId(1), 0),
            Some(PageRef::Delta(5))
        );
        // resolve_page is full-image-only.
        assert_eq!(resolve_page(&ckpts, CkptId(2), ObjId(1), 0), None);
        assert_eq!(resolve_page(&ckpts, CkptId(1), ObjId(1), 0), Some(BlockPtr(10)));

        // After a GC merge the child can carry both the inherited base
        // (pages) and the newer chain head (deltas) — deltas wins.
        let mut merged = ck(3, None);
        merged.new_objects.push((ObjId(1), 8));
        merged.pages.insert((ObjId(1), 0), BlockPtr(10));
        merged.deltas.insert((ObjId(1), 0), 5);
        let mut m = BTreeMap::new();
        m.insert(3, merged);
        assert_eq!(
            resolve_ref(&m, CkptId(3), ObjId(1), 0),
            Some(PageRef::Delta(5))
        );
        let eff = effective_refs(&m, CkptId(3), ObjId(1));
        assert_eq!(eff.get(&0), Some(&PageRef::Delta(5)));
    }

    #[test]
    fn deletion_masks_history() {
        let mut ckpts = BTreeMap::new();
        let mut c1 = ck(1, None);
        c1.new_objects.push((ObjId(1), 8));
        c1.pages.insert((ObjId(1), 0), BlockPtr(10));
        let mut c2 = ck(2, Some(1));
        c2.deleted_objects.push(ObjId(1));
        ckpts.insert(1, c1);
        ckpts.insert(2, c2);
        assert_eq!(resolve_page(&ckpts, CkptId(2), ObjId(1), 0), None);
        assert_eq!(resolve_page(&ckpts, CkptId(1), ObjId(1), 0), Some(BlockPtr(10)));
        assert!(effective_refs(&ckpts, CkptId(2), ObjId(1)).is_empty());
    }

    #[test]
    fn birth_stops_the_walk() {
        // Object 1 born in c2; a stale page for (1, 0) in c1 must NOT
        // leak through (ids are never reused, but be defensive).
        let mut ckpts = BTreeMap::new();
        let mut c1 = ck(1, None);
        c1.pages.insert((ObjId(1), 0), BlockPtr(99));
        let mut c2 = ck(2, Some(1));
        c2.new_objects.push((ObjId(1), 8));
        ckpts.insert(1, c1);
        ckpts.insert(2, c2);
        assert_eq!(resolve_page(&ckpts, CkptId(2), ObjId(1), 0), None);
    }
}
