//! The data-region block allocator.
//!
//! Blocks are reference counted: a block's count is the number of
//! pointers at it from the live object maps plus one per checkpoint delta
//! that references it (dedup adds more). A block returns to the free list
//! at zero — this is the "lower overhead COW layout" that lets old
//! checkpoints be garbage collected in place.

use std::collections::BTreeSet;

use aurora_sim::error::{Error, Result};

use crate::BlockPtr;

/// The allocator.
#[derive(Debug, Clone)]
pub struct BlockAlloc {
    refs: Vec<u32>,
    /// Free blocks, reused lowest-first: consecutive allocations land on
    /// adjacent blocks whenever possible, which is what lets the flush
    /// path coalesce them into extent-sized device writes.
    free: BTreeSet<u64>,
    /// Next never-used block (bump frontier).
    frontier: u64,
    total: u64,
    in_use: u64,
}

impl BlockAlloc {
    /// Creates an allocator over `total` data blocks.
    pub fn new(total: u64) -> Self {
        BlockAlloc {
            refs: Vec::new(),
            free: BTreeSet::new(),
            frontier: 0,
            total,
            in_use: 0,
        }
    }

    /// Allocates a block with refcount 1.
    pub fn alloc(&mut self) -> Result<BlockPtr> {
        let idx = match self.free.pop_first() {
            Some(i) => i,
            None => {
                if self.frontier >= self.total {
                    return Err(Error::no_space("object store data region full"));
                }
                let i = self.frontier;
                self.frontier += 1;
                i
            }
        };
        if self.refs.len() <= idx as usize {
            self.refs.resize(idx as usize + 1, 0);
        }
        debug_assert_eq!(self.refs[idx as usize], 0, "allocating a live block");
        self.refs[idx as usize] = 1;
        self.in_use += 1;
        Ok(BlockPtr(idx))
    }

    /// Bumps a block's refcount (dedup hit, checkpoint commit).
    pub fn incref(&mut self, b: BlockPtr) {
        debug_assert!(self.refs[b.0 as usize] > 0, "incref of free block");
        self.refs[b.0 as usize] += 1;
    }

    /// Drops a reference; returns true when the block became free.
    pub fn decref(&mut self, b: BlockPtr) -> bool {
        let r = &mut self.refs[b.0 as usize];
        debug_assert!(*r > 0, "decref of free block");
        *r -= 1;
        if *r == 0 {
            self.free.insert(b.0);
            self.in_use -= 1;
            true
        } else {
            false
        }
    }

    /// Current refcount (tests and GC assertions).
    pub fn refs(&self, b: BlockPtr) -> u32 {
        self.refs.get(b.0 as usize).copied().unwrap_or(0)
    }

    /// Restore-path hook: forces a block's refcount (journal replay).
    pub fn set_refs(&mut self, b: BlockPtr, refs: u32) {
        if self.refs.len() <= b.0 as usize {
            self.refs.resize(b.0 as usize + 1, 0);
        }
        let old = self.refs[b.0 as usize];
        self.refs[b.0 as usize] = refs;
        match (old, refs) {
            (0, r) if r > 0 => {
                self.in_use += 1;
                self.frontier = self.frontier.max(b.0 + 1);
                self.free.remove(&b.0);
            }
            (o, 0) if o > 0 => {
                self.in_use -= 1;
                self.free.insert(b.0);
            }
            _ => {}
        }
    }

    /// Blocks currently referenced.
    pub fn in_use(&self) -> u64 {
        self.in_use
    }

    /// Data-block indices with a nonzero refcount, ascending — the live
    /// allocation map a resilver walks to rebuild a replica.
    pub fn allocated(&self) -> impl Iterator<Item = u64> + '_ {
        self.refs
            .iter()
            .enumerate()
            .filter(|(_, &r)| r > 0)
            .map(|(i, _)| i as u64)
    }

    /// Total capacity.
    pub fn total(&self) -> u64 {
        self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_reuse() {
        let mut a = BlockAlloc::new(4);
        let b0 = a.alloc().unwrap();
        let b1 = a.alloc().unwrap();
        assert_ne!(b0, b1);
        assert_eq!(a.in_use(), 2);
        assert!(a.decref(b0));
        assert_eq!(a.in_use(), 1);
        let b2 = a.alloc().unwrap();
        assert_eq!(b2, b0, "freed block reused");
    }

    #[test]
    fn refcounting() {
        let mut a = BlockAlloc::new(4);
        let b = a.alloc().unwrap();
        a.incref(b);
        a.incref(b);
        assert_eq!(a.refs(b), 3);
        assert!(!a.decref(b));
        assert!(!a.decref(b));
        assert!(a.decref(b));
        assert_eq!(a.refs(b), 0);
    }

    #[test]
    fn exhaustion() {
        let mut a = BlockAlloc::new(2);
        a.alloc().unwrap();
        let b = a.alloc().unwrap();
        assert!(a.alloc().is_err());
        a.decref(b);
        assert!(a.alloc().is_ok());
    }

    #[test]
    fn reuse_is_lowest_first() {
        let mut a = BlockAlloc::new(8);
        let blocks: Vec<BlockPtr> = (0..6).map(|_| a.alloc().unwrap()).collect();
        // Free out of order; reallocation hands back ascending blocks.
        a.decref(blocks[4]);
        a.decref(blocks[1]);
        a.decref(blocks[3]);
        assert_eq!(a.alloc().unwrap(), blocks[1]);
        assert_eq!(a.alloc().unwrap(), blocks[3]);
        assert_eq!(a.alloc().unwrap(), blocks[4]);
    }

    #[test]
    fn set_refs_replay() {
        let mut a = BlockAlloc::new(10);
        a.set_refs(BlockPtr(7), 3);
        assert_eq!(a.refs(BlockPtr(7)), 3);
        assert_eq!(a.in_use(), 1);
        // The frontier skips past replayed blocks.
        let fresh = a.alloc().unwrap();
        assert!(fresh.0 > 7 || a.refs(fresh) == 1);
        assert_ne!(fresh, BlockPtr(7));
    }
}
