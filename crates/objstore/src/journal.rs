//! The metadata journal.
//!
//! Every commit appends one CRC-protected record (block-aligned) to the
//! journal region; recovery replays records in order, stopping cleanly at
//! a torn tail. When the journal fills past half its capacity, the store
//! *compacts*: it rewrites the whole committed checkpoint table as a
//! single snapshot record at the journal start. Snapshot + deltas is what
//! keeps per-checkpoint metadata cost low — the property the paper needs
//! to take "hundreds of checkpoints per second".

use std::collections::BTreeMap;

use aurora_sim::codec::{Decoder, Encoder};
use aurora_sim::error::{Error, Result};

use aurora_hw::BLOCK_SIZE;

use crate::checkpoint::{Checkpoint, CkptId};
use crate::deltalog::{DeltaLog, DeltaRecord, Lsn};

/// Journal record tags.
pub const TAG_COMMIT: u16 = 1;
/// Deletes (and merges) one checkpoint.
pub const TAG_DELETE: u16 = 2;
/// Full checkpoint-table snapshot (compaction).
pub const TAG_SNAPSHOT: u16 = 3;

/// Record format version. v2 added the delta-record sections (the
/// sub-page delta log rides in the journal: a commit carries the records
/// it appended, a snapshot carries every record still reachable).
pub const REC_VERSION: u16 = 2;

/// A decoded journal record.
#[derive(Debug)]
pub enum JournalRecord {
    /// One committed checkpoint delta plus the sub-page delta records it
    /// appended, in ascending LSN order.
    Commit(Checkpoint, Vec<(Lsn, DeltaRecord)>),
    /// A checkpoint deletion (GC).
    Delete(CkptId),
    /// A compaction snapshot: the whole checkpoint table plus every
    /// still-reachable delta record.
    Snapshot(Vec<Checkpoint>, Vec<(Lsn, DeltaRecord)>),
}

fn encode_delta_section(e: &mut Encoder, records: &[(Lsn, DeltaRecord)]) {
    e.varint(records.len() as u64);
    for (lsn, rec) in records {
        e.varint(*lsn);
        rec.encode(e);
    }
}

fn decode_delta_section(d: &mut Decoder<'_>) -> Result<Vec<(Lsn, DeltaRecord)>> {
    let n = d.varint()? as usize;
    let mut out = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        let lsn = d.varint()?;
        let rec = DeltaRecord::decode(d)?;
        out.push((lsn, rec));
    }
    Ok(out)
}

/// Encodes a record, padded to a whole number of blocks.
pub fn encode_record(rec: &JournalRecord) -> Vec<u8> {
    let mut payload = Encoder::new();
    let tag = match rec {
        JournalRecord::Commit(c, deltas) => {
            c.encode(&mut payload);
            encode_delta_section(&mut payload, deltas);
            TAG_COMMIT
        }
        JournalRecord::Delete(id) => {
            payload.u64(id.0);
            TAG_DELETE
        }
        JournalRecord::Snapshot(cks, deltas) => {
            payload.varint(cks.len() as u64);
            for c in cks {
                c.encode(&mut payload);
            }
            encode_delta_section(&mut payload, deltas);
            TAG_SNAPSHOT
        }
    };
    let payload = payload.into_vec();
    let mut e = Encoder::with_capacity(payload.len() + 16);
    e.record(tag, REC_VERSION, &payload);
    let mut bytes = e.into_vec();
    let padded = bytes.len().div_ceil(BLOCK_SIZE) * BLOCK_SIZE;
    bytes.resize(padded, 0);
    bytes
}

/// Decodes every valid record from the journal bytes.
///
/// A CRC failure or short record is treated as the torn tail: everything
/// before it is returned, everything after is ignored. `used` bounds the
/// region the superblock vouches for.
pub fn decode_records(journal: &[u8], used: u64) -> Vec<JournalRecord> {
    let valid = &journal[..(used as usize).min(journal.len())];
    let mut records = Vec::new();
    let mut off = 0usize;
    while off + 12 <= valid.len() {
        let mut d = Decoder::new(&valid[off..]);
        let rec = match d.record() {
            Ok(r) => r,
            Err(_) => break, // Torn tail.
        };
        let consumed = d.position();
        let parsed = match rec.tag {
            TAG_COMMIT => {
                let mut pd = Decoder::new(rec.payload);
                Checkpoint::decode(&mut pd).and_then(|c| {
                    let deltas = decode_delta_section(&mut pd)?;
                    Ok(JournalRecord::Commit(c, deltas))
                })
            }
            TAG_DELETE => {
                let mut pd = Decoder::new(rec.payload);
                pd.u64().map(|id| JournalRecord::Delete(CkptId(id)))
            }
            TAG_SNAPSHOT => {
                let mut pd = Decoder::new(rec.payload);
                pd.seq(Checkpoint::decode).and_then(|cks| {
                    let deltas = decode_delta_section(&mut pd)?;
                    Ok(JournalRecord::Snapshot(cks, deltas))
                })
            }
            _ => break, // Unknown tag: stop conservatively.
        };
        match parsed {
            Ok(r) => records.push(r),
            Err(_) => break,
        }
        // Records are block-aligned on disk.
        off += consumed.div_ceil(BLOCK_SIZE) * BLOCK_SIZE;
    }
    records
}

/// Replays records into a checkpoint table plus the delta-record log,
/// applying deletions via the same merge logic the live GC path uses.
pub fn replay(records: Vec<JournalRecord>) -> Result<(BTreeMap<u64, Checkpoint>, DeltaLog)> {
    let mut ckpts: BTreeMap<u64, Checkpoint> = BTreeMap::new();
    let mut log = DeltaLog::default();
    for rec in records {
        match rec {
            JournalRecord::Snapshot(list, deltas) => {
                ckpts = list.into_iter().map(|c| (c.id.0, c)).collect();
                log = DeltaLog::default();
                for (lsn, d) in deltas {
                    log.insert(lsn, d)?;
                }
            }
            JournalRecord::Commit(c, deltas) => {
                ckpts.insert(c.id.0, c);
                for (lsn, d) in deltas {
                    log.insert(lsn, d)?;
                }
            }
            JournalRecord::Delete(id) => {
                apply_delete(&mut ckpts, id)?;
            }
        }
    }
    Ok((ckpts, log))
}

/// Replay that tolerates stale records (recovery path): a delete of a
/// checkpoint that is already gone is skipped rather than fatal. This can
/// only arise from stale-but-CRC-valid tails after compaction, whose
/// content was already folded into the snapshot.
pub fn replay_lossy(records: Vec<JournalRecord>) -> (BTreeMap<u64, Checkpoint>, DeltaLog) {
    let mut ckpts: BTreeMap<u64, Checkpoint> = BTreeMap::new();
    let mut log = DeltaLog::default();
    for rec in records {
        match rec {
            JournalRecord::Snapshot(list, deltas) => {
                ckpts = list.into_iter().map(|c| (c.id.0, c)).collect();
                log = DeltaLog::default();
                for (lsn, d) in deltas {
                    let _ = log.insert(lsn, d);
                }
            }
            JournalRecord::Commit(c, deltas) => {
                ckpts.insert(c.id.0, c);
                for (lsn, d) in deltas {
                    let _ = log.insert(lsn, d);
                }
            }
            JournalRecord::Delete(id) => {
                let _ = apply_delete(&mut ckpts, id);
            }
        }
    }
    (ckpts, log)
}

/// Merges checkpoint `id` into its sole child and removes it.
///
/// Entries (pages, blobs, object births/deaths) the child does not
/// override are transferred — pointer moves only, no data rewrites. The
/// caller adjusts block refcounts for the dropped (overridden) pointers;
/// this function returns them.
pub fn apply_delete(
    ckpts: &mut BTreeMap<u64, Checkpoint>,
    id: CkptId,
) -> Result<Vec<crate::BlockPtr>> {
    let children: Vec<u64> = ckpts
        .values()
        .filter(|c| c.parent == Some(id))
        .map(|c| c.id.0)
        .collect();
    if children.len() > 1 {
        return Err(Error::invalid(format!(
            "checkpoint {} has {} children; GC requires a linear chain",
            id.0,
            children.len()
        )));
    }
    let victim = ckpts
        .remove(&id.0)
        .ok_or_else(|| Error::not_found(format!("checkpoint {}", id.0)))?;
    let mut dropped = Vec::new();
    match children.first() {
        None => {
            // No child: every pointer the victim held is released.
            dropped.extend(victim.pages.values().copied());
        }
        Some(&child_id) => {
            let child = ckpts.get_mut(&child_id).ok_or_else(|| {
                Error::internal(format!("checkpoint {child_id} vanished during delete"))
            })?;
            child.parent = victim.parent;
            // Delta heads first: a head the child overrides (full page or
            // newer head) is simply dropped — its records stay reachable
            // through the child chain's back-pointers when still needed,
            // and the caller prunes truly dead segments afterwards.
            for (key, lsn) in victim.deltas {
                let oid = key.0;
                let masked = child.deleted_objects.contains(&oid)
                    || child.new_objects.iter().any(|(o, _)| *o == oid);
                if !masked && !child.pages.contains_key(&key) && !child.deltas.contains_key(&key)
                {
                    child.deltas.insert(key, lsn);
                }
            }
            for (key, ptr) in victim.pages {
                // A child that deleted or re-created the object does not
                // need the old pages.
                let oid = key.0;
                let masked = child.deleted_objects.contains(&oid)
                    || child.new_objects.iter().any(|(o, _)| *o == oid);
                if masked || child.pages.contains_key(&key) {
                    dropped.push(ptr);
                } else {
                    child.pages.insert(key, ptr);
                }
            }
            for (k, v) in victim.blobs {
                child.blobs.entry(k).or_insert(v);
            }
            for (oid, size) in victim.new_objects {
                if !child.deleted_objects.contains(&oid) {
                    child.new_objects.push((oid, size));
                } else {
                    // Born in the victim, deleted in the child: the object
                    // never existed as far as later checkpoints care.
                    child.deleted_objects.retain(|&o| o != oid);
                    child.pages.retain(|(o, _), _| *o != oid);
                    child.deltas.retain(|(o, _), _| *o != oid);
                }
            }
            for oid in victim.deleted_objects {
                if !child.deleted_objects.contains(&oid) {
                    child.deleted_objects.push(oid);
                }
            }
        }
    }
    Ok(dropped)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::resolve_page;
    use crate::{BlockPtr, ObjId};
    use aurora_sim::time::SimTime;
    use std::collections::HashMap;

    fn ck(id: u64, parent: Option<u64>) -> Checkpoint {
        Checkpoint {
            id: CkptId(id),
            parent: parent.map(CkptId),
            name: None,
            new_objects: Vec::new(),
            deleted_objects: Vec::new(),
            pages: HashMap::new(),
            deltas: HashMap::new(),
            blobs: BTreeMap::new(),
            durable_at: SimTime::ZERO,
        }
    }

    fn dr(oid: u64, idx: u64, prev: Option<Lsn>, chain_len: u32) -> DeltaRecord {
        DeltaRecord {
            oid: ObjId(oid),
            idx,
            epoch: 1,
            base: BlockPtr(10),
            prev,
            chain_len,
            extents: vec![(0, vec![chain_len as u8])],
        }
    }

    #[test]
    fn record_roundtrip_and_torn_tail() {
        let mut c1 = ck(1, None);
        c1.pages.insert((ObjId(1), 0), BlockPtr(5));
        let bytes1 = encode_record(&JournalRecord::Commit(c1, Vec::new()));
        let bytes2 = encode_record(&JournalRecord::Delete(CkptId(1)));
        assert_eq!(bytes1.len() % BLOCK_SIZE, 0);

        let mut journal = Vec::new();
        journal.extend_from_slice(&bytes1);
        journal.extend_from_slice(&bytes2);
        // Append garbage that looks like a torn record.
        journal.extend_from_slice(&[0xFFu8; BLOCK_SIZE]);

        let recs = decode_records(&journal, journal.len() as u64);
        assert_eq!(recs.len(), 2);
        assert!(matches!(recs[0], JournalRecord::Commit(_, _)));
        assert!(matches!(recs[1], JournalRecord::Delete(CkptId(1))));

        // Truncated `used` hides the second record.
        let recs = decode_records(&journal, bytes1.len() as u64);
        assert_eq!(recs.len(), 1);
    }

    #[test]
    fn replay_snapshot_then_deltas() {
        let mut c1 = ck(1, None);
        c1.new_objects.push((ObjId(1), 4));
        c1.pages.insert((ObjId(1), 0), BlockPtr(10));
        let mut c2 = ck(2, Some(1));
        c2.pages.insert((ObjId(1), 0), BlockPtr(20));
        let mut journal = Vec::new();
        journal.extend_from_slice(&encode_record(&JournalRecord::Snapshot(vec![c1], Vec::new())));
        journal.extend_from_slice(&encode_record(&JournalRecord::Commit(c2, Vec::new())));
        let (ckpts, log) = replay(decode_records(&journal, journal.len() as u64)).unwrap();
        assert_eq!(ckpts.len(), 2);
        assert!(log.is_empty());
        assert_eq!(resolve_page(&ckpts, CkptId(2), ObjId(1), 0), Some(BlockPtr(20)));
    }

    #[test]
    fn replay_rebuilds_delta_log() {
        let mut c1 = ck(1, None);
        c1.new_objects.push((ObjId(1), 4));
        c1.pages.insert((ObjId(1), 0), BlockPtr(10));
        let mut c2 = ck(2, Some(1));
        c2.deltas.insert((ObjId(1), 0), 1);
        let mut c3 = ck(3, Some(2));
        c3.deltas.insert((ObjId(1), 0), 2);
        let mut journal = Vec::new();
        journal.extend_from_slice(&encode_record(&JournalRecord::Commit(c1, Vec::new())));
        journal.extend_from_slice(&encode_record(&JournalRecord::Commit(
            c2,
            vec![(1, dr(1, 0, None, 1))],
        )));
        journal.extend_from_slice(&encode_record(&JournalRecord::Commit(
            c3,
            vec![(2, dr(1, 0, Some(1), 2))],
        )));
        let (ckpts, log) = replay(decode_records(&journal, journal.len() as u64)).unwrap();
        assert_eq!(ckpts.len(), 3);
        assert_eq!(log.len(), 2);
        assert_eq!(log.next_lsn(), 3);
        assert_eq!(log.chain(2).unwrap().len(), 2);
        use crate::checkpoint::{resolve_ref, PageRef};
        assert_eq!(
            resolve_ref(&ckpts, CkptId(3), ObjId(1), 0),
            Some(PageRef::Delta(2))
        );
        // A compaction snapshot carries the records forward verbatim.
        let snap = encode_record(&JournalRecord::Snapshot(
            ckpts.values().cloned().collect(),
            log.iter().map(|(l, r)| (l, r.clone())).collect(),
        ));
        let (ckpts2, log2) = replay(decode_records(&snap, snap.len() as u64)).unwrap();
        assert_eq!(ckpts2.len(), 3);
        assert_eq!(log2.len(), 2);
        assert_eq!(log2.next_lsn(), 3);
    }

    #[test]
    fn delete_merge_is_delta_aware() {
        // c1 holds the base image; c2 a delta head; c3 a newer head.
        let mut ckpts = BTreeMap::new();
        let mut c1 = ck(1, None);
        c1.new_objects.push((ObjId(1), 8));
        c1.pages.insert((ObjId(1), 0), BlockPtr(10));
        let mut c2 = ck(2, Some(1));
        c2.deltas.insert((ObjId(1), 0), 1);
        let mut c3 = ck(3, Some(2));
        c3.deltas.insert((ObjId(1), 0), 2);
        ckpts.insert(1, c1);
        ckpts.insert(2, c2);
        ckpts.insert(3, c3);

        // Deleting c1 inherits the chain's base block into c2 — the base
        // must NOT be released while a chain still replays over it.
        let dropped = apply_delete(&mut ckpts, CkptId(1)).unwrap();
        assert!(dropped.is_empty());
        let c2 = ckpts.get(&2).unwrap();
        assert_eq!(c2.pages.get(&(ObjId(1), 0)), Some(&BlockPtr(10)));
        assert_eq!(c2.deltas.get(&(ObjId(1), 0)), Some(&1));

        // Deleting c2 drops its (older) head: c3's chain still reaches
        // lsn 1 through its back-pointer, and the base moves to c3.
        let dropped = apply_delete(&mut ckpts, CkptId(2)).unwrap();
        assert!(dropped.is_empty());
        let c3 = ckpts.get(&3).unwrap();
        assert_eq!(c3.pages.get(&(ObjId(1), 0)), Some(&BlockPtr(10)));
        assert_eq!(c3.deltas.get(&(ObjId(1), 0)), Some(&2));
    }

    #[test]
    fn delete_merges_into_child() {
        let mut ckpts = BTreeMap::new();
        let mut c1 = ck(1, None);
        c1.new_objects.push((ObjId(1), 8));
        c1.pages.insert((ObjId(1), 0), BlockPtr(10));
        c1.pages.insert((ObjId(1), 1), BlockPtr(11));
        c1.blobs.insert("meta".into(), vec![1]);
        let mut c2 = ck(2, Some(1));
        c2.pages.insert((ObjId(1), 1), BlockPtr(21));
        ckpts.insert(1, c1);
        ckpts.insert(2, c2);

        let dropped = apply_delete(&mut ckpts, CkptId(1)).unwrap();
        // Page 1 was overridden by the child: its old block is released.
        assert_eq!(dropped, vec![BlockPtr(11)]);
        // Page 0 and the blob transferred; reads still resolve.
        assert_eq!(resolve_page(&ckpts, CkptId(2), ObjId(1), 0), Some(BlockPtr(10)));
        assert_eq!(resolve_page(&ckpts, CkptId(2), ObjId(1), 1), Some(BlockPtr(21)));
        let c2 = ckpts.get(&2).unwrap();
        assert_eq!(c2.parent, None);
        assert_eq!(c2.blobs.get("meta").unwrap(), &vec![1]);
        assert_eq!(c2.new_objects, vec![(ObjId(1), 8)]);
    }

    #[test]
    fn delete_last_checkpoint_releases_everything() {
        let mut ckpts = BTreeMap::new();
        let mut c1 = ck(1, None);
        c1.pages.insert((ObjId(1), 0), BlockPtr(10));
        ckpts.insert(1, c1);
        let dropped = apply_delete(&mut ckpts, CkptId(1)).unwrap();
        assert_eq!(dropped, vec![BlockPtr(10)]);
        assert!(ckpts.is_empty());
    }

    #[test]
    fn delete_with_branches_refused() {
        let mut ckpts = BTreeMap::new();
        ckpts.insert(1, ck(1, None));
        ckpts.insert(2, ck(2, Some(1)));
        ckpts.insert(3, ck(3, Some(1)));
        assert!(apply_delete(&mut ckpts, CkptId(1)).is_err());
    }
}
