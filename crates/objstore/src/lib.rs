//! The Aurora object store.
//!
//! The paper's second component: a copy-on-write on-disk layout that
//! sustains *hundreds of checkpoints per second* — far beyond what
//! WAFL/ZFS-style filesystem snapshots were designed for — while
//! supporting page deduplication and in-place garbage collection (old
//! incremental checkpoints are dropped without rewriting newer ones).
//!
//! Design (see `DESIGN.md` §3):
//!
//! * **Objects** are sparse arrays of 4 KiB pages identified by
//!   [`ObjId`]; each live object has a page map from page index to a
//!   reference-counted data block.
//! * **Checkpoints** ([`CkptId`]) are *deltas*: the set of page-map
//!   changes and metadata blobs accumulated since the previous commit,
//!   plus a parent link. Reading "object X page N at checkpoint C" walks
//!   the chain from C toward the root until a delta covers the page.
//! * **Dedup**: page payloads are content-hashed; a write whose content
//!   already exists on disk just bumps a block refcount — this is what
//!   makes a serverless function image a "small delta over the runtime
//!   container's checkpoint".
//! * **Delta log**: pages whose dirty footprint is a few bytes append
//!   sub-page delta records (offset/len extents chained by `prev` LSN
//!   back-pointers over a full base image) to the metadata journal
//!   instead of rewriting a 4 KiB block — the log *is* the checkpoint
//!   for small mutations (see `DESIGN.md` §16).
//! * **Durability**: metadata (journal records + dual superblocks) is
//!   written through the device with CRCs and recovered after crashes;
//!   bulk page payloads charge real device time through the timing
//!   interface while their authoritative contents stay in the store's
//!   compact page table (see `BlockDev::submit_write_timing` for why).
//!   Commits return the virtual instant at which the checkpoint is
//!   power-loss-safe, so the SLS can flush asynchronously.
//! * **GC**: deleting the oldest checkpoint merges its still-needed
//!   pointers into its child (metadata only — no data is rewritten) and
//!   releases the rest.

pub mod alloc;
pub mod checkpoint;
pub mod deltalog;
pub mod journal;
pub mod layout;
pub mod store;
pub mod stream;
pub mod txn;

pub use checkpoint::{Checkpoint, CkptId, PageRef};
pub use deltalog::{DeltaLog, DeltaRecord, Lsn};
pub use store::{
    ObjectStore, PageWrite, ReadOutcome, ReadPlan, ResilverReport, StoreConfig, StoreStats,
    DEDUP_SHARDS, DEFAULT_READ_CACHE_PAGES, EXTENT_BLOCKS,
};

/// Identifier of a stored object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjId(pub u64);

/// Index of a data block within the store's data region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockPtr(pub u64);
