//! Typestate tokens for the commit protocol.
//!
//! The store's durability contract hinges on one ordering: journal
//! record → flush barrier → superblock flip → flush. Before this module
//! that ordering was enforced by tests and review; now each phase yields
//! a distinct zero-sized token whose only constructors are the
//! phase-transition methods below, so *skipping or reordering a phase
//! does not typecheck* (SquirrelFS's trick, applied to the Aurora
//! commit path).
//!
//! The state machine (DESIGN.md §15):
//!
//! ```text
//! DirtyTxn ──seal_journal──▶ JournalSealed ──extent_barrier──▶
//!     ExtentsDurable ──flip_superblock──▶ Committed
//! ```
//!
//! * [`DirtyTxn`] — staged mutations exist only in memory and in
//!   unflushed device queues. Minted by [`ObjectStore::begin_txn`];
//!   crashing here loses exactly the pending delta.
//! * [`JournalSealed`] — the delta's journal record has been *submitted*
//!   to the journal region (and nowhere else — the transition checks the
//!   LBAs). Not yet durable: a cut here replays the old state.
//! * [`ExtentsDurable`] — the flush barrier completed, so the journal
//!   record **and every previously submitted data extent** are on the
//!   platter. The superblock still points at the old journal length, so
//!   recovery still serves the old head; a retried transaction rewrites
//!   the same journal offset, which is what makes the flip idempotent.
//! * [`Committed`] — the alternating superblock carrying the new epoch
//!   is durable; recovery now replays the new record.
//!
//! Each token is consumed **by value** by the next transition, so a
//! token can be used at most once, and only the transition that does the
//! corresponding device I/O can mint the next one. The `commit_phase`
//! lint (crates/lint) closes the remaining hole: raw `submit_write`/
//! `write_blocks`/`repair_block` calls are forbidden outside the
//! token-bearing functions allowlisted in `lint-allow.toml`.
//!
//! A valid sequence compiles and runs (this is `ObjectStore::commit`):
//!
//! ```
//! use aurora_hw::ModelDev;
//! use aurora_objstore::{ObjId, ObjectStore, StoreConfig};
//! use aurora_sim::SimClock;
//!
//! let dev = Box::new(ModelDev::nvme(SimClock::new(), "nvme0", 64 * 1024));
//! let mut s = ObjectStore::format(dev, StoreConfig::default()).unwrap();
//! s.create_object(ObjId(1), 4).unwrap();
//! s.write_page(ObjId(1), 0, &aurora_vm::PageData::Seeded(7)).unwrap();
//! let txn = s.begin_txn();
//! let (ckpt, _durable) = s.commit_txn(txn, Some("typed")).unwrap();
//! assert_eq!(s.checkpoint_by_name("typed").unwrap().id, ckpt);
//! ```
//!
//! Skipping the flush barrier is a type error — `flip_superblock` wants
//! [`ExtentsDurable`], not [`JournalSealed`]:
//!
//! ```compile_fail
//! use aurora_objstore::{txn::JournalSealed, ObjectStore};
//!
//! fn skip_barrier(s: &mut ObjectStore, sealed: JournalSealed) {
//!     let _ = s.flip_superblock(sealed); // expected `ExtentsDurable`
//! }
//! ```
//!
//! Reordering — flipping the superblock straight from a dirty
//! transaction — is equally rejected:
//!
//! ```compile_fail
//! use aurora_objstore::ObjectStore;
//!
//! fn flip_first(s: &mut ObjectStore) {
//!     let txn = s.begin_txn();
//!     let _ = s.flip_superblock(txn); // expected `ExtentsDurable`, found `DirtyTxn`
//! }
//! ```
//!
//! Tokens cannot be forged outside this module (private field):
//!
//! ```compile_fail
//! let fake = aurora_objstore::txn::ExtentsDurable { _sealed: () };
//! ```
//!
//! And a consumed token cannot be replayed (moved value):
//!
//! ```compile_fail
//! use aurora_objstore::{txn::ExtentsDurable, ObjectStore};
//!
//! fn double_flip(s: &mut ObjectStore, tok: ExtentsDurable) {
//!     let _ = s.flip_superblock(tok);
//!     let _ = s.flip_superblock(tok); // use of moved value
//! }
//! ```

use aurora_hw::BLOCK_SIZE;
use aurora_sim::error::{Error, Result};
use aurora_sim::time::SimTime;

use crate::layout::JOURNAL_START;
use crate::store::ObjectStore;

/// Phase 0: staged mutations, nothing journaled. See the module docs.
#[must_use = "a transaction token does nothing until driven through the phases"]
#[derive(Debug)]
pub struct DirtyTxn {
    _sealed: (),
}

/// Phase 1: the journal record is submitted (not yet durable).
#[must_use = "a sealed journal is not durable until the extent barrier"]
#[derive(Debug)]
pub struct JournalSealed {
    _sealed: (),
}

/// Phase 2: journal record and all prior data extents are on the
/// platter; the superblock still points at the old state.
#[must_use = "durable extents are invisible until the superblock flips"]
#[derive(Debug)]
pub struct ExtentsDurable {
    _sealed: (),
}

/// Phase 3: the flipped superblock is durable — the transaction is the
/// recovered state from here on.
#[derive(Debug)]
pub struct Committed {
    _sealed: (),
}

/// A superblock flip that did not complete.
///
/// `submitted` distinguishes the two failure points: `false` means the
/// superblock write never reached the device queue (the epoch was rolled
/// back; the caller should roll back its own geometry so a retry rewrites
/// the same journal offset), `true` means the write was queued but the
/// final flush failed — indistinguishable from a crash, so nothing is
/// unwound and recovery decides.
#[derive(Debug)]
pub struct FlipAbort {
    /// The underlying device error.
    pub error: Error,
    /// Whether the superblock write was accepted before the failure.
    pub submitted: bool,
}

impl ObjectStore {
    /// Opens a commit transaction over the staged delta, minting the
    /// phase-0 token. Purely a typestate operation — no I/O.
    pub fn begin_txn(&mut self) -> DirtyTxn {
        DirtyTxn { _sealed: () }
    }

    /// Phase transition `DirtyTxn → JournalSealed`: submits the
    /// transaction's records to the journal region.
    ///
    /// Every write must target the journal (`JOURNAL_START ..
    /// data_start`) — this transition is the only licensed journal
    /// writer, so the check turns a stray LBA into an error instead of
    /// a corrupted data block.
    pub fn seal_journal(
        &mut self,
        txn: DirtyTxn,
        writes: &[(u64, &[u8])],
    ) -> Result<JournalSealed> {
        let DirtyTxn { _sealed: () } = txn;
        let journal_end = self.sb.data_start();
        for &(lba, bytes) in writes {
            let blocks = (bytes.len() as u64).div_ceil(BLOCK_SIZE as u64);
            if lba < JOURNAL_START || lba + blocks > journal_end {
                return Err(Error::internal(format!(
                    "seal_journal write at lba {lba} (+{blocks} blocks) is outside \
                     the journal region [{JOURNAL_START}, {journal_end})"
                )));
            }
            self.dev.get_mut().submit_write(lba, bytes)?;
        }
        self.stats.journal_seals += 1;
        Ok(JournalSealed { _sealed: () })
    }

    /// Phase transition `JournalSealed → ExtentsDurable`: the flush
    /// barrier that makes the sealed record *and every data extent
    /// submitted before it* durable.
    pub fn extent_barrier(&mut self, sealed: JournalSealed) -> Result<ExtentsDurable> {
        let JournalSealed { _sealed: () } = sealed;
        self.dev.get_mut().flush()?;
        self.stats.extent_barriers += 1;
        Ok(ExtentsDurable { _sealed: () })
    }

    /// Phase transition `ExtentsDurable → Committed`: bumps the epoch,
    /// writes the alternating superblock slot and flushes. Returns the
    /// virtual instant at which the transaction is power-loss-safe (the
    /// caller's clock is not advanced).
    ///
    /// Consumes the barrier evidence **by value** — there is no way to
    /// flip the superblock twice from one barrier, or without one.
    pub fn flip_superblock(
        &mut self,
        tok: ExtentsDurable,
    ) -> std::result::Result<(Committed, SimTime), FlipAbort> {
        let ExtentsDurable { _sealed: () } = tok;
        self.sb.epoch += 1;
        let slot = self.sb.epoch % 2;
        let block = self.sb.to_block();
        if let Err(error) = self.dev.get_mut().submit_write(slot, &block) {
            // The flip never reached the queue: no durable superblock
            // covers the sealed record. Roll the epoch back so a retried
            // transaction reuses it; the caller unwinds its geometry.
            self.sb.epoch -= 1;
            return Err(FlipAbort {
                error,
                submitted: false,
            });
        }
        match self.dev.get_mut().flush() {
            Ok(durable) => {
                self.stats.superblock_flips += 1;
                Ok((Committed { _sealed: () }, durable))
            }
            // Queued but not durably flushed — a crash-equivalent state;
            // recovery picks whichever superblock made it.
            Err(error) => Err(FlipAbort {
                error,
                submitted: true,
            }),
        }
    }
}
