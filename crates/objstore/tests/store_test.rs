//! Object-store integration tests: commits, history reads, crash
//! recovery, dedup, in-place GC, export/import, and a model-based
//! property test against a reference store.

// Test code asserts invariants; the workspace unwrap/expect denial is
// for production flush paths.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use std::collections::HashMap;

use aurora_hw::{FaultPlan, ModelDev};
use aurora_objstore::{ObjId, ObjectStore, StoreConfig};
use aurora_sim::SimClock;
use aurora_vm::PageData;
use proptest::prelude::*;

const DEV_BLOCKS: u64 = 64 * 1024;

fn new_store() -> ObjectStore {
    let clock = SimClock::new();
    let dev = Box::new(ModelDev::nvme(clock, "nvme0", DEV_BLOCKS));
    ObjectStore::format(
        dev,
        StoreConfig {
            journal_blocks: 1024,
            ..StoreConfig::default()
        },
    )
    .unwrap()
}

fn page(fill: u8) -> PageData {
    let mut b = vec![0u8; aurora_vm::PAGE_SIZE];
    b.iter_mut().for_each(|x| *x = fill);
    PageData::from_bytes(&b)
}

#[test]
fn write_commit_read_roundtrip() {
    let mut s = new_store();
    s.create_object(ObjId(1), 16).unwrap();
    s.write_page(ObjId(1), 0, &page(0xAA)).unwrap();
    s.write_page(ObjId(1), 5, &PageData::Seeded(7)).unwrap();
    s.put_blob("proc/1", vec![1, 2, 3]);
    let (ck, durable) = s.commit(Some("first")).unwrap();
    assert!(durable > aurora_sim::SimTime::ZERO);

    assert!(s.read_page(ObjId(1), 0).unwrap().unwrap().content_eq(&page(0xAA)));
    assert!(s
        .read_page_at(ck, ObjId(1), 5)
        .unwrap()
        .unwrap()
        .content_eq(&PageData::Seeded(7)));
    assert!(s.read_page(ObjId(1), 9).unwrap().is_none(), "sparse page");
    assert_eq!(s.get_blob(ck, "proc/1").unwrap().unwrap(), vec![1, 2, 3]);
    assert_eq!(s.get_blob(ck, "nope").unwrap(), None);
    assert_eq!(s.checkpoint_by_name("first").unwrap().id, ck);
}

#[test]
fn incremental_history_reads() {
    let mut s = new_store();
    s.create_object(ObjId(1), 4).unwrap();
    s.write_page(ObjId(1), 0, &page(1)).unwrap();
    let (c1, _) = s.commit(None).unwrap();
    s.write_page(ObjId(1), 0, &page(2)).unwrap();
    let (c2, _) = s.commit(None).unwrap();
    s.write_page(ObjId(1), 0, &page(3)).unwrap();
    let (c3, _) = s.commit(None).unwrap();

    // Time travel: every version remains readable.
    assert!(s.read_page_at(c1, ObjId(1), 0).unwrap().unwrap().content_eq(&page(1)));
    assert!(s.read_page_at(c2, ObjId(1), 0).unwrap().unwrap().content_eq(&page(2)));
    assert!(s.read_page_at(c3, ObjId(1), 0).unwrap().unwrap().content_eq(&page(3)));
}

#[test]
fn uncommitted_state_lost_on_recovery() {
    let mut s = new_store();
    s.create_object(ObjId(1), 4).unwrap();
    s.write_page(ObjId(1), 0, &page(1)).unwrap();
    let (c1, _) = s.commit(Some("durable")).unwrap();

    // Uncommitted second write.
    s.write_page(ObjId(1), 0, &page(2)).unwrap();
    s.create_object(ObjId(2), 4).unwrap();

    let s = s.recover().unwrap();
    assert!(
        s.read_page(ObjId(1), 0).unwrap().unwrap().content_eq(&page(1)),
        "recovered to committed contents"
    );
    assert!(!s.object_exists(ObjId(2)), "uncommitted object gone");
    assert_eq!(s.checkpoints().len(), 1);
    assert_eq!(s.head(), Some(c1));
}

#[test]
fn power_cut_during_commit_preserves_previous_checkpoint() {
    // Cut power on each of the first few writes of the second commit; in
    // every case recovery must land exactly on the first checkpoint.
    for cut_at in 1..=3u64 {
        let clock = SimClock::new();
        let dev = Box::new(ModelDev::nvme(clock, "nvme0", DEV_BLOCKS));
        let mut s = ObjectStore::format(
            dev,
            StoreConfig {
                journal_blocks: 512,
                materialize_data: false,
                dedup: true,
                ..StoreConfig::default()
            },
        )
        .unwrap();
        s.create_object(ObjId(1), 4).unwrap();
        s.write_page(ObjId(1), 0, &page(1)).unwrap();
        let (c1, _) = s.commit(Some("good")).unwrap();

        s.write_page(ObjId(1), 0, &page(2)).unwrap();
        // Note: write_page uses timing-only submissions, so the fault plan
        // triggers on the *metadata* writes of the commit itself.
        s.device_mut().install_fault_plan(FaultPlan::power_cut(cut_at));
        let result = s.commit(Some("torn"));
        if result.is_ok() {
            // The cut landed after the commit became durable; fine.
            continue;
        }
        let s = s.recover().unwrap();
        assert_eq!(s.head(), Some(c1), "cut at write {cut_at}");
        assert!(s.read_page(ObjId(1), 0).unwrap().unwrap().content_eq(&page(1)));
        assert!(s.checkpoint_by_name("torn").is_none());
    }
}

#[test]
fn dedup_shares_identical_pages() {
    let mut s = new_store();
    s.create_object(ObjId(1), 64).unwrap();
    s.create_object(ObjId(2), 64).unwrap();
    // The same 16 pages written to two objects.
    for i in 0..16 {
        s.write_page(ObjId(1), i, &PageData::Seeded(1000 + i)).unwrap();
    }
    let before = s.blocks_in_use();
    for i in 0..16 {
        s.write_page(ObjId(2), i, &PageData::Seeded(1000 + i)).unwrap();
    }
    assert_eq!(s.blocks_in_use(), before, "second copy costs zero blocks");
    assert_eq!(s.stats.dedup_hits, 16);
    s.commit(None).unwrap();
    // Contents independent: writing one does not affect the other.
    s.write_page(ObjId(2), 0, &page(0xFF)).unwrap();
    s.commit(None).unwrap();
    assert!(s.read_page(ObjId(1), 0).unwrap().unwrap().content_eq(&PageData::Seeded(1000)));
}

#[test]
fn gc_in_place_keeps_newer_checkpoints_readable() {
    let mut s = new_store();
    s.create_object(ObjId(1), 8).unwrap();
    for i in 0..8 {
        s.write_page(ObjId(1), i, &PageData::Seeded(i)).unwrap();
    }
    let (c1, _) = s.commit(Some("full")).unwrap();
    s.write_page(ObjId(1), 0, &PageData::Seeded(100)).unwrap();
    let (c2, _) = s.commit(Some("incr1")).unwrap();
    s.write_page(ObjId(1), 1, &PageData::Seeded(101)).unwrap();
    let (c3, _) = s.commit(Some("incr2")).unwrap();

    let blocks_before = s.blocks_in_use();
    s.delete_checkpoint(c1).unwrap();
    assert!(s.checkpoint(c1).is_err());
    // The overridden page-0 block of c1 was released.
    assert!(s.blocks_in_use() < blocks_before + 1);

    // All surviving versions still resolve, including pages inherited
    // from the deleted checkpoint.
    assert!(s.read_page_at(c2, ObjId(1), 7).unwrap().unwrap().content_eq(&PageData::Seeded(7)));
    assert!(s.read_page_at(c3, ObjId(1), 0).unwrap().unwrap().content_eq(&PageData::Seeded(100)));
    assert!(s.read_page_at(c3, ObjId(1), 1).unwrap().unwrap().content_eq(&PageData::Seeded(101)));

    // GC also survives recovery (the delete is journaled).
    let s = s.recover().unwrap();
    assert_eq!(s.checkpoints().len(), 2);
    assert!(s.read_page_at(c3, ObjId(1), 0).unwrap().unwrap().content_eq(&PageData::Seeded(100)));
}

#[test]
fn gc_trims_history_window() {
    // The paper: "Aurora uses free space on-disk to provide a short
    // execution history as incremental checkpoints." Simulate a rolling
    // window: keep the last 4, GC the oldest.
    let mut s = new_store();
    s.create_object(ObjId(1), 4).unwrap();
    let mut ids = Vec::new();
    for round in 0..20u64 {
        s.write_page(ObjId(1), round % 4, &PageData::Seeded(round)).unwrap();
        let (c, _) = s.commit(None).unwrap();
        ids.push(c);
        if ids.len() > 4 {
            let victim = ids.remove(0);
            s.delete_checkpoint(victim).unwrap();
        }
    }
    assert_eq!(s.checkpoints().len(), 4);
    // Latest state intact.
    assert!(s.read_page(ObjId(1), 3).unwrap().unwrap().content_eq(&PageData::Seeded(19)));
    // Block usage is bounded (no leak from deleted checkpoints).
    assert!(s.blocks_in_use() <= 4 + 4 * 4);
}

#[test]
fn delete_object_history_still_readable() {
    let mut s = new_store();
    s.create_object(ObjId(1), 4).unwrap();
    s.write_page(ObjId(1), 0, &page(9)).unwrap();
    let (c1, _) = s.commit(None).unwrap();
    s.delete_object(ObjId(1)).unwrap();
    let (c2, _) = s.commit(None).unwrap();
    assert!(s.read_page_at(c1, ObjId(1), 0).unwrap().is_some());
    assert!(s.read_page_at(c2, ObjId(1), 0).unwrap().is_none());
    assert!(s.read_page(ObjId(1), 0).is_err());
}

#[test]
fn export_import_between_hosts() {
    let mut src = new_store();
    src.create_object(ObjId(10), 8).unwrap();
    src.write_page(ObjId(10), 0, &page(0x42)).unwrap();
    src.write_page(ObjId(10), 3, &PageData::Seeded(33)).unwrap();
    src.put_blob("proc/main", b"metadata".to_vec());
    let (ck, _) = src.commit(Some("to-send")).unwrap();
    // Another incremental after the exported one: export is cut at `ck`.
    src.write_page(ObjId(10), 0, &page(0x43)).unwrap();
    src.commit(None).unwrap();

    let stream = src.export_checkpoint(ck).unwrap();

    let mut dst = new_store();
    let (imported, _) = dst.import_stream(&stream).unwrap();
    assert_eq!(dst.checkpoint(imported).unwrap().name.as_deref(), Some("to-send"));
    assert!(dst.read_page(ObjId(10), 0).unwrap().unwrap().content_eq(&page(0x42)));
    assert!(dst.read_page(ObjId(10), 3).unwrap().unwrap().content_eq(&PageData::Seeded(33)));
    assert_eq!(dst.get_blob(imported, "proc/main").unwrap().unwrap(), b"metadata");
    // Sparse pages stay sparse.
    assert!(dst.read_page(ObjId(10), 5).unwrap().is_none());
}

#[test]
fn journal_compaction_preserves_state() {
    // A tiny journal forces compaction; state must survive many commits
    // plus recovery.
    let clock = SimClock::new();
    let dev = Box::new(ModelDev::nvme(clock, "nvme0", DEV_BLOCKS));
    let mut s = ObjectStore::format(
        dev,
        StoreConfig {
            journal_blocks: 8, // 32 KiB: compacts every few commits
            dedup: true,
            materialize_data: false,
            ..StoreConfig::default()
        },
    )
    .unwrap();
    s.create_object(ObjId(1), 4).unwrap();
    for round in 0..50u64 {
        s.write_page(ObjId(1), round % 4, &PageData::Seeded(round)).unwrap();
        let (c, _) = s.commit(None).unwrap();
        // Keep the chain short so snapshots fit the tiny journal.
        if s.checkpoints().len() > 3 {
            let oldest = s.checkpoints()[0].id;
            if oldest != c {
                s.delete_checkpoint(oldest).unwrap();
            }
        }
    }
    assert!(s.stats.compactions > 0, "compaction exercised");
    let s2 = s.recover().unwrap();
    let s2 = s2;
    assert!(s2.read_page(ObjId(1), 1).unwrap().unwrap().content_eq(&PageData::Seeded(49)));
}

#[test]
fn commit_durability_is_asynchronous() {
    let clock = SimClock::new();
    let dev = Box::new(ModelDev::nvme(clock.clone(), "nvme0", DEV_BLOCKS));
    let mut s = ObjectStore::format(dev, StoreConfig::default()).unwrap();
    s.create_object(ObjId(1), 256).unwrap();
    for i in 0..256u64 {
        s.write_page(ObjId(1), i, &PageData::Seeded(i)).unwrap();
    }
    let before = clock.now();
    let (_, durable) = s.commit(None).unwrap();
    // The caller's clock barely moved; durability lies in the future
    // because 1 MiB of page data plus metadata is still in flight.
    assert!(durable > before);
    assert!(
        clock.now().since(before) < durable.since(before),
        "commit returned before the data hit stable storage"
    );
}

// --- Model-based property test -------------------------------------------

#[derive(Debug, Clone)]
enum Op {
    Write { obj: u8, idx: u8, seed: u64 },
    Commit,
    Recover,
    /// GC the oldest checkpoint (in-place merge).
    GcOldest,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0u8..3, 0u8..16, any::<u64>()).prop_map(|(obj, idx, seed)| Op::Write { obj, idx, seed }),
        2 => Just(Op::Commit),
        1 => Just(Op::Recover),
        1 => Just(Op::GcOldest),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The store behaves like a map that forgets uncommitted writes on
    /// recovery and never corrupts committed ones.
    #[test]
    fn store_matches_reference_model(ops in proptest::collection::vec(op_strategy(), 1..60)) {
        let mut store = new_store();
        for obj in 0..3u64 {
            store.create_object(ObjId(obj), 16).unwrap();
        }
        store.commit(None).unwrap();

        let mut committed: HashMap<(u64, u64), u64> = HashMap::new();
        let mut pending: HashMap<(u64, u64), u64> = HashMap::new();

        for op in ops {
            match op {
                Op::Write { obj, idx, seed } => {
                    store.write_page(ObjId(obj as u64), idx as u64, &PageData::Seeded(seed)).unwrap();
                    pending.insert((obj as u64, idx as u64), seed);
                }
                Op::Commit => {
                    store.commit(None).unwrap();
                    committed.extend(pending.drain());
                }
                Op::Recover => {
                    store = store.recover().unwrap();
                    pending.clear();
                }
                Op::GcOldest => {
                    let (oldest, head) = {
                        let cks = store.checkpoints();
                        (cks.first().map(|c| c.id), cks.last().map(|c| c.id))
                    };
                    if let (Some(o), Some(h)) = (oldest, head) {
                        if o != h {
                            store.delete_checkpoint(o).unwrap();
                        }
                    }
                }
            }
            // Every mutation leaves the store fsck-clean...
            let problems = store.fsck();
            prop_assert!(problems.is_empty(), "fsck: {:?}", problems);
            // ...and the live view always equals committed ∪ pending.
            let mut expect = committed.clone();
            expect.extend(pending.iter().map(|(k, v)| (*k, *v)));
            for ((obj, idx), seed) in &expect {
                let got = store.read_page(ObjId(*obj), *idx).unwrap();
                prop_assert!(got.is_some(), "page ({obj},{idx}) missing");
                prop_assert!(got.unwrap().content_eq(&PageData::Seeded(*seed)));
            }
        }
    }
}

#[test]
fn fsck_reports_healthy_store_through_lifecycle() {
    let mut s = new_store();
    s.create_object(ObjId(1), 16).unwrap();
    for i in 0..8u64 {
        s.write_page(ObjId(1), i, &PageData::Seeded(i)).unwrap();
    }
    s.commit(None).unwrap();
    assert!(s.fsck().is_empty(), "{:?}", s.fsck());

    // Dedup + second object.
    s.create_object(ObjId(2), 16).unwrap();
    for i in 0..8u64 {
        s.write_page(ObjId(2), i, &PageData::Seeded(i)).unwrap();
    }
    let (c2, _) = s.commit(None).unwrap();
    assert!(s.fsck().is_empty(), "{:?}", s.fsck());

    // Overwrites + GC + recovery.
    s.write_page(ObjId(1), 0, &page(0xAB)).unwrap();
    s.commit(None).unwrap();
    let oldest = s.checkpoints()[0].id;
    assert_ne!(oldest, c2);
    s.delete_checkpoint(oldest).unwrap();
    assert!(s.fsck().is_empty(), "after GC: {:?}", s.fsck());

    let s = s.recover().unwrap();
    assert!(s.fsck().is_empty(), "after recovery: {:?}", s.fsck());
}

#[test]
fn fsck_after_crash_during_commit() {
    for cut_at in 1..=3u64 {
        let clock = SimClock::new();
        let dev = Box::new(ModelDev::nvme(clock, "nvme0", DEV_BLOCKS));
        let mut s = ObjectStore::format(
            dev,
            StoreConfig {
                journal_blocks: 512,
                ..StoreConfig::default()
            },
        )
        .unwrap();
        s.create_object(ObjId(1), 8).unwrap();
        s.write_page(ObjId(1), 0, &page(1)).unwrap();
        s.commit(None).unwrap();
        s.write_page(ObjId(1), 1, &page(2)).unwrap();
        s.device_mut().install_fault_plan(FaultPlan::power_cut(cut_at));
        let _ = s.commit(None);
        let s = s.recover().unwrap();
        assert!(s.fsck().is_empty(), "cut {cut_at}: {:?}", s.fsck());
    }
}

#[test]
fn delete_then_recreate_in_one_epoch() {
    // Regression: a delete-then-recreate within a single commit records
    // both the death and the new incarnation. The effective map must
    // keep the new incarnation's pages (the death only kills parents),
    // and export/import must carry the object.
    let mut s = new_store();
    s.create_object(ObjId(4), 8).unwrap();
    s.write_page(ObjId(4), 0, &page(1)).unwrap();
    s.write_page(ObjId(4), 5, &page(2)).unwrap();
    s.commit(None).unwrap();

    s.delete_object(ObjId(4)).unwrap();
    s.create_object(ObjId(4), 8).unwrap();
    s.write_page(ObjId(4), 3, &PageData::Seeded(7)).unwrap();
    let (head, _) = s.commit(None).unwrap();

    // Old incarnation's pages are dead; the new page is live.
    assert!(s.read_page_at(head, ObjId(4), 0).unwrap().is_none());
    assert!(s.read_page_at(head, ObjId(4), 5).unwrap().is_none());
    assert!(s.read_page_at(head, ObjId(4), 3).unwrap().is_some());
    let map = s.object_refs_at(head, ObjId(4));
    assert_eq!(map.len(), 1, "only the new incarnation's page");
    assert_eq!(map[0].0, 3);

    // The exported stream carries the recreated object.
    let bytes = s.export_checkpoint(head).unwrap();
    let mut dst = new_store();
    let (hb, _) = dst.import_stream(&bytes).unwrap();
    assert!(dst.read_page_at(hb, ObjId(4), 3).unwrap().is_some());
    assert!(dst.read_page_at(hb, ObjId(4), 0).unwrap().is_none());

    // A delta stream applies the death before the birth.
    let delta = s.export_delta(head).unwrap();
    let mut mirror = new_store();
    mirror.create_object(ObjId(4), 8).unwrap();
    mirror.write_page(ObjId(4), 0, &page(1)).unwrap();
    mirror.write_page(ObjId(4), 5, &page(2)).unwrap();
    mirror.commit(None).unwrap();
    let (hm, _) = mirror.import_delta(&delta).unwrap();
    assert!(mirror.read_page_at(hm, ObjId(4), 3).unwrap().is_some());
    assert!(mirror.read_page_at(hm, ObjId(4), 0).unwrap().is_none());
}

#[test]
fn scrub_is_clean_through_a_normal_lifecycle() {
    let mut s = new_store();
    s.create_object(ObjId(1), 8).unwrap();
    for i in 0..4 {
        s.write_page(ObjId(1), i, &page(i as u8 + 1)).unwrap();
    }
    s.commit(Some("a")).unwrap();
    s.write_page(ObjId(1), 0, &page(9)).unwrap();
    s.commit(Some("b")).unwrap();
    assert!(s.scrub().is_empty(), "live store scrubs clean");

    let s = s.recover().unwrap();
    assert!(s.scrub().is_empty(), "recovered store scrubs clean");
}

#[test]
fn scrub_detects_silent_data_corruption_on_the_platter() {
    let clock = SimClock::new();
    let dev = Box::new(ModelDev::nvme(clock, "nvme0", DEV_BLOCKS));
    let mut s = ObjectStore::format(
        dev,
        StoreConfig {
            journal_blocks: 1024,
            dedup: true,
            materialize_data: true,
            ..StoreConfig::default()
        },
    )
    .unwrap();
    s.create_object(ObjId(1), 4).unwrap();
    s.write_page(ObjId(1), 0, &page(0x11)).unwrap();
    s.commit(Some("clean")).unwrap();
    assert!(s.scrub().is_empty());

    // Flip one bit in the next data write as it hits the platter; the
    // in-memory copy and the recorded content hash both stay clean.
    s.device_mut()
        .install_fault_plan(FaultPlan::corrupt(1, 100, 3));
    s.write_page(ObjId(1), 1, &page(0x22)).unwrap();
    s.commit(Some("tainted")).unwrap();

    let problems = s.scrub();
    assert!(
        problems.iter().any(|p| p.contains("content hash mismatch")),
        "scrub must flag the corrupted block: {problems:?}"
    );
}

#[test]
fn rollback_pending_discards_staged_writes() {
    let mut s = new_store();
    s.create_object(ObjId(1), 4).unwrap();
    s.write_page(ObjId(1), 0, &page(1)).unwrap();
    let (c1, _) = s.commit(Some("base")).unwrap();

    // Stage a second epoch, then abandon it.
    s.write_page(ObjId(1), 0, &page(2)).unwrap();
    s.create_object(ObjId(2), 4).unwrap();
    s.write_page(ObjId(2), 0, &page(3)).unwrap();
    s.put_blob("proc/2", vec![9]);
    assert!(s.has_pending());
    s.rollback_pending().unwrap();
    assert!(!s.has_pending());

    // The committed state is intact and the staged epoch left no trace.
    assert!(s.read_page(ObjId(1), 0).unwrap().unwrap().content_eq(&page(1)));
    assert!(!s.object_exists(ObjId(2)));
    assert_eq!(s.head(), Some(c1));
    assert!(s.fsck().is_empty(), "refcounts rebuilt: {:?}", s.fsck());

    // The store keeps working after a rollback.
    s.write_page(ObjId(1), 1, &page(4)).unwrap();
    let (c2, _) = s.commit(Some("after")).unwrap();
    assert!(s.read_page_at(c2, ObjId(1), 1).unwrap().unwrap().content_eq(&page(4)));
    assert!(s.scrub().is_empty());
}

fn materialized_store(dedup: bool) -> (ObjectStore, std::sync::Arc<SimClock>) {
    let clock = SimClock::new();
    let dev = Box::new(ModelDev::nvme(clock.clone(), "nvme0", DEV_BLOCKS));
    let s = ObjectStore::format(
        dev,
        StoreConfig {
            journal_blocks: 1024,
            dedup,
            materialize_data: true,
            ..StoreConfig::default()
        },
    )
    .unwrap();
    (s, clock)
}

#[test]
fn read_plan_coalesces_extents_and_dedups_shared_blocks() {
    let (mut s, clock) = materialized_store(true);
    s.create_object(ObjId(1), 128).unwrap();
    s.create_object(ObjId(2), 4).unwrap();
    for i in 0..100u64 {
        s.write_page(ObjId(1), i, &PageData::Seeded(i + 1)).unwrap();
    }
    // Identical bytes: dedup resolves both targets to one block.
    s.write_page(ObjId(2), 0, &PageData::Seeded(1)).unwrap();
    let (ck, _) = s.commit(Some("plan")).unwrap();

    let mut targets: Vec<(ObjId, u64)> = (0..100).map(|i| (ObjId(1), i)).collect();
    targets.push((ObjId(2), 0));
    targets.push((ObjId(1), 120)); // sparse: never written
    let plan = s.plan_reads_at(ck, &targets);

    assert_eq!(plan.resolved.len(), 102);
    assert_eq!(plan.resolved[100], plan.resolved[0], "dedup shares the block");
    assert_eq!(plan.resolved[101], None, "sparse page resolves to nothing");
    assert_eq!(plan.blocks.len(), 100, "unique blocks only");
    assert!(plan.blocks.windows(2).all(|w| w[0] < w[1]), "sorted ascending");
    let total: usize = plan.extents.iter().map(|&(_, len)| len).sum();
    assert_eq!(total, plan.blocks.len());
    assert!(plan.extents.iter().all(|&(_, len)| len <= aurora_objstore::EXTENT_BLOCKS));
    assert!(
        plan.extents.len() < plan.blocks.len(),
        "adjacent blocks must coalesce: {} extents for {} blocks",
        plan.extents.len(),
        plan.blocks.len()
    );

    // Cold: every block comes off the device in vectored extent reads.
    s.drop_caches().unwrap();
    let t0 = clock.now();
    let cold = s.execute_read_plan(&plan).unwrap();
    let cold_elapsed = clock.now() - t0;
    assert_eq!(cold.cache_hits, 0);
    assert_eq!(cold.cache_misses, 100);
    assert_eq!(cold.fetched.len(), 100);
    assert_eq!(cold.extents_read as usize, plan.extents.len());
    for (t, r) in targets.iter().zip(&plan.resolved) {
        let serial = s.read_page_at(ck, t.0, t.1).unwrap();
        match (r, serial) {
            (Some(ptr), Some(page)) => {
                assert!(cold.pages.get(&ptr.0).unwrap().content_eq(&page))
            }
            (None, None) => {}
            (r, s) => panic!("plan {r:?} vs serial {s:?} for {t:?}"),
        }
    }

    // Warm: same plan, all hits, no device reads, cheaper in virtual time.
    let t1 = clock.now();
    let warm = s.execute_read_plan(&plan).unwrap();
    let warm_elapsed = clock.now() - t1;
    assert_eq!(warm.cache_hits, 100);
    assert_eq!(warm.cache_misses, 0);
    assert_eq!(warm.extents_read, 0);
    assert!(warm.fetched.is_empty());
    assert!(
        warm_elapsed < cold_elapsed,
        "warm {warm_elapsed:?} must undercut cold {cold_elapsed:?}"
    );
    assert_eq!(s.stats.read_cache_hits, 100);
    assert_eq!(s.stats.read_cache_misses, 100);
}

#[test]
fn read_cache_content_index_serves_twin_blocks_without_dedup() {
    let (mut s, _clock) = materialized_store(false);
    s.create_object(ObjId(1), 4).unwrap();
    s.create_object(ObjId(2), 4).unwrap();
    // Dedup is off, so identical bytes land in two distinct blocks.
    s.write_page(ObjId(1), 0, &page(0x5A)).unwrap();
    s.write_page(ObjId(2), 0, &page(0x5A)).unwrap();
    let (ck, _) = s.commit(Some("twins")).unwrap();

    let plan_a = s.plan_reads_at(ck, &[(ObjId(1), 0)]);
    let plan_b = s.plan_reads_at(ck, &[(ObjId(2), 0)]);
    let a = plan_a.resolved[0].unwrap().0;
    let b = plan_b.resolved[0].unwrap().0;
    assert_ne!(a, b, "dedup off: twin pages occupy separate blocks");

    s.drop_caches().unwrap();
    let out_a = s.execute_read_plan(&plan_a).unwrap();
    assert_eq!(out_a.fetched, vec![a]);

    // The restore pipeline's hash stage reports content hashes; the
    // store wires them into the content index.
    let h = page(0x5A).content_hash();
    s.note_read_hashes(&[(a, h), (b, h)]);

    // Block b was never read, but its bytes are resident under a.
    let out_b = s.execute_read_plan(&plan_b).unwrap();
    assert_eq!(out_b.cache_hits, 1);
    assert_eq!(out_b.content_hits, 1);
    assert_eq!(out_b.extents_read, 0, "no device read for a content hit");
    assert!(out_b.pages.get(&b).unwrap().content_eq(&page(0x5A)));
    assert_eq!(s.stats.read_cache_content_hits, 1);
}

#[test]
fn read_cache_capacity_bounds_residency_with_deterministic_lru() {
    let (mut s, _clock) = materialized_store(true);
    s.create_object(ObjId(1), 8).unwrap();
    for i in 0..4u64 {
        s.write_page(ObjId(1), i, &PageData::Seeded(100 + i)).unwrap();
    }
    let (ck, _) = s.commit(Some("lru")).unwrap();
    s.set_read_cache_capacity(2);
    assert_eq!(s.read_cache_capacity(), 2);

    let targets: Vec<(ObjId, u64)> = (0..4).map(|i| (ObjId(1), i)).collect();
    let plan = s.plan_reads_at(ck, &targets);
    s.drop_caches().unwrap();
    s.execute_read_plan(&plan).unwrap();
    assert_eq!(s.read_cache_len(), 2, "capacity caps residency");
    assert_eq!(s.read_cache_evictions(), 2);

    // LRU admits blocks in ascending run order, so the two lowest are
    // out and the two highest are in — deterministically.
    let first = s.plan_reads_at(ck, &[(ObjId(1), 0)]);
    let out = s.execute_read_plan(&first).unwrap();
    assert_eq!(out.cache_misses, 1, "evicted block must re-read");
    let last = s.plan_reads_at(ck, &[(ObjId(1), 3)]);
    let out = s.execute_read_plan(&last).unwrap();
    assert_eq!(out.cache_hits, 1, "most recent block stays resident");
}

#[test]
fn batched_read_detects_wire_corruption_and_leaves_store_intact() {
    let (mut s, _clock) = materialized_store(true);
    s.create_object(ObjId(1), 8).unwrap();
    for i in 0..4u64 {
        s.write_page(ObjId(1), i, &PageData::Seeded(200 + i)).unwrap();
    }
    let (ck, _) = s.commit(Some("victim")).unwrap();
    let targets: Vec<(ObjId, u64)> = (0..4).map(|i| (ObjId(1), i)).collect();
    let plan = s.plan_reads_at(ck, &targets);

    // Damaged media: every read in the data region hands back a page
    // with one bit flipped. The re-read sees the same damage, so the
    // batched read must refuse the data rather than install garbage.
    s.drop_caches().unwrap();
    s.device_mut()
        .install_fault_plan(FaultPlan::corrupt_read_blocks(0, u64::MAX, 100, 3));
    let err = s.execute_read_plan(&plan).unwrap_err();
    assert!(
        err.to_string().contains("content hash mismatch"),
        "corruption must surface as corrupt, got: {err}"
    );

    // The platter itself was never touched: disarm the fault and the
    // same plan reads clean, and scrub agrees the store is intact.
    s.device_mut().install_fault_plan(FaultPlan::default());
    let out = s.execute_read_plan(&plan).unwrap();
    assert_eq!(out.fetched.len(), 4);
    for (i, r) in plan.resolved.iter().enumerate() {
        let ptr = r.unwrap();
        assert!(out
            .pages
            .get(&ptr.0)
            .unwrap()
            .content_eq(&PageData::Seeded(200 + i as u64)));
    }
    assert!(s.scrub().is_empty());
}

#[test]
fn drop_caches_requires_materialized_data() {
    let mut s = new_store();
    s.create_object(ObjId(1), 4).unwrap();
    s.write_page(ObjId(1), 0, &page(0x33)).unwrap();
    s.commit(Some("timing-only")).unwrap();
    let err = s.drop_caches().unwrap_err();
    assert!(err.to_string().contains("materialized"));
    // Timing-only stores still serve batched plans from the page table.
    let ck = s.head().unwrap();
    let plan = s.plan_reads_at(ck, &[(ObjId(1), 0)]);
    let out = s.execute_read_plan(&plan).unwrap();
    assert_eq!(out.pages.len(), 1);
}
