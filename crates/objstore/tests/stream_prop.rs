//! Property tests on checkpoint export/import streams: a full export
//! imported into a fresh store reproduces every page and blob exactly;
//! per-checkpoint deltas replayed in order converge to the same state;
//! and truncated streams always error instead of panicking or applying
//! silently-wrong state.

// Test code asserts invariants; the workspace unwrap/expect denial is
// for production flush paths.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use aurora_hw::ModelDev;
use aurora_objstore::{ObjId, ObjectStore, StoreConfig};
use aurora_sim::SimClock;
use aurora_vm::PageData;
use proptest::prelude::*;

const DEV_BLOCKS: u64 = 64 * 1024;
const OIDS: u64 = 4;
const PAGES: u64 = 8;

fn new_store() -> ObjectStore {
    let clock = SimClock::new();
    let dev = Box::new(ModelDev::nvme(clock, "nvme0", DEV_BLOCKS));
    ObjectStore::format(
        dev,
        StoreConfig {
            journal_blocks: 1024,
            ..StoreConfig::default()
        },
    )
    .unwrap()
}

/// One mutation within a commit.
#[derive(Debug, Clone)]
enum Mut {
    Write { oid: u64, idx: u64, page: PageKind },
    Delete { oid: u64 },
    Blob { key: u8, val: Vec<u8> },
}

/// Compact page generator: the three `PageData` encodings.
#[derive(Debug, Clone)]
enum PageKind {
    Zero,
    Seeded(u64),
    Fill(u8),
}

impl PageKind {
    fn materialize(&self) -> PageData {
        match self {
            PageKind::Zero => PageData::Zero,
            PageKind::Seeded(s) => PageData::Seeded(*s),
            PageKind::Fill(b) => {
                let buf = vec![*b; aurora_vm::PAGE_SIZE];
                PageData::from_bytes(&buf)
            }
        }
    }
}

fn mut_strategy() -> impl Strategy<Value = Mut> {
    let page = prop_oneof![
        1 => Just(PageKind::Zero),
        3 => any::<u64>().prop_map(PageKind::Seeded),
        2 => any::<u8>().prop_map(PageKind::Fill),
    ];
    prop_oneof![
        8 => (1..=OIDS, 0..PAGES, page)
            .prop_map(|(oid, idx, page)| Mut::Write { oid, idx, page }),
        1 => (1..=OIDS).prop_map(|oid| Mut::Delete { oid }),
        2 => (any::<u8>(), proptest::collection::vec(any::<u8>(), 0..32))
            .prop_map(|(key, val)| Mut::Blob { key: key % 4, val }),
    ]
}

/// Applies one commit's mutations, creating objects on first touch, and
/// commits. Guarantees the commit is non-empty by seeding a counter blob.
fn apply_commit(s: &mut ObjectStore, muts: &[Mut], seq: usize) {
    s.put_blob("seq", seq.to_le_bytes().to_vec());
    for m in muts {
        match m {
            Mut::Write { oid, idx, page } => {
                let oid = ObjId(*oid);
                if !s.object_exists(oid) {
                    s.create_object(oid, PAGES).unwrap();
                }
                s.write_page(oid, *idx, &page.materialize()).unwrap();
            }
            Mut::Delete { oid } => {
                let oid = ObjId(*oid);
                if s.object_exists(oid) {
                    s.delete_object(oid).unwrap();
                }
            }
            Mut::Blob { key, val } => {
                s.put_blob(&format!("blob/{key}"), val.clone());
            }
        }
    }
    s.commit(None).unwrap();
}

/// Asserts both stores expose identical state at their heads.
fn assert_same_head(a: &mut ObjectStore, b: &mut ObjectStore) -> Result<(), TestCaseError> {
    let ha = a.head().expect("store a has a head");
    let hb = b.head().expect("store b has a head");
    for oid in 1..=OIDS {
        let oid = ObjId(oid);
        for idx in 0..PAGES {
            let pa = a.read_page_at(ha, oid, idx).unwrap();
            let pb = b.read_page_at(hb, oid, idx).unwrap();
            match (pa, pb) {
                (None, None) => {}
                (Some(x), Some(y)) => {
                    prop_assert!(x.content_eq(&y), "page {oid:?}/{idx} differs")
                }
                (x, y) => {
                    return Err(TestCaseError::fail(format!(
                        "page {oid:?}/{idx} presence differs: {} vs {}",
                        x.is_some(),
                        y.is_some()
                    )))
                }
            }
        }
    }
    let ka = a.blob_keys_at(ha, "");
    let kb = b.blob_keys_at(hb, "");
    prop_assert_eq!(&ka, &kb, "blob key sets differ");
    for k in ka {
        prop_assert_eq!(
            a.get_blob(ha, &k).unwrap(),
            b.get_blob(hb, &k).unwrap(),
            "blob {} differs",
            k
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// send/recv: a self-contained export of the head checkpoint,
    /// imported into a fresh store, reproduces every live page and blob.
    #[test]
    fn full_export_import_is_exact(
        commits in proptest::collection::vec(
            proptest::collection::vec(mut_strategy(), 0..12), 1..6)
    ) {
        let mut src = new_store();
        for (i, muts) in commits.iter().enumerate() {
            apply_commit(&mut src, muts, i);
        }
        let head = src.head().unwrap();
        let bytes = src.export_checkpoint(head).unwrap();

        let mut dst = new_store();
        dst.import_stream(&bytes).unwrap();
        assert_same_head(&mut src, &mut dst)?;
    }

    /// Live migration rounds: replaying each commit's delta in order
    /// converges the receiver to the sender's exact state.
    #[test]
    fn delta_replay_converges(
        commits in proptest::collection::vec(
            proptest::collection::vec(mut_strategy(), 0..12), 1..6)
    ) {
        let mut src = new_store();
        let mut dst = new_store();
        for (i, muts) in commits.iter().enumerate() {
            apply_commit(&mut src, muts, i);
            let delta = src.export_delta(src.head().unwrap()).unwrap();
            dst.import_delta(&delta).unwrap();
        }
        assert_same_head(&mut src, &mut dst)?;
    }

    /// Robustness: every proper prefix of a valid stream is rejected
    /// with an error — no panic, no silent partial import success.
    #[test]
    fn truncated_streams_error(
        commits in proptest::collection::vec(
            proptest::collection::vec(mut_strategy(), 1..8), 1..3),
        cut in 0.0f64..1.0
    ) {
        let mut src = new_store();
        for (i, muts) in commits.iter().enumerate() {
            apply_commit(&mut src, muts, i);
        }
        let bytes = src.export_checkpoint(src.head().unwrap()).unwrap();
        prop_assume!(bytes.len() > 9);
        // Cut strictly inside the stream (always lose at least a byte).
        let len = ((bytes.len() - 1) as f64 * cut) as usize;
        let mut dst = new_store();
        prop_assert!(dst.import_stream(&bytes[..len]).is_err());
    }
}
