//! Phase-boundary crash tests for the typestate commit protocol
//! (`objstore::txn`): every write ordinal inside a commit must be a
//! valid power-cut point, the superblock flip must be retryable after a
//! transient failure without double-journaling, and the per-phase
//! counters must tick exactly once per commit. The *compile-time* half
//! of the protocol — skipped or reordered tokens failing to typecheck —
//! lives in the `compile_fail` doctests on `objstore::txn` and
//! `aurora_hw::mirror::ResilverBarrier`.

// Test code asserts invariants; the workspace unwrap/expect denial is
// for production flush paths.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use aurora_hw::{FaultPlan, ModelDev};
use aurora_objstore::{ObjId, ObjectStore, StoreConfig};
use aurora_sim::SimClock;
use aurora_vm::PageData;

const DEV_BLOCKS: u64 = 64 * 1024;

fn page(fill: u8) -> PageData {
    let mut b = vec![0u8; aurora_vm::PAGE_SIZE];
    b.iter_mut().for_each(|x| *x = fill);
    PageData::from_bytes(&b)
}

/// A store with one durable checkpoint (`page(1)` at slot 0, named
/// "base") and a staged-but-uncommitted overwrite (`page(2)`). The
/// second commit's device writes start at ordinal 1 once a fault plan
/// is installed here.
fn staged_store() -> (ObjectStore, aurora_objstore::CkptId) {
    let clock = SimClock::new();
    let dev = Box::new(ModelDev::nvme(clock, "nvme0", DEV_BLOCKS));
    let mut s = ObjectStore::format(
        dev,
        StoreConfig {
            journal_blocks: 1024,
            ..StoreConfig::default()
        },
    )
    .unwrap();
    s.create_object(ObjId(1), 4).unwrap();
    s.write_page(ObjId(1), 0, &page(1)).unwrap();
    let (c1, _) = s.commit(Some("base")).unwrap();
    s.write_page(ObjId(1), 0, &page(2)).unwrap();
    (s, c1)
}

/// The number of device writes a clean second commit issues. The last
/// ordinal is always the superblock flip; everything before it is the
/// journal-seal phase (the staged data extents were already submitted
/// by `write_page`).
fn commit_write_count() -> u64 {
    let (mut s, _) = staged_store();
    let before = s.device().stats().writes;
    s.commit(Some("clean")).unwrap();
    let w = s.device().stats().writes - before;
    assert!(
        w >= 2,
        "a commit writes at least one journal record and one superblock, got {w}"
    );
    w
}

/// The sweep: cut power on every write ordinal of the commit. Cuts
/// anywhere in the seal phase leave a journal tail no durable
/// superblock covers; the cut on the flip write itself is the
/// "ExtentsDurable reached, Committed not" boundary. In every case
/// recovery must land exactly on the old head with a clean fsck, and
/// the torn checkpoint must not exist.
#[test]
fn every_commit_write_ordinal_is_a_valid_cut_point() {
    let w = commit_write_count();
    for cut in 1..=w {
        let (mut s, c1) = staged_store();
        s.device_mut().install_fault_plan(FaultPlan::power_cut(cut));
        match s.commit(Some("torn")) {
            Ok((c2, _)) => {
                // The cut fired after the durable instant (not expected
                // for any ordinal ≤ w, but tolerated like the existing
                // campaign tests): the new head must survive reboot.
                s.device_mut().install_fault_plan(FaultPlan::default());
                let s = s.recover().unwrap();
                assert_eq!(s.head(), Some(c2), "durable commit survives, cut {cut}");
            }
            Err(_) => {
                let s = s.recover().unwrap();
                assert_eq!(s.head(), Some(c1), "old head after cut at write {cut}");
                assert!(
                    s.read_page(ObjId(1), 0).unwrap().unwrap().content_eq(&page(1)),
                    "old contents after cut at write {cut}"
                );
                assert!(
                    s.checkpoint_by_name("torn").is_none(),
                    "torn checkpoint invisible after cut at write {cut}"
                );
                assert!(s.fsck().is_empty(), "cut {cut}: {:?}", s.fsck());
            }
        }
    }
}

/// The flip boundary specifically: a power cut on the superblock write
/// (the commit's final ordinal) happens with the journal sealed and the
/// extent barrier flushed — `ExtentsDurable` in token terms. Recovery
/// must replay to the old head, and redoing the whole transaction
/// afterwards must produce the new state: the flip is idempotent with
/// respect to a crash between barrier and superblock.
#[test]
fn cut_on_superblock_flip_then_redo() {
    let w = commit_write_count();
    let (mut s, c1) = staged_store();
    s.device_mut().install_fault_plan(FaultPlan::power_cut(w));
    s.commit(Some("torn")).expect_err("cut on the flip write fails the commit");

    let mut s = s.recover().unwrap();
    s.device_mut().install_fault_plan(FaultPlan::default());
    assert_eq!(s.head(), Some(c1), "flip never became durable");

    // Redo: recovery dropped the staged delta, so stage it again and
    // commit; the journal tail left by the cut run is overwritten.
    s.write_page(ObjId(1), 0, &page(2)).unwrap();
    let (c2, _) = s.commit(Some("redo")).unwrap();
    let s = s.recover().unwrap();
    assert_eq!(s.head(), Some(c2), "redone flip is durable");
    assert!(s.read_page(ObjId(1), 0).unwrap().unwrap().content_eq(&page(2)));
    assert!(s.fsck().is_empty(), "{:?}", s.fsck());
}

/// A *transient* failure on the flip write aborts with
/// `FlipAbort { submitted: false }`: the commit must roll its journal
/// geometry back so an immediate retry — no recovery, same store —
/// rewrites the same journal offset. Proven by comparing
/// `bytes_journaled` against a fault-free twin running the identical
/// sequence: a retry that double-journaled would diverge.
#[test]
fn transient_flip_failure_retries_at_same_journal_offset() {
    let w = commit_write_count();

    let (mut faulty, c1) = staged_store();
    faulty.device_mut().install_fault_plan(FaultPlan::transient(w, 1));
    faulty.commit(Some("second")).expect_err("transient fault on the flip write");
    assert_eq!(faulty.head(), Some(c1), "failed flip publishes nothing");

    // Retry on the same live store: the staged delta survived the abort.
    let (c2, _) = faulty.commit(Some("second")).unwrap();
    assert_eq!(faulty.head(), Some(c2));

    let (mut clean, _) = staged_store();
    clean.commit(Some("second")).unwrap();
    assert_eq!(
        faulty.stats.bytes_journaled, clean.stats.bytes_journaled,
        "retry rewrote the same journal offset instead of appending twice"
    );

    // And the retried commit is genuinely durable.
    let s = faulty.recover().unwrap();
    assert_eq!(s.head(), Some(c2));
    assert!(s.read_page(ObjId(1), 0).unwrap().unwrap().content_eq(&page(2)));
}

/// Each successful commit passes through every phase exactly once.
#[test]
fn phase_counters_tick_once_per_commit() {
    let (mut s, _) = staged_store();
    let (seals, barriers, flips) = (
        s.stats.journal_seals,
        s.stats.extent_barriers,
        s.stats.superblock_flips,
    );
    s.commit(None).unwrap();
    assert_eq!(s.stats.journal_seals, seals + 1, "one seal per commit");
    assert_eq!(s.stats.extent_barriers, barriers + 1, "one barrier per commit");
    assert_eq!(s.stats.superblock_flips, flips + 1, "one flip per commit");

    // The baseline itself went through the protocol too: format does
    // not count (it predates the store), so two commits → two of each.
    assert_eq!(s.stats.journal_seals, 2);
    assert_eq!(s.stats.extent_barriers, 2);
    assert_eq!(s.stats.superblock_flips, 2);
}
