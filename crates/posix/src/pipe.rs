//! Pipes.
//!
//! A pipe is a bounded in-kernel byte queue with independent read/write
//! end lifetimes. The buffered-but-unread bytes are part of application
//! state — a checkpoint that dropped them would corrupt the restored
//! program — so the SLS serializes the queue contents verbatim.

use std::collections::VecDeque;

use aurora_sim::error::{Error, Result};

/// Key of a pipe in the kernel pipe table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PipeId(pub u32);

/// Default pipe capacity (64 KiB, matching FreeBSD's BIG_PIPE_SIZE).
pub const PIPE_CAPACITY: usize = 64 * 1024;

/// A pipe.
#[derive(Debug, Clone)]
pub struct Pipe {
    /// Buffered bytes.
    pub buf: VecDeque<u8>,
    /// Capacity bound.
    pub capacity: usize,
    /// Whether the read end is still open.
    pub read_open: bool,
    /// Whether the write end is still open.
    pub write_open: bool,
}

impl Default for Pipe {
    fn default() -> Self {
        Self::new()
    }
}

impl Pipe {
    /// Creates an empty pipe with both ends open.
    pub fn new() -> Self {
        Pipe {
            buf: VecDeque::new(),
            capacity: PIPE_CAPACITY,
            read_open: true,
            write_open: true,
        }
    }

    /// Writes up to the free space; returns bytes accepted.
    ///
    /// Errors with `BrokenPipe` when the read end is gone, `WouldBlock`
    /// when full.
    pub fn write(&mut self, data: &[u8]) -> Result<usize> {
        if !self.read_open {
            return Err(Error::broken_pipe("pipe read end closed"));
        }
        let room = self.capacity - self.buf.len();
        if room == 0 {
            return Err(Error::would_block("pipe full"));
        }
        let n = data.len().min(room);
        self.buf.extend(&data[..n]);
        Ok(n)
    }

    /// Reads up to `max` bytes.
    ///
    /// Returns an empty vector at EOF (write end closed, buffer drained);
    /// errors with `WouldBlock` when empty but still writable.
    pub fn read(&mut self, max: usize) -> Result<Vec<u8>> {
        if self.buf.is_empty() {
            return if self.write_open {
                Err(Error::would_block("pipe empty"))
            } else {
                Ok(Vec::new())
            };
        }
        let n = max.min(self.buf.len());
        Ok(self.buf.drain(..n).collect())
    }

    /// Bytes currently buffered.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read() {
        let mut p = Pipe::new();
        assert_eq!(p.write(b"hello world").unwrap(), 11);
        assert_eq!(p.read(5).unwrap(), b"hello");
        assert_eq!(p.read(100).unwrap(), b" world");
        assert!(matches!(p.read(1), Err(e) if e.kind() == aurora_sim::error::ErrorKind::WouldBlock));
    }

    #[test]
    fn capacity_backpressure() {
        let mut p = Pipe::new();
        let big = vec![0u8; PIPE_CAPACITY + 100];
        assert_eq!(p.write(&big).unwrap(), PIPE_CAPACITY);
        assert!(p.write(b"x").is_err());
        p.read(100).unwrap();
        assert_eq!(p.write(b"x").unwrap(), 1);
    }

    #[test]
    fn eof_and_epipe() {
        let mut p = Pipe::new();
        p.write(b"tail").unwrap();
        p.write_open = false;
        assert_eq!(p.read(10).unwrap(), b"tail");
        assert_eq!(p.read(10).unwrap(), b"", "EOF after drain");
        let mut q = Pipe::new();
        q.read_open = false;
        assert!(q.write(b"x").is_err());
    }
}
