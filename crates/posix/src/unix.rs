//! Unix-domain sockets, including descriptor passing.
//!
//! The paper singles out Unix sockets as the canonical hard case for
//! checkpoint/restore — "CRIU ... requiring 7 years to properly add UNIX
//! socket support". The difficulty is that socket state spans *both*
//! endpoints plus messages in flight, and those messages can themselves
//! carry file descriptors (`SCM_RIGHTS`). Because Aurora treats the socket
//! pair and the open-file table as first-class objects, an in-flight
//! descriptor is just another reference to an open-file description and
//! serializes naturally.

use std::collections::VecDeque;

use aurora_sim::error::{Error, Result};

use crate::fd::FileId;

/// Key of a Unix socket in the kernel table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct UsockId(pub u32);

/// One datagram/stream segment, possibly carrying descriptors.
#[derive(Debug, Clone)]
pub struct UnixMsg {
    /// Payload bytes.
    pub bytes: Vec<u8>,
    /// In-flight open-file descriptions (each holds one reference).
    pub fds: Vec<FileId>,
}

/// Connection state of a Unix socket.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UsockState {
    /// Fresh socket.
    Unbound,
    /// Listening with a pending-connection queue.
    Listening,
    /// Connected to a peer socket.
    Connected(UsockId),
    /// Peer has gone away.
    Disconnected,
}

/// A Unix-domain socket endpoint.
#[derive(Debug, Clone)]
pub struct UnixSocket {
    /// Connection state.
    pub state: UsockState,
    /// Bound pathname, if any.
    pub bound_path: Option<String>,
    /// Received messages awaiting the application.
    pub recv: VecDeque<UnixMsg>,
    /// Pending connections (listening sockets).
    pub backlog: VecDeque<UsockId>,
}

impl Default for UnixSocket {
    fn default() -> Self {
        Self::new()
    }
}

impl UnixSocket {
    /// Creates an unbound socket.
    pub fn new() -> Self {
        UnixSocket {
            state: UsockState::Unbound,
            bound_path: None,
            recv: VecDeque::new(),
            backlog: VecDeque::new(),
        }
    }

    /// Bytes buffered in the receive queue.
    pub fn buffered(&self) -> usize {
        self.recv.iter().map(|m| m.bytes.len()).sum()
    }
}

impl crate::Kernel {
    /// Creates a connected pair of Unix sockets (socketpair).
    pub fn usock_pair(&mut self) -> (UsockId, UsockId) {
        let a = UsockId(self.usocks.insert(UnixSocket::new()));
        let b = UsockId(self.usocks.insert(UnixSocket::new()));
        self.usocks.get_mut(a.0).expect("just inserted").state = UsockState::Connected(b);
        self.usocks.get_mut(b.0).expect("just inserted").state = UsockState::Connected(a);
        (a, b)
    }

    /// Binds a socket to a pathname and starts listening.
    pub fn usock_listen(&mut self, path: &str) -> Result<UsockId> {
        if self.usock_binds.contains_key(path) {
            return Err(Error::already_exists(format!("unix socket {path}")));
        }
        let id = UsockId(self.usocks.insert(UnixSocket {
            state: UsockState::Listening,
            bound_path: Some(path.to_string()),
            recv: VecDeque::new(),
            backlog: VecDeque::new(),
        }));
        self.usock_binds.insert(path.to_string(), id);
        Ok(id)
    }

    /// Connects to a listening pathname; returns the client socket.
    ///
    /// The connection completes when the listener accepts.
    pub fn usock_connect(&mut self, path: &str) -> Result<UsockId> {
        let listener = *self
            .usock_binds
            .get(path)
            .ok_or_else(|| Error::not_found(format!("unix socket {path}")))?;
        let client = UsockId(self.usocks.insert(UnixSocket::new()));
        let l = self
            .usocks
            .get_mut(listener.0)
            .ok_or_else(|| Error::not_connected("listener vanished"))?;
        if l.state != UsockState::Listening {
            return Err(Error::not_connected(format!("{path} is not listening")));
        }
        l.backlog.push_back(client);
        Ok(client)
    }

    /// Accepts a pending connection; returns the server-side socket.
    pub fn usock_accept(&mut self, listener: UsockId) -> Result<UsockId> {
        let client = {
            let l = self
                .usocks
                .get_mut(listener.0)
                .ok_or_else(|| Error::bad_fd("no such socket"))?;
            l.backlog
                .pop_front()
                .ok_or_else(|| Error::would_block("no pending connections"))?
        };
        let server = UsockId(self.usocks.insert(UnixSocket::new()));
        self.usocks.get_mut(server.0).expect("just inserted").state =
            UsockState::Connected(client);
        self.usocks
            .get_mut(client.0)
            .ok_or_else(|| Error::not_connected("client vanished"))?
            .state = UsockState::Connected(server);
        Ok(server)
    }

    /// Sends a message (optionally with descriptors) from `sock` to its
    /// peer. The descriptor references were already taken by the caller.
    pub fn usock_send(&mut self, sock: UsockId, msg: UnixMsg) -> Result<usize> {
        let peer = {
            let s = self
                .usocks
                .get(sock.0)
                .ok_or_else(|| Error::bad_fd("no such socket"))?;
            match s.state {
                UsockState::Connected(p) => p,
                UsockState::Disconnected => {
                    return Err(Error::broken_pipe("peer closed"));
                }
                _ => return Err(Error::not_connected("socket not connected")),
            }
        };
        let len = msg.bytes.len();
        self.clock.charge(aurora_sim::cost::ipc_copy(len));
        self.stats.ipc_bytes += len as u64;
        self.usocks
            .get_mut(peer.0)
            .ok_or_else(|| Error::broken_pipe("peer vanished"))?
            .recv
            .push_back(msg);
        Ok(len)
    }

    /// Receives the next message from `sock`'s queue.
    pub fn usock_recv(&mut self, sock: UsockId) -> Result<UnixMsg> {
        let s = self
            .usocks
            .get_mut(sock.0)
            .ok_or_else(|| Error::bad_fd("no such socket"))?;
        match s.recv.pop_front() {
            Some(msg) => {
                let len = msg.bytes.len();
                self.clock.charge(aurora_sim::cost::ipc_copy(len));
                Ok(msg)
            }
            None => match s.state {
                UsockState::Disconnected => Ok(UnixMsg {
                    bytes: Vec::new(),
                    fds: Vec::new(),
                }),
                _ => Err(Error::would_block("no messages")),
            },
        }
    }

    /// Tears down one endpoint: the peer observes a disconnect, in-flight
    /// descriptor references are dropped, and pathname bindings are
    /// removed.
    pub fn usock_close(&mut self, sock: UsockId) {
        let Some(s) = self.usocks.remove(sock.0) else {
            return;
        };
        if let Some(path) = &s.bound_path {
            self.usock_binds.remove(path);
        }
        // Drop references held by undelivered in-flight descriptors.
        for msg in s.recv {
            for fid in msg.fds {
                self.file_unref(fid);
            }
        }
        if let UsockState::Connected(peer) = s.state {
            if let Some(p) = self.usocks.get_mut(peer.0) {
                p.state = UsockState::Disconnected;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Kernel;
    use aurora_sim::SimClock;

    fn msg(bytes: &[u8]) -> UnixMsg {
        UnixMsg {
            bytes: bytes.to_vec(),
            fds: Vec::new(),
        }
    }

    #[test]
    fn socketpair_roundtrip() {
        let mut k = Kernel::boot(SimClock::new(), "t");
        let (a, b) = k.usock_pair();
        k.usock_send(a, msg(b"ping")).unwrap();
        assert_eq!(k.usock_recv(b).unwrap().bytes, b"ping");
        k.usock_send(b, msg(b"pong")).unwrap();
        assert_eq!(k.usock_recv(a).unwrap().bytes, b"pong");
    }

    #[test]
    fn listen_connect_accept() {
        let mut k = Kernel::boot(SimClock::new(), "t");
        let l = k.usock_listen("/tmp/sock").unwrap();
        assert!(k.usock_listen("/tmp/sock").is_err(), "double bind");
        let c = k.usock_connect("/tmp/sock").unwrap();
        let s = k.usock_accept(l).unwrap();
        assert!(k.usock_accept(l).is_err(), "backlog drained");
        k.usock_send(c, msg(b"hello")).unwrap();
        assert_eq!(k.usock_recv(s).unwrap().bytes, b"hello");
    }

    #[test]
    fn close_disconnects_peer() {
        let mut k = Kernel::boot(SimClock::new(), "t");
        let (a, b) = k.usock_pair();
        k.usock_send(a, msg(b"last")).unwrap();
        k.usock_close(a);
        // Peer drains the queue, then sees EOF, and cannot send.
        assert_eq!(k.usock_recv(b).unwrap().bytes, b"last");
        assert_eq!(k.usock_recv(b).unwrap().bytes, b"");
        assert!(k.usock_send(b, msg(b"x")).is_err());
    }

    #[test]
    fn connect_to_missing_path_fails() {
        let mut k = Kernel::boot(SimClock::new(), "t");
        assert!(k.usock_connect("/nope").is_err());
    }
}
