//! The simulated POSIX kernel.
//!
//! Aurora's breadth comes from treating **every POSIX primitive as a
//! first-class object**: a Unix socket or a SysV segment is not "part of a
//! process" but an independent kernel object that serializes itself. That
//! only works if the kernel actually *has* such an object model, so this
//! crate builds one: processes and threads with CPU state, file-descriptor
//! tables sharing open-file descriptions, pipes, Unix-domain sockets
//! (including in-flight SCM_RIGHTS descriptor passing — the case that took
//! CRIU seven years), loopback TCP sockets with the external-consistency
//! hold queue, System V shared memory and message queues, POSIX shared
//! memory, signals, a VFS with tmpfs, and containers.
//!
//! The [`Kernel`] owns all object tables plus the [`aurora_vm::Vm`]; its
//! methods are the syscall surface that simulated applications drive.
//! Everything is identified by small stable ids so the SLS serializers in
//! `aurora-core` can walk, persist and faithfully reconstruct the whole
//! graph — including cross-object edges like "fd 3 of pid 8 and fd 9 of
//! pid 11 share one file description with one offset".

pub mod container;
pub mod fd;
pub mod inet;
pub mod io;
pub mod pipe;
pub mod process;
pub mod slab;
pub mod sysv;
pub mod tmpfs;
pub mod types;
pub mod unix;
pub mod vfs;

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use aurora_sim::error::{Error, Result};
use aurora_sim::SimClock;
use aurora_vm::Vm;

pub use container::{Container, CtId};
pub use fd::{Fd, FdTable, FileId, FileKind, OpenFile};
pub use inet::{InetSocket, IsockId};
pub use pipe::{Pipe, PipeId};
pub use process::{ProcState, Process};
pub use slab::Slab;
pub use sysv::{MsgQueue, PosixShm, SysvShm};
pub use types::{CpuState, Pid, SignalState, Ucred};
pub use unix::{UnixSocket, UsockId};
pub use vfs::{MountId, Vfs, VnodeAttr, VnodeRef, VnodeType};

/// Kernel-wide activity counters.
#[derive(Debug, Default, Clone)]
pub struct KernelStats {
    /// Syscalls dispatched.
    pub syscalls: u64,
    /// Processes forked.
    pub forks: u64,
    /// Bytes moved through pipes and sockets.
    pub ipc_bytes: u64,
}

/// The simulated kernel: every object table plus the VM subsystem.
pub struct Kernel {
    /// Shared virtual clock.
    pub clock: Arc<SimClock>,
    /// The VM subsystem.
    pub vm: Vm,
    /// Process table, ordered by pid (for `sls ps`).
    pub procs: BTreeMap<Pid, Process>,
    next_pid: u32,
    /// Open file descriptions (shared by fds across processes).
    pub files: Slab<OpenFile>,
    /// Pipes.
    pub pipes: Slab<Pipe>,
    /// Unix-domain sockets.
    pub usocks: Slab<UnixSocket>,
    /// Pathname bindings for Unix sockets.
    pub usock_binds: HashMap<String, UsockId>,
    /// Loopback TCP sockets.
    pub isocks: Slab<InetSocket>,
    /// TCP listener ports.
    pub ports: HashMap<u16, IsockId>,
    /// System V shared memory segments, by key.
    pub sysv_shms: BTreeMap<i32, SysvShm>,
    /// System V message queues, by key.
    pub msgqs: BTreeMap<i32, MsgQueue>,
    /// POSIX shared memory objects, by name.
    pub posix_shms: BTreeMap<String, PosixShm>,
    /// The VFS layer.
    pub vfs: Vfs,
    /// Containers.
    pub containers: Slab<Container>,
    /// External-consistency pending epoch per persistence group: output
    /// held now is tagged with this value; it is released when the SLS
    /// reports the epoch durable. Absent groups are at epoch 1.
    pub ec_pending: HashMap<u32, u64>,
    /// Activity counters.
    pub stats: KernelStats,
    /// Host name (multi-host experiments run one kernel per host).
    pub hostname: String,
}

impl Kernel {
    /// Boots a kernel with a tmpfs root.
    pub fn boot(clock: Arc<SimClock>, hostname: &str) -> Self {
        Kernel {
            vm: Vm::new(clock.clone()),
            clock,
            procs: BTreeMap::new(),
            next_pid: 1,
            files: Slab::new(),
            pipes: Slab::new(),
            usocks: Slab::new(),
            usock_binds: HashMap::new(),
            isocks: Slab::new(),
            ports: HashMap::new(),
            sysv_shms: BTreeMap::new(),
            msgqs: BTreeMap::new(),
            posix_shms: BTreeMap::new(),
            vfs: Vfs::new(),
            containers: Slab::new(),
            ec_pending: HashMap::new(),
            stats: KernelStats::default(),
            hostname: hostname.to_string(),
        }
    }

    /// Charges one syscall entry/exit.
    pub(crate) fn charge_syscall(&mut self) {
        self.stats.syscalls += 1;
        self.clock.charge(aurora_sim::time::SimDuration::from_nanos(
            aurora_sim::cost::SYSCALL_NS,
        ));
    }

    /// Allocates the next pid.
    pub(crate) fn alloc_pid(&mut self) -> Pid {
        let pid = Pid(self.next_pid);
        self.next_pid += 1;
        pid
    }

    /// Looks up a process.
    pub fn proc_ref(&self, pid: Pid) -> Result<&Process> {
        self.procs
            .get(&pid)
            .ok_or_else(|| Error::not_found(format!("pid {}", pid.0)))
    }

    /// Looks up a process mutably.
    pub fn proc_mut(&mut self, pid: Pid) -> Result<&mut Process> {
        self.procs
            .get_mut(&pid)
            .ok_or_else(|| Error::not_found(format!("pid {}", pid.0)))
    }

    /// Restore-path hook: reserves pid allocation above `pid` so restored
    /// processes keep their original identifiers.
    pub fn reserve_pid(&mut self, pid: Pid) {
        self.next_pid = self.next_pid.max(pid.0 + 1);
    }
}

impl core::fmt::Debug for Kernel {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Kernel")
            .field("host", &self.hostname)
            .field("procs", &self.procs.len())
            .field("files", &self.files.len())
            .finish()
    }
}
