//! Processes: lifecycle, fork, wait, memory syscalls.
//!
//! A [`Process`] owns its address space ([`aurora_vm::VmMap`]), descriptor
//! table, threads (with full CPU state), credentials, signal state,
//! container membership and — the Aurora addition — its persistence-group
//! tag. Fork duplicates all of it with the proper sharing: COW for private
//! memory, aliasing for shared mappings and open-file descriptions.

use aurora_sim::error::{Error, Result};
use aurora_vm::{Prot, VmMap};

use crate::container::CtId;
use crate::fd::FdTable;
use crate::types::{CpuState, Pid, SignalState, Thread, Tid, Ucred};
use crate::Kernel;

/// Scheduling state of a process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcState {
    /// Runnable / running.
    Running,
    /// Stopped at a serialization barrier (or SIGSTOP).
    Stopped,
    /// Exited, awaiting reaping.
    Zombie,
}

/// A process.
#[derive(Debug)]
pub struct Process {
    /// Process id.
    pub pid: Pid,
    /// Parent process id.
    pub ppid: Pid,
    /// Command name.
    pub name: String,
    /// Scheduling state.
    pub state: ProcState,
    /// Address space.
    pub map: VmMap,
    /// Descriptor table.
    pub fds: FdTable,
    /// Threads (at least one while alive).
    pub threads: Vec<Thread>,
    next_tid: u32,
    /// Working directory (absolute path).
    pub cwd: String,
    /// Credentials.
    pub cred: Ucred,
    /// Signal state.
    pub sig: SignalState,
    /// Container this process lives in, if any.
    pub container: Option<CtId>,
    /// Persistence group registered via `sls persist`, if any.
    pub persist_group: Option<u32>,
    /// Live children.
    pub children: Vec<Pid>,
    /// Exit code once zombie.
    pub exit_code: Option<i32>,
}

impl Process {
    /// The main thread.
    ///
    /// # Panics
    ///
    /// Panics on a zombie with no threads.
    pub fn main_thread(&self) -> &Thread {
        &self.threads[0]
    }

    /// The main thread, mutably.
    pub fn main_thread_mut(&mut self) -> &mut Thread {
        &mut self.threads[0]
    }
}

impl Kernel {
    /// Creates a fresh process (the `exec`-like entry point for simulated
    /// programs).
    pub fn spawn(&mut self, name: &str) -> Pid {
        self.charge_syscall();
        let pid = self.alloc_pid();
        let proc = Process {
            pid,
            ppid: Pid(0),
            name: name.to_string(),
            state: ProcState::Running,
            map: VmMap::new(),
            fds: FdTable::new(),
            threads: vec![Thread {
                tid: Tid(1),
                cpu: CpuState::default(),
            }],
            next_tid: 2,
            cwd: "/".to_string(),
            cred: Ucred::default(),
            sig: SignalState::default(),
            container: None,
            persist_group: None,
            children: Vec::new(),
            exit_code: None,
        };
        self.procs.insert(pid, proc);
        pid
    }

    /// Forks `pid`, returning the child pid.
    ///
    /// Memory goes copy-on-write (see [`aurora_vm`]), descriptor tables
    /// share open-file descriptions, the calling thread's CPU state is
    /// duplicated, and container/persistence-group membership is
    /// inherited — Aurora persists whole process trees.
    pub fn fork(&mut self, pid: Pid) -> Result<Pid> {
        self.charge_syscall();
        self.stats.forks += 1;
        let child_pid = self.alloc_pid();

        // Split borrows: the VM and the process table are disjoint fields.
        let parent = self
            .procs
            .get_mut(&pid)
            .ok_or_else(|| Error::not_found(format!("pid {}", pid.0)))?;
        let child_map = self.vm.fork_map(&mut parent.map);
        let child_fds = parent.fds.clone();
        let child = Process {
            pid: child_pid,
            ppid: pid,
            name: parent.name.clone(),
            state: ProcState::Running,
            map: child_map,
            fds: child_fds,
            threads: vec![Thread {
                tid: Tid(1),
                cpu: parent.threads[0].cpu.clone(),
            }],
            next_tid: 2,
            cwd: parent.cwd.clone(),
            cred: parent.cred.clone(),
            sig: SignalState {
                pending: 0,
                blocked: parent.sig.blocked,
                actions: parent.sig.actions,
            },
            container: parent.container,
            persist_group: parent.persist_group,
            children: Vec::new(),
            exit_code: None,
        };
        parent.children.push(child_pid);

        // Each inherited descriptor is another reference on its
        // description.
        let file_ids: Vec<_> = child.fds.iter().map(|(_, f)| f).collect();
        for fid in file_ids {
            if let Some(file) = self.files.get_mut(fid.0) {
                file.refs += 1;
            }
        }
        if let Some(ct) = child.container {
            if let Some(c) = self.containers.get_mut(ct.0) {
                c.procs.push(child_pid);
            }
        }
        self.procs.insert(child_pid, child);
        Ok(child_pid)
    }

    /// Terminates a process: releases memory and descriptors, reparents
    /// children to init (pid 1) and leaves a zombie for the parent.
    pub fn exit(&mut self, pid: Pid, code: i32) -> Result<()> {
        self.charge_syscall();
        let fds: Vec<_> = self.proc_ref(pid)?.fds.iter().collect();
        for (fd, _) in fds {
            // Close every descriptor through the common path so pipes and
            // sockets observe the hangup.
            let _ = self.close(pid, fd);
        }
        let proc = self.proc_mut(pid)?;
        proc.state = ProcState::Zombie;
        proc.exit_code = Some(code);
        proc.threads.clear();
        let mut map = core::mem::take(&mut proc.map);
        let children = core::mem::take(&mut proc.children);
        let container = proc.container;
        self.vm.destroy_map(&mut map);
        for child in children {
            if let Ok(c) = self.proc_mut(child) {
                c.ppid = Pid(1);
            }
        }
        if let Some(ct) = container {
            if let Some(c) = self.containers.get_mut(ct.0) {
                c.procs.retain(|&p| p != pid);
            }
        }
        Ok(())
    }

    /// Reaps a zombie child, returning its exit code.
    pub fn waitpid(&mut self, parent: Pid, child: Pid) -> Result<i32> {
        self.charge_syscall();
        let code = {
            let c = self.proc_ref(child)?;
            if c.ppid != parent {
                return Err(Error::not_permitted(format!(
                    "pid {} is not a child of {}",
                    child.0, parent.0
                )));
            }
            match (c.state, c.exit_code) {
                (ProcState::Zombie, Some(code)) => code,
                _ => return Err(Error::would_block(format!("pid {} still running", child.0))),
            }
        };
        self.procs.remove(&child);
        if let Ok(p) = self.proc_mut(parent) {
            p.children.retain(|&c| c != child);
        }
        Ok(code)
    }

    /// Stops a process (serialization barrier / SIGSTOP).
    pub fn stop_process(&mut self, pid: Pid) -> Result<()> {
        let proc = self.proc_mut(pid)?;
        if proc.state == ProcState::Running {
            proc.state = ProcState::Stopped;
        }
        self.clock.charge(aurora_sim::time::SimDuration::from_nanos(
            aurora_sim::cost::PROC_STOP_NS,
        ));
        Ok(())
    }

    /// Resumes a stopped process.
    pub fn resume_process(&mut self, pid: Pid) -> Result<()> {
        let proc = self.proc_mut(pid)?;
        if proc.state == ProcState::Stopped {
            proc.state = ProcState::Running;
        }
        self.clock.charge(aurora_sim::time::SimDuration::from_nanos(
            aurora_sim::cost::PROC_RESUME_NS,
        ));
        Ok(())
    }

    /// Posts a signal.
    pub fn kill(&mut self, pid: Pid, sig: u32) -> Result<()> {
        self.charge_syscall();
        self.proc_mut(pid)?.sig.post(sig);
        Ok(())
    }

    /// Creates an additional thread in `pid`.
    pub fn thread_create(&mut self, pid: Pid, entry_pc: u64) -> Result<Tid> {
        self.charge_syscall();
        let proc = self.proc_mut(pid)?;
        let tid = Tid(proc.next_tid);
        proc.next_tid += 1;
        proc.threads.push(Thread {
            tid,
            cpu: CpuState {
                pc: entry_pc,
                ..CpuState::default()
            },
        });
        Ok(tid)
    }

    /// Maps anonymous memory into `pid`'s address space.
    pub fn mmap_anon(&mut self, pid: Pid, len: u64, shared: bool) -> Result<u64> {
        self.charge_syscall();
        let proc = self
            .procs
            .get_mut(&pid)
            .ok_or_else(|| Error::not_found(format!("pid {}", pid.0)))?;
        self.vm.map_anonymous(&mut proc.map, len, Prot::RW, shared)
    }

    /// Unmaps the region containing `addr`.
    pub fn munmap(&mut self, pid: Pid, addr: u64) -> Result<()> {
        self.charge_syscall();
        let proc = self
            .procs
            .get_mut(&pid)
            .ok_or_else(|| Error::not_found(format!("pid {}", pid.0)))?;
        self.vm.unmap(&mut proc.map, addr)
    }

    /// Writes into a process's memory (the userspace store instruction).
    ///
    /// Not charged as a syscall: this is the application touching its own
    /// pages; only fault servicing costs time.
    pub fn mem_write(&mut self, pid: Pid, addr: u64, data: &[u8]) -> Result<()> {
        let proc = self
            .procs
            .get_mut(&pid)
            .ok_or_else(|| Error::not_found(format!("pid {}", pid.0)))?;
        self.vm.copyout(&mut proc.map, addr, data)
    }

    /// Reads from a process's memory (the userspace load instruction).
    pub fn mem_read(&mut self, pid: Pid, addr: u64, buf: &mut [u8]) -> Result<()> {
        let proc = self
            .procs
            .get_mut(&pid)
            .ok_or_else(|| Error::not_found(format!("pid {}", pid.0)))?;
        self.vm.copyin(&mut proc.map, addr, buf)
    }

    /// Fills a range with deterministic seeded pages — how benchmarks
    /// model multi-gigabyte working sets without host memory cost.
    pub fn mem_touch_seeded(&mut self, pid: Pid, addr: u64, len: u64, seed: u64) -> Result<()> {
        let proc = self
            .procs
            .get_mut(&pid)
            .ok_or_else(|| Error::not_found(format!("pid {}", pid.0)))?;
        self.vm.touch_seeded(&mut proc.map, addr, len, seed)
    }

    /// Reads a register of the main thread (simulated programs keep
    /// control state here so checkpoints capture it).
    pub fn get_reg(&self, pid: Pid, reg: usize) -> Result<u64> {
        Ok(self.proc_ref(pid)?.main_thread().cpu.regs[reg])
    }

    /// Writes a register of the main thread.
    pub fn set_reg(&mut self, pid: Pid, reg: usize, value: u64) -> Result<()> {
        self.proc_mut(pid)?.main_thread_mut().cpu.regs[reg] = value;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aurora_sim::SimClock;

    #[test]
    fn spawn_fork_wait_lifecycle() {
        let mut k = Kernel::boot(SimClock::new(), "test");
        let parent = k.spawn("init");
        let child = k.fork(parent).unwrap();
        assert_ne!(parent, child);
        assert_eq!(k.proc_ref(child).unwrap().ppid, parent);
        assert!(k.waitpid(parent, child).is_err(), "child still running");
        k.exit(child, 7).unwrap();
        assert_eq!(k.waitpid(parent, child).unwrap(), 7);
        assert!(k.proc_ref(child).is_err(), "child reaped");
        assert!(k.proc_ref(parent).unwrap().children.is_empty());
    }

    #[test]
    fn fork_cow_memory_is_isolated() {
        let mut k = Kernel::boot(SimClock::new(), "test");
        let p = k.spawn("p");
        let addr = k.mmap_anon(p, 4096, false).unwrap();
        k.mem_write(p, addr, b"parent").unwrap();
        let c = k.fork(p).unwrap();
        k.mem_write(c, addr, b"child!").unwrap();
        let mut buf = [0u8; 6];
        k.mem_read(p, addr, &mut buf).unwrap();
        assert_eq!(&buf, b"parent");
        k.mem_read(c, addr, &mut buf).unwrap();
        assert_eq!(&buf, b"child!");
    }

    #[test]
    fn exit_releases_memory() {
        let mut k = Kernel::boot(SimClock::new(), "test");
        let p = k.spawn("p");
        let addr = k.mmap_anon(p, 8 * 4096, false).unwrap();
        k.mem_write(p, addr, &[1u8; 4096 * 8]).unwrap();
        assert!(k.vm.frames.allocated() > 0);
        k.exit(p, 0).unwrap();
        assert_eq!(k.vm.frames.allocated(), 0);
        assert_eq!(k.vm.live_objects(), 0);
    }

    #[test]
    fn registers_survive_in_process() {
        let mut k = Kernel::boot(SimClock::new(), "test");
        let p = k.spawn("p");
        k.set_reg(p, 3, 0xDEAD_BEEF).unwrap();
        assert_eq!(k.get_reg(p, 3).unwrap(), 0xDEAD_BEEF);
        let c = k.fork(p).unwrap();
        assert_eq!(k.get_reg(c, 3).unwrap(), 0xDEAD_BEEF, "fork copies CPU state");
    }

    #[test]
    fn reparenting_to_init() {
        let mut k = Kernel::boot(SimClock::new(), "test");
        let init = k.spawn("init");
        assert_eq!(init, Pid(1));
        let a = k.fork(init).unwrap();
        let b = k.fork(a).unwrap();
        k.exit(a, 0).unwrap();
        assert_eq!(k.proc_ref(b).unwrap().ppid, Pid(1));
    }

    #[test]
    fn stop_and_resume() {
        let mut k = Kernel::boot(SimClock::new(), "test");
        let p = k.spawn("p");
        k.stop_process(p).unwrap();
        assert_eq!(k.proc_ref(p).unwrap().state, ProcState::Stopped);
        k.resume_process(p).unwrap();
        assert_eq!(k.proc_ref(p).unwrap().state, ProcState::Running);
    }

    #[test]
    fn waitpid_rejects_non_child() {
        let mut k = Kernel::boot(SimClock::new(), "test");
        let a = k.spawn("a");
        let b = k.spawn("b");
        assert!(k.waitpid(a, b).is_err());
    }
}
