//! Containers.
//!
//! Aurora persists "individual processes, process trees or containers";
//! the host and each container get their own persistence group. A
//! container here is a named grouping with its own root path — enough to
//! express the serverless experiments, where every function instance is a
//! container restored from a shared runtime image.

use aurora_sim::error::{Error, Result};

use crate::types::Pid;
use crate::Kernel;

/// Identifier of a container.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CtId(pub u32);

/// A container.
#[derive(Debug, Clone)]
pub struct Container {
    /// Human-readable name.
    pub name: String,
    /// Root directory path of the container's filesystem view.
    pub root: String,
    /// Member processes.
    pub procs: Vec<Pid>,
}

impl Kernel {
    /// Creates a container.
    pub fn container_create(&mut self, name: &str, root: &str) -> CtId {
        CtId(self.containers.insert(Container {
            name: name.to_string(),
            root: root.to_string(),
            procs: Vec::new(),
        }))
    }

    /// Moves a process (and none of its relatives — callers move trees
    /// explicitly) into a container.
    pub fn container_add(&mut self, ct: CtId, pid: Pid) -> Result<()> {
        {
            let c = self
                .containers
                .get_mut(ct.0)
                .ok_or_else(|| Error::not_found(format!("container {}", ct.0)))?;
            if !c.procs.contains(&pid) {
                c.procs.push(pid);
            }
        }
        self.proc_mut(pid)?.container = Some(ct);
        Ok(())
    }

    /// All live processes of a container.
    pub fn container_procs(&self, ct: CtId) -> Result<Vec<Pid>> {
        Ok(self
            .containers
            .get(ct.0)
            .ok_or_else(|| Error::not_found(format!("container {}", ct.0)))?
            .procs
            .clone())
    }

    /// Destroys an empty container.
    pub fn container_destroy(&mut self, ct: CtId) -> Result<()> {
        let c = self
            .containers
            .get(ct.0)
            .ok_or_else(|| Error::not_found(format!("container {}", ct.0)))?;
        if !c.procs.is_empty() {
            return Err(Error::new(
                aurora_sim::error::ErrorKind::NotEmpty,
                format!("container {} has processes", c.name),
            ));
        }
        self.containers.remove(ct.0);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aurora_sim::SimClock;

    #[test]
    fn membership_and_inheritance() {
        let mut k = Kernel::boot(SimClock::new(), "t");
        let ct = k.container_create("fn-runtime", "/ct/fn0");
        let p = k.spawn("runtime");
        k.container_add(ct, p).unwrap();
        // fork inherits container membership.
        let c = k.fork(p).unwrap();
        assert_eq!(k.proc_ref(c).unwrap().container, Some(ct));
        assert_eq!(k.container_procs(ct).unwrap(), vec![p, c]);
        // exit removes from the container.
        k.exit(c, 0).unwrap();
        assert_eq!(k.container_procs(ct).unwrap(), vec![p]);
        assert!(k.container_destroy(ct).is_err());
        k.exit(p, 0).unwrap();
        k.container_destroy(ct).unwrap();
    }
}
