//! Loopback TCP sockets and external consistency.
//!
//! Aurora enforces *external consistency* [Nightingale et al., OSDI '06]:
//! bytes a persisted application sends across its persistence-group
//! boundary are held in the kernel until the checkpoint covering the send
//! is durable, so no outside observer can ever see state that a crash
//! could roll back. `sls_fdctl` disables the hold per descriptor for
//! peers that can tolerate observing uncommitted state.
//!
//! The hold queue lives on the sending socket, tagged with the epoch in
//! progress ([`crate::Kernel::ec_pending`]); the SLS calls
//! [`crate::Kernel::ec_release`] when an epoch reaches stable storage.

use std::collections::VecDeque;

use aurora_sim::error::{Error, Result};

use crate::types::Pid;

/// Key of a TCP socket in the kernel table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IsockId(pub u32);

/// Socket receive-buffer capacity.
pub const SOCKBUF_CAPACITY: usize = 256 * 1024;

/// Connection state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IsockState {
    /// Fresh socket.
    Unbound,
    /// Listening on a port.
    Listening,
    /// Connected to a peer.
    Connected(IsockId),
    /// Peer closed.
    Disconnected,
}

/// A held (not yet externally released) output segment.
#[derive(Debug, Clone)]
pub struct HeldOutput {
    /// Checkpoint epoch that must become durable first.
    pub epoch: u64,
    /// Payload.
    pub bytes: Vec<u8>,
}

/// A loopback TCP socket endpoint.
#[derive(Debug, Clone)]
pub struct InetSocket {
    /// Connection state.
    pub state: IsockState,
    /// Bound local port.
    pub local_port: Option<u16>,
    /// Owning process (for persistence-group boundary checks).
    pub owner: Pid,
    /// Received stream bytes.
    pub recv: VecDeque<u8>,
    /// Pending connections (listeners).
    pub backlog: VecDeque<IsockId>,
    /// Output held for external consistency.
    pub held: VecDeque<HeldOutput>,
}

impl InetSocket {
    fn new(owner: Pid) -> Self {
        InetSocket {
            state: IsockState::Unbound,
            local_port: None,
            owner,
            recv: VecDeque::new(),
            backlog: VecDeque::new(),
            held: VecDeque::new(),
        }
    }

    /// Bytes buffered for the application.
    pub fn buffered(&self) -> usize {
        self.recv.len()
    }

    /// Bytes held for external consistency.
    pub fn held_bytes(&self) -> usize {
        self.held.iter().map(|h| h.bytes.len()).sum()
    }
}

impl crate::Kernel {
    /// The checkpoint epoch in progress for a persistence group (held
    /// output written now is tagged with it). Starts at 1; the SLS bumps
    /// it at every serialization barrier via
    /// [`crate::Kernel::ec_advance_pending`].
    pub fn ec_pending_for(&self, group: u32) -> u64 {
        self.ec_pending.get(&group).copied().unwrap_or(1)
    }

    /// Starts a new external-consistency epoch for `group` (called at the
    /// serialization barrier); returns the epoch that was pending (the one
    /// the checkpoint in progress covers).
    pub fn ec_advance_pending(&mut self, group: u32) -> u64 {
        let cur = self.ec_pending_for(group);
        self.ec_pending.insert(group, cur + 1);
        cur
    }

    /// Opens a listening socket on `port` owned by `pid`.
    pub fn isock_listen(&mut self, pid: Pid, port: u16) -> Result<IsockId> {
        if self.ports.contains_key(&port) {
            return Err(Error::already_exists(format!("port {port}")));
        }
        let id = IsockId(self.isocks.insert(InetSocket {
            state: IsockState::Listening,
            local_port: Some(port),
            ..InetSocket::new(pid)
        }));
        self.ports.insert(port, id);
        Ok(id)
    }

    /// Connects `pid` to a listening port; returns the client socket.
    pub fn isock_connect(&mut self, pid: Pid, port: u16) -> Result<IsockId> {
        let listener = *self
            .ports
            .get(&port)
            .ok_or_else(|| Error::not_found(format!("port {port}")))?;
        let client = IsockId(self.isocks.insert(InetSocket::new(pid)));
        let l = self
            .isocks
            .get_mut(listener.0)
            .ok_or_else(|| Error::not_connected("listener vanished"))?;
        l.backlog.push_back(client);
        Ok(client)
    }

    /// Accepts a pending connection on a listener owned by `pid`.
    pub fn isock_accept(&mut self, pid: Pid, listener: IsockId) -> Result<IsockId> {
        let client = {
            let l = self
                .isocks
                .get_mut(listener.0)
                .ok_or_else(|| Error::bad_fd("no such socket"))?;
            l.backlog
                .pop_front()
                .ok_or_else(|| Error::would_block("no pending connections"))?
        };
        let server = IsockId(self.isocks.insert(InetSocket {
            state: IsockState::Connected(client),
            ..InetSocket::new(pid)
        }));
        self.isocks
            .get_mut(client.0)
            .ok_or_else(|| Error::not_connected("client vanished"))?
            .state = IsockState::Connected(server);
        Ok(server)
    }

    /// Sends stream data from `sock` (owned by `pid`).
    ///
    /// When `ec` is set and the send crosses a persistence-group boundary
    /// (the sender is persisted; the receiver is outside its group), the
    /// bytes are *held* until the covering checkpoint is durable.
    pub fn isock_send(&mut self, pid: Pid, sock: IsockId, data: &[u8], ec: bool) -> Result<usize> {
        let peer = {
            let s = self
                .isocks
                .get(sock.0)
                .ok_or_else(|| Error::bad_fd("no such socket"))?;
            match s.state {
                IsockState::Connected(p) => p,
                IsockState::Disconnected => return Err(Error::broken_pipe("peer closed")),
                _ => return Err(Error::not_connected("socket not connected")),
            }
        };
        let sender_group = self.proc_ref(pid).ok().and_then(|p| p.persist_group);
        let peer_owner = self
            .isocks
            .get(peer.0)
            .ok_or_else(|| Error::broken_pipe("peer vanished"))?
            .owner;
        let peer_group = self
            .proc_ref(peer_owner)
            .ok()
            .and_then(|p| p.persist_group);

        self.clock.charge(aurora_sim::cost::ipc_copy(data.len()));
        self.stats.ipc_bytes += data.len() as u64;

        let crosses_boundary = sender_group.is_some() && sender_group != peer_group;
        if ec && crosses_boundary {
            let epoch = self.ec_pending_for(sender_group.expect("checked above: sender persisted"));
            self.isocks
                .get_mut(sock.0)
                .expect("checked above: socket exists")
                .held
                .push_back(HeldOutput {
                    epoch,
                    bytes: data.to_vec(),
                });
            return Ok(data.len());
        }
        let p = self
            .isocks
            .get_mut(peer.0)
            .ok_or_else(|| Error::broken_pipe("peer vanished"))?;
        if p.recv.len() + data.len() > SOCKBUF_CAPACITY {
            return Err(Error::would_block("receive buffer full"));
        }
        p.recv.extend(data);
        Ok(data.len())
    }

    /// Receives up to `max` stream bytes from `sock`.
    pub fn isock_recv(&mut self, sock: IsockId, max: usize) -> Result<Vec<u8>> {
        let s = self
            .isocks
            .get_mut(sock.0)
            .ok_or_else(|| Error::bad_fd("no such socket"))?;
        if s.recv.is_empty() {
            return match s.state {
                IsockState::Disconnected => Ok(Vec::new()),
                _ => Err(Error::would_block("no data")),
            };
        }
        let n = max.min(s.recv.len());
        let out: Vec<u8> = s.recv.drain(..n).collect();
        self.clock.charge(aurora_sim::cost::ipc_copy(out.len()));
        Ok(out)
    }

    /// Releases held output of `group`'s sockets for every epoch
    /// `<= durable_epoch` — called by the SLS when a checkpoint reaches
    /// stable storage. Delivery keeps the original send order.
    pub fn ec_release(&mut self, group: u32, durable_epoch: u64) {
        let socks = self.isocks.keys();
        for id in socks {
            let owner = match self.isocks.get(id) {
                Some(s) => s.owner,
                None => continue,
            };
            if self.proc_ref(owner).ok().and_then(|p| p.persist_group) != Some(group) {
                continue;
            }
            loop {
                let (peer, bytes) = {
                    let s = self.isocks.get_mut(id).expect("key listed above");
                    let peer = match s.state {
                        IsockState::Connected(p) => p,
                        _ => {
                            // Peer gone: the held bytes can never be
                            // delivered; drop them.
                            s.held.clear();
                            break;
                        }
                    };
                    match s.held.front() {
                        Some(h) if h.epoch <= durable_epoch => {
                            let h = s.held.pop_front().expect("front exists");
                            (peer, h.bytes)
                        }
                        _ => break,
                    }
                };
                if let Some(p) = self.isocks.get_mut(peer.0) {
                    p.recv.extend(&bytes);
                }
            }
        }
    }

    /// Closes a TCP socket endpoint.
    pub fn isock_close(&mut self, sock: IsockId) {
        let Some(s) = self.isocks.remove(sock.0) else {
            return;
        };
        if let Some(port) = s.local_port {
            self.ports.remove(&port);
        }
        if let IsockState::Connected(peer) = s.state {
            if let Some(p) = self.isocks.get_mut(peer.0) {
                p.state = IsockState::Disconnected;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Kernel;
    use aurora_sim::SimClock;

    fn pair(k: &mut Kernel) -> (Pid, Pid, IsockId, IsockId) {
        let server = k.spawn("server");
        let client = k.spawn("client");
        let l = k.isock_listen(server, 6379).unwrap();
        let c = k.isock_connect(client, 6379).unwrap();
        let s = k.isock_accept(server, l).unwrap();
        (server, client, s, c)
    }

    #[test]
    fn stream_roundtrip() {
        let mut k = Kernel::boot(SimClock::new(), "t");
        let (_, client, s, c) = pair(&mut k);
        k.isock_send(client, c, b"GET k", true).unwrap();
        assert_eq!(k.isock_recv(s, 64).unwrap(), b"GET k");
        // No persistence group anywhere: ec flag is irrelevant.
        assert_eq!(k.isocks.get(c.0).unwrap().held_bytes(), 0);
    }

    #[test]
    fn external_consistency_holds_cross_boundary_output() {
        let mut k = Kernel::boot(SimClock::new(), "t");
        let (server, _client, s, c) = pair(&mut k);
        // The server is persisted; the client is not.
        k.proc_mut(server).unwrap().persist_group = Some(1);

        k.isock_send(server, s, b"reply", true).unwrap();
        assert!(k.isock_recv(c, 64).is_err(), "held until durable");
        assert_eq!(k.isocks.get(s.0).unwrap().held_bytes(), 5);

        // Durable checkpoint for the pending epoch releases it.
        let pending = k.ec_pending_for(1);
        k.ec_release(1, pending);
        assert_eq!(k.isock_recv(c, 64).unwrap(), b"reply");
        assert_eq!(k.isocks.get(s.0).unwrap().held_bytes(), 0);
    }

    #[test]
    fn fdctl_disables_the_hold() {
        let mut k = Kernel::boot(SimClock::new(), "t");
        let (server, _client, s, c) = pair(&mut k);
        k.proc_mut(server).unwrap().persist_group = Some(1);
        k.isock_send(server, s, b"fast", false).unwrap();
        assert_eq!(k.isock_recv(c, 64).unwrap(), b"fast");
    }

    #[test]
    fn same_group_traffic_is_not_held() {
        let mut k = Kernel::boot(SimClock::new(), "t");
        let (server, client, s, _c) = pair(&mut k);
        k.proc_mut(server).unwrap().persist_group = Some(1);
        k.proc_mut(client).unwrap().persist_group = Some(1);
        k.isock_send(server, s, b"intra", true).unwrap();
        // Delivered immediately: both endpoints are in the checkpoint.
        let c_sock = match k.isocks.get(s.0).unwrap().state {
            IsockState::Connected(p) => p,
            _ => unreachable!(),
        };
        assert_eq!(k.isock_recv(c_sock, 64).unwrap(), b"intra");
    }

    #[test]
    fn release_preserves_order_across_epochs() {
        let mut k = Kernel::boot(SimClock::new(), "t");
        let (server, _client, s, c) = pair(&mut k);
        k.proc_mut(server).unwrap().persist_group = Some(1);
        k.isock_send(server, s, b"epoch1 ", true).unwrap();
        // Barrier: epoch 1 captured, epoch 2 pending.
        assert_eq!(k.ec_advance_pending(1), 1);
        k.isock_send(server, s, b"epoch2", true).unwrap();
        // Releasing epoch 1 delivers only the first message.
        k.ec_release(1, 1);
        assert_eq!(k.isock_recv(c, 64).unwrap(), b"epoch1 ");
        assert!(k.isock_recv(c, 64).is_err());
        k.ec_release(1, 2);
        assert_eq!(k.isock_recv(c, 64).unwrap(), b"epoch2");
    }

    #[test]
    fn port_conflicts_and_close() {
        let mut k = Kernel::boot(SimClock::new(), "t");
        let p = k.spawn("p");
        k.isock_listen(p, 80).unwrap();
        assert!(k.isock_listen(p, 80).is_err());
        let (_, _, s, c) = pair(&mut k);
        k.isock_close(c);
        assert!(k.isock_send(Pid(999), s, b"x", false).is_err());
        assert_eq!(k.isock_recv(s, 10).unwrap(), b"", "EOF on close");
    }
}
