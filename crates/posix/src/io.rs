//! Descriptor-level I/O: the syscall surface applications drive.
//!
//! Everything here goes through open-file descriptions so that sharing
//! (fork, dup, SCM_RIGHTS) behaves exactly as POSIX specifies — which in
//! turn is what the SLS serializers capture and restore.

use aurora_sim::error::{Error, Result};

use crate::fd::{Fd, FileId, FileKind, OpenFile, O_APPEND};
use crate::pipe::Pipe;
use crate::types::Pid;
use crate::unix::UnixMsg;
use crate::vfs::VnodeAttr;
use crate::Kernel;

impl Kernel {
    /// Takes an extra reference on an open-file description.
    pub fn file_ref(&mut self, fid: FileId) {
        if let Some(f) = self.files.get_mut(fid.0) {
            f.refs += 1;
        }
    }

    /// Drops a reference; the last one releases the underlying object.
    pub fn file_unref(&mut self, fid: FileId) {
        let kind = {
            let Some(f) = self.files.get_mut(fid.0) else {
                return;
            };
            f.refs = f.refs.saturating_sub(1);
            if f.refs > 0 {
                return;
            }
            f.kind.clone()
        };
        self.files.remove(fid.0);
        match kind {
            FileKind::Vnode(vref) => {
                let _ = self.vfs.fs(vref.mount).open_ref(vref.node, -1);
            }
            FileKind::PipeRead(pid) => {
                let remove = match self.pipes.get_mut(pid.0) {
                    Some(p) => {
                        p.read_open = false;
                        !p.write_open
                    }
                    None => false,
                };
                if remove {
                    self.pipes.remove(pid.0);
                }
            }
            FileKind::PipeWrite(pid) => {
                let remove = match self.pipes.get_mut(pid.0) {
                    Some(p) => {
                        p.write_open = false;
                        !p.read_open
                    }
                    None => false,
                };
                if remove {
                    self.pipes.remove(pid.0);
                }
            }
            FileKind::UnixSock(sid) => self.usock_close(sid),
            FileKind::InetSock(sid) => self.isock_close(sid),
            FileKind::PosixShm(name) => self.posix_shm_close(&name),
            FileKind::NtLog(_) => {}
        }
    }

    /// Installs a new description into `pid`'s table (also used by the
    /// SLS to hand out descriptors for its own object kinds).
    pub fn install_file(&mut self, pid: Pid, file: OpenFile) -> Result<Fd> {
        let fid = FileId(self.files.insert(file));
        Ok(self.proc_mut(pid)?.fds.install(fid))
    }

    fn fd_file(&self, pid: Pid, fd: Fd) -> Result<FileId> {
        self.proc_ref(pid)?.fds.get(fd)
    }

    /// Opens a path (optionally creating the file); returns a descriptor.
    pub fn open(&mut self, pid: Pid, path: &str, create: bool) -> Result<Fd> {
        self.charge_syscall();
        let vref = match self.vfs.resolve(path) {
            Ok(v) => v,
            Err(e) if create && e.kind() == aurora_sim::error::ErrorKind::NotFound => {
                let (parent, name) = self.vfs.resolve_parent(path)?;
                let node = self.vfs.fs(parent.mount).create(parent.node, &name)?;
                crate::vfs::VnodeRef {
                    mount: parent.mount,
                    node,
                }
            }
            Err(e) => return Err(e),
        };
        self.vfs.fs(vref.mount).open_ref(vref.node, 1)?;
        self.install_file(pid, OpenFile::new(FileKind::Vnode(vref)))
    }

    /// Closes a descriptor.
    pub fn close(&mut self, pid: Pid, fd: Fd) -> Result<()> {
        self.charge_syscall();
        let fid = self.proc_mut(pid)?.fds.remove(fd)?;
        self.file_unref(fid);
        Ok(())
    }

    /// Duplicates a descriptor (shares the description and offset).
    pub fn dup(&mut self, pid: Pid, fd: Fd) -> Result<Fd> {
        self.charge_syscall();
        let fid = self.fd_file(pid, fd)?;
        self.file_ref(fid);
        Ok(self.proc_mut(pid)?.fds.install(fid))
    }

    /// Repositions a vnode descriptor's offset.
    pub fn lseek(&mut self, pid: Pid, fd: Fd, offset: u64) -> Result<()> {
        self.charge_syscall();
        let fid = self.fd_file(pid, fd)?;
        let f = self
            .files
            .get_mut(fid.0)
            .ok_or_else(|| Error::bad_fd("stale file"))?;
        match f.kind {
            FileKind::Vnode(_) | FileKind::PosixShm(_) => {
                f.offset = offset;
                Ok(())
            }
            _ => Err(Error::invalid("lseek on non-seekable descriptor")),
        }
    }

    /// Sets the append flag on a description.
    pub fn set_append(&mut self, pid: Pid, fd: Fd) -> Result<()> {
        let fid = self.fd_file(pid, fd)?;
        self.files
            .get_mut(fid.0)
            .ok_or_else(|| Error::bad_fd("stale file"))?
            .flags |= O_APPEND;
        Ok(())
    }

    /// Toggles external consistency on a description (`sls_fdctl`).
    pub fn fdctl_external_consistency(&mut self, pid: Pid, fd: Fd, enabled: bool) -> Result<()> {
        self.charge_syscall();
        let fid = self.fd_file(pid, fd)?;
        self.files
            .get_mut(fid.0)
            .ok_or_else(|| Error::bad_fd("stale file"))?
            .external_consistency = enabled;
        Ok(())
    }

    /// Reads up to `max` bytes from a descriptor.
    pub fn read(&mut self, pid: Pid, fd: Fd, max: usize) -> Result<Vec<u8>> {
        self.charge_syscall();
        let fid = self.fd_file(pid, fd)?;
        let (kind, offset) = {
            let f = self
                .files
                .get(fid.0)
                .ok_or_else(|| Error::bad_fd("stale file"))?;
            (f.kind.clone(), f.offset)
        };
        match kind {
            FileKind::Vnode(vref) => {
                let data = self.vfs.fs(vref.mount).read(vref.node, offset, max)?;
                self.clock.charge(aurora_sim::cost::ipc_copy(data.len()));
                self.files
                    .get_mut(fid.0)
                    .expect("file exists: read above")
                    .offset = offset + data.len() as u64;
                Ok(data)
            }
            FileKind::PipeRead(pipe_id) => {
                let p = self
                    .pipes
                    .get_mut(pipe_id.0)
                    .ok_or_else(|| Error::bad_fd("stale pipe"))?;
                let data = p.read(max)?;
                self.clock.charge(aurora_sim::cost::ipc_copy(data.len()));
                Ok(data)
            }
            FileKind::PipeWrite(_) => Err(Error::bad_fd("read from pipe write end")),
            FileKind::UnixSock(sid) => {
                // Descriptors must be claimed with recvmsg; consuming the
                // message here would silently leak the references, so
                // peek before popping.
                let has_fds = self
                    .usocks
                    .get(sid.0)
                    .and_then(|s| s.recv.front())
                    .is_some_and(|m| !m.fds.is_empty());
                if has_fds {
                    return Err(Error::invalid("descriptor-bearing message: use recvmsg"));
                }
                Ok(self.usock_recv(sid)?.bytes)
            }
            FileKind::InetSock(sid) => self.isock_recv(sid, max),
            FileKind::PosixShm(_) | FileKind::NtLog(_) => {
                Err(Error::unsupported("read on this descriptor type"))
            }
        }
    }

    /// Writes bytes to a descriptor.
    pub fn write(&mut self, pid: Pid, fd: Fd, data: &[u8]) -> Result<usize> {
        self.charge_syscall();
        let fid = self.fd_file(pid, fd)?;
        let (kind, mut offset, flags, ec) = {
            let f = self
                .files
                .get(fid.0)
                .ok_or_else(|| Error::bad_fd("stale file"))?;
            (f.kind.clone(), f.offset, f.flags, f.external_consistency)
        };
        match kind {
            FileKind::Vnode(vref) => {
                if flags & O_APPEND != 0 {
                    offset = self.vfs.fs_ref(vref.mount).getattr(vref.node)?.size;
                }
                let n = self.vfs.fs(vref.mount).write(vref.node, offset, data)?;
                self.clock.charge(aurora_sim::cost::ipc_copy(n));
                self.files
                    .get_mut(fid.0)
                    .expect("file exists: read above")
                    .offset = offset + n as u64;
                Ok(n)
            }
            FileKind::PipeWrite(pipe_id) => {
                let p = self
                    .pipes
                    .get_mut(pipe_id.0)
                    .ok_or_else(|| Error::bad_fd("stale pipe"))?;
                let n = p.write(data)?;
                self.clock.charge(aurora_sim::cost::ipc_copy(n));
                self.stats.ipc_bytes += n as u64;
                Ok(n)
            }
            FileKind::PipeRead(_) => Err(Error::bad_fd("write to pipe read end")),
            FileKind::UnixSock(sid) => self.usock_send(
                sid,
                UnixMsg {
                    bytes: data.to_vec(),
                    fds: Vec::new(),
                },
            ),
            FileKind::InetSock(sid) => self.isock_send(pid, sid, data, ec),
            FileKind::PosixShm(_) | FileKind::NtLog(_) => {
                Err(Error::unsupported("write on this descriptor type"))
            }
        }
    }

    /// File attributes of a vnode descriptor.
    pub fn fstat(&mut self, pid: Pid, fd: Fd) -> Result<VnodeAttr> {
        self.charge_syscall();
        let fid = self.fd_file(pid, fd)?;
        let f = self
            .files
            .get(fid.0)
            .ok_or_else(|| Error::bad_fd("stale file"))?;
        match f.kind {
            FileKind::Vnode(vref) => self.vfs.fs_ref(vref.mount).getattr(vref.node),
            _ => Err(Error::invalid("fstat on non-vnode descriptor")),
        }
    }

    /// Unlinks a path (the descriptor-level data survives while open).
    pub fn unlink_path(&mut self, pid: Pid, path: &str) -> Result<()> {
        self.charge_syscall();
        let _ = pid;
        let (parent, name) = self.vfs.resolve_parent(path)?;
        self.vfs.fs(parent.mount).unlink(parent.node, &name)
    }

    /// Creates a hard link: `new_path` becomes another name for the file
    /// at `existing_path` (same filesystem only).
    pub fn link_path(&mut self, pid: Pid, existing_path: &str, new_path: &str) -> Result<()> {
        self.charge_syscall();
        let _ = pid;
        let src = self.vfs.resolve(existing_path)?;
        let (parent, name) = self.vfs.resolve_parent(new_path)?;
        if parent.mount != src.mount {
            return Err(Error::new(
                aurora_sim::error::ErrorKind::CrossDevice,
                "link across filesystems",
            ));
        }
        self.vfs.fs(parent.mount).link(parent.node, &name, src.node)
    }

    /// Readiness probe: true when a `read` on `fd` would not block
    /// (data buffered, EOF, or a regular file).
    pub fn can_read(&self, pid: Pid, fd: Fd) -> Result<bool> {
        let fid = self.fd_file(pid, fd)?;
        let f = self
            .files
            .get(fid.0)
            .ok_or_else(|| Error::bad_fd("stale file"))?;
        Ok(match &f.kind {
            FileKind::Vnode(_) => true,
            FileKind::PipeRead(p) => self
                .pipes
                .get(p.0)
                .is_some_and(|p| p.buffered() > 0 || !p.write_open),
            FileKind::PipeWrite(_) => false,
            FileKind::UnixSock(s) => self.usocks.get(s.0).is_some_and(|s| {
                !s.recv.is_empty()
                    || matches!(s.state, crate::unix::UsockState::Disconnected)
            }),
            FileKind::InetSock(s) => self.isocks.get(s.0).is_some_and(|s| {
                !s.recv.is_empty()
                    || !s.backlog.is_empty()
                    || matches!(s.state, crate::inet::IsockState::Disconnected)
            }),
            FileKind::PosixShm(_) | FileKind::NtLog(_) => false,
        })
    }

    /// Creates a pipe; returns `(read_fd, write_fd)`.
    pub fn pipe(&mut self, pid: Pid) -> Result<(Fd, Fd)> {
        self.charge_syscall();
        let pipe_id = crate::pipe::PipeId(self.pipes.insert(Pipe::new()));
        let rfd = self.install_file(pid, OpenFile::new(FileKind::PipeRead(pipe_id)))?;
        let wfd = self.install_file(pid, OpenFile::new(FileKind::PipeWrite(pipe_id)))?;
        Ok((rfd, wfd))
    }

    /// Creates a connected Unix socket pair as descriptors.
    pub fn socketpair(&mut self, pid: Pid) -> Result<(Fd, Fd)> {
        self.charge_syscall();
        let (a, b) = self.usock_pair();
        let fa = self.install_file(pid, OpenFile::new(FileKind::UnixSock(a)))?;
        let fb = self.install_file(pid, OpenFile::new(FileKind::UnixSock(b)))?;
        Ok((fa, fb))
    }

    /// Binds and listens on a Unix socket path.
    pub fn unix_listen(&mut self, pid: Pid, path: &str) -> Result<Fd> {
        self.charge_syscall();
        let sid = self.usock_listen(path)?;
        self.install_file(pid, OpenFile::new(FileKind::UnixSock(sid)))
    }

    /// Connects to a Unix socket path.
    pub fn unix_connect(&mut self, pid: Pid, path: &str) -> Result<Fd> {
        self.charge_syscall();
        let sid = self.usock_connect(path)?;
        self.install_file(pid, OpenFile::new(FileKind::UnixSock(sid)))
    }

    /// Accepts a pending Unix connection.
    pub fn unix_accept(&mut self, pid: Pid, listener: Fd) -> Result<Fd> {
        self.charge_syscall();
        let fid = self.fd_file(pid, listener)?;
        let sid = match self
            .files
            .get(fid.0)
            .ok_or_else(|| Error::bad_fd("stale file"))?
            .kind
        {
            FileKind::UnixSock(s) => s,
            _ => return Err(Error::invalid("accept on non-socket")),
        };
        let conn = self.usock_accept(sid)?;
        self.install_file(pid, OpenFile::new(FileKind::UnixSock(conn)))
    }

    /// Sends a message with descriptors over a Unix socket (SCM_RIGHTS).
    ///
    /// Each passed descriptor contributes one in-flight reference to its
    /// open-file description — exactly the state a checkpoint must
    /// capture.
    pub fn sendmsg(&mut self, pid: Pid, fd: Fd, bytes: &[u8], fds: &[Fd]) -> Result<usize> {
        self.charge_syscall();
        let fid = self.fd_file(pid, fd)?;
        let sid = match self
            .files
            .get(fid.0)
            .ok_or_else(|| Error::bad_fd("stale file"))?
            .kind
        {
            FileKind::UnixSock(s) => s,
            _ => return Err(Error::invalid("sendmsg on non-unix socket")),
        };
        let mut file_ids = Vec::with_capacity(fds.len());
        for &f in fds {
            let fid = self.fd_file(pid, f)?;
            self.file_ref(fid);
            file_ids.push(fid);
        }
        self.usock_send(
            sid,
            UnixMsg {
                bytes: bytes.to_vec(),
                fds: file_ids,
            },
        )
    }

    /// Receives a message; carried descriptors are installed into the
    /// receiving process's table.
    pub fn recvmsg(&mut self, pid: Pid, fd: Fd) -> Result<(Vec<u8>, Vec<Fd>)> {
        self.charge_syscall();
        let fid = self.fd_file(pid, fd)?;
        let sid = match self
            .files
            .get(fid.0)
            .ok_or_else(|| Error::bad_fd("stale file"))?
            .kind
        {
            FileKind::UnixSock(s) => s,
            _ => return Err(Error::invalid("recvmsg on non-unix socket")),
        };
        let msg = self.usock_recv(sid)?;
        let mut fds = Vec::with_capacity(msg.fds.len());
        for fid in msg.fds {
            // The in-flight reference becomes the new descriptor's
            // reference; no net change.
            fds.push(self.proc_mut(pid)?.fds.install(fid));
        }
        Ok((msg.bytes, fds))
    }

    /// Opens a listening TCP descriptor on `port`.
    pub fn tcp_listen(&mut self, pid: Pid, port: u16) -> Result<Fd> {
        self.charge_syscall();
        let sid = self.isock_listen(pid, port)?;
        self.install_file(pid, OpenFile::new(FileKind::InetSock(sid)))
    }

    /// Connects to `port`; returns the client descriptor.
    pub fn tcp_connect(&mut self, pid: Pid, port: u16) -> Result<Fd> {
        self.charge_syscall();
        let sid = self.isock_connect(pid, port)?;
        self.install_file(pid, OpenFile::new(FileKind::InetSock(sid)))
    }

    /// Accepts a pending TCP connection.
    pub fn tcp_accept(&mut self, pid: Pid, listener: Fd) -> Result<Fd> {
        self.charge_syscall();
        let fid = self.fd_file(pid, listener)?;
        let sid = match self
            .files
            .get(fid.0)
            .ok_or_else(|| Error::bad_fd("stale file"))?
            .kind
        {
            FileKind::InetSock(s) => s,
            _ => return Err(Error::invalid("accept on non-socket")),
        };
        let conn = self.isock_accept(pid, sid)?;
        self.install_file(pid, OpenFile::new(FileKind::InetSock(conn)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aurora_sim::SimClock;

    #[test]
    fn file_io_through_descriptors() {
        let mut k = Kernel::boot(SimClock::new(), "t");
        let p = k.spawn("p");
        let fd = k.open(p, "/data.txt", true).unwrap();
        k.write(p, fd, b"hello").unwrap();
        k.lseek(p, fd, 0).unwrap();
        assert_eq!(k.read(p, fd, 64).unwrap(), b"hello");
        assert_eq!(k.fstat(p, fd).unwrap().size, 5);
        k.close(p, fd).unwrap();
        assert!(k.read(p, fd, 1).is_err());
        // Reopen without create: file persists in tmpfs.
        let fd2 = k.open(p, "/data.txt", false).unwrap();
        assert_eq!(k.read(p, fd2, 64).unwrap(), b"hello");
    }

    #[test]
    fn append_mode() {
        let mut k = Kernel::boot(SimClock::new(), "t");
        let p = k.spawn("p");
        let fd = k.open(p, "/log", true).unwrap();
        k.set_append(p, fd).unwrap();
        k.write(p, fd, b"one;").unwrap();
        k.lseek(p, fd, 0).unwrap();
        k.write(p, fd, b"two;").unwrap();
        k.lseek(p, fd, 0).unwrap();
        assert_eq!(k.read(p, fd, 64).unwrap(), b"one;two;");
    }

    #[test]
    fn fork_shares_offsets() {
        let mut k = Kernel::boot(SimClock::new(), "t");
        let p = k.spawn("p");
        let fd = k.open(p, "/shared", true).unwrap();
        k.write(p, fd, b"0123456789").unwrap();
        k.lseek(p, fd, 0).unwrap();
        let c = k.fork(p).unwrap();
        // Child reads 4 bytes; parent's offset must move too.
        assert_eq!(k.read(c, fd, 4).unwrap(), b"0123");
        assert_eq!(k.read(p, fd, 4).unwrap(), b"4567");
    }

    #[test]
    fn pipe_between_parent_and_child() {
        let mut k = Kernel::boot(SimClock::new(), "t");
        let p = k.spawn("p");
        let (rfd, wfd) = k.pipe(p).unwrap();
        let c = k.fork(p).unwrap();
        // Parent closes read end; child closes write end.
        k.close(p, rfd).unwrap();
        k.close(c, wfd).unwrap();
        k.write(p, wfd, b"from parent").unwrap();
        assert_eq!(k.read(c, rfd, 64).unwrap(), b"from parent");
        // Parent closes write end: child sees EOF.
        k.close(p, wfd).unwrap();
        assert_eq!(k.read(c, rfd, 64).unwrap(), b"");
    }

    #[test]
    fn descriptor_passing_over_unix_socket() {
        let mut k = Kernel::boot(SimClock::new(), "t");
        let sender = k.spawn("sender");
        let receiver = k.spawn("receiver");
        let (sa, _sb) = k.socketpair(sender).unwrap();
        // Wire the other end into the receiver: simulate inherited fd.
        let fidb = k.proc_ref(sender).unwrap().fds.get(_sb).unwrap();
        k.file_ref(fidb);
        let rb = k.proc_mut(receiver).unwrap().fds.install(fidb);

        // Sender opens a file, writes, and passes the descriptor.
        let file_fd = k.open(sender, "/passed", true).unwrap();
        k.write(sender, file_fd, b"fd-passing").unwrap();
        k.sendmsg(sender, sa, b"here you go", &[file_fd]).unwrap();
        k.close(sender, file_fd).unwrap();

        let (bytes, fds) = k.recvmsg(receiver, rb).unwrap();
        assert_eq!(bytes, b"here you go");
        assert_eq!(fds.len(), 1);
        // The received descriptor shares the description (offset = 10).
        k.lseek(receiver, fds[0], 0).unwrap();
        assert_eq!(k.read(receiver, fds[0], 64).unwrap(), b"fd-passing");
    }

    #[test]
    fn read_refuses_to_drop_passed_descriptors() {
        let mut k = Kernel::boot(SimClock::new(), "t");
        let p = k.spawn("p");
        let (a, b) = k.socketpair(p).unwrap();
        let f = k.open(p, "/x", true).unwrap();
        k.sendmsg(p, a, b"msg", &[f]).unwrap();
        assert!(k.read(p, b, 64).is_err());
        let (_, fds) = k.recvmsg(p, b).unwrap();
        assert_eq!(fds.len(), 1);
    }

    #[test]
    fn tcp_descriptors_end_to_end() {
        let mut k = Kernel::boot(SimClock::new(), "t");
        let srv = k.spawn("server");
        let cli = k.spawn("client");
        let lfd = k.tcp_listen(srv, 8080).unwrap();
        let cfd = k.tcp_connect(cli, 8080).unwrap();
        let sfd = k.tcp_accept(srv, lfd).unwrap();
        k.write(cli, cfd, b"request").unwrap();
        assert_eq!(k.read(srv, sfd, 64).unwrap(), b"request");
        k.write(srv, sfd, b"response").unwrap();
        assert_eq!(k.read(cli, cfd, 64).unwrap(), b"response");
    }

    #[test]
    fn unlinked_file_stays_readable_through_fd() {
        let mut k = Kernel::boot(SimClock::new(), "t");
        let p = k.spawn("p");
        let fd = k.open(p, "/anon", true).unwrap();
        k.write(p, fd, b"anonymous").unwrap();
        k.unlink_path(p, "/anon").unwrap();
        assert!(k.open(p, "/anon", false).is_err(), "name is gone");
        k.lseek(p, fd, 0).unwrap();
        assert_eq!(k.read(p, fd, 64).unwrap(), b"anonymous");
        k.close(p, fd).unwrap();
    }

    #[test]
    fn unix_listen_accept_via_fds() {
        let mut k = Kernel::boot(SimClock::new(), "t");
        let srv = k.spawn("server");
        let cli = k.spawn("client");
        let lfd = k.unix_listen(srv, "/run/svc.sock").unwrap();
        let cfd = k.unix_connect(cli, "/run/svc.sock").unwrap();
        let sfd = k.unix_accept(srv, lfd).unwrap();
        k.write(cli, cfd, b"hi").unwrap();
        assert_eq!(k.read(srv, sfd, 16).unwrap(), b"hi");
    }
}

#[cfg(test)]
mod link_tests {
    use super::*;
    use aurora_sim::SimClock;

    #[test]
    fn hard_links_share_data_and_counts() {
        let mut k = Kernel::boot(SimClock::new(), "t");
        let p = k.spawn("p");
        let fd = k.open(p, "/original", true).unwrap();
        k.write(p, fd, b"linked data").unwrap();
        k.close(p, fd).unwrap();
        k.link_path(p, "/original", "/alias").unwrap();

        let fd = k.open(p, "/alias", false).unwrap();
        assert_eq!(k.read(p, fd, 64).unwrap(), b"linked data");
        assert_eq!(k.fstat(p, fd).unwrap().nlink, 2);
        k.close(p, fd).unwrap();

        // Removing one name keeps the data reachable via the other.
        k.unlink_path(p, "/original").unwrap();
        let fd = k.open(p, "/alias", false).unwrap();
        assert_eq!(k.read(p, fd, 64).unwrap(), b"linked data");
        assert_eq!(k.fstat(p, fd).unwrap().nlink, 1);
        k.close(p, fd).unwrap();
        k.unlink_path(p, "/alias").unwrap();
        assert!(k.open(p, "/alias", false).is_err());
    }

    #[test]
    fn link_conflicts_and_directories_rejected() {
        let mut k = Kernel::boot(SimClock::new(), "t");
        let p = k.spawn("p");
        let fd = k.open(p, "/a", true).unwrap();
        k.close(p, fd).unwrap();
        let fd = k.open(p, "/b", true).unwrap();
        k.close(p, fd).unwrap();
        assert!(k.link_path(p, "/a", "/b").is_err(), "target exists");
        // A failed link must not corrupt the link count.
        let fd = k.open(p, "/a", false).unwrap();
        assert_eq!(k.fstat(p, fd).unwrap().nlink, 1);
    }

    #[test]
    fn readiness_probes() {
        let mut k = Kernel::boot(SimClock::new(), "t");
        let p = k.spawn("p");
        let (rfd, wfd) = k.pipe(p).unwrap();
        assert!(!k.can_read(p, rfd).unwrap(), "empty pipe");
        k.write(p, wfd, b"x").unwrap();
        assert!(k.can_read(p, rfd).unwrap(), "data buffered");
        k.read(p, rfd, 8).unwrap();
        assert!(!k.can_read(p, rfd).unwrap());
        k.close(p, wfd).unwrap();
        assert!(k.can_read(p, rfd).unwrap(), "EOF is readable");

        let (a, b) = k.socketpair(p).unwrap();
        assert!(!k.can_read(p, b).unwrap());
        k.write(p, a, b"msg").unwrap();
        assert!(k.can_read(p, b).unwrap());

        let srv = k.spawn("srv");
        let lfd = k.tcp_listen(srv, 99).unwrap();
        assert!(!k.can_read(srv, lfd).unwrap(), "no pending connections");
        let _c = k.tcp_connect(p, 99).unwrap();
        assert!(k.can_read(srv, lfd).unwrap(), "pending connection");
    }
}
