//! Small kernel value types: identifiers, credentials, CPU and signal
//! state.
//!
//! `CpuState` matters more than it looks: Aurora checkpoints restore "all
//! state (i.e., CPU registers, OS state, and memory)". Simulated programs
//! keep their control state in these registers (and in simulated memory),
//! so a restored process provably resumes from where the checkpoint caught
//! it rather than being re-run from the start.

/// Process identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Pid(pub u32);

/// Thread identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tid(pub u32);

/// Credentials.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Ucred {
    /// Effective user id.
    pub uid: u32,
    /// Effective group id.
    pub gid: u32,
}

/// Architectural state of one thread.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CpuState {
    /// General-purpose registers.
    pub regs: [u64; 16],
    /// Program counter (simulated programs use it as a step cursor).
    pub pc: u64,
    /// Stack pointer.
    pub sp: u64,
    /// Flags register.
    pub rflags: u64,
    /// TLS base (fsbase on amd64).
    pub fsbase: u64,
}

/// A thread.
#[derive(Debug, Clone)]
pub struct Thread {
    /// Thread id.
    pub tid: Tid,
    /// CPU state, captured/restored by checkpoints.
    pub cpu: CpuState,
}

/// Disposition of one signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SigAction {
    /// Default action.
    #[default]
    Default,
    /// Ignore.
    Ignore,
    /// User handler at this (simulated) address.
    Handler(u64),
}

/// Number of signals modelled.
pub const NSIG: usize = 32;

/// Per-process signal state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SignalState {
    /// Pending-signal bitmask.
    pub pending: u32,
    /// Blocked-signal bitmask.
    pub blocked: u32,
    /// Handler table.
    pub actions: [SigAction; NSIG],
}

impl Default for SignalState {
    fn default() -> Self {
        SignalState {
            pending: 0,
            blocked: 0,
            actions: [SigAction::Default; NSIG],
        }
    }
}

impl SignalState {
    /// Marks signal `sig` pending.
    ///
    /// # Panics
    ///
    /// Panics if `sig >= NSIG` (kernel bug, not user input).
    pub fn post(&mut self, sig: u32) {
        assert!((sig as usize) < NSIG, "bad signal number");
        self.pending |= 1 << sig;
    }

    /// Takes the lowest pending unblocked signal, if any.
    pub fn take_pending(&mut self) -> Option<u32> {
        let deliverable = self.pending & !self.blocked;
        if deliverable == 0 {
            return None;
        }
        let sig = deliverable.trailing_zeros();
        self.pending &= !(1 << sig);
        Some(sig)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signal_post_and_take() {
        let mut s = SignalState::default();
        assert_eq!(s.take_pending(), None);
        s.post(9);
        s.post(2);
        assert_eq!(s.take_pending(), Some(2));
        assert_eq!(s.take_pending(), Some(9));
        assert_eq!(s.take_pending(), None);
    }

    #[test]
    fn blocked_signals_stay_pending() {
        let mut s = SignalState {
            blocked: 1 << 5,
            ..SignalState::default()
        };
        s.post(5);
        assert_eq!(s.take_pending(), None);
        s.blocked = 0;
        assert_eq!(s.take_pending(), Some(5));
    }
}
