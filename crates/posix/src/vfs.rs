//! The virtual file system layer.
//!
//! A thin mount table + path walker over the [`Filesystem`] trait. Two
//! implementations exist: [`crate::tmpfs::Tmpfs`] (the boot root) and the
//! Aurora file system in the `aurora-slsfs` crate, which implements the
//! same trait over the object store and adds the on-disk open-reference
//! count for unlinked-but-open files.

use aurora_sim::error::{Error, Result};

/// Identifier of a mounted filesystem.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MountId(pub u32);

/// A vnode reference: mount + node id within that filesystem.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VnodeRef {
    /// The mount the vnode lives on.
    pub mount: MountId,
    /// Filesystem-local node id.
    pub node: u64,
}

/// Vnode kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VnodeType {
    /// Regular file.
    Regular,
    /// Directory.
    Directory,
}

/// Attributes returned by `getattr`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VnodeAttr {
    /// Node kind.
    pub kind: VnodeType,
    /// Size in bytes (files).
    pub size: u64,
    /// Hard-link count.
    pub nlink: u32,
}

/// Operations a filesystem implements.
pub trait Filesystem {
    /// Filesystem type name (`tmpfs`, `slsfs`).
    fn fs_name(&self) -> &'static str;

    /// Root directory node id.
    fn root(&self) -> u64;

    /// Looks `name` up in directory `dir`.
    fn lookup(&mut self, dir: u64, name: &str) -> Result<u64>;

    /// Creates a regular file.
    fn create(&mut self, dir: u64, name: &str) -> Result<u64>;

    /// Creates a directory.
    fn mkdir(&mut self, dir: u64, name: &str) -> Result<u64>;

    /// Creates a hard link `dir/name` to an existing file node.
    fn link(&mut self, dir: u64, name: &str, node: u64) -> Result<()>;

    /// Removes a file name (data lives on while opens remain).
    fn unlink(&mut self, dir: u64, name: &str) -> Result<()>;

    /// Removes an empty directory.
    fn rmdir(&mut self, dir: u64, name: &str) -> Result<()>;

    /// Renames within this filesystem.
    fn rename(&mut self, sdir: u64, sname: &str, ddir: u64, dname: &str) -> Result<()>;

    /// Lists a directory as `(name, node)` pairs in name order.
    fn readdir(&mut self, dir: u64) -> Result<Vec<(String, u64)>>;

    /// Reads up to `len` bytes at `off`.
    fn read(&mut self, node: u64, off: u64, len: usize) -> Result<Vec<u8>>;

    /// Writes at `off`, extending the file as needed.
    fn write(&mut self, node: u64, off: u64, data: &[u8]) -> Result<usize>;

    /// Truncates/extends to `len`.
    fn truncate(&mut self, node: u64, len: u64) -> Result<()>;

    /// Node attributes.
    fn getattr(&self, node: u64) -> Result<VnodeAttr>;

    /// Adjusts the open reference count — the hook behind Aurora's
    /// unlinked-but-open file persistence.
    fn open_ref(&mut self, node: u64, delta: i32) -> Result<()>;

    /// Flushes dirty state to the backing store (no-op for tmpfs).
    fn sync(&mut self) -> Result<()>;

    /// Downcast hook for filesystem-specific extensions (e.g. SLSFS's
    /// zero-copy clones).
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;
}

/// One mount-table entry.
struct Mount {
    path: String,
    fs: Box<dyn Filesystem>,
}

/// The VFS: a mount table plus the path walker.
pub struct Vfs {
    mounts: Vec<Mount>,
}

impl Default for Vfs {
    fn default() -> Self {
        Self::new()
    }
}

impl Vfs {
    /// Creates a VFS with a tmpfs root.
    pub fn new() -> Self {
        Vfs {
            mounts: vec![Mount {
                path: "/".to_string(),
                fs: Box::new(crate::tmpfs::Tmpfs::new()),
            }],
        }
    }

    /// Mounts `fs` at `path` (which must be absolute).
    pub fn mount(&mut self, path: &str, fs: Box<dyn Filesystem>) -> Result<MountId> {
        if !path.starts_with('/') {
            return Err(Error::invalid(format!("mount point {path} not absolute")));
        }
        if self.mounts.iter().any(|m| m.path == path) {
            return Err(Error::already_exists(format!("mount point {path}")));
        }
        self.mounts.push(Mount {
            path: path.to_string(),
            fs,
        });
        Ok(MountId(self.mounts.len() as u32 - 1))
    }

    /// Access to a mounted filesystem.
    pub fn fs(&mut self, id: MountId) -> &mut dyn Filesystem {
        self.mounts[id.0 as usize].fs.as_mut()
    }

    /// Immutable access to a mounted filesystem.
    pub fn fs_ref(&self, id: MountId) -> &dyn Filesystem {
        self.mounts[id.0 as usize].fs.as_ref()
    }

    /// All mount ids.
    pub fn mount_ids(&self) -> Vec<MountId> {
        (0..self.mounts.len() as u32).map(MountId).collect()
    }

    /// Splits an absolute path into its mount and in-fs components.
    ///
    /// Picks the longest mount-point prefix (so `/sls/db` resolves inside
    /// a filesystem mounted at `/sls`).
    fn split(&self, path: &str) -> Result<(MountId, Vec<String>)> {
        if !path.starts_with('/') {
            return Err(Error::invalid(format!("path {path} not absolute")));
        }
        let mut best: Option<(usize, MountId)> = None;
        for (i, m) in self.mounts.iter().enumerate() {
            let is_prefix = m.path == "/"
                || path == m.path
                || path.starts_with(&format!("{}/", m.path));
            if is_prefix {
                let len = m.path.len();
                if best.is_none_or(|(blen, _)| len > blen) {
                    best = Some((len, MountId(i as u32)));
                }
            }
        }
        let (plen, mount) = best.ok_or_else(|| Error::not_found(format!("no mount for {path}")))?;
        let rest = &path[plen..];
        let comps = rest
            .split('/')
            .filter(|c| !c.is_empty())
            .map(str::to_string)
            .collect();
        Ok((mount, comps))
    }

    /// Resolves a path to its vnode.
    pub fn resolve(&mut self, path: &str) -> Result<VnodeRef> {
        let (mount, comps) = self.split(path)?;
        let fs = self.fs(mount);
        let mut node = fs.root();
        for comp in &comps {
            node = fs.lookup(node, comp)?;
        }
        Ok(VnodeRef { mount, node })
    }

    /// Resolves a path's parent directory, returning `(parent, last)`.
    pub fn resolve_parent(&mut self, path: &str) -> Result<(VnodeRef, String)> {
        let (mount, mut comps) = self.split(path)?;
        let last = comps
            .pop()
            .ok_or_else(|| Error::invalid(format!("path {path} has no final component")))?;
        let fs = self.fs(mount);
        let mut node = fs.root();
        for comp in &comps {
            node = fs.lookup(node, comp)?;
        }
        Ok((VnodeRef { mount, node }, last))
    }
}

impl core::fmt::Debug for Vfs {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let points: Vec<(&str, &'static str)> = self
            .mounts
            .iter()
            .map(|m| (m.path.as_str(), m.fs.fs_name()))
            .collect();
        f.debug_struct("Vfs").field("mounts", &points).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_through_tmpfs_root() {
        let mut vfs = Vfs::new();
        let (root_mount, comps) = vfs.split("/a/b/c").unwrap();
        assert_eq!(root_mount, MountId(0));
        assert_eq!(comps, vec!["a", "b", "c"]);
        assert!(vfs.resolve("/nope").is_err());
        let root = vfs.resolve("/").unwrap();
        assert_eq!(root.node, vfs.fs(root_mount).root());
    }

    #[test]
    fn longest_prefix_mount_wins() {
        let mut vfs = Vfs::new();
        vfs.mount("/sls", Box::new(crate::tmpfs::Tmpfs::new()))
            .unwrap();
        let (m, comps) = vfs.split("/sls/data/file").unwrap();
        assert_eq!(m, MountId(1));
        assert_eq!(comps, vec!["data", "file"]);
        // "/slsx" is NOT under the "/sls" mount.
        let (m2, _) = vfs.split("/slsx").unwrap();
        assert_eq!(m2, MountId(0));
        assert!(vfs.mount("/sls", Box::new(crate::tmpfs::Tmpfs::new())).is_err());
        assert!(vfs.mount("rel", Box::new(crate::tmpfs::Tmpfs::new())).is_err());
    }

    #[test]
    fn resolve_parent_of_root_child() {
        let mut vfs = Vfs::new();
        let (parent, last) = vfs.resolve_parent("/newfile").unwrap();
        assert_eq!(parent.node, vfs.fs(MountId(0)).root());
        assert_eq!(last, "newfile");
        assert!(vfs.resolve_parent("/").is_err());
    }
}
