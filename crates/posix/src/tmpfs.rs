//! tmpfs: the in-memory boot filesystem.
//!
//! Also the reference implementation for the [`crate::vfs::Filesystem`]
//! trait: the property tests in `aurora-slsfs` run the same operation
//! sequences against tmpfs and SLSFS and require identical observable
//! behaviour (SLSFS additionally persists).

use std::collections::{BTreeMap, HashMap};

use aurora_sim::error::{Error, Result};

use crate::vfs::{Filesystem, VnodeAttr, VnodeType};

#[derive(Debug)]
enum Node {
    File {
        data: Vec<u8>,
        nlink: u32,
        open_refs: u32,
    },
    Dir {
        entries: BTreeMap<String, u64>,
        nlink: u32,
    },
}

/// The in-memory filesystem.
#[derive(Debug)]
pub struct Tmpfs {
    nodes: HashMap<u64, Node>,
    next: u64,
}

/// Root node id.
const ROOT: u64 = 1;

impl Default for Tmpfs {
    fn default() -> Self {
        Self::new()
    }
}

impl Tmpfs {
    /// Creates an empty filesystem with a root directory.
    pub fn new() -> Self {
        let mut nodes = HashMap::new();
        nodes.insert(
            ROOT,
            Node::Dir {
                entries: BTreeMap::new(),
                nlink: 2,
            },
        );
        Tmpfs { nodes, next: 2 }
    }

    fn node(&self, id: u64) -> Result<&Node> {
        self.nodes
            .get(&id)
            .ok_or_else(|| Error::not_found(format!("tmpfs node {id}")))
    }

    fn node_mut(&mut self, id: u64) -> Result<&mut Node> {
        self.nodes
            .get_mut(&id)
            .ok_or_else(|| Error::not_found(format!("tmpfs node {id}")))
    }

    fn dir_entries(&mut self, id: u64) -> Result<&mut BTreeMap<String, u64>> {
        match self.node_mut(id)? {
            Node::Dir { entries, .. } => Ok(entries),
            Node::File { .. } => Err(Error::new(
                aurora_sim::error::ErrorKind::NotDirectory,
                format!("tmpfs node {id}"),
            )),
        }
    }

    /// Destroys a file node if it has neither links nor opens.
    fn maybe_reclaim(&mut self, id: u64) {
        if let Some(Node::File {
            nlink: 0,
            open_refs: 0,
            ..
        }) = self.nodes.get(&id)
        {
            self.nodes.remove(&id);
        }
    }

    /// Number of live nodes (tests).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }
}

impl Filesystem for Tmpfs {
    fn fs_name(&self) -> &'static str {
        "tmpfs"
    }

    fn root(&self) -> u64 {
        ROOT
    }

    fn lookup(&mut self, dir: u64, name: &str) -> Result<u64> {
        self.dir_entries(dir)?
            .get(name)
            .copied()
            .ok_or_else(|| Error::not_found(name.to_string()))
    }

    fn create(&mut self, dir: u64, name: &str) -> Result<u64> {
        let id = self.next;
        {
            let entries = self.dir_entries(dir)?;
            if entries.contains_key(name) {
                return Err(Error::already_exists(name));
            }
            entries.insert(name.to_string(), id);
        }
        self.next += 1;
        self.nodes.insert(
            id,
            Node::File {
                data: Vec::new(),
                nlink: 1,
                open_refs: 0,
            },
        );
        Ok(id)
    }

    fn mkdir(&mut self, dir: u64, name: &str) -> Result<u64> {
        let id = self.next;
        {
            let entries = self.dir_entries(dir)?;
            if entries.contains_key(name) {
                return Err(Error::already_exists(name));
            }
            entries.insert(name.to_string(), id);
        }
        self.next += 1;
        self.nodes.insert(
            id,
            Node::Dir {
                entries: BTreeMap::new(),
                nlink: 2,
            },
        );
        Ok(id)
    }

    fn link(&mut self, dir: u64, name: &str, node: u64) -> Result<()> {
        match self.node_mut(node)? {
            Node::File { nlink, .. } => *nlink += 1,
            Node::Dir { .. } => {
                return Err(Error::new(
                    aurora_sim::error::ErrorKind::IsDirectory,
                    "cannot hard-link directories",
                ))
            }
        }
        let entries = self.dir_entries(dir)?;
        if entries.contains_key(name) {
            // Roll the count back before reporting the conflict.
            if let Ok(Node::File { nlink, .. }) = self.node_mut(node) {
                *nlink -= 1;
            }
            return Err(Error::already_exists(name));
        }
        self.dir_entries(dir)?.insert(name.to_string(), node);
        Ok(())
    }

    fn unlink(&mut self, dir: u64, name: &str) -> Result<()> {
        let id = {
            let entries = self.dir_entries(dir)?;
            let id = *entries
                .get(name)
                .ok_or_else(|| Error::not_found(name))?;
            if matches!(self.node(id)?, Node::Dir { .. }) {
                return Err(Error::new(
                    aurora_sim::error::ErrorKind::IsDirectory,
                    name,
                ));
            }
            self.dir_entries(dir)?.remove(name);
            id
        };
        if let Node::File { nlink, .. } = self.node_mut(id)? {
            *nlink = nlink.saturating_sub(1);
        }
        self.maybe_reclaim(id);
        Ok(())
    }

    fn rmdir(&mut self, dir: u64, name: &str) -> Result<()> {
        let id = {
            let entries = self.dir_entries(dir)?;
            *entries.get(name).ok_or_else(|| Error::not_found(name))?
        };
        match self.node(id)? {
            Node::Dir { entries, .. } if !entries.is_empty() => {
                return Err(Error::new(aurora_sim::error::ErrorKind::NotEmpty, name));
            }
            Node::File { .. } => {
                return Err(Error::new(
                    aurora_sim::error::ErrorKind::NotDirectory,
                    name,
                ));
            }
            _ => {}
        }
        self.dir_entries(dir)?.remove(name);
        self.nodes.remove(&id);
        Ok(())
    }

    fn rename(&mut self, sdir: u64, sname: &str, ddir: u64, dname: &str) -> Result<()> {
        let id = {
            let entries = self.dir_entries(sdir)?;
            *entries.get(sname).ok_or_else(|| Error::not_found(sname))?
        };
        // Renaming a file onto itself is a POSIX no-op.
        let replaced = {
            let dentries = self.dir_entries(ddir)?;
            dentries.get(dname).copied()
        };
        if replaced == Some(id) {
            return Ok(());
        }
        if let Some(old) = replaced {
            if matches!(self.node(old)?, Node::Dir { .. }) {
                return Err(Error::new(
                    aurora_sim::error::ErrorKind::IsDirectory,
                    dname,
                ));
            }
        }
        self.dir_entries(sdir)?.remove(sname);
        self.dir_entries(ddir)?.insert(dname.to_string(), id);
        if let Some(old) = replaced {
            if let Node::File { nlink, .. } = self.node_mut(old)? {
                *nlink = nlink.saturating_sub(1);
            }
            self.maybe_reclaim(old);
        }
        Ok(())
    }

    fn readdir(&mut self, dir: u64) -> Result<Vec<(String, u64)>> {
        Ok(self
            .dir_entries(dir)?
            .iter()
            .map(|(n, id)| (n.clone(), *id))
            .collect())
    }

    fn read(&mut self, node: u64, off: u64, len: usize) -> Result<Vec<u8>> {
        match self.node(node)? {
            Node::File { data, .. } => {
                let off = off as usize;
                if off >= data.len() {
                    return Ok(Vec::new());
                }
                let end = (off + len).min(data.len());
                Ok(data[off..end].to_vec())
            }
            Node::Dir { .. } => Err(Error::new(
                aurora_sim::error::ErrorKind::IsDirectory,
                format!("node {node}"),
            )),
        }
    }

    fn write(&mut self, node: u64, off: u64, buf: &[u8]) -> Result<usize> {
        match self.node_mut(node)? {
            Node::File { data, .. } => {
                let off = off as usize;
                if data.len() < off + buf.len() {
                    data.resize(off + buf.len(), 0);
                }
                data[off..off + buf.len()].copy_from_slice(buf);
                Ok(buf.len())
            }
            Node::Dir { .. } => Err(Error::new(
                aurora_sim::error::ErrorKind::IsDirectory,
                format!("node {node}"),
            )),
        }
    }

    fn truncate(&mut self, node: u64, len: u64) -> Result<()> {
        match self.node_mut(node)? {
            Node::File { data, .. } => {
                data.resize(len as usize, 0);
                Ok(())
            }
            Node::Dir { .. } => Err(Error::new(
                aurora_sim::error::ErrorKind::IsDirectory,
                format!("node {node}"),
            )),
        }
    }

    fn getattr(&self, node: u64) -> Result<VnodeAttr> {
        Ok(match self.node(node)? {
            Node::File { data, nlink, .. } => VnodeAttr {
                kind: VnodeType::Regular,
                size: data.len() as u64,
                nlink: *nlink,
            },
            Node::Dir { entries, nlink } => VnodeAttr {
                kind: VnodeType::Directory,
                size: entries.len() as u64,
                nlink: *nlink,
            },
        })
    }

    fn open_ref(&mut self, node: u64, delta: i32) -> Result<()> {
        if let Node::File { open_refs, .. } = self.node_mut(node)? {
            *open_refs = (*open_refs as i64 + delta as i64).max(0) as u32;
        }
        self.maybe_reclaim(node);
        Ok(())
    }

    fn sync(&mut self) -> Result<()> {
        Ok(())
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_write_read() {
        let mut fs = Tmpfs::new();
        let f = fs.create(ROOT, "hello.txt").unwrap();
        fs.write(f, 0, b"hello").unwrap();
        fs.write(f, 5, b" world").unwrap();
        assert_eq!(fs.read(f, 0, 100).unwrap(), b"hello world");
        assert_eq!(fs.read(f, 6, 5).unwrap(), b"world");
        assert_eq!(fs.read(f, 100, 5).unwrap(), b"");
        assert_eq!(fs.getattr(f).unwrap().size, 11);
    }

    #[test]
    fn sparse_write_zero_fills() {
        let mut fs = Tmpfs::new();
        let f = fs.create(ROOT, "sparse").unwrap();
        fs.write(f, 10, b"x").unwrap();
        let data = fs.read(f, 0, 11).unwrap();
        assert_eq!(&data[..10], &[0u8; 10]);
        assert_eq!(data[10], b'x');
    }

    #[test]
    fn directories_and_rename() {
        let mut fs = Tmpfs::new();
        let d = fs.mkdir(ROOT, "dir").unwrap();
        let f = fs.create(d, "a").unwrap();
        fs.rename(d, "a", ROOT, "b").unwrap();
        assert!(fs.lookup(d, "a").is_err());
        assert_eq!(fs.lookup(ROOT, "b").unwrap(), f);
        // rmdir requires empty.
        let d2 = fs.mkdir(ROOT, "full").unwrap();
        fs.create(d2, "x").unwrap();
        assert!(fs.rmdir(ROOT, "full").is_err());
        fs.unlink(d2, "x").unwrap();
        fs.rmdir(ROOT, "full").unwrap();
    }

    #[test]
    fn rename_replaces_target() {
        let mut fs = Tmpfs::new();
        let a = fs.create(ROOT, "a").unwrap();
        fs.create(ROOT, "b").unwrap();
        fs.write(a, 0, b"A").unwrap();
        fs.rename(ROOT, "a", ROOT, "b").unwrap();
        let b = fs.lookup(ROOT, "b").unwrap();
        assert_eq!(b, a);
        assert_eq!(fs.read(b, 0, 1).unwrap(), b"A");
        assert!(fs.lookup(ROOT, "a").is_err());
    }

    #[test]
    fn unlinked_but_open_survives_until_close() {
        let mut fs = Tmpfs::new();
        let f = fs.create(ROOT, "tmp").unwrap();
        fs.write(f, 0, b"scratch").unwrap();
        fs.open_ref(f, 1).unwrap();
        fs.unlink(ROOT, "tmp").unwrap();
        // Still readable through the open reference.
        assert_eq!(fs.read(f, 0, 7).unwrap(), b"scratch");
        fs.open_ref(f, -1).unwrap();
        assert!(fs.read(f, 0, 7).is_err(), "reclaimed at last close");
    }

    #[test]
    fn type_errors() {
        let mut fs = Tmpfs::new();
        let f = fs.create(ROOT, "f").unwrap();
        assert!(fs.lookup(f, "x").is_err());
        assert!(fs.read(ROOT, 0, 1).is_err());
        assert!(fs.write(ROOT, 0, b"x").is_err());
        let _d = fs.mkdir(ROOT, "d").unwrap();
        assert!(fs.unlink(ROOT, "d").is_err(), "unlink of directory");
        assert!(fs.rmdir(ROOT, "f").is_err(), "rmdir of file");
        assert!(fs.create(ROOT, "f").is_err(), "duplicate name");
    }

    #[test]
    fn readdir_sorted() {
        let mut fs = Tmpfs::new();
        fs.create(ROOT, "zeta").unwrap();
        fs.create(ROOT, "alpha").unwrap();
        let names: Vec<String> = fs.readdir(ROOT).unwrap().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["alpha", "zeta"]);
    }
}
