//! File descriptors and open-file descriptions.
//!
//! POSIX has a two-level structure that checkpointers must get exactly
//! right: numbered *descriptors* in each process point at shared
//! *open-file descriptions* holding the offset and flags. After
//! `fork`, parent and child share descriptions, so a `read` in one moves
//! the offset seen by the other. Aurora serializes descriptions as
//! first-class objects and descriptors as lightweight references, which
//! preserves this aliasing across checkpoint/restore.

use aurora_sim::error::{Error, Result};

use crate::pipe::PipeId;
use crate::unix::UsockId;
use crate::inet::IsockId;
use crate::vfs::VnodeRef;

/// A descriptor number within one process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fd(pub u32);

/// Key of an open-file description in the kernel file table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FileId(pub u32);

/// What an open-file description refers to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FileKind {
    /// A file or directory through the VFS.
    Vnode(VnodeRef),
    /// Read end of a pipe.
    PipeRead(PipeId),
    /// Write end of a pipe.
    PipeWrite(PipeId),
    /// A Unix-domain socket.
    UnixSock(UsockId),
    /// A loopback TCP socket.
    InetSock(IsockId),
    /// A POSIX shared-memory object (by name).
    PosixShm(String),
    /// An Aurora persistent non-temporal log (key assigned by the SLS).
    NtLog(u64),
}

/// An open-file description.
#[derive(Debug, Clone)]
pub struct OpenFile {
    /// What this description refers to.
    pub kind: FileKind,
    /// Shared read/write offset (vnodes and shm).
    pub offset: u64,
    /// Open flags (append, nonblock — a small bitset).
    pub flags: u32,
    /// References held by fd-table slots and in-flight SCM_RIGHTS
    /// messages.
    pub refs: u32,
    /// External consistency enabled for this description (`sls_fdctl`).
    pub external_consistency: bool,
}

/// Append flag.
pub const O_APPEND: u32 = 1 << 0;
/// Non-blocking flag.
pub const O_NONBLOCK: u32 = 1 << 1;

impl OpenFile {
    /// Creates a description with one reference.
    pub fn new(kind: FileKind) -> Self {
        OpenFile {
            kind,
            offset: 0,
            flags: 0,
            refs: 1,
            external_consistency: true,
        }
    }
}

/// A per-process descriptor table.
#[derive(Debug, Clone, Default)]
pub struct FdTable {
    slots: Vec<Option<FileId>>,
}

impl FdTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        FdTable::default()
    }

    /// Installs a description at the lowest free descriptor.
    pub fn install(&mut self, file: FileId) -> Fd {
        for (i, slot) in self.slots.iter_mut().enumerate() {
            if slot.is_none() {
                *slot = Some(file);
                return Fd(i as u32);
            }
        }
        self.slots.push(Some(file));
        Fd(self.slots.len() as u32 - 1)
    }

    /// Installs a description at a specific descriptor (restore path /
    /// dup2). Fails if occupied.
    pub fn install_at(&mut self, fd: Fd, file: FileId) -> Result<()> {
        while self.slots.len() <= fd.0 as usize {
            self.slots.push(None);
        }
        if self.slots[fd.0 as usize].is_some() {
            return Err(Error::already_exists(format!("fd {}", fd.0)));
        }
        self.slots[fd.0 as usize] = Some(file);
        Ok(())
    }

    /// Resolves a descriptor to its description.
    pub fn get(&self, fd: Fd) -> Result<FileId> {
        self.slots
            .get(fd.0 as usize)
            .and_then(|s| *s)
            .ok_or_else(|| Error::bad_fd(format!("fd {}", fd.0)))
    }

    /// Removes a descriptor, returning the description it held.
    pub fn remove(&mut self, fd: Fd) -> Result<FileId> {
        let slot = self
            .slots
            .get_mut(fd.0 as usize)
            .ok_or_else(|| Error::bad_fd(format!("fd {}", fd.0)))?;
        slot.take().ok_or_else(|| Error::bad_fd(format!("fd {}", fd.0)))
    }

    /// Iterates `(fd, file)` pairs in descriptor order.
    pub fn iter(&self) -> impl Iterator<Item = (Fd, FileId)> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.map(|f| (Fd(i as u32), f)))
    }

    /// Number of open descriptors.
    pub fn len(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// True when no descriptors are open.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lowest_free_descriptor_rule() {
        let mut t = FdTable::new();
        assert_eq!(t.install(FileId(10)), Fd(0));
        assert_eq!(t.install(FileId(11)), Fd(1));
        assert_eq!(t.install(FileId(12)), Fd(2));
        t.remove(Fd(1)).unwrap();
        assert_eq!(t.install(FileId(13)), Fd(1), "POSIX lowest-free rule");
    }

    #[test]
    fn get_and_remove_errors() {
        let mut t = FdTable::new();
        assert!(t.get(Fd(0)).is_err());
        assert!(t.remove(Fd(5)).is_err());
        let fd = t.install(FileId(3));
        assert_eq!(t.get(fd).unwrap(), FileId(3));
        t.remove(fd).unwrap();
        assert!(t.get(fd).is_err());
    }

    #[test]
    fn install_at_conflicts() {
        let mut t = FdTable::new();
        t.install_at(Fd(4), FileId(9)).unwrap();
        assert!(t.install_at(Fd(4), FileId(10)).is_err());
        assert_eq!(t.get(Fd(4)).unwrap(), FileId(9));
        assert_eq!(t.len(), 1);
        // Gaps stay available for lowest-free installs.
        assert_eq!(t.install(FileId(1)), Fd(0));
    }
}
