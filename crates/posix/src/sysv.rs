//! System V shared memory, System V message queues, POSIX shared memory.
//!
//! These are the primitives the paper names when it says Aurora treats
//! "all POSIX primitives (e.g., Unix domain sockets, System V shared
//! memory, and file descriptors) as first class objects". Shared-memory
//! segments own a VM object directly; the checkpoint captures the object
//! once no matter how many processes have it attached, and the restore
//! path re-attaches every process to the *same* rebuilt object.

use std::collections::VecDeque;

use aurora_sim::error::{Error, Result};
use aurora_vm::{Prot, VmoId, VmoKind, PAGE_SIZE};

use crate::types::Pid;
use crate::Kernel;

/// A System V shared-memory segment.
#[derive(Debug)]
pub struct SysvShm {
    /// The segment key.
    pub key: i32,
    /// Size in bytes.
    pub size: u64,
    /// The backing VM object (the kernel holds one reference).
    pub object: VmoId,
    /// Attach count.
    pub nattch: u32,
    /// IPC_RMID was issued; destroy at last detach.
    pub removed: bool,
}

/// One queued System V message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SysvMsg {
    /// Message type (> 0).
    pub mtype: i64,
    /// Payload.
    pub data: Vec<u8>,
}

/// A System V message queue.
#[derive(Debug, Default)]
pub struct MsgQueue {
    /// Queued messages in arrival order.
    pub msgs: VecDeque<SysvMsg>,
    /// Byte capacity (msgmnb).
    pub capacity: usize,
}

/// Default queue capacity, matching a common msgmnb.
pub const MSGMNB: usize = 16 * 1024;

/// A POSIX shared-memory object (`shm_open` namespace).
#[derive(Debug)]
pub struct PosixShm {
    /// Backing VM object (kernel holds one reference).
    pub object: VmoId,
    /// Current size in bytes (`ftruncate`).
    pub size: u64,
    /// Unlinked but still open descriptions exist.
    pub unlinked: bool,
    /// Open-file descriptions referring to this object.
    pub open_refs: u32,
}

impl Kernel {
    /// Creates or looks up a SysV segment (`shmget`).
    pub fn shmget(&mut self, key: i32, size: u64) -> Result<()> {
        self.charge_syscall();
        if self.sysv_shms.contains_key(&key) {
            return Ok(());
        }
        if size == 0 || !size.is_multiple_of(PAGE_SIZE as u64) {
            return Err(Error::invalid(format!("shmget size {size}")));
        }
        let object = self
            .vm
            .create_object(VmoKind::SharedMem, size / PAGE_SIZE as u64);
        self.sysv_shms.insert(
            key,
            SysvShm {
                key,
                size,
                object,
                nattch: 0,
                removed: false,
            },
        );
        Ok(())
    }

    /// Attaches a segment into `pid`'s address space (`shmat`).
    pub fn shmat(&mut self, pid: Pid, key: i32) -> Result<u64> {
        self.charge_syscall();
        let (object, size) = {
            let seg = self
                .sysv_shms
                .get_mut(&key)
                .ok_or_else(|| Error::not_found(format!("shm key {key}")))?;
            if seg.removed {
                return Err(Error::not_found(format!("shm key {key} removed")));
            }
            seg.nattch += 1;
            (seg.object, seg.size)
        };
        let proc = self
            .procs
            .get_mut(&pid)
            .ok_or_else(|| Error::not_found(format!("pid {}", pid.0)))?;
        self.vm
            .map_object(&mut proc.map, object, 0, size, Prot::RW, true)
    }

    /// Detaches the segment mapped at `addr` (`shmdt`).
    pub fn shmdt(&mut self, pid: Pid, key: i32, addr: u64) -> Result<()> {
        self.charge_syscall();
        {
            let proc = self
                .procs
                .get_mut(&pid)
                .ok_or_else(|| Error::not_found(format!("pid {}", pid.0)))?;
            self.vm.unmap(&mut proc.map, addr)?;
        }
        let destroy = {
            let seg = self
                .sysv_shms
                .get_mut(&key)
                .ok_or_else(|| Error::not_found(format!("shm key {key}")))?;
            seg.nattch = seg.nattch.saturating_sub(1);
            seg.removed && seg.nattch == 0
        };
        if destroy {
            self.shm_destroy(key);
        }
        Ok(())
    }

    /// Marks a segment for removal (`shmctl(IPC_RMID)`).
    pub fn shm_rmid(&mut self, key: i32) -> Result<()> {
        self.charge_syscall();
        let destroy = {
            let seg = self
                .sysv_shms
                .get_mut(&key)
                .ok_or_else(|| Error::not_found(format!("shm key {key}")))?;
            seg.removed = true;
            seg.nattch == 0
        };
        if destroy {
            self.shm_destroy(key);
        }
        Ok(())
    }

    fn shm_destroy(&mut self, key: i32) {
        if let Some(seg) = self.sysv_shms.remove(&key) {
            self.vm.unref_object(seg.object);
        }
    }

    /// Creates or looks up a message queue (`msgget`).
    pub fn msgget(&mut self, key: i32) -> Result<()> {
        self.charge_syscall();
        self.msgqs.entry(key).or_insert_with(|| MsgQueue {
            msgs: VecDeque::new(),
            capacity: MSGMNB,
        });
        Ok(())
    }

    /// Enqueues a message (`msgsnd`).
    pub fn msgsnd(&mut self, key: i32, mtype: i64, data: &[u8]) -> Result<()> {
        self.charge_syscall();
        if mtype <= 0 {
            return Err(Error::invalid("message type must be positive"));
        }
        self.clock.charge(aurora_sim::cost::ipc_copy(data.len()));
        let q = self
            .msgqs
            .get_mut(&key)
            .ok_or_else(|| Error::not_found(format!("msgq key {key}")))?;
        let used: usize = q.msgs.iter().map(|m| m.data.len()).sum();
        if used + data.len() > q.capacity {
            return Err(Error::would_block("message queue full"));
        }
        q.msgs.push_back(SysvMsg {
            mtype,
            data: data.to_vec(),
        });
        Ok(())
    }

    /// Dequeues a message (`msgrcv`): `mtype == 0` takes the head,
    /// `mtype > 0` takes the first message of that type.
    pub fn msgrcv(&mut self, key: i32, mtype: i64) -> Result<SysvMsg> {
        self.charge_syscall();
        let q = self
            .msgqs
            .get_mut(&key)
            .ok_or_else(|| Error::not_found(format!("msgq key {key}")))?;
        let pos = if mtype == 0 {
            if q.msgs.is_empty() {
                None
            } else {
                Some(0)
            }
        } else {
            q.msgs.iter().position(|m| m.mtype == mtype)
        };
        let msg = pos
            .and_then(|p| q.msgs.remove(p))
            .ok_or_else(|| Error::would_block("no matching message"))?;
        self.clock.charge(aurora_sim::cost::ipc_copy(msg.data.len()));
        Ok(msg)
    }

    /// Opens (creating if absent) a POSIX shared-memory object.
    pub fn posix_shm_open(&mut self, name: &str, size: u64) -> Result<()> {
        self.charge_syscall();
        if let Some(shm) = self.posix_shms.get_mut(name) {
            if shm.unlinked {
                return Err(Error::not_found(format!("shm {name} unlinked")));
            }
            shm.open_refs += 1;
            return Ok(());
        }
        if size == 0 || !size.is_multiple_of(PAGE_SIZE as u64) {
            return Err(Error::invalid(format!("posix shm size {size}")));
        }
        let object = self
            .vm
            .create_object(VmoKind::SharedMem, size / PAGE_SIZE as u64);
        self.posix_shms.insert(
            name.to_string(),
            PosixShm {
                object,
                size,
                unlinked: false,
                open_refs: 1,
            },
        );
        Ok(())
    }

    /// Maps an open POSIX shm object into `pid`.
    pub fn posix_shm_map(&mut self, pid: Pid, name: &str) -> Result<u64> {
        self.charge_syscall();
        let (object, size) = {
            let shm = self
                .posix_shms
                .get(name)
                .ok_or_else(|| Error::not_found(format!("shm {name}")))?;
            (shm.object, shm.size)
        };
        let proc = self
            .procs
            .get_mut(&pid)
            .ok_or_else(|| Error::not_found(format!("pid {}", pid.0)))?;
        self.vm
            .map_object(&mut proc.map, object, 0, size, Prot::RW, true)
    }

    /// Drops an open reference (close of the shm fd).
    pub fn posix_shm_close(&mut self, name: &str) {
        let destroy = match self.posix_shms.get_mut(name) {
            Some(shm) => {
                shm.open_refs = shm.open_refs.saturating_sub(1);
                shm.unlinked && shm.open_refs == 0
            }
            None => false,
        };
        if destroy {
            if let Some(shm) = self.posix_shms.remove(name) {
                self.vm.unref_object(shm.object);
            }
        }
    }

    /// Unlinks the name; the object survives while descriptions remain
    /// open (the same edge case SLSFS handles for regular files).
    pub fn posix_shm_unlink(&mut self, name: &str) -> Result<()> {
        self.charge_syscall();
        let destroy = {
            let shm = self
                .posix_shms
                .get_mut(name)
                .ok_or_else(|| Error::not_found(format!("shm {name}")))?;
            shm.unlinked = true;
            shm.open_refs == 0
        };
        if destroy {
            if let Some(shm) = self.posix_shms.remove(name) {
                self.vm.unref_object(shm.object);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aurora_sim::SimClock;

    #[test]
    fn sysv_shm_is_shared_between_processes() {
        let mut k = Kernel::boot(SimClock::new(), "t");
        let a = k.spawn("a");
        let b = k.spawn("b");
        k.shmget(100, 4096).unwrap();
        let addr_a = k.shmat(a, 100).unwrap();
        let addr_b = k.shmat(b, 100).unwrap();
        k.mem_write(a, addr_a, b"shared!").unwrap();
        let mut buf = [0u8; 7];
        k.mem_read(b, addr_b, &mut buf).unwrap();
        assert_eq!(&buf, b"shared!");
        assert_eq!(k.sysv_shms.get(&100).unwrap().nattch, 2);
    }

    #[test]
    fn rmid_defers_destruction_until_last_detach() {
        let mut k = Kernel::boot(SimClock::new(), "t");
        let a = k.spawn("a");
        k.shmget(5, 4096).unwrap();
        let addr = k.shmat(a, 5).unwrap();
        k.shm_rmid(5).unwrap();
        assert!(k.sysv_shms.contains_key(&5), "still attached");
        assert!(k.shmat(a, 5).is_err(), "no new attaches after rmid");
        k.shmdt(a, 5, addr).unwrap();
        assert!(!k.sysv_shms.contains_key(&5));
    }

    #[test]
    fn msgq_fifo_and_type_selection() {
        let mut k = Kernel::boot(SimClock::new(), "t");
        k.msgget(9).unwrap();
        k.msgsnd(9, 1, b"first").unwrap();
        k.msgsnd(9, 2, b"second").unwrap();
        k.msgsnd(9, 1, b"third").unwrap();
        let m = k.msgrcv(9, 2).unwrap();
        assert_eq!(m.data, b"second");
        let m = k.msgrcv(9, 0).unwrap();
        assert_eq!(m.data, b"first");
        let m = k.msgrcv(9, 0).unwrap();
        assert_eq!(m.data, b"third");
        assert!(k.msgrcv(9, 0).is_err());
        assert!(k.msgsnd(9, 0, b"bad type").is_err());
    }

    #[test]
    fn msgq_capacity() {
        let mut k = Kernel::boot(SimClock::new(), "t");
        k.msgget(1).unwrap();
        let big = vec![0u8; MSGMNB];
        k.msgsnd(1, 1, &big).unwrap();
        assert!(k.msgsnd(1, 1, b"x").is_err());
    }

    #[test]
    fn posix_shm_unlink_while_open() {
        let mut k = Kernel::boot(SimClock::new(), "t");
        let p = k.spawn("p");
        k.posix_shm_open("/cache", 4096).unwrap();
        let addr = k.posix_shm_map(p, "/cache").unwrap();
        k.mem_write(p, addr, b"live").unwrap();
        k.posix_shm_unlink("/cache").unwrap();
        // Object still usable through the mapping + open ref.
        let mut buf = [0u8; 4];
        k.mem_read(p, addr, &mut buf).unwrap();
        assert_eq!(&buf, b"live");
        // New opens fail; closing the last ref destroys it.
        assert!(k.posix_shm_open("/cache", 4096).is_err());
        k.posix_shm_close("/cache");
        assert!(!k.posix_shms.contains_key("/cache"));
    }
}
