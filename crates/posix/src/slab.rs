//! A generation-free slab with stable u32 keys.
//!
//! Kernel object tables (files, pipes, sockets, containers) need stable
//! identifiers that the checkpoint serializers can record and the restore
//! path can re-materialize. The slab supports `insert_at`, used by restore
//! to put objects back under their original ids so cross-object references
//! in the image stay valid.

use aurora_sim::error::{Error, Result};

/// A slab of `T` keyed by `u32`.
#[derive(Debug, Clone)]
pub struct Slab<T> {
    slots: Vec<Option<T>>,
    free: Vec<u32>,
    len: usize,
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Slab<T> {
    /// Creates an empty slab.
    pub fn new() -> Self {
        Slab {
            slots: Vec::new(),
            free: Vec::new(),
            len: 0,
        }
    }

    /// Inserts a value, returning its key.
    pub fn insert(&mut self, value: T) -> u32 {
        self.len += 1;
        match self.free.pop() {
            Some(k) => {
                self.slots[k as usize] = Some(value);
                k
            }
            None => {
                self.slots.push(Some(value));
                self.slots.len() as u32 - 1
            }
        }
    }

    /// Inserts a value under a specific key (restore path).
    ///
    /// Fails if the slot is already occupied.
    pub fn insert_at(&mut self, key: u32, value: T) -> Result<()> {
        while self.slots.len() <= key as usize {
            self.free.push(self.slots.len() as u32);
            self.slots.push(None);
        }
        if self.slots[key as usize].is_some() {
            return Err(Error::already_exists(format!("slab slot {key}")));
        }
        self.free.retain(|&k| k != key);
        self.slots[key as usize] = Some(value);
        self.len += 1;
        Ok(())
    }

    /// Gets a reference by key.
    pub fn get(&self, key: u32) -> Option<&T> {
        self.slots.get(key as usize).and_then(|s| s.as_ref())
    }

    /// Gets a mutable reference by key.
    pub fn get_mut(&mut self, key: u32) -> Option<&mut T> {
        self.slots.get_mut(key as usize).and_then(|s| s.as_mut())
    }

    /// Removes and returns the value at `key`.
    pub fn remove(&mut self, key: u32) -> Option<T> {
        let v = self.slots.get_mut(key as usize).and_then(|s| s.take());
        if v.is_some() {
            self.free.push(key);
            self.len -= 1;
        }
        v
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates `(key, &value)` in key order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &T)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(k, s)| s.as_ref().map(|v| (k as u32, v)))
    }

    /// Iterates `(key, &mut value)` in key order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (u32, &mut T)> {
        self.slots
            .iter_mut()
            .enumerate()
            .filter_map(|(k, s)| s.as_mut().map(|v| (k as u32, v)))
    }

    /// All live keys in order.
    pub fn keys(&self) -> Vec<u32> {
        self.iter().map(|(k, _)| k).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove() {
        let mut s = Slab::new();
        let a = s.insert("a");
        let b = s.insert("b");
        assert_eq!(s.get(a), Some(&"a"));
        assert_eq!(s.len(), 2);
        assert_eq!(s.remove(a), Some("a"));
        assert_eq!(s.get(a), None);
        assert_eq!(s.remove(a), None);
        assert_eq!(s.len(), 1);
        let c = s.insert("c");
        assert_eq!(c, a, "freed slot reused");
        assert_eq!(s.get(b), Some(&"b"));
    }

    #[test]
    fn insert_at_for_restore() {
        let mut s = Slab::new();
        s.insert_at(5, "five").unwrap();
        assert_eq!(s.get(5), Some(&"five"));
        assert!(s.insert_at(5, "dup").is_err());
        // The intermediate slots are free and get reused by insert.
        let keys: Vec<u32> = (0..5).map(|_| s.insert("x")).collect();
        assert!(keys.iter().all(|&k| k < 5));
        assert_eq!(s.len(), 6);
    }

    #[test]
    fn iteration_in_key_order() {
        let mut s = Slab::new();
        s.insert("a");
        let b = s.insert("b");
        s.insert("c");
        s.remove(b);
        let items: Vec<(u32, &&str)> = s.iter().collect();
        assert_eq!(items, vec![(0, &"a"), (2, &"c")]);
        assert_eq!(s.keys(), vec![0, 2]);
    }
}
