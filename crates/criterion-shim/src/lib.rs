//! In-tree stand-in for the `criterion` crate.
//!
//! The workspace builds in environments with no access to a crates.io
//! mirror. This shim keeps the `cargo bench` entry points compiling and
//! running as lightweight smoke benchmarks: each benchmark executes a
//! small fixed number of iterations and prints mean wall-clock time. It
//! does no statistics, warmup tuning, or HTML reporting.

use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value passthrough.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The bench harness's single wall-clock read point. Benchmark binaries
/// measure real elapsed time through this helper instead of reading the
/// OS clock themselves, so the workspace's wall-clock lint surface stays
/// at exactly this one site.
pub fn wall_now() -> Instant {
    Instant::now()
}

/// How `iter_batched` amortizes setup; accepted and ignored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// The benchmark manager handed to `criterion_group!` targets.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Standard configuration.
    pub fn default() -> Self {
        Criterion { _private: () }
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            _parent: self,
            iterations: default_iterations(),
        }
    }

    /// Registers a standalone benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(name, default_iterations(), f);
        self
    }
}

/// Iterations per benchmark; `CRITERION_ITERS` overrides the default.
fn default_iterations() -> u64 {
    std::env::var("CRITERION_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10)
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    iterations: u64,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim runs a fixed count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.iterations = (n as u64).clamp(1, 1000);
        self
    }

    /// Registers a benchmark in this group.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(name, self.iterations, f);
        self
    }

    /// Finishes the group.
    pub fn finish(self) {}
}

fn run_one(name: &str, iterations: u64, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher {
        iterations,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = if iterations > 0 {
        b.elapsed / iterations as u32
    } else {
        Duration::ZERO
    };
    println!("  {name}: {per_iter:?}/iter over {iterations} iters");
}

/// Timing harness passed to each benchmark closure.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the configured iterations.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        let start = wall_now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` with untimed fresh input from `setup` per iteration.
    pub fn iter_batched<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
        _size: BatchSize,
    ) {
        let mut total = Duration::ZERO;
        for _ in 0..self.iterations {
            let input = setup();
            let start = wall_now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// Collects benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        g.bench_function("add", |b| b.iter(|| black_box(1 + 1)));
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }

    criterion_group!(benches, sample);

    #[test]
    fn group_runs() {
        benches();
    }
}
