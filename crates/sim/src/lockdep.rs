//! Runtime lock-order verification (lockdep).
//!
//! Every in-process lock is an [`OrderedMutex`] or [`OrderedRwLock`]
//! carrying a *rank* from the hierarchy declared in `lint-allow.toml`
//! (`[locks] order`, outermost first). `aurora-lint` checks nesting
//! statically; this module is the runtime half: in debug builds each
//! acquisition records an edge `held → acquired` in a global graph and
//! panics *before* closing a cycle, so an inverted order trips the very
//! first time it executes — even when the two halves of the inversion
//! run on different threads and never actually deadlock in the test.
//!
//! Release builds compile the wrappers down to plain `std::sync` locks
//! with no tracking.
//!
//! This is the only module allowed to name `std::sync::Mutex` /
//! `RwLock` directly; everywhere else `aurora-lint` rejects raw locks
//! (`raw-lock` check) so new locks must come through here and carry a
//! rank.

use std::ops::{Deref, DerefMut};
use std::sync::{Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Ranks for the declared hierarchy, outermost first. These mirror the
/// index of each name in `lint-allow.toml [locks] order`; `aurora-lint`
/// cross-checks the static nesting against the same table.
/// Rank of the fleet scheduler's barrier/commit-lock registry. Held
/// only long enough to look up (or mint) a group's barrier or a
/// store's commit lock, never across a capture or a flush — but the
/// lookup happens before the per-group barrier is taken, so it must
/// rank outermost.
pub const RANK_FLEET_REGISTRY: u32 = 0;
/// Rank of the fleet scheduler's per-tenant health table (fault
/// domains: health state, failure counters, re-admission probes). The
/// admission gate consults it *before* a cycle takes its group
/// barrier, and cycle verdicts are recorded after the barrier is
/// released, so it ranks between the registry and the barriers and is
/// never held across a capture or flush.
pub const RANK_TENANT_HEALTH: u32 = 1;
/// Rank of a per-group checkpoint barrier. One instance exists per
/// `GroupId`; it covers only the stop-the-group capture and the
/// group's own flush/restore bookkeeping, so cycles of *different*
/// groups pipeline instead of serializing on a global lock. All
/// instances share this rank (same-rank acquisitions are sibling
/// instances, never re-entry on one lock).
pub const RANK_GROUP_BARRIER: u32 = 2;
/// Rank of a per-store commit lock. Taken inside a group barrier for
/// the duration of one typestate commit, so a store shared by several
/// groups still sees exactly one `seal → barrier → flip` sequence at a
/// time even when their cycles overlap.
pub const RANK_STORE_COMMIT: u32 = 3;
/// Rank of the persistence-group table.
pub const RANK_GROUP_TABLE: u32 = 4;
/// Rank of the parallel flush pipeline's shard-result collector. The
/// driving thread holds its group's `group_barrier` while it gathers
/// hashed shards, so this must rank inside the barrier; workers take
/// it with nothing else held.
pub const RANK_FLUSH_SHARD: u32 = 5;
/// Rank of the parallel restore pipeline's shard-result collector.
/// Mirrors `flush_shard`: the driving thread serializes batched
/// restores on the target group's `group_barrier`, workers take this
/// with nothing held.
pub const RANK_RESTORE_SHARD: u32 = 6;
/// Rank of per-store metadata.
pub const RANK_STORE_META: u32 = 7;
/// Rank of the object store's shared page cache. The restore read
/// pipeline takes it while the barrier is held; nothing below it but
/// the device queue and metrics may nest inside.
pub const RANK_PAGE_CACHE: u32 = 8;
/// Rank of the journal append buffer.
pub const RANK_JOURNAL_BUF: u32 = 9;
/// Rank of a device submission queue.
pub const RANK_DEV_QUEUE: u32 = 10;
/// Rank of the global metrics registry (innermost: any path may record
/// counters while holding anything else).
pub const RANK_METRICS: u32 = 11;

/// A mutex that participates in lock-order verification.
pub struct OrderedMutex<T> {
    rank: u32,
    name: &'static str,
    inner: Mutex<T>,
}

impl<T> OrderedMutex<T> {
    /// Creates a new ordered mutex with the given hierarchy rank.
    pub const fn new(rank: u32, name: &'static str, value: T) -> Self {
        OrderedMutex { rank, name, inner: Mutex::new(value) }
    }

    /// This lock's hierarchy rank.
    pub fn rank(&self) -> u32 {
        self.rank
    }

    /// This lock's hierarchy name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Acquires the lock, verifying order against every lock currently
    /// held by this thread (debug builds only).
    ///
    /// A poisoned mutex is recovered rather than propagated: lockdep
    /// panics *instead of* deadlocking, and the state under these locks
    /// (counters, a unit barrier) stays coherent across an unwind.
    pub fn lock(&self) -> OrderedMutexGuard<'_, T> {
        let token = tracking::acquire(self.rank, self.name);
        let guard = match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        OrderedMutexGuard { guard, _token: token }
    }

    /// Exclusive access through `&mut self`: no locking, no hierarchy
    /// slot — the borrow checker already proves no other holder exists.
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T> std::fmt::Debug for OrderedMutex<T> {
    /// Name and rank only: printing never acquires the lock, so a
    /// `Debug` dump can never deadlock or perturb the edge graph.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OrderedMutex")
            .field("rank", &self.rank)
            .field("name", &self.name)
            .finish_non_exhaustive()
    }
}

/// Guard for [`OrderedMutex`]; releases the hierarchy slot on drop.
pub struct OrderedMutexGuard<'a, T> {
    guard: MutexGuard<'a, T>,
    _token: tracking::HeldToken,
}

impl<T> Deref for OrderedMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T> DerefMut for OrderedMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

/// An rwlock that participates in lock-order verification. Readers and
/// writers occupy the same hierarchy slot: lock order is about *where*
/// in the descent a lock sits, not the access mode.
pub struct OrderedRwLock<T> {
    rank: u32,
    name: &'static str,
    inner: RwLock<T>,
}

impl<T> OrderedRwLock<T> {
    /// Creates a new ordered rwlock with the given hierarchy rank.
    pub const fn new(rank: u32, name: &'static str, value: T) -> Self {
        OrderedRwLock { rank, name, inner: RwLock::new(value) }
    }

    /// This lock's hierarchy rank.
    pub fn rank(&self) -> u32 {
        self.rank
    }

    /// This lock's hierarchy name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Acquires shared access, verifying lock order.
    pub fn read(&self) -> OrderedReadGuard<'_, T> {
        let token = tracking::acquire(self.rank, self.name);
        let guard = match self.inner.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        OrderedReadGuard { guard, _token: token }
    }

    /// Acquires exclusive access, verifying lock order.
    pub fn write(&self) -> OrderedWriteGuard<'_, T> {
        let token = tracking::acquire(self.rank, self.name);
        let guard = match self.inner.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        OrderedWriteGuard { guard, _token: token }
    }
}

/// Shared guard for [`OrderedRwLock`].
pub struct OrderedReadGuard<'a, T> {
    guard: RwLockReadGuard<'a, T>,
    _token: tracking::HeldToken,
}

impl<T> Deref for OrderedReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

/// Exclusive guard for [`OrderedRwLock`].
pub struct OrderedWriteGuard<'a, T> {
    guard: RwLockWriteGuard<'a, T>,
    _token: tracking::HeldToken,
}

impl<T> Deref for OrderedWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T> DerefMut for OrderedWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

#[cfg(debug_assertions)]
mod tracking {
    //! The debug-build edge graph.
    //!
    //! `HELD` is this thread's acquisition stack. `EDGES` is the global
    //! directed graph of observed `held → acquired` pairs, accumulated
    //! across all threads for the process lifetime. Acquiring `b` while
    //! holding `a` first asks whether `a` is already reachable *from*
    //! `b`; if so the new edge would close a cycle and we panic before
    //! inserting it, so the graph itself stays acyclic and later
    //! acquisitions keep getting accurate answers.

    use std::cell::RefCell;
    use std::collections::{HashMap, HashSet};
    use std::sync::Mutex;

    thread_local! {
        static HELD: RefCell<Vec<(u32, &'static str)>> = const { RefCell::new(Vec::new()) };
    }

    static EDGES: Mutex<Option<HashMap<u32, HashSet<u32>>>> = Mutex::new(None);

    /// Is `to` reachable from `from` by following recorded edges?
    fn reachable(edges: &HashMap<u32, HashSet<u32>>, from: u32, to: u32) -> bool {
        let mut stack = vec![from];
        let mut seen = HashSet::new();
        while let Some(n) = stack.pop() {
            if n == to {
                return true;
            }
            if !seen.insert(n) {
                continue;
            }
            if let Some(next) = edges.get(&n) {
                stack.extend(next.iter().copied());
            }
        }
        false
    }

    /// Records the acquisition of `(rank, name)`, panicking if any edge
    /// it implies would close a cycle in the global graph.
    pub fn acquire(rank: u32, name: &'static str) -> HeldToken {
        HELD.with(|held| {
            let held = held.borrow();
            if held.is_empty() {
                return;
            }
            let mut edges = match EDGES.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            let edges = edges.get_or_insert_with(HashMap::new);
            for &(h_rank, h_name) in held.iter() {
                if h_rank == rank {
                    continue;
                }
                if reachable(edges, rank, h_rank) {
                    panic!(
                        "lock order violation: acquiring `{name}` (rank {rank}) while \
                         holding `{h_name}` (rank {h_rank}), but `{name}` → `{h_name}` \
                         is already an established order"
                    );
                }
                edges.entry(h_rank).or_default().insert(rank);
            }
        });
        HELD.with(|held| held.borrow_mut().push((rank, name)));
        HeldToken { rank }
    }

    /// Marks one slot on the thread's held stack; popping on drop keeps
    /// the stack accurate across early returns and unwinds.
    pub struct HeldToken {
        rank: u32,
    }

    impl Drop for HeldToken {
        fn drop(&mut self) {
            HELD.with(|held| {
                let mut held = held.borrow_mut();
                if let Some(pos) = held.iter().rposition(|&(r, _)| r == self.rank) {
                    held.remove(pos);
                }
            });
        }
    }
}

#[cfg(not(debug_assertions))]
mod tracking {
    //! Release builds: no tracking, zero overhead.

    pub fn acquire(_rank: u32, _name: &'static str) -> HeldToken {
        HeldToken
    }

    pub struct HeldToken;
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    // Test locks use ranks far above the real hierarchy so the edges
    // they record never interact with production ranks (the edge graph
    // is global for the process, shared across tests).

    #[test]
    fn in_order_nesting_is_clean() {
        static A: OrderedMutex<u32> = OrderedMutex::new(200, "test_a", 0);
        static B: OrderedMutex<u32> = OrderedMutex::new(201, "test_b", 0);
        let mut ga = A.lock();
        let mut gb = B.lock();
        *ga += 1;
        *gb += 1;
    }

    #[test]
    fn inverted_order_panics() {
        static A: OrderedMutex<()> = OrderedMutex::new(210, "inv_a", ());
        static B: OrderedMutex<()> = OrderedMutex::new(211, "inv_b", ());
        // Establish A → B.
        {
            let _ga = A.lock();
            let _gb = B.lock();
        }
        // B → A would close the cycle.
        let result = catch_unwind(AssertUnwindSafe(|| {
            let _gb = B.lock();
            let _ga = A.lock();
        }));
        let err = result.expect_err("inverted acquisition must panic");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("lock order violation"), "unexpected panic: {msg}");
        // The offending edge was never inserted: the original order
        // still works.
        let _ga = A.lock();
        let _gb = B.lock();
    }

    #[test]
    fn rwlock_modes_share_a_slot() {
        static R: OrderedRwLock<u32> = OrderedRwLock::new(220, "test_rw", 7);
        static M: OrderedMutex<()> = OrderedMutex::new(221, "test_rw_inner", ());
        {
            let g = R.read();
            let _m = M.lock();
            assert_eq!(*g, 7);
        }
        {
            let mut g = R.write();
            *g += 1;
        }
        assert_eq!(*R.read(), 8);
    }

    #[test]
    fn guard_drop_releases_slot_on_unwind() {
        static A: OrderedMutex<()> = OrderedMutex::new(230, "unwind_a", ());
        let _ = catch_unwind(AssertUnwindSafe(|| {
            let _ga = A.lock();
            panic!("boom");
        }));
        // The held stack popped during the unwind; re-acquisition from
        // this thread is clean (and the poisoned mutex is recovered).
        let _ga = A.lock();
    }

    #[test]
    fn real_hierarchy_registers_cleanly() {
        // The production descent: registry outermost, then a group
        // barrier, a store commit lock, metrics innermost.
        static REGISTRY: OrderedMutex<()> =
            OrderedMutex::new(RANK_FLEET_REGISTRY, "fleet_registry", ());
        static BARRIER: OrderedMutex<()> =
            OrderedMutex::new(RANK_GROUP_BARRIER, "group_barrier", ());
        static COMMIT: OrderedMutex<()> =
            OrderedMutex::new(RANK_STORE_COMMIT, "store_commit", ());
        static METRICS: OrderedMutex<u64> = OrderedMutex::new(RANK_METRICS, "metrics", 0);
        {
            let _r = REGISTRY.lock();
        }
        let _b = BARRIER.lock();
        let _c = COMMIT.lock();
        let mut m = METRICS.lock();
        *m += 1;
        assert_eq!(REGISTRY.rank(), 0);
        assert_eq!(BARRIER.rank(), 2);
        assert_eq!(COMMIT.rank(), 3);
        assert_eq!(METRICS.name(), "metrics");
    }

    #[test]
    fn sibling_instances_share_a_rank_cleanly() {
        // Two distinct per-group barriers carry the same rank; holding
        // one while a *different* group's cycle runs must not trip the
        // checker (same-rank pairs record no edge).
        static GA: OrderedMutex<()> = OrderedMutex::new(RANK_GROUP_BARRIER, "group_barrier", ());
        static GB: OrderedMutex<()> = OrderedMutex::new(RANK_GROUP_BARRIER, "group_barrier", ());
        let _a = GA.lock();
        let _b = GB.lock();
    }
}
