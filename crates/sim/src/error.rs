//! The common error type shared by every Aurora crate.
//!
//! The simulated kernel follows the errno discipline of a real kernel:
//! operations return `Result<T, Error>` and the error carries both a
//! POSIX-flavoured kind and a human-readable context string.

use core::fmt;

/// Result alias used across the workspace.
pub type Result<T, E = Error> = core::result::Result<T, E>;

/// Error kinds, a blend of errno values and simulator-specific failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorKind {
    /// No such object/process/file (ENOENT / ESRCH).
    NotFound,
    /// Object already exists (EEXIST).
    AlreadyExists,
    /// Invalid argument (EINVAL).
    InvalidArgument,
    /// Bad file descriptor (EBADF).
    BadDescriptor,
    /// Operation not permitted (EPERM).
    NotPermitted,
    /// Out of memory or address space (ENOMEM).
    NoMemory,
    /// Device or store out of space (ENOSPC).
    NoSpace,
    /// Access fault (EFAULT) — bad simulated address.
    Fault,
    /// Would block (EAGAIN) — empty pipe, full buffer.
    WouldBlock,
    /// Broken pipe / reset connection (EPIPE / ECONNRESET).
    BrokenPipe,
    /// Not connected / not bound (ENOTCONN).
    NotConnected,
    /// Directory not empty (ENOTEMPTY).
    NotEmpty,
    /// Is a directory (EISDIR).
    IsDirectory,
    /// Not a directory (ENOTDIR).
    NotDirectory,
    /// Cross-device operation (EXDEV).
    CrossDevice,
    /// I/O error from a device (EIO).
    Io,
    /// Device is powered off or failed.
    DeviceDead,
    /// Data failed checksum verification.
    Corrupt,
    /// Checkpoint/restore format problem.
    BadImage,
    /// Feature intentionally unsupported by the simulator.
    Unsupported,
    /// Internal invariant violated (a simulator bug).
    Internal,
}

impl ErrorKind {
    /// Short lowercase name, errno-style.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorKind::NotFound => "not found",
            ErrorKind::AlreadyExists => "already exists",
            ErrorKind::InvalidArgument => "invalid argument",
            ErrorKind::BadDescriptor => "bad descriptor",
            ErrorKind::NotPermitted => "not permitted",
            ErrorKind::NoMemory => "out of memory",
            ErrorKind::NoSpace => "out of space",
            ErrorKind::Fault => "bad address",
            ErrorKind::WouldBlock => "would block",
            ErrorKind::BrokenPipe => "broken pipe",
            ErrorKind::NotConnected => "not connected",
            ErrorKind::NotEmpty => "directory not empty",
            ErrorKind::IsDirectory => "is a directory",
            ErrorKind::NotDirectory => "not a directory",
            ErrorKind::CrossDevice => "cross-device operation",
            ErrorKind::Io => "i/o error",
            ErrorKind::DeviceDead => "device dead",
            ErrorKind::Corrupt => "corrupt data",
            ErrorKind::BadImage => "bad checkpoint image",
            ErrorKind::Unsupported => "unsupported",
            ErrorKind::Internal => "internal error",
        }
    }
}

/// An error with kind and context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    kind: ErrorKind,
    context: String,
}

impl Error {
    /// Creates an error with context.
    pub fn new(kind: ErrorKind, context: impl Into<String>) -> Self {
        Error {
            kind,
            context: context.into(),
        }
    }

    /// The error kind.
    pub fn kind(&self) -> ErrorKind {
        self.kind
    }

    /// The context message.
    pub fn context(&self) -> &str {
        &self.context
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.context.is_empty() {
            write!(f, "{}", self.kind.as_str())
        } else {
            write!(f, "{}: {}", self.kind.as_str(), self.context)
        }
    }
}

impl std::error::Error for Error {}

impl From<ErrorKind> for Error {
    fn from(kind: ErrorKind) -> Self {
        Error {
            kind,
            context: String::new(),
        }
    }
}

/// Shorthand constructors, used pervasively in the kernel code.
macro_rules! ctor {
    ($($fn_name:ident => $kind:ident),* $(,)?) => {
        impl Error {
            $(
                #[doc = concat!("Creates an `ErrorKind::", stringify!($kind), "` error.")]
                pub fn $fn_name(context: impl Into<String>) -> Error {
                    Error::new(ErrorKind::$kind, context)
                }
            )*
        }
    };
}

ctor! {
    not_found => NotFound,
    already_exists => AlreadyExists,
    invalid => InvalidArgument,
    bad_fd => BadDescriptor,
    not_permitted => NotPermitted,
    no_memory => NoMemory,
    no_space => NoSpace,
    fault => Fault,
    would_block => WouldBlock,
    broken_pipe => BrokenPipe,
    not_connected => NotConnected,
    io => Io,
    device_dead => DeviceDead,
    corrupt => Corrupt,
    bad_image => BadImage,
    unsupported => Unsupported,
    internal => Internal,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_context() {
        let e = Error::not_found("pid 42");
        assert_eq!(e.kind(), ErrorKind::NotFound);
        assert_eq!(e.to_string(), "not found: pid 42");
        let bare: Error = ErrorKind::Io.into();
        assert_eq!(bare.to_string(), "i/o error");
    }
}
