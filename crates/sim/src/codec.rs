//! Versioned binary wire format.
//!
//! Every serialized artifact in the system — checkpoint metadata records,
//! the object-store metadata journal, SLSFS directories, `sls send`
//! streams — is written with this codec. It is deliberately simple:
//! little-endian fixed-width integers, LEB128 varints for counts, and
//! length-prefixed byte strings, wrapped in tagged+versioned records so
//! that old images stay readable as the format evolves (the paper stresses
//! that checkpoints are self-contained and portable across machines).

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::error::{Error, Result};
use crate::hash::crc32c;

/// Encoder over a growable byte buffer.
///
/// # Examples
///
/// ```
/// use aurora_sim::{Encoder, Decoder};
///
/// let mut e = Encoder::new();
/// e.str("aurora");
/// e.varint(4096);
/// let bytes = e.finish();
///
/// let mut d = Decoder::new(&bytes);
/// assert_eq!(d.str().unwrap(), "aurora");
/// assert_eq!(d.varint().unwrap(), 4096);
/// ```
#[derive(Debug, Default)]
pub struct Encoder {
    buf: BytesMut,
}

impl Encoder {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Encoder {
            buf: BytesMut::new(),
        }
    }

    /// Creates an encoder with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Encoder {
            buf: BytesMut::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Finishes encoding and returns the bytes.
    pub fn finish(self) -> Bytes {
        self.buf.freeze()
    }

    /// Finishes encoding and returns a plain vector.
    pub fn into_vec(self) -> Vec<u8> {
        self.buf.to_vec()
    }

    /// Writes a single byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.put_u8(v);
    }

    /// Writes a bool as one byte.
    pub fn bool(&mut self, v: bool) {
        self.buf.put_u8(v as u8);
    }

    /// Writes a little-endian u16.
    pub fn u16(&mut self, v: u16) {
        self.buf.put_u16_le(v);
    }

    /// Writes a little-endian u32.
    pub fn u32(&mut self, v: u32) {
        self.buf.put_u32_le(v);
    }

    /// Writes a little-endian u64.
    pub fn u64(&mut self, v: u64) {
        self.buf.put_u64_le(v);
    }

    /// Writes a little-endian i64.
    pub fn i64(&mut self, v: i64) {
        self.buf.put_i64_le(v);
    }

    /// Writes an LEB128 varint.
    pub fn varint(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7F) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.put_u8(byte);
                return;
            }
            self.buf.put_u8(byte | 0x80);
        }
    }

    /// Writes a length-prefixed byte string.
    pub fn bytes(&mut self, v: &[u8]) {
        self.varint(v.len() as u64);
        self.buf.put_slice(v);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }

    /// Writes raw bytes with no length prefix.
    pub fn raw(&mut self, v: &[u8]) {
        self.buf.put_slice(v);
    }

    /// Writes an `Option` as a presence byte plus payload.
    pub fn option<T>(&mut self, v: Option<&T>, f: impl FnOnce(&mut Self, &T)) {
        match v {
            Some(inner) => {
                self.bool(true);
                f(self, inner);
            }
            None => self.bool(false),
        }
    }

    /// Writes a sequence as a varint count plus elements.
    pub fn seq<T>(&mut self, items: &[T], mut f: impl FnMut(&mut Self, &T)) {
        self.varint(items.len() as u64);
        for item in items {
            f(self, item);
        }
    }

    /// Writes a tagged, versioned, CRC-protected record.
    ///
    /// Layout: `tag:u16 version:u16 len:u32 payload crc32c(payload):u32`.
    /// This is the framing used for every on-disk record; recovery walks
    /// records and stops at the first CRC mismatch (a torn tail).
    pub fn record(&mut self, tag: u16, version: u16, payload: &[u8]) {
        self.u16(tag);
        self.u16(version);
        self.u32(payload.len() as u32);
        self.raw(payload);
        self.u32(crc32c(payload));
    }
}

/// Decoder over a byte slice.
#[derive(Debug)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

/// A decoded record header (see [`Encoder::record`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record<'a> {
    /// Record type tag.
    pub tag: u16,
    /// Format version of this record.
    pub version: u16,
    /// Payload bytes (CRC already verified).
    pub payload: &'a [u8],
}

impl<'a> Decoder<'a> {
    /// Creates a decoder over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Decoder { buf, pos: 0 }
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True if fully consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Current read offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(Error::corrupt(format!(
                "short read: wanted {n} bytes, have {}",
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a bool; any nonzero byte other than 1 is corruption.
    pub fn bool(&mut self) -> Result<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(Error::corrupt(format!("bad bool byte {b:#x}"))),
        }
    }

    /// Reads a little-endian u16.
    pub fn u16(&mut self) -> Result<u16> {
        let mut s = self.take(2)?;
        Ok(s.get_u16_le())
    }

    /// Reads a little-endian u32.
    pub fn u32(&mut self) -> Result<u32> {
        let mut s = self.take(4)?;
        Ok(s.get_u32_le())
    }

    /// Reads a little-endian u64.
    pub fn u64(&mut self) -> Result<u64> {
        let mut s = self.take(8)?;
        Ok(s.get_u64_le())
    }

    /// Reads a little-endian i64.
    pub fn i64(&mut self) -> Result<i64> {
        let mut s = self.take(8)?;
        Ok(s.get_i64_le())
    }

    /// Reads an LEB128 varint.
    pub fn varint(&mut self) -> Result<u64> {
        let mut v: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.u8()?;
            if shift >= 64 {
                return Err(Error::corrupt("varint overflow"));
            }
            v |= ((byte & 0x7F) as u64) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    /// Reads a length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<&'a [u8]> {
        let len = self.varint()? as usize;
        self.take(len)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<&'a str> {
        let raw = self.bytes()?;
        core::str::from_utf8(raw).map_err(|_| Error::corrupt("invalid utf-8 string"))
    }

    /// Reads `n` raw bytes.
    pub fn raw(&mut self, n: usize) -> Result<&'a [u8]> {
        self.take(n)
    }

    /// Reads an `Option`.
    pub fn option<T>(&mut self, f: impl FnOnce(&mut Self) -> Result<T>) -> Result<Option<T>> {
        if self.bool()? {
            Ok(Some(f(self)?))
        } else {
            Ok(None)
        }
    }

    /// Reads a sequence written by [`Encoder::seq`].
    pub fn seq<T>(&mut self, mut f: impl FnMut(&mut Self) -> Result<T>) -> Result<Vec<T>> {
        let n = self.varint()? as usize;
        // Guard against absurd counts from corrupt data before allocating.
        if n > self.remaining() {
            return Err(Error::corrupt(format!(
                "sequence count {n} exceeds remaining {} bytes",
                self.remaining()
            )));
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(f(self)?);
        }
        Ok(out)
    }

    /// Reads and CRC-verifies a record written by [`Encoder::record`].
    pub fn record(&mut self) -> Result<Record<'a>> {
        let tag = self.u16()?;
        let version = self.u16()?;
        let len = self.u32()? as usize;
        let payload = self.take(len)?;
        let crc = self.u32()?;
        if crc != crc32c(payload) {
            return Err(Error::corrupt(format!("record tag {tag} failed CRC")));
        }
        Ok(Record {
            tag,
            version,
            payload,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        let mut e = Encoder::new();
        e.u8(0xAB);
        e.bool(true);
        e.u16(0x1234);
        e.u32(0xDEADBEEF);
        e.u64(u64::MAX - 5);
        e.i64(-42);
        let bytes = e.finish();
        let mut d = Decoder::new(&bytes);
        assert_eq!(d.u8().unwrap(), 0xAB);
        assert!(d.bool().unwrap());
        assert_eq!(d.u16().unwrap(), 0x1234);
        assert_eq!(d.u32().unwrap(), 0xDEADBEEF);
        assert_eq!(d.u64().unwrap(), u64::MAX - 5);
        assert_eq!(d.i64().unwrap(), -42);
        assert!(d.is_empty());
    }

    #[test]
    fn varint_boundaries() {
        for v in [0u64, 1, 127, 128, 16383, 16384, u32::MAX as u64, u64::MAX] {
            let mut e = Encoder::new();
            e.varint(v);
            let b = e.finish();
            assert_eq!(Decoder::new(&b).varint().unwrap(), v, "value {v}");
        }
    }

    #[test]
    fn strings_and_options() {
        let mut e = Encoder::new();
        e.str("hello");
        e.option(Some(&7u64), |e, v| e.u64(*v));
        e.option::<u64>(None, |e, v| e.u64(*v));
        e.seq(&[1u32, 2, 3], |e, v| e.u32(*v));
        let b = e.finish();
        let mut d = Decoder::new(&b);
        assert_eq!(d.str().unwrap(), "hello");
        assert_eq!(d.option(|d| d.u64()).unwrap(), Some(7));
        assert_eq!(d.option(|d| d.u64()).unwrap(), None);
        assert_eq!(d.seq(|d| d.u32()).unwrap(), vec![1, 2, 3]);
    }

    #[test]
    fn record_crc_detects_corruption() {
        let mut e = Encoder::new();
        e.record(3, 1, b"payload-bytes");
        let mut b = e.into_vec();
        // Clean decode first.
        let rec = Decoder::new(&b).record().unwrap();
        assert_eq!(rec.tag, 3);
        assert_eq!(rec.version, 1);
        assert_eq!(rec.payload, b"payload-bytes");
        // Flip a payload bit: CRC must fail.
        b[9] ^= 0x40;
        assert!(Decoder::new(&b).record().is_err());
    }

    #[test]
    fn truncated_input_is_an_error_not_a_panic() {
        let mut e = Encoder::new();
        e.u64(9);
        let b = e.finish();
        let mut d = Decoder::new(&b[..4]);
        assert!(d.u64().is_err());
        // A lying sequence count must not cause a huge allocation.
        let mut e = Encoder::new();
        e.varint(u32::MAX as u64);
        let b = e.finish();
        assert!(Decoder::new(&b).seq(|d| d.u8()).is_err());
    }

    #[test]
    fn bad_bool_rejected() {
        assert!(Decoder::new(&[2]).bool().is_err());
    }
}
