//! Deterministic pseudo-random number generators.
//!
//! Implemented from scratch (SplitMix64 for seeding, Xoshiro256++ for the
//! stream) so simulation results are stable regardless of external crate
//! versions. These generators drive workload key choices, fault-injection
//! points and page-content seeds; determinism here is what makes every
//! experiment in `EXPERIMENTS.md` exactly reproducible.

/// SplitMix64 step: turns any 64-bit state into a well-mixed output.
///
/// Used both as a standalone mixer (page-content seeds) and to expand a
/// user seed into Xoshiro256++ state.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Mixes a single value (stateless convenience wrapper over SplitMix64).
pub fn mix64(v: u64) -> u64 {
    let mut s = v;
    splitmix64(&mut s)
}

/// Xoshiro256++ PRNG.
#[derive(Debug, Clone)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Creates a generator from a 64-bit seed (expanded via SplitMix64).
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Xoshiro256 { s }
    }

    /// Returns the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns a uniform value in `[0, bound)` using Lemire's method.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Widening multiply rejection sampling (Lemire 2019).
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut l = m as u64;
        if l < bound {
            let t = bound.wrapping_neg() % bound;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fills `buf` with pseudo-random bytes.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Xoshiro256::seed_from(1234);
        let mut b = Xoshiro256::seed_from(1234);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Xoshiro256::seed_from(1);
        let mut b = Xoshiro256::seed_from(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn next_below_respects_bound() {
        let mut r = Xoshiro256::seed_from(99);
        for bound in [1u64, 2, 3, 7, 100, 1 << 40] {
            for _ in 0..200 {
                assert!(r.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn next_below_covers_small_range() {
        let mut r = Xoshiro256::seed_from(5);
        let mut seen = [false; 8];
        for _ in 0..500 {
            seen[r.next_below(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Xoshiro256::seed_from(7);
        for _ in 0..1000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn fill_bytes_partial_chunks() {
        let mut r = Xoshiro256::seed_from(11);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn mix64_is_stateless() {
        assert_eq!(mix64(42), mix64(42));
        assert_ne!(mix64(42), mix64(43));
    }
}
