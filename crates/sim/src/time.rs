//! Virtual-time instants and durations.
//!
//! All simulation time is kept in nanoseconds inside a `u64`, which covers
//! ~584 years of virtual time — far beyond any experiment here. Separate
//! newtypes for instants and durations keep the arithmetic honest: you can
//! subtract two instants to get a duration, but adding two instants does
//! not compile.

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the virtual timeline, in nanoseconds since simulation boot.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (boot).
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from raw nanoseconds since boot.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Returns the raw nanoseconds since boot.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the duration elapsed since `earlier`.
    ///
    /// Saturates to zero if `earlier` is in the future, which makes it safe
    /// to use with out-of-order completion records.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Returns the later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a duration from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole microseconds (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Fractional microseconds, e.g. `267.9`.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Duration needed to move `bytes` at `bytes_per_sec` throughput.
    ///
    /// Rounds up so that transfers always take at least one nanosecond per
    /// non-empty payload; a zero-byte transfer is free.
    pub fn for_bytes(bytes: u64, bytes_per_sec: u64) -> SimDuration {
        if bytes == 0 {
            return SimDuration::ZERO;
        }
        debug_assert!(bytes_per_sec > 0, "throughput model must be positive");
        let ns = (bytes as u128 * 1_000_000_000u128).div_ceil(bytes_per_sec as u128);
        SimDuration(ns.min(u64::MAX as u128) as u64)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T+{}", SimDuration(self.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T+{}", SimDuration(self.0))
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if ns >= 1_000 {
            write!(f, "{:.1}us", self.as_micros_f64())
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrips() {
        let t = SimTime::from_nanos(1_000);
        let d = SimDuration::from_micros(2);
        assert_eq!((t + d).as_nanos(), 3_000);
        assert_eq!((t + d) - t, d);
        assert_eq!(t.since(t + d), SimDuration::ZERO);
    }

    #[test]
    fn for_bytes_rounds_up() {
        // 1 byte at 1 GB/s is 1ns (exactly); 1 byte at 3 GB/s rounds up to 1ns.
        assert_eq!(SimDuration::for_bytes(1, 1_000_000_000).as_nanos(), 1);
        assert_eq!(SimDuration::for_bytes(1, 3_000_000_000).as_nanos(), 1);
        assert_eq!(SimDuration::for_bytes(0, 1).as_nanos(), 0);
        // 2 GiB at 2 GB/s is ~1.07s.
        let d = SimDuration::for_bytes(2 << 30, 2_000_000_000);
        assert!(d.as_secs_f64() > 1.0 && d.as_secs_f64() < 1.1);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", SimDuration::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", SimDuration::from_micros(12)), "12.0us");
        assert_eq!(format!("{}", SimDuration::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(12)), "12.000s");
    }

    #[test]
    fn saturating_behaviour() {
        let a = SimTime::from_nanos(10);
        let b = SimTime::from_nanos(20);
        assert_eq!(a - b, SimDuration::ZERO);
        assert_eq!(
            SimDuration::from_nanos(5).saturating_sub(SimDuration::from_nanos(7)),
            SimDuration::ZERO
        );
    }
}
