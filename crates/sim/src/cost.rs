//! Calibrated cost-model constants.
//!
//! These constants map the work the simulated kernel does onto virtual
//! time. They are calibrated against the hardware in the paper's §5
//! evaluation (dual Xeon Silver 4116, Intel Optane 900P NVMe, Intel X722
//! 10 GbE) so that the reproduced tables land in the same regime as the
//! published numbers. See `DESIGN.md` §5 for the calibration rationale and
//! `EXPERIMENTS.md` for the paper-vs-measured comparison.
//!
//! Everything here is a plain constant on purpose: the whole simulation is
//! deterministic, and keeping the model in one file makes the calibration
//! auditable.

use crate::time::SimDuration;

/// Base-2 logarithm of the page size.
pub const PAGE_SHIFT: u32 = 12;
/// Page size in bytes (4 KiB, matching amd64 FreeBSD).
pub const PAGE_SIZE: usize = 1 << PAGE_SHIFT;

/// Cost of one page-table manipulation: arming copy-on-write protection on
/// one PTE, including the eventual TLB shootdown amortized over a batch.
///
/// Calibration: the paper measures 5145.9 µs of "lazy data copy" to arm a
/// 2 GiB (524 288 page) working set, i.e. ≈9.8 ns/page.
pub const PTE_COW_ARM_NS: u64 = 10;

/// Cost of copying one PTE when duplicating an address-space map entry.
pub const PTE_COPY_NS: u64 = 6;

/// Cost of servicing one copy-on-write fault (trap entry/exit, page
/// allocation bookkeeping), excluding the 4 KiB data copy itself.
pub const COW_FAULT_NS: u64 = 1_800;

/// Cost of copying one 4 KiB page between frames (≈12 GB/s memcpy).
pub const PAGE_COPY_NS: u64 = 340;

/// Cost of zero-filling one 4 KiB page.
pub const PAGE_ZERO_NS: u64 = 250;

/// Trap + fault-handler overhead of a soft (minor) page fault.
pub const MINOR_FAULT_NS: u64 = 900;

/// Kernel bookkeeping to stop one process at the serialization barrier
/// (IPI, scheduler dequeue) and to resume it afterwards.
pub const PROC_STOP_NS: u64 = 4_200;
pub const PROC_RESUME_NS: u64 = 2_600;

/// Fixed cost of serializing one kernel object's metadata record
/// (locking, table walk, header emission).
pub const META_OBJ_BASE_NS: u64 = 2_300;

/// Per-byte cost of serializing metadata into checkpoint buffers.
pub const META_BYTE_NS_PER_64: u64 = 10; // 10ns per 64 bytes ≈ 6.4 GB/s

/// Fixed cost of re-creating one kernel object at restore time (allocation,
/// table insertion, identifier wiring).
pub const RESTORE_OBJ_BASE_NS: u64 = 1_000;

/// Fixed per-restore cost: orchestrator setup, address-space shell and
/// container plumbing, independent of the number of objects. Calibrated
/// against Table 4's near-equal metadata times for very differently
/// sized applications.
pub const RESTORE_GROUP_FIXED_NS: u64 = 220_000;

/// Restores whose metadata came from a high-latency backend read have
/// part of their parsing already done ("reading in the checkpoint
/// implicitly restores some application state"); their phase charges are
/// scaled by this percentage.
pub const RESTORE_DISK_DISCOUNT_PCT: u64 = 86;

/// Per-byte cost of parsing metadata at restore time.
pub const RESTORE_BYTE_NS_PER_64: u64 = 12;

/// Cost of instantiating one address-space map entry on restore
/// (vm_map_entry allocation + object wiring), before any pages are copied.
pub const RESTORE_MAP_ENTRY_NS: u64 = 6_800;

/// Cost of re-creating one VM object shell at restore (allocation,
/// pager binding). Pages are not copied — they are shared COW with the
/// image or faulted lazily.
pub const RESTORE_VMO_NS: u64 = 1_400;

/// Cost of re-wiring one resident page into a restored object under COW
/// (no data copy — the paper notes "No memory is copied").
pub const RESTORE_PAGE_WIRE_NS: u64 = 7;

/// Cost of one syscall entry/exit pair in the simulated kernel.
pub const SYSCALL_NS: u64 = 280;

/// Cost of one scheduler context switch.
pub const CTXSW_NS: u64 = 1_100;

/// Per-64-byte cost of moving payload through kernel buffers
/// (pipe/socket copyin+copyout).
pub const IPC_BYTE_NS_PER_64: u64 = 14;

/// Per-core FNV-1a content-hash bandwidth (bytes/sec). One-byte-at-a-time
/// FNV is serialized on its multiply dependency chain (~4 cycles/byte),
/// which lands near 0.7 GB/s on the paper's Xeon Silver 4116 — confirmed
/// by `bench_checkpoint --hash-micro`, which times the real `hash_plan`
/// implementation (≈6 µs per 4 KiB page). Charged to the simulation
/// clock by the flush pipeline's hash stage, divided by worker count.
pub const HASH_BW_PER_CORE: u64 = 700_000_000;

/// Returns the modeled duration of content-hashing `pages` 4 KiB pages
/// spread across `workers` cores.
pub fn hash_stage(pages: u64, workers: u64) -> SimDuration {
    let bw = HASH_BW_PER_CORE * workers.max(1);
    SimDuration::for_bytes(pages * PAGE_SIZE as u64, bw)
}

/// Cost of serving one 4 KiB restore read out of the shared page cache:
/// an index probe plus a reference-counted frame adoption, no device
/// access and no data copy.
pub const RESTORE_CACHE_HIT_NS: u64 = 400;

/// Read-cost model for extent-coalesced restore reads.
///
/// The serial page-in loop pays one full device access latency per 4 KiB
/// page; the batched read pipeline issues one vectored request per
/// extent, so the access latency amortizes over up to `EXTENT` blocks
/// while the payload still moves at the device's sequential read
/// bandwidth. The duration returned here is what the restore pipeline
/// charges the virtual clock for one extent read of `blocks` blocks on a
/// device with access latency `lat_ns` and read bandwidth `read_bw`.
pub fn extent_read(blocks: u64, lat_ns: u64, read_bw: u64) -> SimDuration {
    SimDuration::from_nanos(lat_ns)
        + SimDuration::for_bytes(blocks * PAGE_SIZE as u64, read_bw.max(1))
}

/// Returns the serialization cost for a metadata record of `bytes` bytes.
pub fn meta_serialize(bytes: usize) -> SimDuration {
    SimDuration::from_nanos(META_OBJ_BASE_NS + (bytes as u64).div_ceil(64) * META_BYTE_NS_PER_64)
}

/// Returns the deserialization/recreation cost for a metadata record.
pub fn meta_restore(bytes: usize) -> SimDuration {
    SimDuration::from_nanos(
        RESTORE_OBJ_BASE_NS + (bytes as u64).div_ceil(64) * RESTORE_BYTE_NS_PER_64,
    )
}

/// Returns the in-kernel copy cost for moving `bytes` through IPC buffers.
pub fn ipc_copy(bytes: usize) -> SimDuration {
    SimDuration::from_nanos((bytes as u64).div_ceil(64) * IPC_BYTE_NS_PER_64)
}

/// Device cost models, calibrated to the paper's testbed.
pub mod dev {
    /// Intel Optane 900P-class NVMe: ~10 µs access latency.
    pub const NVME_LAT_NS: u64 = 10_000;
    /// NVMe sequential write bandwidth (bytes/sec).
    pub const NVME_WRITE_BW: u64 = 2_200_000_000;
    /// NVMe sequential read bandwidth (bytes/sec).
    pub const NVME_READ_BW: u64 = 2_500_000_000;

    /// NVDIMM access latency.
    pub const NVDIMM_LAT_NS: u64 = 300;
    /// NVDIMM bandwidth.
    pub const NVDIMM_BW: u64 = 8_000_000_000;

    /// DRAM-backed ephemeral backend latency.
    pub const RAM_LAT_NS: u64 = 150;
    /// DRAM bandwidth for bulk copies.
    pub const RAM_BW: u64 = 20_000_000_000;

    /// 10 GbE one-way link latency (switch + NIC).
    pub const NET_LAT_NS: u64 = 25_000;
    /// 10 GbE usable bandwidth (bytes/sec).
    pub const NET_BW: u64 = 1_180_000_000;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_cow_arm_is_millisecond_scale_for_2gib() {
        // 2 GiB / 4 KiB = 524 288 pages; at 10ns/page that is ~5.2ms,
        // matching the regime of Table 3's full-checkpoint lazy data copy.
        let pages = (2u64 << 30) >> PAGE_SHIFT;
        let total = SimDuration::from_nanos(pages * PTE_COW_ARM_NS);
        assert!(total.as_millis_f64() > 4.0 && total.as_millis_f64() < 7.0);
    }

    #[test]
    fn meta_costs_monotonic() {
        assert!(meta_serialize(4096) > meta_serialize(64));
        assert!(meta_restore(4096) > meta_restore(64));
        assert!(ipc_copy(0).as_nanos() == 0);
    }
}
