//! Counters and latency histograms.
//!
//! The benchmark harness reports per-phase breakdowns (Tables 3–4) and
//! latency distributions (the frequency-sweep and KV-port experiments).
//! [`LogHistogram`] is a log-bucketed histogram in the HDR style: each
//! power-of-two range is split into 16 linear sub-buckets, giving ≤6.25%
//! relative error across the full `u64` range with a small fixed footprint.

use crate::time::SimDuration;

/// A monotonically increasing counter.
#[derive(Debug, Default, Clone, Copy)]
pub struct Counter(u64);

impl Counter {
    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Adds one.
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0
    }

    /// Resets to zero and returns the previous value.
    pub fn take(&mut self) -> u64 {
        core::mem::take(&mut self.0)
    }
}

const SUB_BUCKET_BITS: u32 = 4;
const SUB_BUCKETS: usize = 1 << SUB_BUCKET_BITS;
/// 64 power-of-two ranges × 16 sub-buckets.
const NUM_BUCKETS: usize = 64 * SUB_BUCKETS;

/// Log-bucketed histogram over `u64` samples (typically nanoseconds).
#[derive(Clone)]
pub struct LogHistogram {
    buckets: Box<[u64; NUM_BUCKETS]>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl core::fmt::Debug for LogHistogram {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("LogHistogram")
            .field("count", &self.count)
            .field("min", &self.min)
            .field("max", &self.max)
            .field("mean", &self.mean())
            .finish()
    }
}

impl LogHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            buckets: Box::new([0; NUM_BUCKETS]),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn bucket_index(v: u64) -> usize {
        if v < SUB_BUCKETS as u64 {
            return v as usize;
        }
        let msb = 63 - v.leading_zeros();
        let shift = msb - SUB_BUCKET_BITS;
        let sub = ((v >> shift) as usize) & (SUB_BUCKETS - 1);
        ((msb - SUB_BUCKET_BITS + 1) as usize) * SUB_BUCKETS + sub
    }

    fn bucket_low(idx: usize) -> u64 {
        let range = idx / SUB_BUCKETS;
        let sub = (idx % SUB_BUCKETS) as u64;
        if range == 0 {
            return sub;
        }
        let shift = (range - 1) as u32;
        ((SUB_BUCKETS as u64) << shift) | (sub << shift)
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.buckets[Self::bucket_index(v)] += 1;
        self.count += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Records a virtual duration in nanoseconds.
    pub fn record_duration(&mut self, d: SimDuration) {
        self.record(d.as_nanos());
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile `q` in `[0, 1]` (lower bucket bound).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return Self::bucket_low(idx);
            }
        }
        self.max
    }

    /// Median shorthand.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 99th percentile shorthand.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += *b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), 0);
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = LogHistogram::new();
        for v in 0..16u64 {
            h.record(v);
        }
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 15);
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(1.0), 15);
    }

    #[test]
    fn quantile_error_bounded() {
        let mut h = LogHistogram::new();
        // Uniform values 1..100_000.
        for v in 1..100_000u64 {
            h.record(v);
        }
        for q in [0.1, 0.5, 0.9, 0.99] {
            let exact = (q * 100_000.0) as u64;
            let approx = h.quantile(q);
            let err = (approx as f64 - exact as f64).abs() / exact as f64;
            assert!(err < 0.07, "q={q} exact={exact} approx={approx}");
        }
    }

    #[test]
    fn mean_and_merge() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        a.record(10);
        a.record(20);
        b.record(30);
        b.record(40);
        a.merge(&b);
        assert_eq!(a.count(), 4);
        assert!((a.mean() - 25.0).abs() < f64::EPSILON);
        assert_eq!(a.min(), 10);
        assert_eq!(a.max(), 40);
    }

    #[test]
    fn counter_take() {
        let mut c = Counter::default();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(c.take(), 5);
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn huge_values_do_not_panic() {
        let mut h = LogHistogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX - 1);
        assert_eq!(h.count(), 2);
        assert!(h.quantile(0.5) >= u64::MAX / 2, "overflow bucket");
    }
}
