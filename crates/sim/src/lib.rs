//! Deterministic discrete-event simulation substrate for the Aurora SLS.
//!
//! The Aurora reproduction runs entirely on *virtual time*: every component
//! charges the cost of its work (page-table manipulation, device access,
//! metadata serialization) to a shared [`clock::SimClock`] instead of
//! sleeping. All measurements reported by the benchmark harness are virtual
//! nanoseconds, which makes every experiment bit-for-bit reproducible.
//!
//! This crate holds the pieces everything else builds on:
//!
//! * [`time`] — the [`time::SimTime`] instant and [`time::SimDuration`]
//!   types (nanosecond resolution).
//! * [`clock`] — the shared virtual clock and scoped timers.
//! * [`cost`] — the calibrated cost-model constants (see `DESIGN.md` §5).
//! * [`lockdep`] — rank-ordered locks with runtime lock-order
//!   verification (debug builds); the only module allowed to name the
//!   raw `std::sync` lock types.
//! * [`rng`] — deterministic PRNGs (SplitMix64, Xoshiro256++) implemented
//!   from scratch so simulation results do not depend on crate versions.
//! * [`codec`] — the versioned binary wire format used for checkpoint
//!   metadata, the object-store journal and send/recv streams.
//! * [`hash`] — FNV-1a content hashing (page dedup) and CRC-32C
//!   (on-disk record checksums).
//! * [`stats`] — counters and log-bucketed histograms.
//! * [`error`] — the common error type.

pub mod clock;
pub mod codec;
pub mod cost;
pub mod error;
pub mod hash;
pub mod lockdep;
pub mod rng;
pub mod stats;
pub mod time;

pub use clock::SimClock;
pub use codec::{Decoder, Encoder};
pub use error::{Error, Result};
pub use time::{SimDuration, SimTime};
