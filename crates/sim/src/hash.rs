//! Content hashing and on-disk checksums.
//!
//! Two distinct needs, two distinct functions:
//!
//! * [`fnv64`] / [`Fnv64`] — fast 64-bit content hashing used by the object
//!   store's page-deduplication index. Collisions are tolerable there (the
//!   store verifies candidate pages byte-for-byte before sharing).
//! * [`crc32c`] — the Castagnoli CRC used to checksum every on-disk record
//!   (superblocks, journal entries, checkpoint manifests) so that torn or
//!   corrupted writes are detected during crash recovery.

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Hashes `data` with FNV-1a (64-bit).
pub fn fnv64(data: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.update(data);
    h.finish()
}

/// Incremental FNV-1a 64-bit hasher.
#[derive(Debug, Clone)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv64 {
    /// Creates a hasher at the offset basis.
    pub fn new() -> Self {
        Fnv64(FNV_OFFSET)
    }

    /// Feeds bytes into the hash.
    pub fn update(&mut self, data: &[u8]) {
        let mut h = self.0;
        for &b in data {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
        self.0 = h;
    }

    /// Feeds a little-endian u64 into the hash.
    pub fn update_u64(&mut self, v: u64) {
        self.update(&v.to_le_bytes());
    }

    /// Returns the hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// CRC-32C (Castagnoli) polynomial, reflected.
const CRC32C_POLY: u32 = 0x82F6_3B78;

/// Lazily built 8-bit lookup table for CRC-32C.
fn crc_table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ CRC32C_POLY
                } else {
                    crc >> 1
                };
            }
            *slot = crc;
        }
        table
    })
}

/// Computes the CRC-32C checksum of `data`.
pub fn crc32c(data: &[u8]) -> u32 {
    let table = crc_table();
    let mut crc = !0u32;
    for &b in data {
        crc = (crc >> 8) ^ table[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_known_vectors() {
        // Reference values for FNV-1a 64.
        assert_eq!(fnv64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn fnv_incremental_matches_oneshot() {
        let mut h = Fnv64::new();
        h.update(b"foo");
        h.update(b"bar");
        assert_eq!(h.finish(), fnv64(b"foobar"));
    }

    #[test]
    fn crc32c_known_vectors() {
        // RFC 3720 appendix B.4 test vectors.
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
        assert_eq!(crc32c(&[0xFFu8; 32]), 0x62A8_AB43);
        let ascending: Vec<u8> = (0u8..32).collect();
        assert_eq!(crc32c(&ascending), 0x46DD_794E);
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
    }

    #[test]
    fn crc_detects_single_bit_flip() {
        let mut data = vec![7u8; 128];
        let before = crc32c(&data);
        data[64] ^= 0x10;
        assert_ne!(before, crc32c(&data));
    }
}
