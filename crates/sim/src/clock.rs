//! The shared virtual clock.
//!
//! Every simulated component holds an `Arc<SimClock>` and *charges* the
//! virtual cost of its work with [`SimClock::charge`]. Code that needs to
//! wait for an asynchronous completion (e.g. a device flush finishing in
//! the background) advances the clock to the completion instant with
//! [`SimClock::advance_to`].
//!
//! The clock is an atomic so the benchmark harness can observe it from
//! reporting threads, but the simulation itself is single-threaded and
//! deterministic.

use core::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::time::{SimDuration, SimTime};

/// A monotonically advancing virtual clock.
///
/// # Examples
///
/// ```
/// use aurora_sim::{SimClock, time::SimDuration};
///
/// let clock = SimClock::new();
/// clock.charge(SimDuration::from_micros(10));   // work costs time
/// assert_eq!(clock.now().as_nanos(), 10_000);
/// ```
#[derive(Debug, Default)]
pub struct SimClock {
    now_ns: AtomicU64,
}

impl SimClock {
    /// Creates a clock at `T+0`.
    pub fn new() -> Arc<SimClock> {
        Arc::new(SimClock {
            now_ns: AtomicU64::new(0),
        })
    }

    /// Returns the current virtual instant.
    pub fn now(&self) -> SimTime {
        SimTime::from_nanos(self.now_ns.load(Ordering::Relaxed))
    }

    /// Advances the clock by `d`, charging the cost of some work.
    pub fn charge(&self, d: SimDuration) {
        self.now_ns.fetch_add(d.as_nanos(), Ordering::Relaxed);
    }

    /// Advances the clock to `t` if `t` is in the future; otherwise no-op.
    ///
    /// Used to wait for asynchronous completions: if the completion already
    /// happened "in the past", waiting is free.
    pub fn advance_to(&self, t: SimTime) {
        self.now_ns.fetch_max(t.as_nanos(), Ordering::Relaxed);
    }

    /// Measures the virtual time consumed by `f`.
    pub fn measure<R>(&self, f: impl FnOnce() -> R) -> (R, SimDuration) {
        let start = self.now();
        let r = f();
        (r, self.now().since(start))
    }
}

/// A scoped stopwatch over the virtual clock.
///
/// Handy for building the per-phase breakdowns the paper's tables report.
pub struct Stopwatch<'c> {
    clock: &'c SimClock,
    start: SimTime,
}

impl<'c> Stopwatch<'c> {
    /// Starts a stopwatch at the current instant.
    pub fn start(clock: &'c SimClock) -> Self {
        Stopwatch {
            clock,
            start: clock.now(),
        }
    }

    /// Virtual time elapsed since the stopwatch started.
    pub fn elapsed(&self) -> SimDuration {
        self.clock.now().since(self.start)
    }

    /// Restarts the stopwatch and returns the time elapsed up to now —
    /// the lap pattern used to split a sequence into phases.
    pub fn lap(&mut self) -> SimDuration {
        let now = self.clock.now();
        let d = now.since(self.start);
        self.start = now;
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_and_advance() {
        let c = SimClock::new();
        assert_eq!(c.now(), SimTime::ZERO);
        c.charge(SimDuration::from_micros(5));
        assert_eq!(c.now().as_nanos(), 5_000);
        c.advance_to(SimTime::from_nanos(2_000)); // in the past: no-op
        assert_eq!(c.now().as_nanos(), 5_000);
        c.advance_to(SimTime::from_nanos(9_000));
        assert_eq!(c.now().as_nanos(), 9_000);
    }

    #[test]
    fn stopwatch_laps() {
        let c = SimClock::new();
        let mut sw = Stopwatch::start(&c);
        c.charge(SimDuration::from_nanos(10));
        assert_eq!(sw.lap().as_nanos(), 10);
        c.charge(SimDuration::from_nanos(7));
        assert_eq!(sw.lap().as_nanos(), 7);
        assert_eq!(sw.elapsed().as_nanos(), 0);
    }

    #[test]
    fn measure_reports_consumption() {
        let c = SimClock::new();
        let (v, d) = c.measure(|| {
            c.charge(SimDuration::from_micros(3));
            42
        });
        assert_eq!(v, 42);
        assert_eq!(d.as_micros(), 3);
    }
}
