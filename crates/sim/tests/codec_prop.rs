//! Property tests for the wire codec: round trips for arbitrary values
//! and resilience (error, never panic) on arbitrary corrupt input.

use aurora_sim::codec::{Decoder, Encoder};
use proptest::prelude::*;

proptest! {
    #[test]
    fn varint_roundtrip(v in any::<u64>()) {
        let mut e = Encoder::new();
        e.varint(v);
        let b = e.finish();
        prop_assert_eq!(Decoder::new(&b).varint().unwrap(), v);
    }

    #[test]
    fn mixed_scalars_roundtrip(
        a in any::<u8>(),
        b in any::<u16>(),
        c in any::<u32>(),
        d in any::<u64>(),
        e_ in any::<i64>(),
        f in any::<bool>(),
        s in ".{0,64}",
        bytes in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let mut e = Encoder::new();
        e.u8(a);
        e.u16(b);
        e.u32(c);
        e.u64(d);
        e.i64(e_);
        e.bool(f);
        e.str(&s);
        e.bytes(&bytes);
        let buf = e.finish();
        let mut dec = Decoder::new(&buf);
        prop_assert_eq!(dec.u8().unwrap(), a);
        prop_assert_eq!(dec.u16().unwrap(), b);
        prop_assert_eq!(dec.u32().unwrap(), c);
        prop_assert_eq!(dec.u64().unwrap(), d);
        prop_assert_eq!(dec.i64().unwrap(), e_);
        prop_assert_eq!(dec.bool().unwrap(), f);
        prop_assert_eq!(dec.str().unwrap(), s);
        prop_assert_eq!(dec.bytes().unwrap(), &bytes[..]);
        prop_assert!(dec.is_empty());
    }

    #[test]
    fn record_roundtrip(tag in any::<u16>(), version in any::<u16>(),
                        payload in proptest::collection::vec(any::<u8>(), 0..512)) {
        let mut e = Encoder::new();
        e.record(tag, version, &payload);
        let b = e.finish();
        let rec = Decoder::new(&b).record().unwrap();
        prop_assert_eq!(rec.tag, tag);
        prop_assert_eq!(rec.version, version);
        prop_assert_eq!(rec.payload, &payload[..]);
    }

    /// Any single-bit flip in a record is detected (CRC) or changes
    /// header fields — payload corruption is never silently accepted.
    #[test]
    fn record_bit_flips_detected(payload in proptest::collection::vec(any::<u8>(), 1..128),
                                 byte_sel in any::<usize>(), bit in 0u8..8) {
        let mut e = Encoder::new();
        e.record(7, 1, &payload);
        let mut b = e.into_vec();
        // Flip a bit inside the payload region (skip the 8-byte header).
        let idx = 8 + byte_sel % payload.len();
        b[idx] ^= 1 << bit;
        prop_assert!(Decoder::new(&b).record().is_err());
    }

    /// Arbitrary garbage never panics any decoder entry point.
    #[test]
    fn garbage_never_panics(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let mut d = Decoder::new(&data);
        let _ = d.record();
        let mut d = Decoder::new(&data);
        let _ = d.varint();
        let mut d = Decoder::new(&data);
        let _ = d.bytes();
        let mut d = Decoder::new(&data);
        let _ = d.str();
        let mut d = Decoder::new(&data);
        let _ = d.seq(|d| d.u64());
        let mut d = Decoder::new(&data);
        let _ = d.option(|d| d.bytes());
    }

    /// Sequences of sequences round-trip.
    #[test]
    fn nested_sequences_roundtrip(rows in proptest::collection::vec(
        proptest::collection::vec(any::<u32>(), 0..16), 0..16))
    {
        let mut e = Encoder::new();
        e.seq(&rows, |e, row| e.seq(row, |e, v| e.u32(*v)));
        let b = e.finish();
        let decoded = Decoder::new(&b).seq(|d| d.seq(|d| d.u32())).unwrap();
        prop_assert_eq!(decoded, rows);
    }
}
