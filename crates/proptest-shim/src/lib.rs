//! In-tree stand-in for the `proptest` crate.
//!
//! The workspace builds in environments with no access to a crates.io
//! mirror, so the property-test surface the repo's tests use is
//! reimplemented here: the [`proptest!`] macro, [`prop_oneof!`],
//! `prop_assert!`/`prop_assert_eq!`, integer-range / tuple / `Just` /
//! `any` strategies and `collection::vec`.
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case reports its inputs and the
//!   deterministic per-test seed; reruns reproduce it exactly.
//! * **Deterministic generation.** Each test derives its RNG seed from
//!   its own name, so runs are stable across machines and invocations.
//!   `PROPTEST_CASES` scales the case count (default 64).
//! * **Regex string strategies** support only the `".{lo,hi}"` shape the
//!   repo uses.

pub mod strategy {
    //! Value-generation strategies.

    use super::test_runner::TestRng;

    /// A generator of values for property tests.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Erases the strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Weighted union of boxed strategies ([`crate::prop_oneof!`]).
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T> Union<T> {
        /// Builds a union; weights must not all be zero.
        pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof needs a nonzero total weight");
            Union { arms, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total);
            for (w, s) in &self.arms {
                if pick < *w as u64 {
                    return s.generate(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weights exhausted")
        }
    }

    /// Marker strategy for [`any`].
    pub struct Any<T> {
        _marker: core::marker::PhantomData<T>,
    }

    /// The full-domain strategy for `T` (`any::<u32>()`, ...).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: core::marker::PhantomData,
        }
    }

    /// Types with a canonical full-domain generator.
    pub trait Arbitrary {
        /// Generates an arbitrary value of `Self`.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo + 1) as u64;
                    if span == 0 {
                        // Full-domain inclusive range.
                        return rng.next_u64() as $t;
                    }
                    (lo + rng.below(span) as i128) as $t
                }
            }
        )*};
    }
    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                    self.start + (self.end - self.start) * unit as $t
                }
            }
        )*};
    }
    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($s:ident),+)),+ $(,)?) => {$(
            #[allow(non_snake_case)]
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }
            }
        )+};
    }
    tuple_strategy!(
        (A),
        (A, B),
        (A, B, C),
        (A, B, C, D),
        (A, B, C, D, E),
        (A, B, C, D, E, F)
    );

    /// Regex-shaped string strategy. Supports the `".{lo,hi}"` form:
    /// `lo..=hi` arbitrary non-newline characters.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let inner = self
                .strip_prefix(".{")
                .and_then(|r| r.strip_suffix('}'))
                .unwrap_or_else(|| {
                    panic!("unsupported regex strategy {self:?} (only \".{{lo,hi}}\")")
                });
            let (lo, hi) = inner
                .split_once(',')
                .and_then(|(a, b)| Some((a.parse::<u64>().ok()?, b.parse::<u64>().ok()?)))
                .unwrap_or_else(|| panic!("unsupported regex strategy {self:?}"));
            let len = lo + rng.below(hi - lo + 1);
            let mut s = String::new();
            for _ in 0..len {
                // Mostly printable ASCII, occasionally multi-byte UTF-8.
                let c = match rng.below(8) {
                    0 => char::from_u32(0x00A1 + rng.below(0x500) as u32).unwrap_or('¿'),
                    _ => (0x20 + rng.below(0x5F) as u8) as char,
                };
                s.push(c);
            }
            s
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Length bounds accepted by [`vec`].
    pub trait IntoSizeRange {
        /// Resolves to `(lo, hi)` inclusive.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    impl IntoSizeRange for core::ops::Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty vec size range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for core::ops::RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    /// Strategy for vectors of `elem` with a length in `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (lo, hi) = size.bounds();
        VecStrategy { elem, lo, hi }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        elem: S,
        lo: usize,
        hi: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.lo + rng.below((self.hi - self.lo + 1) as u64) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! The (minimal) test runner: config, RNG, case errors.

    /// Per-test configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Resolves the case count: `PROPTEST_CASES` env overrides config.
    pub fn resolve_cases(config: &ProptestConfig) -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(config.cases)
    }

    /// A failed property-test case.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Creates a failure with a message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl core::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Deterministic generator (SplitMix64-seeded Xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Creates a generator from a 64-bit seed.
        pub fn seed_from(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            TestRng {
                s: [next(), next(), next(), next()],
            }
        }

        /// Next 64-bit output.
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform value in `[0, bound)`; `bound` must be positive.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "bound must be positive");
            let mut x = self.next_u64();
            let mut m = (x as u128) * (bound as u128);
            let mut l = m as u64;
            if l < bound {
                let t = bound.wrapping_neg() % bound;
                while l < t {
                    x = self.next_u64();
                    m = (x as u128) * (bound as u128);
                    l = m as u64;
                }
            }
            (m >> 64) as u64
        }
    }

    /// FNV-1a over the test path: the per-test seed.
    pub fn seed_for(name: &str) -> u64 {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
}

pub mod prelude {
    //! The glob-import surface (`use proptest::prelude::*`).

    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            @cfg($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Internal expansion of [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            let __cases = $crate::test_runner::resolve_cases(&__config);
            let __seed = $crate::test_runner::seed_for(concat!(module_path!(), "::", stringify!($name)));
            let mut __rng = $crate::test_runner::TestRng::seed_from(__seed);
            for __case in 0..__cases {
                let mut __inputs = ::std::string::String::new();
                $(
                    let __value = $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                    __inputs.push_str(&::std::format!(
                        "\n  {} = {:?}", stringify!($pat), &__value,
                    ));
                    let $pat = __value;
                )+
                let __result: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                if let ::core::result::Result::Err(e) = __result {
                    panic!(
                        "proptest {} failed at case {}/{} (seed {:#x}): {}\ninputs:{}",
                        stringify!($name), __case + 1, __cases, __seed, e, __inputs,
                    );
                }
            }
        }
        $crate::__proptest_fns! { @cfg($cfg) $($rest)* }
    };
}

/// Weighted (`w => strategy`) or uniform choice between strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Property-test assertion: fails the case (not the process) on false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)+)),
            );
        }
    };
}

/// Skips the current case when the precondition does not hold.
///
/// The real crate rejects and regenerates; this shim simply treats the
/// case as vacuously passing, which keeps the case count deterministic.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Ok(());
        }
    };
}

/// Property-test equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a == *__b,
            "assertion failed: {:?} != {:?}", __a, __b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a == *__b,
            "{}: {:?} != {:?}", ::std::format!($($fmt)+), __a, __b
        );
    }};
}

/// Property-test inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a != *__b,
            "assertion failed: {:?} == {:?}", __a, __b
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy as _;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::seed_from(7);
        for _ in 0..500 {
            let v = (3u8..9).generate(&mut rng);
            assert!((3..9).contains(&v));
            let w = (1u64..=4).generate(&mut rng);
            assert!((1..=4).contains(&w));
            let s = (-5i64..5).generate(&mut rng);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn oneof_covers_all_arms() {
        let mut rng = TestRng::seed_from(9);
        let strat = prop_oneof![
            2 => (0u8..1).prop_map(|_| "a"),
            1 => crate::strategy::Just("b"),
        ];
        let mut seen_a = false;
        let mut seen_b = false;
        for _ in 0..200 {
            match strat.generate(&mut rng) {
                "a" => seen_a = true,
                _ => seen_b = true,
            }
        }
        assert!(seen_a && seen_b);
    }

    #[test]
    fn vec_lengths_in_range() {
        let mut rng = TestRng::seed_from(11);
        let strat = crate::collection::vec(any::<u8>(), 2..6);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
        }
    }

    #[test]
    fn regex_shape_strategy() {
        let mut rng = TestRng::seed_from(13);
        let strat = ".{0,64}";
        for _ in 0..100 {
            let s = crate::strategy::Strategy::generate(&strat, &mut rng);
            assert!(s.chars().count() <= 64);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generates_and_asserts(x in 0u32..100, v in crate::collection::vec(any::<bool>(), 0..8)) {
            prop_assert!(x < 100);
            prop_assert_eq!(v.len(), v.len());
        }
    }
}
