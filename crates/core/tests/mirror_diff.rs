//! Differential test for the mirrored object store.
//!
//! For random workloads, a width-2 or width-3 mirror in which exactly
//! one replica misbehaves (seeded random write faults while the
//! checkpoint flushes, then transient read errors while the restore
//! runs) must converge on *exactly* the post-restore memory image and
//! live-object census of an unmirrored, fault-free store. Replication,
//! failover, retry and read-repair are pure availability machinery —
//! any divergence in restored bytes or object counts is a correctness
//! bug in the mirror.

// Test code asserts invariants; the workspace unwrap/expect denial is
// for production flush paths.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use aurora_core::restore::RestoreMode;
use aurora_core::Host;
use aurora_hw::{BlockDev, FaultPlan, FaultRates, ModelDev};
use aurora_objstore::StoreConfig;
use aurora_sim::SimClock;
use proptest::prelude::*;

const DEV_BLOCKS: u64 = 64 * 1024;

/// Pages in the workload's mapped region. Above the batched pipeline's
/// threshold so eager restores take the device-reading extent path —
/// the one that performs read-repair.
const REGION_PAGES: u64 = 96;

/// One workload entry: (page index, content seed). Low seed cardinality
/// on purpose so identical pages (and dedup-shared blocks) are common.
type Write = (u64, u64);

fn write_strategy() -> impl Strategy<Value = Write> {
    (0u64..REGION_PAGES, 0u64..8)
}

fn store_config() -> StoreConfig {
    StoreConfig {
        journal_blocks: 2048,
        // Data extents must carry real bytes: read-repair compares and
        // rewrites medium contents, not timing charges.
        materialize_data: true,
        ..StoreConfig::default()
    }
}

/// A single-replica misbehavior profile: frequent transient write
/// errors, a real rate of silent write corruption, occasional stalls
/// and a small chance the replica dies outright. The mirror must hide
/// all of it.
fn victim_rates() -> FaultRates {
    FaultRates {
        power_cut_ppm: 10_000,      // 1%
        transient_ppm: 100_000,     // 10%
        corrupt_ppm: 50_000,        // 5%
        latency_spike_ppm: 20_000,  // 2%
    }
}

/// Builds the deterministic world for `writes`, checkpoints it, crashes
/// the machine and eagerly restores at 4 workers. With `width == 1` the
/// store is unmirrored and fault-free (the reference). With `width >=
/// 2` one seeded replica misbehaves throughout. Returns (restored
/// memory digest, live object count, pages_prefetched).
fn run_variant(writes: &[Write], width: usize, seed: u64) -> (u64, usize, u64) {
    let clock = SimClock::new();
    let mut host = if width == 1 {
        let dev = Box::new(ModelDev::nvme(clock, "nvme0", DEV_BLOCKS));
        Host::boot("diff", dev, store_config()).unwrap()
    } else {
        let members: Vec<Box<dyn BlockDev>> = (0..width)
            .map(|i| {
                Box::new(ModelDev::nvme(clock.clone(), &format!("nvme{i}"), DEV_BLOCKS))
                    as Box<dyn BlockDev>
            })
            .collect();
        Host::boot_mirrored("diff", members, store_config()).unwrap()
    };
    let pid = host.kernel.spawn("workload");
    let addr = host
        .kernel
        .mmap_anon(pid, REGION_PAGES * 4096, false)
        .unwrap();
    // Deterministic base pattern on every page, then the random writes.
    for i in 0..REGION_PAGES {
        let base = [(i % 251) as u8; 32];
        host.kernel.mem_write(pid, addr + i * 4096, &base).unwrap();
    }
    for &(idx, wseed) in writes {
        let marker = [0xB0 + (wseed as u8), (idx % 250) as u8, 0x5E, wseed as u8];
        host.kernel
            .mem_write(pid, addr + idx * 4096 + 64 + wseed * 8, &marker)
            .unwrap();
    }

    // One replica starts misbehaving before the flush touches the
    // medium; every other replica (and the unmirrored reference) is
    // perfect.
    let victim = (seed as usize) % width;
    if width >= 2 {
        let mut st = host.sls.primary.borrow_mut();
        let m = st.device_mut().as_mirror_mut().unwrap();
        m.install_replica_fault_plan(victim, FaultPlan::random(seed, victim_rates()))
            .unwrap();
    }

    let gid = host.persist("workload", pid).unwrap();
    let bd = host.checkpoint(gid, true, Some("snap")).unwrap();
    assert!(bd.outcome.committed(), "one sick replica must not abort");
    host.clock.advance_to(bd.durable_at);
    let ckpt = bd.ckpt.unwrap();

    // The machine dies and reboots cold. The restore then runs while
    // the victim fails its first reads, forcing live failover.
    let mut host = host.crash_and_reboot().unwrap();
    if width >= 2 {
        let mut st = host.sls.primary.borrow_mut();
        let m = st.device_mut().as_mirror_mut().unwrap();
        m.install_replica_fault_plan(victim, FaultPlan::transient_reads(1, 4))
            .unwrap();
    }
    host.sls.restore_workers = 4;
    let store = host.sls.primary.clone();
    let r = host.restore(&store, ckpt, RestoreMode::Eager).unwrap();
    let new_pid = r.restored_pid(pid.0).unwrap();

    // Digest the restored region byte for byte.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut buf = vec![0u8; 4096];
    for i in 0..REGION_PAGES {
        host.kernel
            .mem_read(new_pid, addr + i * 4096, &mut buf)
            .unwrap();
        for &b in &buf {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    // After the dust settles the medium itself must be sound: scrub
    // repairs any remaining at-rest damage from a healthy twin and
    // reports nothing it could not fix.
    if width >= 2 {
        let problems = store.borrow_mut().scrub();
        assert!(problems.is_empty(), "unhealable damage: {problems:?}");
    }
    let objects = store.borrow().live_object_ids().len();
    (h, objects, r.pages_prefetched)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Width-2 and width-3 mirrors with one seeded sick replica restore
    /// to the same bytes and object census as the fault-free unmirrored
    /// reference.
    #[test]
    fn mirrored_store_converges_with_unmirrored_reference(
        writes in proptest::collection::vec(write_strategy(), 1..80),
        seed in 0u64..1_000_000,
    ) {
        let reference = run_variant(&writes, 1, 0);
        for width in [2usize, 3] {
            let got = run_variant(&writes, width, seed);
            prop_assert_eq!(
                got, reference,
                "width-{} mirror diverged under seed {}: \
                 (digest, live objects, pages_prefetched)",
                width, seed
            );
        }
    }
}
