//! Differential test for the parallel flush pipeline.
//!
//! For random workloads, the coalesced parallel path (`hash_plan` at
//! 1/2/8 workers feeding `write_pages_coalesced`) must leave the store
//! in *exactly* the state the serial `write_page` loop does: the same
//! bytes on the device, the same dedup hit count, the same number of
//! live blocks. Worker count and extent batching are pure performance
//! knobs — any divergence here is a correctness bug.

// Test code asserts invariants; the workspace unwrap/expect denial is
// for production flush paths.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use std::collections::BTreeMap;

use aurora_core::flush;
use aurora_hw::ModelDev;
use aurora_objstore::{ObjId, ObjectStore, StoreConfig};
use aurora_sim::SimClock;
use aurora_vm::PageData;
use proptest::prelude::*;

/// Device size in blocks (small: images are digested block by block).
const DEV_BLOCKS: u64 = 4096;

/// Objects the workload spreads writes across.
const OBJECTS: u64 = 3;

fn new_store() -> ObjectStore {
    let clock = SimClock::new();
    let dev = Box::new(ModelDev::nvme(clock, "nvme0", DEV_BLOCKS));
    let mut s = ObjectStore::format(
        dev,
        StoreConfig {
            journal_blocks: 256,
            materialize_data: true,
            ..StoreConfig::default()
        },
    )
    .unwrap();
    for obj in 0..OBJECTS {
        s.create_object(ObjId(obj), 64).unwrap();
    }
    s.commit(None).unwrap();
    s
}

/// FNV-1a digest over the whole device image.
fn device_digest(store: &mut ObjectStore) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut buf = vec![0u8; 4096];
    let dev = store.device_mut();
    for lba in 0..DEV_BLOCKS {
        if dev.read(lba, &mut buf).is_err() {
            continue;
        }
        for &b in &buf {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// One workload entry: (object, page index, content seed). Low seed
/// cardinality on purpose so dedup hits are common.
type Write = (u64, u64, u64);

fn write_strategy() -> impl Strategy<Value = Write> {
    (0u64..OBJECTS, 0u64..64, 0u64..12)
}

/// Applies the workload in checkpoint-sized batches and returns
/// (device digest, dedup_hits, blocks_in_use).
fn run_variant(writes: &[Write], workers: Option<usize>) -> (u64, u64, u64) {
    let mut store = new_store();
    for batch in writes.chunks(24) {
        match workers {
            // Serial reference: the pre-pipeline write_page loop.
            None => {
                for &(obj, idx, seed) in batch {
                    store
                        .write_page(ObjId(obj), idx, &PageData::Seeded(seed))
                        .unwrap();
                }
            }
            // Parallel pipeline: hash stage + coalesced apply.
            Some(w) => {
                let plan: Vec<flush::PlanPage> = batch
                    .iter()
                    .map(|&(obj, idx, seed)| (ObjId(obj), idx, PageData::Seeded(seed)))
                    .collect();
                let hashed = flush::hash_plan(plan, w);
                store.write_pages_coalesced(&hashed).unwrap();
            }
        }
        store.commit(None).unwrap();
    }
    let dedup_hits = store.stats.dedup_hits;
    let blocks = store.blocks_in_use();
    (device_digest(&mut store), dedup_hits, blocks)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Serial write_page, and the coalesced pipeline at 1, 2 and 8
    /// workers, all converge on byte-identical device images with
    /// identical dedup and allocation counters.
    #[test]
    fn parallel_flush_matches_serial(
        writes in proptest::collection::vec(write_strategy(), 1..120)
    ) {
        let reference = run_variant(&writes, None);
        let mut results = BTreeMap::new();
        for workers in [1usize, 2, 8] {
            results.insert(workers, run_variant(&writes, Some(workers)));
        }
        for (workers, got) in results {
            prop_assert_eq!(
                got, reference,
                "divergence at {} workers: (digest, dedup_hits, blocks_in_use)",
                workers
            );
        }
    }
}

/// The coalescer actually batches: a contiguous fresh run lands as few
/// extents, and the stats counters prove it.
#[test]
fn coalescing_batches_adjacent_blocks() {
    let mut store = new_store();
    let plan: Vec<flush::PlanPage> = (0..128u64)
        .map(|i| (ObjId(0), i % 64, PageData::Seeded(1000 + i)))
        .collect();
    let hashed = flush::hash_plan(plan, 4);
    store.write_pages_coalesced(&hashed).unwrap();
    store.commit(None).unwrap();
    assert!(store.stats.extents_coalesced > 0);
    assert!(
        store.stats.blocks_coalesced > store.stats.extents_coalesced,
        "adjacent fresh blocks must share extents: {} extents / {} blocks",
        store.stats.extents_coalesced,
        store.stats.blocks_coalesced
    );
}
