//! Differential test for the delta-checkpoint path.
//!
//! For random mixed workloads — sub-page pokes that qualify for delta
//! records interleaved with wide writes that force full images — a host
//! whose store runs the delta path (default policy) and a host with the
//! path disabled (`delta_max_bytes: 0`, every flush writes full 4 KiB
//! images) must converge on byte-identical restored memory for every
//! checkpoint, including after a crash and journal replay. The delta
//! log is a pure flush-bandwidth optimization — any divergence here is
//! a correctness bug in record staging, chain replay, or recovery.

// Test code asserts invariants; the workspace unwrap/expect denial is
// for production flush paths.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use std::collections::BTreeMap;

use aurora_core::restore::RestoreMode;
use aurora_core::Host;
use aurora_hw::ModelDev;
use aurora_objstore::StoreConfig;
use aurora_sim::SimClock;
use proptest::prelude::*;

const DEV_BLOCKS: u64 = 64 * 1024;

/// Pages in the workload's mapped region.
const REGION_PAGES: u64 = 8;

/// Writes applied between consecutive checkpoints.
const WRITES_PER_ROUND: usize = 6;

/// One workload entry: (page index, byte offset, length, fill byte).
/// Lengths span the sub-page delta budget and beyond it, so each round
/// mixes delta records with full-image writes; offsets and lengths are
/// clamped to the page at apply time.
type Poke = (u64, u32, u32, u8);

fn poke_strategy() -> impl Strategy<Value = Poke> {
    (0u64..REGION_PAGES, 0u32..4096, 1u32..2048, any::<u8>())
}

fn boot(delta_on: bool) -> Host {
    let clock = SimClock::new();
    let dev = Box::new(ModelDev::nvme(clock, "nvme0", DEV_BLOCKS));
    let mut host = Host::boot(
        "diff",
        dev,
        StoreConfig {
            journal_blocks: 2048,
            materialize_data: true,
            delta_max_bytes: if delta_on {
                StoreConfig::default().delta_max_bytes
            } else {
                0
            },
            ..StoreConfig::default()
        },
    )
    .unwrap();
    host.sls.flush_workers = 4;
    host
}

/// Applies the workload round by round with a checkpoint after each,
/// crashes the machine so recovery replays the journal (and, on the
/// delta side, the delta log), then restores every surviving workload
/// checkpoint and digests its full memory region. Returns the digests
/// keyed by checkpoint name, plus the count of delta records staged.
fn run_variant(pokes: &[Poke], delta_on: bool) -> (BTreeMap<String, u64>, u64) {
    let mut host = boot(delta_on);
    let pid = host.kernel.spawn("workload");
    let addr = host
        .kernel
        .mmap_anon(pid, REGION_PAGES * 4096, false)
        .unwrap();
    let gid = host.persist("workload", pid).unwrap();

    for (round, batch) in pokes.chunks(WRITES_PER_ROUND).enumerate() {
        for &(p, off, len, fill) in batch {
            let off = off.min(4095) as u64;
            let len = (len as u64).clamp(1, 4096 - off);
            let body = vec![fill; len as usize];
            host.kernel
                .mem_write(pid, addr + p * 4096 + off, &body)
                .unwrap();
        }
        let name = format!("r{round}");
        let bd = host.checkpoint(gid, round == 0, Some(&name)).unwrap();
        host.clock.advance_to(bd.durable_at);
    }

    let staged = host.sls.primary.borrow().stats.delta_records;
    let mut host = host.crash_and_reboot().unwrap();

    let named: Vec<(aurora_objstore::CkptId, String)> = host
        .sls
        .primary
        .borrow()
        .checkpoints()
        .iter()
        .filter_map(|c| c.name.clone().map(|n| (c.id, n)))
        .collect();
    let mut digests = BTreeMap::new();
    for (id, name) in named {
        if !name.starts_with('r') {
            continue;
        }
        let store = host.sls.primary.clone();
        let r = host.restore(&store, id, RestoreMode::Eager).unwrap();
        let np = r.root_pid().unwrap();
        let mut buf = vec![0u8; (REGION_PAGES * 4096) as usize];
        host.kernel.mem_read(np, addr, &mut buf).unwrap();
        let _ = host.kernel.exit(np, 0);
        host.kernel.procs.remove(&np);

        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in &buf {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        digests.insert(name, h);
    }
    (digests, staged)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The delta-path store and the full-image store restore every
    /// checkpoint of a random mixed workload to identical memory.
    #[test]
    fn delta_path_matches_full_images(
        pokes in proptest::collection::vec(poke_strategy(), 1..48)
    ) {
        let (with_deltas, _) = run_variant(&pokes, true);
        let (full_images, staged_off) = run_variant(&pokes, false);
        prop_assert_eq!(staged_off, 0, "disabled path must stage nothing");
        prop_assert_eq!(with_deltas, full_images);
    }
}

/// Deterministic anchor: a workload of pure sub-page pokes really does
/// drive the delta path (the proptest can't assert engagement per case,
/// since a random batch may exceed the delta budget on every page).
#[test]
fn sub_page_workload_engages_the_delta_path() {
    let pokes: Vec<Poke> = (0..24)
        .map(|i| ((i % REGION_PAGES), 64 * (i as u32 % 8), 48, i as u8))
        .collect();
    let (with_deltas, staged) = run_variant(&pokes, true);
    let (full_images, _) = run_variant(&pokes, false);
    assert!(staged > 0, "sub-page pokes must stage delta records");
    assert_eq!(with_deltas, full_images);
}
