//! End-to-end SLS tests: transparent persistence, crash recovery,
//! incremental checkpointing, external consistency, lazy restore,
//! rollback, migration, ntlogs and speculation.

// Test code asserts invariants; the workspace unwrap/expect denial is
// for production flush paths.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use std::cell::RefCell;
use std::rc::Rc;

use aurora_core::restore::RestoreMode;
use aurora_core::{BackendKind, Host};
use aurora_hw::ModelDev;
use aurora_objstore::{ObjectStore, StoreConfig};
use aurora_sim::SimClock;
use aurora_slsfs::StoreHandle;

const DEV_BLOCKS: u64 = 128 * 1024;

fn new_host(name: &str) -> Host {
    let clock = SimClock::new();
    let dev = Box::new(ModelDev::nvme(clock, &format!("{name}-nvme"), DEV_BLOCKS));
    Host::boot(
        name,
        dev,
        StoreConfig {
            journal_blocks: 2048,
            ..StoreConfig::default()
        },
    )
    .unwrap()
}

fn memory_backend(host: &Host) -> StoreHandle {
    let dev = Box::new(ModelDev::ramdisk(host.clock.clone(), "md0", DEV_BLOCKS));
    Rc::new(RefCell::new(
        ObjectStore::format(dev, StoreConfig::default()).unwrap(),
    ))
}

#[test]
fn checkpoint_restore_roundtrips_full_process_state() {
    let mut host = new_host("h");
    let pid = host.kernel.spawn("app");
    // Memory, registers, a file on SLSFS, and an unread pipe.
    let addr = host.kernel.mmap_anon(pid, 8 * 4096, false).unwrap();
    host.kernel.mem_write(pid, addr, b"precious state").unwrap();
    host.kernel.set_reg(pid, 0, 0xFEED).unwrap();
    host.kernel.set_reg(pid, 1, addr).unwrap();
    let file_fd = host.kernel.open(pid, "/sls/db", true).unwrap();
    host.kernel.write(pid, file_fd, b"file contents").unwrap();
    let (rfd, wfd) = host.kernel.pipe(pid).unwrap();
    host.kernel.write(pid, wfd, b"in flight").unwrap();

    let gid = host.persist("app", pid).unwrap();
    let bd = host.checkpoint(gid, true, Some("snap")).unwrap();
    assert!(bd.pages >= 1, "resident memory captured");
    assert!(bd.metadata_bytes > 0);

    // Restore a second incarnation on the same host.
    let store = host.sls.primary.clone();
    let ckpt = bd.ckpt.unwrap();
    let restored = host.restore(&store, ckpt, RestoreMode::Eager).unwrap();
    let new_pid = restored.restored_pid(pid.0).unwrap();
    assert_ne!(new_pid, pid);

    // Registers and memory round-tripped.
    assert_eq!(host.kernel.get_reg(new_pid, 0).unwrap(), 0xFEED);
    let mut buf = [0u8; 14];
    host.kernel.mem_read(new_pid, addr, &mut buf).unwrap();
    assert_eq!(&buf, b"precious state");
    // The file descriptor works and the offset survived.
    host.kernel.lseek(new_pid, file_fd, 0).unwrap();
    assert_eq!(host.kernel.read(new_pid, file_fd, 64).unwrap(), b"file contents");
    // The pipe still holds the unread bytes.
    assert_eq!(host.kernel.read(new_pid, rfd, 64).unwrap(), b"in flight");
}

#[test]
fn transparent_persistence_survives_machine_crash() {
    let mut host = new_host("h");
    let pid = host.kernel.spawn("survivor");
    let addr = host.kernel.mmap_anon(pid, 4096, false).unwrap();
    host.kernel.mem_write(pid, addr, b"before crash").unwrap();
    host.kernel.set_reg(pid, 7, 42).unwrap();
    let gid = host.persist("survivor", pid).unwrap();
    let bd = host.checkpoint(gid, true, None).unwrap();
    host.clock.advance_to(bd.durable_at);

    // Dirty more state that will be LOST (no checkpoint).
    host.kernel.mem_write(pid, addr, b"lost forever").unwrap();

    // Machine dies; store recovers; application restored.
    let mut host = host.crash_and_reboot().unwrap();
    assert!(host.kernel.procs.is_empty(), "crash killed everything");
    let store = host.sls.primary.clone();
    let head = store.borrow().head().unwrap();
    let restored = host.restore(&store, head, RestoreMode::Eager).unwrap();
    let new_pid = restored.restored_pid(pid.0).unwrap();
    let mut buf = [0u8; 12];
    host.kernel.mem_read(new_pid, addr, &mut buf).unwrap();
    assert_eq!(&buf, b"before crash");
    assert_eq!(host.kernel.get_reg(new_pid, 7).unwrap(), 42);
}

#[test]
fn incremental_checkpoints_capture_only_dirty_pages() {
    let mut host = new_host("h");
    let pid = host.kernel.spawn("writer");
    let addr = host.kernel.mmap_anon(pid, 64 * 4096, false).unwrap();
    for i in 0..64u64 {
        host.kernel
            .mem_write(pid, addr + i * 4096, format!("page {i}").as_bytes())
            .unwrap();
    }
    let gid = host.persist("writer", pid).unwrap();
    let full = host.checkpoint(gid, true, None).unwrap();
    assert_eq!(full.pages, 64);

    // Touch 3 pages; the incremental captures exactly those.
    for i in [5u64, 17, 42] {
        host.kernel
            .mem_write(pid, addr + i * 4096, b"dirty")
            .unwrap();
    }
    let incr = host.checkpoint(gid, false, None).unwrap();
    assert_eq!(incr.pages, 3);
    assert!(incr.lazy_data_copy < full.lazy_data_copy);
    assert!(incr.stop_time < full.stop_time);

    // Restoring the incremental still yields every page (chain read).
    let store = host.sls.primary.clone();
    let restored = host
        .restore(&store, incr.ckpt.unwrap(), RestoreMode::Eager)
        .unwrap();
    let new_pid = restored.restored_pid(pid.0).unwrap();
    let mut buf = [0u8; 7];
    host.kernel.mem_read(new_pid, addr + 9 * 4096, &mut buf).unwrap();
    assert_eq!(&buf, b"page 9\0");
    let mut buf = [0u8; 5];
    host.kernel.mem_read(new_pid, addr + 17 * 4096, &mut buf).unwrap();
    assert_eq!(&buf, b"dirty");
}

#[test]
fn fork_tree_with_shared_memory_roundtrips() {
    let mut host = new_host("h");
    let parent = host.kernel.spawn("parent");
    host.kernel.shmget(99, 4096).unwrap();
    let shm_addr = host.kernel.shmat(parent, 99).unwrap();
    let child = host.kernel.fork(parent).unwrap();
    host.kernel
        .mem_write(parent, shm_addr, b"shared before ckpt")
        .unwrap();

    let gid = host.persist("tree", parent).unwrap();
    let bd = host.checkpoint(gid, true, None).unwrap();

    let store = host.sls.primary.clone();
    let restored = host
        .restore(&store, bd.ckpt.unwrap(), RestoreMode::Eager)
        .unwrap();
    let new_parent = restored.restored_pid(parent.0).unwrap();
    let new_child = restored.restored_pid(child.0).unwrap();

    // Shared memory is STILL shared in the restored incarnation.
    host.kernel
        .mem_write(new_child, shm_addr, b"written by child!!")
        .unwrap();
    let mut buf = [0u8; 18];
    host.kernel.mem_read(new_parent, shm_addr, &mut buf).unwrap();
    assert_eq!(&buf, b"written by child!!");
    // Parent/child relationship restored.
    assert_eq!(host.kernel.proc_ref(new_child).unwrap().ppid, new_parent);
}

#[test]
fn fd_passing_in_flight_survives_checkpoint() {
    // The CRIU-took-7-years case: a descriptor parked inside a Unix
    // socket message at checkpoint time.
    let mut host = new_host("h");
    let pid = host.kernel.spawn("passer");
    let (sa, sb) = host.kernel.socketpair(pid).unwrap();
    let f = host.kernel.open(pid, "/sls/passed", true).unwrap();
    host.kernel.write(pid, f, b"hello through the socket").unwrap();
    host.kernel.sendmsg(pid, sa, b"take this", &[f]).unwrap();
    host.kernel.close(pid, f).unwrap();

    let gid = host.persist("passer", pid).unwrap();
    let bd = host.checkpoint(gid, true, None).unwrap();
    let store = host.sls.primary.clone();
    let restored = host
        .restore(&store, bd.ckpt.unwrap(), RestoreMode::Eager)
        .unwrap();
    let np = restored.restored_pid(pid.0).unwrap();

    // Receive the message in the restored incarnation: the descriptor
    // must come out working.
    let (bytes, fds) = host.kernel.recvmsg(np, sb).unwrap();
    assert_eq!(bytes, b"take this");
    assert_eq!(fds.len(), 1);
    host.kernel.lseek(np, fds[0], 0).unwrap();
    assert_eq!(
        host.kernel.read(np, fds[0], 64).unwrap(),
        b"hello through the socket"
    );
}

#[test]
fn unlinked_open_file_survives_crash_restore() {
    let mut host = new_host("h");
    let pid = host.kernel.spawn("anon");
    let fd = host.kernel.open(pid, "/sls/tmpfile", true).unwrap();
    host.kernel.write(pid, fd, b"anonymous data").unwrap();
    host.kernel.unlink_path(pid, "/sls/tmpfile").unwrap();

    let gid = host.persist("anon", pid).unwrap();
    let bd = host.checkpoint(gid, true, None).unwrap();
    host.clock.advance_to(bd.durable_at);

    let mut host = host.crash_and_reboot().unwrap();
    let store = host.sls.primary.clone();
    let head = store.borrow().head().unwrap();
    let restored = host.restore(&store, head, RestoreMode::Eager).unwrap();
    let np = restored.restored_pid(pid.0).unwrap();
    // The name is gone but the restored process reads its data.
    assert!(host.kernel.open(np, "/sls/tmpfile", false).is_err());
    host.kernel.lseek(np, fd, 0).unwrap();
    assert_eq!(host.kernel.read(np, fd, 64).unwrap(), b"anonymous data");
}

#[test]
fn external_consistency_blocks_until_durable() {
    let mut host = new_host("h");
    let server = host.kernel.spawn("server");
    let client = host.kernel.spawn("client");
    let lfd = host.kernel.tcp_listen(server, 6379).unwrap();
    let cfd = host.kernel.tcp_connect(client, 6379).unwrap();
    let sfd = host.kernel.tcp_accept(server, lfd).unwrap();

    let gid = host.persist("server", server).unwrap();
    // Server replies to the outside world: held.
    host.kernel.write(server, sfd, b"reply").unwrap();
    assert!(host.kernel.read(client, cfd, 64).is_err(), "held");

    // Checkpoint; before durability the data is still held.
    let bd = host.checkpoint(gid, true, None).unwrap();
    // Advance past durability; the next poll releases.
    host.clock.advance_to(bd.durable_at);
    host.poll_durability();
    assert_eq!(host.kernel.read(client, cfd, 64).unwrap(), b"reply");
}

#[test]
fn fdctl_bypasses_external_consistency() {
    let mut host = new_host("h");
    let server = host.kernel.spawn("server");
    let client = host.kernel.spawn("client");
    let lfd = host.kernel.tcp_listen(server, 6379).unwrap();
    let cfd = host.kernel.tcp_connect(client, 6379).unwrap();
    let sfd = host.kernel.tcp_accept(server, lfd).unwrap();
    let _gid = host.persist("server", server).unwrap();
    host.sls_fdctl(server, sfd, false).unwrap();
    host.kernel.write(server, sfd, b"fast reply").unwrap();
    assert_eq!(host.kernel.read(client, cfd, 64).unwrap(), b"fast reply");
}

#[test]
fn lazy_restore_faults_pages_on_demand() {
    let mut host = new_host("h");
    let pid = host.kernel.spawn("lazyapp");
    let addr = host.kernel.mmap_anon(pid, 256 * 4096, false).unwrap();
    for i in 0..256u64 {
        host.kernel
            .mem_write(pid, addr + i * 4096, &[i as u8; 64])
            .unwrap();
    }
    let gid = host.persist("lazyapp", pid).unwrap();
    let bd = host.checkpoint(gid, true, None).unwrap();
    let store = host.sls.primary.clone();
    // Drain the device queue so the two restores compete fairly.
    host.clock.advance_to(bd.durable_at);

    let t0 = host.clock.now();
    let lazy = host
        .restore(&store, bd.ckpt.unwrap(), RestoreMode::Lazy)
        .unwrap();
    let lazy_time = host.clock.now().since(t0);
    assert_eq!(lazy.pages_prefetched, 0);

    // Pages come back on demand with the right contents.
    let np = lazy.restored_pid(pid.0).unwrap();
    let majors_before = host.kernel.vm.stats.major_faults;
    let mut buf = [0u8; 64];
    host.kernel.mem_read(np, addr + 100 * 4096, &mut buf).unwrap();
    assert_eq!(buf, [100u8; 64]);
    assert!(host.kernel.vm.stats.major_faults > majors_before);

    // Eager restore of the same image costs much more restore time.
    let t1 = host.clock.now();
    let eager = host
        .restore(&store, bd.ckpt.unwrap(), RestoreMode::Eager)
        .unwrap();
    let eager_time = host.clock.now().since(t1);
    assert!(eager.pages_prefetched >= 256);
    assert!(
        eager_time > lazy_time,
        "eager {eager_time} should exceed lazy {lazy_time}"
    );
}

#[test]
fn restored_instances_share_frames_and_warm_each_other() {
    let mut host = new_host("h");
    let pid = host.kernel.spawn("fn-runtime");
    let addr = host.kernel.mmap_anon(pid, 64 * 4096, false).unwrap();
    for i in 0..64u64 {
        host.kernel
            .mem_write(pid, addr + i * 4096, &[7u8; 32])
            .unwrap();
    }
    let gid = host.persist("fn", pid).unwrap();
    let bd = host.checkpoint(gid, true, None).unwrap();
    let store = host.sls.primary.clone();

    // Two lazy instances from the same image.
    let r1 = host
        .restore(&store, bd.ckpt.unwrap(), RestoreMode::Lazy)
        .unwrap();
    let r2 = host
        .restore(&store, bd.ckpt.unwrap(), RestoreMode::Lazy)
        .unwrap();
    let p1 = r1.root_pid().unwrap();
    let p2 = r2.root_pid().unwrap();

    // Instance 1 faults a page in (major fault).
    let mut buf = [0u8; 32];
    let majors0 = host.kernel.vm.stats.major_faults;
    host.kernel.mem_read(p1, addr + 5 * 4096, &mut buf).unwrap();
    assert_eq!(host.kernel.vm.stats.major_faults, majors0 + 1);

    // Instance 2 reading the same page takes a MINOR fault: warmed up.
    let minors0 = host.kernel.vm.stats.minor_faults;
    host.kernel.mem_read(p2, addr + 5 * 4096, &mut buf).unwrap();
    assert_eq!(host.kernel.vm.stats.major_faults, majors0 + 1, "no new major");
    assert!(host.kernel.vm.stats.minor_faults > minors0);
    assert_eq!(buf, [7u8; 32]);

    // Writes diverge per instance (COW).
    host.kernel.mem_write(p2, addr + 5 * 4096, b"mine").unwrap();
    host.kernel.mem_read(p1, addr + 5 * 4096, &mut buf).unwrap();
    assert_eq!(buf, [7u8; 32]);
}

#[test]
fn rollback_reverts_and_notifies() {
    let mut host = new_host("h");
    let pid = host.kernel.spawn("spec");
    let addr = host.kernel.mmap_anon(pid, 4096, false).unwrap();
    host.kernel.mem_write(pid, addr, b"commit me").unwrap();
    let gid = host.persist("spec", pid).unwrap();

    let token = host.speculate_begin(gid).unwrap();
    host.kernel.mem_write(pid, addr, b"gamble!!!").unwrap();

    // The gamble fails: abort reverts memory and notifies.
    let rb = host.speculate_abort(token).unwrap();
    let np = rb.root_pid().unwrap();
    let mut buf = [0u8; 9];
    host.kernel.mem_read(np, addr, &mut buf).unwrap();
    assert_eq!(&buf, b"commit me");
    assert!(host.sls_rollback_pending(np));
    assert!(!host.sls_rollback_pending(np), "notification consumed");

    // The group continues: members are the restored incarnation.
    assert_eq!(host.group_members(gid), vec![np]);
    // And it can checkpoint again.
    host.checkpoint(gid, false, None).unwrap();
}

#[test]
fn time_travel_across_named_checkpoints() {
    let mut host = new_host("h");
    let pid = host.kernel.spawn("history");
    let addr = host.kernel.mmap_anon(pid, 4096, false).unwrap();
    let gid = host.persist("history", pid).unwrap();

    let mut snaps = Vec::new();
    for ver in 0..5u8 {
        host.kernel
            .mem_write(pid, addr, format!("version {ver}").as_bytes())
            .unwrap();
        let bd = host
            .checkpoint(gid, false, Some(&format!("v{ver}")))
            .unwrap();
        snaps.push(bd.ckpt.unwrap());
    }
    // Bisect: restore version 2 without disturbing the live group.
    let store = host.sls.primary.clone();
    let r = host.restore(&store, snaps[2], RestoreMode::Eager).unwrap();
    let np = r.root_pid().unwrap();
    let mut buf = [0u8; 9];
    host.kernel.mem_read(np, addr, &mut buf).unwrap();
    assert_eq!(&buf, b"version 2");
    // The live process still has the latest state.
    host.kernel.mem_read(pid, addr, &mut buf).unwrap();
    assert_eq!(&buf, b"version 4");
    // Named lookup works.
    assert_eq!(
        store.borrow().checkpoint_by_name("v2").unwrap().id,
        snaps[2]
    );
}

#[test]
fn send_recv_between_hosts() {
    let mut src = new_host("src");
    let mut dst = new_host("dst");
    let pid = src.kernel.spawn("traveler");
    let addr = src.kernel.mmap_anon(pid, 4 * 4096, false).unwrap();
    src.kernel.mem_write(pid, addr, b"emigrating state").unwrap();
    src.kernel.set_reg(pid, 3, 777).unwrap();
    let gid = src.persist("traveler", pid).unwrap();
    src.checkpoint(gid, true, Some("to-ship")).unwrap();

    let stream = src.send_checkpoint(gid, None).unwrap();
    let ckpt = dst.recv_checkpoint(&stream).unwrap();
    let store = dst.sls.primary.clone();
    let r = dst.restore(&store, ckpt, RestoreMode::Eager).unwrap();
    let np = r.root_pid().unwrap();
    let mut buf = [0u8; 16];
    dst.kernel.mem_read(np, addr, &mut buf).unwrap();
    assert_eq!(&buf, b"emigrating state");
    assert_eq!(dst.kernel.get_reg(np, 3).unwrap(), 777);
}

#[test]
fn live_migration_moves_a_running_app() {
    let mut src = new_host("src");
    let mut dst = new_host("dst");
    let pid = src.kernel.spawn("migrant");
    let addr = src.kernel.mmap_anon(pid, 32 * 4096, false).unwrap();
    for i in 0..32u64 {
        src.kernel
            .mem_write(pid, addr + i * 4096, &[i as u8; 16])
            .unwrap();
    }
    let gid = src.persist("migrant", pid).unwrap();

    let mut link = aurora_hw::LinkModel::ten_gbe(src.clock.clone());
    let stats = aurora_core::migrate::live_migrate(&mut src, &mut dst, gid, &mut link, 5).unwrap();
    assert!(stats.rounds >= 2);
    assert!(stats.total_bytes > 0);
    // Deltas shrink after the full round.
    assert!(stats.round_bytes[1] < stats.round_bytes[0]);

    // Source incarnation gone; destination has the state.
    assert!(src.group_members(gid).is_empty());
    let np = stats.restore.root_pid().unwrap();
    let mut buf = [0u8; 16];
    dst.kernel.mem_read(np, addr + 9 * 4096, &mut buf).unwrap();
    assert_eq!(buf, [9u8; 16]);
}

#[test]
fn multi_backend_replication() {
    let mut host = new_host("h");
    let pid = host.kernel.spawn("replicated");
    let addr = host.kernel.mmap_anon(pid, 4096, false).unwrap();
    host.kernel.mem_write(pid, addr, b"replicate").unwrap();
    let gid = host.persist("replicated", pid).unwrap();

    let mem = memory_backend(&host);
    host.attach_backend(gid, BackendKind::Memory, mem.clone())
        .unwrap();
    host.checkpoint(gid, true, Some("both")).unwrap();

    // The memory backend holds a complete, independently restorable copy.
    let mem_ckpt = mem.borrow().head().unwrap();
    let r = host.restore(&mem, mem_ckpt, RestoreMode::Eager).unwrap();
    let np = r.root_pid().unwrap();
    let mut buf = [0u8; 9];
    host.kernel.mem_read(np, addr, &mut buf).unwrap();
    assert_eq!(&buf, b"replicate");
    // Detach works; primary cannot be detached.
    assert!(host.detach_backend(gid, 0).is_err());
    host.detach_backend(gid, 1).unwrap();
}

#[test]
fn ntflush_log_survives_crash_without_checkpoint() {
    let mut host = new_host("h");
    let pid = host.kernel.spawn("kv");
    let gid = host.persist("kv", pid).unwrap();
    host.checkpoint(gid, true, None).unwrap();
    let (fd, log_id) = host.ntlog_create(gid, pid).unwrap();
    host.sls_ntflush(gid, pid, fd, b"put k1=v1;").unwrap();
    host.sls_ntflush(gid, pid, fd, b"put k2=v2;").unwrap();

    // Crash WITHOUT another checkpoint: the log was synchronously
    // durable, so it must survive.
    let mut host = host.crash_and_reboot().unwrap();
    let pid2 = host.kernel.spawn("kv");
    let gid2 = host.persist("kv", pid2).unwrap();
    // Reboots never reuse group ids (the allocator is durable), so the
    // log is addressed by its ORIGINAL group's namespace.
    assert_ne!(gid2.0, gid.0, "group ids are never reused");
    let fd2 = host.install_ntlog_fd(pid2, log_id).unwrap();
    let log = host.ntlog_read(gid, pid2, fd2).unwrap();
    assert_eq!(log, b"put k1=v1;put k2=v2;");

    // Truncation after the application checkpoints its state.
    host.ntlog_truncate(gid, pid2, fd2).unwrap();
    assert!(host.ntlog_read(gid, pid2, fd2).unwrap().is_empty());
}

#[test]
fn periodic_checkpointing_at_100hz() {
    let mut host = new_host("h");
    let pid = host.kernel.spawn("periodic");
    let addr = host.kernel.mmap_anon(pid, 16 * 4096, false).unwrap();
    let gid = host.persist("periodic", pid).unwrap();
    host.checkpoint(gid, true, None).unwrap();

    // Simulate 100 ms of runtime with writes; ticks fire every 10 ms.
    let mut taken = 0;
    for step in 0..1000u64 {
        host.kernel
            .mem_write(pid, addr + (step % 16) * 4096, &step.to_le_bytes())
            .unwrap();
        host.clock
            .charge(aurora_sim::time::SimDuration::from_micros(100));
        if host.checkpoint_tick(gid).unwrap().is_some() {
            taken += 1;
        }
    }
    assert!(
        (8..=12).contains(&taken),
        "≈10 checkpoints in 100 ms, got {taken}"
    );
    let history = host.sls.group_ref(gid).unwrap().history.len();
    assert!(history >= 8);
}

#[test]
fn ps_lists_groups_and_history() {
    let mut host = new_host("h");
    let pid = host.kernel.spawn("visible");
    let gid = host.persist("visible", pid).unwrap();
    host.checkpoint(gid, true, Some("first")).unwrap();
    host.checkpoint(gid, false, None).unwrap();
    let ps = host.ps();
    assert_eq!(ps.len(), 1);
    assert_eq!(ps[0].name, "visible");
    assert_eq!(ps[0].members, vec![pid]);
    assert_eq!(ps[0].checkpoints.len(), 2);
    assert_eq!(ps[0].backends, vec![BackendKind::Disk]);
}

#[test]
fn history_window_gc_bounds_store_growth() {
    let mut host = new_host("h");
    let pid = host.kernel.spawn("churner");
    let addr = host.kernel.mmap_anon(pid, 8 * 4096, false).unwrap();
    let gid = host.persist("churner", pid).unwrap();
    {
        host.sls.group_mut(gid).unwrap().history_window = 4;
    }
    for round in 0..20u64 {
        host.kernel
            .mem_write(pid, addr + (round % 8) * 4096, &round.to_le_bytes())
            .unwrap();
        host.checkpoint(gid, round == 0, None).unwrap();
    }
    assert_eq!(host.sls.group_ref(gid).unwrap().history.len(), 4);
    // The store's checkpoint table is bounded too (plus ntlog slack).
    assert!(host.sls.primary.borrow().checkpoints().len() <= 6);
    // The latest state is still fully restorable.
    let store = host.sls.primary.clone();
    let head = store.borrow().head().unwrap();
    let r = host.restore(&store, head, RestoreMode::Eager).unwrap();
    let np = r.root_pid().unwrap();
    let mut buf = [0u8; 8];
    host.kernel.mem_read(np, addr + 3 * 4096, &mut buf).unwrap();
    assert_eq!(u64::from_le_bytes(buf), 19);
}

#[test]
fn mctl_excluded_regions_not_captured() {
    let mut host = new_host("h");
    let pid = host.kernel.spawn("scratchy");
    let keep = host.kernel.mmap_anon(pid, 4 * 4096, false).unwrap();
    let scratch = host.kernel.mmap_anon(pid, 4 * 4096, false).unwrap();
    host.kernel.mem_write(pid, keep, b"keep me").unwrap();
    host.kernel.mem_write(pid, scratch, b"scratch").unwrap();
    host.sls_mctl(
        pid,
        scratch,
        aurora_vm::SlsPolicy {
            exclude: true,
            ..Default::default()
        },
    )
    .unwrap();
    let gid = host.persist("scratchy", pid).unwrap();
    let bd = host.checkpoint(gid, true, None).unwrap();
    assert_eq!(bd.pages, 1, "only the kept region's page");
}

#[test]
fn sysv_msgq_and_posix_shm_roundtrip() {
    let mut host = new_host("h");
    let pid = host.kernel.spawn("ipc-user");
    // POSIX shm, mapped and written.
    host.kernel.posix_shm_open("/cache", 4096).unwrap();
    let shm_addr = host.kernel.posix_shm_map(pid, "/cache").unwrap();
    host.kernel.mem_write(pid, shm_addr, b"posix shm bytes").unwrap();
    // SysV message queue with queued messages, registered with the group.
    host.kernel.msgget(42).unwrap();
    host.kernel.msgsnd(42, 1, b"first message").unwrap();
    host.kernel.msgsnd(42, 9, b"second message").unwrap();

    let gid = host.persist("ipc-user", pid).unwrap();
    host.group_add_msgq(gid, 42).unwrap();
    let bd = host.checkpoint(gid, true, None).unwrap();
    host.clock.advance_to(bd.durable_at);

    let mut host = host.crash_and_reboot().unwrap();
    let store = host.sls.primary.clone();
    let head = store.borrow().head().unwrap();
    let r = host.restore(&store, head, RestoreMode::Eager).unwrap();
    let np = r.root_pid().unwrap();

    // POSIX shm contents and mapping wiring survived.
    let mut buf = [0u8; 15];
    host.kernel.mem_read(np, shm_addr, &mut buf).unwrap();
    assert_eq!(&buf, b"posix shm bytes");
    assert!(host.kernel.posix_shms.contains_key("/cache"));
    // The queue and both messages survived, order and types intact.
    let m = host.kernel.msgrcv(42, 9).unwrap();
    assert_eq!(m.data, b"second message");
    let m = host.kernel.msgrcv(42, 0).unwrap();
    assert_eq!(m.data, b"first message");
}

#[test]
fn remote_backend_replication_over_the_network() {
    // Attach a Remote backend (an object store behind a 10 GbE link),
    // replicate checkpoints to it, then restore from the remote copy —
    // the paper's "sending an application's incremental checkpoints to
    // both a local disk and a remote machine for replication".
    use aurora_hw::{LinkModel, RemoteDev};

    let mut host = new_host("h");
    let pid = host.kernel.spawn("replicated");
    let addr = host.kernel.mmap_anon(pid, 16 * 4096, false).unwrap();
    host.kernel.mem_write(pid, addr, b"replica me").unwrap();
    let gid = host.persist("replicated", pid).unwrap();

    let remote_store: StoreHandle = {
        let link = LinkModel::ten_gbe(host.clock.clone());
        let inner = ModelDev::nvme(host.clock.clone(), "remote-nvme", DEV_BLOCKS);
        let dev = Box::new(RemoteDev::new(link, inner));
        Rc::new(RefCell::new(
            ObjectStore::format(
                dev,
                StoreConfig {
                    journal_blocks: 1024,
                    ..StoreConfig::default()
                },
            )
            .unwrap(),
        ))
    };
    host.attach_backend(gid, BackendKind::Remote, remote_store.clone())
        .unwrap();

    // A full then an incremental checkpoint replicate to both backends.
    let t0 = host.clock.now();
    let bd1 = host.checkpoint(gid, true, None).unwrap();
    host.kernel.mem_write(pid, addr + 4096, b"delta").unwrap();
    let bd2 = host.checkpoint(gid, false, Some("replicated")).unwrap();
    // Remote durability includes network time: strictly later than local
    // submission time.
    assert!(bd1.durable_at > t0 && bd2.durable_at > t0);
    assert_eq!(remote_store.borrow().checkpoints().len(), 2);

    // Disaster: the whole primary machine is gone. Restore on a *new*
    // host from the remote copy alone.
    drop(host);
    let mut dr = new_host("dr-site");
    let remote_head = remote_store.borrow().head().unwrap();
    let r = dr
        .restore(&remote_store, remote_head, RestoreMode::Eager)
        .unwrap();
    let np = r.root_pid().unwrap();
    let mut buf = [0u8; 10];
    dr.kernel.mem_read(np, addr, &mut buf).unwrap();
    assert_eq!(&buf, b"replica me");
    let mut buf = [0u8; 5];
    dr.kernel.mem_read(np, addr + 4096, &mut buf).unwrap();
    assert_eq!(&buf, b"delta");
}

#[test]
fn signals_survive_checkpoint_restore() {
    let mut host = new_host("h");
    let pid = host.kernel.spawn("sighandler");
    host.kernel.mmap_anon(pid, 4096, false).unwrap();
    // Install a handler and leave a signal pending at checkpoint time.
    host.kernel.proc_mut(pid).unwrap().sig.actions[10] =
        aurora_posix::types::SigAction::Handler(0xCAFE);
    host.kernel.proc_mut(pid).unwrap().sig.blocked = 1 << 10;
    host.kernel.kill(pid, 10).unwrap();
    host.kernel.kill(pid, 2).unwrap();

    let gid = host.persist("sighandler", pid).unwrap();
    let bd = host.checkpoint(gid, true, None).unwrap();
    let store = host.sls.primary.clone();
    let r = host
        .restore(&store, bd.ckpt.unwrap(), RestoreMode::Eager)
        .unwrap();
    let np = r.root_pid().unwrap();
    let sig = &host.kernel.proc_ref(np).unwrap().sig;
    assert_eq!(sig.pending, (1 << 10) | (1 << 2));
    assert_eq!(sig.blocked, 1 << 10);
    assert_eq!(
        sig.actions[10],
        aurora_posix::types::SigAction::Handler(0xCAFE)
    );
    // Delivery semantics preserved: signal 2 deliverable, 10 blocked.
    assert_eq!(host.kernel.proc_mut(np).unwrap().sig.take_pending(), Some(2));
    assert_eq!(host.kernel.proc_mut(np).unwrap().sig.take_pending(), None);
}

#[test]
fn mctl_restore_hints_steer_paging() {
    let mut host = new_host("h");
    let pid = host.kernel.spawn("hinted");
    // Two regions: one hinted Eager, one hinted Lazy.
    let eager_region = host.kernel.mmap_anon(pid, 16 * 4096, false).unwrap();
    let lazy_region = host.kernel.mmap_anon(pid, 16 * 4096, false).unwrap();
    host.kernel
        .mem_write(pid, eager_region, &[1u8; 16 * 4096])
        .unwrap();
    host.kernel
        .mem_write(pid, lazy_region, &[2u8; 16 * 4096])
        .unwrap();
    host.sls_mctl(
        pid,
        eager_region,
        aurora_vm::SlsPolicy {
            exclude: false,
            restore: aurora_vm::map::RestoreHint::Eager,
        },
    )
    .unwrap();
    host.sls_mctl(
        pid,
        lazy_region,
        aurora_vm::SlsPolicy {
            exclude: false,
            restore: aurora_vm::map::RestoreHint::Lazy,
        },
    )
    .unwrap();
    let gid = host.persist("hinted", pid).unwrap();
    let bd = host.checkpoint(gid, true, None).unwrap();
    let store = host.sls.primary.clone();

    // Lazy restore still pages the Eager-hinted region in fully.
    let r = host
        .restore(&store, bd.ckpt.unwrap(), RestoreMode::Lazy)
        .unwrap();
    assert!(
        r.pages_prefetched >= 16,
        "eager-hinted region paged in ({} pages)",
        r.pages_prefetched
    );
    // Eager restore skips the Lazy-hinted region.
    let r = host
        .restore(&store, bd.ckpt.unwrap(), RestoreMode::Eager)
        .unwrap();
    let np = r.root_pid().unwrap();
    assert!(r.pages_prefetched < 40, "lazy-hinted region not paged in");
    // Its contents still arrive on demand.
    let mut buf = [0u8; 8];
    host.kernel.mem_read(np, lazy_region, &mut buf).unwrap();
    assert_eq!(buf, [2u8; 8]);
}

#[test]
fn zero_copy_container_fs_clone() {
    let mut host = new_host("h");
    let pid = host.kernel.spawn("app");
    // A container-like directory tree on SLSFS.
    let fd = host.kernel.open(pid, "/sls/image-root", true).unwrap();
    host.kernel
        .write(pid, fd, &vec![0x5Au8; 64 * 1024])
        .unwrap();
    host.kernel.close(pid, fd).unwrap();

    let before = host.sls.primary.borrow().blocks_in_use();
    host.clone_sls_path("/sls/image-root", "/sls/instance-1").unwrap();
    host.clone_sls_path("/sls/image-root", "/sls/instance-2").unwrap();
    assert_eq!(
        host.sls.primary.borrow().blocks_in_use(),
        before,
        "clones cost zero data blocks"
    );
    // Clones are real, independent files.
    let fd = host.kernel.open(pid, "/sls/instance-1", false).unwrap();
    assert_eq!(host.kernel.read(pid, fd, 16).unwrap(), vec![0x5Au8; 16]);
    host.kernel.write(pid, fd, b"diverged").unwrap();
    let fd2 = host.kernel.open(pid, "/sls/instance-2", false).unwrap();
    assert_eq!(host.kernel.read(pid, fd2, 8).unwrap(), vec![0x5Au8; 8]);
    // Cloning onto an existing name fails; tmpfs paths refused.
    assert!(host
        .clone_sls_path("/sls/image-root", "/sls/instance-1")
        .is_err());
    assert!(host.clone_sls_path("/sls/image-root", "/elsewhere").is_err());
}

#[test]
fn eviction_of_restored_images_drops_clean_and_pins_dirty() {
    // Lazily restored instances share a read-only image pager; under
    // memory pressure their CLEAN pages are dropped (re-faultable from
    // the image) while DIRTY pages stay pinned until a checkpoint
    // captures them — never written back through the shared pager,
    // which would leak one sibling's writes into another.
    let mut host = new_host("h");
    let pid = host.kernel.spawn("swappy");
    let addr = host.kernel.mmap_anon(pid, 32 * 4096, false).unwrap();
    for i in 0..32u64 {
        host.kernel
            .mem_write(pid, addr + i * 4096, format!("page-{i:02}").as_bytes())
            .unwrap();
    }
    let gid = host.persist("swappy", pid).unwrap();
    let bd = host.checkpoint(gid, true, None).unwrap();
    host.clock.advance_to(bd.durable_at);

    // Two sibling incarnations, lazy.
    let store = host.sls.primary.clone();
    let ra = host.restore(&store, bd.ckpt.unwrap(), RestoreMode::Lazy).unwrap();
    let rb = host.restore(&store, bd.ckpt.unwrap(), RestoreMode::Lazy).unwrap();
    let a = ra.root_pid().unwrap();
    let b = rb.root_pid().unwrap();
    let mut buf = [0u8; 7];
    for i in 0..32u64 {
        host.kernel.mem_read(a, addr + i * 4096, &mut buf).unwrap();
    }
    // A dirties two pages, then faces memory pressure.
    host.kernel.mem_write(a, addr, b"dirty-0").unwrap();
    host.kernel.mem_write(a, addr + 9 * 4096, b"dirty-9").unwrap();
    let obj = host.kernel.proc_ref(a).unwrap().map.find(addr).unwrap().object;
    host.kernel.vm.clear_referenced(obj);
    let ev = host.kernel.vm.evict_pages(obj, 32).unwrap();
    assert!(ev.evicted > 0, "clean pages dropped under pressure");
    assert!(ev.pinned >= 2, "dirty pages pinned, not written back");

    // A's dirty contents are intact; its dropped clean pages re-fault
    // from the image.
    host.kernel.mem_read(a, addr + 9 * 4096, &mut buf).unwrap();
    assert_eq!(&buf, b"dirty-9");
    host.kernel.mem_read(a, addr + 20 * 4096, &mut buf).unwrap();
    assert_eq!(&buf, b"page-20");
    // Sibling B never sees A's writes.
    host.kernel.mem_read(b, addr, &mut buf).unwrap();
    assert_eq!(&buf, b"page-00");
    host.kernel.mem_read(b, addr + 9 * 4096, &mut buf).unwrap();
    assert_eq!(&buf, b"page-09");

    // A checkpoint of A captures the pinned dirty pages; a restore of
    // that checkpoint reproduces A exactly.
    let gid2 = host.persist("swappy-2", a).unwrap();
    let bd2 = host.checkpoint(gid2, true, None).unwrap();
    host.clock.advance_to(bd2.durable_at);
    let r2 = host.restore(&store, bd2.ckpt.unwrap(), RestoreMode::Eager).unwrap();
    let fin = r2.root_pid().unwrap();
    host.kernel.mem_read(fin, addr, &mut buf).unwrap();
    assert_eq!(&buf, b"dirty-0");
    host.kernel.mem_read(fin, addr + 9 * 4096, &mut buf).unwrap();
    assert_eq!(&buf, b"dirty-9");
    host.kernel.mem_read(fin, addr + 20 * 4096, &mut buf).unwrap();
    assert_eq!(&buf, b"page-20");
}

#[test]
fn zombie_children_are_not_captured() {
    let mut host = new_host("h");
    let parent = host.kernel.spawn("parent");
    host.kernel.mmap_anon(parent, 4096, false).unwrap();
    let child = host.kernel.fork(parent).unwrap();
    let gid = host.persist("family", parent).unwrap();
    // The child dies before the checkpoint (zombie, not yet reaped).
    host.kernel.exit(child, 3).unwrap();
    let bd = host.checkpoint(gid, true, None).unwrap();

    let store = host.sls.primary.clone();
    let r = host
        .restore(&store, bd.ckpt.unwrap(), RestoreMode::Eager)
        .unwrap();
    assert_eq!(r.pid_map.len(), 1, "only the live parent restored");
    assert!(r.restored_pid(child.0).is_none());
    // The original parent can still reap its zombie afterwards.
    assert_eq!(host.kernel.waitpid(parent, child).unwrap(), 3);
}

#[test]
fn import_collision_is_rejected_cleanly() {
    let mut src = new_host("src");
    let pid = src.kernel.spawn("app");
    src.kernel.mmap_anon(pid, 4096, false).unwrap();
    let gid = src.persist("app", pid).unwrap();
    src.checkpoint(gid, true, None).unwrap();
    let stream = src.send_checkpoint(gid, None).unwrap();

    let mut dst = new_host("dst");
    dst.recv_checkpoint(&stream).unwrap();
    // Importing the same image again collides on object ids and must
    // fail without corrupting the store.
    assert!(dst.recv_checkpoint(&stream).is_err());
    assert!(dst.sls.primary.borrow().fsck().is_empty());
}

#[test]
fn orphan_reaping_respects_restored_references() {
    let mut host = new_host("h");
    let pid = host.kernel.spawn("anon-user");
    let kept = host.kernel.open(pid, "/sls/kept", true).unwrap();
    host.kernel.write(pid, kept, b"still referenced").unwrap();
    host.kernel.unlink_path(pid, "/sls/kept").unwrap();
    // A second unlinked-open file whose owner will NOT be restored.
    let orphan_owner = host.kernel.spawn("doomed");
    let orphan = host.kernel.open(orphan_owner, "/sls/orphan", true).unwrap();
    host.kernel.write(orphan_owner, orphan, b"abandoned").unwrap();
    host.kernel.unlink_path(orphan_owner, "/sls/orphan").unwrap();

    // Only the first process is persisted.
    let gid = host.persist("anon-user", pid).unwrap();
    let bd = host.checkpoint(gid, true, None).unwrap();
    host.clock.advance_to(bd.durable_at);

    let mut host = host.crash_and_reboot().unwrap();
    let store = host.sls.primary.clone();
    let head = store.borrow().head().unwrap();
    let r = host.restore(&store, head, RestoreMode::Eager).unwrap();
    let np = r.root_pid().unwrap();

    let blocks_before = host.sls.primary.borrow().blocks_in_use();
    host.reap_fs_orphans().unwrap();
    // The restored process's file survives and reads correctly...
    host.kernel.lseek(np, kept, 0).unwrap();
    assert_eq!(host.kernel.read(np, kept, 64).unwrap(), b"still referenced");
    // ...while the abandoned orphan's space was reclaimed.
    assert!(host.sls.primary.borrow().blocks_in_use() <= blocks_before);
}

#[test]
fn listener_backlog_survives_checkpoint() {
    // Pending (not yet accepted) connections are kernel state too.
    let mut host = new_host("h");
    let server = host.kernel.spawn("server");
    let lfd = host.kernel.tcp_listen(server, 7000).unwrap();
    let c1 = host.kernel.spawn("c1");
    host.kernel.tcp_connect(c1, 7000).unwrap();

    let gid = host.persist("server", server).unwrap();
    let bd = host.checkpoint(gid, true, None).unwrap();
    let store = host.sls.primary.clone();
    let r = host
        .restore(&store, bd.ckpt.unwrap(), RestoreMode::Eager)
        .unwrap();
    let ns = r.root_pid().unwrap();
    // The pending connection came from OUTSIDE the group: it is reset at
    // restore (the standard checkpoint/restore semantics for half-open
    // external connections), so accept reports nothing pending.
    assert!(host.kernel.tcp_accept(ns, lfd).is_err());
    // Kill the original; a fresh restore CAN rebind the port.
    host.kernel.exit(server, 0).unwrap();
    host.kernel.procs.remove(&server);
    host.kernel.ports.remove(&7000);
    let r2 = host
        .restore(&store, bd.ckpt.unwrap(), RestoreMode::Eager)
        .unwrap();
    let ns2 = r2.root_pid().unwrap();
    let c2 = host.kernel.spawn("c2");
    let cfd = host.kernel.tcp_connect(c2, 7000).unwrap();
    let conn2 = host.kernel.tcp_accept(ns2, lfd).unwrap();
    host.kernel.write(c2, cfd, b"fresh").unwrap();
    assert_eq!(host.kernel.read(ns2, conn2, 16).unwrap(), b"fresh");
}

#[test]
fn checkpoint_advances_commit_phase_metrics() {
    // The commit-phase counters feed the `sls info` line; a checkpoint
    // must fold at least one seal/barrier/flip delta into the global
    // metrics. METRICS is shared across the test binary, so assert
    // growth, not absolute values.
    let before = {
        let m = aurora_core::metrics::METRICS.lock();
        (
            m.commit_journal_seals,
            m.commit_extent_barriers,
            m.commit_superblock_flips,
        )
    };
    let mut host = new_host("phase-metrics");
    let pid = host.kernel.spawn("app");
    let addr = host.kernel.mmap_anon(pid, 4096, false).unwrap();
    host.kernel.mem_write(pid, addr, b"tick").unwrap();
    let gid = host.persist("app", pid).unwrap();
    host.checkpoint(gid, true, None).unwrap();
    let m = aurora_core::metrics::METRICS.lock();
    assert!(m.commit_journal_seals > before.0, "seals folded into METRICS");
    assert!(m.commit_extent_barriers > before.1, "barriers folded into METRICS");
    assert!(m.commit_superblock_flips > before.2, "flips folded into METRICS");
}

#[test]
fn fleet_sweep_survives_one_tenant_hard_error() {
    // Regression: `checkpoint_all` used to abort the remaining tenants
    // when one cycle returned a hard error. A sweep over two live
    // groups with a nonexistent group wedged between them must still
    // checkpoint both live tenants and report the error per-tenant.
    let mut host = new_host("sweep");
    let mut gids = Vec::new();
    for name in ["alpha", "omega"] {
        let pid = host.kernel.spawn(name);
        let addr = host.kernel.mmap_anon(pid, 4096, false).unwrap();
        host.kernel.mem_write(pid, addr, name.as_bytes()).unwrap();
        gids.push(host.persist(name, pid).unwrap());
    }
    let bogus = aurora_core::GroupId(9_999);
    let sweep = host.checkpoint_all(&[gids[0], bogus, gids[1]], true);
    assert_eq!(sweep.cycles.len(), 3);
    assert_eq!(sweep.committed(), 2, "live tenants must still checkpoint");
    assert_eq!(sweep.skipped(), 0);
    let errors = sweep.errors();
    assert_eq!(errors.len(), 1);
    assert_eq!(errors[0].0, bogus);
    // The sweep order is the request order: the error sits between the
    // two commits, proving the first error did not end the loop.
    assert!(sweep.cycles[0].result.is_ok());
    assert!(sweep.cycles[1].result.is_err());
    assert!(sweep.cycles[2].result.is_ok());
}
