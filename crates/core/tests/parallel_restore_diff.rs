//! Differential test for the batched restore pipeline.
//!
//! For random workloads, restoring a checkpoint through the batched
//! read pipeline (extent-coalesced reads + parallel hash stage) at 2
//! and 8 workers must produce *exactly* the memory image the serial
//! per-page loop (1 worker) does, for every restore mode — and once all
//! pages are touched, eager, lazy and lazy-prefetch restores must
//! converge on identical bytes. Worker count, extent batching and the
//! read cache are pure performance knobs — any divergence here is a
//! correctness bug.

// Test code asserts invariants; the workspace unwrap/expect denial is
// for production flush paths.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use std::collections::BTreeMap;

use aurora_core::restore::RestoreMode;
use aurora_core::Host;
use aurora_hw::ModelDev;
use aurora_objstore::StoreConfig;
use aurora_sim::SimClock;
use proptest::prelude::*;

const DEV_BLOCKS: u64 = 64 * 1024;

/// Pages in the workload's mapped region. Above the batched pipeline's
/// threshold so eager restores exercise the parallel path.
const REGION_PAGES: u64 = 96;

/// One workload entry: (page index, content seed). Low seed cardinality
/// on purpose so identical pages (and dedup-shared blocks) are common.
type Write = (u64, u64);

fn write_strategy() -> impl Strategy<Value = Write> {
    (0u64..REGION_PAGES, 0u64..8)
}

/// Builds the deterministic world for `writes`, checkpoints it, crashes
/// the machine, and restores with `mode` at `workers`. Returns
/// (restored memory digest, pages_prefetched).
///
/// Every variant rebuilds the world from scratch: the workload is
/// deterministic, so the checkpoint images are identical and the
/// restored memory may be compared across variants byte for byte.
fn run_variant(writes: &[Write], mode: RestoreMode, workers: usize) -> (u64, u64) {
    let clock = SimClock::new();
    let dev = Box::new(ModelDev::nvme(clock, "nvme0", DEV_BLOCKS));
    let mut host = Host::boot(
        "diff",
        dev,
        StoreConfig {
            journal_blocks: 2048,
            ..StoreConfig::default()
        },
    )
    .unwrap();
    let pid = host.kernel.spawn("workload");
    let addr = host
        .kernel
        .mmap_anon(pid, REGION_PAGES * 4096, false)
        .unwrap();
    // Deterministic base pattern on every page, then the random writes.
    for i in 0..REGION_PAGES {
        let base = [(i % 251) as u8; 32];
        host.kernel.mem_write(pid, addr + i * 4096, &base).unwrap();
    }
    for &(idx, seed) in writes {
        let marker = [0xB0 + (seed as u8), (idx % 250) as u8, 0x5E, seed as u8];
        host.kernel
            .mem_write(pid, addr + idx * 4096 + 64 + seed * 8, &marker)
            .unwrap();
    }
    let gid = host.persist("workload", pid).unwrap();
    let bd = host.checkpoint(gid, true, Some("snap")).unwrap();
    host.clock.advance_to(bd.durable_at);
    let ckpt = bd.ckpt.unwrap();

    // The machine dies: the image cache, pagers and processes are gone,
    // so every variant starts from the same cold store.
    let mut host = host.crash_and_reboot().unwrap();
    host.sls.restore_workers = workers;
    let store = host.sls.primary.clone();
    let r = host.restore(&store, ckpt, mode).unwrap();
    let new_pid = r.restored_pid(pid.0).unwrap();

    // Touch every page (lazy modes fault the remainder in) and digest.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut buf = vec![0u8; 4096];
    for i in 0..REGION_PAGES {
        host.kernel.mem_read(new_pid, addr + i * 4096, &mut buf).unwrap();
        for &b in &buf {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    (h, r.pages_prefetched)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The batched pipeline at 2 and 8 workers matches the serial
    /// 1-worker path exactly (digest and prefetch count) for every
    /// mode, and all modes converge on the same final bytes.
    #[test]
    fn parallel_restore_matches_serial(
        writes in proptest::collection::vec(write_strategy(), 1..80)
    ) {
        let mut digests = Vec::new();
        for mode in [RestoreMode::Eager, RestoreMode::Lazy, RestoreMode::LazyPrefetch] {
            let reference = run_variant(&writes, mode, 1);
            let mut results = BTreeMap::new();
            for workers in [2usize, 8] {
                results.insert(workers, run_variant(&writes, mode, workers));
            }
            for (workers, got) in results {
                prop_assert_eq!(
                    got, reference,
                    "divergence at {} workers in {:?}: (digest, pages_prefetched)",
                    workers, mode
                );
            }
            digests.push(reference.0);
        }
        // Once touched, every mode holds the same bytes.
        prop_assert_eq!(digests[0], digests[1], "eager vs lazy");
        prop_assert_eq!(digests[0], digests[2], "eager vs lazy-prefetch");
    }
}

/// The batched path actually engages: an eager 4-worker restore of a
/// REGION_PAGES image reports coalesced extent reads and a populated
/// read cache, and a sibling restore wires straight from the shared
/// image cache without device reads.
#[test]
fn batched_restore_reports_extents_and_shares_frames() {
    let writes: Vec<Write> = (0..REGION_PAGES).map(|i| (i, i % 5)).collect();
    let clock = SimClock::new();
    let dev = Box::new(ModelDev::nvme(clock, "nvme0", DEV_BLOCKS));
    let mut host = Host::boot(
        "batched",
        dev,
        StoreConfig {
            journal_blocks: 2048,
            ..StoreConfig::default()
        },
    )
    .unwrap();
    let pid = host.kernel.spawn("workload");
    let addr = host
        .kernel
        .mmap_anon(pid, REGION_PAGES * 4096, false)
        .unwrap();
    for &(idx, seed) in &writes {
        host.kernel
            .mem_write(pid, addr + idx * 4096, &[seed as u8 + 1; 16])
            .unwrap();
    }
    let gid = host.persist("workload", pid).unwrap();
    let bd = host.checkpoint(gid, true, None).unwrap();
    host.clock.advance_to(bd.durable_at);
    let ckpt = bd.ckpt.unwrap();
    let mut host = host.crash_and_reboot().unwrap();
    host.sls.restore_workers = 4;
    let store = host.sls.primary.clone();

    let first = host.restore(&store, ckpt, RestoreMode::Eager).unwrap();
    assert_eq!(first.restore_workers, 4);
    assert!(first.pages_prefetched >= REGION_PAGES);
    assert!(first.extents_read > 0, "device reads must be extent-coalesced");
    assert!(
        first.cache_misses > first.extents_read,
        "extents carry multiple blocks: {} misses over {} extents",
        first.cache_misses,
        first.extents_read
    );

    // A sibling instance restored from the same image shares frames
    // through the image cache: no further device reads at all.
    let second = host.restore(&store, ckpt, RestoreMode::Eager).unwrap();
    assert!(second.pages_prefetched >= REGION_PAGES);
    assert_eq!(second.extents_read, 0, "sibling restore must not touch the device");
    assert_eq!(second.cache_misses, 0);
}

/// The read-cache capacity knob is part of the store's runtime config:
/// a capacity set before a crash governs the rebooted store too, and
/// residency stays bounded by it across warm restores.
#[test]
fn read_cache_capacity_knob_survives_reboot() {
    let clock = SimClock::new();
    let dev = Box::new(ModelDev::nvme(clock, "nvme0", DEV_BLOCKS));
    let host = Host::boot(
        "knob",
        dev,
        StoreConfig {
            journal_blocks: 2048,
            ..StoreConfig::default()
        },
    )
    .unwrap();
    host.sls.primary.borrow_mut().set_read_cache_capacity(17);
    let host = host.crash_and_reboot().unwrap();
    let store = host.sls.primary.borrow();
    assert_eq!(store.read_cache_capacity(), 17);
    assert!(store.read_cache_len() <= 17);
}
