//! Differential test for continuous checkpoint replication.
//!
//! For random workloads checkpointed over several epochs, a standby fed
//! through a *misbehaving* link (seeded drops, duplicates, reordering
//! and transient partitions) must — once the ack watermark catches up —
//! promote to *exactly* the restored memory image and live-object
//! census of the primary itself. Retransmission, reassembly and
//! cumulative acking are pure transport machinery; any divergence in
//! the promoted bytes or object table is a correctness bug in the
//! replication protocol.

// Test code asserts invariants; the workspace unwrap/expect denial is
// for production flush paths.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use aurora_core::restore::RestoreMode;
use aurora_core::{Host, ReplConfig};
use aurora_hw::{LinkFaultRates, ModelDev};
use aurora_objstore::StoreConfig;
use aurora_sim::SimClock;
use proptest::prelude::*;

const DEV_BLOCKS: u64 = 64 * 1024;

/// Pages in the workload's mapped region — small enough to keep many
/// epochs fast, large enough that every epoch spans several frames.
const REGION_PAGES: u64 = 16;

/// Checkpoint epochs per case.
const EPOCHS: u32 = 5;

/// One workload entry: (epoch, page index, content seed).
type Write = (u32, u64, u64);

fn write_strategy() -> impl Strategy<Value = Write> {
    (0u32..EPOCHS, 0u64..REGION_PAGES, 0u64..8)
}

fn store_config() -> StoreConfig {
    StoreConfig {
        journal_blocks: 2048,
        materialize_data: true,
        ..StoreConfig::default()
    }
}

/// Digest of the restored region, FNV-1a over every page's bytes.
fn digest_region(host: &mut Host, pid: aurora_posix::Pid, addr: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut buf = vec![0u8; 4096];
    for i in 0..REGION_PAGES {
        host.kernel.mem_read(pid, addr + i * 4096, &mut buf).unwrap();
        for &b in &buf {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Runs the workload with a standby behind a hostile link, converges,
/// and returns ((primary digest, census), (promoted digest, census)).
fn run_case(writes: &[Write], seed: u64) -> ((u64, usize), (u64, usize)) {
    let clock = SimClock::new();
    let dev = Box::new(ModelDev::nvme(clock, "nvme0", DEV_BLOCKS));
    let mut host = Host::boot("primary", dev, store_config()).unwrap();
    host.attach_standby(ReplConfig {
        seed,
        rates: LinkFaultRates::hostile(),
        frame_bytes: 2048,
        max_lag_epochs: u64::MAX, // convergence is asserted, not policed
        standby_store: store_config(),
        ..ReplConfig::default()
    })
    .unwrap();

    let pid = host.kernel.spawn("workload");
    let addr = host
        .kernel
        .mmap_anon(pid, REGION_PAGES * 4096, false)
        .unwrap();
    let gid = host.persist("workload", pid).unwrap();

    for epoch in 0..EPOCHS {
        // Deterministic per-epoch base so every epoch dirties pages,
        // then this epoch's slice of the random writes.
        let base = [0xE0 + epoch as u8; 16];
        host.kernel.mem_write(pid, addr, &base).unwrap();
        for &(e, idx, wseed) in writes.iter().filter(|(e, _, _)| *e == epoch) {
            let marker = [0xB0 + wseed as u8, (idx % 250) as u8, e as u8, 0x5E];
            host.kernel
                .mem_write(pid, addr + idx * 4096 + 64 + wseed * 8, &marker)
                .unwrap();
        }
        let bd = host
            .checkpoint(gid, epoch == 0, Some(&format!("e{epoch}")))
            .unwrap();
        assert!(bd.outcome.committed());
        host.clock.advance_to(bd.durable_at);
    }

    // The misbehaving link must still converge: retransmission and
    // cumulative acks are the whole point.
    {
        let repl = host.replication_mut().unwrap();
        assert!(
            repl.run_until_idle(1_000_000),
            "hostile link failed to converge (seed {seed})"
        );
        assert_eq!(repl.acked_epoch(), u64::from(EPOCHS));
        assert_eq!(repl.lag_epochs(), 0);
    }

    // Reference: the primary restored from its own head.
    let repl = host.detach_standby().unwrap();
    let store = host.sls.primary.clone();
    let head = store.borrow().head().unwrap();
    let r = host.restore(&store, head, RestoreMode::Eager).unwrap();
    let ppid = r.restored_pid(pid.0).unwrap();
    let primary = (
        digest_region(&mut host, ppid, addr),
        store.borrow().live_object_ids().len(),
    );
    drop(store);
    drop(host);

    // Candidate: the standby promoted and restored from *its* head.
    let (mut standby, pr) = aurora_core::promote_to_host(repl, "standby").unwrap();
    assert_eq!(pr.apply_errors, 0, "no import may fail (seed {seed})");
    assert_eq!(pr.promoted_epoch, u64::from(EPOCHS));
    let sstore = standby.sls.primary.clone();
    let problems = sstore.borrow().scrub();
    assert!(problems.is_empty(), "promoted store unsound: {problems:?}");
    let shead = sstore.borrow().head().unwrap();
    let r = standby.restore(&sstore, shead, RestoreMode::Eager).unwrap();
    let spid = r.restored_pid(pid.0).unwrap();
    let promoted = (
        digest_region(&mut standby, spid, addr),
        sstore.borrow().live_object_ids().len(),
    );
    (primary, promoted)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// A standby fed through a hostile link converges on the exact
    /// digest and object census of the primary.
    #[test]
    fn standby_converges_with_primary(
        writes in proptest::collection::vec(write_strategy(), 1..60),
        seed in 0u64..1_000_000,
    ) {
        let (primary, promoted) = run_case(&writes, seed);
        prop_assert_eq!(
            promoted, primary,
            "standby diverged under seed {}: (digest, live objects)",
            seed
        );
    }
}
