//! Per-object serializers.
//!
//! Every kernel primitive serializes into its own versioned record —
//! the design that distinguishes Aurora from CRIU-style checkpointers:
//! objects are captured "as seen by the kernel", independently, with
//! cross-references expressed through stable identifiers (original
//! kernel ids for files/pipes/sockets, store object ids for memory).
//! The restore path re-materializes the graph in a fresh kernel,
//! remapping identifiers as it goes.
//!
//! Blob keys on the store are `g<gid>/<kind>/<id>`, plus one
//! `g<gid>/manifest` index per checkpoint.

use aurora_posix::types::{CpuState, SigAction, NSIG};
use aurora_sim::codec::{Decoder, Encoder};
use aurora_sim::error::{Error, Result};

/// Record format version (bumped on layout changes).
pub const RECORD_VERSION: u16 = 1;

/// Blob key helpers.
pub fn key_manifest(gid: u32) -> String {
    format!("g{gid}/manifest")
}
pub fn key_proc(gid: u32, pid: u32) -> String {
    format!("g{gid}/proc/{pid}")
}
pub fn key_file(gid: u32, id: u32) -> String {
    format!("g{gid}/file/{id}")
}
pub fn key_pipe(gid: u32, id: u32) -> String {
    format!("g{gid}/pipe/{id}")
}
pub fn key_usock(gid: u32, id: u32) -> String {
    format!("g{gid}/usock/{id}")
}
pub fn key_isock(gid: u32, id: u32) -> String {
    format!("g{gid}/isock/{id}")
}
pub fn key_shm(gid: u32, key: i32) -> String {
    format!("g{gid}/shm/{key}")
}
pub fn key_msgq(gid: u32, key: i32) -> String {
    format!("g{gid}/msgq/{key}")
}
pub fn key_pshm(gid: u32, name: &str) -> String {
    format!("g{gid}/pshm/{name}")
}
pub fn key_vmo(gid: u32, oid: u64) -> String {
    format!("g{gid}/vmo/{oid}")
}
pub fn key_ntlog(gid: u32, id: u64) -> String {
    format!("g{gid}/ntlog/{id}")
}

/// The checkpoint index: which records exist and group bookkeeping.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ManifestRec {
    /// Group id at capture time.
    pub gid: u32,
    /// Group name.
    pub name: String,
    /// Root pid at capture time.
    pub root: u32,
    /// Member pids in tree order.
    pub pids: Vec<u32>,
    /// Open-file description ids captured.
    pub files: Vec<u32>,
    /// Pipes captured.
    pub pipes: Vec<u32>,
    /// Unix sockets captured.
    pub usocks: Vec<u32>,
    /// TCP sockets captured.
    pub isocks: Vec<u32>,
    /// SysV shm keys captured.
    pub shms: Vec<i32>,
    /// SysV msg queue keys captured.
    pub msgqs: Vec<i32>,
    /// POSIX shm names captured.
    pub pshms: Vec<String>,
    /// Store objects holding memory, in creation order.
    pub vmos: Vec<u64>,
    /// Persistent logs of the group.
    pub ntlogs: Vec<u64>,
    /// External-consistency epoch this checkpoint covers.
    pub ec_seq: u64,
    /// Object-id allocator state.
    pub next_oid: u64,
    /// Container name + root, when the group is a container.
    pub container: Option<(String, String)>,
}

impl ManifestRec {
    /// Encodes the manifest.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.u16(RECORD_VERSION);
        e.u32(self.gid);
        e.str(&self.name);
        e.u32(self.root);
        e.seq(&self.pids, |e, v| e.u32(*v));
        e.seq(&self.files, |e, v| e.u32(*v));
        e.seq(&self.pipes, |e, v| e.u32(*v));
        e.seq(&self.usocks, |e, v| e.u32(*v));
        e.seq(&self.isocks, |e, v| e.u32(*v));
        e.seq(&self.shms, |e, v| e.i64(*v as i64));
        e.seq(&self.msgqs, |e, v| e.i64(*v as i64));
        e.seq(&self.pshms, |e, v| e.str(v));
        e.seq(&self.vmos, |e, v| e.u64(*v));
        e.seq(&self.ntlogs, |e, v| e.u64(*v));
        e.u64(self.ec_seq);
        e.u64(self.next_oid);
        e.option(self.container.as_ref(), |e, (n, r)| {
            e.str(n);
            e.str(r);
        });
        e.into_vec()
    }

    /// Decodes a manifest.
    pub fn decode(bytes: &[u8]) -> Result<ManifestRec> {
        let mut d = Decoder::new(bytes);
        let version = d.u16()?;
        if version != RECORD_VERSION {
            return Err(Error::bad_image(format!("manifest version {version}")));
        }
        Ok(ManifestRec {
            gid: d.u32()?,
            name: d.str()?.to_string(),
            root: d.u32()?,
            pids: d.seq(|d| d.u32())?,
            files: d.seq(|d| d.u32())?,
            pipes: d.seq(|d| d.u32())?,
            usocks: d.seq(|d| d.u32())?,
            isocks: d.seq(|d| d.u32())?,
            shms: d.seq(|d| d.i64().map(|v| v as i32))?,
            msgqs: d.seq(|d| d.i64().map(|v| v as i32))?,
            pshms: d.seq(|d| d.str().map(str::to_string))?,
            vmos: d.seq(|d| d.u64())?,
            ntlogs: d.seq(|d| d.u64())?,
            ec_seq: d.u64()?,
            next_oid: d.u64()?,
            container: d.option(|d| {
                let n = d.str()?.to_string();
                let r = d.str()?.to_string();
                Ok((n, r))
            })?,
        })
    }
}

fn encode_cpu(e: &mut Encoder, cpu: &CpuState) {
    for r in cpu.regs {
        e.u64(r);
    }
    e.u64(cpu.pc);
    e.u64(cpu.sp);
    e.u64(cpu.rflags);
    e.u64(cpu.fsbase);
}

fn decode_cpu(d: &mut Decoder<'_>) -> Result<CpuState> {
    let mut regs = [0u64; 16];
    for r in regs.iter_mut() {
        *r = d.u64()?;
    }
    Ok(CpuState {
        regs,
        pc: d.u64()?,
        sp: d.u64()?,
        rflags: d.u64()?,
        fsbase: d.u64()?,
    })
}

/// One address-space map entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MapEntryRec {
    /// Virtual range.
    pub start: u64,
    /// End of the range.
    pub end: u64,
    /// Store object backing the mapped VM object.
    pub oid: u64,
    /// Page offset into the object.
    pub offset_pages: u64,
    /// Readable.
    pub read: bool,
    /// Writable.
    pub write: bool,
    /// Shared mapping.
    pub shared: bool,
    /// Fork-COW pending.
    pub needs_copy: bool,
    /// Excluded from checkpoints (`sls_mctl`).
    pub exclude: bool,
    /// Restore hint: 0 auto, 1 eager, 2 lazy.
    pub restore_hint: u8,
}

/// A process record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcRec {
    /// Original pid.
    pub pid: u32,
    /// Original parent pid (0 when the parent is outside the group).
    pub ppid: u32,
    /// Command name.
    pub name: String,
    /// Working directory.
    pub cwd: String,
    /// uid/gid.
    pub uid: u32,
    /// Group id.
    pub gid: u32,
    /// Pending signal mask.
    pub sig_pending: u32,
    /// Blocked signal mask.
    pub sig_blocked: u32,
    /// Signal actions: `(0)` default, `(1)` ignore, `(2, addr)` handler.
    pub sig_actions: Vec<(u8, u64)>,
    /// Threads with their CPU state.
    pub threads: Vec<(u32, CpuState)>,
    /// Descriptor table: `(fd, file id)`.
    pub fds: Vec<(u32, u32)>,
    /// Address-space entries.
    pub map: Vec<MapEntryRec>,
}

impl ProcRec {
    /// Encodes the record.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.u16(RECORD_VERSION);
        e.u32(self.pid);
        e.u32(self.ppid);
        e.str(&self.name);
        e.str(&self.cwd);
        e.u32(self.uid);
        e.u32(self.gid);
        e.u32(self.sig_pending);
        e.u32(self.sig_blocked);
        e.seq(&self.sig_actions, |e, (tag, addr)| {
            e.u8(*tag);
            e.u64(*addr);
        });
        e.seq(&self.threads, |e, (tid, cpu)| {
            e.u32(*tid);
            encode_cpu(e, cpu);
        });
        e.seq(&self.fds, |e, (fd, file)| {
            e.u32(*fd);
            e.u32(*file);
        });
        e.seq(&self.map, |e, m| {
            e.u64(m.start);
            e.u64(m.end);
            e.u64(m.oid);
            e.u64(m.offset_pages);
            e.bool(m.read);
            e.bool(m.write);
            e.bool(m.shared);
            e.bool(m.needs_copy);
            e.bool(m.exclude);
            e.u8(m.restore_hint);
        });
        e.into_vec()
    }

    /// Decodes the record.
    pub fn decode(bytes: &[u8]) -> Result<ProcRec> {
        let mut d = Decoder::new(bytes);
        let version = d.u16()?;
        if version != RECORD_VERSION {
            return Err(Error::bad_image(format!("proc record version {version}")));
        }
        Ok(ProcRec {
            pid: d.u32()?,
            ppid: d.u32()?,
            name: d.str()?.to_string(),
            cwd: d.str()?.to_string(),
            uid: d.u32()?,
            gid: d.u32()?,
            sig_pending: d.u32()?,
            sig_blocked: d.u32()?,
            sig_actions: d.seq(|d| {
                let tag = d.u8()?;
                let addr = d.u64()?;
                Ok((tag, addr))
            })?,
            threads: d.seq(|d| {
                let tid = d.u32()?;
                let cpu = decode_cpu(d)?;
                Ok((tid, cpu))
            })?,
            fds: d.seq(|d| {
                let fd = d.u32()?;
                let file = d.u32()?;
                Ok((fd, file))
            })?,
            map: d.seq(|d| {
                Ok(MapEntryRec {
                    start: d.u64()?,
                    end: d.u64()?,
                    oid: d.u64()?,
                    offset_pages: d.u64()?,
                    read: d.bool()?,
                    write: d.bool()?,
                    shared: d.bool()?,
                    needs_copy: d.bool()?,
                    exclude: d.bool()?,
                    restore_hint: d.u8()?,
                })
            })?,
        })
    }

    /// Converts signal actions to the kernel representation.
    pub fn sig_actions_array(&self) -> [SigAction; NSIG] {
        let mut actions = [SigAction::Default; NSIG];
        // `zip` bounds the walk by both lengths, so no index can slip.
        for (slot, (tag, addr)) in actions.iter_mut().zip(self.sig_actions.iter()) {
            *slot = match tag {
                1 => SigAction::Ignore,
                2 => SigAction::Handler(*addr),
                _ => SigAction::Default,
            };
        }
        actions
    }
}

/// Open-file description kinds on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FileKindRec {
    /// SLSFS vnode (node id within the mount).
    Vnode(u64),
    /// Pipe read end.
    PipeRead(u32),
    /// Pipe write end.
    PipeWrite(u32),
    /// Unix socket.
    UnixSock(u32),
    /// TCP socket.
    InetSock(u32),
    /// POSIX shared memory object.
    PosixShm(String),
    /// Aurora persistent log.
    NtLog(u64),
}

/// An open-file description record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileRec {
    /// Original description id.
    pub id: u32,
    /// Kind + referent.
    pub kind: FileKindRec,
    /// Shared offset.
    pub offset: u64,
    /// Flags.
    pub flags: u32,
    /// External consistency enabled.
    pub ec: bool,
}

impl FileRec {
    /// Encodes the record.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.u16(RECORD_VERSION);
        e.u32(self.id);
        match &self.kind {
            FileKindRec::Vnode(n) => {
                e.u8(0);
                e.u64(*n);
            }
            FileKindRec::PipeRead(p) => {
                e.u8(1);
                e.u32(*p);
            }
            FileKindRec::PipeWrite(p) => {
                e.u8(2);
                e.u32(*p);
            }
            FileKindRec::UnixSock(s) => {
                e.u8(3);
                e.u32(*s);
            }
            FileKindRec::InetSock(s) => {
                e.u8(4);
                e.u32(*s);
            }
            FileKindRec::PosixShm(n) => {
                e.u8(5);
                e.str(n);
            }
            FileKindRec::NtLog(id) => {
                e.u8(6);
                e.u64(*id);
            }
        }
        e.u64(self.offset);
        e.u32(self.flags);
        e.bool(self.ec);
        e.into_vec()
    }

    /// Decodes the record.
    pub fn decode(bytes: &[u8]) -> Result<FileRec> {
        let mut d = Decoder::new(bytes);
        let version = d.u16()?;
        if version != RECORD_VERSION {
            return Err(Error::bad_image(format!("file record version {version}")));
        }
        let id = d.u32()?;
        let kind = match d.u8()? {
            0 => FileKindRec::Vnode(d.u64()?),
            1 => FileKindRec::PipeRead(d.u32()?),
            2 => FileKindRec::PipeWrite(d.u32()?),
            3 => FileKindRec::UnixSock(d.u32()?),
            4 => FileKindRec::InetSock(d.u32()?),
            5 => FileKindRec::PosixShm(d.str()?.to_string()),
            6 => FileKindRec::NtLog(d.u64()?),
            t => return Err(Error::corrupt(format!("bad file kind {t}"))),
        };
        Ok(FileRec {
            id,
            kind,
            offset: d.u64()?,
            flags: d.u32()?,
            ec: d.bool()?,
        })
    }
}

/// A pipe record (buffered bytes included).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipeRec {
    /// Original pipe id.
    pub id: u32,
    /// Buffered-but-unread bytes.
    pub buf: Vec<u8>,
    /// Read end open.
    pub read_open: bool,
    /// Write end open.
    pub write_open: bool,
}

impl PipeRec {
    /// Encodes the record.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.u16(RECORD_VERSION);
        e.u32(self.id);
        e.bytes(&self.buf);
        e.bool(self.read_open);
        e.bool(self.write_open);
        e.into_vec()
    }

    /// Decodes the record.
    pub fn decode(bytes: &[u8]) -> Result<PipeRec> {
        let mut d = Decoder::new(bytes);
        let version = d.u16()?;
        if version != RECORD_VERSION {
            return Err(Error::bad_image(format!("pipe record version {version}")));
        }
        Ok(PipeRec {
            id: d.u32()?,
            buf: d.bytes()?.to_vec(),
            read_open: d.bool()?,
            write_open: d.bool()?,
        })
    }
}

/// Unix-socket connection state on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SockStateRec {
    /// Not connected.
    Unbound,
    /// Listening.
    Listening,
    /// Connected to peer id.
    Connected(u32),
    /// Peer gone.
    Disconnected,
}

fn encode_sock_state(e: &mut Encoder, s: &SockStateRec) {
    match s {
        SockStateRec::Unbound => e.u8(0),
        SockStateRec::Listening => e.u8(1),
        SockStateRec::Connected(p) => {
            e.u8(2);
            e.u32(*p);
        }
        SockStateRec::Disconnected => e.u8(3),
    }
}

fn decode_sock_state(d: &mut Decoder<'_>) -> Result<SockStateRec> {
    Ok(match d.u8()? {
        0 => SockStateRec::Unbound,
        1 => SockStateRec::Listening,
        2 => SockStateRec::Connected(d.u32()?),
        3 => SockStateRec::Disconnected,
        t => return Err(Error::corrupt(format!("bad sock state {t}"))),
    })
}

/// A Unix-domain socket record, including in-flight descriptor-bearing
/// messages (the CRIU-took-7-years case).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UsockRec {
    /// Original socket id.
    pub id: u32,
    /// Connection state.
    pub state: SockStateRec,
    /// Bound pathname.
    pub bound_path: Option<String>,
    /// Queued messages: `(bytes, file ids in flight)`.
    pub recv: Vec<(Vec<u8>, Vec<u32>)>,
    /// Pending connections.
    pub backlog: Vec<u32>,
}

impl UsockRec {
    /// Encodes the record.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.u16(RECORD_VERSION);
        e.u32(self.id);
        encode_sock_state(&mut e, &self.state);
        e.option(self.bound_path.as_ref(), |e, p| e.str(p));
        e.seq(&self.recv, |e, (bytes, fds)| {
            e.bytes(bytes);
            e.seq(fds, |e, f| e.u32(*f));
        });
        e.seq(&self.backlog, |e, b| e.u32(*b));
        e.into_vec()
    }

    /// Decodes the record.
    pub fn decode(bytes: &[u8]) -> Result<UsockRec> {
        let mut d = Decoder::new(bytes);
        let version = d.u16()?;
        if version != RECORD_VERSION {
            return Err(Error::bad_image(format!("usock record version {version}")));
        }
        Ok(UsockRec {
            id: d.u32()?,
            state: decode_sock_state(&mut d)?,
            bound_path: d.option(|d| d.str().map(str::to_string))?,
            recv: d.seq(|d| {
                let bytes = d.bytes()?.to_vec();
                let fds = d.seq(|d| d.u32())?;
                Ok((bytes, fds))
            })?,
            backlog: d.seq(|d| d.u32())?,
        })
    }
}

/// A TCP socket record. Held (externally unreleased) output is *not*
/// serialized: external consistency guarantees nobody has seen it, so a
/// restore legitimately rolls it back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IsockRec {
    /// Original socket id.
    pub id: u32,
    /// Connection state.
    pub state: SockStateRec,
    /// Bound local port.
    pub port: Option<u16>,
    /// Original owner pid.
    pub owner: u32,
    /// Buffered received bytes.
    pub recv: Vec<u8>,
    /// Pending connections.
    pub backlog: Vec<u32>,
}

impl IsockRec {
    /// Encodes the record.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.u16(RECORD_VERSION);
        e.u32(self.id);
        encode_sock_state(&mut e, &self.state);
        e.option(self.port.as_ref(), |e, p| e.u16(*p));
        e.u32(self.owner);
        e.bytes(&self.recv);
        e.seq(&self.backlog, |e, b| e.u32(*b));
        e.into_vec()
    }

    /// Decodes the record.
    pub fn decode(bytes: &[u8]) -> Result<IsockRec> {
        let mut d = Decoder::new(bytes);
        let version = d.u16()?;
        if version != RECORD_VERSION {
            return Err(Error::bad_image(format!("isock record version {version}")));
        }
        Ok(IsockRec {
            id: d.u32()?,
            state: decode_sock_state(&mut d)?,
            port: d.option(|d| d.u16())?,
            owner: d.u32()?,
            recv: d.bytes()?.to_vec(),
            backlog: d.seq(|d| d.u32())?,
        })
    }
}

/// A SysV shared-memory record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShmRec {
    /// Segment key.
    pub key: i32,
    /// Size in bytes.
    pub size: u64,
    /// Store object holding the pages.
    pub oid: u64,
    /// IPC_RMID pending.
    pub removed: bool,
}

impl ShmRec {
    /// Encodes the record.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.u16(RECORD_VERSION);
        e.i64(self.key as i64);
        e.u64(self.size);
        e.u64(self.oid);
        e.bool(self.removed);
        e.into_vec()
    }

    /// Decodes the record.
    pub fn decode(bytes: &[u8]) -> Result<ShmRec> {
        let mut d = Decoder::new(bytes);
        let version = d.u16()?;
        if version != RECORD_VERSION {
            return Err(Error::bad_image(format!("shm record version {version}")));
        }
        Ok(ShmRec {
            key: d.i64()? as i32,
            size: d.u64()?,
            oid: d.u64()?,
            removed: d.bool()?,
        })
    }
}

/// A SysV message-queue record with its queued messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MsgqRec {
    /// Queue key.
    pub key: i32,
    /// Messages in order: `(mtype, payload)`.
    pub msgs: Vec<(i64, Vec<u8>)>,
}

impl MsgqRec {
    /// Encodes the record.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.u16(RECORD_VERSION);
        e.i64(self.key as i64);
        e.seq(&self.msgs, |e, (t, data)| {
            e.i64(*t);
            e.bytes(data);
        });
        e.into_vec()
    }

    /// Decodes the record.
    pub fn decode(bytes: &[u8]) -> Result<MsgqRec> {
        let mut d = Decoder::new(bytes);
        let version = d.u16()?;
        if version != RECORD_VERSION {
            return Err(Error::bad_image(format!("msgq record version {version}")));
        }
        Ok(MsgqRec {
            key: d.i64()? as i32,
            msgs: d.seq(|d| {
                let t = d.i64()?;
                let data = d.bytes()?.to_vec();
                Ok((t, data))
            })?,
        })
    }
}

/// A POSIX shared-memory record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PshmRec {
    /// Object name.
    pub name: String,
    /// Size in bytes.
    pub size: u64,
    /// Store object holding the pages.
    pub oid: u64,
    /// Unlinked but open.
    pub unlinked: bool,
    /// Open references.
    pub open_refs: u32,
}

impl PshmRec {
    /// Encodes the record.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.u16(RECORD_VERSION);
        e.str(&self.name);
        e.u64(self.size);
        e.u64(self.oid);
        e.bool(self.unlinked);
        e.u32(self.open_refs);
        e.into_vec()
    }

    /// Decodes the record.
    pub fn decode(bytes: &[u8]) -> Result<PshmRec> {
        let mut d = Decoder::new(bytes);
        let version = d.u16()?;
        if version != RECORD_VERSION {
            return Err(Error::bad_image(format!("pshm record version {version}")));
        }
        Ok(PshmRec {
            name: d.str()?.to_string(),
            size: d.u64()?,
            oid: d.u64()?,
            unlinked: d.bool()?,
            open_refs: d.u32()?,
        })
    }
}

/// A VM-object record: how to rebuild one node of the memory hierarchy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VmoRec {
    /// Store object id (also the identity in map entries).
    pub oid: u64,
    /// Size in pages.
    pub size_pages: u64,
    /// Kind: 0 anonymous, 1 shadow, 2 shared-mem, 3 vnode.
    pub kind: u8,
    /// Backing object (shadow chains), as `(oid, page offset)`.
    pub backing: Option<(u64, u64)>,
    /// Hottest page indices at capture (restore prefetch order).
    pub hot: Vec<u64>,
    /// Resident pages at capture (statistics / eager restore sizing).
    pub resident: u64,
}

impl VmoRec {
    /// Encodes the record.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.u16(RECORD_VERSION);
        e.u64(self.oid);
        e.u64(self.size_pages);
        e.u8(self.kind);
        e.option(self.backing.as_ref(), |e, (oid, off)| {
            e.u64(*oid);
            e.u64(*off);
        });
        e.seq(&self.hot, |e, h| e.varint(*h));
        e.u64(self.resident);
        e.into_vec()
    }

    /// Decodes the record.
    pub fn decode(bytes: &[u8]) -> Result<VmoRec> {
        let mut d = Decoder::new(bytes);
        let version = d.u16()?;
        if version != RECORD_VERSION {
            return Err(Error::bad_image(format!("vmo record version {version}")));
        }
        Ok(VmoRec {
            oid: d.u64()?,
            size_pages: d.u64()?,
            kind: d.u8()?,
            backing: d.option(|d| {
                let oid = d.u64()?;
                let off = d.u64()?;
                Ok((oid, off))
            })?,
            hot: d.seq(|d| d.varint())?,
            resident: d.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_roundtrip() {
        let m = ManifestRec {
            gid: 3,
            name: "redis".into(),
            root: 7,
            pids: vec![7, 8, 9],
            files: vec![1, 4],
            pipes: vec![0],
            usocks: vec![2],
            isocks: vec![5, 6],
            shms: vec![100, -3],
            msgqs: vec![9],
            pshms: vec!["/cache".into()],
            vmos: vec![11, 12],
            ntlogs: vec![1],
            ec_seq: 42,
            next_oid: 13,
            container: Some(("fn0".into(), "/ct/fn0".into())),
        };
        assert_eq!(ManifestRec::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn proc_roundtrip() {
        let mut cpu = CpuState::default();
        cpu.regs[0] = 0xAA;
        cpu.pc = 0x1000;
        let p = ProcRec {
            pid: 5,
            ppid: 1,
            name: "kv".into(),
            cwd: "/sls".into(),
            uid: 1000,
            gid: 1000,
            sig_pending: 0b100,
            sig_blocked: 0b10,
            sig_actions: vec![(0, 0), (1, 0), (2, 0xF00)],
            threads: vec![(1, cpu)],
            fds: vec![(0, 3), (5, 9)],
            map: vec![MapEntryRec {
                start: 0x10000,
                end: 0x20000,
                oid: 99,
                offset_pages: 0,
                read: true,
                write: true,
                shared: false,
                needs_copy: true,
                exclude: false,
                restore_hint: 2,
            }],
        };
        assert_eq!(ProcRec::decode(&p.encode()).unwrap(), p);
    }

    #[test]
    fn file_kinds_roundtrip() {
        for kind in [
            FileKindRec::Vnode(9),
            FileKindRec::PipeRead(1),
            FileKindRec::PipeWrite(1),
            FileKindRec::UnixSock(2),
            FileKindRec::InetSock(3),
            FileKindRec::PosixShm("/x".into()),
            FileKindRec::NtLog(7),
        ] {
            let f = FileRec {
                id: 12,
                kind: kind.clone(),
                offset: 1024,
                flags: 1,
                ec: false,
            };
            assert_eq!(FileRec::decode(&f.encode()).unwrap(), f);
        }
    }

    #[test]
    fn ipc_records_roundtrip() {
        let p = PipeRec {
            id: 3,
            buf: b"buffered".to_vec(),
            read_open: true,
            write_open: false,
        };
        assert_eq!(PipeRec::decode(&p.encode()).unwrap(), p);

        let u = UsockRec {
            id: 1,
            state: SockStateRec::Connected(2),
            bound_path: Some("/run/x".into()),
            recv: vec![(b"msg".to_vec(), vec![4, 5])],
            backlog: vec![9],
        };
        assert_eq!(UsockRec::decode(&u.encode()).unwrap(), u);

        let i = IsockRec {
            id: 8,
            state: SockStateRec::Listening,
            port: Some(6379),
            owner: 3,
            recv: b"stream".to_vec(),
            backlog: vec![1, 2],
        };
        assert_eq!(IsockRec::decode(&i.encode()).unwrap(), i);

        let s = ShmRec {
            key: -5,
            size: 8192,
            oid: 77,
            removed: true,
        };
        assert_eq!(ShmRec::decode(&s.encode()).unwrap(), s);

        let q = MsgqRec {
            key: 2,
            msgs: vec![(1, b"a".to_vec()), (9, b"bb".to_vec())],
        };
        assert_eq!(MsgqRec::decode(&q.encode()).unwrap(), q);

        let ps = PshmRec {
            name: "/cache".into(),
            size: 4096,
            oid: 13,
            unlinked: true,
            open_refs: 2,
        };
        assert_eq!(PshmRec::decode(&ps.encode()).unwrap(), ps);

        let v = VmoRec {
            oid: 50,
            size_pages: 512,
            kind: 1,
            backing: Some((49, 0)),
            hot: vec![5, 1, 9],
            resident: 100,
        };
        assert_eq!(VmoRec::decode(&v.encode()).unwrap(), v);
    }

    #[test]
    fn corrupt_records_rejected() {
        let m = ManifestRec::default().encode();
        assert!(ManifestRec::decode(&m[..m.len() - 1]).is_err());
        let mut bad = m.clone();
        bad[0] = 0xFF; // version
        assert!(ManifestRec::decode(&bad).is_err());
    }
}
