//! The `libsls` developer API (Table 2).
//!
//! | Paper function     | Here                                          |
//! |--------------------|-----------------------------------------------|
//! | `sls_checkpoint()` | [`Host::sls_checkpoint`]                      |
//! | `sls_restore()`    | [`Host::sls_restore`]                         |
//! | `sls_rollback()`   | [`Host::sls_rollback`]                        |
//! | `sls_ntflush()`    | [`Host::sls_ntflush`] (see [`crate::ntlog`])  |
//! | `sls_barrier()`    | [`Host::sls_barrier`]                         |
//! | `sls_mctl()`       | [`Host::sls_mctl`]                            |
//! | `sls_fdctl()`      | [`Host::sls_fdctl`]                           |

use aurora_objstore::CkptId;
use aurora_posix::{Fd, Pid};
use aurora_sim::error::Result;
use aurora_slsfs::StoreHandle;
use aurora_vm::SlsPolicy;

use crate::metrics::{CheckpointBreakdown, RestoreBreakdown};
use crate::restore::RestoreMode;
use crate::{GroupId, Host};

impl Host {
    /// `sls_checkpoint()`: creates an image of the group now. Named
    /// checkpoints pin a point in time for later restore.
    pub fn sls_checkpoint(
        &mut self,
        gid: GroupId,
        name: Option<&str>,
    ) -> Result<CheckpointBreakdown> {
        self.checkpoint(gid, false, name)
    }

    /// `sls_restore()`: restores a checkpoint into fresh processes.
    pub fn sls_restore(
        &mut self,
        store: &StoreHandle,
        ckpt: CkptId,
        mode: RestoreMode,
    ) -> Result<RestoreBreakdown> {
        self.restore(store, ckpt, mode)
    }

    /// `sls_rollback()`: rolls the live group back to a checkpoint
    /// (the latest when `ckpt` is `None`).
    pub fn sls_rollback(
        &mut self,
        gid: GroupId,
        ckpt: Option<CkptId>,
    ) -> Result<RestoreBreakdown> {
        self.rollback(gid, ckpt)
    }

    /// `sls_barrier()`: blocks (advances virtual time) until every
    /// checkpoint taken so far is durable, releasing held output.
    pub fn sls_barrier(&mut self, gid: GroupId) -> Result<()> {
        self.wait_durable(gid)
    }

    /// `sls_mctl()`: include/exclude a memory region from checkpoints and
    /// set its lazy-restore hint.
    pub fn sls_mctl(&mut self, pid: Pid, addr: u64, policy: SlsPolicy) -> Result<()> {
        let proc = self
            .kernel
            .procs
            .get_mut(&pid)
            .ok_or_else(|| aurora_sim::error::Error::not_found(format!("pid {}", pid.0)))?;
        self.kernel.vm.set_policy(&mut proc.map, addr, policy)
    }

    /// `sls_fdctl()`: enable/disable external consistency per descriptor.
    pub fn sls_fdctl(&mut self, pid: Pid, fd: Fd, external_consistency: bool) -> Result<()> {
        self.kernel
            .fdctl_external_consistency(pid, fd, external_consistency)
    }

    /// Consumes the rollback notification for a process (the speculation
    /// API's signal that state was reverted; see [`crate::spec`]).
    pub fn sls_rollback_pending(&mut self, pid: Pid) -> bool {
        self.sls.rolled_back.remove(&pid)
    }
}
