//! The checkpoint path: serialization barrier, object capture, COW
//! arming, asynchronous flush.
//!
//! The phase structure reproduces Table 3's breakdown:
//!
//! * **Metadata copy** — while the group is stopped, every reachable
//!   kernel object serializes itself into an independent record.
//! * **Lazy data copy** — dirty pages are *armed* for checkpoint COW
//!   (one page-table manipulation each); no data moves at the barrier.
//! * **Application stop time** — barrier entry + the two phases above +
//!   resume.
//!
//! After the processes resume, the frozen pages and metadata records are
//! flushed to every attached backend and committed; the commit returns
//! the durable instant, which gates external-consistency release.

use std::collections::{BTreeSet, HashMap, HashSet};

use aurora_objstore::ObjId;
use aurora_posix::fd::FileKind;
use aurora_posix::inet::IsockState;
use aurora_posix::unix::UsockState;
use aurora_posix::{FileId, Kernel, Pid};
use aurora_sim::clock::Stopwatch;
use aurora_sim::error::{Error, Result};
use aurora_sim::time::SimTime;
use aurora_vm::cow::{self, Capture};
use aurora_vm::VmoId;

use crate::fleet::FlushMode;
use crate::group::{Group, GroupId};
use crate::lockdep::OrderedMutex;
use crate::metrics::{self, CheckpointBreakdown, CheckpointOutcome};
use crate::serialize::*;
use crate::{Host, Sls};

/// Whether a flush-path error aborts the checkpoint (device trouble the
/// pipeline degrades around) rather than surfacing as a pipeline bug.
fn aborts_checkpoint(e: &Error) -> bool {
    use aurora_sim::error::ErrorKind;
    matches!(
        e.kind(),
        ErrorKind::Io
            | ErrorKind::DeviceDead
            | ErrorKind::Corrupt
            | ErrorKind::NoSpace
            | ErrorKind::WouldBlock
    )
}

/// Everything captured at the barrier, ready to flush.
pub(crate) struct CapturedState {
    pub manifest: ManifestRec,
    pub blobs: Vec<(String, Vec<u8>)>,
    /// Armed pages to write to the backends.
    pub plan: cow::EpochPlan,
    /// VM object → store object for this capture.
    pub vmo_oid: Vec<(VmoId, ObjId)>,
}

impl Host {
    /// Takes a checkpoint of a persistence group.
    ///
    /// `full` captures every resident page; otherwise only pages dirtied
    /// since the previous checkpoint are captured (incremental). A
    /// freshly attached backend forces the next checkpoint to be full.
    pub fn checkpoint(
        &mut self,
        gid: GroupId,
        full: bool,
        name: Option<&str>,
    ) -> Result<CheckpointBreakdown> {
        self.checkpoint_mode(gid, full, name, FlushMode::Inline)
    }

    /// The checkpoint cycle behind both [`Host::checkpoint`] (inline
    /// flush accounting) and [`Host::checkpoint_pipelined`] (the fleet
    /// scheduler's overlapped accounting; see `crate::fleet`).
    pub(crate) fn checkpoint_mode(
        &mut self,
        gid: GroupId,
        full: bool,
        name: Option<&str>,
        mode: FlushMode,
    ) -> Result<CheckpointBreakdown> {
        let members = self.group_members(gid);
        if members.is_empty() {
            return Err(Error::invalid(format!(
                "persistence group {} has no live members",
                gid.0
            )));
        }
        // Resolve each backend's commit lock before entering the group
        // barrier: the fleet registry ranks outermost, so lookups happen
        // with nothing held.
        let commit_locks = crate::fleet::commit_locks_for(self.sls.group_ref(gid)?);
        // Per-group serialization: only cycles of the *same* group
        // exclude each other. The capture/flush pipeline mutates this
        // group's COW epochs and backend chains, which would interleave
        // incoherently if two of its cycles overlapped — but unrelated
        // tenants pipeline freely (the per-store commit locks below keep
        // shared backends coherent).
        let _cycle = crate::fleet::enter_group(gid.0);
        let requested_full = full;
        let mut full = requested_full
            || self
                .sls
                .group_ref(gid)?
                .backends
                .iter()
                .any(|b| b.needs_full);

        // The caller asked for an incremental checkpoint but a backend
        // needs a full base (fresh attach, or recovery from an earlier
        // abort): report the degradation instead of silently upgrading.
        let mut fault: Option<String> = None;
        if full && !requested_full {
            fault = Some("backend requires a full base: degraded to full".into());
            self.sls.stats.checkpoints_degraded += 1;
        }

        // An incremental checkpoint is only as good as the base it
        // extends: if any backend's head chain has unreadable or corrupt
        // blocks, every later incremental would be unrestorable too.
        // Degrade to a full checkpoint, which rewrites the whole working
        // set and does not depend on the damaged base.
        let mut base_damaged = false;
        if !full {
            let group = self.sls.group_ref(gid)?;
            for backend in &group.backends {
                let store = backend.store.borrow_mut();
                let Some(head) = store.head() else { continue };
                let problems = store.verify_checkpoint(head);
                if let Some(p) = problems.first() {
                    fault = Some(format!("incremental base damaged: {p}"));
                    full = true;
                    base_damaged = true;
                    break;
                }
            }
            if full {
                self.sls.stats.checkpoints_degraded += 1;
            }
        }

        let mut breakdown = CheckpointBreakdown {
            full,
            base_damaged,
            outcome: if fault.is_some() {
                CheckpointOutcome::DegradedToFull
            } else {
                CheckpointOutcome::Committed
            },
            fault,
            ..CheckpointBreakdown::default()
        };

        // Full checkpoints consolidate lazily-restored images: every
        // pager-backed page is faulted in *before* the barrier (off the
        // stop-time path) so the capture sees the whole working set.
        // Dedup makes the subsequent store writes free for unchanged
        // pages.
        if full {
            self.consolidate_images(&members)?;
        }

        let mut sw = Stopwatch::start(&self.clock);

        // --- Barrier: stop every member. ----------------------------------
        for &pid in &members {
            self.kernel.stop_process(pid)?;
        }
        let ec_seq = self.kernel.ec_advance_pending(gid.0);
        let barrier_entry = sw.lap();

        // --- Phase 1: metadata copy. ---------------------------------------
        let mut captured = capture_metadata(
            &mut self.kernel,
            &mut self.sls,
            gid,
            &members,
            ec_seq,
            full,
        )?;
        breakdown.metadata_copy = sw.lap();
        breakdown.metadata_bytes = captured.blobs.iter().map(|(_, b)| b.len() as u64).sum();

        // --- Phase 2: lazy data copy (COW arming). --------------------------
        {
            let since = self.sls.group_ref(gid)?.since_epoch;
            let capture = if full {
                Capture::Full
            } else {
                Capture::DirtySince(since)
            };
            let maps: Vec<&aurora_vm::VmMap> = members
                .iter()
                .map(|pid| {
                    self.kernel.procs.get(pid).map(|p| &p.map).ok_or_else(|| {
                        Error::internal(format!("group member pid {} vanished at barrier", pid.0))
                    })
                })
                .collect::<Result<_>>()?;
            captured.plan = cow::begin_epoch(&mut self.kernel.vm, &maps, capture);
        }
        breakdown.lazy_data_copy = sw.lap();
        self.sls.group_mut(gid)?.since_epoch = captured.plan.epoch + 1;
        breakdown.pages = captured.plan.armed_pages;

        // --- Resume. ---------------------------------------------------------
        for &pid in &members {
            self.kernel.resume_process(pid)?;
        }
        let resume = sw.lap();
        breakdown.stop_time =
            barrier_entry + breakdown.metadata_copy + breakdown.lazy_data_copy + resume;

        // --- Background flush to every backend. ------------------------------
        let (durable, flush_report) = match flush_capture(
            &mut self.kernel,
            &mut self.sls,
            gid,
            &captured,
            full,
            name,
            mode,
            &commit_locks,
        ) {
            Ok(d) => d,
            Err(e) if aborts_checkpoint(&e) => {
                return self.abort_checkpoint(gid, &captured, breakdown, e);
            }
            Err(e) => return Err(e),
        };
        breakdown.flush_bytes = flush_report.flush_bytes;
        breakdown.flush_workers = flush_report.workers;
        breakdown.hash_stage = flush_report.hash_stage;
        breakdown.flush_span = flush_report.flush_span;
        breakdown.durable_at = durable;
        breakdown.ckpt = self.sls.group_ref(gid)?.last_checkpoint();

        // Release the frozen frames: their contents now live in the
        // stores' page tables.
        cow::release_flushed(&mut self.kernel.vm, &captured.plan);

        let group = self.sls.group_mut(gid)?;
        group.ec_outstanding.push_back((ec_seq, durable));
        self.sls.stats.checkpoints += 1;
        self.sls.stats.flushed_bytes += breakdown.flush_bytes;

        // A checkpoint that committed while a mirror replica was
        // detached, rebuilding, or unhealthy is durable but
        // under-replicated: keep the pipeline flowing, report it.
        if breakdown.outcome == CheckpointOutcome::Committed {
            let degraded_mirror = self.sls.group_ref(gid)?.backends.iter().any(|b| {
                b.store
                    .borrow()
                    .device()
                    .as_mirror()
                    .is_some_and(|m| m.is_degraded())
            });
            if degraded_mirror {
                breakdown.outcome = CheckpointOutcome::DegradedMirror;
                breakdown.fault =
                    Some("mirror degraded: a replica is detached or rebuilding".into());
            }
        }
        {
            let mut m = metrics::METRICS.lock();
            m.checkpoints_committed += 1;
            if breakdown.outcome == CheckpointOutcome::DegradedMirror {
                m.checkpoints_degraded_mirror += 1;
            }
        }

        // Ship this epoch to the hot standby (if one is attached) and
        // drain any due acks. Never blocks the commit: a standby that
        // falls behind degrades the outcome instead.
        self.replicate_after_checkpoint(&mut breakdown);

        // History-window GC on every backend, then release holds whose
        // checkpoints already became durable.
        gc_history(&mut self.sls, gid)?;
        // Background chain compaction: a chain at the policy cap can
        // never grow another delta (the next write takes the full-image
        // path), but a *cold* page's capped chain would otherwise tax
        // every future restore with replay. Fold those now.
        self.compact_chains(gid)?;
        self.poll_durability();
        Ok(breakdown)
    }

    /// Folds every live delta chain that reached the policy cap back
    /// into a full base image, on every backend of the group. Each
    /// folding backend commits one `chain-compact` checkpoint through
    /// the typestate protocol (recorded in its history, windowed out by
    /// the next GC pass like any other). Returns the number of chains
    /// folded across all backends.
    pub fn compact_chains(&mut self, gid: GroupId) -> Result<u64> {
        let group = self.sls.group_mut(gid)?;
        let mut folded = 0u64;
        for backend in group.backends.iter_mut() {
            let mut store = backend.store.borrow_mut();
            let (delta_max_bytes, delta_max_chain) = store.delta_policy();
            if delta_max_bytes == 0 {
                continue;
            }
            let n = store.compact_chains(delta_max_chain)? as u64;
            if n > 0 {
                folded += n;
                if let Some(head) = store.head() {
                    backend.history.push(head);
                }
            }
        }
        if folded > 0 {
            group.history = group
                .backends
                .first()
                .ok_or_else(|| Error::internal("group has no backends"))?
                .history
                .clone();
            metrics::METRICS.lock().chains_compacted += folded;
        }
        Ok(folded)
    }

    /// Concludes a checkpoint whose flush failed permanently.
    ///
    /// The committed chain on every backend is untouched — the previous
    /// durable snapshot remains the latest and stays restorable. The
    /// frozen COW frames are released (their contents still live in the
    /// VM objects), and every backend is marked `needs_full` so the next
    /// checkpoint rewrites the whole working set rather than building an
    /// incremental on top of the unfinished capture. Output held for
    /// external consistency stays held until a later checkpoint commits;
    /// that checkpoint covers this epoch's sends, so releasing on its
    /// durability is correct.
    fn abort_checkpoint(
        &mut self,
        gid: GroupId,
        captured: &CapturedState,
        mut breakdown: CheckpointBreakdown,
        cause: Error,
    ) -> Result<CheckpointBreakdown> {
        cow::release_flushed(&mut self.kernel.vm, &captured.plan);
        if let Ok(group) = self.sls.group_mut(gid) {
            for backend in group.backends.iter_mut() {
                backend.needs_full = true;
            }
        }
        self.sls.stats.checkpoints_aborted += 1;
        metrics::METRICS.lock().checkpoints_aborted += 1;
        breakdown.outcome = CheckpointOutcome::Aborted;
        breakdown.fault = Some(cause.to_string());
        breakdown.durable_at = SimTime::ZERO;
        breakdown.ckpt = None;
        self.poll_durability();
        Ok(breakdown)
    }

    /// Faults in every pager-backed page of the members' objects (image
    /// consolidation before a full checkpoint).
    fn consolidate_images(&mut self, members: &[Pid]) -> Result<()> {
        use aurora_vm::object::ResidentPage;
        // Collect (object, pager, key) bindings reachable from members.
        let mut bindings: Vec<(VmoId, aurora_vm::PagerId, u64)> = Vec::new();
        let mut seen: HashSet<VmoId> = HashSet::new();
        for &pid in members {
            for entry in self.kernel.proc_ref(pid)?.map.entries() {
                let mut cur = Some(entry.object);
                while let Some(v) = cur {
                    if !seen.insert(v) {
                        break;
                    }
                    let obj = self.kernel.vm.object(v);
                    if let Some((pager, key)) = obj.pager {
                        bindings.push((v, pager, key));
                    }
                    cur = obj.backing.map(|(b, _)| b);
                }
            }
        }
        for (v, pager, key) in bindings {
            let size = self.kernel.vm.object(v).size_pages;
            // Walk the image's pages; the pager knows which exist.
            // (Ask the store for the page list through the pager's own
            // has_page; sizes are bounded by the object's page count.)
            let resident: HashSet<u64> = self
                .kernel
                .vm
                .object(v)
                .pages
                .keys()
                .copied()
                .collect();
            for idx in 0..size.min(1 << 22) {
                if resident.contains(&idx) {
                    continue;
                }
                if !self.kernel.vm.pager_mut(pager).has_page(key, idx) {
                    continue;
                }
                let data = self.kernel.vm.pager_mut(pager).page_in(key, idx)?;
                let frame = self.kernel.vm.frames.alloc(data);
                let epoch = self.kernel.vm.epoch;
                self.kernel.vm.object_mut(v).insert_page(
                    idx,
                    ResidentPage {
                        frame,
                        write_epoch: epoch,
                        cow_protected: false,
                        referenced: false,
                        heat: 0,
                    },
                );
            }
        }
        Ok(())
    }

    /// Periodic driver: checkpoints when the group's period elapsed.
    /// Returns `None` when not yet due.
    pub fn checkpoint_tick(&mut self, gid: GroupId) -> Result<Option<CheckpointBreakdown>> {
        let now = self.clock.now();
        let due = {
            let group = self.sls.group_ref(gid)?;
            now >= group.next_due
        };
        if !due {
            self.poll_durability();
            return Ok(None);
        }
        let breakdown = self.checkpoint(gid, false, None)?;
        let group = self.sls.group_mut(gid)?;
        group.next_due = now + group.period;
        Ok(Some(breakdown))
    }
}

/// Serializes every kernel object reachable from the group members.
fn capture_metadata(
    kernel: &mut Kernel,
    sls: &mut Sls,
    gid: GroupId,
    members: &[Pid],
    ec_seq: u64,
    full: bool,
) -> Result<CapturedState> {
    let slsfs_mount = sls.slsfs_mount;
    let group: &mut Group = sls
        .groups
        .get_mut(&gid.0)
        .ok_or_else(|| Error::not_found(format!("persistence group {}", gid.0)))?;

    let mut manifest = ManifestRec {
        gid: gid.0,
        ec_seq,
        ..ManifestRec::default()
    };
    let mut blobs: Vec<(String, Vec<u8>)> = Vec::new();

    // Discover reachable open-file descriptions, transitively through
    // SCM_RIGHTS messages parked in Unix sockets.
    let mut files: BTreeSet<u32> = BTreeSet::new();
    let mut usocks: BTreeSet<u32> = BTreeSet::new();
    let mut isocks: BTreeSet<u32> = BTreeSet::new();
    let mut pipes: BTreeSet<u32> = BTreeSet::new();
    let mut pshms: BTreeSet<String> = BTreeSet::new();
    let mut ntlogs: BTreeSet<u64> = BTreeSet::new();
    let mut queue: Vec<FileId> = Vec::new();
    for &pid in members {
        for (_, fid) in kernel.proc_ref(pid)?.fds.iter() {
            queue.push(fid);
        }
    }
    while let Some(fid) = queue.pop() {
        if !files.insert(fid.0) {
            continue;
        }
        let file = kernel
            .files
            .get(fid.0)
            .ok_or_else(|| Error::internal(format!("dangling file id {}", fid.0)))?;
        match &file.kind {
            FileKind::Vnode(vref) => {
                if vref.mount != slsfs_mount {
                    return Err(Error::unsupported(format!(
                        "persisted process holds a vnode on {} (only {} persists)",
                        kernel.vfs.fs_ref(vref.mount).fs_name(),
                        crate::SLSFS_MOUNT,
                    )));
                }
            }
            FileKind::PipeRead(p) | FileKind::PipeWrite(p) => {
                pipes.insert(p.0);
            }
            FileKind::UnixSock(s) => {
                usocks.insert(s.0);
                if let Some(sock) = kernel.usocks.get(s.0) {
                    if let UsockState::Connected(peer) = sock.state {
                        usocks.insert(peer.0);
                        if let Some(psock) = kernel.usocks.get(peer.0) {
                            for msg in &psock.recv {
                                queue.extend(msg.fds.iter().copied());
                            }
                        }
                    }
                    for msg in &sock.recv {
                        queue.extend(msg.fds.iter().copied());
                    }
                }
            }
            FileKind::InetSock(s) => {
                isocks.insert(s.0);
                if let Some(sock) = kernel.isocks.get(s.0) {
                    if let IsockState::Connected(peer) = sock.state {
                        // Capture the peer only when it belongs to the
                        // group; external peers restore disconnected.
                        let peer_owner = kernel.isocks.get(peer.0).map(|p| p.owner);
                        if let Some(po) = peer_owner {
                            if kernel.proc_ref(po).ok().and_then(|p| p.persist_group)
                                == Some(gid.0)
                            {
                                isocks.insert(peer.0);
                            }
                        }
                    }
                }
            }
            FileKind::PosixShm(name) => {
                pshms.insert(name.clone());
            }
            FileKind::NtLog(id) => {
                ntlogs.insert(*id);
            }
        }
    }

    // Memory: the VM objects reachable from member maps (whole shadow
    // chains, visited once).
    let mut vmo_ids: Vec<VmoId> = Vec::new();
    let mut seen: HashSet<VmoId> = HashSet::new();
    for &pid in members {
        for entry in kernel.proc_ref(pid)?.map.entries() {
            if entry.policy.exclude {
                continue;
            }
            let mut cur = Some(entry.object);
            while let Some(oid) = cur {
                if !seen.insert(oid) {
                    break;
                }
                vmo_ids.push(oid);
                cur = kernel.vm.object(oid).backing.map(|(b, _)| b);
            }
        }
    }

    // Assign store ids; prune mappings (and store objects) of dead VMs.
    let mut vmo_oid: Vec<(VmoId, ObjId)> = Vec::new();
    let mut live_uids: HashSet<u64> = HashSet::new();
    for &v in &vmo_ids {
        let uid = kernel.vm.object(v).uid;
        live_uids.insert(uid);
        vmo_oid.push((v, group.oid_for_vmo(uid)));
    }
    let dead: Vec<(u64, u64)> = group
        .vmo_oids
        .iter()
        .filter(|(uid, _)| !live_uids.contains(uid))
        .map(|(u, o)| (*u, *o))
        .collect();
    for (uid, oid) in dead {
        group.vmo_oids.remove(&uid);
        for backend in &group.backends {
            let _ = backend.store.borrow_mut().delete_object(ObjId(oid));
        }
    }

    // SysV/POSIX shm segments whose object the group maps.
    let shm_keys: Vec<i32> = kernel
        .sysv_shms
        .iter()
        .filter(|(_, seg)| seen.contains(&seg.object))
        .map(|(k, _)| *k)
        .collect();
    for (name, shm) in kernel.posix_shms.iter() {
        if seen.contains(&shm.object) {
            pshms.insert(name.clone());
        }
    }
    let msgq_keys: Vec<i32> = group.msgq_keys.clone();

    // --- Serialize VM objects. ---------------------------------------------
    for &(v, oid) in &vmo_oid {
        let obj = kernel.vm.object(v);
        let backing = match obj.backing {
            None => None,
            Some((b, off)) => {
                let buid = kernel.vm.object(b).uid;
                let boid = group.vmo_oids.get(&buid).copied().ok_or_else(|| {
                    Error::internal(format!("backing object uid {buid} missing from walk"))
                })?;
                Some((boid, off))
            }
        };
        let hot = kernel.vm.hottest_pages(v, 32);
        let rec = VmoRec {
            oid: oid.0,
            size_pages: obj.size_pages,
            kind: match obj.kind {
                aurora_vm::VmoKind::Anonymous => 0,
                aurora_vm::VmoKind::Shadow => 1,
                aurora_vm::VmoKind::SharedMem => 2,
                aurora_vm::VmoKind::Vnode { .. } => 3,
            },
            backing,
            hot,
            resident: if full { obj.resident() as u64 } else { 0 },
        };
        blobs.push((key_vmo(gid.0, oid.0), rec.encode()));
        manifest.vmos.push(oid.0);
    }

    // --- Serialize processes. ------------------------------------------------
    for &pid in members {
        let proc = kernel.proc_ref(pid)?;
        let rec = ProcRec {
            pid: pid.0,
            ppid: if members.contains(&proc.ppid) {
                proc.ppid.0
            } else {
                0
            },
            name: proc.name.clone(),
            cwd: proc.cwd.clone(),
            uid: proc.cred.uid,
            gid: proc.cred.gid,
            sig_pending: proc.sig.pending,
            sig_blocked: proc.sig.blocked,
            sig_actions: proc
                .sig
                .actions
                .iter()
                .map(|a| match a {
                    aurora_posix::types::SigAction::Default => (0u8, 0u64),
                    aurora_posix::types::SigAction::Ignore => (1, 0),
                    aurora_posix::types::SigAction::Handler(addr) => (2, *addr),
                })
                .collect(),
            threads: proc
                .threads
                .iter()
                .map(|t| (t.tid.0, t.cpu.clone()))
                .collect(),
            fds: proc.fds.iter().map(|(fd, fid)| (fd.0, fid.0)).collect(),
            map: proc
                .map
                .entries()
                .map(|e| {
                    let uid = kernel.vm.object(e.object).uid;
                    MapEntryRec {
                        start: e.start,
                        end: e.end,
                        oid: group.vmo_oids.get(&uid).copied().unwrap_or(0),
                        offset_pages: e.offset_pages,
                        read: e.prot.read,
                        write: e.prot.write,
                        shared: e.shared,
                        needs_copy: e.needs_copy,
                        exclude: e.policy.exclude,
                        restore_hint: match e.policy.restore {
                            aurora_vm::map::RestoreHint::Auto => 0,
                            aurora_vm::map::RestoreHint::Eager => 1,
                            aurora_vm::map::RestoreHint::Lazy => 2,
                        },
                    }
                })
                .collect(),
        };
        blobs.push((key_proc(gid.0, pid.0), rec.encode()));
        manifest.pids.push(pid.0);
    }

    // --- Serialize open-file descriptions. -----------------------------------
    for &fid in &files {
        let file = kernel
            .files
            .get(fid)
            .ok_or_else(|| Error::internal(format!("file {fid} closed during serialize")))?;
        let kind = match &file.kind {
            FileKind::Vnode(vref) => FileKindRec::Vnode(vref.node),
            FileKind::PipeRead(p) => FileKindRec::PipeRead(p.0),
            FileKind::PipeWrite(p) => FileKindRec::PipeWrite(p.0),
            FileKind::UnixSock(s) => FileKindRec::UnixSock(s.0),
            FileKind::InetSock(s) => FileKindRec::InetSock(s.0),
            FileKind::PosixShm(n) => FileKindRec::PosixShm(n.clone()),
            FileKind::NtLog(id) => FileKindRec::NtLog(*id),
        };
        let rec = FileRec {
            id: fid,
            kind,
            offset: file.offset,
            flags: file.flags,
            ec: file.external_consistency,
        };
        blobs.push((key_file(gid.0, fid), rec.encode()));
        manifest.files.push(fid);
    }

    // --- Pipes. ---------------------------------------------------------------
    for &pid_ in &pipes {
        let pipe = kernel
            .pipes
            .get(pid_)
            .ok_or_else(|| Error::internal("dangling pipe id"))?;
        let rec = PipeRec {
            id: pid_,
            buf: pipe.buf.iter().copied().collect(),
            read_open: pipe.read_open,
            write_open: pipe.write_open,
        };
        blobs.push((key_pipe(gid.0, pid_), rec.encode()));
        manifest.pipes.push(pid_);
    }

    // --- Unix sockets (with in-flight descriptors). ----------------------------
    for &sid in &usocks {
        let sock = kernel
            .usocks
            .get(sid)
            .ok_or_else(|| Error::internal("dangling usock id"))?;
        let state = match sock.state {
            UsockState::Unbound => SockStateRec::Unbound,
            UsockState::Listening => SockStateRec::Listening,
            UsockState::Connected(p) => SockStateRec::Connected(p.0),
            UsockState::Disconnected => SockStateRec::Disconnected,
        };
        let rec = UsockRec {
            id: sid,
            state,
            bound_path: sock.bound_path.clone(),
            recv: sock
                .recv
                .iter()
                .map(|m| (m.bytes.clone(), m.fds.iter().map(|f| f.0).collect()))
                .collect(),
            backlog: sock.backlog.iter().map(|b| b.0).collect(),
        };
        blobs.push((key_usock(gid.0, sid), rec.encode()));
        manifest.usocks.push(sid);
    }

    // --- TCP sockets (held output intentionally dropped). -----------------------
    for &sid in &isocks {
        let sock = kernel
            .isocks
            .get(sid)
            .ok_or_else(|| Error::internal("dangling isock id"))?;
        let state = match sock.state {
            IsockState::Unbound => SockStateRec::Unbound,
            IsockState::Listening => SockStateRec::Listening,
            IsockState::Connected(p) => {
                if isocks.contains(&p.0) {
                    SockStateRec::Connected(p.0)
                } else {
                    SockStateRec::Disconnected
                }
            }
            IsockState::Disconnected => SockStateRec::Disconnected,
        };
        let rec = IsockRec {
            id: sid,
            state,
            port: sock.local_port,
            owner: sock.owner.0,
            recv: sock.recv.iter().copied().collect(),
            backlog: sock.backlog.iter().map(|b| b.0).collect(),
        };
        blobs.push((key_isock(gid.0, sid), rec.encode()));
        manifest.isocks.push(sid);
    }

    // --- System V shared memory. -------------------------------------------------
    for key in shm_keys {
        let seg = kernel
            .sysv_shms
            .get(&key)
            .ok_or_else(|| Error::internal(format!("sysv shm key {key} removed during walk")))?;
        let uid = kernel.vm.object(seg.object).uid;
        let rec = ShmRec {
            key,
            size: seg.size,
            oid: group.vmo_oids.get(&uid).copied().unwrap_or(0),
            removed: seg.removed,
        };
        blobs.push((key_shm(gid.0, key), rec.encode()));
        manifest.shms.push(key);
    }

    // --- POSIX shared memory. ------------------------------------------------------
    for name in &pshms {
        let shm = kernel
            .posix_shms
            .get(name)
            .ok_or_else(|| Error::internal("dangling posix shm"))?;
        let uid = kernel.vm.object(shm.object).uid;
        let rec = PshmRec {
            name: name.clone(),
            size: shm.size,
            oid: group.vmo_oids.get(&uid).copied().unwrap_or(0),
            unlinked: shm.unlinked,
            open_refs: shm.open_refs,
        };
        blobs.push((key_pshm(gid.0, name), rec.encode()));
        manifest.pshms.push(name.clone());
    }

    // --- Message queues registered with the group. ----------------------------------
    for key in msgq_keys {
        if let Some(q) = kernel.msgqs.get(&key) {
            let rec = MsgqRec {
                key,
                msgs: q.msgs.iter().map(|m| (m.mtype, m.data.clone())).collect(),
            };
            blobs.push((key_msgq(gid.0, key), rec.encode()));
            manifest.msgqs.push(key);
        }
    }

    manifest.ntlogs = ntlogs.iter().copied().collect();

    if let Some(ct) = kernel.proc_ref(group.root).ok().and_then(|p| p.container) {
        if let Some(c) = kernel.containers.get(ct.0) {
            manifest.container = Some((c.name.clone(), c.root.clone()));
        }
    }

    manifest.name = group.name.clone();
    manifest.root = group.root.0;
    manifest.next_oid = group.next_oid;

    // Charge the serialization cost of every record.
    for (_, bytes) in &blobs {
        kernel
            .clock
            .charge(aurora_sim::cost::meta_serialize(bytes.len()));
    }

    // File-system metadata commits with the same checkpoint.
    kernel.vfs.fs(slsfs_mount).sync()?;

    Ok(CapturedState {
        manifest,
        blobs,
        plan: cow::EpochPlan::default(),
        vmo_oid,
    })
}

/// Per-checkpoint telemetry from the parallel flush pipeline.
pub(crate) struct FlushReport {
    /// Worker threads used by the hash stage.
    pub workers: u64,
    /// Hash-stage duration charged to the virtual clock.
    pub hash_stage: aurora_sim::time::SimDuration,
    /// Sim-time span from flush submission to the durable instant.
    pub flush_span: aurora_sim::time::SimDuration,
    /// Bytes actually flushed on the widest backend: full 4 KiB images
    /// plus encoded delta records (sub-page dirty extents make this far
    /// smaller than `armed_pages * 4096`).
    pub flush_bytes: u64,
}

/// Writes captured pages and records to every backend and commits;
/// returns the instant at which all backends are durable.
///
/// The pipeline runs in three stages:
///
/// 1. **Resolve + hash** — each armed page is resolved to its store
///    object once, then content-hashed on the `flush::hash_plan` worker
///    pool. The hashes are computed *once* and reused by every backend
///    (the serial path re-hashed the plan per backend inside
///    `write_page`).
/// 2. **Coalesced write** — each backend applies the whole plan through
///    `ObjectStore::write_pages_coalesced`, which batches adjacent
///    fresh blocks into extent-sized vectored device writes.
/// 3. **Commit** — unchanged; the checkpoint is durable at the max of
///    the backends' durable instants. Backends overlap in virtual
///    time: device submissions complete asynchronously and only the
///    commit barrier waits for them.
///
/// Any error propagates without committing; `abort_checkpoint` then
/// forces the next checkpoint full, so a partially-applied plan on one
/// backend is never extended incrementally.
#[allow(clippy::too_many_arguments)]
fn flush_capture(
    kernel: &mut Kernel,
    sls: &mut Sls,
    gid: GroupId,
    captured: &CapturedState,
    full: bool,
    name: Option<&str>,
    mode: FlushMode,
    commit_locks: &[&'static OrderedMutex<()>],
) -> Result<(SimTime, FlushReport)> {
    let next_group = sls.next_group_value();
    let workers = sls.flush_workers.max(1);

    // --- Stage 1: resolve the plan and hash it on the worker pool. ----
    let mut plan: Vec<crate::flush::PlanPage> = Vec::with_capacity(captured.plan.flush.len());
    for fp in &captured.plan.flush {
        let oid = captured
            .vmo_oid
            .iter()
            .find(|(v, _)| *v == fp.object)
            .map(|(_, o)| *o)
            .ok_or_else(|| Error::internal("flush page of uncaptured object"))?;
        plan.push((oid, fp.page_idx, kernel.vm.frames.data(fp.frame).clone()));
    }
    // Dirty footprints keyed like the resolved plan: a page whose mask
    // is a small set of runs is a delta candidate on every backend.
    let mut masks: HashMap<(ObjId, u64), &aurora_vm::DirtyMask> = HashMap::new();
    for (fp, (oid, idx, _)) in captured.plan.flush.iter().zip(plan.iter()) {
        masks.insert((*oid, *idx), &fp.dirty);
    }
    let flush_start = kernel.clock.now();
    let pages_hashed = plan.len() as u64;
    let hash_stage = aurora_sim::cost::hash_stage(pages_hashed, workers as u64);
    let hash_done = match mode {
        // The hash stage is charged to the virtual clock at its modeled
        // per-core bandwidth divided by the worker count, so checkpoint
        // latency and the flush span reflect the configured parallelism
        // regardless of how many physical CPUs the harness happens to
        // have.
        FlushMode::Inline => {
            kernel.clock.charge(hash_stage);
            kernel.clock.now()
        }
        // Pipelined cycles hash on the fleet scheduler's lane horizons
        // instead: the driving thread returns to the next tenant's
        // capture while this flush's hash occupies an idle lane, and the
        // durable instant below waits for the lane to finish.
        FlushMode::Pipelined => sls.fleet.hash_slot(flush_start, hash_stage),
    };
    let writes = crate::flush::hash_plan(plan, workers);
    let group = sls
        .groups
        .get_mut(&gid.0)
        .ok_or_else(|| Error::not_found(format!("persistence group {}", gid.0)))?;
    if commit_locks.len() != group.backends.len() {
        return Err(Error::internal("commit locks out of step with backends"));
    }

    // --- Stages 2+3: coalesced write and commit, per backend. ---------
    let mut durable = SimTime::ZERO;
    let mut extents = 0u64;
    let mut extent_blocks = 0u64;
    let mut phase_seals = 0u64;
    let mut phase_barriers = 0u64;
    let mut phase_flips = 0u64;
    let mut phase_repairs = 0u64;
    let mut flush_bytes = 0u64;
    let mut delta_records = 0u64;
    let mut delta_bytes = 0u64;
    let mut chain_len_max = 0u64;
    for (backend, &store_commit) in group.backends.iter_mut().zip(commit_locks) {
        let mut store = backend.store.borrow_mut();
        for &(v, oid) in &captured.vmo_oid {
            if !store.object_exists(oid) {
                store.create_object(oid, kernel.vm.object(v).size_pages)?;
            }
        }
        let ext0 = store.stats.extents_coalesced;
        let blk0 = store.stats.blocks_coalesced;
        let seals0 = store.stats.journal_seals;
        let barriers0 = store.stats.extent_barriers;
        let flips0 = store.stats.superblock_flips;
        let repairs0 = store.stats.repair_path_entries.get();
        let drec0 = store.stats.delta_records;
        let dbytes0 = store.stats.delta_bytes;
        // Delta/full partition. A captured page appends a sub-page delta
        // record when the flush is incremental, its dirty footprint is a
        // small run set within the policy budget, and this backend holds
        // a committed base whose chain has room; everything else — and
        // every page of a full checkpoint — takes the coalesced
        // full-image path, which doubles as chain truncation.
        let (delta_max_bytes, delta_max_chain) = store.delta_policy();
        let mut full_count = writes.len() as u64;
        if full || delta_max_bytes == 0 {
            store.write_pages_coalesced(&writes)?;
        } else {
            let mut images: Vec<aurora_objstore::PageWrite> = Vec::new();
            for w in &writes {
                let runs = masks
                    .get(&(w.oid, w.idx))
                    .and_then(|m| m.runs())
                    .filter(|runs| {
                        let bytes: u64 = runs.iter().map(|&(_, l)| l as u64).sum();
                        bytes > 0 && bytes <= delta_max_bytes as u64
                    })
                    .filter(|_| {
                        store
                            .can_delta(w.oid, w.idx)
                            .is_some_and(|len| len < delta_max_chain)
                    });
                match runs {
                    Some(runs) => store.stage_delta(w.oid, w.idx, &w.page, runs)?,
                    None => images.push(w.clone()),
                }
            }
            full_count = images.len() as u64;
            store.write_pages_coalesced(&images)?;
        }
        extents += store.stats.extents_coalesced - ext0;
        extent_blocks += store.stats.blocks_coalesced - blk0;
        for (key, bytes) in &captured.blobs {
            store.put_blob(key, bytes.clone());
        }
        store.put_blob(&key_manifest(gid.0), captured.manifest.encode());
        // Host-level durable state: the group-id allocator. Group ids
        // must never be reused across reboots — a fresh group with a
        // recycled id would share the old incarnation's store-object
        // namespace, and colliding object ids would leak stale pages
        // through the checkpoint chain.
        store.put_blob("sls/host", sls_host_blob(next_group));
        // One typestate commit per store at a time: a store shared by
        // several groups sees whole seal → barrier → flip sequences even
        // when unrelated cycles overlap under their own group barriers.
        let (ckpt, backend_durable) = {
            let _commit = store_commit.lock();
            store.commit(name)?
        };
        phase_seals += store.stats.journal_seals - seals0;
        phase_barriers += store.stats.extent_barriers - barriers0;
        phase_flips += store.stats.superblock_flips - flips0;
        phase_repairs += store.stats.repair_path_entries.get() - repairs0;
        // Real bytes this backend flushed for page data: full images plus
        // the delta records the commit just made durable. The report
        // carries the widest backend.
        let backend_dbytes = store.stats.delta_bytes - dbytes0;
        delta_records += store.stats.delta_records - drec0;
        delta_bytes += backend_dbytes;
        chain_len_max = chain_len_max.max(store.stats.chain_len_max);
        flush_bytes = flush_bytes.max(full_count * aurora_vm::PAGE_SIZE as u64 + backend_dbytes);
        backend.history.push(ckpt);
        if full {
            backend.needs_full = false;
        }
        durable = durable.max(backend_durable);
    }
    // A pipelined flush is not durable before its hash lane finishes
    // (inline mode already advanced the clock past the hash, so this is
    // a no-op there).
    durable = durable.max(hash_done);
    group.history = group
        .backends
        .first()
        .ok_or_else(|| Error::internal("group has no backends"))?
        .history
        .clone();

    let flush_span = durable.max(flush_start).since(flush_start);
    {
        let mut m = metrics::METRICS.lock();
        m.flush_workers = workers as u64;
        m.flush_pages_hashed += pages_hashed;
        m.flush_hash_ns += hash_stage.as_nanos();
        m.flush_write_ns += flush_span.as_nanos();
        m.flush_extents += extents;
        m.flush_extent_blocks += extent_blocks;
        m.commit_journal_seals += phase_seals;
        m.commit_extent_barriers += phase_barriers;
        m.commit_superblock_flips += phase_flips;
        m.commit_repair_entries += phase_repairs;
        m.delta_records += delta_records;
        m.delta_bytes += delta_bytes;
        m.chain_len_max = m.chain_len_max.max(chain_len_max);
    }
    Ok((
        durable,
        FlushReport {
            workers: workers as u64,
            hash_stage,
            flush_span,
            flush_bytes,
        },
    ))
}

/// Encodes the durable host state blob.
fn sls_host_blob(next_group: u32) -> Vec<u8> {
    let mut e = aurora_sim::codec::Encoder::new();
    e.u32(next_group);
    e.into_vec()
}

/// Trims each backend's history to the group's window (in-place GC).
fn gc_history(sls: &mut Sls, gid: GroupId) -> Result<()> {
    let group = sls
        .groups
        .get_mut(&gid.0)
        .ok_or_else(|| Error::not_found(format!("persistence group {}", gid.0)))?;
    let window = group.history_window;
    for backend in group.backends.iter_mut() {
        while backend.history.len() > window {
            let victim = backend.history.remove(0);
            backend.store.borrow_mut().delete_checkpoint(victim)?;
        }
    }
    group.history = group
        .backends
        .first()
        .ok_or_else(|| Error::internal("group has no backends"))?
        .history
        .clone();
    Ok(())
}
