//! Persistence groups and backends.

use std::collections::{HashMap, VecDeque};

use crate::ntlog::NtLogState;

use aurora_objstore::{CkptId, ObjId};
use aurora_sim::time::{SimDuration, SimTime};
use aurora_slsfs::StoreHandle;
use aurora_posix::Pid;

/// Identifier of a persistence group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GroupId(pub u32);

/// Backend kinds (the paper's local flash / NVDIMM, memory, and network
/// backends).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// The primary on-disk store (NVMe/NVDIMM class).
    Disk,
    /// An in-memory store for ephemeral checkpoints (debugging,
    /// speculation).
    Memory,
    /// A store on a remote host behind a network link.
    Remote,
}

/// One attached backend.
pub struct Backend {
    /// Kind (affects durability reporting only; the store carries its own
    /// device model).
    pub kind: BackendKind,
    /// The backing object store.
    pub store: StoreHandle,
    /// The next checkpoint to this backend must be full (it has no
    /// history yet).
    pub needs_full: bool,
    /// Checkpoints this backend holds for the group, oldest first.
    pub history: Vec<CkptId>,
}

/// A persistence group.
pub struct Group {
    /// Group id (also the tag on member processes).
    pub id: u32,
    /// Human-readable name.
    pub name: String,
    /// The root process the group was created from.
    pub root: Pid,
    /// Attached backends; index 0 is the primary.
    pub backends: Vec<Backend>,
    /// Periodic checkpoint interval (default 10 ms — the paper's "100×
    /// per second").
    pub period: SimDuration,
    /// Next periodic checkpoint is due at this instant.
    pub next_due: SimTime,
    /// VM epoch the next incremental checkpoint captures from.
    pub since_epoch: u64,
    /// Stable VM-object → store-object mapping, keyed by the VM object's
    /// never-reused `uid`.
    pub vmo_oids: HashMap<u64, u64>,
    /// Next object id within this group's namespace.
    pub next_oid: u64,
    /// Checkpoint history on the primary backend, oldest first.
    pub history: Vec<CkptId>,
    /// History window: older checkpoints are GC'd beyond this many.
    pub history_window: usize,
    /// External-consistency epochs awaiting durability: `(seq, durable)`.
    pub ec_outstanding: VecDeque<(u64, SimTime)>,
    /// Next persistent-log id.
    pub next_ntlog: u64,
    /// Live persistent logs by id.
    pub ntlogs: HashMap<u64, NtLogState>,
    /// Most recent `sls_ntflush` mini-commit (GC'd by the next one).
    pub last_ntflush_ckpt: Option<CkptId>,
    /// System V message queues registered with this group (queues are
    /// system-wide objects, so membership is explicit).
    pub msgq_keys: Vec<i32>,
    /// Group id of the incarnation this group superseded at restore time
    /// (pruned by the caller once the new group is fully checkpointed).
    pub supersedes: Option<u32>,
}

impl Group {
    /// Creates a group with default policy and no backends.
    pub fn new(id: u32, name: &str, root: Pid) -> Group {
        Group {
            id,
            name: name.to_string(),
            root,
            backends: Vec::new(),
            period: SimDuration::from_millis(10),
            next_due: SimTime::ZERO,
            since_epoch: 0,
            vmo_oids: HashMap::new(),
            next_oid: 1,
            history: Vec::new(),
            history_window: 32,
            ec_outstanding: VecDeque::new(),
            next_ntlog: 1,
            ntlogs: HashMap::new(),
            last_ntflush_ckpt: None,
            msgq_keys: Vec::new(),
            supersedes: None,
        }
    }

    /// The store-object namespace of this group.
    pub fn ns(&self) -> u64 {
        (0x100 + self.id as u64) << 48
    }

    /// Assigns (or returns the existing) store object id for a VM object,
    /// keyed by its `uid`.
    pub fn oid_for_vmo(&mut self, vmo_uid: u64) -> ObjId {
        if let Some(&oid) = self.vmo_oids.get(&vmo_uid) {
            return ObjId(oid);
        }
        let oid = self.ns() | self.next_oid;
        self.next_oid += 1;
        self.vmo_oids.insert(vmo_uid, oid);
        ObjId(oid)
    }

    /// Allocates a fresh object id outside the VM mapping (ntlogs etc.).
    pub fn alloc_oid(&mut self) -> ObjId {
        let oid = self.ns() | self.next_oid;
        self.next_oid += 1;
        ObjId(oid)
    }

    /// The most recent checkpoint, if any.
    pub fn last_checkpoint(&self) -> Option<CkptId> {
        self.history.last().copied()
    }
}
