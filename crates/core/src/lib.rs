//! The Aurora single level store.
//!
//! This crate is the paper's primary contribution: the **SLS
//! orchestrator** that continuously and transparently persists entire
//! applications — CPU state, every POSIX kernel object, and memory — plus
//! the `libsls` developer API of Table 2 and the operations behind the
//! `sls` CLI of Table 1.
//!
//! A [`Host`] bundles a simulated kernel with an [`Sls`] instance whose
//! primary object store also carries SLSFS (mounted at `/sls`), so file
//! system state and process state commit in the same atomic checkpoint.
//!
//! The lifecycle mirrors §3 of the paper:
//!
//! 1. [`Host::persist`] places a process tree (or container) into a
//!    *persistence group*; [`Host::attach_backend`] wires the group to
//!    disk / memory / remote backends (several at once for replication).
//! 2. [`Host::checkpoint`] runs a serialization barrier: member processes
//!    stop, every reachable kernel object serializes itself into
//!    independent metadata records, dirty memory is armed for checkpoint
//!    COW (see `aurora-vm::cow`), and the processes resume — typically in
//!    well under a millisecond. Page data and metadata then flush to the
//!    backends *asynchronously*; output to the outside world stays held
//!    until the covering checkpoint is durable (external consistency),
//!    unless `sls_fdctl` disabled the hold.
//! 3. [`Host::restore`] rebuilds the application from any checkpoint —
//!    eagerly, or lazily with the hottest pages prefetched (the
//!    serverless fast-start path). [`Host::rollback`] is restore applied
//!    over a live group (debugging, speculation).
//! 4. [`crate::migrate`] ships self-contained checkpoints between hosts
//!    (`sls send` / `sls recv`) and implements iterative live migration.
//!
//! Checkpoint and restore both return phase breakdowns
//! ([`metrics::CheckpointBreakdown`], [`metrics::RestoreBreakdown`])
//! matching the rows of the paper's Tables 3 and 4.

pub mod api;
pub mod campaign;
pub mod checkpoint;
pub mod debug;
pub mod fleet;
pub mod flush;
pub mod group;
pub mod metrics;
pub mod migrate;
pub mod ntlog;
pub mod recrep;
pub mod replicate;
pub mod restore;
pub mod serialize;
pub mod spec;

use std::cell::RefCell;
use std::collections::{BTreeMap, HashSet};
use std::rc::Rc;
use std::sync::Arc;

use aurora_hw::{BlockDev, ResilientDev};
use aurora_objstore::{CkptId, ObjectStore, StoreConfig};
use aurora_posix::{Kernel, MountId, Pid};
use aurora_sim::error::{Error, Result};
use aurora_sim::SimClock;
use aurora_slsfs::{SlsFs, StoreHandle};

pub use group::{Backend, BackendKind, Group, GroupId};
pub use metrics::{CheckpointBreakdown, CheckpointOutcome, RestoreBreakdown};
pub use replicate::{
    promote_to_host, FramePayload, PromoteReport, ReplConfig, ReplFrame, ReplStats, Replicator,
};
// Lockdep moved down to `aurora-sim` so the object store's page-cache
// lock can carry a rank; existing `aurora_core::lockdep` paths keep
// working through this re-export.
pub use aurora_sim::lockdep;

/// Namespace base for SLSFS store objects on the primary store.
pub const SLSFS_NS: u64 = 1 << 48;

/// Where SLSFS is mounted.
pub const SLSFS_MOUNT: &str = "/sls";

/// SLS-wide counters.
#[derive(Debug, Default, Clone)]
pub struct SlsStats {
    /// Checkpoints taken.
    pub checkpoints: u64,
    /// Restores performed.
    pub restores: u64,
    /// Rollbacks performed.
    pub rollbacks: u64,
    /// Bytes of page data handed to backends.
    pub flushed_bytes: u64,
    /// Checkpoints that degraded from incremental to full because the
    /// incremental base was damaged or a backend was recovering.
    pub checkpoints_degraded: u64,
    /// Checkpoints aborted by a permanent flush failure (the previous
    /// durable snapshot remains the latest).
    pub checkpoints_aborted: u64,
}

/// The SLS state attached to one kernel.
pub struct Sls {
    /// The primary (system) store: SLSFS plus the default disk backend.
    pub primary: StoreHandle,
    /// Mount id of SLSFS in the kernel VFS.
    pub slsfs_mount: MountId,
    pub(crate) groups: BTreeMap<u32, Group>,
    next_group: u32,
    /// Processes whose state was rolled back and not yet notified
    /// (the speculation API's notification channel).
    pub(crate) rolled_back: HashSet<Pid>,
    /// One pager per (store, checkpoint): restores from the same image
    /// share it, which is what lets sibling instances share frames.
    pub(crate) pager_cache: std::collections::HashMap<(usize, u64), aurora_vm::PagerId>,
    /// Worker threads for the parallel flush hash stage (see
    /// `crate::flush`). 1 selects the serial path.
    pub flush_workers: usize,
    /// Worker threads for the batched restore pipeline's hash stage
    /// (see `crate::restore`). 1 selects the serial per-page path.
    pub restore_workers: usize,
    /// Replica count of the primary store's mirror (1 = unmirrored).
    /// Derived from the device at boot and carried across
    /// [`Host::crash_and_reboot`].
    pub mirror_width: usize,
    /// Continuous checkpoint shipping to a hot standby, when attached
    /// (see [`crate::replicate`]). A crash loses the session — the
    /// promoted standby is the surviving half.
    pub(crate) replicator: Option<Box<replicate::Replicator>>,
    /// The tenant scheduler pipelining per-group checkpoint cycles (see
    /// [`crate::fleet`]). Tuning survives a reboot; in-flight state does
    /// not.
    pub fleet: fleet::FleetScheduler,
    /// Counters.
    pub stats: SlsStats,
}

/// Default worker count for the parallel flush hash stage.
pub const DEFAULT_FLUSH_WORKERS: usize = 4;

/// Default worker count for the batched restore pipeline.
pub const DEFAULT_RESTORE_WORKERS: usize = 4;

/// A simulated machine: kernel + SLS.
pub struct Host {
    /// Host name.
    pub name: String,
    /// The shared virtual clock.
    pub clock: Arc<SimClock>,
    /// The simulated kernel.
    pub kernel: Kernel,
    /// The single level store.
    pub sls: Sls,
}

impl Host {
    /// Boots a host: kernel + primary store on `dev` + SLSFS at `/sls`.
    ///
    /// The device is wrapped in a [`ResilientDev`], so transient I/O
    /// errors are absorbed with bounded backoff before the store or the
    /// checkpoint pipeline ever sees them.
    pub fn boot(name: &str, dev: Box<dyn BlockDev>, config: StoreConfig) -> Result<Host> {
        let clock = dev.clock().clone();
        let mirror_width = dev.as_mirror().map(|m| m.width()).unwrap_or(1);
        let dev: Box<dyn BlockDev> = Box::new(ResilientDev::with_defaults(dev));
        let mut kernel = Kernel::boot(clock.clone(), name);
        let store: StoreHandle = Rc::new(RefCell::new(ObjectStore::format(dev, config)?));
        let fs = SlsFs::format(store.clone(), SLSFS_NS);
        let slsfs_mount = kernel.vfs.mount(SLSFS_MOUNT, Box::new(fs))?;
        Ok(Host {
            name: name.to_string(),
            clock,
            kernel,
            sls: Sls {
                primary: store,
                slsfs_mount,
                groups: BTreeMap::new(),
                next_group: 1,
                rolled_back: HashSet::new(),
                pager_cache: std::collections::HashMap::new(),
                flush_workers: DEFAULT_FLUSH_WORKERS,
                restore_workers: DEFAULT_RESTORE_WORKERS,
                mirror_width,
                replicator: None,
                fleet: fleet::FleetScheduler::new(),
                stats: SlsStats::default(),
            },
        })
    }

    /// Boots a host whose primary store sits on an N-way [`MirrorDev`]
    /// over `members` (each member gets its own retry layer inside the
    /// mirror). `Sls::mirror_width` reports the replica count.
    pub fn boot_mirrored(
        name: &str,
        members: Vec<Box<dyn BlockDev>>,
        config: StoreConfig,
    ) -> Result<Host> {
        let mirror = aurora_hw::MirrorDev::new(members)?;
        Host::boot(name, Box::new(mirror), config)
    }

    /// Re-boots a host from an existing store (after a crash or from a
    /// CLI world file): recovers the store and remounts SLSFS.
    pub fn boot_existing(name: &str, dev: Box<dyn BlockDev>, config: StoreConfig) -> Result<Host> {
        let clock = dev.clock().clone();
        let mirror_width = dev.as_mirror().map(|m| m.width()).unwrap_or(1);
        let dev: Box<dyn BlockDev> = Box::new(ResilientDev::with_defaults(dev));
        let mut kernel = Kernel::boot(clock.clone(), name);
        let store: StoreHandle = Rc::new(RefCell::new(ObjectStore::open(dev, config)?));
        let next_group = load_next_group(&store);
        let fs = SlsFs::load(store.clone(), SLSFS_NS)
            .unwrap_or_else(|_| SlsFs::format(store.clone(), SLSFS_NS));
        let slsfs_mount = kernel.vfs.mount(SLSFS_MOUNT, Box::new(fs))?;
        Ok(Host {
            name: name.to_string(),
            clock,
            kernel,
            sls: Sls {
                primary: store,
                slsfs_mount,
                groups: BTreeMap::new(),
                next_group,
                rolled_back: HashSet::new(),
                pager_cache: std::collections::HashMap::new(),
                flush_workers: DEFAULT_FLUSH_WORKERS,
                restore_workers: DEFAULT_RESTORE_WORKERS,
                mirror_width,
                replicator: None,
                fleet: fleet::FleetScheduler::new(),
                stats: SlsStats::default(),
            },
        })
    }

    /// Simulates a whole-machine crash: the kernel (with every process)
    /// is lost, the primary store recovers to its last durable
    /// checkpoint. Group registrations survive in the checkpoint
    /// metadata; the caller re-registers and restores.
    pub fn crash_and_reboot(self) -> Result<Host> {
        let Host {
            name,
            clock,
            sls,
            kernel,
        } = self;
        // The kernel (VFS's SLSFS mount, restore pagers) and the groups'
        // backends hold store handles; the crash destroys all of them.
        drop(kernel);
        let Sls {
            primary,
            groups,
            slsfs_mount: _,
            next_group: _,
            rolled_back: _,
            pager_cache: _,
            flush_workers,
            restore_workers,
            mirror_width,
            replicator,
            fleet,
            stats: _,
        } = sls;
        drop(groups);
        // The replication session dies with the machine: its in-flight
        // frames and standby store are only reachable through promote,
        // which the operator drives from the surviving side.
        drop(replicator);
        let store = Rc::try_unwrap(primary)
            .map_err(|_| Error::internal("store handle still shared at crash"))?
            .into_inner();
        let store = store.recover()?;
        let store: StoreHandle = Rc::new(RefCell::new(store));
        let next_group = load_next_group(&store);
        let mut kernel = Kernel::boot(clock.clone(), &name);
        let fs = SlsFs::load(store.clone(), SLSFS_NS)
            .unwrap_or_else(|_| SlsFs::format(store.clone(), SLSFS_NS));
        let slsfs_mount = kernel.vfs.mount(SLSFS_MOUNT, Box::new(fs))?;
        Ok(Host {
            name,
            clock,
            kernel,
            sls: Sls {
                primary: store,
                slsfs_mount,
                groups: BTreeMap::new(),
                next_group,
                rolled_back: HashSet::new(),
                pager_cache: std::collections::HashMap::new(),
                flush_workers,
                restore_workers,
                mirror_width,
                replicator: None,
                // In-flight pipelined flushes died with the machine;
                // the scheduler's tuning survives.
                fleet: fleet.fresh_config(),
                stats: SlsStats::default(),
            },
        })
    }

    /// Rebuilds every rebuilding mirror replica of the primary store
    /// from its live allocation maps and promotes them to active; see
    /// [`ObjectStore::resilver`]. A no-op report when the primary is
    /// unmirrored or fully in sync.
    pub fn resilver(&mut self) -> Result<aurora_objstore::ResilverReport> {
        self.sls.primary.borrow_mut().resilver()
    }

    /// Registers a process tree as a persistence group (`sls persist`).
    ///
    /// The root process and all of its current descendants join; fork
    /// children inherit membership automatically. The group starts with
    /// the primary disk backend attached.
    pub fn persist(&mut self, name: &str, root: Pid) -> Result<GroupId> {
        let gid = self.sls.next_group;
        self.sls.next_group += 1;
        // Collect the tree.
        let mut members = vec![root];
        let mut i = 0;
        while i < members.len() {
            let children = self.kernel.proc_ref(members[i])?.children.clone();
            members.extend(children);
            i += 1;
        }
        for &pid in &members {
            self.kernel.proc_mut(pid)?.persist_group = Some(gid);
        }
        let mut group = Group::new(gid, name, root);
        group.backends.push(Backend {
            kind: BackendKind::Disk,
            store: self.sls.primary.clone(),
            needs_full: true,
            history: Vec::new(),
        });
        self.sls.groups.insert(gid, group);
        Ok(GroupId(gid))
    }

    /// Registers a whole container as a persistence group.
    pub fn persist_container(&mut self, name: &str, ct: aurora_posix::CtId) -> Result<GroupId> {
        let procs = self.kernel.container_procs(ct)?;
        let root = *procs
            .first()
            .ok_or_else(|| Error::invalid("container has no processes"))?;
        let gid = self.persist(name, root)?;
        for pid in procs {
            self.kernel.proc_mut(pid)?.persist_group = Some(gid.0);
        }
        Ok(gid)
    }

    /// Attaches an additional backend (`sls attach`).
    pub fn attach_backend(&mut self, gid: GroupId, kind: BackendKind, store: StoreHandle) -> Result<()> {
        let group = self.sls.group_mut(gid)?;
        group.backends.push(Backend {
            kind,
            store,
            needs_full: true,
            history: Vec::new(),
        });
        Ok(())
    }

    /// Rehomes a group's primary backend onto its own store, giving the
    /// tenant a private fault domain: a device fault on this store can
    /// abort or quarantine only this tenant. The group's checkpoint
    /// history starts over on the new store (the next capture is a full
    /// base).
    pub fn rehome_group(&mut self, gid: GroupId, store: StoreHandle) -> Result<()> {
        let group = self.sls.group_mut(gid)?;
        let primary = group
            .backends
            .first_mut()
            .ok_or_else(|| Error::invalid("group has no primary backend"))?;
        primary.store = store;
        primary.needs_full = true;
        primary.history.clear();
        group.history.clear();
        Ok(())
    }

    /// Detaches a backend by index (`sls detach`). The primary disk
    /// backend (index 0) cannot be detached.
    pub fn detach_backend(&mut self, gid: GroupId, index: usize) -> Result<()> {
        let group = self.sls.group_mut(gid)?;
        if index == 0 {
            return Err(Error::invalid("cannot detach the primary backend"));
        }
        if index >= group.backends.len() {
            return Err(Error::not_found(format!("backend {index}")));
        }
        group.backends.remove(index);
        Ok(())
    }

    /// Registers a System V message queue with a group so checkpoints
    /// capture its contents (queues are system-wide objects).
    pub fn group_add_msgq(&mut self, gid: GroupId, key: i32) -> Result<()> {
        let group = self.sls.group_mut(gid)?;
        if !group.msgq_keys.contains(&key) {
            group.msgq_keys.push(key);
        }
        Ok(())
    }

    /// Lists persistence groups with their members and checkpoint history
    /// (`sls ps`).
    pub fn ps(&self) -> Vec<PsEntry> {
        self.sls
            .groups
            .values()
            .map(|g| PsEntry {
                group: GroupId(g.id),
                name: g.name.clone(),
                members: self.group_members(GroupId(g.id)),
                checkpoints: g.history.clone(),
                backends: g.backends.iter().map(|b| b.kind).collect(),
            })
            .collect()
    }

    /// Current member pids of a group (membership lives on processes).
    pub fn group_members(&self, gid: GroupId) -> Vec<Pid> {
        self.kernel
            .procs
            .values()
            .filter(|p| p.persist_group == Some(gid.0) && p.state != aurora_posix::ProcState::Zombie)
            .map(|p| p.pid)
            .collect()
    }

    /// Prunes a superseded incarnation: deletes the *live* store objects
    /// of group `old_gid`'s namespace (its history checkpoints remain
    /// restorable — deltas hold their own block references — until the
    /// history window GCs them). Call after the application has been
    /// restored, re-persisted under a new group, and fully checkpointed;
    /// without pruning, every restart would leak the previous
    /// incarnation's live objects.
    pub fn prune_incarnation(&mut self, old_gid: u32) -> Result<u64> {
        let ns = (0x100 + old_gid as u64) << 48;
        let mut store = self.sls.primary.borrow_mut();
        let victims: Vec<aurora_objstore::ObjId> = store
            .live_object_ids()
            .into_iter()
            .filter(|oid| oid.0 & !0xFFFF_FFFF_FFFF == ns)
            .collect();
        let n = victims.len() as u64;
        for oid in victims {
            store.delete_object(oid)?;
        }
        Ok(n)
    }

    /// Reaps SLSFS orphans: unlinked-but-open files whose on-disk open
    /// reference counts exceed the references actually held by live
    /// processes. Run after a reboot once the operator has decided which
    /// applications to restore — files still referenced by restored
    /// processes survive; abandoned ones are reclaimed.
    pub fn reap_fs_orphans(&mut self) -> Result<()> {
        // Count live vnode references per inode.
        let mut live: std::collections::BTreeMap<u64, u32> = std::collections::BTreeMap::new();
        let mount = self.sls.slsfs_mount;
        for proc in self.kernel.procs.values() {
            for (_, fid) in proc.fds.iter() {
                if let Some(file) = self.kernel.files.get(fid.0) {
                    if let aurora_posix::FileKind::Vnode(vref) = &file.kind {
                        if vref.mount == mount {
                            *live.entry(vref.node).or_insert(0) += 1;
                        }
                    }
                }
            }
        }
        let fs = self
            .kernel
            .vfs
            .fs(mount)
            .as_any_mut()
            .downcast_mut::<SlsFs>()
            .ok_or_else(|| Error::internal("slsfs mount is not SLSFS"))?;
        fs.reap_orphans(&live);
        Ok(())
    }

    /// Zero-copy clone of a file or subtree on SLSFS (the paper's
    /// "zero copy snapshots and clones ... including file system state");
    /// both paths must be absolute under `/sls`. No data blocks are
    /// copied — the object store shares them copy-on-write.
    pub fn clone_sls_path(&mut self, src: &str, dst: &str) -> Result<()> {
        let (sparent, sname) = self.kernel.vfs.resolve_parent(src)?;
        let (dparent, dname) = self.kernel.vfs.resolve_parent(dst)?;
        if sparent.mount != self.sls.slsfs_mount || dparent.mount != self.sls.slsfs_mount {
            return Err(Error::unsupported("clone is an SLSFS operation"));
        }
        let fs = self
            .kernel
            .vfs
            .fs(self.sls.slsfs_mount)
            .as_any_mut()
            .downcast_mut::<SlsFs>()
            .ok_or_else(|| Error::internal("slsfs mount is not SLSFS"))?;
        fs.clone_path(sparent.node, &sname, dparent.node, &dname)?;
        Ok(())
    }

    /// Releases external-consistency holds for every checkpoint whose
    /// durable instant has passed. Call after advancing the clock (the
    /// checkpoint loop does this automatically).
    pub fn poll_durability(&mut self) {
        let now = self.clock.now();
        for group in self.sls.groups.values_mut() {
            while let Some(&(seq, at)) = group.ec_outstanding.front() {
                if at <= now {
                    self.kernel.ec_release(group.id, seq);
                    group.ec_outstanding.pop_front();
                } else {
                    break;
                }
            }
        }
    }

    /// Waits (advances the virtual clock) until every outstanding
    /// checkpoint of `gid` is durable, then releases holds. This is the
    /// blocking flavour used by `sls_barrier`.
    pub fn wait_durable(&mut self, gid: GroupId) -> Result<()> {
        let latest = self
            .sls
            .group_ref(gid)?
            .ec_outstanding
            .back()
            .map(|&(_, at)| at);
        if let Some(at) = latest {
            self.clock.advance_to(at);
        }
        self.poll_durability();
        Ok(())
    }
}

/// One row of `sls ps`.
#[derive(Debug, Clone)]
pub struct PsEntry {
    /// Group id.
    pub group: GroupId,
    /// Group name.
    pub name: String,
    /// Live member pids.
    pub members: Vec<Pid>,
    /// Checkpoint ids on the primary backend, oldest first.
    pub checkpoints: Vec<CkptId>,
    /// Attached backend kinds.
    pub backends: Vec<BackendKind>,
}

impl Sls {
    /// The current group-id allocator value (persisted with every
    /// checkpoint; see `checkpoint.rs`).
    pub(crate) fn next_group_value(&self) -> u32 {
        self.next_group
    }

    /// Looks up a persistence group.
    pub fn group_ref(&self, gid: GroupId) -> Result<&Group> {
        self.groups
            .get(&gid.0)
            .ok_or_else(|| Error::not_found(format!("persistence group {}", gid.0)))
    }

    /// Looks up a persistence group mutably (policy tuning: period,
    /// history window).
    pub fn group_mut(&mut self, gid: GroupId) -> Result<&mut Group> {
        self.groups
            .get_mut(&gid.0)
            .ok_or_else(|| Error::not_found(format!("persistence group {}", gid.0)))
    }
}

/// Reads the durable group-id allocator from the store head (group ids
/// are never reused across reboots; see `checkpoint.rs`).
fn load_next_group(store: &StoreHandle) -> u32 {
    let st = store.borrow_mut();
    let Some(head) = st.head() else { return 1 };
    st.get_blob(head, "sls/host")
        .ok()
        .flatten()
        .and_then(|blob| {
            let mut d = aurora_sim::codec::Decoder::new(&blob);
            d.u32().ok()
        })
        .unwrap_or(1)
}

impl core::fmt::Debug for Host {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Host")
            .field("name", &self.name)
            .field("groups", &self.sls.groups.len())
            .field("procs", &self.kernel.procs.len())
            .finish()
    }
}
