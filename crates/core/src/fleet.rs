//! Fleet-scale tenant scheduler: pipelined per-group checkpoint cycles.
//!
//! The serverless warm-start story (§4 of the paper) runs thousands of
//! tenants, each checkpointed at high rate. A single global barrier
//! serializes the whole fleet on one cycle at a time, so the sharded
//! hash/dedup/coalesce pipeline and the delta log idle while unrelated
//! tenants queue — the aggregation bottleneck stdchk identifies for
//! checkpoint storage. This module narrows the serialization to what
//! correctness actually needs:
//!
//! * a **per-group barrier** ([`enter_group`]) — one group's cycles
//!   still exclude each other (its COW epochs and backend chains would
//!   interleave incoherently), but tenant A's flush overlaps tenant B's
//!   capture;
//! * a **per-store commit lock** ([`commit_locks_for`]) — a store
//!   shared by several groups sees one typestate commit
//!   (seal → barrier → flip) at a time, preserving per-backend commit
//!   ordering;
//! * a [`FleetScheduler`] — a bounded run queue of in-flight flushes
//!   plus a set of hash-lane horizons. Admission retires the oldest
//!   flush when the queue is full; a pipelined flush's hash stage
//!   occupies the earliest-free lane instead of charging the driving
//!   thread's clock, which is exactly the idle capacity the serialized
//!   fleet wastes.
//!
//! Commit-ordering argument: within one group, the per-group barrier
//! serializes cycles end-to-end, so its backends' chains grow in cycle
//! order. Across groups sharing a store, the commit lock makes the
//! store's journal/superblock sequence a clean interleaving of whole
//! commits; each group's own chain is still ordered by its barrier.
//! Durability is per-cycle (`durable_at` = max over backends and the
//! hash lane), so external-consistency release never observes another
//! tenant's cycle.
//!
//! Barriers and commit locks are minted once per group / store and
//! deliberately leaked: they are `'static` for lockdep, bounded by the
//! number of groups and stores a process ever creates, and a group id
//! is never reused across reboots.

use std::collections::{BTreeMap, VecDeque};
use std::rc::Rc;

use aurora_sim::error::Result;
use aurora_sim::lockdep::{
    OrderedMutex, RANK_FLEET_REGISTRY, RANK_GROUP_BARRIER, RANK_STORE_COMMIT,
};
use aurora_sim::stats::LogHistogram;
use aurora_sim::time::{SimDuration, SimTime};
use aurora_sim::SimClock;

use crate::group::{Group, GroupId};
use crate::metrics::{self, CheckpointBreakdown};
use crate::Host;

/// How `flush_capture` accounts for the hash stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FlushMode {
    /// Charge the hash stage to the driving thread's clock (the classic
    /// serialized cycle: capture, hash, flush, commit, one after the
    /// other).
    Inline,
    /// Book the hash stage on a fleet-scheduler lane horizon; the
    /// driving thread moves on to the next tenant and the cycle's
    /// durable instant waits for the lane.
    Pipelined,
}

/// Lock registry: per-group barriers and per-store commit locks, keyed
/// by group id and store pointer. Entries are leaked `'static` lock
/// instances (see the module docs for why that is bounded).
struct Registry {
    groups: BTreeMap<u32, &'static OrderedMutex<()>>,
    stores: BTreeMap<usize, &'static OrderedMutex<()>>,
}

/// Held only for lookups, and always with nothing else held (it ranks
/// outermost): callers resolve their locks *before* entering a barrier.
static REGISTRY: OrderedMutex<Registry> = OrderedMutex::new(
    RANK_FLEET_REGISTRY,
    "fleet_registry",
    Registry {
        groups: BTreeMap::new(),
        stores: BTreeMap::new(),
    },
);

/// The barrier instance serializing group `gid`'s cycles.
pub(crate) fn barrier_for(gid: u32) -> &'static OrderedMutex<()> {
    let mut reg = REGISTRY.lock();
    if let Some(&b) = reg.groups.get(&gid) {
        return b;
    }
    let minted: &'static OrderedMutex<()> = Box::leak(Box::new(OrderedMutex::new(
        RANK_GROUP_BARRIER,
        "group_barrier",
        (),
    )));
    reg.groups.insert(gid, minted);
    minted
}

/// Guard for one group's checkpoint/restore cycle.
pub(crate) struct GroupCycleGuard {
    _guard: aurora_sim::lockdep::OrderedMutexGuard<'static, ()>,
}

/// Enters group `gid`'s cycle: takes its per-group barrier. Cycles of
/// different groups pipeline; two cycles of the same group exclude each
/// other.
pub(crate) fn enter_group(gid: u32) -> GroupCycleGuard {
    let group_barrier = barrier_for(gid);
    GroupCycleGuard {
        _guard: group_barrier.lock(),
    }
}

/// Resolves the commit lock of every backend of `group`, in backend
/// order. A store is keyed by its handle's pointer identity: two
/// backends (of any groups) sharing a `StoreHandle` share the lock. A
/// pointer reused after a store is dropped aliases the old lock, which
/// only serializes a little coarser — never less.
pub(crate) fn commit_locks_for(group: &Group) -> Vec<&'static OrderedMutex<()>> {
    let mut reg = REGISTRY.lock();
    group
        .backends
        .iter()
        .map(|b| {
            let key = Rc::as_ptr(&b.store) as usize;
            if let Some(&l) = reg.stores.get(&key) {
                return l;
            }
            let minted: &'static OrderedMutex<()> = Box::leak(Box::new(OrderedMutex::new(
                RANK_STORE_COMMIT,
                "store_commit",
                (),
            )));
            reg.stores.insert(key, minted);
            minted
        })
        .collect()
}

/// Telemetry of the fleet scheduler (surfaced by `sls info`).
#[derive(Debug, Clone, Default)]
pub struct FleetStats {
    /// Cycles admitted through the pipelined path.
    pub admitted: u64,
    /// Admitted cycles that overlapped at least one in-flight flush.
    pub overlapped: u64,
    /// Admissions that stalled on a full run queue (the oldest flush
    /// had to retire first).
    pub queue_stalls: u64,
    /// High-water mark of the in-flight queue depth.
    pub queue_depth_max: u64,
    /// Per-tenant stop times of pipelined cycles, in sim ns.
    pub stop_hist: LogHistogram,
}

/// Pipelines checkpoint cycles across tenants.
///
/// The scheduler holds two pieces of virtual-time state: the bounded
/// queue of in-flight flushes (group id, durable instant) and the
/// per-lane horizons of the hash stage. It is rebuilt empty on reboot —
/// in-flight flushes die with the machine like any other undurable
/// state.
#[derive(Debug, Clone)]
pub struct FleetScheduler {
    /// In-flight flushes the run queue admits before stalling a
    /// capture on the oldest drain.
    pub queue_cap: usize,
    /// Hash lanes available to overlapped flushes: the idle cores a
    /// serialized fleet leaves unused while one tenant's cycle runs.
    pub hash_lanes: usize,
    /// Busy-until horizon per hash lane.
    lanes: Vec<SimTime>,
    /// In-flight flushes, oldest first: `(group id, durable instant)`.
    inflight: VecDeque<(u32, SimTime)>,
    /// Counters.
    pub stats: FleetStats,
}

/// Default bound on in-flight flushes.
pub const DEFAULT_FLEET_QUEUE_CAP: usize = 32;

/// Default hash-lane count for overlapped flushes.
pub const DEFAULT_HASH_LANES: usize = 4;

impl Default for FleetScheduler {
    fn default() -> Self {
        FleetScheduler::new()
    }
}

impl FleetScheduler {
    /// A scheduler with the default queue bound and lane count.
    pub fn new() -> FleetScheduler {
        FleetScheduler {
            queue_cap: DEFAULT_FLEET_QUEUE_CAP,
            hash_lanes: DEFAULT_HASH_LANES,
            lanes: Vec::new(),
            inflight: VecDeque::new(),
            stats: FleetStats::default(),
        }
    }

    /// A fresh scheduler carrying this one's configuration (reboot:
    /// runtime state is lost, tuning survives).
    pub(crate) fn fresh_config(&self) -> FleetScheduler {
        FleetScheduler {
            queue_cap: self.queue_cap,
            hash_lanes: self.hash_lanes,
            ..FleetScheduler::new()
        }
    }

    /// Current in-flight flush count.
    pub fn queue_depth(&self) -> usize {
        self.inflight.len()
    }

    /// Admits a capture: retires already-durable flushes for free, then
    /// — if the queue is still full — advances the clock to the oldest
    /// flush's durable instant and retires it.
    pub(crate) fn admit(&mut self, clock: &SimClock) {
        let now = clock.now();
        while matches!(self.inflight.front(), Some(&(_, at)) if at <= now) {
            self.inflight.pop_front();
        }
        while self.inflight.len() >= self.queue_cap.max(1) {
            if let Some((_, at)) = self.inflight.pop_front() {
                clock.advance_to(at);
                self.stats.queue_stalls += 1;
            }
        }
        self.stats.admitted += 1;
        if !self.inflight.is_empty() {
            self.stats.overlapped += 1;
        }
    }

    /// Books `cost` on the earliest-free hash lane at or after `now`;
    /// returns the lane's completion instant.
    pub(crate) fn hash_slot(&mut self, now: SimTime, cost: SimDuration) -> SimTime {
        self.lanes.resize(self.hash_lanes.max(1), SimTime::ZERO);
        let lane = match self
            .lanes
            .iter_mut()
            .min_by_key(|horizon| horizon.as_nanos())
        {
            Some(l) => l,
            // Unreachable: resize above guarantees at least one lane.
            None => return now + cost,
        };
        let start = now.max(*lane);
        let done = start + cost;
        *lane = done;
        done
    }

    /// Records a committed pipelined cycle.
    pub(crate) fn complete(&mut self, gid: u32, durable: SimTime, stop: SimDuration) {
        self.inflight.push_back((gid, durable));
        self.stats.queue_depth_max = self.stats.queue_depth_max.max(self.inflight.len() as u64);
        self.stats.stop_hist.record_duration(stop);
    }

    /// Advances the clock past every in-flight flush and empties the
    /// queue.
    pub(crate) fn drain(&mut self, clock: &SimClock) {
        if let Some(at) = self.inflight.iter().map(|&(_, at)| at).max() {
            clock.advance_to(at);
        }
        self.inflight.clear();
    }
}

impl Host {
    /// Takes a pipelined checkpoint of one tenant: admission through the
    /// fleet scheduler's run queue, capture under the per-group barrier,
    /// hash on a scheduler lane, commit under the per-store locks. The
    /// returned breakdown's `durable_at` gates this cycle exactly like
    /// the serialized path; use [`Host::fleet_drain`] (or
    /// [`Host::wait_durable`]) to wait it out.
    pub fn checkpoint_pipelined(
        &mut self,
        gid: GroupId,
        full: bool,
        name: Option<&str>,
    ) -> Result<CheckpointBreakdown> {
        let (overlapped0, stalls0) = {
            let s = &self.sls.fleet.stats;
            (s.overlapped, s.queue_stalls)
        };
        self.sls.fleet.admit(&self.clock);
        let breakdown = self.checkpoint_mode(gid, full, name, FlushMode::Pipelined)?;
        if breakdown.outcome.committed() {
            self.sls
                .fleet
                .complete(gid.0, breakdown.durable_at, breakdown.stop_time);
        }
        {
            let s = &self.sls.fleet.stats;
            let mut m = metrics::METRICS.lock();
            m.fleet_cycles_pipelined += 1;
            m.fleet_overlapped_cycles += s.overlapped - overlapped0;
            m.fleet_queue_stalls += s.queue_stalls - stalls0;
            m.fleet_queue_depth_max = m.fleet_queue_depth_max.max(s.queue_depth_max);
            m.fleet_stop_p99_ns = s.stop_hist.p99();
        }
        Ok(breakdown)
    }

    /// Checkpoints a wave of tenants through the scheduler, incremental
    /// by default (`full` forces full captures). Captures interleave
    /// with earlier tenants' flushes; nothing waits for global
    /// durability — drain explicitly when the wave must be on disk.
    pub fn checkpoint_all(
        &mut self,
        gids: &[GroupId],
        full: bool,
    ) -> Result<Vec<CheckpointBreakdown>> {
        let mut out = Vec::with_capacity(gids.len());
        for &gid in gids {
            out.push(self.checkpoint_pipelined(gid, full, None)?);
        }
        Ok(out)
    }

    /// Periodic pipelined driver: checkpoints `gid` when its period
    /// elapsed, through the scheduler. Returns `None` when not yet due.
    pub fn fleet_tick(&mut self, gid: GroupId) -> Result<Option<CheckpointBreakdown>> {
        let now = self.clock.now();
        let due = {
            let group = self.sls.group_ref(gid)?;
            now >= group.next_due
        };
        if !due {
            self.poll_durability();
            return Ok(None);
        }
        let breakdown = self.checkpoint_pipelined(gid, false, None)?;
        let group = self.sls.group_mut(gid)?;
        group.next_due = now + group.period;
        Ok(Some(breakdown))
    }

    /// Waits (advances the virtual clock) until every in-flight
    /// pipelined flush is durable, then releases external-consistency
    /// holds.
    pub fn fleet_drain(&mut self) {
        let clock = self.clock.clone();
        self.sls.fleet.drain(&clock);
        self.poll_durability();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_lanes_overlap_in_virtual_time() {
        let mut f = FleetScheduler::new();
        f.hash_lanes = 2;
        let t0 = SimTime::ZERO;
        let c = SimDuration::from_micros(10);
        // Two flushes at t0 land on distinct lanes: both end at t0+c.
        assert_eq!(f.hash_slot(t0, c), t0 + c);
        assert_eq!(f.hash_slot(t0, c), t0 + c);
        // The third queues behind the earliest lane.
        assert_eq!(f.hash_slot(t0, c), t0 + c + c);
    }

    #[test]
    fn admit_bounds_the_queue() {
        let clock = SimClock::new();
        let mut f = FleetScheduler::new();
        f.queue_cap = 2;
        f.admit(&clock);
        f.complete(1, SimTime::from_nanos(1_000), SimDuration::from_nanos(10));
        f.admit(&clock);
        f.complete(2, SimTime::from_nanos(2_000), SimDuration::from_nanos(10));
        assert_eq!(f.queue_depth(), 2);
        // The queue is full: the third admission advances the clock to
        // the oldest durable instant and retires it.
        f.admit(&clock);
        assert_eq!(f.queue_depth(), 1);
        assert!(clock.now() >= SimTime::from_nanos(1_000));
        assert_eq!(f.stats.queue_stalls, 1);
        assert_eq!(f.stats.admitted, 3);
        assert_eq!(f.stats.overlapped, 2);
    }

    #[test]
    fn same_group_barrier_instance_is_reused() {
        let a = barrier_for(90_001);
        let b = barrier_for(90_001);
        let c = barrier_for(90_002);
        assert!(std::ptr::eq(a, b));
        assert!(!std::ptr::eq(a, c));
    }
}
