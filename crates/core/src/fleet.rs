//! Fleet-scale tenant scheduler: pipelined per-group checkpoint cycles.
//!
//! The serverless warm-start story (§4 of the paper) runs thousands of
//! tenants, each checkpointed at high rate. A single global barrier
//! serializes the whole fleet on one cycle at a time, so the sharded
//! hash/dedup/coalesce pipeline and the delta log idle while unrelated
//! tenants queue — the aggregation bottleneck stdchk identifies for
//! checkpoint storage. This module narrows the serialization to what
//! correctness actually needs:
//!
//! * a **per-group barrier** ([`enter_group`]) — one group's cycles
//!   still exclude each other (its COW epochs and backend chains would
//!   interleave incoherently), but tenant A's flush overlaps tenant B's
//!   capture;
//! * a **per-store commit lock** ([`commit_locks_for`]) — a store
//!   shared by several groups sees one typestate commit
//!   (seal → barrier → flip) at a time, preserving per-backend commit
//!   ordering;
//! * a [`FleetScheduler`] — a bounded run queue of in-flight flushes
//!   plus a set of hash-lane horizons. Admission retires the oldest
//!   flush when the queue is full; a pipelined flush's hash stage
//!   occupies the earliest-free lane instead of charging the driving
//!   thread's clock, which is exactly the idle capacity the serialized
//!   fleet wastes.
//!
//! Commit-ordering argument: within one group, the per-group barrier
//! serializes cycles end-to-end, so its backends' chains grow in cycle
//! order. Across groups sharing a store, the commit lock makes the
//! store's journal/superblock sequence a clean interleaving of whole
//! commits; each group's own chain is still ordered by its barrier.
//! Durability is per-cycle (`durable_at` = max over backends and the
//! hash lane), so external-consistency release never observes another
//! tenant's cycle.
//!
//! Barriers and commit locks are minted once per group / store and
//! deliberately leaked: they are `'static` for lockdep, bounded by the
//! number of groups and stores a process ever creates, and a group id
//! is never reused across reboots.
//!
//! **Fault domains.** Every tenant additionally carries a
//! [`TenantDomain`]: a health state machine
//! (`Healthy → Degraded → Quarantined`, mirroring the mirror layer's
//! replica states) driven by checkpoint outcomes, per-cycle deadlines
//! on the virtual clock, and consecutive-failure counters. A
//! quarantined tenant's cycles are skipped before its group barrier is
//! ever taken and its in-flight lane bookings are released, so one
//! sick tenant cannot back up the shared run queue — the rest of the
//! fleet proceeds. Re-admission is probed with capped exponential
//! backoff, gated on the tenant's backing devices
//! ([`aurora_hw::ResilientDev`] health / mirror degradation) looking
//! healthy again; the first committed on-time probe re-admits the
//! tenant. The table lives behind the `tenant_health` lockdep rank:
//! the admission gate consults it before any barrier is taken and the
//! verdict is recorded after the cycle's guard is released, so it is
//! never held across a capture or flush.

use std::collections::{BTreeMap, VecDeque};
use std::rc::Rc;

use aurora_hw::DevHealth;
use aurora_sim::error::Result;
use aurora_sim::lockdep::{
    OrderedMutex, RANK_FLEET_REGISTRY, RANK_GROUP_BARRIER, RANK_STORE_COMMIT,
    RANK_TENANT_HEALTH,
};
use aurora_sim::stats::LogHistogram;
use aurora_sim::time::{SimDuration, SimTime};
use aurora_sim::SimClock;

use crate::group::{Group, GroupId};
use crate::metrics::{self, CheckpointBreakdown, CheckpointOutcome};
use crate::Host;

/// How `flush_capture` accounts for the hash stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FlushMode {
    /// Charge the hash stage to the driving thread's clock (the classic
    /// serialized cycle: capture, hash, flush, commit, one after the
    /// other).
    Inline,
    /// Book the hash stage on a fleet-scheduler lane horizon; the
    /// driving thread moves on to the next tenant and the cycle's
    /// durable instant waits for the lane.
    Pipelined,
}

/// Lock registry: per-group barriers and per-store commit locks, keyed
/// by group id and store pointer. Entries are leaked `'static` lock
/// instances (see the module docs for why that is bounded).
struct Registry {
    groups: BTreeMap<u32, &'static OrderedMutex<()>>,
    stores: BTreeMap<usize, &'static OrderedMutex<()>>,
}

/// Held only for lookups, and always with nothing else held (it ranks
/// outermost): callers resolve their locks *before* entering a barrier.
static REGISTRY: OrderedMutex<Registry> = OrderedMutex::new(
    RANK_FLEET_REGISTRY,
    "fleet_registry",
    Registry {
        groups: BTreeMap::new(),
        stores: BTreeMap::new(),
    },
);

/// The barrier instance serializing group `gid`'s cycles.
pub(crate) fn barrier_for(gid: u32) -> &'static OrderedMutex<()> {
    let mut reg = REGISTRY.lock();
    if let Some(&b) = reg.groups.get(&gid) {
        return b;
    }
    let minted: &'static OrderedMutex<()> = Box::leak(Box::new(OrderedMutex::new(
        RANK_GROUP_BARRIER,
        "group_barrier",
        (),
    )));
    reg.groups.insert(gid, minted);
    minted
}

/// Guard for one group's checkpoint/restore cycle.
pub(crate) struct GroupCycleGuard {
    _guard: aurora_sim::lockdep::OrderedMutexGuard<'static, ()>,
}

/// Enters group `gid`'s cycle: takes its per-group barrier. Cycles of
/// different groups pipeline; two cycles of the same group exclude each
/// other.
pub(crate) fn enter_group(gid: u32) -> GroupCycleGuard {
    let group_barrier = barrier_for(gid);
    GroupCycleGuard {
        _guard: group_barrier.lock(),
    }
}

/// Resolves the commit lock of every backend of `group`, in backend
/// order. A store is keyed by its handle's pointer identity: two
/// backends (of any groups) sharing a `StoreHandle` share the lock. A
/// pointer reused after a store is dropped aliases the old lock, which
/// only serializes a little coarser — never less.
pub(crate) fn commit_locks_for(group: &Group) -> Vec<&'static OrderedMutex<()>> {
    let mut reg = REGISTRY.lock();
    group
        .backends
        .iter()
        .map(|b| {
            let key = Rc::as_ptr(&b.store) as usize;
            if let Some(&l) = reg.stores.get(&key) {
                return l;
            }
            let minted: &'static OrderedMutex<()> = Box::leak(Box::new(OrderedMutex::new(
                RANK_STORE_COMMIT,
                "store_commit",
                (),
            )));
            reg.stores.insert(key, minted);
            minted
        })
        .collect()
}

/// Health of one tenant's fault domain, mirroring the replica states
/// of the mirror layer: healthy tenants cycle normally, degraded
/// tenants failed recently but still cycle, quarantined tenants are
/// skipped until a re-admission probe succeeds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TenantHealth {
    /// Cycling normally.
    #[default]
    Healthy,
    /// At least one recent cycle failed or missed its deadline; still
    /// cycling, [`QUARANTINE_AFTER`] consecutive failures away from
    /// quarantine.
    Degraded,
    /// Cycles are skipped (the group barrier is never taken);
    /// re-admission is probed with capped exponential backoff once the
    /// backing devices report healthy again.
    Quarantined,
}

impl TenantHealth {
    /// Short lowercase label for logs and the CLI.
    pub fn as_str(self) -> &'static str {
        match self {
            TenantHealth::Healthy => "healthy",
            TenantHealth::Degraded => "degraded",
            TenantHealth::Quarantined => "quarantined",
        }
    }
}

/// Consecutive failed cycles (aborts, hard errors, deadline misses, or
/// damaged-base degradations) before a tenant is quarantined. The
/// first failure already marks it `Degraded`.
pub const QUARANTINE_AFTER: u32 = 3;

/// Initial re-admission probe backoff after entering quarantine.
pub const PROBE_BACKOFF_BASE: SimDuration = SimDuration::from_millis(10);

/// Cap on the re-admission probe backoff (capped exponential: the
/// backoff doubles per failed or deferred probe up to this bound).
pub const PROBE_BACKOFF_CAP: SimDuration = SimDuration::from_secs(1);

/// Default per-cycle deadline on the virtual clock: generous next to a
/// healthy cycle (microseconds to low milliseconds) so only genuinely
/// pathological tenants — wedged flushes, latency-spiking devices —
/// miss it.
pub const DEFAULT_CYCLE_DEADLINE: SimDuration = SimDuration::from_millis(250);

/// Bound on the per-tenant fault log retained in [`FleetStats`].
const TENANT_FAULT_LOG_CAP: usize = 32;

/// One tenant's fault-domain record (snapshot via
/// [`FleetScheduler::domain`] / [`Host::fleet_health`]).
#[derive(Debug, Clone)]
pub struct TenantDomain {
    /// Current health state.
    pub health: TenantHealth,
    /// Consecutive failed cycles; reset by an on-time commit.
    pub consecutive_failures: u32,
    /// Total failed cycles charged to this tenant.
    pub failures: u64,
    /// Committed cycles that blew the virtual-clock deadline.
    pub deadline_misses: u64,
    /// Cycles skipped while quarantined.
    pub cycles_skipped: u64,
    /// Times this tenant entered quarantine.
    pub quarantines: u64,
    /// Times a probe cycle re-admitted this tenant.
    pub readmissions: u64,
    /// Earliest instant the next re-admission probe may run.
    pub next_probe: SimTime,
    /// Current probe backoff.
    pub backoff: SimDuration,
    /// Most recent fault charged to this tenant.
    pub last_fault: Option<String>,
}

impl Default for TenantDomain {
    fn default() -> Self {
        TenantDomain {
            health: TenantHealth::Healthy,
            consecutive_failures: 0,
            failures: 0,
            deadline_misses: 0,
            cycles_skipped: 0,
            quarantines: 0,
            readmissions: 0,
            next_probe: SimTime::ZERO,
            backoff: PROBE_BACKOFF_BASE,
            last_fault: None,
        }
    }
}

/// Admission decision for one tenant's cycle.
#[derive(Debug, Clone, Copy)]
pub(crate) enum CycleGate {
    /// Run the cycle; `probing` marks a quarantined tenant's
    /// re-admission attempt.
    Run { probing: bool },
    /// Quarantined and not yet eligible to probe: skip the cycle
    /// entirely; the next probe is due at `until`.
    Skip { until: SimTime },
}

/// What one recorded cycle did to its tenant's fault domain.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CycleVerdict {
    /// Health after recording the cycle.
    pub health: TenantHealth,
    /// The cycle was charged as a failure.
    pub failed: bool,
    /// The cycle committed but blew the deadline.
    pub deadline_missed: bool,
    /// This cycle tipped the tenant into quarantine.
    pub quarantined_now: bool,
    /// This cycle was a successful probe: the tenant is re-admitted.
    pub readmitted_now: bool,
}

/// Doubles a probe backoff, capped at [`PROBE_BACKOFF_CAP`].
fn cap_backoff(b: SimDuration) -> SimDuration {
    let doubled = b + b;
    if doubled.as_nanos() > PROBE_BACKOFF_CAP.as_nanos() {
        PROBE_BACKOFF_CAP
    } else {
        doubled
    }
}

/// Appends to the bounded per-tenant fault log.
fn push_fault(log: &mut Vec<(u32, String)>, gid: u32, fault: &str) {
    if log.len() >= TENANT_FAULT_LOG_CAP {
        log.remove(0);
    }
    log.push((gid, fault.to_string()));
}

/// Telemetry of the fleet scheduler (surfaced by `sls info`).
#[derive(Debug, Clone, Default)]
pub struct FleetStats {
    /// Cycles admitted through the pipelined path.
    pub admitted: u64,
    /// Admitted cycles that overlapped at least one in-flight flush.
    pub overlapped: u64,
    /// Admissions that stalled on a full run queue (the oldest flush
    /// had to retire first).
    pub queue_stalls: u64,
    /// High-water mark of the in-flight queue depth.
    pub queue_depth_max: u64,
    /// Per-tenant stop times of pipelined cycles, in sim ns.
    pub stop_hist: LogHistogram,
    /// Cycles skipped because their tenant was quarantined.
    pub cycles_skipped: u64,
    /// Tenants moved into quarantine by the health state machine.
    pub quarantines: u64,
    /// Quarantined tenants re-admitted after a successful probe.
    pub readmissions: u64,
    /// Committed cycles that blew the virtual-clock deadline.
    pub deadline_misses: u64,
    /// Failed cycles charged to a tenant's fault domain (aborts, hard
    /// errors, deadline misses, damaged-base degradations).
    pub cycle_errors: u64,
    /// In-flight lane bookings released when their tenant was
    /// quarantined.
    pub bookings_released: u64,
    /// Recent per-tenant faults, bounded; drained (and returned) by
    /// [`Host::fleet_drain`] instead of being dropped on the floor.
    pub tenant_faults: Vec<(u32, String)>,
}

/// Pipelines checkpoint cycles across tenants.
///
/// The scheduler holds two pieces of virtual-time state: the bounded
/// queue of in-flight flushes (group id, durable instant) and the
/// per-lane horizons of the hash stage. It is rebuilt empty on reboot —
/// in-flight flushes die with the machine like any other undurable
/// state.
#[derive(Debug, Clone)]
pub struct FleetScheduler {
    /// In-flight flushes the run queue admits before stalling a
    /// capture on the oldest drain.
    pub queue_cap: usize,
    /// Hash lanes available to overlapped flushes: the idle cores a
    /// serialized fleet leaves unused while one tenant's cycle runs.
    pub hash_lanes: usize,
    /// Per-cycle deadline on the virtual clock: a committed cycle
    /// whose durable instant lands later than admission + deadline is
    /// charged as a deadline miss against its tenant's fault domain.
    pub cycle_deadline: SimDuration,
    /// Busy-until horizon per hash lane.
    lanes: Vec<SimTime>,
    /// In-flight flushes, oldest first: `(group id, durable instant)`.
    inflight: VecDeque<(u32, SimTime)>,
    /// Per-tenant fault domains, keyed by group id, behind the
    /// `tenant_health` lockdep rank (consulted by the admission gate
    /// before any barrier is taken, never held across a cycle).
    health: Rc<OrderedMutex<BTreeMap<u32, TenantDomain>>>,
    /// Counters.
    pub stats: FleetStats,
}

/// Default bound on in-flight flushes.
pub const DEFAULT_FLEET_QUEUE_CAP: usize = 32;

/// Default hash-lane count for overlapped flushes.
pub const DEFAULT_HASH_LANES: usize = 4;

impl Default for FleetScheduler {
    fn default() -> Self {
        FleetScheduler::new()
    }
}

impl FleetScheduler {
    /// A scheduler with the default queue bound and lane count.
    pub fn new() -> FleetScheduler {
        FleetScheduler {
            queue_cap: DEFAULT_FLEET_QUEUE_CAP,
            hash_lanes: DEFAULT_HASH_LANES,
            cycle_deadline: DEFAULT_CYCLE_DEADLINE,
            lanes: Vec::new(),
            inflight: VecDeque::new(),
            health: Rc::new(OrderedMutex::new(
                RANK_TENANT_HEALTH,
                "tenant_health",
                BTreeMap::new(),
            )),
            stats: FleetStats::default(),
        }
    }

    /// A fresh scheduler carrying this one's configuration (reboot:
    /// runtime state — in-flight flushes, health, quarantines — is
    /// lost, tuning survives; group ids are never reused, so a rebooted
    /// fleet re-registers under fresh fault domains).
    pub(crate) fn fresh_config(&self) -> FleetScheduler {
        FleetScheduler {
            queue_cap: self.queue_cap,
            hash_lanes: self.hash_lanes,
            cycle_deadline: self.cycle_deadline,
            ..FleetScheduler::new()
        }
    }

    /// Current in-flight flush count.
    pub fn queue_depth(&self) -> usize {
        self.inflight.len()
    }

    /// Admits a capture: retires already-durable flushes for free, then
    /// — if the queue is still full — advances the clock to the oldest
    /// flush's durable instant and retires it.
    pub(crate) fn admit(&mut self, clock: &SimClock) {
        let now = clock.now();
        while matches!(self.inflight.front(), Some(&(_, at)) if at <= now) {
            self.inflight.pop_front();
        }
        while self.inflight.len() >= self.queue_cap.max(1) {
            if let Some((_, at)) = self.inflight.pop_front() {
                clock.advance_to(at);
                self.stats.queue_stalls += 1;
            }
        }
        self.stats.admitted += 1;
        if !self.inflight.is_empty() {
            self.stats.overlapped += 1;
        }
    }

    /// Books `cost` on the earliest-free hash lane at or after `now`;
    /// returns the lane's completion instant.
    pub(crate) fn hash_slot(&mut self, now: SimTime, cost: SimDuration) -> SimTime {
        self.lanes.resize(self.hash_lanes.max(1), SimTime::ZERO);
        let lane = match self
            .lanes
            .iter_mut()
            .min_by_key(|horizon| horizon.as_nanos())
        {
            Some(l) => l,
            // Unreachable: resize above guarantees at least one lane.
            None => return now + cost,
        };
        let start = now.max(*lane);
        let done = start + cost;
        *lane = done;
        done
    }

    /// Records a committed pipelined cycle.
    pub(crate) fn complete(&mut self, gid: u32, durable: SimTime, stop: SimDuration) {
        self.inflight.push_back((gid, durable));
        self.stats.queue_depth_max = self.stats.queue_depth_max.max(self.inflight.len() as u64);
        self.stats.stop_hist.record_duration(stop);
    }

    /// Advances the clock past every in-flight flush and empties the
    /// queue.
    pub(crate) fn drain(&mut self, clock: &SimClock) {
        if let Some(at) = self.inflight.iter().map(|&(_, at)| at).max() {
            clock.advance_to(at);
        }
        self.inflight.clear();
    }

    /// Snapshot of one tenant's fault domain (default-healthy when the
    /// scheduler has not seen the tenant yet).
    pub fn domain(&self, gid: u32) -> TenantDomain {
        let table = self.health.lock();
        table.get(&gid).cloned().unwrap_or_default()
    }

    /// Snapshots of every tenant fault domain, sorted by group id.
    pub fn domains(&self) -> Vec<(u32, TenantDomain)> {
        let table = self.health.lock();
        table.iter().map(|(&g, d)| (g, d.clone())).collect()
    }

    /// Current health of one tenant.
    pub fn health_of(&self, gid: u32) -> TenantHealth {
        self.domain(gid).health
    }

    /// Admission gate: consulted before a cycle takes any lock. A
    /// quarantined tenant runs only when its probe backoff elapsed.
    pub(crate) fn gate(&self, gid: u32, now: SimTime) -> CycleGate {
        let table = self.health.lock();
        match table.get(&gid) {
            Some(d) if d.health == TenantHealth::Quarantined => {
                if now < d.next_probe {
                    CycleGate::Skip {
                        until: d.next_probe,
                    }
                } else {
                    CycleGate::Run { probing: true }
                }
            }
            _ => CycleGate::Run { probing: false },
        }
    }

    /// Records a cycle skipped under quarantine.
    pub(crate) fn record_skip(&mut self, gid: u32) {
        {
            let mut table = self.health.lock();
            table.entry(gid).or_default().cycles_skipped += 1;
        }
        self.stats.cycles_skipped += 1;
    }

    /// Defers a quarantined tenant's re-admission probe because its
    /// backing devices are still sick: doubles the backoff (capped)
    /// and returns the new probe instant.
    pub(crate) fn defer_probe(&mut self, gid: u32, now: SimTime, why: &str) -> SimTime {
        let mut table = self.health.lock();
        let d = table.entry(gid).or_default();
        d.last_fault = Some(format!("probe deferred: {why}"));
        d.next_probe = now + d.backoff;
        d.backoff = cap_backoff(d.backoff);
        d.next_probe
    }

    /// Releases every in-flight lane booking of `gid`: the rest of the
    /// fleet must not stall its admissions on a quarantined tenant's
    /// flushes. Returns the number of bookings released.
    pub(crate) fn release(&mut self, gid: u32) -> usize {
        let before = self.inflight.len();
        self.inflight.retain(|&(g, _)| g != gid);
        let released = before - self.inflight.len();
        self.stats.bookings_released += released as u64;
        released
    }

    /// Operator/test entry: quarantines `gid` immediately, as if its
    /// failure counter had crossed [`QUARANTINE_AFTER`]. The first
    /// re-admission probe is eligible one backoff from `now`.
    pub fn quarantine(&mut self, gid: u32, now: SimTime, reason: &str) {
        let entered = {
            let mut table = self.health.lock();
            let d = table.entry(gid).or_default();
            if d.health == TenantHealth::Quarantined {
                false
            } else {
                d.health = TenantHealth::Quarantined;
                d.quarantines += 1;
                d.backoff = PROBE_BACKOFF_BASE;
                d.next_probe = now + d.backoff;
                d.last_fault = Some(format!("operator quarantine: {reason}"));
                true
            }
        };
        if entered {
            self.stats.quarantines += 1;
            self.release(gid);
        }
    }

    /// Records one cycle's outcome against its tenant's fault domain
    /// and runs the health state machine.
    ///
    /// A cycle succeeds when it committed, met the deadline, and did
    /// not find its base damaged; anything else is a failure. One
    /// failure degrades the tenant, [`QUARANTINE_AFTER`] consecutive
    /// failures quarantine it, and a failed probe doubles the backoff
    /// (capped). An on-time clean commit resets the counter — and
    /// re-admits a probing quarantined tenant.
    pub(crate) fn record_cycle(
        &mut self,
        gid: u32,
        now: SimTime,
        committed: bool,
        on_time: bool,
        base_damaged: bool,
        fault: Option<&str>,
    ) -> CycleVerdict {
        let deadline_missed = committed && !on_time;
        let ok = committed && on_time && !base_damaged;
        let fault = fault.unwrap_or(if deadline_missed {
            "cycle deadline missed"
        } else {
            "cycle failed"
        });
        let mut verdict = CycleVerdict {
            health: TenantHealth::Healthy,
            failed: !ok,
            deadline_missed,
            quarantined_now: false,
            readmitted_now: false,
        };
        {
            let mut table = self.health.lock();
            let d = table.entry(gid).or_default();
            if ok {
                if d.health == TenantHealth::Quarantined {
                    d.readmissions += 1;
                    verdict.readmitted_now = true;
                }
                d.health = TenantHealth::Healthy;
                d.consecutive_failures = 0;
                d.backoff = PROBE_BACKOFF_BASE;
                d.last_fault = None;
            } else {
                d.failures += 1;
                d.consecutive_failures += 1;
                if deadline_missed {
                    d.deadline_misses += 1;
                }
                d.last_fault = Some(fault.to_string());
                if d.health == TenantHealth::Quarantined {
                    // Failed probe: stay quarantined, back off harder.
                    d.next_probe = now + d.backoff;
                    d.backoff = cap_backoff(d.backoff);
                } else if d.consecutive_failures >= QUARANTINE_AFTER {
                    d.health = TenantHealth::Quarantined;
                    d.quarantines += 1;
                    d.backoff = PROBE_BACKOFF_BASE;
                    d.next_probe = now + d.backoff;
                    verdict.quarantined_now = true;
                } else {
                    d.health = TenantHealth::Degraded;
                }
            }
            verdict.health = d.health;
        }
        if verdict.failed {
            self.stats.cycle_errors += 1;
            push_fault(&mut self.stats.tenant_faults, gid, fault);
        }
        if deadline_missed {
            self.stats.deadline_misses += 1;
        }
        if verdict.quarantined_now {
            self.stats.quarantines += 1;
            self.release(gid);
        }
        if verdict.readmitted_now {
            self.stats.readmissions += 1;
        }
        verdict
    }

    /// Drains (and returns) the bounded per-tenant fault log.
    pub(crate) fn take_faults(&mut self) -> Vec<(u32, String)> {
        std::mem::take(&mut self.stats.tenant_faults)
    }
}

/// One tenant's outcome within a fleet sweep: the breakdown of its
/// cycle (committed, degraded, aborted, or a quarantine skip), or the
/// hard error it failed with. One tenant's error never aborts the
/// sweep for the others.
#[derive(Debug)]
pub struct TenantCycle {
    /// The tenant's group.
    pub gid: GroupId,
    /// Its cycle's result.
    pub result: Result<CheckpointBreakdown>,
}

/// Per-tenant outcomes of one fleet sweep ([`Host::checkpoint_all`]).
#[derive(Debug, Default)]
pub struct FleetSweep {
    /// One entry per requested tenant, in request order.
    pub cycles: Vec<TenantCycle>,
}

impl FleetSweep {
    /// Tenants whose cycle committed a new durable checkpoint.
    pub fn committed(&self) -> usize {
        self.cycles
            .iter()
            .filter(|c| matches!(&c.result, Ok(b) if b.outcome.committed()))
            .count()
    }

    /// Tenants whose cycle was skipped under quarantine.
    pub fn skipped(&self) -> usize {
        self.cycles
            .iter()
            .filter(|c| matches!(&c.result, Ok(b) if b.outcome == CheckpointOutcome::Quarantined))
            .count()
    }

    /// Tenants whose cycle returned a hard error, with the error text.
    pub fn errors(&self) -> Vec<(GroupId, String)> {
        self.cycles
            .iter()
            .filter_map(|c| match &c.result {
                Err(e) => Some((c.gid, e.to_string())),
                Ok(_) => None,
            })
            .collect()
    }
}

impl Host {
    /// A breakdown for a cycle skipped under quarantine: no barrier was
    /// taken, no checkpoint exists, the previous durable snapshot is
    /// untouched.
    fn quarantined_breakdown(until: SimTime) -> CheckpointBreakdown {
        CheckpointBreakdown {
            outcome: CheckpointOutcome::Quarantined,
            fault: Some(format!(
                "tenant quarantined; next re-admission probe at {} ns",
                until.as_nanos()
            )),
            ..CheckpointBreakdown::default()
        }
    }

    /// Why `gid`'s backing devices are not yet fit for a re-admission
    /// probe, if they are not: any backend device reporting worse than
    /// healthy, or a mirror running degraded.
    fn tenant_backend_sick(&self, gid: GroupId) -> Option<String> {
        let group = self.sls.group_ref(gid).ok()?;
        for (i, b) in group.backends.iter().enumerate() {
            let store = b.store.borrow();
            let dev = store.device();
            let health = dev.health();
            if health != DevHealth::Healthy {
                return Some(format!("backend {i} device {}", health.as_str()));
            }
            if dev.as_mirror().is_some_and(|m| m.is_degraded()) {
                return Some(format!("backend {i} mirror degraded"));
            }
        }
        None
    }

    /// Per-tenant fault-domain snapshots of every tenant the fleet
    /// scheduler has seen, sorted by group id.
    pub fn fleet_health(&self) -> Vec<(u32, TenantDomain)> {
        self.sls.fleet.domains()
    }

    /// One tenant's fault-domain snapshot (default-healthy when the
    /// scheduler has not seen it yet).
    pub fn tenant_domain(&self, gid: GroupId) -> TenantDomain {
        self.sls.fleet.domain(gid.0)
    }

    /// Mirrors a cycle verdict's health transitions into the global
    /// counter registry.
    fn sync_health_metrics(verdict: &CycleVerdict) {
        let mut m = metrics::METRICS.lock();
        if verdict.failed {
            m.fleet_cycle_errors += 1;
        }
        if verdict.deadline_missed {
            m.fleet_deadline_misses += 1;
        }
        if verdict.quarantined_now {
            m.fleet_quarantines += 1;
        }
        if verdict.readmitted_now {
            m.fleet_readmissions += 1;
        }
    }

    /// Takes a pipelined checkpoint of one tenant: admission through the
    /// fleet scheduler's run queue, capture under the per-group barrier,
    /// hash on a scheduler lane, commit under the per-store locks. The
    /// returned breakdown's `durable_at` gates this cycle exactly like
    /// the serialized path; use [`Host::fleet_drain`] (or
    /// [`Host::wait_durable`]) to wait it out.
    ///
    /// The cycle runs inside the tenant's fault domain: a quarantined
    /// tenant's cycle is skipped (outcome
    /// [`CheckpointOutcome::Quarantined`], no barrier taken) until its
    /// probe backoff elapses *and* its backing devices report healthy;
    /// failures, deadline misses and damaged-base degradations are
    /// charged against the tenant's health.
    pub fn checkpoint_pipelined(
        &mut self,
        gid: GroupId,
        full: bool,
        name: Option<&str>,
    ) -> Result<CheckpointBreakdown> {
        let now = self.clock.now();
        let probing = match self.sls.fleet.gate(gid.0, now) {
            CycleGate::Run { probing } => probing,
            CycleGate::Skip { until } => {
                self.sls.fleet.record_skip(gid.0);
                metrics::METRICS.lock().fleet_cycles_skipped += 1;
                return Ok(Self::quarantined_breakdown(until));
            }
        };
        if probing {
            // Probe only hardware that has actually recovered; a probe
            // against a still-dead device would burn a cycle and keep
            // the backoff doubling for nothing.
            if let Some(why) = self.tenant_backend_sick(gid) {
                let until = self.sls.fleet.defer_probe(gid.0, now, &why);
                self.sls.fleet.record_skip(gid.0);
                metrics::METRICS.lock().fleet_cycles_skipped += 1;
                return Ok(Self::quarantined_breakdown(until));
            }
        }
        let (overlapped0, stalls0) = {
            let s = &self.sls.fleet.stats;
            (s.overlapped, s.queue_stalls)
        };
        self.sls.fleet.admit(&self.clock);
        let admitted_at = self.clock.now();
        let breakdown = match self.checkpoint_mode(gid, full, name, FlushMode::Pipelined) {
            Ok(b) => b,
            Err(e) => {
                // A hard error is a per-tenant fault, not a fleet
                // fault: charge the domain, keep the error for the
                // caller, and let the rest of the fleet proceed.
                let verdict = self.sls.fleet.record_cycle(
                    gid.0,
                    self.clock.now(),
                    false,
                    true,
                    false,
                    Some(&e.to_string()),
                );
                Self::sync_health_metrics(&verdict);
                return Err(e);
            }
        };
        if breakdown.outcome.committed() {
            self.sls
                .fleet
                .complete(gid.0, breakdown.durable_at, breakdown.stop_time);
        }
        // Per-cycle deadline on the virtual clock: admission to the
        // durable instant. Aborted cycles are failures in their own
        // right and are not additionally charged as deadline misses.
        let on_time = !breakdown.outcome.committed()
            || breakdown.durable_at <= admitted_at + self.sls.fleet.cycle_deadline;
        let verdict = self.sls.fleet.record_cycle(
            gid.0,
            self.clock.now(),
            breakdown.outcome.committed(),
            on_time,
            breakdown.base_damaged,
            breakdown.fault.as_deref(),
        );
        Self::sync_health_metrics(&verdict);
        {
            let s = &self.sls.fleet.stats;
            let mut m = metrics::METRICS.lock();
            m.fleet_cycles_pipelined += 1;
            m.fleet_overlapped_cycles += s.overlapped - overlapped0;
            m.fleet_queue_stalls += s.queue_stalls - stalls0;
            m.fleet_queue_depth_max = m.fleet_queue_depth_max.max(s.queue_depth_max);
            m.fleet_stop_p99_ns = s.stop_hist.p99();
        }
        Ok(breakdown)
    }

    /// Checkpoints a wave of tenants through the scheduler, incremental
    /// by default (`full` forces full captures). Captures interleave
    /// with earlier tenants' flushes; nothing waits for global
    /// durability — drain explicitly when the wave must be on disk.
    ///
    /// The sweep never aborts early: every tenant gets its cycle and
    /// the [`FleetSweep`] carries each one's outcome — committed
    /// breakdowns, quarantine skips, and hard errors alike.
    pub fn checkpoint_all(&mut self, gids: &[GroupId], full: bool) -> FleetSweep {
        let mut cycles = Vec::with_capacity(gids.len());
        for &gid in gids {
            cycles.push(TenantCycle {
                gid,
                result: self.checkpoint_pipelined(gid, full, None),
            });
        }
        FleetSweep { cycles }
    }

    /// Periodic pipelined driver: checkpoints `gid` when its period
    /// elapsed, through the scheduler. Returns `None` when not yet due.
    /// A due-but-quarantined tenant reports a
    /// [`CheckpointOutcome::Quarantined`] breakdown (its period still
    /// advances) instead of an error.
    pub fn fleet_tick(&mut self, gid: GroupId) -> Result<Option<CheckpointBreakdown>> {
        let now = self.clock.now();
        let due = {
            let group = self.sls.group_ref(gid)?;
            now >= group.next_due
        };
        if !due {
            self.poll_durability();
            return Ok(None);
        }
        let breakdown = self.checkpoint_pipelined(gid, false, None)?;
        let group = self.sls.group_mut(gid)?;
        group.next_due = now + group.period;
        Ok(Some(breakdown))
    }

    /// Waits (advances the virtual clock) until every in-flight
    /// pipelined flush is durable, then releases external-consistency
    /// holds. Returns the per-tenant faults recorded since the last
    /// drain — aborts, deadline misses, quarantine transitions — so
    /// sweep drivers see exactly which tenants misbehaved instead of
    /// the faults being dropped on the floor (they are also counted in
    /// [`FleetStats::cycle_errors`] and the global
    /// `fleet_cycle_errors`).
    pub fn fleet_drain(&mut self) -> Vec<(u32, String)> {
        let clock = self.clock.clone();
        self.sls.fleet.drain(&clock);
        self.poll_durability();
        self.sls.fleet.take_faults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_lanes_overlap_in_virtual_time() {
        let mut f = FleetScheduler::new();
        f.hash_lanes = 2;
        let t0 = SimTime::ZERO;
        let c = SimDuration::from_micros(10);
        // Two flushes at t0 land on distinct lanes: both end at t0+c.
        assert_eq!(f.hash_slot(t0, c), t0 + c);
        assert_eq!(f.hash_slot(t0, c), t0 + c);
        // The third queues behind the earliest lane.
        assert_eq!(f.hash_slot(t0, c), t0 + c + c);
    }

    #[test]
    fn admit_bounds_the_queue() {
        let clock = SimClock::new();
        let mut f = FleetScheduler::new();
        f.queue_cap = 2;
        f.admit(&clock);
        f.complete(1, SimTime::from_nanos(1_000), SimDuration::from_nanos(10));
        f.admit(&clock);
        f.complete(2, SimTime::from_nanos(2_000), SimDuration::from_nanos(10));
        assert_eq!(f.queue_depth(), 2);
        // The queue is full: the third admission advances the clock to
        // the oldest durable instant and retires it.
        f.admit(&clock);
        assert_eq!(f.queue_depth(), 1);
        assert!(clock.now() >= SimTime::from_nanos(1_000));
        assert_eq!(f.stats.queue_stalls, 1);
        assert_eq!(f.stats.admitted, 3);
        assert_eq!(f.stats.overlapped, 2);
    }

    #[test]
    fn same_group_barrier_instance_is_reused() {
        let a = barrier_for(90_001);
        let b = barrier_for(90_001);
        let c = barrier_for(90_002);
        assert!(std::ptr::eq(a, b));
        assert!(!std::ptr::eq(a, c));
    }

    #[test]
    fn health_machine_walks_degraded_to_quarantine_and_back() {
        let mut f = FleetScheduler::new();
        let now = SimTime::from_nanos(5_000_000);

        // Failures degrade first, then quarantine at the threshold.
        for i in 1..=QUARANTINE_AFTER {
            let v = f.record_cycle(7, now, false, true, false, None);
            assert!(v.failed);
            if i < QUARANTINE_AFTER {
                assert_eq!(v.health, TenantHealth::Degraded);
                assert!(!v.quarantined_now);
            } else {
                assert_eq!(v.health, TenantHealth::Quarantined);
                assert!(v.quarantined_now);
            }
        }
        let d = f.domain(7);
        assert_eq!(d.consecutive_failures, QUARANTINE_AFTER);
        assert_eq!(d.quarantines, 1);
        assert_eq!(d.next_probe, now + PROBE_BACKOFF_BASE);
        assert_eq!(f.stats.quarantines, 1);
        assert_eq!(f.stats.cycle_errors, u64::from(QUARANTINE_AFTER));

        // The gate skips until the probe instant, then admits a probe.
        assert!(matches!(
            f.gate(7, now),
            CycleGate::Skip { until } if until == now + PROBE_BACKOFF_BASE
        ));
        let probe_at = now + PROBE_BACKOFF_BASE;
        assert!(matches!(f.gate(7, probe_at), CycleGate::Run { probing: true }));

        // A failed probe stays quarantined and doubles the backoff.
        let v = f.record_cycle(7, probe_at, false, true, false, Some("probe tanked"));
        assert_eq!(v.health, TenantHealth::Quarantined);
        assert!(!v.quarantined_now);
        let d = f.domain(7);
        assert_eq!(d.next_probe, probe_at + PROBE_BACKOFF_BASE);
        assert_eq!(d.backoff, PROBE_BACKOFF_BASE * 2);
        assert_eq!(d.last_fault.as_deref(), Some("probe tanked"));

        // Backoff doubling is capped.
        let mut b = PROBE_BACKOFF_BASE;
        for _ in 0..20 {
            b = cap_backoff(b);
        }
        assert_eq!(b, PROBE_BACKOFF_CAP);

        // An on-time clean commit re-admits and resets the domain.
        let back = probe_at + PROBE_BACKOFF_BASE * 2;
        let v = f.record_cycle(7, back, true, true, false, None);
        assert!(v.readmitted_now);
        assert_eq!(v.health, TenantHealth::Healthy);
        let d = f.domain(7);
        assert_eq!(d.consecutive_failures, 0);
        assert_eq!(d.backoff, PROBE_BACKOFF_BASE);
        assert_eq!(d.readmissions, 1);
        assert!(d.last_fault.is_none());
        assert_eq!(f.stats.readmissions, 1);
        assert!(matches!(f.gate(7, back), CycleGate::Run { probing: false }));
    }

    #[test]
    fn deadline_misses_and_base_damage_count_as_failures() {
        let mut f = FleetScheduler::new();
        let now = SimTime::from_nanos(1_000_000);

        // A committed-but-late cycle is a deadline miss.
        let v = f.record_cycle(3, now, true, false, false, None);
        assert!(v.failed && v.deadline_missed);
        let d = f.domain(3);
        assert_eq!(d.deadline_misses, 1);
        assert_eq!(d.last_fault.as_deref(), Some("cycle deadline missed"));
        assert_eq!(f.stats.deadline_misses, 1);

        // A commit over a damaged base fails without a deadline miss.
        let v = f.record_cycle(3, now, true, true, true, None);
        assert!(v.failed && !v.deadline_missed);
        assert_eq!(f.domain(3).failures, 2);
        assert_eq!(f.stats.deadline_misses, 1);

        // The bounded fault log drains both entries.
        let faults = f.take_faults();
        assert_eq!(faults.len(), 2);
        assert!(faults.iter().all(|(g, _)| *g == 3));
        assert!(f.take_faults().is_empty());
    }

    #[test]
    fn quarantine_releases_bookings_so_the_fleet_never_stalls() {
        let clock = SimClock::new();
        let mut f = FleetScheduler::new();
        f.queue_cap = 2;
        // Fill the queue with the doomed tenant's in-flight flushes.
        f.admit(&clock);
        f.complete(9, SimTime::from_nanos(40_000_000), SimDuration::from_nanos(10));
        f.admit(&clock);
        f.complete(9, SimTime::from_nanos(80_000_000), SimDuration::from_nanos(10));
        assert_eq!(f.queue_depth(), 2);

        // Quarantine drops both bookings: the next admission proceeds
        // without stalling on the quarantined tenant's flushes.
        f.quarantine(9, clock.now(), "device wedged");
        assert_eq!(f.queue_depth(), 0);
        assert_eq!(f.stats.bookings_released, 2);
        assert_eq!(f.stats.quarantines, 1);
        assert_eq!(f.health_of(9), TenantHealth::Quarantined);
        assert!(f
            .domain(9)
            .last_fault
            .as_deref()
            .is_some_and(|s| s.contains("device wedged")));
        f.admit(&clock);
        assert_eq!(f.stats.queue_stalls, 0);
        assert!(clock.now() < SimTime::from_nanos(40_000_000));

        // Skipped cycles are counted per tenant and fleet-wide.
        f.record_skip(9);
        f.record_skip(9);
        assert_eq!(f.domain(9).cycles_skipped, 2);
        assert_eq!(f.stats.cycles_skipped, 2);

        // A deferred probe pushes the window out and doubles backoff.
        let at = SimTime::from_nanos(100_000_000);
        let next = f.defer_probe(9, at, "mirror degraded");
        assert_eq!(next, at + PROBE_BACKOFF_BASE);
        assert_eq!(f.domain(9).backoff, PROBE_BACKOFF_BASE * 2);
    }

    #[test]
    fn stop_histogram_buckets_cover_recorded_cycles() {
        let clock = SimClock::new();
        let mut f = FleetScheduler::new();
        // 90 fast stops and a 10-sample slow tail: the buckets must
        // keep the median in the fast band while p99 lands in the tail.
        for i in 0..90u64 {
            f.admit(&clock);
            f.complete(
                1,
                SimTime::from_nanos(i + 1),
                SimDuration::from_micros(10),
            );
        }
        for i in 0..10u64 {
            f.admit(&clock);
            f.complete(
                2,
                SimTime::from_nanos((i + 1) * 1_000_000),
                SimDuration::from_millis(5),
            );
        }
        let h = &f.stats.stop_hist;
        assert_eq!(h.count(), 100);
        assert_eq!(h.min(), 10_000);
        assert_eq!(h.max(), 5_000_000);
        let p50 = h.p50();
        assert!((9_000..=11_000).contains(&p50), "p50 {p50} out of band");
        let p99 = h.p99();
        assert!(p99 >= 4_000_000, "p99 {p99} missed the slow tail");
        assert!(h.quantile(1.0) >= p99);
    }
}
