//! Application-level speculation via lightweight checkpoints.
//!
//! §4's speculation story: a client can proceed assuming a remote
//! operation succeeds; if it fails, the application rolls back to the
//! pre-speculation checkpoint. Aurora notifies the rolled-back process so
//! it can take a conservative path — otherwise speculation would loop.
//!
//! Speculative checkpoints prefer an attached memory backend (they are
//! ephemeral by design); without one they fall back to the primary.

use aurora_objstore::CkptId;
use aurora_sim::error::{Error, Result};

use crate::metrics::RestoreBreakdown;
use crate::{GroupId, Host};

/// A pending speculation.
#[derive(Debug, Clone, Copy)]
pub struct SpecToken {
    /// The group speculating.
    pub gid: GroupId,
    /// The pre-speculation checkpoint (on the primary backend).
    pub ckpt: CkptId,
}

impl Host {
    /// Begins a speculative region: checkpoints the group and returns a
    /// token to commit or abort with.
    pub fn speculate_begin(&mut self, gid: GroupId) -> Result<SpecToken> {
        let breakdown = self.checkpoint(gid, false, Some("speculation"))?;
        let ckpt = breakdown
            .ckpt
            .ok_or_else(|| Error::internal("checkpoint produced no id"))?;
        Ok(SpecToken { gid, ckpt })
    }

    /// Commits a speculation: the token is discarded; the checkpoint ages
    /// out of the history window naturally.
    pub fn speculate_commit(&mut self, _token: SpecToken) -> Result<()> {
        Ok(())
    }

    /// Aborts a speculation: rolls the group back to the token's
    /// checkpoint. Every restored process gets a rollback notification
    /// (consume with [`Host::sls_rollback_pending`]).
    pub fn speculate_abort(&mut self, token: SpecToken) -> Result<RestoreBreakdown> {
        self.rollback(token.gid, Some(token.ckpt))
    }
}
