//! Continuous checkpoint shipping to a hot standby (`sls standby` /
//! `sls promote`).
//!
//! The paper's single level store makes whole-application state a
//! first-class shippable object; PR 5's mirror survives *replica* loss
//! but not the machine itself. This module closes that gap: every
//! committed checkpoint epoch is streamed — as sequence-numbered,
//! digest-sealed frames — over a lossy simulated link to a standby host
//! that rebuilds the primary's object store commit by commit.
//!
//! Protocol invariants:
//!
//! * **Epochs apply atomically and in order.** The standby buffers
//!   frames per epoch and applies an epoch only when every frame of it
//!   has arrived *and* every earlier epoch has been applied. A partially
//!   received epoch never touches the standby store.
//! * **The acked-epoch watermark only advances.** Acks are cumulative
//!   ("I have applied everything through epoch E"), so stale, duplicated
//!   or reordered acks are harmless.
//! * **Commits never block on the standby.** A standby that falls more
//!   than [`ReplConfig::max_lag_epochs`] behind degrades the checkpoint
//!   outcome to [`CheckpointOutcome::DegradedReplication`]; it never
//!   delays or aborts the local commit.
//! * **Promote is deterministic.** [`Replicator::promote`] drains
//!   deliveries already in flight, discards any partial epoch tail, and
//!   hands back a store whose head is the last fully received epoch —
//!   which is always at or past the primary's acked watermark.
//!
//! Loss recovery is ack + retransmit with exponential backoff: the
//! primary re-offers every unacked epoch's frames when the retransmit
//! timer fires, doubling the timer until the watermark advances again.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;
use std::sync::Arc;

use aurora_hw::{BlockDev, LinkFaultRates, LinkModel, LinkStats, ModelDev, ReplLink, ResilientDev};
use aurora_objstore::{CkptId, ObjectStore, StoreConfig};
use aurora_posix::Kernel;
use aurora_sim::codec::{Decoder, Encoder};
use aurora_sim::error::{Error, Result};
use aurora_sim::hash::fnv64;
use aurora_sim::time::{SimDuration, SimTime};
use aurora_sim::SimClock;
use aurora_slsfs::{SlsFs, StoreHandle};

use crate::metrics::{self, CheckpointBreakdown, CheckpointOutcome};
use crate::{load_next_group, Host, Sls, SlsStats, DEFAULT_FLUSH_WORKERS, DEFAULT_RESTORE_WORKERS, SLSFS_MOUNT, SLSFS_NS};

/// Replication frame magic ("SLSREPL1").
pub const REPL_MAGIC: u64 = 0x534C_5352_4550_4C31;

/// Replication frame format version.
pub const REPL_VERSION: u16 = 1;

/// Payload of one replication frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FramePayload {
    /// One chunk of an epoch's checkpoint stream. `index`/`count` place
    /// the chunk; `full` marks a self-contained stream (epoch 1) as
    /// opposed to a delta on the previous epoch.
    Data {
        /// Epoch number (1-based; one per shipped checkpoint).
        epoch: u64,
        /// Chunk ordinal within the epoch.
        index: u32,
        /// Total chunks in the epoch.
        count: u32,
        /// Self-contained stream (`import_stream`) vs delta
        /// (`import_delta`).
        full: bool,
        /// Chunk bytes.
        chunk: Vec<u8>,
    },
    /// Cumulative acknowledgement: the standby has applied every epoch
    /// through `epoch`.
    Ack {
        /// Highest contiguously applied epoch.
        epoch: u64,
    },
}

/// One sequence-numbered, digest-sealed message on the replication link.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplFrame {
    /// Monotonic sequence number (diagnostics; ordering authority is the
    /// epoch/index addressing inside the payload).
    pub seq: u64,
    /// The frame body.
    pub payload: FramePayload,
}

impl ReplFrame {
    /// Encodes the frame: magic, version, FNV-64 digest of the body,
    /// then the body itself.
    pub fn encode(&self) -> Vec<u8> {
        let mut body = Encoder::new();
        body.u64(self.seq);
        match &self.payload {
            FramePayload::Data {
                epoch,
                index,
                count,
                full,
                chunk,
            } => {
                body.u8(0);
                body.u64(*epoch);
                body.u32(*index);
                body.u32(*count);
                body.bool(*full);
                body.bytes(chunk);
            }
            FramePayload::Ack { epoch } => {
                body.u8(1);
                body.u64(*epoch);
            }
        }
        let body = body.into_vec();
        let mut e = Encoder::new();
        e.u64(REPL_MAGIC);
        e.u16(REPL_VERSION);
        e.u64(fnv64(&body));
        e.bytes(&body);
        e.into_vec()
    }

    /// Decodes and verifies a frame. Typed errors: `BadImage` for a
    /// foreign stream, `Unsupported` (naming both versions) for a frame
    /// from a newer protocol, `Corrupt` for a digest mismatch.
    pub fn decode(bytes: &[u8]) -> Result<ReplFrame> {
        let mut d = Decoder::new(bytes);
        if d.u64()? != REPL_MAGIC {
            return Err(Error::bad_image("not a replication frame"));
        }
        let version = d.u16()?;
        if version != REPL_VERSION {
            return Err(Error::unsupported(format!(
                "replication frame version {version}, this binary speaks {REPL_VERSION}"
            )));
        }
        let digest = d.u64()?;
        let body = d.bytes()?;
        if fnv64(body) != digest {
            return Err(Error::corrupt("replication frame digest mismatch"));
        }
        let mut b = Decoder::new(body);
        let seq = b.u64()?;
        let payload = match b.u8()? {
            0 => FramePayload::Data {
                epoch: b.u64()?,
                index: b.u32()?,
                count: b.u32()?,
                full: b.bool()?,
                chunk: b.bytes()?.to_vec(),
            },
            1 => FramePayload::Ack { epoch: b.u64()? },
            t => return Err(Error::corrupt(format!("bad replication frame kind {t}"))),
        };
        Ok(ReplFrame { seq, payload })
    }
}

/// Configuration of a replication session.
#[derive(Debug, Clone)]
pub struct ReplConfig {
    /// Seed for the link fault model (both directions derive from it).
    pub seed: u64,
    /// Fault rates applied to both link directions.
    pub rates: LinkFaultRates,
    /// Maximum payload bytes per data frame.
    pub frame_bytes: usize,
    /// Epochs the standby may lag before checkpoints report
    /// [`CheckpointOutcome::DegradedReplication`].
    pub max_lag_epochs: u64,
    /// Initial retransmit timeout (doubles up to `backoff_cap` while the
    /// watermark is stalled; resets on progress).
    pub retransmit_after: SimDuration,
    /// Upper bound of the exponential retransmit backoff.
    pub backoff_cap: SimDuration,
    /// Standby device capacity in blocks.
    pub standby_blocks: u64,
    /// Standby store configuration (match the primary's `materialize_data`
    /// so promoted state survives reopening).
    pub standby_store: StoreConfig,
    /// Test/campaign hook: the primary "dies" immediately after offering
    /// its N-th data frame (retransmissions count); no frame after the
    /// N-th is ever sent.
    pub kill_after_data_frames: Option<u64>,
}

impl Default for ReplConfig {
    fn default() -> Self {
        ReplConfig {
            seed: 0x5245_504C,
            rates: LinkFaultRates::clean(),
            frame_bytes: 8 * 1024,
            max_lag_epochs: 8,
            retransmit_after: SimDuration::from_nanos(1_000_000),
            backoff_cap: SimDuration::from_nanos(64_000_000),
            standby_blocks: 64 * 1024,
            standby_store: StoreConfig::default(),
            kill_after_data_frames: None,
        }
    }
}

/// Protocol-level counters of one replication session.
#[derive(Debug, Default, Clone, Copy)]
pub struct ReplStats {
    /// Epochs the primary started shipping.
    pub epochs_shipped: u64,
    /// Data frames offered as first transmissions.
    pub frames_sent: u64,
    /// Data frames re-offered after a retransmit timeout.
    pub frames_retransmitted: u64,
    /// Ack frames the primary received.
    pub acks_received: u64,
    /// Acks at or below the current watermark (duplicates, reorders).
    pub stale_acks: u64,
    /// Checkpoint-stream payload bytes across all shipped epochs.
    pub bytes_shipped: u64,
    /// Exports that failed on the primary (the checkpoint still commits).
    pub ship_errors: u64,
    /// Standby-side import failures (an epoch that would not apply).
    pub apply_errors: u64,
    /// Frames that failed to decode or arrived on the wrong channel.
    pub bad_frames: u64,
}

/// What [`Replicator::promote`] did.
#[derive(Debug, Clone, Copy)]
pub struct PromoteReport {
    /// The epoch the standby is authoritative from (its store head).
    pub promoted_epoch: u64,
    /// The primary's acked watermark at promote time; `promoted_epoch`
    /// is always at least this.
    pub acked_epoch: u64,
    /// Epochs the primary had started shipping; `shipped - promoted` is
    /// the epochs lost to the failover (the RPO, in epochs).
    pub shipped_epochs: u64,
    /// Partially received epochs discarded by the promote.
    pub discarded_partial_epochs: u64,
    /// Frames inside those discarded partial epochs.
    pub discarded_frames: u64,
    /// Standby import failures observed over the session (must be zero
    /// for the promoted store to be trusted).
    pub apply_errors: u64,
}

/// Direction of an in-flight delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Dir {
    /// Primary -> standby (data frames).
    Data,
    /// Standby -> primary (ack frames).
    Ack,
}

/// An epoch's frames retained for retransmission until acked.
#[derive(Debug, Clone)]
struct EpochBuffer {
    frames: Vec<Vec<u8>>,
    payload_bytes: u64,
}

/// An epoch the standby has partially received.
#[derive(Debug)]
struct PartialEpoch {
    count: u32,
    full: bool,
    chunks: BTreeMap<u32, Vec<u8>>,
}

impl PartialEpoch {
    fn complete(&self) -> bool {
        (0..self.count).all(|i| self.chunks.contains_key(&i))
    }
}

/// The standby half of the session: its own object store plus the
/// reassembly state.
struct Standby {
    store: StoreHandle,
    /// Highest contiguously applied epoch (what the standby acks).
    applied_epoch: u64,
    partial: BTreeMap<u64, PartialEpoch>,
}

/// Metric counters already published to [`metrics::METRICS`], so each
/// publish adds only the delta since the last one.
#[derive(Debug, Default, Clone, Copy)]
struct MetricsSnap {
    frames_sent: u64,
    frames_retransmitted: u64,
    acks_received: u64,
    dropped: u64,
    epochs_acked: u64,
}

/// A replication session: primary-side protocol state, both fault-model
/// link directions, and the simulated standby they connect.
pub struct Replicator {
    cfg: ReplConfig,
    clock: Arc<SimClock>,
    data_link: ReplLink,
    ack_link: ReplLink,
    standby: Standby,
    /// Deliveries scheduled but not yet processed, ordered by arrival
    /// instant (ties broken by enqueue order).
    inflight: BTreeMap<(SimTime, u64), (Dir, Vec<u8>)>,
    delivery_seq: u64,
    next_seq: u64,
    shipped_epoch: u64,
    acked_epoch: u64,
    /// Frames of every epoch above the watermark, for retransmission.
    unacked: BTreeMap<u64, EpochBuffer>,
    next_retx_at: SimTime,
    backoff: SimDuration,
    data_frames_offered: u64,
    primary_dead: bool,
    last_published: MetricsSnap,
    /// Protocol counters.
    pub stats: ReplStats,
}

impl Replicator {
    /// Creates a session: formats a fresh standby store on its own
    /// simulated NVMe device and wires both link directions.
    pub fn new(clock: Arc<SimClock>, cfg: ReplConfig) -> Result<Replicator> {
        let dev: Box<dyn BlockDev> = Box::new(ModelDev::nvme(
            clock.clone(),
            "standby-nvme",
            cfg.standby_blocks,
        ));
        let dev: Box<dyn BlockDev> = Box::new(ResilientDev::with_defaults(dev));
        let store: StoreHandle = Rc::new(RefCell::new(ObjectStore::format(
            dev,
            cfg.standby_store.clone(),
        )?));
        Replicator::with_store(clock, cfg, store)
    }

    /// Creates a session over an existing standby store (the CLI's
    /// file-backed standby world).
    pub fn with_store(
        clock: Arc<SimClock>,
        cfg: ReplConfig,
        store: StoreHandle,
    ) -> Result<Replicator> {
        let data_link = ReplLink::new(LinkModel::ten_gbe(clock.clone()), cfg.rates, cfg.seed);
        let ack_link = ReplLink::new(
            LinkModel::ten_gbe(clock.clone()),
            cfg.rates,
            cfg.seed ^ 0x4143_4B5F_4C49_4E4B, // "ACK_LINK"
        );
        let backoff = cfg.retransmit_after;
        Ok(Replicator {
            cfg,
            clock,
            data_link,
            ack_link,
            standby: Standby {
                store,
                applied_epoch: 0,
                partial: BTreeMap::new(),
            },
            inflight: BTreeMap::new(),
            delivery_seq: 0,
            next_seq: 1,
            shipped_epoch: 0,
            acked_epoch: 0,
            unacked: BTreeMap::new(),
            next_retx_at: SimTime::ZERO,
            backoff,
            data_frames_offered: 0,
            primary_dead: false,
            last_published: MetricsSnap::default(),
            stats: ReplStats::default(),
        })
    }

    /// The session configuration.
    pub fn cfg(&self) -> &ReplConfig {
        &self.cfg
    }

    /// Highest epoch the primary started shipping.
    pub fn shipped_epoch(&self) -> u64 {
        self.shipped_epoch
    }

    /// The acked-epoch watermark: the standby has applied everything
    /// through this epoch, and the primary knows it.
    pub fn acked_epoch(&self) -> u64 {
        self.acked_epoch
    }

    /// Epoch the standby has actually applied (test observability; the
    /// primary only ever sees `acked_epoch`).
    pub fn standby_applied_epoch(&self) -> u64 {
        self.standby.applied_epoch
    }

    /// Replication lag in epochs (shipped minus acked).
    pub fn lag_epochs(&self) -> u64 {
        self.shipped_epoch.saturating_sub(self.acked_epoch)
    }

    /// Replication lag in unacked checkpoint-stream payload bytes.
    pub fn lag_bytes(&self) -> u64 {
        self.unacked.values().map(|b| b.payload_bytes).sum()
    }

    /// True once the kill hook has fired: no further frame leaves the
    /// primary and the session only awaits promotion.
    pub fn primary_dead(&self) -> bool {
        self.primary_dead
    }

    /// Fault counters of the primary -> standby link.
    pub fn data_link_stats(&self) -> LinkStats {
        self.data_link.stats
    }

    /// Fault counters of the standby -> primary link.
    pub fn ack_link_stats(&self) -> LinkStats {
        self.ack_link.stats
    }

    /// Ships checkpoint `ckpt` as the next epoch: exports it (a
    /// self-contained stream for the first epoch, a delta afterwards),
    /// splits it into sealed frames, offers them to the link, and
    /// retains them for retransmission until acked.
    pub fn ship_epoch(&mut self, store: &StoreHandle, ckpt: CkptId) -> Result<()> {
        if self.primary_dead {
            return Ok(());
        }
        let epoch = self.shipped_epoch + 1;
        let full = epoch == 1;
        let payload = if full {
            store.borrow().export_checkpoint(ckpt)?
        } else {
            store.borrow().export_delta(ckpt)?
        };
        // The epoch exists as soon as shipping starts: a kill mid-epoch
        // counts it as lost (conservative RPO accounting).
        self.shipped_epoch = epoch;
        self.stats.epochs_shipped += 1;
        self.stats.bytes_shipped += payload.len() as u64;
        let chunk_len = self.cfg.frame_bytes.max(1);
        let count = payload.len().div_ceil(chunk_len).max(1) as u32;
        let mut frames = Vec::with_capacity(count as usize);
        for (index, chunk) in payload.chunks(chunk_len).enumerate() {
            let frame = ReplFrame {
                seq: self.next_seq,
                payload: FramePayload::Data {
                    epoch,
                    index: index as u32,
                    count,
                    full,
                    chunk: chunk.to_vec(),
                },
            };
            self.next_seq += 1;
            frames.push(frame.encode());
        }
        if payload.is_empty() {
            // An empty payload still ships one (empty) chunk so the
            // epoch completes on the standby.
            let frame = ReplFrame {
                seq: self.next_seq,
                payload: FramePayload::Data {
                    epoch,
                    index: 0,
                    count,
                    full,
                    chunk: Vec::new(),
                },
            };
            self.next_seq += 1;
            frames.push(frame.encode());
        }
        for f in &frames {
            self.send_data(f.clone(), false);
        }
        self.unacked.insert(
            epoch,
            EpochBuffer {
                frames,
                payload_bytes: payload.len() as u64,
            },
        );
        self.arm_retransmit();
        Ok(())
    }

    /// (Re)arms the retransmit timer from now.
    fn arm_retransmit(&mut self) {
        self.next_retx_at = self.clock.now() + self.backoff;
    }

    /// Offers one data frame to the link, honouring the kill hook.
    fn send_data(&mut self, frame: Vec<u8>, retransmit: bool) {
        if self.primary_dead {
            return;
        }
        self.data_frames_offered += 1;
        if retransmit {
            self.stats.frames_retransmitted += 1;
        } else {
            self.stats.frames_sent += 1;
        }
        for d in self.data_link.send(&frame) {
            self.delivery_seq += 1;
            self.inflight.insert((d.at, self.delivery_seq), (Dir::Data, d.bytes));
        }
        if self
            .cfg
            .kill_after_data_frames
            .is_some_and(|k| self.data_frames_offered >= k)
        {
            // The primary dies right after offering its k-th frame.
            self.primary_dead = true;
        }
    }

    /// Sends a cumulative ack from the standby.
    fn send_ack(&mut self, epoch: u64) {
        if self.primary_dead {
            // Nobody is listening; promote discards acks anyway.
            return;
        }
        let frame = ReplFrame {
            seq: self.next_seq,
            payload: FramePayload::Ack { epoch },
        };
        self.next_seq += 1;
        let bytes = frame.encode();
        for d in self.ack_link.send(&bytes) {
            self.delivery_seq += 1;
            self.inflight.insert((d.at, self.delivery_seq), (Dir::Ack, d.bytes));
        }
    }

    /// Processes every delivery due at the current virtual instant, then
    /// retransmits unacked epochs if the timer expired.
    pub fn pump(&mut self) {
        let now = self.clock.now();
        self.deliver_due(now);
        if !self.primary_dead && self.acked_epoch < self.shipped_epoch && now >= self.next_retx_at {
            let pending: Vec<Vec<Vec<u8>>> = self
                .unacked
                .values()
                .map(|b| b.frames.clone())
                .collect();
            for frames in pending {
                for f in frames {
                    self.send_data(f, true);
                }
            }
            // Release a reorder-held tail so a lone retransmit can land.
            let held: Vec<_> = self.data_link.flush_held();
            for d in held {
                self.delivery_seq += 1;
                self.inflight.insert((d.at, self.delivery_seq), (Dir::Data, d.bytes));
            }
            self.backoff = (self.backoff * 2).min(self.cfg.backoff_cap);
            self.next_retx_at = now + self.backoff;
            self.deliver_due(now);
        }
    }

    /// Delivers every in-flight message whose arrival instant has passed.
    fn deliver_due(&mut self, now: SimTime) {
        while let Some(((at, ds), (dir, bytes))) = self.inflight.pop_first() {
            if at > now {
                self.inflight.insert((at, ds), (dir, bytes));
                break;
            }
            match dir {
                Dir::Data => self.standby_receive(&bytes),
                Dir::Ack => self.primary_receive_ack(&bytes),
            }
        }
    }

    /// Standby-side frame handling: buffer, apply complete in-order
    /// epochs, ack cumulatively (re-acking duplicates heals lost acks).
    fn standby_receive(&mut self, bytes: &[u8]) {
        let frame = match ReplFrame::decode(bytes) {
            Ok(f) => f,
            Err(_) => {
                self.stats.bad_frames += 1;
                return;
            }
        };
        let FramePayload::Data {
            epoch,
            index,
            count,
            full,
            chunk,
        } = frame.payload
        else {
            self.stats.bad_frames += 1;
            return;
        };
        if epoch > self.standby.applied_epoch {
            let p = self
                .standby
                .partial
                .entry(epoch)
                .or_insert_with(|| PartialEpoch {
                    count,
                    full,
                    chunks: BTreeMap::new(),
                });
            if p.count == count && p.full == full && index < count {
                p.chunks.insert(index, chunk);
            } else {
                self.stats.bad_frames += 1;
            }
            self.standby_try_apply();
        }
        self.send_ack(self.standby.applied_epoch);
    }

    /// Applies every complete epoch contiguous with the applied prefix.
    fn standby_try_apply(&mut self) {
        loop {
            let next = self.standby.applied_epoch + 1;
            match self.standby.partial.get(&next) {
                Some(p) if p.complete() => {}
                _ => break,
            }
            let Some(p) = self.standby.partial.remove(&next) else {
                break;
            };
            let mut payload = Vec::new();
            for chunk in p.chunks.values() {
                payload.extend_from_slice(chunk);
            }
            // The standby apply runs the same typestate commit protocol
            // as the primary; surface its phase transitions in the
            // global counters so `sls info` reports both sides.
            let (seals0, barriers0, flips0) = {
                let s = self.standby.store.borrow();
                (
                    s.stats.journal_seals,
                    s.stats.extent_barriers,
                    s.stats.superblock_flips,
                )
            };
            let res = if p.full {
                self.standby.store.borrow_mut().import_stream(&payload)
            } else {
                self.standby.store.borrow_mut().import_delta(&payload)
            };
            {
                let s = self.standby.store.borrow();
                let mut m = metrics::METRICS.lock();
                m.commit_journal_seals += s.stats.journal_seals - seals0;
                m.commit_extent_barriers += s.stats.extent_barriers - barriers0;
                m.commit_superblock_flips += s.stats.superblock_flips - flips0;
            }
            match res {
                Ok(_) => self.standby.applied_epoch = next,
                Err(_) => {
                    self.stats.apply_errors += 1;
                    break;
                }
            }
        }
    }

    /// Primary-side ack handling: advance the watermark, drop acked
    /// retransmit buffers, reset the backoff on progress.
    fn primary_receive_ack(&mut self, bytes: &[u8]) {
        if self.primary_dead {
            return;
        }
        let frame = match ReplFrame::decode(bytes) {
            Ok(f) => f,
            Err(_) => {
                self.stats.bad_frames += 1;
                return;
            }
        };
        let FramePayload::Ack { epoch } = frame.payload else {
            self.stats.bad_frames += 1;
            return;
        };
        self.stats.acks_received += 1;
        if epoch > self.acked_epoch {
            self.acked_epoch = epoch;
            self.unacked = self.unacked.split_off(&(epoch + 1));
            self.backoff = self.cfg.retransmit_after;
            self.arm_retransmit();
        } else {
            self.stats.stale_acks += 1;
        }
    }

    /// Drives the session until the watermark catches up with every
    /// shipped epoch and nothing is in flight, advancing the virtual
    /// clock to each next event (delivery arrival or retransmit timer).
    /// Returns false if `max_steps` events were not enough — with any
    /// retransmission at all this only happens for genuinely absurd
    /// fault rates.
    pub fn run_until_idle(&mut self, max_steps: u64) -> bool {
        for _ in 0..max_steps {
            let drained = self.inflight.is_empty();
            let caught_up = self.acked_epoch >= self.shipped_epoch;
            if drained && (caught_up || self.primary_dead) {
                return true;
            }
            let next_arrival = self.inflight.keys().next().map(|&(at, _)| at);
            let target = match (next_arrival, caught_up || self.primary_dead) {
                (Some(at), true) => at,
                (Some(at), false) => at.min(self.next_retx_at),
                (None, false) => self.next_retx_at,
                (None, true) => return true,
            };
            self.clock.advance_to(target);
            self.pump();
        }
        false
    }

    /// Fails over to the standby: drains every delivery already in
    /// flight (acks go nowhere — the primary is gone), discards any
    /// partially received epoch, and returns the standby store with a
    /// report. The store's head is the last fully received epoch.
    pub fn promote(mut self) -> (StoreHandle, PromoteReport) {
        self.primary_dead = true;
        // Release reorder-held messages: they were serialized onto the
        // wire before the failover.
        let held: Vec<_> = self.data_link.flush_held();
        for d in held {
            self.delivery_seq += 1;
            self.inflight.insert((d.at, self.delivery_seq), (Dir::Data, d.bytes));
        }
        while let Some(((at, _), (dir, bytes))) = self.inflight.pop_first() {
            self.clock.advance_to(at);
            if dir == Dir::Data {
                self.standby_receive(&bytes);
            }
        }
        let discarded_partial_epochs = self.standby.partial.len() as u64;
        let discarded_frames = self
            .standby
            .partial
            .values()
            .map(|p| p.chunks.len() as u64)
            .sum();
        let report = PromoteReport {
            promoted_epoch: self.standby.applied_epoch,
            acked_epoch: self.acked_epoch,
            shipped_epochs: self.shipped_epoch,
            discarded_partial_epochs,
            discarded_frames,
            apply_errors: self.stats.apply_errors,
        };
        (self.standby.store, report)
    }

    /// Publishes counter deltas (and the lag gauges) to the global
    /// metrics registry.
    fn publish_metrics(&mut self, degraded: bool) {
        let snap = MetricsSnap {
            frames_sent: self.stats.frames_sent,
            frames_retransmitted: self.stats.frames_retransmitted,
            acks_received: self.stats.acks_received,
            dropped: self.data_link.stats.dropped + self.ack_link.stats.dropped,
            epochs_acked: self.acked_epoch,
        };
        let last = self.last_published;
        let mut m = metrics::METRICS.lock();
        m.repl_frames_sent += snap.frames_sent.saturating_sub(last.frames_sent);
        m.repl_frames_retransmitted += snap
            .frames_retransmitted
            .saturating_sub(last.frames_retransmitted);
        m.repl_acks_received += snap.acks_received.saturating_sub(last.acks_received);
        m.repl_frames_dropped += snap.dropped.saturating_sub(last.dropped);
        m.repl_epochs_acked += snap.epochs_acked.saturating_sub(last.epochs_acked);
        m.repl_lag_epochs = self.shipped_epoch.saturating_sub(self.acked_epoch);
        m.repl_lag_bytes = self.unacked.values().map(|b| b.payload_bytes).sum();
        if degraded {
            m.checkpoints_degraded_replication += 1;
        }
        drop(m);
        self.last_published = snap;
    }
}

impl Host {
    /// Attaches a hot standby: every subsequent committed checkpoint is
    /// shipped to it continuously over the configured (possibly faulty)
    /// link.
    pub fn attach_standby(&mut self, cfg: ReplConfig) -> Result<()> {
        if self.sls.replicator.is_some() {
            return Err(Error::invalid("a standby is already attached"));
        }
        self.sls.replicator = Some(Box::new(Replicator::new(self.clock.clone(), cfg)?));
        Ok(())
    }

    /// Attaches a hot standby over an existing store (CLI world files).
    pub fn attach_standby_store(&mut self, cfg: ReplConfig, store: StoreHandle) -> Result<()> {
        if self.sls.replicator.is_some() {
            return Err(Error::invalid("a standby is already attached"));
        }
        self.sls.replicator = Some(Box::new(Replicator::with_store(
            self.clock.clone(),
            cfg,
            store,
        )?));
        Ok(())
    }

    /// The attached replication session, if any.
    pub fn replication(&self) -> Option<&Replicator> {
        self.sls.replicator.as_deref()
    }

    /// Mutable access to the replication session.
    pub fn replication_mut(&mut self) -> Option<&mut Replicator> {
        self.sls.replicator.as_deref_mut()
    }

    /// Detaches the replication session (the step before
    /// [`promote_to_host`]).
    pub fn detach_standby(&mut self) -> Option<Box<Replicator>> {
        self.sls.replicator.take()
    }

    /// Processes due deliveries and retransmissions outside a
    /// checkpoint (periodic drivers call this after advancing time).
    pub fn replication_pump(&mut self) {
        if let Some(r) = self.sls.replicator.as_deref_mut() {
            r.pump();
        }
    }

    /// Post-commit replication hook: ship the epoch, drain acks, and
    /// degrade the outcome if the standby lags too far. Never blocks or
    /// aborts the commit.
    pub(crate) fn replicate_after_checkpoint(&mut self, bd: &mut CheckpointBreakdown) {
        let Some(mut repl) = self.sls.replicator.take() else {
            return;
        };
        if let Some(ckpt) = bd.ckpt {
            if bd.outcome.committed() && !repl.primary_dead() {
                if let Err(e) = repl.ship_epoch(&self.sls.primary, ckpt) {
                    repl.stats.ship_errors += 1;
                    if bd.outcome == CheckpointOutcome::Committed {
                        bd.outcome = CheckpointOutcome::DegradedReplication;
                        bd.fault = Some(format!("replication export failed: {e}"));
                    }
                }
            }
        }
        repl.pump();
        let lag = repl.lag_epochs();
        if lag > repl.cfg.max_lag_epochs && bd.outcome == CheckpointOutcome::Committed {
            bd.outcome = CheckpointOutcome::DegradedReplication;
            bd.fault = Some(format!(
                "replication lag {lag} epochs exceeds max {}: standby falling behind",
                repl.cfg.max_lag_epochs
            ));
        }
        repl.publish_metrics(bd.outcome == CheckpointOutcome::DegradedReplication);
        self.sls.replicator = Some(repl);
    }

    /// Boots a host over an already-open store handle — the promote
    /// path's final step (the standby store never went through a crash,
    /// so there is nothing to recover).
    pub fn boot_from_store(name: &str, store: StoreHandle) -> Result<Host> {
        let clock = {
            let st = store.borrow();
            let c = st.device().clock().clone();
            c
        };
        let mirror_width = {
            let st = store.borrow();
            let w = st.device().as_mirror().map(|m| m.width()).unwrap_or(1);
            w
        };
        let mut kernel = Kernel::boot(clock.clone(), name);
        let next_group = load_next_group(&store);
        let fs = SlsFs::load(store.clone(), SLSFS_NS)
            .unwrap_or_else(|_| SlsFs::format(store.clone(), SLSFS_NS));
        let slsfs_mount = kernel.vfs.mount(SLSFS_MOUNT, Box::new(fs))?;
        Ok(Host {
            name: name.to_string(),
            clock,
            kernel,
            sls: Sls {
                primary: store,
                slsfs_mount,
                groups: BTreeMap::new(),
                next_group,
                rolled_back: std::collections::HashSet::new(),
                pager_cache: std::collections::HashMap::new(),
                flush_workers: DEFAULT_FLUSH_WORKERS,
                restore_workers: DEFAULT_RESTORE_WORKERS,
                mirror_width,
                replicator: None,
                fleet: crate::fleet::FleetScheduler::new(),
                stats: SlsStats::default(),
            },
        })
    }
}

/// Promotes a detached replication session to a full host: drains the
/// link, discards partial epochs, and boots a kernel over the standby
/// store. The returned host restores applications exactly as a rebooted
/// primary would.
pub fn promote_to_host(repl: Box<Replicator>, name: &str) -> Result<(Host, PromoteReport)> {
    let (store, report) = repl.promote();
    let host = Host::boot_from_store(name, store)?;
    Ok((host, report))
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use crate::restore::RestoreMode;
    use aurora_objstore::StoreConfig;

    #[test]
    fn repl_frame_data_roundtrips() {
        let frame = ReplFrame {
            seq: 42,
            payload: FramePayload::Data {
                epoch: 7,
                index: 3,
                count: 9,
                full: false,
                chunk: vec![0xAB; 1234],
            },
        };
        let bytes = frame.encode();
        let out = ReplFrame::decode(&bytes).unwrap();
        assert_eq!(out, frame);
    }

    #[test]
    fn repl_frame_ack_roundtrips() {
        let frame = ReplFrame {
            seq: 9000,
            payload: FramePayload::Ack { epoch: 17 },
        };
        let out = ReplFrame::decode(&frame.encode()).unwrap();
        assert_eq!(out, frame);
    }

    #[test]
    fn repl_frame_rejects_corruption_and_foreign_magic() {
        let frame = ReplFrame {
            seq: 1,
            payload: FramePayload::Ack { epoch: 2 },
        };
        let mut bytes = frame.encode();
        // Flip a byte in the body: digest must catch it.
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        let err = ReplFrame::decode(&bytes).unwrap_err();
        assert_eq!(err.kind(), aurora_sim::error::ErrorKind::Corrupt);
        // Foreign magic.
        let err = ReplFrame::decode(&[0u8; 32]).unwrap_err();
        assert_eq!(err.kind(), aurora_sim::error::ErrorKind::BadImage);
    }

    #[test]
    fn repl_frame_version_error_names_both_versions() {
        let frame = ReplFrame {
            seq: 1,
            payload: FramePayload::Ack { epoch: 2 },
        };
        let mut bytes = frame.encode();
        // The version field sits right after the 8-byte magic.
        bytes[8] = 0x63; // version 99 (little-endian u16)
        bytes[9] = 0;
        let err = ReplFrame::decode(&bytes).unwrap_err();
        assert_eq!(err.kind(), aurora_sim::error::ErrorKind::Unsupported);
        let msg = err.to_string();
        assert!(msg.contains("99"), "names the frame's version: {msg}");
        assert!(
            msg.contains(&REPL_VERSION.to_string()),
            "names the supported version: {msg}"
        );
    }

    fn repl_host(cfg: ReplConfig) -> (Host, aurora_posix::Pid, u64, crate::GroupId) {
        let clock = SimClock::new();
        let dev = Box::new(aurora_hw::ModelDev::nvme(clock, "nvme0", 64 * 1024));
        let mut host = Host::boot(
            "primary",
            dev,
            StoreConfig {
                journal_blocks: 512,
                materialize_data: true,
                ..StoreConfig::default()
            },
        )
        .unwrap();
        host.attach_standby(cfg).unwrap();
        let pid = host.kernel.spawn("app");
        let addr = host.kernel.mmap_anon(pid, 4 * 4096, false).unwrap();
        let gid = host.persist("app", pid).unwrap();
        (host, pid, addr, gid)
    }

    fn materialized() -> StoreConfig {
        StoreConfig {
            journal_blocks: 512,
            materialize_data: true,
            ..StoreConfig::default()
        }
    }

    #[test]
    fn clean_link_converges_and_promotes_latest_epoch() {
        let cfg = ReplConfig {
            standby_store: materialized(),
            frame_bytes: 2048,
            ..ReplConfig::default()
        };
        let (mut host, pid, addr, gid) = repl_host(cfg);
        for round in 0..3u32 {
            let tag = format!("epoch-{}", round + 1);
            host.kernel.mem_write(pid, addr, tag.as_bytes()).unwrap();
            let bd = host
                .checkpoint(gid, round == 0, Some(&format!("e{}", round + 1)))
                .unwrap();
            assert_eq!(bd.outcome, CheckpointOutcome::Committed);
            host.clock.advance_to(bd.durable_at);
        }
        let repl = host.replication_mut().unwrap();
        assert!(repl.run_until_idle(1_000), "clean link must converge");
        assert_eq!(repl.acked_epoch(), 3);
        assert_eq!(repl.lag_epochs(), 0);
        assert_eq!(repl.lag_bytes(), 0);

        let repl = host.detach_standby().unwrap();
        let (mut standby, pr) = promote_to_host(repl, "standby").unwrap();
        assert_eq!(pr.promoted_epoch, 3);
        assert_eq!(pr.apply_errors, 0);
        assert_eq!(pr.discarded_partial_epochs, 0);
        let store = standby.sls.primary.clone();
        assert!(store.borrow().scrub().is_empty());
        let head = store.borrow().head().unwrap();
        let r = standby.restore(&store, head, RestoreMode::Eager).unwrap();
        let np = r.root_pid().unwrap();
        let mut buf = vec![0u8; 7];
        standby.kernel.mem_read(np, addr, &mut buf).unwrap();
        assert_eq!(&buf, b"epoch-3");
    }

    #[test]
    fn lossy_link_retransmits_until_acked() {
        let cfg = ReplConfig {
            standby_store: materialized(),
            rates: LinkFaultRates::hostile(),
            frame_bytes: 1024,
            seed: 11,
            ..ReplConfig::default()
        };
        let (mut host, pid, addr, gid) = repl_host(cfg);
        for round in 0..6u32 {
            host.kernel
                .mem_write(pid, addr, format!("r{round}").as_bytes())
                .unwrap();
            let bd = host.checkpoint(gid, round == 0, None).unwrap();
            host.clock.advance_to(bd.durable_at);
        }
        let repl = host.replication_mut().unwrap();
        assert!(repl.run_until_idle(100_000), "lossy link must converge");
        assert_eq!(repl.acked_epoch(), 6);
        let dropped = repl.data_link_stats().dropped + repl.ack_link_stats().dropped;
        assert!(dropped > 0, "hostile link must actually drop something");
        assert!(
            repl.stats.frames_retransmitted > 0,
            "drops must force retransmissions"
        );
    }

    #[test]
    fn severed_link_degrades_checkpoints_instead_of_blocking() {
        let cfg = ReplConfig {
            standby_store: materialized(),
            rates: LinkFaultRates {
                drop_ppm: 1_000_000, // the wire eats everything
                ..LinkFaultRates::clean()
            },
            max_lag_epochs: 1,
            ..ReplConfig::default()
        };
        let (mut host, pid, addr, gid) = repl_host(cfg);
        let mut outcomes = Vec::new();
        for round in 0..3u32 {
            host.kernel
                .mem_write(pid, addr, format!("r{round}").as_bytes())
                .unwrap();
            let bd = host.checkpoint(gid, round == 0, None).unwrap();
            outcomes.push(bd.outcome);
            host.clock.advance_to(bd.durable_at);
        }
        assert_eq!(outcomes[0], CheckpointOutcome::Committed, "lag 1 is fine");
        assert_eq!(
            outcomes[2],
            CheckpointOutcome::DegradedReplication,
            "a severed link must surface as degraded replication: {outcomes:?}"
        );
        assert_eq!(host.replication().unwrap().acked_epoch(), 0);
        let m = metrics::global_counters();
        assert!(m.checkpoints_degraded_replication > 0);
    }

    #[test]
    fn kill_mid_epoch_promotes_only_complete_epochs() {
        let cfg = ReplConfig {
            standby_store: materialized(),
            frame_bytes: 1024,
            // Die three frames into shipping (epoch 1 spans many more).
            kill_after_data_frames: Some(3),
            ..ReplConfig::default()
        };
        let (mut host, pid, addr, gid) = repl_host(cfg);
        host.kernel.mem_write(pid, addr, b"doomed").unwrap();
        let bd = host.checkpoint(gid, true, None).unwrap();
        host.clock.advance_to(bd.durable_at);
        let repl = host.detach_standby().unwrap();
        assert!(repl.primary_dead());
        let (standby, pr) = promote_to_host(repl, "standby").unwrap();
        assert_eq!(pr.promoted_epoch, 0, "a torn epoch never promotes");
        assert_eq!(pr.acked_epoch, 0);
        assert!(pr.discarded_frames > 0, "the partial tail was discarded");
        assert!(standby.sls.primary.borrow().scrub().is_empty());
    }
}
