//! The parallel flush pipeline's hash stage.
//!
//! A checkpoint's flush plan is partitioned into contiguous shards, one
//! per worker; a scoped thread pool content-hashes every page, and the
//! driving thread reassembles the shards in plan order. The output is a
//! [`PageWrite`] list whose hashes feed the object store's sharded dedup
//! index (`write_pages_coalesced`) on *every* backend — the serial path
//! re-hashed the whole plan once per backend.
//!
//! Determinism: shard boundaries depend only on plan length and worker
//! count, workers never touch shared mutable state except the
//! [`FLUSH_SHARD`] collector, and reassembly sorts by shard index — so
//! the resulting write sequence is byte-identical to a serial hash pass
//! regardless of worker count or scheduling. The differential test in
//! `tests/parallel_flush_diff.rs` checks exactly this.

use std::thread;

use aurora_objstore::{ObjId, PageWrite};
use aurora_vm::PageData;

use crate::lockdep::{OrderedMutex, RANK_FLUSH_SHARD};

/// Plans smaller than this are hashed inline: spawning threads costs
/// more than hashing a handful of 4 KiB pages.
pub const PARALLEL_THRESHOLD: usize = 64;

/// Collector for hashed shards: workers push `(shard index, hashes)`
/// pairs as they finish. The single driving thread runs one hash stage
/// at a time (under the owning group's barrier), so at most one stage
/// uses this collector at once even though unrelated tenants' cycles
/// pipeline.
static FLUSH_SHARD: OrderedMutex<Vec<(usize, Vec<u64>)>> =
    OrderedMutex::new(RANK_FLUSH_SHARD, "flush_shard", Vec::new());

/// One resolved page of the flush plan: destination object, page index,
/// and the frozen contents.
pub type PlanPage = (ObjId, u64, PageData);

/// Content-hashes the resolved flush plan on `workers` threads and
/// returns the writes in plan order.
pub fn hash_plan(pages: Vec<PlanPage>, workers: usize) -> Vec<PageWrite> {
    let workers = workers.max(1);
    if workers == 1 || pages.len() < PARALLEL_THRESHOLD {
        return hash_serial(pages);
    }

    let shard_len = pages.len().div_ceil(workers);
    {
        FLUSH_SHARD.lock().clear();
    }
    thread::scope(|s| {
        for (shard_idx, shard) in pages.chunks(shard_len).enumerate() {
            s.spawn(move || {
                let hashes: Vec<u64> = shard.iter().map(|(_, _, p)| p.content_hash()).collect();
                {
                    FLUSH_SHARD.lock().push((shard_idx, hashes));
                }
            });
        }
    });

    let mut shards = std::mem::take(&mut *FLUSH_SHARD.lock());
    shards.sort_unstable_by_key(|&(idx, _)| idx);
    let hashes: Vec<u64> = shards.into_iter().flat_map(|(_, h)| h).collect();
    if hashes.len() != pages.len() {
        // A worker vanished (spawn failure). Fall back to the serial
        // pass rather than writing pages with missing hashes.
        return hash_serial(pages);
    }
    pages
        .into_iter()
        .zip(hashes)
        .map(|((oid, idx, page), hash)| PageWrite { oid, idx, page, hash })
        .collect()
}

/// The single-threaded reference pass.
fn hash_serial(pages: Vec<PlanPage>) -> Vec<PageWrite> {
    pages
        .into_iter()
        .map(|(oid, idx, page)| {
            let hash = page.content_hash();
            PageWrite { oid, idx, page, hash }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(n: usize) -> Vec<PlanPage> {
        (0..n)
            .map(|i| {
                let data = match i % 3 {
                    0 => PageData::Zero,
                    1 => PageData::Seeded(i as u64 / 3),
                    _ => PageData::Seeded(0xABCD),
                };
                (ObjId(1 + (i as u64 % 4)), i as u64, data)
            })
            .collect()
    }

    #[test]
    fn parallel_matches_serial_for_any_worker_count() {
        for n in [0, 1, PARALLEL_THRESHOLD - 1, PARALLEL_THRESHOLD, 257, 1000] {
            let reference = hash_serial(plan(n));
            for workers in [1, 2, 3, 4, 8] {
                let out = hash_plan(plan(n), workers);
                assert_eq!(out.len(), reference.len());
                for (a, b) in out.iter().zip(reference.iter()) {
                    assert_eq!(a.oid, b.oid);
                    assert_eq!(a.idx, b.idx);
                    assert_eq!(a.hash, b.hash);
                    assert!(a.page.content_eq(&b.page));
                }
            }
        }
    }

    #[test]
    fn hashes_match_page_contents() {
        let out = hash_plan(plan(PARALLEL_THRESHOLD * 2), 4);
        for w in &out {
            assert_eq!(w.hash, w.page.content_hash());
        }
    }
}
