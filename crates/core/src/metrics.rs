//! Phase breakdowns matching the paper's tables, plus the process-wide
//! counter registry.

use aurora_sim::time::{SimDuration, SimTime};

use crate::lockdep::{OrderedMutex, RANK_METRICS};

/// Process-wide counters, aggregated across every [`crate::Host`] in
/// the process (a test or campaign binary runs many).
#[derive(Debug, Clone, Copy, Default)]
pub struct GlobalCounters {
    /// Checkpoints that committed (including degraded-to-full).
    pub checkpoints_committed: u64,
    /// Checkpoints that aborted without committing.
    pub checkpoints_aborted: u64,
    /// Restores that completed.
    pub restores_completed: u64,
    /// Worker-thread count of the most recent parallel flush.
    pub flush_workers: u64,
    /// Pages content-hashed by the parallel flush hash stage.
    pub flush_pages_hashed: u64,
    /// Hash-stage duration (sim ns): page bytes over the per-core hash
    /// bandwidth, divided across the workers. Charged to the simulation
    /// clock, so checkpoint latency reflects the configured parallelism.
    pub flush_hash_ns: u64,
    /// Sim-time span of the flush/commit stage (ns): submission of the
    /// first page to the durable instant of the slowest backend.
    pub flush_write_ns: u64,
    /// Vectored extents issued by write coalescing.
    pub flush_extents: u64,
    /// Blocks carried by those extents.
    pub flush_extent_blocks: u64,
    /// Worker-thread count of the most recent batched restore.
    pub restore_workers: u64,
    /// Pages content-hashed by the restore pipeline's hash stage.
    pub restore_pages_hashed: u64,
    /// Restore read-cache hits (pages served without device access).
    pub restore_cache_hits: u64,
    /// Restore read-cache misses (pages that charged device time).
    pub restore_cache_misses: u64,
    /// Vectored extent reads issued by batched restores.
    pub restore_extents: u64,
    /// Checkpoints that committed while the mirror was degraded (a
    /// replica detached, rebuilding, or unhealthy).
    pub checkpoints_degraded_mirror: u64,
    /// Checkpoints that committed while replication lag exceeded the
    /// configured bound (standby falling behind the acked watermark).
    pub checkpoints_degraded_replication: u64,
    /// Replication data frames offered to the link (first transmissions).
    pub repl_frames_sent: u64,
    /// Replication data frames retransmitted after an ack timeout.
    pub repl_frames_retransmitted: u64,
    /// Replication frames the faulty link dropped (both directions,
    /// including transient-partition losses).
    pub repl_frames_dropped: u64,
    /// Ack frames received by the primary.
    pub repl_acks_received: u64,
    /// Epochs fully acked by the standby (the watermark's advance count).
    pub repl_epochs_acked: u64,
    /// Current replication lag, in epochs (shipped minus acked).
    pub repl_lag_epochs: u64,
    /// Current replication lag, in unacked payload bytes.
    pub repl_lag_bytes: u64,
    /// Commit-protocol phase transitions `DirtyTxn → JournalSealed`
    /// (journal records submitted), summed across backend and standby
    /// stores.
    pub commit_journal_seals: u64,
    /// Phase transitions `JournalSealed → ExtentsDurable` (flush
    /// barriers).
    pub commit_extent_barriers: u64,
    /// Phase transitions `ExtentsDurable → Committed` (durable
    /// superblock flips).
    pub commit_superblock_flips: u64,
    /// Entries into the repair path (read-repair / scrub healing).
    pub commit_repair_entries: u64,
    /// Sub-page delta records committed in place of full 4 KiB images,
    /// summed across backend stores.
    pub delta_records: u64,
    /// Encoded bytes of those delta records (the flushed footprint the
    /// full-image path would have charged 4096 bytes per page for).
    pub delta_bytes: u64,
    /// Delta chains folded back into base images by the background
    /// compactor.
    pub chains_compacted: u64,
    /// Longest delta chain ever committed (high-water across stores).
    pub chain_len_max: u64,
    /// Checkpoint cycles run through the fleet scheduler's pipelined
    /// path (capture admitted while earlier flushes drain).
    pub fleet_cycles_pipelined: u64,
    /// Pipelined cycles whose capture overlapped at least one other
    /// tenant's still-draining flush.
    pub fleet_overlapped_cycles: u64,
    /// Admissions that had to retire the oldest in-flight flush first
    /// because the scheduler's run queue was full.
    pub fleet_queue_stalls: u64,
    /// High-water mark of the scheduler's in-flight flush queue.
    pub fleet_queue_depth_max: u64,
    /// p99 per-tenant stop time of the most recent fleet scheduler's
    /// pipelined cycles (sim ns).
    pub fleet_stop_p99_ns: u64,
    /// Pipelined cycles skipped because the tenant was quarantined
    /// (its group barrier was never taken).
    pub fleet_cycles_skipped: u64,
    /// Tenants moved into quarantine by the health state machine.
    pub fleet_quarantines: u64,
    /// Quarantined tenants re-admitted after a successful probe cycle.
    pub fleet_readmissions: u64,
    /// Pipelined cycles that blew their virtual-clock deadline.
    pub fleet_deadline_misses: u64,
    /// Pipelined cycles that failed (aborted outcome, damaged base, or
    /// a hard error) and were charged to the tenant's fault domain.
    pub fleet_cycle_errors: u64,
}

/// The global counter registry. Innermost rank in the lock hierarchy,
/// so any path may bump counters while holding anything else.
pub static METRICS: OrderedMutex<GlobalCounters> =
    OrderedMutex::new(RANK_METRICS, "metrics", GlobalCounters {
        checkpoints_committed: 0,
        checkpoints_aborted: 0,
        restores_completed: 0,
        flush_workers: 0,
        flush_pages_hashed: 0,
        flush_hash_ns: 0,
        flush_write_ns: 0,
        flush_extents: 0,
        flush_extent_blocks: 0,
        restore_workers: 0,
        restore_pages_hashed: 0,
        restore_cache_hits: 0,
        restore_cache_misses: 0,
        restore_extents: 0,
        checkpoints_degraded_mirror: 0,
        checkpoints_degraded_replication: 0,
        repl_frames_sent: 0,
        repl_frames_retransmitted: 0,
        repl_frames_dropped: 0,
        repl_acks_received: 0,
        repl_epochs_acked: 0,
        repl_lag_epochs: 0,
        repl_lag_bytes: 0,
        commit_journal_seals: 0,
        commit_extent_barriers: 0,
        commit_superblock_flips: 0,
        commit_repair_entries: 0,
        delta_records: 0,
        delta_bytes: 0,
        chains_compacted: 0,
        chain_len_max: 0,
        fleet_cycles_pipelined: 0,
        fleet_overlapped_cycles: 0,
        fleet_queue_stalls: 0,
        fleet_queue_depth_max: 0,
        fleet_stop_p99_ns: 0,
        fleet_cycles_skipped: 0,
        fleet_quarantines: 0,
        fleet_readmissions: 0,
        fleet_deadline_misses: 0,
        fleet_cycle_errors: 0,
    });

/// Snapshot of the global counters.
pub fn global_counters() -> GlobalCounters {
    *METRICS.lock()
}

/// How a checkpoint concluded.
///
/// The pipeline reports degraded and aborted checkpoints through the
/// breakdown instead of a bare error, so periodic drivers keep running
/// and callers can distinguish "this snapshot is durable" from "the
/// previous snapshot is still the latest durable state".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CheckpointOutcome {
    /// Committed and durable on every backend.
    #[default]
    Committed,
    /// The caller asked for an incremental checkpoint but the pipeline
    /// degraded to a full one (damaged incremental base, or a backend
    /// recovering from an earlier abort). The result is still durable.
    DegradedToFull,
    /// Committed and durable, but the mirror under a backend was running
    /// degraded (a replica detached, rebuilding, or unhealthy): the data
    /// currently has less redundancy than configured, and an operator
    /// should revive/resilver the missing replica.
    DegradedMirror,
    /// Committed and durable locally, but the hot standby's acked-epoch
    /// watermark has fallen more than the configured max-lag behind: a
    /// failover now would lose more than the promised RPO. Commits are
    /// never blocked on the standby — the degradation is advisory.
    DegradedReplication,
    /// Flushing failed permanently after retries. No new checkpoint was
    /// committed; the previous durable snapshot is untouched and the
    /// next checkpoint will be full.
    Aborted,
    /// The cycle never ran: the tenant's fault domain is quarantined
    /// and its group barrier was not taken. The previous durable
    /// snapshot is untouched; `fault` names the next re-admission
    /// probe instant.
    Quarantined,
}

impl CheckpointOutcome {
    /// Short lowercase label for logs and the CLI.
    pub fn as_str(self) -> &'static str {
        match self {
            CheckpointOutcome::Committed => "committed",
            CheckpointOutcome::DegradedToFull => "degraded-to-full",
            CheckpointOutcome::DegradedMirror => "degraded-mirror",
            CheckpointOutcome::DegradedReplication => "degraded-replication",
            CheckpointOutcome::Aborted => "aborted",
            CheckpointOutcome::Quarantined => "quarantined",
        }
    }

    /// True when a new durable checkpoint exists after the call.
    pub fn committed(self) -> bool {
        !matches!(
            self,
            CheckpointOutcome::Aborted | CheckpointOutcome::Quarantined
        )
    }
}

/// Stop-time breakdown of one checkpoint (the rows of Table 3).
#[derive(Debug, Clone, Default)]
pub struct CheckpointBreakdown {
    /// How the checkpoint concluded (committed / degraded / aborted).
    pub outcome: CheckpointOutcome,
    /// Human-readable cause when `outcome` is not `Committed`.
    pub fault: Option<String>,
    /// Whether this was a full or incremental checkpoint.
    pub full: bool,
    /// "Metadata copy": serializing every kernel object at the barrier.
    pub metadata_copy: SimDuration,
    /// "Lazy data copy": arming checkpoint COW via page-table
    /// manipulation (no data is copied at the barrier).
    pub lazy_data_copy: SimDuration,
    /// "Application stop time": barrier entry + metadata + COW arming +
    /// resume — the full pause observed by the application.
    pub stop_time: SimDuration,
    /// Pages armed (and queued for background flush).
    pub pages: u64,
    /// Metadata bytes serialized.
    pub metadata_bytes: u64,
    /// Bytes handed to the flusher.
    pub flush_bytes: u64,
    /// Instant at which the checkpoint is durable on every backend.
    pub durable_at: SimTime,
    /// Checkpoint id on the primary backend.
    pub ckpt: Option<aurora_objstore::CkptId>,
    /// Worker threads used by the parallel flush hash stage.
    pub flush_workers: u64,
    /// Duration of the hash stage, charged to the virtual clock.
    pub hash_stage: SimDuration,
    /// Sim-time span from flush submission to the durable instant.
    pub flush_span: SimDuration,
    /// The incremental pre-pass found the base chain damaged
    /// (unreadable or corrupt blocks) and degraded to full. Committed
    /// cycles with this set still signal a sick backend: the fleet's
    /// health machine counts them against the tenant's fault domain.
    pub base_damaged: bool,
}

/// Restore-time breakdown (the rows of Table 4).
#[derive(Debug, Clone, Default)]
pub struct RestoreBreakdown {
    /// "Object Store Read": fetching the manifest and metadata records
    /// from the backend.
    pub objstore_read: SimDuration,
    /// "Memory state": recreating the address spaces (map entries and VM
    /// objects; pages are shared COW / faulted lazily — never copied).
    pub memory_state: SimDuration,
    /// "Metadata state": recreating processes, descriptors and IPC.
    pub metadata_state: SimDuration,
    /// "Total latency".
    pub total: SimDuration,
    /// Pages eagerly paged in (prefetch/eager modes).
    pub pages_prefetched: u64,
    /// Sim time spent in the batched read stage (device extents plus
    /// cache hits); zero on the serial path.
    pub read_stage: SimDuration,
    /// Sim time charged for the restore hash stage; zero on the serial
    /// path.
    pub hash_stage: SimDuration,
    /// Worker threads the batched pipeline ran with (0 = serial path).
    pub restore_workers: u64,
    /// Pages served by the store's read cache.
    pub cache_hits: u64,
    /// Pages that charged device time.
    pub cache_misses: u64,
    /// Vectored extent reads issued.
    pub extents_read: u64,
    /// The pid map: original pid -> restored pid.
    pub pid_map: Vec<(u32, u32)>,
}

impl RestoreBreakdown {
    /// The restored pid of original `pid`, if present.
    pub fn restored_pid(&self, original: u32) -> Option<aurora_posix::Pid> {
        self.pid_map
            .iter()
            .find(|(o, _)| *o == original)
            .map(|(_, n)| aurora_posix::Pid(*n))
    }

    /// The single restored root pid (convenience for one-process groups).
    pub fn root_pid(&self) -> Option<aurora_posix::Pid> {
        self.pid_map.first().map(|(_, n)| aurora_posix::Pid(*n))
    }
}
