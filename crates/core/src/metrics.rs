//! Phase breakdowns matching the paper's tables.

use aurora_sim::time::{SimDuration, SimTime};

/// Stop-time breakdown of one checkpoint (the rows of Table 3).
#[derive(Debug, Clone, Default)]
pub struct CheckpointBreakdown {
    /// Whether this was a full or incremental checkpoint.
    pub full: bool,
    /// "Metadata copy": serializing every kernel object at the barrier.
    pub metadata_copy: SimDuration,
    /// "Lazy data copy": arming checkpoint COW via page-table
    /// manipulation (no data is copied at the barrier).
    pub lazy_data_copy: SimDuration,
    /// "Application stop time": barrier entry + metadata + COW arming +
    /// resume — the full pause observed by the application.
    pub stop_time: SimDuration,
    /// Pages armed (and queued for background flush).
    pub pages: u64,
    /// Metadata bytes serialized.
    pub metadata_bytes: u64,
    /// Bytes handed to the flusher.
    pub flush_bytes: u64,
    /// Instant at which the checkpoint is durable on every backend.
    pub durable_at: SimTime,
    /// Checkpoint id on the primary backend.
    pub ckpt: Option<aurora_objstore::CkptId>,
}

/// Restore-time breakdown (the rows of Table 4).
#[derive(Debug, Clone, Default)]
pub struct RestoreBreakdown {
    /// "Object Store Read": fetching the manifest and metadata records
    /// from the backend.
    pub objstore_read: SimDuration,
    /// "Memory state": recreating the address spaces (map entries and VM
    /// objects; pages are shared COW / faulted lazily — never copied).
    pub memory_state: SimDuration,
    /// "Metadata state": recreating processes, descriptors and IPC.
    pub metadata_state: SimDuration,
    /// "Total latency".
    pub total: SimDuration,
    /// Pages eagerly paged in (prefetch/eager modes).
    pub pages_prefetched: u64,
    /// The pid map: original pid -> restored pid.
    pub pid_map: Vec<(u32, u32)>,
}

impl RestoreBreakdown {
    /// The restored pid of original `pid`, if present.
    pub fn restored_pid(&self, original: u32) -> Option<aurora_posix::Pid> {
        self.pid_map
            .iter()
            .find(|(o, _)| *o == original)
            .map(|(_, n)| aurora_posix::Pid(*n))
    }

    /// The single restored root pid (convenience for one-process groups).
    pub fn root_pid(&self) -> Option<aurora_posix::Pid> {
        self.pid_map.first().map(|(_, n)| aurora_posix::Pid(*n))
    }
}
